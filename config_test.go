package edgecache

import (
	"bytes"
	"strings"
	"testing"
)

func TestConfigRoundTrip(t *testing.T) {
	orig := NewScenario(2, 12, 6, 20).
		WithCache(3).
		WithBandwidth(9).
		WithBeta(42).
		WithZipf(1.2, 7).
		WithDensity(5).
		WithJitter(0.25).
		WithDrift(3).
		WithDiurnal(0.3, 12).
		WithSBSWeightRatio(0.02).
		WithNoise(0.3).
		WithSeed(77)

	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadScenario(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := loaded.Config(), orig.Config(); got != want {
		t.Fatalf("round trip changed config:\n got %+v\nwant %+v", got, want)
	}

	// Builds must produce identical instances.
	a, _, err := orig.Build()
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := loaded.Build()
	if err != nil {
		t.Fatal(err)
	}
	if a.Demand.At(3, 1, 2, 4) != b.Demand.At(3, 1, 2, 4) {
		t.Fatal("round-tripped scenario builds different demand")
	}
}

func TestFromConfigDefaults(t *testing.T) {
	s := FromConfig(ScenarioConfig{})
	got := s.Config()
	want := PaperScenario().Config()
	if got != want {
		t.Fatalf("empty config did not inherit paper defaults:\n got %+v\nwant %+v", got, want)
	}
}

func TestLoadScenarioRejectsUnknownFields(t *testing.T) {
	if _, err := LoadScenario(strings.NewReader(`{"horizon": 5, "warp": 9}`)); err == nil {
		t.Fatal("accepted unknown field")
	}
}

func TestLoadScenarioRejectsGarbage(t *testing.T) {
	if _, err := LoadScenario(strings.NewReader("not json")); err == nil {
		t.Fatal("accepted non-JSON")
	}
}
