package edgecache_test

import (
	"context"
	"fmt"
	"log"

	"edgecache"
)

// ExampleCompare runs the offline optimum, one online controller and the
// paper's baseline on a small scenario and reports the qualitative
// outcome the paper's evaluation rests on.
func ExampleCompare() {
	instance, predictions, err := edgecache.PaperScenario().
		WithHorizon(8).
		WithCatalogue(6).
		WithCache(2).
		WithBandwidth(6).
		WithBeta(20).
		WithSeed(1).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	runs, err := edgecache.Compare(context.Background(), instance, predictions,
		[]edgecache.Planner{
			edgecache.Offline(),
			edgecache.RHC(4),
			edgecache.LRFU(),
		})
	if err != nil {
		log.Fatal(err)
	}
	offline, rhc, lrfu := runs[0], runs[1], runs[2]
	fmt.Println("policies:", offline.Policy, rhc.Policy, lrfu.Policy)
	fmt.Println("offline ≤ RHC:", offline.Cost.Total <= rhc.Cost.Total+1e-9)
	fmt.Println("RHC ≤ LRFU:", rhc.Cost.Total <= lrfu.Cost.Total+1e-9)
	// Output:
	// policies: Offline RHC(w=4) LRFU
	// offline ≤ RHC: true
	// RHC ≤ LRFU: true
}

// ExampleScenario_WithDemandTransform spikes a single content's demand in
// one slot — the flash-crowd modelling hook.
func ExampleScenario_WithDemandTransform() {
	instance, _, err := edgecache.PaperScenario().
		WithHorizon(4).
		WithCatalogue(3).
		WithSeed(2).
		WithDemandTransform(func(t, n, m, k int, rate float64) float64 {
			if t == 2 && k == 0 {
				return rate * 10
			}
			return rate
		}).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	base := instance.Demand.At(1, 0, 0, 0)
	spiked := instance.Demand.At(2, 0, 0, 0)
	fmt.Println("spike multiplied demand:", spiked > 5*base)
	// Output:
	// spike multiplied demand: true
}

// ExampleScenario_Save shows scenario persistence for reproducible
// experiments.
func ExampleScenario_Save() {
	scn := edgecache.PaperScenario().WithHorizon(12).WithBeta(50).WithSeed(9)
	cfg := scn.Config()
	fmt.Println("horizon:", cfg.Horizon, "beta:", cfg.Beta, "seed:", cfg.Seed)
	// Output:
	// horizon: 12 beta: 50 seed: 9
}
