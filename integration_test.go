// Integration tests: end-to-end checks of the scientific claims the
// paper's figures rest on, at a scale that runs in seconds, plus edge-case
// failure injection across the whole pipeline.
package edgecache_test

import (
	"context"
	"testing"

	"edgecache"
	"edgecache/internal/model"
	"edgecache/internal/workload"
)

// buildSmall returns a small but non-trivial scenario.
func buildSmall(t *testing.T, mutate func(*edgecache.Scenario)) (*edgecache.Instance, *edgecache.Predictor) {
	t.Helper()
	scn := edgecache.PaperScenario().
		WithHorizon(10).
		WithCatalogue(8).
		WithCache(2).
		WithBandwidth(6).
		WithBeta(15).
		WithSeed(4)
	if mutate != nil {
		mutate(scn)
	}
	in, pred, err := scn.Build()
	if err != nil {
		t.Fatal(err)
	}
	return in, pred
}

func totalOf(t *testing.T, in *edgecache.Instance, pred *edgecache.Predictor, p edgecache.Planner) edgecache.CostBreakdown {
	t.Helper()
	run, err := edgecache.Simulate(context.Background(), in, pred, p)
	if err != nil {
		t.Fatal(err)
	}
	return run.Cost
}

// Fig. 2c's claim: online replacements fall as β grows; LRFU's count is
// β-invariant.
func TestShapeReplacementsFallWithBeta(t *testing.T) {
	low, lowPred := buildSmall(t, func(s *edgecache.Scenario) { s.WithBeta(1) })
	high, highPred := buildSmall(t, func(s *edgecache.Scenario) { s.WithBeta(200) })

	rhcLow := totalOf(t, low, lowPred, edgecache.RHC(4))
	rhcHigh := totalOf(t, high, highPred, edgecache.RHC(4))
	if rhcHigh.Replacements > rhcLow.Replacements {
		t.Fatalf("RHC replacements rose with β: %d → %d", rhcLow.Replacements, rhcHigh.Replacements)
	}

	lrfuLow := totalOf(t, low, lowPred, edgecache.LRFU())
	lrfuHigh := totalOf(t, high, highPred, edgecache.LRFU())
	if lrfuLow.Replacements != lrfuHigh.Replacements {
		t.Fatalf("LRFU replacements vary with β: %d vs %d", lrfuLow.Replacements, lrfuHigh.Replacements)
	}
}

// Fig. 4a's claim: total cost is non-increasing in the SBS bandwidth.
func TestShapeCostFallsWithBandwidth(t *testing.T) {
	prev := -1.0
	for _, b := range []float64{1, 4, 12} {
		in, pred := buildSmall(t, func(s *edgecache.Scenario) { s.WithBandwidth(b) })
		c := totalOf(t, in, pred, edgecache.Offline()).Total
		if prev >= 0 && c > prev*1.001 {
			t.Fatalf("offline cost rose with bandwidth: %g → %g at B=%g", prev, c, b)
		}
		prev = c
	}
}

// §V-C(1)'s claim: the cost ordering Offline ≤ RHC ≤ {CHC, AFHC} ≤ LRFU,
// averaged over seeds (individual seeds may reorder the middle).
func TestShapeCostOrdering(t *testing.T) {
	var off, rhc, afhc, lrfu float64
	for seed := uint64(1); seed <= 3; seed++ {
		in, pred := buildSmall(t, func(s *edgecache.Scenario) { s.WithSeed(seed).WithBeta(30) })
		off += totalOf(t, in, pred, edgecache.Offline()).Total
		rhc += totalOf(t, in, pred, edgecache.RHC(4)).Total
		afhc += totalOf(t, in, pred, edgecache.AFHC(4)).Total
		lrfu += totalOf(t, in, pred, edgecache.LRFU()).Total
	}
	if off > rhc*1.001 {
		t.Fatalf("offline %g > RHC %g", off, rhc)
	}
	if rhc > afhc*1.05 {
		t.Fatalf("RHC %g ≫ AFHC %g (expected RHC ≤ AFHC on average)", rhc, afhc)
	}
	if rhc > lrfu*1.001 {
		t.Fatalf("RHC %g > LRFU %g", rhc, lrfu)
	}
}

// Fig. 5's claim: online total cost is (weakly) hurt by prediction noise;
// offline and LRFU are exactly flat.
func TestShapeNoiseHurtsOnlineOnly(t *testing.T) {
	clean, cleanPred := buildSmall(t, func(s *edgecache.Scenario) { s.WithNoise(0) })
	noisy, noisyPred := buildSmall(t, func(s *edgecache.Scenario) { s.WithNoise(0.5) })

	offClean := totalOf(t, clean, cleanPred, edgecache.Offline()).Total
	offNoisy := totalOf(t, noisy, noisyPred, edgecache.Offline()).Total
	if offClean != offNoisy {
		t.Fatalf("offline cost varies with η: %g vs %g", offClean, offNoisy)
	}
	lrfuClean := totalOf(t, clean, cleanPred, edgecache.LRFU()).Total
	lrfuNoisy := totalOf(t, noisy, noisyPred, edgecache.LRFU()).Total
	if lrfuClean != lrfuNoisy {
		t.Fatalf("LRFU cost varies with η: %g vs %g", lrfuClean, lrfuNoisy)
	}
	// Online: allow slack (noise can luckily help a single seed) but a
	// large improvement under heavy noise signals a bug.
	rhcClean := totalOf(t, clean, cleanPred, edgecache.RHC(4)).Total
	rhcNoisy := totalOf(t, noisy, noisyPred, edgecache.RHC(4)).Total
	if rhcNoisy < rhcClean*0.95 {
		t.Fatalf("RHC improved sharply under η=0.5: %g → %g", rhcClean, rhcNoisy)
	}
}

// --- failure injection -------------------------------------------------------

func TestEdgeZeroDemand(t *testing.T) {
	in, pred := buildSmall(t, func(s *edgecache.Scenario) { s.WithDensity(0) })
	for _, p := range []edgecache.Planner{edgecache.Offline(), edgecache.RHC(3), edgecache.AFHC(3), edgecache.LRFU()} {
		run, err := edgecache.Simulate(context.Background(), in, pred, p)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if run.Cost.Total != 0 {
			t.Fatalf("%s: cost %g on zero demand, want 0", run.Policy, run.Cost.Total)
		}
	}
}

func TestEdgeZeroCacheCapacity(t *testing.T) {
	in, pred := buildSmall(t, func(s *edgecache.Scenario) { s.WithCache(0) })
	null := in.NoCachingCost()
	for _, p := range []edgecache.Planner{edgecache.Offline(), edgecache.RHC(3), edgecache.LRFU()} {
		run, err := edgecache.Simulate(context.Background(), in, pred, p)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if run.Cost.Total != null {
			t.Fatalf("%s: cost %g with zero cache, want no-caching cost %g", run.Policy, run.Cost.Total, null)
		}
	}
}

func TestEdgeZeroBandwidth(t *testing.T) {
	in, pred := buildSmall(t, func(s *edgecache.Scenario) { s.WithBandwidth(0) })
	run, err := edgecache.Simulate(context.Background(), in, pred, edgecache.Offline())
	if err != nil {
		t.Fatal(err)
	}
	// Nothing can be served by the SBS; BS cost equals the null cost.
	if run.Cost.BS != in.NoCachingCost() {
		t.Fatalf("BS cost %g with zero bandwidth, want %g", run.Cost.BS, in.NoCachingCost())
	}
}

func TestEdgeCapacityExceedsCatalogue(t *testing.T) {
	in, pred := buildSmall(t, func(s *edgecache.Scenario) { s.WithCache(20) })
	run, err := edgecache.Simulate(context.Background(), in, pred, edgecache.RHC(3))
	if err != nil {
		t.Fatal(err)
	}
	if run.Cost.Total <= 0 {
		t.Fatal("suspicious zero cost")
	}
}

func TestEdgeSingleSlotHorizon(t *testing.T) {
	in, pred := buildSmall(t, func(s *edgecache.Scenario) { s.WithHorizon(1) })
	for _, p := range []edgecache.Planner{edgecache.Offline(), edgecache.RHC(3), edgecache.CHC(3, 2), edgecache.LRFU()} {
		if _, err := edgecache.Simulate(context.Background(), in, pred, p); err != nil {
			t.Fatalf("T=1: %v", err)
		}
	}
}

func TestEdgeWindowExceedsHorizon(t *testing.T) {
	in, pred := buildSmall(t, nil)
	run, err := edgecache.Simulate(context.Background(), in, pred, edgecache.RHC(50))
	if err != nil {
		t.Fatal(err)
	}
	if len(run.PerSlot) != in.T {
		t.Fatal("wrong horizon")
	}
}

func TestEdgeInitialCachePropagates(t *testing.T) {
	in, pred := buildSmall(t, func(s *edgecache.Scenario) { s.WithBeta(1000) })
	// Pre-warm the cache with the offline solution's first placement: an
	// instance starting warm should pay less replacement cost.
	coldRun, err := edgecache.Simulate(context.Background(), in, pred, edgecache.Offline())
	if err != nil {
		t.Fatal(err)
	}
	warm := *in
	warm.InitialCache = coldRun.Trajectory[0].X.Clone()
	if err := warm.Validate(); err != nil {
		t.Fatal(err)
	}
	warmRun, err := edgecache.Simulate(context.Background(), &warm, pred, edgecache.Offline())
	if err != nil {
		t.Fatal(err)
	}
	if warmRun.Cost.Replacement >= coldRun.Cost.Replacement {
		t.Fatalf("warm start did not reduce replacement cost: %g vs %g",
			warmRun.Cost.Replacement, coldRun.Cost.Replacement)
	}
}

// The multi-SBS pipeline end to end, with SBS costs enabled.
func TestEdgeMultiSBSWithSBSCost(t *testing.T) {
	scn := edgecache.NewScenario(3, 6, 3, 6).
		WithCache(2).
		WithBandwidth(5).
		WithBeta(10).
		WithSBSWeightRatio(0.05).
		WithSeed(8)
	in, pred, err := scn.Build()
	if err != nil {
		t.Fatal(err)
	}
	runs, err := edgecache.Compare(context.Background(), in, pred, []edgecache.Planner{edgecache.Offline(), edgecache.RHC(3), edgecache.LRFU()})
	if err != nil {
		t.Fatal(err)
	}
	if runs[0].Cost.SBS <= 0 {
		t.Fatal("SBS cost did not engage despite nonzero ŵ")
	}
	if runs[0].Cost.Total > runs[2].Cost.Total*1.001 {
		t.Fatalf("offline %g worse than LRFU %g", runs[0].Cost.Total, runs[2].Cost.Total)
	}
}

// Determinism: two identical runs produce byte-identical cost breakdowns.
func TestEndToEndDeterminism(t *testing.T) {
	run := func() edgecache.CostBreakdown {
		in, pred := buildSmall(t, nil)
		return totalOf(t, in, pred, edgecache.CHC(4, 2))
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

// Cross-check the façade against internals: PaperScenario equals
// workload.PaperDefault.
func TestPaperScenarioMatchesInternalDefault(t *testing.T) {
	in, _, err := edgecache.PaperScenario().Build()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := workload.BuildInstance(workload.PaperDefault())
	if err != nil {
		t.Fatal(err)
	}
	if in.K != ref.K || in.T != ref.T || in.CacheCap[0] != ref.CacheCap[0] || in.Bandwidth[0] != ref.Bandwidth[0] {
		t.Fatal("façade defaults diverge from workload.PaperDefault")
	}
	if in.Demand.At(0, 0, 0, 0) != ref.Demand.At(0, 0, 0, 0) {
		t.Fatal("demand generation diverges")
	}
	var _ model.CachePlan = in.InitialPlan() // type-level check of the alias surface
}
