// Caching (P1) kernel benchmarks: the flow-vs-simplex ablation from
// DESIGN.md §4 and the dual-sweep workspace path with per-(t, n) dirty-row
// scheduling (DESIGN.md §12).
package edgecache_test

import (
	"context"
	"math/rand/v2"
	"testing"

	"edgecache/internal/caching"
	"edgecache/internal/workload"
)

// benchSubproblem builds a P1 instance representative of one paper-scale
// window solve (K = 30, horizon = 10, C = 5).
func benchSubproblem() *caching.Subproblem {
	rng := rand.New(rand.NewPCG(1, 2))
	sp := &caching.Subproblem{K: 30, Capacity: 5, Beta: 100, Reward: make([][]float64, 10)}
	for t := range sp.Reward {
		sp.Reward[t] = make([]float64, sp.K)
		for k := range sp.Reward[t] {
			sp.Reward[t][k] = rng.Float64() * 200
		}
	}
	return sp
}

func BenchmarkP1_FlowVsSimplex(b *testing.B) {
	sp := benchSubproblem()
	b.Run("flow", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := sp.SolveFlow(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("simplex", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := sp.SolveLP(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkP1_DualSweep compares one full P1 sweep (all SBS placements
// under fresh dual rewards) on the from-scratch workspace path ("fresh":
// Reset + full SetCost sweep + zero-flow Solve per SBS) against the
// delta-aware path ("incremental": only dirty (t, n) reward rows are
// retargeted, clean SBSs are skipped outright and the flow is re-optimised
// via mcflow.Resolve). Each incremental iteration perturbs two reward rows
// — the steady state of a nearly-converged dual loop — and must run
// allocation-free.
func BenchmarkP1_DualSweep(b *testing.B) {
	cfg := workload.PaperDefault()
	cfg.N = 6 // multi-cell: dirty rows touch ≤2 SBSs, the rest skip
	cfg.T = 10
	cfg.K = 12
	cfg.ClassesPerSBS = 8
	cfg.CacheCap = 3
	in, err := workload.BuildInstance(cfg)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(21, 22))
	rewards := make([][][]float64, in.T)
	for t := range rewards {
		rewards[t] = make([][]float64, in.N)
		for n := range rewards[t] {
			rewards[t][n] = make([]float64, in.K)
			for k := range rewards[t][n] {
				rewards[t][n][k] = rng.Float64() * 100
			}
		}
	}
	dirty := make([][]bool, in.T)
	for t := range dirty {
		dirty[t] = make([]bool, in.N)
	}

	b.Run("fresh", func(b *testing.B) {
		ws := caching.NewWorkspace()
		ws.Bind(in)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := ws.SolveAll(context.Background(), rewards); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("incremental", func(b *testing.B) {
		ws := caching.NewWorkspace()
		ws.Bind(in)
		if _, _, err := ws.SolveAll(context.Background(), rewards); err != nil {
			b.Fatal(err)
		}
		step := func() {
			for t := range dirty {
				for n := range dirty[t] {
					dirty[t][n] = false
				}
			}
			for j := 0; j < 2; j++ {
				t, n := rng.IntN(in.T), rng.IntN(in.N)
				row := rewards[t][n]
				row[rng.IntN(in.K)] = rng.Float64() * 100
				dirty[t][n] = true
			}
			if _, _, err := ws.SolveAllRows(context.Background(), rewards, dirty); err != nil {
				b.Fatal(err)
			}
		}
		// Flush amortized growth (dirty lists, telemetry buckets) so the
		// timed loop measures the allocation-free steady state.
		for i := 0; i < 8; i++ {
			step()
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			step()
		}
	})
}
