// Benchmarks: one per paper table/figure (regenerating its series at the
// Quick experiment scale) plus the cross-cutting ablation benches from
// DESIGN.md §4 (rounding threshold, subgradient step schedule), the
// offline-solver benches and the sparse/web-scale suite. Kernel-specific
// benchmarks live in per-kernel files alongside this one:
//
//	bench_mcflow_test.go       min-cost flow: SSP solve, incremental Resolve
//	bench_caching_test.go      P1: flow vs simplex, dirty-row dual sweep
//	bench_loadbalance_test.go  P2: FISTA vs PGD, projection, dual sweep
//	bench_online_test.go       controllers, warm-window incremental solve
//
// The figure benches exist so `go test -bench=.` demonstrably exercises
// every experiment end to end; the full-scale numbers live in
// EXPERIMENTS.md and come from `go run ./cmd/experiments`.
package edgecache_test

import (
	"context"
	"io"
	"testing"

	"edgecache/internal/baseline"
	"edgecache/internal/core"
	"edgecache/internal/experiments"
	"edgecache/internal/model"
	"edgecache/internal/obs"
	"edgecache/internal/trace"
	"edgecache/internal/workload"
)

// --- figure/table benches (E1–E5 of DESIGN.md §4) --------------------------

func BenchmarkFig2_BetaSweep(b *testing.B) {
	s := experiments.Quick()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig2(context.Background(), []float64{0, 20, 60}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3_WindowSweep(b *testing.B) {
	s := experiments.Quick()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig3(context.Background(), []int{2, 4, 6}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4_BandwidthSweep(b *testing.B) {
	s := experiments.Quick()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig4(context.Background(), []float64{3, 5, 10}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5_NoiseSweep(b *testing.B) {
	s := experiments.Quick()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig5(context.Background(), []float64{0, 0.2, 0.4}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHeadline_CostRatios(b *testing.B) {
	s := experiments.Quick()
	for i := 0; i < b.N; i++ {
		if _, err := s.Headline(context.Background(), 20); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation benches -------------------------------------------------------

func BenchmarkRounding_RhoSweep(b *testing.B) {
	s := experiments.Quick()
	for i := 0; i < b.N; i++ {
		if _, err := s.RhoSweep(context.Background(), []float64{0.25, 0.382, 0.6}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDual_StepSchedule(b *testing.B) {
	cfg := workload.PaperDefault()
	cfg.T = 8
	cfg.K = 10
	cfg.ClassesPerSBS = 8
	cfg.CacheCap = 3
	cfg.Bandwidth = 8
	in, err := workload.BuildInstance(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, alpha := range []float64{0.02, 0.05, 0.2} {
		b.Run(stepName(alpha), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Solve(context.Background(), in, core.Options{MaxIter: 20, StallIter: -1, StepAlpha: alpha}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func stepName(alpha float64) string {
	switch alpha {
	case 0.02:
		return "alpha=0.02"
	case 0.05:
		return "alpha=0.05"
	default:
		return "alpha=0.20"
	}
}

func BenchmarkCHC_Commitment(b *testing.B) {
	s := experiments.Quick()
	for i := 0; i < b.N; i++ {
		if _, err := s.CommitmentSweep(context.Background(), []int{1, 2, 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- solver/controller benches ----------------------------------------------

func benchInstance(b *testing.B) (*model.Instance, *workload.Predictor) {
	b.Helper()
	cfg := workload.PaperDefault()
	cfg.T = 10
	cfg.K = 12
	cfg.ClassesPerSBS = 8
	cfg.CacheCap = 3
	cfg.Bandwidth = 8
	cfg.Beta = 20
	in, err := workload.BuildInstance(cfg)
	if err != nil {
		b.Fatal(err)
	}
	pred, err := workload.NewPredictor(in.Demand, 0.1, 1)
	if err != nil {
		b.Fatal(err)
	}
	return in, pred
}

func BenchmarkOffline_PrimalDual(b *testing.B) {
	in, _ := benchInstance(b)
	for i := 0; i < b.N; i++ {
		if _, err := core.Solve(context.Background(), in, core.Options{MaxIter: 15, StallIter: 6}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolve_Instrumented measures the cost of the telemetry layer on
// the offline solver: "disabled" is the default nil-handle path (the one
// every production solve takes unless -trace is passed) and must stay
// within noise of BenchmarkOffline_PrimalDual; "enabled" streams every
// solver_iteration event through the JSONL sink to io.Discard and bounds
// the worst-case tracing cost.
func BenchmarkSolve_Instrumented(b *testing.B) {
	in, _ := benchInstance(b)
	b.Run("disabled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Solve(context.Background(), in, core.Options{MaxIter: 15, StallIter: 6}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("enabled", func(b *testing.B) {
		sink := obs.NewJSONL(io.Discard)
		tel := obs.New(sink, nil)
		for i := 0; i < b.N; i++ {
			if _, err := core.Solve(context.Background(), in, core.Options{MaxIter: 15, StallIter: 6, Telemetry: tel}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- substrate micro-benches -------------------------------------------------

func BenchmarkTrace_GenerateAndReplay(b *testing.B) {
	cfg := workload.PaperDefault()
	cfg.T = 20
	in, err := workload.BuildInstance(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := trace.Generate(in.Demand, uint64(i))
		if _, err := trace.Replay(tr, 0, trace.NewLRU()(in.CacheCap[0])); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBaseline_LRFUPlan(b *testing.B) {
	cfg := workload.PaperDefault()
	cfg.T = 20
	in, err := workload.BuildInstance(cfg)
	if err != nil {
		b.Fatal(err)
	}
	pol := baseline.NewLRFU()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pol.Plan(context.Background(), in); err != nil {
			b.Fatal(err)
		}
	}
}

// --- workspace (zero-reallocation) benches ----------------------------------

// BenchmarkOffline_PrimalDualWorkspace is BenchmarkOffline_PrimalDual with
// one solver workspace carried across solves — the steady state of a
// receding-horizon controller, where the P1 flow networks, the P2
// subproblem state and all solver scratch are recycled between windows.
func BenchmarkOffline_PrimalDualWorkspace(b *testing.B) {
	in, _ := benchInstance(b)
	ws := core.NewWorkspace()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Solve(context.Background(), in, core.Options{MaxIter: 15, StallIter: 6, Workspace: ws}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- sparse / web-scale benches (DESIGN.md §11) ------------------------------

// reportPeakRSS attaches the process peak RSS to a benchmark via
// b.ReportMetric; cmd/bench records the pair in the suite's extra map.
// The value is a process-wide high-water mark (earlier benchmarks in
// the same run contribute), so it is an upper bound — meaningful here
// because the sparse-scale suite is by far the largest allocator in
// the binary.
func reportPeakRSS(b *testing.B) {
	b.Helper()
	if rss, _ := obs.PeakRSSBytes(); rss > 0 {
		b.ReportMetric(float64(rss)/(1<<20), "peak-RSS-MiB")
	}
}

// BenchmarkSparseScale_Generate builds the full web-scale instance from
// the README walkthrough — 1000 SBSs, a 10^6-item catalogue, 24 slots,
// ≤64 active contents per cell per slot — on the sparse demand backing.
// The dense tensor for this instance would be ~1.5 TiB; the sparse
// build must stay in the hundreds of MiB (the peak-RSS-MiB metric
// tracks it).
func BenchmarkSparseScale_Generate(b *testing.B) {
	cfg := workload.PaperDefault()
	cfg.N = 1000
	cfg.K = 1_000_000
	cfg.T = 24
	cfg.ClassesPerSBS = 8
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		in, err := workload.BuildInstanceWith(cfg, workload.WithSparse(64))
		if err != nil {
			b.Fatal(err)
		}
		if _, ok := in.Demand.(*model.SparseDemand); !ok {
			b.Fatalf("demand backing is %T", in.Demand)
		}
	}
	reportPeakRSS(b)
}

// BenchmarkSparseScale_ShardedSolve runs the sharded per-SBS solve on a
// 50-SBS slice of the web-scale scenario at identical per-shard scale
// (10^6-item catalogue, topK 64, T 24) — each shard is exactly the work
// one SBS costs in the full N=1000 run, so ns/op here scales linearly
// to the headline scenario (`go run ./cmd/jocsim -sparse` runs it
// whole).
func BenchmarkSparseScale_ShardedSolve(b *testing.B) {
	cfg := workload.PaperDefault()
	cfg.N = 50
	cfg.K = 1_000_000
	cfg.T = 24
	cfg.ClassesPerSBS = 8
	in, err := workload.BuildInstanceWith(cfg, workload.WithSparse(64))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SolveSharded(context.Background(), in, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
	reportPeakRSS(b)
}
