// Benchmarks: one per paper table/figure (regenerating its series at the
// Quick experiment scale) plus the ablation benches DESIGN.md calls out
// (P1 flow vs simplex, P2 FISTA vs PGD, rounding threshold, subgradient
// step schedule) and micro-benchmarks of the optimization substrates.
//
// The figure benches exist so `go test -bench=.` demonstrably exercises
// every experiment end to end; the full-scale numbers live in
// EXPERIMENTS.md and come from `go run ./cmd/experiments`.
package edgecache_test

import (
	"context"
	"io"
	"math/rand/v2"
	"testing"

	"edgecache/internal/baseline"
	"edgecache/internal/caching"
	"edgecache/internal/convex"
	"edgecache/internal/core"
	"edgecache/internal/experiments"
	"edgecache/internal/loadbalance"
	"edgecache/internal/mcflow"
	"edgecache/internal/model"
	"edgecache/internal/obs"
	"edgecache/internal/online"
	"edgecache/internal/projection"
	"edgecache/internal/trace"
	"edgecache/internal/workload"
)

// --- figure/table benches (E1–E5 of DESIGN.md §4) --------------------------

func BenchmarkFig2_BetaSweep(b *testing.B) {
	s := experiments.Quick()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig2(context.Background(), []float64{0, 20, 60}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3_WindowSweep(b *testing.B) {
	s := experiments.Quick()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig3(context.Background(), []int{2, 4, 6}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4_BandwidthSweep(b *testing.B) {
	s := experiments.Quick()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig4(context.Background(), []float64{3, 5, 10}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5_NoiseSweep(b *testing.B) {
	s := experiments.Quick()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig5(context.Background(), []float64{0, 0.2, 0.4}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHeadline_CostRatios(b *testing.B) {
	s := experiments.Quick()
	for i := 0; i < b.N; i++ {
		if _, err := s.Headline(context.Background(), 20); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation benches -------------------------------------------------------

// benchSubproblem builds a P1 instance representative of one paper-scale
// window solve (K = 30, horizon = 10, C = 5).
func benchSubproblem() *caching.Subproblem {
	rng := rand.New(rand.NewPCG(1, 2))
	sp := &caching.Subproblem{K: 30, Capacity: 5, Beta: 100, Reward: make([][]float64, 10)}
	for t := range sp.Reward {
		sp.Reward[t] = make([]float64, sp.K)
		for k := range sp.Reward[t] {
			sp.Reward[t][k] = rng.Float64() * 200
		}
	}
	return sp
}

func BenchmarkP1_FlowVsSimplex(b *testing.B) {
	sp := benchSubproblem()
	b.Run("flow", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := sp.SolveFlow(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("simplex", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := sp.SolveLP(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchSlotProblem builds a paper-scale P2 slot problem (30 classes × 30
// contents) with an active bandwidth constraint.
func benchSlotProblem() *loadbalance.SlotProblem {
	rng := rand.New(rand.NewPCG(3, 4))
	m, k := 30, 30
	p := &loadbalance.SlotProblem{
		M: m, K: k,
		Lambda:    make([]float64, m*k),
		OmegaBS:   make([]float64, m),
		OmegaSBS:  make([]float64, m),
		Bandwidth: 30,
		Mu:        make([]float64, m*k),
	}
	for i := range p.Lambda {
		p.Lambda[i] = rng.Float64() * 0.15
	}
	for i := range p.OmegaBS {
		p.OmegaBS[i] = rng.Float64()
	}
	for i := range p.Mu {
		p.Mu[i] = rng.Float64() * 5
	}
	return p
}

func BenchmarkP2_FISTAvsPGD(b *testing.B) {
	p := benchSlotProblem()
	for _, method := range []convex.Method{convex.FISTA, convex.PGD} {
		b.Run(method.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := p.Solve(nil, convex.Options{Method: method, MaxIter: 600, StepTol: 1e-6}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkRounding_RhoSweep(b *testing.B) {
	s := experiments.Quick()
	for i := 0; i < b.N; i++ {
		if _, err := s.RhoSweep(context.Background(), []float64{0.25, 0.382, 0.6}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDual_StepSchedule(b *testing.B) {
	cfg := workload.PaperDefault()
	cfg.T = 8
	cfg.K = 10
	cfg.ClassesPerSBS = 8
	cfg.CacheCap = 3
	cfg.Bandwidth = 8
	in, err := workload.BuildInstance(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, alpha := range []float64{0.02, 0.05, 0.2} {
		b.Run(stepName(alpha), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Solve(context.Background(), in, core.Options{MaxIter: 20, StallIter: -1, StepAlpha: alpha}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func stepName(alpha float64) string {
	switch alpha {
	case 0.02:
		return "alpha=0.02"
	case 0.05:
		return "alpha=0.05"
	default:
		return "alpha=0.20"
	}
}

func BenchmarkCHC_Commitment(b *testing.B) {
	s := experiments.Quick()
	for i := 0; i < b.N; i++ {
		if _, err := s.CommitmentSweep(context.Background(), []int{1, 2, 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- solver/controller benches ----------------------------------------------

func benchInstance(b *testing.B) (*model.Instance, *workload.Predictor) {
	b.Helper()
	cfg := workload.PaperDefault()
	cfg.T = 10
	cfg.K = 12
	cfg.ClassesPerSBS = 8
	cfg.CacheCap = 3
	cfg.Bandwidth = 8
	cfg.Beta = 20
	in, err := workload.BuildInstance(cfg)
	if err != nil {
		b.Fatal(err)
	}
	pred, err := workload.NewPredictor(in.Demand, 0.1, 1)
	if err != nil {
		b.Fatal(err)
	}
	return in, pred
}

func BenchmarkOffline_PrimalDual(b *testing.B) {
	in, _ := benchInstance(b)
	for i := 0; i < b.N; i++ {
		if _, err := core.Solve(context.Background(), in, core.Options{MaxIter: 15, StallIter: 6}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolve_Instrumented measures the cost of the telemetry layer on
// the offline solver: "disabled" is the default nil-handle path (the one
// every production solve takes unless -trace is passed) and must stay
// within noise of BenchmarkOffline_PrimalDual; "enabled" streams every
// solver_iteration event through the JSONL sink to io.Discard and bounds
// the worst-case tracing cost.
func BenchmarkSolve_Instrumented(b *testing.B) {
	in, _ := benchInstance(b)
	b.Run("disabled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Solve(context.Background(), in, core.Options{MaxIter: 15, StallIter: 6}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("enabled", func(b *testing.B) {
		sink := obs.NewJSONL(io.Discard)
		tel := obs.New(sink, nil)
		for i := 0; i < b.N; i++ {
			if _, err := core.Solve(context.Background(), in, core.Options{MaxIter: 15, StallIter: 6, Telemetry: tel}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkOnline_Controllers(b *testing.B) {
	in, pred := benchInstance(b)
	for _, cfg := range []online.Config{online.RHC(4), online.CHC(4, 2), online.AFHC(4)} {
		b.Run(cfg.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := online.Run(context.Background(), in, pred, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- substrate micro-benches -------------------------------------------------

func BenchmarkProjection_BoxKnapsack(b *testing.B) {
	rng := rand.New(rand.NewPCG(5, 6))
	n := 900
	z := make([]float64, n)
	lo := make([]float64, n)
	hi := make([]float64, n)
	c := make([]float64, n)
	for i := range z {
		z[i] = rng.Float64() * 2
		hi[i] = 1
		c[i] = rng.Float64() * 0.2
	}
	dst := make([]float64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := projection.BoxKnapsack(dst, z, lo, hi, c, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMCFlow_SuccessiveShortestPaths(b *testing.B) {
	// A layered DAG the size of a paper-scale P1 window network
	// (~600 nodes), with mixed-sign costs.
	rng := rand.New(rand.NewPCG(7, 8))
	const layers, width = 30, 20
	build := func() *mcflow.Graph {
		g := mcflow.NewGraph(layers*width + 2)
		src, snk := layers*width, layers*width+1
		for i := 0; i < width; i++ {
			g.AddArc(src, i, 1, 0)
			g.AddArc((layers-1)*width+i, snk, 1, 0)
		}
		for l := 0; l+1 < layers; l++ {
			for i := 0; i < width; i++ {
				for _, j := range []int{i, (i + 1) % width} {
					g.AddArc(l*width+i, (l+1)*width+j, 1, rng.Float64()*4-1)
				}
			}
		}
		return g
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := build()
		if _, err := g.Solve(layers*width, layers*width+1, 5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLoadBalance_GreedyRecovery(b *testing.B) {
	cfg := workload.PaperDefault()
	cfg.T = 2
	in, err := workload.BuildInstance(cfg)
	if err != nil {
		b.Fatal(err)
	}
	x := model.NewCachePlan(in.N, in.K)
	for k := 0; k < in.CacheCap[0]; k++ {
		x[0][k] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := loadbalance.OptimalGivenPlacement(in, 0, x, convex.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrace_GenerateAndReplay(b *testing.B) {
	cfg := workload.PaperDefault()
	cfg.T = 20
	in, err := workload.BuildInstance(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := trace.Generate(in.Demand, uint64(i))
		if _, err := trace.Replay(tr, 0, trace.NewLRU()(in.CacheCap[0])); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBaseline_LRFUPlan(b *testing.B) {
	cfg := workload.PaperDefault()
	cfg.T = 20
	in, err := workload.BuildInstance(cfg)
	if err != nil {
		b.Fatal(err)
	}
	pol := baseline.NewLRFU()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pol.Plan(context.Background(), in); err != nil {
			b.Fatal(err)
		}
	}
}

// --- workspace (zero-reallocation) benches ----------------------------------

// BenchmarkOffline_PrimalDualWorkspace is BenchmarkOffline_PrimalDual with
// one solver workspace carried across solves — the steady state of a
// receding-horizon controller, where the P1 flow networks, the P2
// subproblem state and all solver scratch are recycled between windows.
func BenchmarkOffline_PrimalDualWorkspace(b *testing.B) {
	in, _ := benchInstance(b)
	ws := core.NewWorkspace()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Solve(context.Background(), in, core.Options{MaxIter: 15, StallIter: 6, Workspace: ws}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkP2_DualSweep compares one full dual iteration of P2 (all T×N
// slot solves) on the per-call path ("fresh": bind + solve, what a cold
// SolveAll pays) against a pre-bound workspace ("reused": the steady-state
// dual iteration of Algorithm 1, zero allocations).
func BenchmarkP2_DualSweep(b *testing.B) {
	cfg := workload.PaperDefault()
	cfg.T = 10
	cfg.K = 12
	cfg.ClassesPerSBS = 8
	cfg.Bandwidth = 8
	in, err := workload.BuildInstance(cfg)
	if err != nil {
		b.Fatal(err)
	}
	mu := make([][][]float64, in.T)
	rng := rand.New(rand.NewPCG(51, 52))
	for t := range mu {
		mu[t] = make([][]float64, in.N)
		for n := range mu[t] {
			mu[t][n] = make([]float64, in.Classes[n]*in.K)
			for i := range mu[t][n] {
				mu[t][n][i] = rng.Float64()
			}
		}
	}
	opts := convex.Options{MaxIter: 600, StepTol: 1e-6}

	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := loadbalance.SolveAll(context.Background(), in, mu, nil, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reused", func(b *testing.B) {
		ws := loadbalance.NewWorkspace()
		ws.Bind(in)
		if _, err := ws.SolveDual(context.Background(), mu, opts); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ws.SolveDual(context.Background(), mu, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- sparse / web-scale benches (DESIGN.md §11) ------------------------------

// reportPeakRSS attaches the process peak RSS to a benchmark via
// b.ReportMetric; cmd/bench records the pair in the suite's extra map.
// The value is a process-wide high-water mark (earlier benchmarks in
// the same run contribute), so it is an upper bound — meaningful here
// because the sparse-scale suite is by far the largest allocator in
// the binary.
func reportPeakRSS(b *testing.B) {
	b.Helper()
	if rss, _ := obs.PeakRSSBytes(); rss > 0 {
		b.ReportMetric(float64(rss)/(1<<20), "peak-RSS-MiB")
	}
}

// BenchmarkSparseScale_Generate builds the full web-scale instance from
// the README walkthrough — 1000 SBSs, a 10^6-item catalogue, 24 slots,
// ≤64 active contents per cell per slot — on the sparse demand backing.
// The dense tensor for this instance would be ~1.5 TiB; the sparse
// build must stay in the hundreds of MiB (the peak-RSS-MiB metric
// tracks it).
func BenchmarkSparseScale_Generate(b *testing.B) {
	cfg := workload.PaperDefault()
	cfg.N = 1000
	cfg.K = 1_000_000
	cfg.T = 24
	cfg.ClassesPerSBS = 8
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		in, err := workload.BuildInstanceWith(cfg, workload.WithSparse(64))
		if err != nil {
			b.Fatal(err)
		}
		if _, ok := in.Demand.(*model.SparseDemand); !ok {
			b.Fatalf("demand backing is %T", in.Demand)
		}
	}
	reportPeakRSS(b)
}

// BenchmarkSparseScale_ShardedSolve runs the sharded per-SBS solve on a
// 50-SBS slice of the web-scale scenario at identical per-shard scale
// (10^6-item catalogue, topK 64, T 24) — each shard is exactly the work
// one SBS costs in the full N=1000 run, so ns/op here scales linearly
// to the headline scenario (`go run ./cmd/jocsim -sparse` runs it
// whole).
func BenchmarkSparseScale_ShardedSolve(b *testing.B) {
	cfg := workload.PaperDefault()
	cfg.N = 50
	cfg.K = 1_000_000
	cfg.T = 24
	cfg.ClassesPerSBS = 8
	in, err := workload.BuildInstanceWith(cfg, workload.WithSparse(64))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SolveSharded(context.Background(), in, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
	reportPeakRSS(b)
}
