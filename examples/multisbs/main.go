// Multisbs: a heterogeneous deployment of four SBSs under one BS — a
// dense urban cell (big cache, big bandwidth), two standard picocells and
// an under-provisioned femtocell. SBS operating cost is enabled
// (ŵ = 0.01·ω per the paper's footnote on a 100× distance ratio), so the
// quadratic SBS term g_t participates.
//
// The joint problem separates across SBSs (each term of f, g, h involves
// one SBS), so per-SBS results are directly attributable; the example
// breaks the offload fraction out per SBS to show how the controller
// exploits heterogeneous capacity.
package main

import (
	"context"
	"fmt"
	"log"

	"edgecache"
)

func main() {
	scenario := edgecache.NewScenario(4, 30, 12, 36).
		WithCache(4).
		WithBandwidth(15).
		WithBeta(60).
		WithJitter(0.3).
		WithSBSWeightRatio(0.01).
		WithNoise(0.1).
		WithSeed(5)
	instance, predictions, err := scenario.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Heterogeneous provisioning: instance fields are exported exactly for
	// this kind of adjustment. Re-validate afterwards.
	instance.CacheCap = []int{8, 4, 4, 2}
	instance.Bandwidth = []float64{30, 15, 15, 6}
	if err := instance.Validate(); err != nil {
		log.Fatal(err)
	}

	runs, err := edgecache.Compare(context.Background(), instance, predictions,
		[]edgecache.Planner{
			edgecache.Offline(),
			edgecache.RHC(8),
			edgecache.LRFU(),
		})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("heterogeneous deployment: caches {8,4,4,2}, bandwidth {30,15,15,6}")
	fmt.Println()
	offline := runs[0].Cost.Total
	for _, r := range runs {
		fmt.Printf("%-9s total %9.1f  BS %9.1f  SBS %7.1f  repl %3d  vs offline %.3f×\n",
			r.Policy, r.Cost.Total, r.Cost.BS, r.Cost.SBS, r.Cost.Replacements, r.Cost.Total/offline)
	}

	// Per-SBS served volume under RHC.
	rhc := runs[1]
	fmt.Println("\nper-SBS offload under RHC (served demand / total demand):")
	for n := 0; n < instance.N; n++ {
		var served, demand float64
		for t := 0; t < instance.T; t++ {
			for m := 0; m < instance.Classes[n]; m++ {
				for k := 0; k < instance.K; k++ {
					rate := instance.Demand.At(t, n, m, k)
					served += rate * rhc.Trajectory[t].Y[n][m][k]
					demand += rate
				}
			}
		}
		fmt.Printf("  SBS %d (C=%d, B=%g): %5.1f%%\n",
			n, instance.CacheCap[n], instance.Bandwidth[n], 100*served/demand)
	}
	fmt.Println("\nbigger caches and pipes → higher offload; the femtocell saturates first.")
}
