// Flashcrowd: a stadium-event scenario. For most of the horizon demand
// follows the usual Zipf profile; during the event window a handful of
// event-related contents (replays, highlights) spike to many times their
// baseline rate, then collapse back.
//
// This stresses exactly the tension the paper formalises: reacting to the
// spike requires paying replacement cost β for contents that will be
// worthless again a few slots later. Prediction-driven controllers
// pre-fetch the event contents just in time and drop them afterwards;
// LRFU reacts one slot late on the way in and holds the dead contents on
// the way out.
package main

import (
	"context"
	"fmt"
	"log"

	"edgecache"
)

const (
	horizon    = 40
	eventStart = 15
	eventEnd   = 25
	spike      = 12.0 // event contents serve 12× their baseline demand
)

// eventContent marks the contents that spike during the event.
func eventContent(k int) bool { return k >= 20 && k < 24 }

func main() {
	scenario := edgecache.PaperScenario().
		WithHorizon(horizon).
		WithCatalogue(24).
		WithCache(4).
		WithBandwidth(25).
		WithBeta(80).
		WithJitter(0.2).
		WithNoise(0.1).
		WithSeed(99).
		WithDemandTransform(func(t, n, m, k int, rate float64) float64 {
			if t >= eventStart && t < eventEnd && eventContent(k) {
				return rate * spike
			}
			return rate
		})
	instance, predictions, err := scenario.Build()
	if err != nil {
		log.Fatal(err)
	}

	runs, err := edgecache.Compare(context.Background(), instance, predictions,
		[]edgecache.Planner{
			edgecache.Offline(),
			edgecache.RHC(6),
			edgecache.AFHC(6),
			edgecache.LRFU(),
		})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("flash crowd: contents 20–23 spike %gx during slots [%d, %d)\n\n", spike, eventStart, eventEnd)
	fmt.Println("slot-by-slot BS cost around the event (slots 12..28):")
	fmt.Print("slot:       ")
	for t := 12; t < 28; t++ {
		fmt.Printf("%7d", t)
	}
	fmt.Println()
	for _, r := range runs {
		fmt.Printf("%-11s ", r.Policy)
		for t := 12; t < 28; t++ {
			fmt.Printf("%7.0f", r.PerSlot[t].BS)
		}
		fmt.Println()
	}

	fmt.Println("\ntotals:")
	offline := runs[0].Cost.Total
	for _, r := range runs {
		fmt.Printf("  %-11s total %9.1f  replacements %3d  vs offline %.3f×\n",
			r.Policy, r.Cost.Total, r.Cost.Replacements, r.Cost.Total/offline)
	}
}
