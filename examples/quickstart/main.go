// Quickstart: build the paper's simulation scenario, run the offline
// optimum, one online controller and the LRFU baseline, and print their
// cost breakdowns.
package main

import (
	"context"
	"fmt"
	"log"

	"edgecache"
)

func main() {
	// The paper's §V-B setup, shortened to 40 slots for a fast demo.
	scenario := edgecache.PaperScenario().
		WithHorizon(40).
		WithBeta(50).
		WithSeed(7)
	instance, predictions, err := scenario.Build()
	if err != nil {
		log.Fatal(err)
	}

	runs, err := edgecache.Compare(context.Background(), instance, predictions,
		[]edgecache.Planner{
			edgecache.Offline(), // Algorithm 1 with full information
			edgecache.RHC(10),   // receding horizon, 10-slot forecasts
			edgecache.LRFU(),    // the paper's rule-based baseline
		})
	if err != nil {
		log.Fatal(err)
	}

	offline := runs[0].Cost.Total
	fmt.Println("algorithm    total      BS     replace  #repl  vs offline")
	for _, r := range runs {
		fmt.Printf("%-11s %8.1f %8.1f %8.1f %6d  %.3f×\n",
			r.Policy, r.Cost.Total, r.Cost.BS, r.Cost.Replacement,
			r.Cost.Replacements, r.Cost.Total/offline)
	}
}
