// Videostream: an edge video-CDN scenario with slowly drifting content
// popularity — the workload the paper's introduction motivates (live and
// on-demand video dominating mobile traffic).
//
// New releases climb the popularity ranking over days while old content
// decays: the generator models this by rotating the Zipf rank of every
// item one position per drift period. A switching-cost-aware controller
// follows the drift with few replacements; rule-based baselines either
// churn (LRFU replaces whenever the instantaneous ranking wiggles) or
// stagnate (a static cache decays as its contents fall down the ranking).
//
// The example prints the cost evolution in three phases of the horizon so
// the drift effect is visible, then the totals.
package main

import (
	"context"
	"fmt"
	"log"

	"edgecache"
)

func main() {
	const (
		horizon = 48 // e.g. 48 half-hour slots: one day
		drift   = 4  // ranking rotates every 4 slots
	)
	scenario := edgecache.PaperScenario().
		WithHorizon(horizon).
		WithCatalogue(24).
		WithCache(4).
		WithBandwidth(20).
		WithBeta(120).
		WithJitter(0.35).
		WithDrift(drift).
		WithZipf(0.9, 8). // moderately head-heavy with a contested mid-ranking
		WithNoise(0.1).
		WithSeed(2026)
	instance, predictions, err := scenario.Build()
	if err != nil {
		log.Fatal(err)
	}

	runs, err := edgecache.Compare(context.Background(), instance, predictions,
		[]edgecache.Planner{
			edgecache.Offline(),
			edgecache.RHC(8),
			edgecache.CHC(8, 4),
			edgecache.LRFU(),
			edgecache.StaticTop(), // never replaces: suffers most under drift
		})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("video CDN with popularity drift (rotate every %d slots, horizon %d)\n\n", drift, horizon)
	third := horizon / 3
	fmt.Println("BS operating cost by phase (early / mid / late):")
	for _, r := range runs {
		var phase [3]float64
		for t, m := range r.PerSlot {
			phase[min(t/third, 2)] += m.BS
		}
		fmt.Printf("  %-11s %9.1f %9.1f %9.1f\n", r.Policy, phase[0], phase[1], phase[2])
	}

	fmt.Println("\ntotals:")
	offline := runs[0].Cost.Total
	for _, r := range runs {
		fmt.Printf("  %-11s total %9.1f  replacements %3d  vs offline %.3f×\n",
			r.Policy, r.Cost.Total, r.Cost.Replacements, r.Cost.Total/offline)
	}
	fmt.Println("\nStaticTop's late-phase cost shows what ignoring drift costs;")
	fmt.Println("LRFU tracks the drift but pays for every ranking wiggle.")
}
