// Livecontrol: a multi-process live deployment of the streaming control
// plane. The parent process hosts the jocserve control loop (a
// serve.Server ticking on the wall clock); it then re-execs itself once
// per SBS as an edge-node process. Each edge node polls GET /v1/plan
// over HTTP, generates its own SBS's request traffic from a seeded
// trace, reports it via POST /v1/requests, and scores the published
// placement against its local traffic (cache hits). When the horizon
// completes, the nodes print their hit summaries and the parent prints
// the controller's totals.
//
// Run with:
//
//	go run ./examples/livecontrol
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/exec"
	"strconv"
	"time"

	"edgecache"
	"edgecache/internal/online"
	"edgecache/internal/serve"
	"edgecache/internal/trace"
)

const (
	sbsCount  = 3
	horizon   = 12
	catalogue = 12
	classes   = 6
	seed      = 42
	slotEvery = 150 * time.Millisecond
)

// nodeEnv marks a re-exec'd child and carries its SBS index.
const nodeEnv = "LIVECONTROL_NODE"

// addrEnv carries the parent's service address to the children.
const addrEnv = "LIVECONTROL_ADDR"

func main() {
	if idx := os.Getenv(nodeEnv); idx != "" {
		n, err := strconv.Atoi(idx)
		if err != nil {
			log.Fatalf("edge node: bad %s=%q", nodeEnv, idx)
		}
		if err := runEdgeNode(n, os.Getenv(addrEnv)); err != nil {
			log.Fatalf("edge node %d: %v", n, err)
		}
		return
	}
	if err := runControlPlane(); err != nil {
		log.Fatal(err)
	}
}

// buildInstance builds the shared deterministic scenario. Parent and
// children construct the identical instance (and trace) from the same
// constants, the way a fleet shares a config file.
func buildInstance() (*edgecache.Instance, error) {
	in, _, err := edgecache.NewScenario(sbsCount, catalogue, classes, horizon).
		WithCache(4).
		WithBandwidth(12).
		WithBeta(10).
		WithJitter(0.3).
		WithSeed(seed).
		Build()
	return in, err
}

func runControlPlane() error {
	ctx := context.Background()
	in, err := buildInstance()
	if err != nil {
		return err
	}
	ctrl, err := serve.New(ctx, in, serve.Config{
		Online:         online.CHC(4, 2),
		EstimatorFloor: -1,
	})
	if err != nil {
		return err
	}
	srv, err := serve.NewServer(serve.ServerConfig{
		Controller:   ctrl,
		SlotDuration: slotEvery,
	})
	if err != nil {
		return err
	}
	if err := srv.Start("localhost:0"); err != nil {
		return err
	}
	fmt.Printf("control plane: %d SBSs, T=%d, slot %s, serving on http://%s\n",
		sbsCount, horizon, slotEvery, srv.Addr())

	self, err := os.Executable()
	if err != nil {
		return err
	}
	nodes := make([]*exec.Cmd, sbsCount)
	for n := 0; n < sbsCount; n++ {
		cmd := exec.Command(self)
		cmd.Env = append(os.Environ(),
			fmt.Sprintf("%s=%d", nodeEnv, n),
			fmt.Sprintf("%s=%s", addrEnv, srv.Addr()))
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("spawn edge node %d: %w", n, err)
		}
		nodes[n] = cmd
	}

	// The ticker closes one slot per period; wait out the horizon.
	for !ctrl.Done() {
		time.Sleep(slotEvery / 4)
	}
	for n, cmd := range nodes {
		if err := cmd.Wait(); err != nil {
			return fmt.Errorf("edge node %d: %w", n, err)
		}
	}
	st := ctrl.Stats()
	fmt.Printf("control plane: horizon complete — %d requests ingested, %d window solves, %d dual iterations, %d degraded\n",
		st.Ingested, st.Solves, st.DualIters, st.Degraded)

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return srv.Shutdown(shutdownCtx)
}

// runEdgeNode is the child body: follow the published plan slot by
// slot, report this SBS's traffic, and score the placement locally.
func runEdgeNode(n int, addr string) error {
	in, err := buildInstance()
	if err != nil {
		return err
	}
	tr := trace.Generate(in.Demand, seed+1)
	client := &http.Client{Timeout: 10 * time.Second}
	base := "http://" + addr

	requests, hits := 0, 0
	reported := -1 // last slot whose traffic this node has posted
	for {
		resp, err := client.Get(base + "/v1/plan")
		if err != nil {
			return err
		}
		var plan serve.Plan
		err = json.NewDecoder(resp.Body).Decode(&plan)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if plan.Done {
			break
		}
		if plan.Slot > reported {
			reported = plan.Slot
			var batch []serve.Request
			for _, r := range tr.Slot(plan.Slot, n) {
				batch = append(batch, serve.Request{SBS: r.SBS, Class: r.Class, Content: r.Content})
				requests++
				// A request is a local hit when the published placement
				// caches the content at this SBS.
				if plan.X != nil && plan.X[n][r.Content] >= 0.5 {
					hits++
				}
			}
			if len(batch) > 0 {
				raw, err := json.Marshal(serve.IngestRequest{Requests: batch})
				if err != nil {
					return err
				}
				post, err := client.Post(base+"/v1/requests", "application/json", bytes.NewReader(raw))
				if err != nil {
					return err
				}
				io.Copy(io.Discard, post.Body)
				post.Body.Close()
				// A conflict means the ticker closed the horizon under us;
				// any other non-200 is a real error.
				if post.StatusCode != http.StatusOK && post.StatusCode != http.StatusConflict {
					return fmt.Errorf("report slot %d: status %d", plan.Slot, post.StatusCode)
				}
			}
		}
		time.Sleep(slotEvery / 8)
	}
	ratio := 0.0
	if requests > 0 {
		ratio = float64(hits) / float64(requests)
	}
	fmt.Printf("edge node %d: %d requests, %d cache hits (%.0f%%)\n", n, requests, hits, 100*ratio)
	return nil
}
