# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test test-short race staticcheck ci bench bench-diff trace-demo cover fuzz audit chaos chaos-live chaos-crash serve-smoke experiments report examples

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-enabled run of the concurrency-sensitive packages (what CI runs).
race:
	$(GO) test -race ./internal/parallel ./internal/sim ./internal/core ./internal/online ./internal/fault ./internal/obs ./internal/serve ./internal/workload

# Static analysis; CI installs the binary, locally this no-ops with a
# notice when staticcheck is not on PATH.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

# Everything .github/workflows/ci.yml checks, locally.
ci: build vet test race chaos serve-smoke chaos-live chaos-crash staticcheck bench bench-diff trace-demo

# Benchmark run recorded as JSON (see cmd/bench and DESIGN.md §8). CI uses
# the short BENCHTIME as a smoke pass; for tracked numbers use the default
# go benchtime:  make bench BENCHTIME=1s BENCH_LABEL=post-workspace
BENCHTIME ?= 100ms
BENCH_LABEL ?= local
BENCH_OUT ?= BENCH_$(shell date +%F).json
bench:
	$(GO) test -run '^$$' -bench=. -benchmem -benchtime=$(BENCHTIME) . \
		| $(GO) run ./cmd/bench -label "$(BENCH_LABEL)" -out "$(BENCH_OUT)" -merge

# Perf gate: fail when any benchmark's ns/op regressed more than
# BENCH_THRESHOLD percent — or its allocs/op more than
# BENCH_ALLOC_THRESHOLD percent, with zero-alloc baselines held to
# exactly zero — against the tracked baseline suite (DESIGN.md §8, §12).
# Run `make bench` first to record the current suite. The `incremental`
# suite in BENCH_2026-08-08.json re-anchors the baseline after the
# per-kernel bench split: it adds the delta-aware re-solve pairs
# (BenchmarkWarmWindowSolve_*, BenchmarkMCFlow_Resolve,
# BenchmarkP1_DualSweep, BenchmarkP2_DualSweep/dirty), several of which
# record 0 allocs/op steady states the alloc gate now enforces.
BENCH_BASELINE ?= BENCH_2026-08-08.json
BENCH_BASELINE_LABEL ?= incremental
BENCH_THRESHOLD ?= 15
BENCH_ALLOC_THRESHOLD ?= 25
bench-diff:
	$(GO) run ./cmd/bench -in "$(BENCH_OUT)" -label "$(BENCH_LABEL)" \
		-diff "$(BENCH_BASELINE)" -diff-label "$(BENCH_BASELINE_LABEL)" \
		-threshold $(BENCH_THRESHOLD) -alloc-threshold $(BENCH_ALLOC_THRESHOLD)

# Trace demo: run a small faulted scenario with span tracing on and
# assert the emitted Chrome trace parses with the expected hierarchy
# (run > version > window_solve > solve > dual_batch > phase). The
# artifact is viewable at https://ui.perfetto.dev.
TRACE_OUT ?= trace-demo.json
trace-demo:
	$(GO) run ./cmd/jocsim -T 16 -algs rhc -w 4 -trace-spans "$(TRACE_OUT)" \
		-faults "outage:n=0,from=6,to=10" -fault-seed 1 -flight
	$(GO) run ./cmd/tracecheck -min-depth 4 \
		-require run,version,window_solve,solve,dual_batch,loadbalance "$(TRACE_OUT)"

cover:
	$(GO) test -short -cover ./...

# Short fuzzing bursts over the numerical substrates and the
# differential solver cross-checks (solvers vs the exact oracle and the
# trajectory auditor; seed corpora live in each package's testdata/fuzz).
fuzz:
	$(GO) test -fuzz FuzzBoxKnapsack -fuzztime 30s ./internal/projection
	$(GO) test -fuzz FuzzSimplexProjection -fuzztime 30s ./internal/projection
	$(GO) test -fuzz FuzzSolve -fuzztime 30s ./internal/lp
	$(GO) test -fuzz FuzzDifferentialOffline -fuzztime 30s ./internal/core
	$(GO) test -fuzz FuzzDifferentialOnline -fuzztime 30s ./internal/online

# Differentially audit real runs end to end: every committed trajectory
# is re-derived (feasibility, integrality, independent cost recomputation)
# and any violation fails the command (DESIGN.md §9).
audit:
	$(GO) run ./cmd/jocsim -T 30 -audit -algs offline,rhc,chc,afhc,lrfu
	$(GO) run ./cmd/jocsim -T 30 -audit -slot-budget 5ms -algs rhc,chc
	$(GO) run ./cmd/experiments -scale quick -fig headline,rho -audit -progress=false

# Fixed-seed fault-matrix smoke: inject every failure class the fault
# subsystem models into audited runs — survival plus a clean audit of the
# faulted trajectory is the pass criterion (DESIGN.md §10).
chaos:
	$(GO) run ./cmd/jocsim -T 30 -audit -algs rhc,chc,afhc,lrfu \
		-faults "outage:n=0,from=10,to=18" -fault-seed 1
	$(GO) run ./cmd/jocsim -T 30 -audit -algs rhc,chc \
		-faults "bw:n=-1,from=5,to=25,factor=0.25; cap:n=0,from=8,to=16,lose=3" -fault-seed 1
	$(GO) run ./cmd/jocsim -T 30 -audit -algs rhc,chc \
		-faults "randoutage:rate=0.03,mean=3; corrupt:mode=spike,from=3,to=20,mag=5; solvererr:t=7; panic:t=12,attempts=2" -fault-seed 1
	$(GO) run ./cmd/experiments -scale quick -fig outage -audit -progress=false -seed 2

# Service smoke: boot jocserve with a mock clock, replay a deterministic
# request trace over real HTTP, kill and restore the service from its
# snapshot at mid-horizon, and require the final trajectory to match a
# golden batch replay bit for bit (DESIGN.md §13).
serve-smoke:
	$(GO) run ./cmd/jocserve -smoke -T 16 -K 10 -classes 6 -sbs 2 -C 3 -B 10 \
		-algo chc -w 4 -r 2
	$(GO) run ./cmd/jocserve -smoke -T 16 -K 10 -classes 6 -sbs 2 -C 3 -B 10 \
		-algo rhc -w 4

# Point the PR 5 fault schedules at the running service: the smoke
# harness under solver errors, an injected panic, prediction corruption
# and a bandwidth fault, with the kill/restore straddling the faults.
chaos-live:
	$(GO) run ./cmd/jocserve -smoke -T 16 -K 10 -classes 6 -sbs 2 -C 3 -B 10 \
		-algo rhc -w 4 -fault-seed 7 \
		-faults "solvererr:t=3,attempts=3; panic:t=10; corrupt:mode=spike,from=5,to=9,mag=3; bw:n=0,from=6,to=12,factor=0.5"
	$(GO) run ./cmd/jocserve -smoke -T 16 -K 10 -classes 6 -sbs 2 -C 3 -B 10 \
		-algo chc -w 4 -r 2 -fault-seed 3 \
		-faults "solvererr:t=2,attempts=3; corrupt:mode=dropout,rate=0.3,from=4,to=12; cap:n=1,from=8,to=14,lose=1"

# Crash chaos: kill -9 a real jocserve child process at seeded-random
# points — plain SIGKILL between HTTP operations plus exit(137) injected
# in the middle of WAL appends and snapshot publishes — at least 20
# times while replaying a deterministic trace, and require the recovered
# trajectory to be byte-identical to an unkilled run with zero
# acknowledged reports lost (DESIGN.md §14).
chaos-crash:
	$(GO) run ./cmd/jocserve -chaos 20 -chaos-seed 7 \
		-T 12 -K 6 -classes 4 -sbs 1 -C 2 -B 6 -beta 5 -algo rhc -w 4
	$(GO) run ./cmd/jocserve -chaos 20 -chaos-seed 3 \
		-T 12 -K 6 -classes 4 -sbs 1 -C 2 -B 6 -beta 5 -algo chc -w 4 -r 2 \
		-faults "solvererr:t=2,attempts=3" -fault-seed 7

# Regenerate every figure (slow: full sweeps on the default scale), then
# assemble EXPERIMENTS.md with machine-checked paper claims.
experiments:
	$(GO) run ./cmd/experiments -all -csv results/csv | tee results/tables.txt

report:
	$(GO) run ./cmd/report -csv results/csv -out EXPERIMENTS.md

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/videostream
	$(GO) run ./examples/flashcrowd
	$(GO) run ./examples/multisbs
	$(GO) run ./examples/livecontrol
