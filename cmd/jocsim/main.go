// Command jocsim runs one joint caching / load-balancing scenario and
// compares the selected algorithms on it.
//
// Usage:
//
//	jocsim                              # paper setup, all algorithms
//	jocsim -T 50 -beta 50 -eta 0.2     # overrides
//	jocsim -algs offline,rhc,lrfu      # subset
//	jocsim -slots                      # also print the per-slot series
//	jocsim -trace run.jsonl            # structured solver telemetry
//	jocsim -trace-spans run.json       # hierarchical spans, Chrome trace format (Perfetto)
//	jocsim -flight                     # flight recorder; dump on error or SIGQUIT
//	jocsim -curves                     # per-planner convergence / regret summary
//	jocsim -metrics                    # metrics registry after the runs
//	jocsim -debug-addr localhost:6060  # expvar + pprof + /metrics + /debug/solver
//	jocsim -timeout 30s                # cancel the whole run after 30s
//	jocsim -slot-budget 50ms           # bound each window solve; degrade on overrun
//	jocsim -audit                      # differentially audit every committed run
//	jocsim -faults "outage:n=0,from=10,to=20"   # inject an SBS outage
//	jocsim -faults chaos.json -fault-seed 7     # schedule from a file, reseeded
//	jocsim -sparse                     # web-scale sharded solve (N=1000, K=1e6, T=24)
//	jocsim -sparse -sbs 200 -K 100000 -sparse-topk 32   # reduced sparse scenario
//
// Ctrl-C (SIGINT) cancels the run cleanly: in-flight solves stop within
// one solver iteration and the command exits with the context error.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"text/tabwriter"
	"time"

	"edgecache"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "jocsim:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("jocsim", flag.ContinueOnError)
	var (
		horizon    = fs.Int("T", 60, "time slots")
		catalogue  = fs.Int("K", 30, "catalogue size")
		classes    = fs.Int("classes", 30, "user classes per SBS")
		sbs        = fs.Int("sbs", 1, "number of SBSs")
		cache      = fs.Int("C", 5, "cache capacity per SBS")
		bandwidth  = fs.Float64("B", 30, "SBS bandwidth per slot")
		beta       = fs.Float64("beta", 100, "cache replacement cost β")
		eta        = fs.Float64("eta", 0.1, "prediction noise η")
		window     = fs.Int("w", 10, "prediction window")
		commit     = fs.Int("r", 5, "CHC commitment level")
		jitter     = fs.Float64("jitter", 0.4, "demand temporal jitter")
		drift      = fs.Int("drift", 0, "popularity drift period (0 = off)")
		seed       = fs.Uint64("seed", 1, "workload seed")
		algsFlag   = fs.String("algs", "offline,rhc,chc,afhc,lrfu", "algorithms: offline,rhc,chc,afhc,fhc,lrfu,lfu,static,nocache,lru,fifo,clfu,clrfu")
		slots      = fs.Bool("slots", false, "print per-slot series")
		asJSON     = fs.Bool("json", false, "emit results as JSON instead of tables")
		stats      = fs.Bool("stats", false, "print workload statistics before results")
		config     = fs.String("config", "", "load scenario from a JSON file (flags below are ignored)")
		saveTo     = fs.String("saveconfig", "", "write the effective scenario to a JSON file and continue")
		traceTo    = fs.String("trace", "", "write structured telemetry events (JSONL) to this file")
		traceSpans = fs.String("trace-spans", "", "write hierarchical solver spans as a Chrome trace-event file (open in Perfetto or chrome://tracing)")
		flight     = fs.Bool("flight", false, "retain recent solver iterations/events in the flight recorder; dumped on error or SIGQUIT, live at /debug/solver")
		curves     = fs.Bool("curves", false, "capture and print per-planner convergence (dual gap) and regret curves")
		metrics    = fs.Bool("metrics", false, "print the metrics registry after the runs")
		debugAddr  = fs.String("debug-addr", "", "serve expvar, pprof, /metrics and /debug/solver on this address (e.g. localhost:6060)")
		timeout    = fs.Duration("timeout", 0, "cancel the whole run after this duration (0 = none)")
		slotBudget = fs.Duration("slot-budget", 0, "per-window solve budget; overruns degrade gracefully (0 = none)")
		auditRuns  = fs.Bool("audit", false, "re-derive every committed trajectory's feasibility, integrality and costs; exit non-zero on violations")
		faultSpec  = fs.String("faults", "", `fault schedule: a spec like "outage:n=0,from=10,to=20; bw:n=-1,from=5,factor=0.25" or a JSON file path`)
		faultSeed  = fs.Uint64("fault-seed", 0, "seed for randomised fault injectors (0 = the schedule's own seed)")
		sparse     = fs.Bool("sparse", false, "web-scale demo: sparse demand + sharded per-SBS offline solve (defaults to N=1000, K=1e6, T=24, classes=8 unless those flags are set)")
		sparseTopK = fs.Int("sparse-topk", 64, "contents with demand per (slot, SBS) in -sparse mode")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *sparse && *config == "" {
		// Web-scale defaults, yielded to any explicitly set flag.
		set := map[string]bool{}
		fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if !set["sbs"] {
			*sbs = 1000
		}
		if !set["K"] {
			*catalogue = 1_000_000
		}
		if !set["T"] {
			*horizon = 24
		}
		if !set["classes"] {
			*classes = 8
		}
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var sinks []edgecache.TelemetrySink
	if *traceTo != "" {
		f, err := os.Create(*traceTo)
		if err != nil {
			return err
		}
		sink := edgecache.NewJSONLSink(bufio.NewWriter(f))
		defer func() {
			sink.Close()
			f.Close()
		}()
		sinks = append(sinks, sink)
	}
	// The debug server's /debug/solver endpoint reads the same recorder,
	// so feed it whenever either consumer is active.
	if *flight || *debugAddr != "" {
		sinks = append(sinks, edgecache.DefaultFlight())
	}
	if *flight {
		// SIGQUIT (Ctrl-\) dumps the recorder without stopping the run.
		qc := make(chan os.Signal, 1)
		signal.Notify(qc, syscall.SIGQUIT)
		defer signal.Stop(qc)
		go func() {
			for range qc {
				_ = edgecache.DefaultFlight().WriteText(os.Stderr)
			}
		}()
	}
	var tel *edgecache.Telemetry
	switch len(sinks) {
	case 0:
	case 1:
		tel = edgecache.NewTelemetry(sinks[0])
	default:
		tel = edgecache.NewTelemetry(edgecache.TeeSinks(sinks...))
	}
	if *traceSpans != "" {
		tracer := edgecache.NewTracer(nil)
		ctx = edgecache.WithTracer(ctx, tracer)
		// Written in a defer so an aborted run still leaves a usable trace.
		defer func() {
			f, err := os.Create(*traceSpans)
			if err != nil {
				fmt.Fprintln(os.Stderr, "jocsim: trace-spans:", err)
				return
			}
			err = tracer.WriteChromeTrace(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "jocsim: trace-spans:", err)
				return
			}
			fmt.Fprintf(os.Stderr, "trace: %d span(s) written to %s (open in Perfetto)\n",
				len(tracer.Records()), *traceSpans)
		}()
	}
	if *debugAddr != "" {
		srv, err := edgecache.ServeDebug(*debugAddr)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "debug server: http://%s/debug/pprof/, /debug/vars, /metrics, /debug/solver\n", srv.Addr())
	}

	var scn *edgecache.Scenario
	if *config != "" {
		f, err := os.Open(*config)
		if err != nil {
			return err
		}
		scn, err = edgecache.LoadScenario(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		scn = edgecache.NewScenario(*sbs, *catalogue, *classes, *horizon).
			WithCache(*cache).
			WithBandwidth(*bandwidth).
			WithBeta(*beta).
			WithJitter(*jitter).
			WithDrift(*drift).
			WithNoise(*eta).
			WithSeed(*seed)
	}
	if *sparse {
		scn = scn.WithSparse(*sparseTopK)
	}
	if *saveTo != "" {
		f, err := os.Create(*saveTo)
		if err != nil {
			return err
		}
		if err := scn.Save(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	inst, pred, err := scn.Build()
	if err != nil {
		return err
	}
	if *sparse {
		_ = pred // the sharded demo is an offline solve; no predictions
		return runSparse(ctx, out, inst, *asJSON, *stats)
	}

	var planners []edgecache.Planner
	for _, name := range strings.Split(*algsFlag, ",") {
		switch strings.ToLower(strings.TrimSpace(name)) {
		case "offline":
			planners = append(planners, edgecache.Offline())
		case "rhc":
			planners = append(planners, edgecache.RHC(*window))
		case "chc":
			planners = append(planners, edgecache.CHC(*window, min(*commit, *window)))
		case "afhc":
			planners = append(planners, edgecache.AFHC(*window))
		case "fhc":
			planners = append(planners, edgecache.FHC(*window))
		case "lrfu":
			planners = append(planners, edgecache.LRFU())
		case "lfu":
			planners = append(planners, edgecache.LFU())
		case "static":
			planners = append(planners, edgecache.StaticTop())
		case "nocache":
			planners = append(planners, edgecache.NoCaching())
		case "lru":
			planners = append(planners, edgecache.ClassicLRU(*seed))
		case "fifo":
			planners = append(planners, edgecache.ClassicFIFO(*seed))
		case "clfu":
			planners = append(planners, edgecache.ClassicLFU(*seed))
		case "clrfu":
			planners = append(planners, edgecache.ClassicLRFU(0.1, *seed))
		case "":
		default:
			return fmt.Errorf("unknown algorithm %q", name)
		}
	}
	if len(planners) == 0 {
		return fmt.Errorf("no algorithms selected")
	}

	opts := []edgecache.RunOption{edgecache.WithTelemetry(tel)}
	if *slotBudget > 0 {
		opts = append(opts, edgecache.WithSlotBudget(*slotBudget))
	}
	if *auditRuns {
		opts = append(opts, edgecache.WithAudit())
	}
	if *faultSpec != "" {
		schedule, err := edgecache.LoadFaults(*faultSpec, *faultSeed)
		if err != nil {
			return err
		}
		opts = append(opts, edgecache.WithFaults(schedule))
	}
	if *curves {
		opts = append(opts, edgecache.WithCurves())
	}
	runs, err := edgecache.Compare(ctx, inst, pred, planners, opts...)
	if err != nil {
		if *flight {
			_ = edgecache.DefaultFlight().WriteText(os.Stderr)
		}
		return err
	}

	var auditErr error
	if *auditRuns {
		total := 0
		for _, r := range runs {
			if r.Audit == nil {
				continue
			}
			total += len(r.Audit.Violations)
			for _, v := range r.Audit.Violations {
				fmt.Fprintf(os.Stderr, "audit: %s: %s\n", r.Policy, v)
			}
		}
		if total > 0 {
			auditErr = fmt.Errorf("audit found %d violation(s)", total)
		} else {
			fmt.Fprintf(os.Stderr, "audit: %d run(s) clean\n", len(runs))
		}
	}

	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Scenario edgecache.ScenarioConfig `json:"scenario"`
			Runs     []*edgecache.Run         `json:"runs"`
		}{scn.Config(), runs}); err != nil {
			return err
		}
		return auditErr
	}

	cfg := scn.Config()
	fmt.Fprintf(out, "scenario: N=%d K=%d M=%d T=%d C=%d B=%g beta=%g eta=%g w=%d seed=%d\n\n",
		cfg.SBS, cfg.Catalogue, cfg.Classes, cfg.Horizon, cfg.Cache, cfg.Bandwidth, cfg.Beta, cfg.Eta, *window, cfg.Seed)

	if *stats {
		ws := edgecache.DemandStatistics(inst.Demand)
		headIdx := min(cfg.Cache, len(ws.HeadMass)) - 1
		fmt.Fprintf(out, "workload: volume %.1f (%.1f/slot, peak %.1f@%d), top-%d mass %.0f%%, gini %.2f, temporal CV %.2f\n\n",
			ws.TotalVolume, ws.MeanPerSlot, ws.PeakPerSlot, ws.PeakSlot,
			cfg.Cache, 100*ws.HeadMass[headIdx], ws.Gini, ws.TemporalCV)
	}

	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "algorithm\ttotal\tBS cost\treplace cost\t#replace\truntime")
	base := runs[0].Cost.Total
	for _, r := range runs {
		fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%.1f\t%d\t%s\n",
			r.Policy, r.Cost.Total, r.Cost.BS, r.Cost.Replacement, r.Cost.Replacements, r.Runtime.Round(1000000))
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if len(runs) > 1 {
		fmt.Fprintf(out, "\nrelative to %s:\n", runs[0].Policy)
		for _, r := range runs[1:] {
			fmt.Fprintf(out, "  %-14s %.3f×\n", r.Policy, r.Cost.Total/base)
		}
	}
	if *curves {
		if err := printCurves(out, runs); err != nil {
			return err
		}
	}

	if *slots {
		fmt.Fprintln(out, "\nper-slot series (first algorithm):")
		sw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
		fmt.Fprintln(sw, "slot\tBS\treplace\t#repl\toffload\tcacheUtil")
		for t, m := range runs[0].PerSlot {
			fmt.Fprintf(sw, "%d\t%.1f\t%.1f\t%d\t%.2f\t%.2f\n",
				t, m.BS, m.Replacement, m.Replacements, m.OffloadFraction, m.CacheUtilization)
		}
		if err := sw.Flush(); err != nil {
			return err
		}
	}

	if *metrics {
		fmt.Fprintln(out, "\nmetrics:")
		if err := edgecache.DefaultMetrics().WriteText(out); err != nil {
			return err
		}
	}
	return auditErr
}

// runSparse is the -sparse path: one sharded offline solve of the
// (typically web-scale) instance, reported with its memory footprint.
// The per-SBS shards keep their trajectories sparse throughout, so the
// demo never materialises a dense [T][N][M][K] plane.
func runSparse(ctx context.Context, out io.Writer, inst *edgecache.Instance, asJSON, stats bool) error {
	nnz := -1
	if sd, ok := inst.Demand.(*edgecache.SparseDemand); ok {
		nnz = sd.NNZ()
	}
	start := time.Now()
	res, err := edgecache.SolveSharded(ctx, inst)
	if err != nil {
		return err
	}
	wall := time.Since(start)
	rss, exactRSS := edgecache.PeakRSS()

	if asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(struct {
			SBS          int                     `json:"sbs"`
			Catalogue    int                     `json:"catalogue"`
			Horizon      int                     `json:"horizon"`
			NNZ          int                     `json:"demandNNZ"`
			Cost         edgecache.CostBreakdown `json:"cost"`
			LowerBound   float64                 `json:"lowerBound"`
			Gap          float64                 `json:"gap"`
			Iterations   int                     `json:"iterations"`
			Converged    bool                    `json:"converged"`
			WallSeconds  float64                 `json:"wallSeconds"`
			PeakRSSBytes uint64                  `json:"peakRSSBytes"`
			ExactRSS     bool                    `json:"exactRSS"`
		}{inst.N, inst.K, inst.T, nnz, res.Cost, res.LowerBound,
			res.Gap, res.Iterations, res.Converged, wall.Seconds(), rss, exactRSS})
	}

	fmt.Fprintf(out, "sparse scenario: N=%d K=%d T=%d", inst.N, inst.K, inst.T)
	if nnz >= 0 {
		dense := float64(inst.T) * float64(inst.N) * float64(inst.K)
		fmt.Fprintf(out, " nnz=%d (density %.2g of the dense tensor)", nnz, float64(nnz)/dense)
	}
	fmt.Fprintln(out)
	if stats {
		ws := edgecache.DemandStatistics(inst.Demand)
		fmt.Fprintf(out, "workload: volume %.1f (%.1f/slot, peak %.1f@%d), gini %.2f, temporal CV %.2f\n",
			ws.TotalVolume, ws.MeanPerSlot, ws.PeakPerSlot, ws.PeakSlot, ws.Gini, ws.TemporalCV)
	}
	fmt.Fprintf(out, "sharded solve: cost %.1f (BS %.1f, SBS %.1f, replace %.1f, %d insertions)\n",
		res.Cost.Total, res.Cost.BS, res.Cost.SBS, res.Cost.Replacement, res.Cost.Replacements)
	fmt.Fprintf(out, "bounds: LB %.1f, gap %.4f, iterations(max) %d, converged %v\n",
		res.LowerBound, res.Gap, res.Iterations, res.Converged)
	suffix := ""
	if !exactRSS {
		suffix = " (runtime estimate; VmHWM unavailable)"
	}
	fmt.Fprintf(out, "resources: wall %s, peak RSS %.2f GiB%s\n",
		wall.Round(time.Millisecond), float64(rss)/(1<<30), suffix)
	return nil
}

// printCurves renders the per-planner convergence and regret summary
// captured by -curves: the dual-gap trajectory across the planner's
// solves and the committed cumulative cost against the relaxed
// (pre-rounding) objective — the empirical counterpart of the Theorem 3
// rounding bound (2.62× at ρ = (3−√5)/2). Baselines have no gap
// trajectory and no relaxed objective; their rows show the committed
// cost only.
func printCurves(out io.Writer, runs []*edgecache.Run) error {
	fmt.Fprintln(out, "\nconvergence / regret (Theorem 3 rounding bound 2.62×):")
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "algorithm\tgap pts\tfirst gap\tfinal gap\tcommitted\trelaxed\tcommitted/relaxed")
	for _, r := range runs {
		c := r.Curve
		if c == nil {
			continue
		}
		first, final := math.NaN(), math.NaN()
		if len(c.Gap) > 0 {
			first, final = c.Gap[0].Gap, c.Gap[len(c.Gap)-1].Gap
		}
		var committed float64
		if len(c.CumCost) > 0 {
			committed = c.CumCost[len(c.CumCost)-1]
		}
		ratio := "-"
		if c.RelaxedCost > 0 {
			ratio = fmt.Sprintf("%.3f×", committed/c.RelaxedCost)
		}
		fmt.Fprintf(w, "%s\t%d\t%.3g\t%.3g\t%.1f\t%.1f\t%s\n",
			r.Policy, len(c.Gap), first, final, committed, c.RelaxedCost, ratio)
	}
	return w.Flush()
}
