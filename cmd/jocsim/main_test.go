package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

// quickArgs keeps command tests fast on one core.
var quickArgs = []string{
	"-T", "6", "-K", "6", "-classes", "4", "-C", "2", "-B", "5",
	"-beta", "10", "-w", "3", "-r", "2",
}

func TestRunAllAlgorithms(t *testing.T) {
	var buf bytes.Buffer
	args := append([]string{"-algs", "offline,rhc,chc,afhc,lrfu,lfu,static,nocache"}, quickArgs...)
	if err := run(context.Background(), args, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Offline", "RHC(w=3)", "CHC(w=3,r=2)", "AFHC(w=3)", "LRFU", "LFU", "StaticTop", "NoCaching", "relative to Offline"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunSlotsFlag(t *testing.T) {
	var buf bytes.Buffer
	args := append([]string{"-algs", "lrfu", "-slots"}, quickArgs...)
	if err := run(context.Background(), args, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "per-slot series") {
		t.Fatal("per-slot series not printed")
	}
}

func TestRunRejectsUnknownAlgorithm(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), append([]string{"-algs", "nonsense"}, quickArgs...), &buf); err == nil {
		t.Fatal("accepted unknown algorithm")
	}
}

func TestRunRejectsEmptyAlgorithms(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), append([]string{"-algs", ","}, quickArgs...), &buf); err == nil {
		t.Fatal("accepted empty algorithm list")
	}
}

func TestRunRejectsBadScenario(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-T", "0"}, &buf); err == nil {
		t.Fatal("accepted zero horizon")
	}
}

func TestRunConfigRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/scenario.json"

	var first bytes.Buffer
	args := append([]string{"-algs", "lrfu", "-saveconfig", path}, quickArgs...)
	if err := run(context.Background(), args, &first); err != nil {
		t.Fatal(err)
	}
	// -w is controller state, not scenario state; pass it again on replay.
	var second bytes.Buffer
	if err := run(context.Background(), []string{"-algs", "lrfu", "-config", path, "-w", "3"}, &second); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Fatalf("config replay diverged:\n%s\nvs\n%s", first.String(), second.String())
	}
}

func TestRunConfigMissingFile(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-config", "/does/not/exist.json"}, &buf); err == nil {
		t.Fatal("accepted missing config file")
	}
}

func TestRunRejectsBadFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-definitely-not-a-flag"}, &buf); err == nil {
		t.Fatal("accepted unknown flag")
	}
}

func TestRunJSONOutput(t *testing.T) {
	var buf bytes.Buffer
	args := append([]string{"-algs", "lrfu,nocache", "-json"}, quickArgs...)
	if err := run(context.Background(), args, &buf); err != nil {
		t.Fatal(err)
	}
	var payload struct {
		Scenario map[string]any   `json:"scenario"`
		Runs     []map[string]any `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &payload); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(payload.Runs) != 2 {
		t.Fatalf("runs = %d", len(payload.Runs))
	}
	if payload.Runs[0]["policy"] != "LRFU" {
		t.Fatalf("first run %v", payload.Runs[0]["policy"])
	}
	if _, ok := payload.Runs[0]["cost"].(map[string]any)["total"]; !ok {
		t.Fatal("cost.total missing")
	}
	if payload.Scenario["horizon"].(float64) != 6 {
		t.Fatal("scenario not embedded")
	}
}

func TestSlotBudgetFlagDegradesGracefully(t *testing.T) {
	var buf bytes.Buffer
	args := append([]string{"-algs", "rhc", "-slot-budget", "1ns"}, quickArgs...)
	if err := run(context.Background(), args, &buf); err != nil {
		t.Fatalf("budgeted run failed instead of degrading: %v", err)
	}
	if !strings.Contains(buf.String(), "RHC(w=3)") {
		t.Fatalf("output missing the degraded run:\n%s", buf.String())
	}
}

func TestTimeoutFlagCancelsRun(t *testing.T) {
	var buf bytes.Buffer
	args := append([]string{"-algs", "offline,rhc", "-timeout", "1ns"}, quickArgs...)
	err := run(context.Background(), args, &buf)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want wrapped context.DeadlineExceeded", err)
	}
}

func TestCancelledContextAbortsRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var buf bytes.Buffer
	err := run(ctx, append([]string{"-algs", "offline"}, quickArgs...), &buf)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
}

func TestAuditFlagCleanRuns(t *testing.T) {
	var buf bytes.Buffer
	args := append([]string{"-algs", "offline,rhc,lrfu", "-audit"}, quickArgs...)
	if err := run(context.Background(), args, &buf); err != nil {
		t.Fatalf("audited run reported violations or failed: %v", err)
	}
	if !strings.Contains(buf.String(), "relative to Offline") {
		t.Fatal("audited run lost its normal output")
	}
}

func TestAuditFlagWithJSONAttachesReports(t *testing.T) {
	var buf bytes.Buffer
	args := append([]string{"-algs", "lrfu", "-audit", "-json"}, quickArgs...)
	if err := run(context.Background(), args, &buf); err != nil {
		t.Fatal(err)
	}
	var payload struct {
		Runs []map[string]any `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &payload); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	rep, ok := payload.Runs[0]["audit"].(map[string]any)
	if !ok {
		t.Fatalf("audit report missing from JSON run: %v", payload.Runs[0])
	}
	if _, ok := rep["recomputed"]; !ok {
		t.Fatal("audit report misses the recomputed breakdown")
	}
}

func TestAuditFlagWithBudgetedDegradation(t *testing.T) {
	// The degraded path must still commit trajectories that audit clean.
	var buf bytes.Buffer
	args := append([]string{"-algs", "rhc", "-audit", "-slot-budget", "1ns"}, quickArgs...)
	if err := run(context.Background(), args, &buf); err != nil {
		t.Fatalf("degraded audited run failed: %v", err)
	}
}

func TestRunWithFaults(t *testing.T) {
	var buf bytes.Buffer
	args := append([]string{
		"-algs", "rhc,lrfu", "-audit",
		"-faults", "outage:n=0,from=2,to=4; bw:n=0,from=4,factor=0.5",
	}, quickArgs...)
	if err := run(context.Background(), args, &buf); err != nil {
		t.Fatalf("faulted run failed: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "RHC(w=3)") {
		t.Fatalf("output missing RHC:\n%s", buf.String())
	}
}

func TestRunRejectsBadFaultSpec(t *testing.T) {
	var buf bytes.Buffer
	args := append([]string{"-algs", "lrfu", "-faults", "outage:n=0,from=-3"}, quickArgs...)
	if err := run(context.Background(), args, &buf); err == nil {
		t.Fatal("accepted malformed fault spec")
	}
}
