// Command tracecheck validates a Chrome trace-event file produced by
// the -trace-spans flag: the JSON must parse, every complete event must
// be well-formed (non-negative timestamps and durations, known parent),
// the span hierarchy must reach a minimum nesting depth, and required
// span names must be present. It is the assertion behind `make
// trace-demo` and the CI trace artifact.
//
// Usage:
//
//	tracecheck -min-depth 3 -require run,window_solve,loadbalance trace.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

// traceDoc mirrors the object flavour of the Chrome trace-event format.
type traceDoc struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

type traceEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur"`
	Args  map[string]any `json:"args"`
}

func main() {
	minDepth := flag.Int("min-depth", 3, "minimum span nesting depth the trace must reach (root = depth 1)")
	require := flag.String("require", "", "comma-separated span names that must appear")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-min-depth N] [-require a,b,c] trace.json")
		os.Exit(2)
	}
	if err := check(flag.Arg(0), *minDepth, splitList(*require)); err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
}

func splitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

func check(path string, minDepth int, required []string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc traceDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("%s: not valid Chrome trace JSON: %w", path, err)
	}

	// First pass: collect complete ("X") events and their span IDs.
	parent := map[uint64]uint64{} // span id -> parent id (0 = root)
	names := map[uint64]string{}
	seen := map[string]bool{}
	var spans int
	for i, e := range doc.TraceEvents {
		if e.Phase != "X" {
			continue
		}
		spans++
		seen[e.Name] = true
		if e.TS < 0 || e.Dur < 0 {
			return fmt.Errorf("%s: event %d (%s): negative ts/dur", path, i, e.Name)
		}
		id, ok := argID(e.Args, "id")
		if !ok {
			return fmt.Errorf("%s: event %d (%s): missing args.id", path, i, e.Name)
		}
		names[id] = e.Name
		if p, ok := argID(e.Args, "parent"); ok {
			parent[id] = p
		}
	}
	if spans == 0 {
		return fmt.Errorf("%s: no complete (ph=X) span events", path)
	}

	// Depth via parent chains; every referenced parent must exist.
	maxDepth := 0
	var deepest uint64
	for id := range names {
		d, cur := 1, id
		for {
			p, ok := parent[cur]
			if !ok {
				break
			}
			if _, exists := names[p]; !exists {
				return fmt.Errorf("%s: span %d (%s) references unknown parent %d", path, id, names[id], p)
			}
			d++
			cur = p
			if d > len(names) {
				return fmt.Errorf("%s: parent cycle through span %d", path, id)
			}
		}
		if d > maxDepth {
			maxDepth, deepest = d, id
		}
	}
	if maxDepth < minDepth {
		return fmt.Errorf("%s: max nesting depth %d < required %d", path, maxDepth, minDepth)
	}

	var missing []string
	for _, name := range required {
		if !seen[name] {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("%s: required span name(s) missing: %s", path, strings.Join(missing, ", "))
	}

	// Reconstruct the deepest chain for the summary line.
	chain := []string{}
	for cur, ok := deepest, true; ok; cur, ok = parent[cur], parentExists(parent, cur) {
		chain = append([]string{names[cur]}, chain...)
	}
	fmt.Printf("tracecheck: %s ok — %d span(s), max depth %d (%s)\n",
		path, spans, maxDepth, strings.Join(chain, " > "))
	return nil
}

func parentExists(parent map[uint64]uint64, id uint64) bool {
	_, ok := parent[id]
	return ok
}

// argID reads a numeric span id out of args (encoding/json decodes
// numbers as float64).
func argID(args map[string]any, key string) (uint64, bool) {
	v, ok := args[key]
	if !ok {
		return 0, false
	}
	f, ok := v.(float64)
	if !ok || f < 0 {
		return 0, false
	}
	return uint64(f), true
}
