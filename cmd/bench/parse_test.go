package main

import (
	"reflect"
	"testing"
)

func TestParseLineStandardUnits(t *testing.T) {
	bm, ok := parseLine("BenchmarkP2_DualSweep/reused-8  	     100	  11520042 ns/op	       0 B/op	       0 allocs/op")
	if !ok {
		t.Fatal("line rejected")
	}
	want := Benchmark{Name: "BenchmarkP2_DualSweep/reused", Iterations: 100, NsPerOp: 11520042}
	if !reflect.DeepEqual(bm, want) {
		t.Fatalf("got %+v want %+v", bm, want)
	}
}

// TestParseLineCustomMetrics pins the extra-map contract: units that are
// not ns/op, B/op or allocs/op — anything reported with b.ReportMetric,
// like the sparse-scale suite's peak-RSS-MiB — are captured verbatim.
func TestParseLineCustomMetrics(t *testing.T) {
	bm, ok := parseLine("BenchmarkSparseScale_ShardedSolve 	       1	6878759305 ns/op	       163.1 peak-RSS-MiB	185931680 B/op	  181963 allocs/op")
	if !ok {
		t.Fatal("line rejected")
	}
	if bm.Name != "BenchmarkSparseScale_ShardedSolve" || bm.NsPerOp != 6878759305 {
		t.Fatalf("core fields misparsed: %+v", bm)
	}
	if got, want := bm.Extra, map[string]float64{"peak-RSS-MiB": 163.1}; !reflect.DeepEqual(got, want) {
		t.Fatalf("extra = %v, want %v", got, want)
	}
	if bm.BytesPerOp != 185931680 || bm.AllocsPerOp != 181963 {
		t.Fatalf("memory fields misparsed: %+v", bm)
	}
}

// TestDiffIgnoresExtras: a benchmark whose only change is a custom
// metric never regresses — the gate judges ns/op alone.
func TestDiffIgnoresExtras(t *testing.T) {
	base := Suite{Benchmarks: []Benchmark{{Name: "BenchmarkX", NsPerOp: 100, Extra: map[string]float64{"peak-RSS-MiB": 10}}}}
	cur := Suite{Benchmarks: []Benchmark{{Name: "BenchmarkX", NsPerOp: 101, Extra: map[string]float64{"peak-RSS-MiB": 900}}}}
	if _, regressed := diffSuites(cur, base, thresholds{NsPct: 15, AllocPct: -1}); regressed {
		t.Fatal("extra-metric growth tripped the ns/op gate")
	}
}
