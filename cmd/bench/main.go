// Command bench converts `go test -bench -benchmem` output on stdin into
// the repository's tracked benchmark JSON (BENCH_<date>.json): one suite
// per invocation, each benchmark reduced to ns/op, B/op and allocs/op.
//
// Usage:
//
//	go test -run '^$' -bench=. -benchmem . | go run ./cmd/bench \
//	    -label post-workspace -out BENCH_2026-08-06.json -merge
//
// With -merge the suite is appended to an existing file (matching labels
// are replaced), which is how before/after pairs are recorded; without it
// the file is overwritten with a single-suite document.
//
// With -diff the current suite is additionally compared against a
// baseline suite from a tracked file, and the command exits non-zero
// when any shared benchmark's ns/op regressed beyond -threshold percent
// — the CI perf gate:
//
//	go run ./cmd/bench -in bench-ci.json -label ci \
//	    -diff BENCH_2026-08-06.json -diff-label post-workspace -threshold 15
//
// -alloc-threshold N additionally gates allocs/op: a shared benchmark
// regresses when its allocs/op grew by more than N percent, and a
// benchmark whose baseline is allocation-free regresses on any
// allocation at all (the zero-alloc steady states are load-bearing and
// a percentage of zero can never trip). Negative (the default) leaves
// the alloc gate off. The gate presumes both suites were recorded with
// -benchmem: a baseline recorded without it stores zero allocs/op and
// would hold every benchmark to zero.
//
// -in reads the current suite from an already-written JSON document
// (selected by -label) instead of parsing stdin; nothing is written in
// that mode.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Extra holds custom b.ReportMetric pairs (e.g. "peak-RSS-MiB")
	// keyed by unit. Extras are recorded for trend tracking but never
	// judged by the -diff gate, which gates on ns/op only.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Suite is one labelled benchmark run.
type Suite struct {
	Label      string      `json:"label"`
	Date       string      `json:"date"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	CPUs       int         `json:"cpus"`
	CPUModel   string      `json:"cpu_model,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Document is the tracked file: a list of suites sharing a machine.
type Document struct {
	Suites []Suite `json:"suites"`
}

func main() {
	label := flag.String("label", "local", "suite label (e.g. pre-workspace, post-workspace, ci)")
	out := flag.String("out", fmt.Sprintf("BENCH_%s.json", time.Now().Format("2006-01-02")), "output file")
	merge := flag.Bool("merge", false, "merge into an existing file instead of overwriting")
	in := flag.String("in", "", "read the current suite (selected by -label) from this JSON document instead of stdin; nothing is written")
	diff := flag.String("diff", "", "compare against a baseline suite from this tracked JSON file; exit non-zero on regression")
	diffLabel := flag.String("diff-label", "", "baseline suite label inside -diff (default: the file's last suite)")
	threshold := flag.Float64("threshold", 15, "ns/op regression threshold for -diff, in percent")
	allocThreshold := flag.Float64("alloc-threshold", -1, "allocs/op regression threshold for -diff, in percent; zero-alloc baselines are held to zero; negative disables the alloc gate")
	flag.Parse()

	var suite Suite
	if *in != "" {
		doc, err := loadDocument(*in)
		if err != nil {
			fatal("%v", err)
		}
		suite, err = pickSuite(doc, *label, *in)
		if err != nil {
			fatal("%v", err)
		}
	} else {
		suite = readSuite(os.Stdin, *label)
		writeSuite(suite, *out, *merge)
	}

	if *diff == "" {
		return
	}
	baseDoc, err := loadDocument(*diff)
	if err != nil {
		fatal("%v", err)
	}
	base, err := pickSuite(baseDoc, *diffLabel, *diff)
	if err != nil {
		fatal("%v", err)
	}
	th := thresholds{NsPct: *threshold, AllocPct: *allocThreshold}
	rows, regressed := diffSuites(suite, base, th)
	if err := writeDiff(os.Stderr, rows, base.Label, suite.Label, th); err != nil {
		fatal("%v", err)
	}
	if regressed {
		fatal("regression beyond thresholds (ns/op %g%%, allocs/op %s) against %s suite %q",
			*threshold, allocGateDesc(th), *diff, base.Label)
	}
	fmt.Fprintf(os.Stderr, "bench: no regression beyond thresholds (ns/op %g%%, allocs/op %s) against %s suite %q\n",
		*threshold, allocGateDesc(th), *diff, base.Label)
}

// readSuite parses `go test -bench` output into a labelled suite,
// echoing every line so the run stays visible in CI logs.
func readSuite(r io.Reader, label string) Suite {
	suite := Suite{
		Label:     label,
		Date:      time.Now().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass through so the run stays visible
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			suite.CPUModel = strings.TrimSpace(cpu)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		if bm, ok := parseLine(line); ok {
			suite.Benchmarks = append(suite.Benchmarks, bm)
		}
	}
	if err := sc.Err(); err != nil {
		fatal("read stdin: %v", err)
	}
	if len(suite.Benchmarks) == 0 {
		fatal("no benchmark lines found on stdin")
	}
	return suite
}

// writeSuite records the suite into the tracked document at path.
func writeSuite(suite Suite, path string, merge bool) {
	var doc Document
	if merge {
		if raw, err := os.ReadFile(path); err == nil {
			if err := json.Unmarshal(raw, &doc); err != nil {
				fatal("parse existing %s: %v", path, err)
			}
		}
	}
	replaced := false
	for i := range doc.Suites {
		if doc.Suites[i].Label == suite.Label {
			doc.Suites[i] = suite
			replaced = true
			break
		}
	}
	if !replaced {
		doc.Suites = append(doc.Suites, suite)
	}

	buf, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		fatal("encode: %v", err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		fatal("write %s: %v", path, err)
	}
	fmt.Fprintf(os.Stderr, "bench: wrote suite %q (%d benchmarks) to %s\n", suite.Label, len(suite.Benchmarks), path)
}

// parseLine parses one `BenchmarkName-P  N  V unit  [V unit ...]` line.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the -GOMAXPROCS suffix when it is numeric.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	bm := Benchmark{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			bm.NsPerOp = v
		case "B/op":
			bm.BytesPerOp = v
		case "allocs/op":
			bm.AllocsPerOp = v
		default:
			if bm.Extra == nil {
				bm.Extra = make(map[string]float64)
			}
			bm.Extra[fields[i+1]] = v
		}
	}
	if bm.NsPerOp == 0 {
		return Benchmark{}, false
	}
	return bm, true
}

// allocGateDesc renders the alloc gate setting for log lines.
func allocGateDesc(th thresholds) string {
	if !th.allocGated() {
		return "ungated"
	}
	return fmt.Sprintf("%g%%, zero-alloc held to zero", th.AllocPct)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bench: "+format+"\n", args...)
	os.Exit(1)
}
