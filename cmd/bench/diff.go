// Benchmark regression gating: compare a current suite against a
// tracked baseline suite and fail (exit non-zero) when any shared
// benchmark's ns/op regressed beyond a percentage threshold. This is
// the CI perf gate behind `bench -diff BENCH_<date>.json -threshold 15`.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"text/tabwriter"
)

// diffRow is one benchmark's before/after comparison.
type diffRow struct {
	Name       string
	BaseNs     float64
	CurNs      float64
	DeltaPct   float64 // (cur-base)/base * 100; positive = slower
	Regressed  bool
	BaselineOK bool // false when the benchmark is new (no baseline entry)
}

// diffSuites compares cur against base benchmark-by-benchmark (matched
// on name). A row regresses when its ns/op grew by more than
// thresholdPct percent. Benchmarks missing from the baseline are
// reported informationally and never regress; benchmarks that exist
// only in the baseline are ignored (they were removed or renamed —
// the gate judges what runs today).
func diffSuites(cur, base Suite, thresholdPct float64) (rows []diffRow, regressed bool) {
	baseline := make(map[string]Benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseline[b.Name] = b
	}
	for _, b := range cur.Benchmarks {
		row := diffRow{Name: b.Name, CurNs: b.NsPerOp}
		if bb, ok := baseline[b.Name]; ok && bb.NsPerOp > 0 {
			row.BaselineOK = true
			row.BaseNs = bb.NsPerOp
			row.DeltaPct = (b.NsPerOp - bb.NsPerOp) / bb.NsPerOp * 100
			row.Regressed = row.DeltaPct > thresholdPct
		}
		if row.Regressed {
			regressed = true
		}
		rows = append(rows, row)
	}
	return rows, regressed
}

// writeDiff renders the comparison table.
func writeDiff(w io.Writer, rows []diffRow, baseLabel, curLabel string, thresholdPct float64) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "benchmark\t%s ns/op\t%s ns/op\tdelta\t\n", baseLabel, curLabel)
	for _, r := range rows {
		if !r.BaselineOK {
			fmt.Fprintf(tw, "%s\t-\t%.0f\tnew\t\n", r.Name, r.CurNs)
			continue
		}
		flag := ""
		if r.Regressed {
			flag = fmt.Sprintf("REGRESSION (>%g%%)", thresholdPct)
		}
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%+.1f%%\t%s\n", r.Name, r.BaseNs, r.CurNs, r.DeltaPct, flag)
	}
	return tw.Flush()
}

// loadDocument reads a tracked benchmark JSON file.
func loadDocument(path string) (Document, error) {
	var doc Document
	raw, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return doc, fmt.Errorf("parse %s: %w", path, err)
	}
	return doc, nil
}

// pickSuite selects a suite by label; an empty label selects the last
// suite in the document (the most recently recorded one).
func pickSuite(doc Document, label, path string) (Suite, error) {
	if len(doc.Suites) == 0 {
		return Suite{}, fmt.Errorf("%s: no suites", path)
	}
	if label == "" {
		return doc.Suites[len(doc.Suites)-1], nil
	}
	for _, s := range doc.Suites {
		if s.Label == label {
			return s, nil
		}
	}
	return Suite{}, fmt.Errorf("%s: no suite labelled %q", path, label)
}
