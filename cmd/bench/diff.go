// Benchmark regression gating: compare a current suite against a
// tracked baseline suite and fail (exit non-zero) when any shared
// benchmark's ns/op — or, when the alloc gate is enabled, allocs/op —
// regressed beyond a percentage threshold. This is the CI perf gate
// behind `bench -diff BENCH_<date>.json -threshold 15 -alloc-threshold 0`.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"text/tabwriter"
)

// thresholds bundles the per-metric regression limits of one diff run.
type thresholds struct {
	// NsPct is the ns/op growth limit in percent.
	NsPct float64
	// AllocPct is the allocs/op growth limit in percent; negative
	// disables the alloc gate entirely. A zero-alloc baseline is held to
	// zero regardless of the percentage: any new allocation regresses,
	// because a percentage of zero can never trip.
	AllocPct float64
}

// allocGated reports whether the alloc gate is active.
func (th thresholds) allocGated() bool { return th.AllocPct >= 0 }

// diffRow is one benchmark's before/after comparison.
type diffRow struct {
	Name       string
	BaseNs     float64
	CurNs      float64
	DeltaPct   float64 // (cur-base)/base * 100; positive = slower
	Regressed  bool
	BaselineOK bool // false when the benchmark is new (no baseline entry)

	// Alloc gate fields, populated only when thresholds.allocGated().
	// A baseline recorded without -benchmem stores allocs/op as zero, so
	// enabling the gate against such a baseline holds every benchmark to
	// zero allocations — re-record the baseline with -benchmem first.
	BaseAllocs     float64
	CurAllocs      float64
	AllocDeltaPct  float64
	AllocRegressed bool
}

// diffSuites compares cur against base benchmark-by-benchmark (matched
// on name). A row regresses when its ns/op grew by more than th.NsPct
// percent, or — with the alloc gate enabled — when its allocs/op grew
// by more than th.AllocPct percent (any growth at all from a zero-alloc
// baseline). Benchmarks missing from the baseline are reported
// informationally and never regress; benchmarks that exist only in the
// baseline are ignored (they were removed or renamed — the gate judges
// what runs today).
func diffSuites(cur, base Suite, th thresholds) (rows []diffRow, regressed bool) {
	baseline := make(map[string]Benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseline[b.Name] = b
	}
	for _, b := range cur.Benchmarks {
		row := diffRow{Name: b.Name, CurNs: b.NsPerOp, CurAllocs: b.AllocsPerOp}
		if bb, ok := baseline[b.Name]; ok && bb.NsPerOp > 0 {
			row.BaselineOK = true
			row.BaseNs = bb.NsPerOp
			row.DeltaPct = (b.NsPerOp - bb.NsPerOp) / bb.NsPerOp * 100
			row.Regressed = row.DeltaPct > th.NsPct
			if th.allocGated() {
				row.BaseAllocs = bb.AllocsPerOp
				switch {
				case bb.AllocsPerOp == 0:
					// Zero-alloc baselines are held to zero: the steady
					// state must stay allocation-free.
					row.AllocRegressed = b.AllocsPerOp > 0
					if row.AllocRegressed {
						row.AllocDeltaPct = 100
					}
				default:
					row.AllocDeltaPct = (b.AllocsPerOp - bb.AllocsPerOp) / bb.AllocsPerOp * 100
					row.AllocRegressed = row.AllocDeltaPct > th.AllocPct
				}
			}
		}
		if row.Regressed || row.AllocRegressed {
			regressed = true
		}
		rows = append(rows, row)
	}
	return rows, regressed
}

// writeDiff renders the comparison table; allocs/op columns appear only
// when the alloc gate is active.
func writeDiff(w io.Writer, rows []diffRow, baseLabel, curLabel string, th thresholds) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if th.allocGated() {
		fmt.Fprintf(tw, "benchmark\t%s ns/op\t%s ns/op\tdelta\tallocs/op\t\n", baseLabel, curLabel)
	} else {
		fmt.Fprintf(tw, "benchmark\t%s ns/op\t%s ns/op\tdelta\t\n", baseLabel, curLabel)
	}
	for _, r := range rows {
		if !r.BaselineOK {
			fmt.Fprintf(tw, "%s\t-\t%.0f\tnew\t\n", r.Name, r.CurNs)
			continue
		}
		var flag string
		if r.Regressed {
			flag = fmt.Sprintf("REGRESSION (>%g%%)", th.NsPct)
		}
		if th.allocGated() {
			allocs := fmt.Sprintf("%.0f→%.0f", r.BaseAllocs, r.CurAllocs)
			if r.AllocRegressed {
				if flag != "" {
					flag += " "
				}
				if r.BaseAllocs == 0 {
					flag += "ALLOC REGRESSION (>0)"
				} else {
					flag += fmt.Sprintf("ALLOC REGRESSION (>%g%%)", th.AllocPct)
				}
			}
			fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%+.1f%%\t%s\t%s\n", r.Name, r.BaseNs, r.CurNs, r.DeltaPct, allocs, flag)
			continue
		}
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%+.1f%%\t%s\n", r.Name, r.BaseNs, r.CurNs, r.DeltaPct, flag)
	}
	return tw.Flush()
}

// loadDocument reads a tracked benchmark JSON file.
func loadDocument(path string) (Document, error) {
	var doc Document
	raw, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return doc, fmt.Errorf("parse %s: %w", path, err)
	}
	return doc, nil
}

// pickSuite selects a suite by label; an empty label selects the last
// suite in the document (the most recently recorded one).
func pickSuite(doc Document, label, path string) (Suite, error) {
	if len(doc.Suites) == 0 {
		return Suite{}, fmt.Errorf("%s: no suites", path)
	}
	if label == "" {
		return doc.Suites[len(doc.Suites)-1], nil
	}
	for _, s := range doc.Suites {
		if s.Label == label {
			return s, nil
		}
	}
	return Suite{}, fmt.Errorf("%s: no suite labelled %q", path, label)
}
