package main

import (
	"strings"
	"testing"
)

func suite(label string, ns map[string]float64) Suite {
	s := Suite{Label: label}
	for name, v := range ns {
		s.Benchmarks = append(s.Benchmarks, Benchmark{Name: name, Iterations: 1, NsPerOp: v})
	}
	return s
}

func TestDiffSuitesDetectsRegression(t *testing.T) {
	base := suite("base", map[string]float64{
		"BenchmarkSolve": 1000,
		"BenchmarkPlan":  2000,
	})
	cur := suite("cur", map[string]float64{
		"BenchmarkSolve": 1100, // +10% — within a 15% threshold
		"BenchmarkPlan":  2400, // +20% — regression
		"BenchmarkNew":   50,   // no baseline
	})

	rows, regressed := diffSuites(cur, base, 15)
	if !regressed {
		t.Fatal("20% slowdown not flagged at threshold 15%")
	}
	byName := map[string]diffRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	if byName["BenchmarkSolve"].Regressed {
		t.Fatal("10% slowdown flagged at threshold 15%")
	}
	if !byName["BenchmarkPlan"].Regressed {
		t.Fatal("BenchmarkPlan should regress")
	}
	if got := byName["BenchmarkPlan"].DeltaPct; got < 19.9 || got > 20.1 {
		t.Fatalf("delta = %g, want ~20", got)
	}
	if byName["BenchmarkNew"].BaselineOK || byName["BenchmarkNew"].Regressed {
		t.Fatalf("new benchmark must be informational: %+v", byName["BenchmarkNew"])
	}
}

func TestDiffSuitesImprovementAndRemoval(t *testing.T) {
	base := suite("base", map[string]float64{
		"BenchmarkSolve":   1000,
		"BenchmarkRemoved": 500,
	})
	cur := suite("cur", map[string]float64{
		"BenchmarkSolve": 700, // 30% faster
	})
	rows, regressed := diffSuites(cur, base, 15)
	if regressed {
		t.Fatal("improvement flagged as regression")
	}
	if len(rows) != 1 {
		t.Fatalf("removed baseline benchmark leaked into rows: %+v", rows)
	}
	if rows[0].DeltaPct > -29.9 || rows[0].DeltaPct < -30.1 {
		t.Fatalf("delta = %g, want ~-30", rows[0].DeltaPct)
	}
}

func TestWriteDiffRendersFlags(t *testing.T) {
	base := suite("post-workspace", map[string]float64{"BenchmarkSolve": 1000})
	cur := suite("ci", map[string]float64{"BenchmarkSolve": 1300, "BenchmarkNew": 10})
	rows, _ := diffSuites(cur, base, 15)
	var sb strings.Builder
	if err := writeDiff(&sb, rows, base.Label, cur.Label, 15); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"REGRESSION", "+30.0%", "new", "post-workspace", "ci"} {
		if !strings.Contains(out, want) {
			t.Fatalf("diff table missing %q:\n%s", want, out)
		}
	}
}

func TestPickSuite(t *testing.T) {
	doc := Document{Suites: []Suite{suite("a", nil), suite("b", nil)}}
	s, err := pickSuite(doc, "", "f.json")
	if err != nil || s.Label != "b" {
		t.Fatalf("empty label should pick last suite: %v %q", err, s.Label)
	}
	s, err = pickSuite(doc, "a", "f.json")
	if err != nil || s.Label != "a" {
		t.Fatalf("label lookup failed: %v %q", err, s.Label)
	}
	if _, err := pickSuite(doc, "missing", "f.json"); err == nil {
		t.Fatal("missing label must error")
	}
	if _, err := pickSuite(Document{}, "", "f.json"); err == nil {
		t.Fatal("empty document must error")
	}
}
