package main

import (
	"strings"
	"testing"
)

func suite(label string, ns map[string]float64) Suite {
	s := Suite{Label: label}
	for name, v := range ns {
		s.Benchmarks = append(s.Benchmarks, Benchmark{Name: name, Iterations: 1, NsPerOp: v})
	}
	return s
}

// allocSuite builds a suite with both ns/op and allocs/op per benchmark.
func allocSuite(label string, vals map[string][2]float64) Suite {
	s := Suite{Label: label}
	for name, v := range vals {
		s.Benchmarks = append(s.Benchmarks, Benchmark{Name: name, Iterations: 1, NsPerOp: v[0], AllocsPerOp: v[1]})
	}
	return s
}

func TestDiffSuitesDetectsRegression(t *testing.T) {
	base := suite("base", map[string]float64{
		"BenchmarkSolve": 1000,
		"BenchmarkPlan":  2000,
	})
	cur := suite("cur", map[string]float64{
		"BenchmarkSolve": 1100, // +10% — within a 15% threshold
		"BenchmarkPlan":  2400, // +20% — regression
		"BenchmarkNew":   50,   // no baseline
	})

	rows, regressed := diffSuites(cur, base, thresholds{NsPct: 15, AllocPct: -1})
	if !regressed {
		t.Fatal("20% slowdown not flagged at threshold 15%")
	}
	byName := map[string]diffRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	if byName["BenchmarkSolve"].Regressed {
		t.Fatal("10% slowdown flagged at threshold 15%")
	}
	if !byName["BenchmarkPlan"].Regressed {
		t.Fatal("BenchmarkPlan should regress")
	}
	if got := byName["BenchmarkPlan"].DeltaPct; got < 19.9 || got > 20.1 {
		t.Fatalf("delta = %g, want ~20", got)
	}
	if byName["BenchmarkNew"].BaselineOK || byName["BenchmarkNew"].Regressed {
		t.Fatalf("new benchmark must be informational: %+v", byName["BenchmarkNew"])
	}
}

func TestDiffSuitesImprovementAndRemoval(t *testing.T) {
	base := suite("base", map[string]float64{
		"BenchmarkSolve":   1000,
		"BenchmarkRemoved": 500,
	})
	cur := suite("cur", map[string]float64{
		"BenchmarkSolve": 700, // 30% faster
	})
	rows, regressed := diffSuites(cur, base, thresholds{NsPct: 15, AllocPct: -1})
	if regressed {
		t.Fatal("improvement flagged as regression")
	}
	if len(rows) != 1 {
		t.Fatalf("removed baseline benchmark leaked into rows: %+v", rows)
	}
	if rows[0].DeltaPct > -29.9 || rows[0].DeltaPct < -30.1 {
		t.Fatalf("delta = %g, want ~-30", rows[0].DeltaPct)
	}
}

func TestDiffSuitesAllocGate(t *testing.T) {
	base := allocSuite("base", map[string][2]float64{
		"BenchmarkSteady": {1000, 0},    // zero-alloc steady state
		"BenchmarkHeavy":  {1000, 100},  // allocating benchmark
		"BenchmarkOK":     {1000, 1000}, // allocating, stays put
	})

	// Disabled gate (negative threshold): allocation growth passes.
	cur := allocSuite("cur", map[string][2]float64{
		"BenchmarkSteady": {1000, 3},
		"BenchmarkHeavy":  {1000, 400},
		"BenchmarkOK":     {1000, 1000},
	})
	if _, regressed := diffSuites(cur, base, thresholds{NsPct: 15, AllocPct: -1}); regressed {
		t.Fatal("alloc growth flagged with the gate disabled")
	}

	// Enabled gate: the zero-alloc baseline is held to zero, the
	// allocating one to the percentage.
	rows, regressed := diffSuites(cur, base, thresholds{NsPct: 15, AllocPct: 10})
	if !regressed {
		t.Fatal("alloc regressions not flagged with the gate enabled")
	}
	byName := map[string]diffRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	if !byName["BenchmarkSteady"].AllocRegressed {
		t.Fatal("3 allocs against a zero-alloc baseline must regress")
	}
	if !byName["BenchmarkHeavy"].AllocRegressed {
		t.Fatal("+300% allocs must regress at threshold 10%")
	}
	if byName["BenchmarkOK"].AllocRegressed {
		t.Fatal("unchanged allocs flagged")
	}
	if byName["BenchmarkSteady"].Regressed || byName["BenchmarkHeavy"].Regressed {
		t.Fatal("alloc regressions leaked into the ns/op flag")
	}

	// Within-threshold growth passes; so does a still-zero steady state.
	ok := allocSuite("cur", map[string][2]float64{
		"BenchmarkSteady": {1000, 0},
		"BenchmarkHeavy":  {1000, 105}, // +5% at threshold 10%
		"BenchmarkOK":     {1000, 900},
	})
	if _, regressed := diffSuites(ok, base, thresholds{NsPct: 15, AllocPct: 10}); regressed {
		t.Fatal("within-threshold alloc growth flagged")
	}
}

func TestWriteDiffRendersFlags(t *testing.T) {
	base := suite("post-workspace", map[string]float64{"BenchmarkSolve": 1000})
	cur := suite("ci", map[string]float64{"BenchmarkSolve": 1300, "BenchmarkNew": 10})
	rows, _ := diffSuites(cur, base, thresholds{NsPct: 15, AllocPct: -1})
	var sb strings.Builder
	if err := writeDiff(&sb, rows, base.Label, cur.Label, thresholds{NsPct: 15, AllocPct: -1}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"REGRESSION", "+30.0%", "new", "post-workspace", "ci"} {
		if !strings.Contains(out, want) {
			t.Fatalf("diff table missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "allocs/op") {
		t.Fatalf("allocs column rendered with the gate disabled:\n%s", out)
	}
}

func TestWriteDiffRendersAllocFlags(t *testing.T) {
	base := allocSuite("base", map[string][2]float64{"BenchmarkSteady": {1000, 0}})
	cur := allocSuite("ci", map[string][2]float64{"BenchmarkSteady": {1000, 2}})
	th := thresholds{NsPct: 15, AllocPct: 0}
	rows, regressed := diffSuites(cur, base, th)
	if !regressed {
		t.Fatal("want alloc regression")
	}
	var sb strings.Builder
	if err := writeDiff(&sb, rows, base.Label, cur.Label, th); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"allocs/op", "0→2", "ALLOC REGRESSION (>0)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("diff table missing %q:\n%s", want, out)
		}
	}
}

func TestPickSuite(t *testing.T) {
	doc := Document{Suites: []Suite{suite("a", nil), suite("b", nil)}}
	s, err := pickSuite(doc, "", "f.json")
	if err != nil || s.Label != "b" {
		t.Fatalf("empty label should pick last suite: %v %q", err, s.Label)
	}
	s, err = pickSuite(doc, "a", "f.json")
	if err != nil || s.Label != "a" {
		t.Fatalf("label lookup failed: %v %q", err, s.Label)
	}
	if _, err := pickSuite(doc, "missing", "f.json"); err == nil {
		t.Fatal("missing label must error")
	}
	if _, err := pickSuite(Document{}, "", "f.json"); err == nil {
		t.Fatal("empty document must error")
	}
}
