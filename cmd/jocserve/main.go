// Command jocserve runs the online controller as a streaming HTTP
// service: edge nodes POST demand reports, a wall-clock ticker closes
// one slot per period, and the current caching/load-balancing decision
// is published at /v1/plan. Controller state is snapshotted atomically
// after every slot, so a killed service restarted with the same command
// line resumes exactly where it stopped.
//
// Usage:
//
//	jocserve -addr localhost:8080 -snapshot /var/run/joc.snapshot.json
//	jocserve -T 60 -K 30 -sbs 4 -algo chc -w 10 -r 5 -slot 2s
//	jocserve -debug-addr localhost:6060      # expvar, pprof, /metrics, /debug/solver
//	jocserve -faults "solvererr:t=2,attempts=3" -fault-seed 7
//	jocserve -smoke                          # deterministic self-test, exits PASS/FAIL
//
// Endpoints:
//
//	POST /v1/requests    {"requests":[{"sbs":0,"class":1,"content":3,"count":2}]}
//	GET  /v1/plan        published decision for the open slot
//	POST /v1/tick        close the open slot explicitly (when -slot 0)
//	GET  /v1/stats       live controller counters
//	GET  /v1/trajectory  committed decisions so far
//	GET  /v1/healthz     liveness
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"edgecache"
	"edgecache/internal/fault"
	"edgecache/internal/model"
	"edgecache/internal/obs"
	"edgecache/internal/online"
	"edgecache/internal/serve"
	"edgecache/internal/trace"
	"edgecache/internal/workload"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "jocserve:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("jocserve", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "localhost:8080", "service listen address")
		debugAddr = fs.String("debug-addr", "", "serve expvar, pprof, /metrics and /debug/solver on this address")
		horizon   = fs.Int("T", 60, "time slots")
		catalogue = fs.Int("K", 30, "catalogue size")
		classes   = fs.Int("classes", 30, "user classes per SBS")
		sbs       = fs.Int("sbs", 1, "number of SBSs")
		cache     = fs.Int("C", 5, "cache capacity per SBS")
		bandwidth = fs.Float64("B", 30, "SBS bandwidth per slot")
		beta      = fs.Float64("beta", 100, "cache replacement cost β")
		jitter    = fs.Float64("jitter", 0.4, "demand temporal jitter (smoke trace only)")
		drift     = fs.Int("drift", 0, "popularity drift period (0 = off)")
		seed      = fs.Uint64("seed", 1, "workload seed (topology and smoke trace)")
		algo      = fs.String("algo", "chc", "controller: rhc, chc, afhc, fhc")
		window    = fs.Int("w", 10, "prediction window")
		commit    = fs.Int("r", 5, "CHC commitment level")
		slotDur   = fs.Duration("slot", 0, "wall-clock slot length (0 = advance via POST /v1/tick)")
		snapshot  = fs.String("snapshot", "", "snapshot file; written after every slot, restored on start")
		alpha     = fs.Float64("alpha", 0, "demand estimator EWMA weight (0 = default)")
		floor     = fs.Float64("floor", -1, "estimator decay floor (-1 = default, 0 = off)")
		faultSpec = fs.String("faults", "", `fault schedule: inline DSL like "solvererr:t=2,attempts=3; corrupt:mode=spike,magnitude=3" or a JSON file path`)
		faultSeed = fs.Uint64("fault-seed", 0, "seed for randomised fault injectors (0 = the schedule's own seed)")
		smoke     = fs.Bool("smoke", false, "run the deterministic self-test (trace replay over HTTP, kill and restore mid-run, golden comparison) and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var cfg online.Config
	switch *algo {
	case "rhc":
		cfg = online.RHC(*window)
	case "chc":
		cfg = online.CHC(*window, min(*commit, *window))
	case "afhc":
		cfg = online.AFHC(*window)
	case "fhc":
		cfg = online.FHC(*window)
	default:
		return fmt.Errorf("unknown algorithm %q (want rhc, chc, afhc or fhc)", *algo)
	}
	var sched *fault.Schedule
	var err error
	if *faultSpec != "" {
		sched, err = fault.FromSpec(*faultSpec, *faultSeed)
		if err != nil {
			return err
		}
	}
	cfg.Faults = sched

	scn := edgecache.NewScenario(*sbs, *catalogue, *classes, *horizon).
		WithCache(*cache).
		WithBandwidth(*bandwidth).
		WithBeta(*beta).
		WithJitter(*jitter).
		WithDrift(*drift).
		WithSeed(*seed)
	base, _, err := scn.Build()
	if err != nil {
		return err
	}
	// Topology faults (outages, bandwidth, capacity) reshape the instance;
	// corruption and solver faults ride in the serve/online configs.
	eff, err := serve.MaterializeFaults(base, sched)
	if err != nil {
		return err
	}
	scfg := serve.Config{
		Online:         cfg,
		EstimatorAlpha: *alpha,
		EstimatorFloor: *floor,
		SnapshotPath:   *snapshot,
		Faults:         sched,
	}

	if *smoke {
		return runSmoke(ctx, out, eff, scfg, *seed)
	}

	if *debugAddr != "" {
		dbg, err := obs.ServeDebug(*debugAddr)
		if err != nil {
			return err
		}
		defer dbg.Close()
		// Feed the flight recorder so /debug/solver shows the live
		// controller's recent window solves and dual iterations.
		scfg.Online.Telemetry = obs.New(obs.Flight, nil)
		fmt.Fprintf(os.Stderr, "debug server: http://%s/debug/pprof/, /debug/vars, /metrics, /debug/solver\n", dbg.Addr())
	}

	ctrl, err := serve.Open(ctx, eff, scfg)
	if err != nil {
		return err
	}
	srv, err := serve.NewServer(serve.ServerConfig{Controller: ctrl, SlotDuration: *slotDur})
	if err != nil {
		return err
	}
	if err := srv.Start(*addr); err != nil {
		return err
	}
	st := ctrl.Stats()
	fmt.Fprintf(out, "jocserve: %s on http://%s, slot %d/%d", cfg.Name(), srv.Addr(), st.Slot, st.Horizon)
	if *slotDur > 0 {
		fmt.Fprintf(out, ", ticking every %s", *slotDur)
	}
	if *snapshot != "" {
		fmt.Fprintf(out, ", snapshotting to %s", *snapshot)
	}
	fmt.Fprintln(out)

	<-ctx.Done()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	fmt.Fprintf(out, "jocserve: stopped at slot %d/%d\n", ctrl.Stats().Slot, ctrl.Stats().Horizon)
	return nil
}

// smokeClient drives one jocserve instance over real HTTP.
type smokeClient struct {
	base string
	hc   *http.Client
}

func (c *smokeClient) get(path string, out any) error {
	resp, err := c.hc.Get(c.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("GET %s: status %d: %s", path, resp.StatusCode, bytes.TrimSpace(body))
	}
	if out == nil {
		_, err = io.Copy(io.Discard, resp.Body)
		return err
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (c *smokeClient) post(path string, body, out any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := c.hc.Post(c.base+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("POST %s: status %d: %s", path, resp.StatusCode, bytes.TrimSpace(msg))
	}
	if out == nil {
		_, err = io.Copy(io.Discard, resp.Body)
		return err
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// runSmoke is the -smoke self-test: replay a deterministic request trace
// against a live service over real HTTP — ticker on a mock clock — kill
// the service at mid-horizon, restore it from the snapshot on disk, and
// compare the final committed trajectory against a golden batch replay
// over the same empirical demand. Exits non-zero on any divergence.
func runSmoke(ctx context.Context, out io.Writer, eff *model.Instance, scfg serve.Config, seed uint64) error {
	if scfg.SnapshotPath == "" {
		dir, err := os.MkdirTemp("", "jocserve-smoke-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		scfg.SnapshotPath = filepath.Join(dir, "snapshot.json")
	}
	tr := trace.Generate(eff.Demand, seed)
	fmt.Fprintf(out, "smoke: %s over T=%d N=%d K=%d, %d requests, snapshot %s\n",
		scfg.Online.Name(), eff.T, eff.N, eff.K, tr.Len(), scfg.SnapshotPath)

	const period = time.Second // mock time; never actually elapses
	boot := func() (*serve.Controller, *serve.Server, *serve.MockClock, *smokeClient, error) {
		ctrl, err := serve.Open(ctx, eff, scfg)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		clock := serve.NewMockClock(time.Unix(0, 0))
		srv, err := serve.NewServer(serve.ServerConfig{Controller: ctrl, Clock: clock, SlotDuration: period})
		if err != nil {
			return nil, nil, nil, nil, err
		}
		if err := srv.Start("localhost:0"); err != nil {
			return nil, nil, nil, nil, err
		}
		cl := &smokeClient{base: "http://" + srv.Addr(), hc: &http.Client{Timeout: 30 * time.Second}}
		return ctrl, srv, clock, cl, nil
	}
	shutdown := func(srv *serve.Server) error {
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return srv.Shutdown(sctx)
	}

	ctrl, srv, clock, cl, err := boot()
	if err != nil {
		return err
	}
	closeSlot := func(slot int) error {
		// Feed the slot's trace over HTTP, then advance the mock clock one
		// period and wait for the ticker goroutine to close the slot.
		var batch []serve.Request
		for n := 0; n < tr.N(); n++ {
			for _, r := range tr.Slot(slot, n) {
				batch = append(batch, serve.Request{SBS: r.SBS, Class: r.Class, Content: r.Content})
			}
		}
		var plan serve.Plan
		if err := cl.get("/v1/plan", &plan); err != nil {
			return err
		}
		if plan.Slot != slot {
			return fmt.Errorf("slot %d: service publishes plan for slot %d", slot, plan.Slot)
		}
		var ack serve.IngestResponse
		if err := cl.post("/v1/requests", serve.IngestRequest{Requests: batch}, &ack); err != nil {
			return fmt.Errorf("slot %d: %w", slot, err)
		}
		if ack.Slot != slot || ack.Accepted != len(batch) {
			return fmt.Errorf("slot %d: ingest ack %+v for %d requests", slot, ack, len(batch))
		}
		clock.Advance(period)
		deadline := time.Now().Add(60 * time.Second)
		for {
			var st serve.Stats
			if err := cl.get("/v1/stats", &st); err != nil {
				return err
			}
			if st.Slot > slot || st.Done {
				return nil
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("slot %d: ticker never closed the slot", slot)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	killAt := eff.T / 2
	for slot := 0; slot < killAt; slot++ {
		if err := closeSlot(slot); err != nil {
			return err
		}
	}

	// Kill: shut the service down, drop the controller, and bring a fresh
	// process-equivalent up from the snapshot on disk.
	if err := shutdown(srv); err != nil {
		return err
	}
	fmt.Fprintf(out, "smoke: killed at slot %d, restoring from snapshot\n", killAt)
	ctrl, srv, clock, cl, err = boot()
	if err != nil {
		return fmt.Errorf("restore: %w", err)
	}
	if got := ctrl.Stats().Slot; got != killAt {
		return fmt.Errorf("restored service opens slot %d, want %d", got, killAt)
	}
	for slot := killAt; slot < eff.T; slot++ {
		if err := closeSlot(slot); err != nil {
			return err
		}
	}
	var got model.Trajectory
	if err := cl.get("/v1/trajectory", &got); err != nil {
		return err
	}
	var stats serve.Stats
	if err := cl.get("/v1/stats", &stats); err != nil {
		return err
	}
	if err := shutdown(srv); err != nil {
		return err
	}

	// Golden: a batch replay of the same controller over the trace's
	// empirical tensor with a fresh estimator — what an unkilled,
	// un-served controller would have committed.
	goldenIn := *eff
	goldenIn.Demand = tr.EmpiricalDemand()
	est, err := workload.NewOnlineEstimator(goldenIn.Demand, scfg.EstimatorAlpha, scfg.EstimatorFloor)
	if err != nil {
		return err
	}
	pred := workload.Corrupt(est, scfg.Faults.Corruptor(goldenIn.Demand))
	golden, err := online.Run(ctx, &goldenIn, pred, scfg.Online)
	if err != nil {
		return err
	}
	// Compare through JSON so both sides share the wire encoding.
	wantRaw, err := json.Marshal(golden.Trajectory)
	if err != nil {
		return err
	}
	gotRaw, err := json.Marshal(got)
	if err != nil {
		return err
	}
	if !bytes.Equal(wantRaw, gotRaw) {
		fmt.Fprintln(out, "smoke: FAIL — served trajectory diverges from the golden batch replay")
		return fmt.Errorf("smoke failed")
	}
	fmt.Fprintf(out, "smoke: PASS — %d slots, %d requests, %d window solves, %d degraded, trajectory matches golden replay across kill/restore\n",
		eff.T, stats.Ingested, stats.Solves, stats.Degraded)
	return nil
}
