// Command jocserve runs the online controller as a streaming HTTP
// service: edge nodes POST demand reports, a wall-clock ticker closes
// one slot per period, and the current caching/load-balancing decision
// is published at /v1/plan. With -state-dir the service is crash-safe:
// acknowledged reports go through a CRC-framed fsynced WAL and slot
// closes publish checksummed snapshot generations, so kill -9 at any
// byte — including mid-write — recovers to the identical state. The
// legacy -snapshot mode persists one atomic snapshot per slot.
//
// Usage:
//
//	jocserve -addr localhost:8080 -state-dir /var/lib/jocserve
//	jocserve -T 60 -K 30 -sbs 4 -algo chc -w 10 -r 5 -slot 2s
//	jocserve -wal-fsync interval -snap-keep 5 -catchup fastforward:4
//	jocserve -debug-addr localhost:6060      # expvar, pprof, /metrics, /debug/solver
//	jocserve -faults "solvererr:t=2,attempts=3" -fault-seed 7
//	jocserve -smoke                          # deterministic self-test, exits PASS/FAIL
//	jocserve -chaos 20                       # kill -9 loop against a real child process
//
// Endpoints:
//
//	POST /v1/requests    {"requests":[{"sbs":0,"class":1,"content":3,"count":2}]}
//	GET  /v1/plan        published decision for the open slot
//	POST /v1/tick        close the open slot explicitly (when -slot 0)
//	GET  /v1/stats       live controller counters
//	GET  /v1/trajectory  committed decisions so far
//	GET  /v1/healthz     liveness
//	GET  /v1/readyz      readiness (503 until recovery completes)
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"edgecache"
	"edgecache/internal/fault"
	"edgecache/internal/model"
	"edgecache/internal/obs"
	"edgecache/internal/online"
	"edgecache/internal/serve"
	"edgecache/internal/trace"
	"edgecache/internal/workload"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "jocserve:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("jocserve", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "localhost:8080", "service listen address")
		debugAddr = fs.String("debug-addr", "", "serve expvar, pprof, /metrics and /debug/solver on this address")
		horizon   = fs.Int("T", 60, "time slots")
		catalogue = fs.Int("K", 30, "catalogue size")
		classes   = fs.Int("classes", 30, "user classes per SBS")
		sbs       = fs.Int("sbs", 1, "number of SBSs")
		cache     = fs.Int("C", 5, "cache capacity per SBS")
		bandwidth = fs.Float64("B", 30, "SBS bandwidth per slot")
		beta      = fs.Float64("beta", 100, "cache replacement cost β")
		jitter    = fs.Float64("jitter", 0.4, "demand temporal jitter (smoke trace only)")
		drift     = fs.Int("drift", 0, "popularity drift period (0 = off)")
		seed      = fs.Uint64("seed", 1, "workload seed (topology and smoke trace)")
		algo      = fs.String("algo", "chc", "controller: rhc, chc, afhc, fhc")
		window    = fs.Int("w", 10, "prediction window")
		commit    = fs.Int("r", 5, "CHC commitment level")
		slotDur   = fs.Duration("slot", 0, "wall-clock slot length (0 = advance via POST /v1/tick)")
		snapshot  = fs.String("snapshot", "", "snapshot file; written after every slot, restored on start")
		stateDir  = fs.String("state-dir", "", "durable state directory (report WAL + snapshot generations); full crash recovery on start")
		walFsync  = fs.String("wal-fsync", "always", "WAL fsync policy: always, interval or off")
		snapKeep  = fs.Int("snap-keep", 0, "snapshot generations to retain (0 = 3, minimum 2)")
		catchup   = fs.String("catchup", "skip", "missed-tick policy: skip, fastforward or fastforward:N")
		alpha     = fs.Float64("alpha", 0, "demand estimator EWMA weight (0 = default)")
		floor     = fs.Float64("floor", -1, "estimator decay floor (-1 = default, 0 = off)")
		faultSpec = fs.String("faults", "", `fault schedule: inline DSL like "solvererr:t=2,attempts=3; corrupt:mode=spike,magnitude=3" or a JSON file path`)
		faultSeed = fs.Uint64("fault-seed", 0, "seed for randomised fault injectors (0 = the schedule's own seed)")
		diskSpec  = fs.String("disk-faults", "", `disk fault injection: "tearwal:op=N; tearsnap:op=N; flipsnap:op=N" (chaos only)`)
		diskSeed  = fs.Uint64("disk-seed", 1, "seed for disk fault tear offsets")
		crashExit = fs.Bool("crash-exit", false, "exit(137) the moment an injected disk fault fires (chaos child mode)")
		addrFile  = fs.String("addr-file", "", "write the bound address to this file after start")
		smoke     = fs.Bool("smoke", false, "run the deterministic self-test (trace replay over HTTP, kill and restore mid-run, golden comparison) and exit")
		chaos     = fs.Int("chaos", 0, "run the kill -9 chaos harness: at least N real SIGKILLs against a child process, restart equivalence asserted; exits PASS/FAIL")
		chaosSeed = fs.Uint64("chaos-seed", 1, "chaos harness seed (kill points and fault arming)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var cfg online.Config
	switch *algo {
	case "rhc":
		cfg = online.RHC(*window)
	case "chc":
		cfg = online.CHC(*window, min(*commit, *window))
	case "afhc":
		cfg = online.AFHC(*window)
	case "fhc":
		cfg = online.FHC(*window)
	default:
		return fmt.Errorf("unknown algorithm %q (want rhc, chc, afhc or fhc)", *algo)
	}
	var sched *fault.Schedule
	var err error
	if *faultSpec != "" {
		sched, err = fault.FromSpec(*faultSpec, *faultSeed)
		if err != nil {
			return err
		}
	}
	cfg.Faults = sched

	scn := edgecache.NewScenario(*sbs, *catalogue, *classes, *horizon).
		WithCache(*cache).
		WithBandwidth(*bandwidth).
		WithBeta(*beta).
		WithJitter(*jitter).
		WithDrift(*drift).
		WithSeed(*seed)
	base, _, err := scn.Build()
	if err != nil {
		return err
	}
	// Topology faults (outages, bandwidth, capacity) reshape the instance;
	// corruption and solver faults ride in the serve/online configs.
	eff, err := serve.MaterializeFaults(base, sched)
	if err != nil {
		return err
	}
	fsyncPol, err := serve.ParseFsyncPolicy(*walFsync)
	if err != nil {
		return err
	}
	cuPol, cuBound, err := serve.ParseCatchUpPolicy(*catchup)
	if err != nil {
		return err
	}
	var disks *fault.DiskFaults
	if *diskSpec != "" {
		disks, err = fault.ParseDisk(*diskSpec, *diskSeed)
		if err != nil {
			return err
		}
		if *crashExit {
			// Chaos child mode: a mid-write fault is a real process death,
			// not a returned error — the parent observes kill -9 semantics.
			disks.OnCrash = func() { os.Exit(137) }
		}
	}
	scfg := serve.Config{
		Online:         cfg,
		EstimatorAlpha: *alpha,
		EstimatorFloor: *floor,
		SnapshotPath:   *snapshot,
		StateDir:       *stateDir,
		WALFsync:       fsyncPol,
		SnapKeep:       *snapKeep,
		DiskFaults:     disks,
		Faults:         sched,
	}

	if *smoke {
		return runSmoke(ctx, out, eff, scfg, *seed)
	}
	if *chaos > 0 {
		childArgs := []string{
			"-T", fmt.Sprint(*horizon), "-K", fmt.Sprint(*catalogue),
			"-classes", fmt.Sprint(*classes), "-sbs", fmt.Sprint(*sbs),
			"-C", fmt.Sprint(*cache), "-B", fmt.Sprint(*bandwidth),
			"-beta", fmt.Sprint(*beta), "-jitter", fmt.Sprint(*jitter),
			"-drift", fmt.Sprint(*drift), "-seed", fmt.Sprint(*seed),
			"-algo", *algo, "-w", fmt.Sprint(*window), "-r", fmt.Sprint(*commit),
			"-alpha", fmt.Sprint(*alpha), "-floor", fmt.Sprint(*floor),
			"-wal-fsync", "always", "-crash-exit",
		}
		if *faultSpec != "" {
			childArgs = append(childArgs, "-faults", *faultSpec, "-fault-seed", fmt.Sprint(*faultSeed))
		}
		return runChaos(ctx, out, eff, scfg, *seed, *chaos, *chaosSeed, childArgs)
	}

	if *debugAddr != "" {
		dbg, err := obs.ServeDebug(*debugAddr)
		if err != nil {
			return err
		}
		defer dbg.Close()
		// Feed the flight recorder so /debug/solver shows the live
		// controller's recent window solves and dual iterations.
		scfg.Online.Telemetry = obs.New(obs.Flight, nil)
		fmt.Fprintf(os.Stderr, "debug server: http://%s/debug/pprof/, /debug/vars, /metrics, /debug/solver\n", dbg.Addr())
	}

	// The listener comes up immediately; recovery (snapshot verification
	// and WAL replay) runs behind it. /v1/readyz reports 503 until the
	// controller lands, so a load balancer holds traffic off during replay.
	srv, err := serve.NewServer(serve.ServerConfig{
		Boot: func(bctx context.Context) (*serve.Controller, error) {
			return serve.Open(bctx, eff, scfg)
		},
		SlotDuration: *slotDur,
		CatchUp:      cuPol,
		CatchUpBound: cuBound,
	})
	if err != nil {
		return err
	}
	if err := srv.Start(*addr); err != nil {
		return err
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(srv.Addr()), 0o644); err != nil {
			return err
		}
	}
	var ctrl *serve.Controller
	for ctrl = srv.Controller(); ctrl == nil; ctrl = srv.Controller() {
		if err := srv.BootErr(); err != nil {
			shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_ = srv.Shutdown(shutdownCtx)
			return err
		}
		select {
		case <-ctx.Done():
			shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			return srv.Shutdown(shutdownCtx)
		case <-time.After(5 * time.Millisecond):
		}
	}
	st := ctrl.Stats()
	fmt.Fprintf(out, "jocserve: %s on http://%s, slot %d/%d", cfg.Name(), srv.Addr(), st.Slot, st.Horizon)
	if *slotDur > 0 {
		fmt.Fprintf(out, ", ticking every %s", *slotDur)
	}
	if *snapshot != "" {
		fmt.Fprintf(out, ", snapshotting to %s", *snapshot)
	}
	if *stateDir != "" {
		fmt.Fprintf(out, ", durable state in %s", *stateDir)
	}
	fmt.Fprintln(out)

	<-ctx.Done()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	fmt.Fprintf(out, "jocserve: stopped at slot %d/%d\n", ctrl.Stats().Slot, ctrl.Stats().Horizon)
	return nil
}

// goldenTrajectory is the reference every self-test compares against: a
// batch replay of the same controller over the trace's empirical tensor
// with a fresh estimator — what an unkilled, un-served controller would
// have committed. Returned wire-encoded so both sides share the JSON
// encoding.
func goldenTrajectory(ctx context.Context, eff *model.Instance, scfg serve.Config, tr *trace.Trace) ([]byte, error) {
	goldenIn := *eff
	goldenIn.Demand = tr.EmpiricalDemand()
	est, err := workload.NewOnlineEstimator(goldenIn.Demand, scfg.EstimatorAlpha, scfg.EstimatorFloor)
	if err != nil {
		return nil, err
	}
	pred := workload.Corrupt(est, scfg.Faults.Corruptor(goldenIn.Demand))
	golden, err := online.Run(ctx, &goldenIn, pred, scfg.Online)
	if err != nil {
		return nil, err
	}
	return json.Marshal(golden.Trajectory)
}

// smokeClient drives one jocserve instance over real HTTP.
type smokeClient struct {
	base string
	hc   *http.Client
}

func (c *smokeClient) get(path string, out any) error {
	resp, err := c.hc.Get(c.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("GET %s: status %d: %s", path, resp.StatusCode, bytes.TrimSpace(body))
	}
	if out == nil {
		_, err = io.Copy(io.Discard, resp.Body)
		return err
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (c *smokeClient) post(path string, body, out any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := c.hc.Post(c.base+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("POST %s: status %d: %s", path, resp.StatusCode, bytes.TrimSpace(msg))
	}
	if out == nil {
		_, err = io.Copy(io.Discard, resp.Body)
		return err
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// runSmoke is the -smoke self-test: replay a deterministic request trace
// against a live service over real HTTP — ticker on a mock clock — kill
// the service at mid-horizon, restore it from the snapshot on disk, and
// compare the final committed trajectory against a golden batch replay
// over the same empirical demand. Exits non-zero on any divergence.
func runSmoke(ctx context.Context, out io.Writer, eff *model.Instance, scfg serve.Config, seed uint64) error {
	if scfg.SnapshotPath == "" && scfg.StateDir == "" {
		dir, err := os.MkdirTemp("", "jocserve-smoke-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		scfg.SnapshotPath = filepath.Join(dir, "snapshot.json")
	}
	persist := scfg.SnapshotPath
	if persist == "" {
		persist = scfg.StateDir + string(filepath.Separator)
	}
	tr := trace.Generate(eff.Demand, seed)
	fmt.Fprintf(out, "smoke: %s over T=%d N=%d K=%d, %d requests, state %s\n",
		scfg.Online.Name(), eff.T, eff.N, eff.K, tr.Len(), persist)

	const period = time.Second // mock time; never actually elapses
	boot := func() (*serve.Controller, *serve.Server, *serve.MockClock, *smokeClient, error) {
		ctrl, err := serve.Open(ctx, eff, scfg)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		clock := serve.NewMockClock(time.Unix(0, 0))
		srv, err := serve.NewServer(serve.ServerConfig{Controller: ctrl, Clock: clock, SlotDuration: period})
		if err != nil {
			return nil, nil, nil, nil, err
		}
		if err := srv.Start("localhost:0"); err != nil {
			return nil, nil, nil, nil, err
		}
		cl := &smokeClient{base: "http://" + srv.Addr(), hc: &http.Client{Timeout: 30 * time.Second}}
		return ctrl, srv, clock, cl, nil
	}
	shutdown := func(srv *serve.Server) error {
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return srv.Shutdown(sctx)
	}

	ctrl, srv, clock, cl, err := boot()
	if err != nil {
		return err
	}
	closeSlot := func(slot int) error {
		// Feed the slot's trace over HTTP, then advance the mock clock one
		// period and wait for the ticker goroutine to close the slot.
		var batch []serve.Request
		for n := 0; n < tr.N(); n++ {
			for _, r := range tr.Slot(slot, n) {
				batch = append(batch, serve.Request{SBS: r.SBS, Class: r.Class, Content: r.Content})
			}
		}
		var plan serve.Plan
		if err := cl.get("/v1/plan", &plan); err != nil {
			return err
		}
		if plan.Slot != slot {
			return fmt.Errorf("slot %d: service publishes plan for slot %d", slot, plan.Slot)
		}
		var ack serve.IngestResponse
		if err := cl.post("/v1/requests", serve.IngestRequest{Requests: batch}, &ack); err != nil {
			return fmt.Errorf("slot %d: %w", slot, err)
		}
		if ack.Slot != slot || ack.Accepted != len(batch) {
			return fmt.Errorf("slot %d: ingest ack %+v for %d requests", slot, ack, len(batch))
		}
		clock.Advance(period)
		deadline := time.Now().Add(60 * time.Second)
		for {
			var st serve.Stats
			if err := cl.get("/v1/stats", &st); err != nil {
				return err
			}
			if st.Slot > slot || st.Done {
				return nil
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("slot %d: ticker never closed the slot", slot)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	killAt := eff.T / 2
	for slot := 0; slot < killAt; slot++ {
		if err := closeSlot(slot); err != nil {
			return err
		}
	}

	// Kill: shut the service down, drop the controller, and bring a fresh
	// process-equivalent up from the snapshot on disk.
	if err := shutdown(srv); err != nil {
		return err
	}
	fmt.Fprintf(out, "smoke: killed at slot %d, restoring from snapshot\n", killAt)
	ctrl, srv, clock, cl, err = boot()
	if err != nil {
		return fmt.Errorf("restore: %w", err)
	}
	if got := ctrl.Stats().Slot; got != killAt {
		return fmt.Errorf("restored service opens slot %d, want %d", got, killAt)
	}
	for slot := killAt; slot < eff.T; slot++ {
		if err := closeSlot(slot); err != nil {
			return err
		}
	}
	var got model.Trajectory
	if err := cl.get("/v1/trajectory", &got); err != nil {
		return err
	}
	var stats serve.Stats
	if err := cl.get("/v1/stats", &stats); err != nil {
		return err
	}
	if err := shutdown(srv); err != nil {
		return err
	}

	wantRaw, err := goldenTrajectory(ctx, eff, scfg, tr)
	if err != nil {
		return err
	}
	gotRaw, err := json.Marshal(got)
	if err != nil {
		return err
	}
	if !bytes.Equal(wantRaw, gotRaw) {
		fmt.Fprintln(out, "smoke: FAIL — served trajectory diverges from the golden batch replay")
		return fmt.Errorf("smoke failed")
	}
	fmt.Fprintf(out, "smoke: PASS — %d slots, %d requests, %d window solves, %d degraded, trajectory matches golden replay across kill/restore\n",
		eff.T, stats.Ingested, stats.Solves, stats.Degraded)
	return nil
}

// chaosChild is one child jocserve incarnation under the chaos harness.
type chaosChild struct {
	cmd  *exec.Cmd
	done chan struct{}
}

// startChild spawns a fresh jocserve process over the shared state dir.
func startChild(self string, args []string, addrPath string) (*chaosChild, error) {
	_ = os.Remove(addrPath) // never read a previous incarnation's address
	cmd := exec.Command(self, args...)
	cmd.Stdout = io.Discard
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	ch := &chaosChild{cmd: cmd, done: make(chan struct{})}
	go func() {
		_ = cmd.Wait()
		close(ch.done)
	}()
	return ch, nil
}

func (ch *chaosChild) dead() bool {
	select {
	case <-ch.done:
		return true
	default:
		return false
	}
}

// kill SIGKILLs the child and reaps it.
func (ch *chaosChild) kill() {
	_ = ch.cmd.Process.Kill()
	<-ch.done
}

// waitReady polls the child's address file and /v1/readyz until recovery
// has finished — or the child died on the way up (an armed disk fault
// firing inside recovery's repair save).
func (ch *chaosChild) waitReady(addrPath string, timeout time.Duration) (*smokeClient, error) {
	deadline := time.Now().Add(timeout)
	hc := &http.Client{Timeout: 10 * time.Second}
	for {
		if ch.dead() {
			return nil, fmt.Errorf("child exited before becoming ready")
		}
		if raw, err := os.ReadFile(addrPath); err == nil && len(bytes.TrimSpace(raw)) > 0 {
			cl := &smokeClient{base: "http://" + string(bytes.TrimSpace(raw)), hc: hc}
			if resp, err := hc.Get(cl.base + "/v1/readyz"); err == nil {
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					return cl, nil
				}
			}
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("child not ready after %s", timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// runChaos is the -chaos kill -9 harness: a real child process serving
// from a shared durable state dir is killed at seeded-random points — by
// SIGKILL between HTTP operations and by exit(137) in the middle of WAL
// appends and snapshot publishes via -disk-faults — at least minKills
// times while the parent replays a deterministic trace against it. After
// every restart the parent asserts that every acknowledged report
// survived and nothing was double-ingested; the finished trajectory must
// match the golden batch replay byte for byte.
func runChaos(ctx context.Context, out io.Writer, eff *model.Instance, scfg serve.Config, seed uint64, minKills int, chaosSeed uint64, childArgs []string) error {
	self, err := os.Executable()
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "jocserve-chaos-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	stateDir := filepath.Join(dir, "state")
	addrPath := filepath.Join(dir, "addr")
	baseArgs := append(append([]string{}, childArgs...),
		"-addr", "localhost:0", "-addr-file", addrPath, "-state-dir", stateDir)

	tr := trace.Generate(eff.Demand, seed)
	T := eff.T
	batches := make([][]serve.Request, T)
	cum := make([]int, T+1) // cum[s] = reports in slots < s
	for s := 0; s < T; s++ {
		var batch []serve.Request
		for n := 0; n < tr.N(); n++ {
			for _, r := range tr.Slot(s, n) {
				batch = append(batch, serve.Request{SBS: r.SBS, Class: r.Class, Content: r.Content})
			}
		}
		batches[s] = batch
		cum[s+1] = cum[s] + len(batch)
	}
	fmt.Fprintf(out, "chaos: %s over T=%d, %d requests, >=%d kills, state %s\n",
		scfg.Online.Name(), T, tr.Len(), minKills, stateDir)

	rng := rand.New(rand.NewSource(int64(chaosSeed)))
	kills, lastAcked := 0, 0
	deadline := time.Now().Add(10 * time.Minute)
	var finalTraj json.RawMessage
	for cycle := 0; finalTraj == nil; cycle++ {
		if time.Now().After(deadline) {
			return fmt.Errorf("chaos: no convergence after 10m (%d kills, %d/%d reports)", kills, lastAcked, cum[T])
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		// Arm this incarnation: most cycles die mid-write inside one of the
		// first few durability operations, the rest get a plain SIGKILL
		// between operations.
		args := baseArgs
		switch rng.Intn(4) {
		case 1:
			args = append(args, "-disk-faults", fmt.Sprintf("tearwal:op=%d", rng.Intn(3)+1), "-disk-seed", fmt.Sprint(cycle+1))
		case 2:
			args = append(args, "-disk-faults", fmt.Sprintf("tearsnap:op=%d", rng.Intn(2)+1), "-disk-seed", fmt.Sprint(cycle+1))
		case 3:
			args = append(args, "-disk-faults", fmt.Sprintf("flipsnap:op=%d", rng.Intn(2)+1), "-disk-seed", fmt.Sprint(cycle+1))
		}
		child, err := startChild(self, args, addrPath)
		if err != nil {
			return err
		}
		cl, err := child.waitReady(addrPath, 30*time.Second)
		if err != nil {
			child.kill()
			kills++
			continue
		}
		// Restart-equivalence gate: exactly the acknowledged reports, the
		// slot the durable close markers reach, nothing lost or doubled.
		var st serve.Stats
		if err := cl.get("/v1/stats", &st); err != nil {
			child.kill()
			kills++
			continue
		}
		if int(st.Ingested) < lastAcked {
			child.kill()
			return fmt.Errorf("chaos: FAIL — %d reports acknowledged, only %d survived the restart", lastAcked, st.Ingested)
		}
		slot := st.Slot
		var booked bool
		if st.Done {
			booked = true
		} else {
			switch int(st.Ingested) {
			case cum[slot]:
				booked = len(batches[slot]) == 0
			case cum[slot] + len(batches[slot]):
				booked = true
			default:
				child.kill()
				return fmt.Errorf("chaos: FAIL — restart shows %d reports at slot %d, expected %d or %d",
					st.Ingested, slot, cum[slot], cum[slot]+len(batches[slot]))
			}
		}

		ops := rng.Intn(3) // 0 kills straight after recovery
		done := st.Done
		for op := 0; op < ops && !done; op++ {
			if !booked {
				var ack serve.IngestResponse
				if err := cl.post("/v1/requests", serve.IngestRequest{Requests: batches[slot]}, &ack); err != nil {
					break // child died mid-append
				}
				lastAcked = cum[slot] + len(batches[slot])
				booked = true
			} else {
				var res serve.TickResult
				if err := cl.post("/v1/tick", nil, &res); err != nil {
					break // child died mid-close
				}
				done = res.Done
				if !done {
					slot = res.NextSlot
					booked = len(batches[slot]) == 0
				}
			}
		}
		if done {
			if err := cl.get("/v1/trajectory", &finalTraj); err != nil {
				child.kill()
				kills++
				continue // re-read it from the next incarnation
			}
		}
		child.kill()
		if finalTraj == nil {
			kills++
		}
	}

	// One last clean restart: the finished horizon must be durable too.
	child, err := startChild(self, baseArgs, addrPath)
	if err != nil {
		return err
	}
	cl, err := child.waitReady(addrPath, 30*time.Second)
	if err != nil {
		return fmt.Errorf("chaos: final restart: %w", err)
	}
	var st serve.Stats
	if err := cl.get("/v1/stats", &st); err != nil {
		child.kill()
		return err
	}
	var replayTraj json.RawMessage
	if err := cl.get("/v1/trajectory", &replayTraj); err != nil {
		child.kill()
		return err
	}
	child.kill()
	if !st.Done || st.Ingested != int64(cum[T]) {
		return fmt.Errorf("chaos: FAIL — final restart shows done=%v ingested=%d, want done=true ingested=%d", st.Done, st.Ingested, cum[T])
	}

	want, err := goldenTrajectory(ctx, eff, scfg, tr)
	if err != nil {
		return err
	}
	if !bytes.Equal(want, bytes.TrimSpace(finalTraj)) || !bytes.Equal(want, bytes.TrimSpace(replayTraj)) {
		fmt.Fprintln(out, "chaos: FAIL — trajectory diverges from the golden batch replay")
		return fmt.Errorf("chaos failed")
	}
	if kills < minKills {
		return fmt.Errorf("chaos: only %d kills exercised, %d required — raise -T or lower -chaos", kills, minKills)
	}
	fmt.Fprintf(out, "chaos: PASS — %d kills, %d reports, trajectory identical across every restart\n", kills, cum[T])
	return nil
}
