// Command report assembles EXPERIMENTS.md from the CSV tables written by
// `experiments -csv`: for every figure it embeds the measured series, the
// paper's published claim, and a machine-checked verdict (PASS for
// reproduction-critical claims, WARN for informational ones).
//
// Usage:
//
//	experiments -all -csv results/csv
//	report -csv results/csv -out EXPERIMENTS.md
//	report -csv results/csv -trace claims.jsonl   # structured verdicts
//	report -csv results/csv -audit                # fail on ANY non-PASS verdict
//
// The command exits non-zero if any strict claim fails or is undefined
// (NaN inputs, e.g. a ratio over a zero-cost baseline) — the document is
// still written, with the failures marked. With -audit even
// informational WARN/UNDEF verdicts fail the command.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"edgecache/internal/experiments"
	"edgecache/internal/obs"
	"edgecache/internal/report"
)

// titles restores the human-readable table titles the CSVs do not carry.
var titles = map[string]string{
	"fig2a":       "Total operating cost vs β",
	"fig2b":       "Cache replacement cost vs β",
	"fig2c":       "Number of cache replacements vs β",
	"fig2d":       "BS operating cost vs β",
	"fig3a":       "Total operating cost vs prediction window w",
	"fig3b":       "Number of cache replacements vs prediction window w",
	"fig4a":       "Total operating cost vs SBS bandwidth B",
	"fig4b":       "Number of cache replacements vs SBS bandwidth B",
	"fig5":        "Total operating cost vs prediction noise η",
	"headline":    "Cost ratios at β=50",
	"rho":         "Total operating cost vs rounding threshold ρ",
	"chc-r":       "Total operating cost vs CHC commitment r",
	"classic":     "Optimization vs classic request-driven caches (total cost)",
	"loadmode":    "Predicted vs reactive load split (RHC total cost)",
	"hitratio":    "Classic cache hit ratio vs capacity",
	"competitive": "RHC/offline cost ratio vs window (exact predictions)",
	"outage":      "Total operating cost vs SBS outage rate",
}

const header = `# EXPERIMENTS — paper vs measured

Regenerated with:

    go run ./cmd/experiments -all -csv results/csv
    go run ./cmd/report -csv results/csv -out EXPERIMENTS.md

Setup: the §V-B configuration (1 SBS, K = 30 contents, 30 user classes,
C = 5, B = 30, Zipf–Mandelbrot(α = 0.8, q = 30), η = 0.1, w = 10,
CHC commitment r = 5) at horizon T = 60, seed 1. Absolute costs are not
comparable to the paper's (the paper's demand scale is under-specified;
DESIGN.md §3 documents the calibration); every claim below is therefore a
*shape* statement, machine-checked against the measured series.

Legend: **PASS** — reproduction-critical claim holds; **WARN** —
informational claim failed (expected to be sensitive to scale/noise);
**FAIL** — reproduction-critical claim violated; **UNDEF** — claim
could not be evaluated (NaN input, e.g. a ratio over a zero base).

`

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	var (
		csvDir   = fs.String("csv", "results/csv", "directory holding the experiment CSVs")
		outPth   = fs.String("out", "", "output markdown file (default stdout)")
		traceTo  = fs.String("trace", "", "write structured claim-check events (JSONL) to this file")
		auditAll = fs.Bool("audit", false, "audit-grade strictness: exit non-zero on any non-PASS verdict, informational ones included")
		timeout  = fs.Duration("timeout", 0, "cancel the run after this duration (0 = none)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if err := ctx.Err(); err != nil {
		return err
	}

	tables := make(map[string]*experiments.Table)
	for id, title := range titles {
		if err := ctx.Err(); err != nil {
			return err
		}
		path := filepath.Join(*csvDir, id+".csv")
		f, err := os.Open(path)
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			return err
		}
		t, err := experiments.ReadCSV(id, title, f)
		f.Close()
		if err != nil {
			return err
		}
		tables[id] = t
	}
	if len(tables) == 0 {
		return fmt.Errorf("no experiment CSVs found in %s", *csvDir)
	}

	if *traceTo != "" {
		f, err := os.Create(*traceTo)
		if err != nil {
			return err
		}
		sink := obs.NewJSONL(bufio.NewWriter(f))
		tel := obs.New(sink, nil)
		for _, sec := range report.PaperSections() {
			t, ok := tables[sec.ID]
			if !ok {
				continue
			}
			for _, v := range sec.Check(t) {
				fields := obs.Fields{
					"table":  sec.ID,
					"claim":  v.Claim.Description,
					"strict": v.Claim.Strict,
					"status": v.Status(),
				}
				if v.Err != nil {
					fields["detail"] = v.Err.Error()
				}
				tel.Emit("report_claim", fields)
			}
		}
		if err := sink.Close(); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	out := stdout
	if *outPth != "" {
		f, err := os.Create(*outPth)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	writeErr := report.Write(out, report.PaperSections(), tables, header)
	if *auditAll {
		// Audit-grade strictness: informational verdicts count too.
		var bad int
		for _, sec := range report.PaperSections() {
			t, ok := tables[sec.ID]
			if !ok {
				continue
			}
			for _, v := range sec.Check(t) {
				if v.Err != nil {
					bad++
					fmt.Fprintf(os.Stderr, "audit: %s [%s] %s — %v\n", sec.ID, v.Status(), v.Claim.Description, v.Err)
				}
			}
		}
		if bad > 0 && writeErr == nil {
			writeErr = fmt.Errorf("audit: %d non-PASS verdict(s)", bad)
		}
	}
	return writeErr
}
