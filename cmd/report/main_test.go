package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeCSV drops a minimal experiment CSV into dir.
func writeCSV(t *testing.T, dir, id, content string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, id+".csv"), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestRunGeneratesReport(t *testing.T) {
	dir := t.TempDir()
	// A fig5 table satisfying its strict claims (Offline and LRFU flat).
	writeCSV(t, dir, "fig5",
		"eta,Offline,RHC,CHC,AFHC,LRFU\n0,100,101,102,103,130\n0.5,100,105,106,107,130\n")

	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-csv", dir}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# EXPERIMENTS", "[PASS] offline flat in η", "Fig. 5", "*Not measured in this run.*"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunStrictFailureExitsNonNil(t *testing.T) {
	dir := t.TempDir()
	// Offline NOT flat → strict failure.
	writeCSV(t, dir, "fig5",
		"eta,Offline,RHC,CHC,AFHC,LRFU\n0,100,101,102,103,130\n0.5,120,105,106,107,130\n")
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-csv", dir}, &buf); err == nil {
		t.Fatal("strict failure not propagated")
	}
	if !strings.Contains(buf.String(), "[FAIL] offline flat in η") {
		t.Fatal("FAIL verdict missing")
	}
}

func TestRunWritesFile(t *testing.T) {
	dir := t.TempDir()
	writeCSV(t, dir, "chc-r", "r,CHC\n1,10\n2,11\n")
	out := filepath.Join(dir, "EXPERIMENTS.md")
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-csv", dir, "-out", out}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "CHC cost non-decreasing in r") {
		t.Fatal("report file incomplete")
	}
}

func TestRunNoCSVs(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-csv", t.TempDir()}, &buf); err == nil {
		t.Fatal("accepted empty CSV directory")
	}
}

// TestRunUndefinedStrictClaim: NaN measurements (e.g. ratios over a
// zero-cost baseline) must surface as UNDEF and fail the document, not
// silently pass the bound checks.
func TestRunUndefinedStrictClaim(t *testing.T) {
	dir := t.TempDir()
	writeCSV(t, dir, "fig5",
		"eta,Offline,RHC,CHC,AFHC,LRFU\n0,NaN,101,102,103,130\n0.5,NaN,105,106,107,130\n")
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-csv", dir}, &buf); err == nil {
		t.Fatal("strict undefined claim did not fail the command")
	}
	if !strings.Contains(buf.String(), "[UNDEF] offline flat in η") {
		t.Fatalf("UNDEF verdict missing:\n%s", buf.String())
	}
}

// TestAuditFlagFailsOnWarn: -audit upgrades informational WARN verdicts
// to command failures.
func TestAuditFlagFailsOnWarn(t *testing.T) {
	dir := t.TempDir()
	// CHC cost falling sharply in r → the informational chc-r claim warns.
	writeCSV(t, dir, "chc-r", "r,CHC\n1,10\n2,5\n")
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-csv", dir}, &buf); err != nil {
		t.Fatalf("informational failure failed the default run: %v", err)
	}
	if !strings.Contains(buf.String(), "[WARN]") {
		t.Fatal("WARN verdict missing")
	}
	var auditBuf bytes.Buffer
	if err := run(context.Background(), []string{"-csv", dir, "-audit"}, &auditBuf); err == nil {
		t.Fatal("-audit did not fail on a WARN verdict")
	}
}
