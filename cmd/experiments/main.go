// Command experiments regenerates every table and figure of the paper's
// evaluation section (§V) plus the ablations listed in DESIGN.md.
//
// Usage:
//
//	experiments -all                 # everything, text tables to stdout
//	experiments -fig fig2a,fig5     # selected experiments
//	experiments -scale paper -all   # full §V-B scale (T = 100; slow)
//	experiments -csv out/           # also write one CSV per table
//	experiments -all -trace run.jsonl -debug-addr localhost:6060
//	experiments -all -timeout 10m -slot-budget 100ms
//	experiments -all -audit          # differentially audit every run; fail on violations
//
// Experiment identifiers: fig2a fig2b fig2c fig2d fig3a fig3b fig4a fig4b
// fig5 headline rho chc-r classic loadmode hitratio competitive outage.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"edgecache/internal/experiments"
	"edgecache/internal/obs"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		all        = fs.Bool("all", false, "run every experiment")
		figs       = fs.String("fig", "", "comma-separated experiment ids (fig2a..fig5, headline, rho, chc-r)")
		scale      = fs.String("scale", "default", "instance scale: quick, default, paper")
		csvDir     = fs.String("csv", "", "directory to write per-table CSVs (created if missing)")
		progress   = fs.Bool("progress", true, "log per-run progress to stderr")
		plot       = fs.Bool("plot", false, "render each table as an ASCII chart too")
		seed       = fs.Uint64("seed", 1, "workload seed")
		seeds      = fs.Int("seeds", 1, "number of consecutive seeds to average per point")
		window     = fs.Int("w", 0, "override prediction window")
		traceTo    = fs.String("trace", "", "write structured telemetry events (JSONL) to this file")
		traceSpans = fs.String("trace-spans", "", "write hierarchical solver spans as a Chrome trace-event file (open in Perfetto)")
		metrics    = fs.Bool("metrics", false, "print the metrics registry to stderr after the sweeps")
		debugAddr  = fs.String("debug-addr", "", "serve expvar, pprof, /metrics and /debug/solver on this address (e.g. localhost:6060)")
		timeout    = fs.Duration("timeout", 0, "cancel the whole run after this duration (0 = none)")
		slotBudget = fs.Duration("slot-budget", 0, "per-window solve budget; overruns degrade gracefully (0 = none)")
		auditRuns  = fs.Bool("audit", false, "re-derive every committed trajectory's feasibility, integrality and costs; fail the sweep on violations")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var setup experiments.Setup
	switch *scale {
	case "quick":
		setup = experiments.Quick()
	case "default":
		setup = experiments.Default()
	case "paper":
		setup = experiments.PaperScale()
	default:
		return fmt.Errorf("unknown scale %q", *scale)
	}
	setup.Config.Seed = *seed
	if *seeds > 1 {
		for i := 0; i < *seeds; i++ {
			setup.Seeds = append(setup.Seeds, *seed+uint64(i))
		}
	}
	if *window > 0 {
		setup.Window = *window
		if setup.Commitment > *window {
			setup.Commitment = max(1, *window/2)
		}
	}
	if *progress {
		setup.Progress = os.Stderr
	}
	setup.SlotBudget = *slotBudget
	setup.Audit = *auditRuns
	var sinks []obs.Sink
	if *traceTo != "" {
		f, err := os.Create(*traceTo)
		if err != nil {
			return err
		}
		sink := obs.NewJSONL(bufio.NewWriter(f))
		defer func() {
			sink.Close()
			f.Close()
		}()
		sinks = append(sinks, sink)
	}
	if *debugAddr != "" {
		// Feed the flight recorder so /debug/solver has recent samples.
		sinks = append(sinks, obs.Flight)
	}
	switch len(sinks) {
	case 0:
	case 1:
		setup.Telemetry = obs.New(sinks[0], nil)
	default:
		setup.Telemetry = obs.New(obs.Tee(sinks...), nil)
	}
	if *traceSpans != "" {
		tracer := obs.NewTracer(nil)
		ctx = obs.WithTracer(ctx, tracer)
		defer func() {
			f, err := os.Create(*traceSpans)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments: trace-spans:", err)
				return
			}
			err = tracer.WriteChromeTrace(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments: trace-spans:", err)
				return
			}
			fmt.Fprintf(os.Stderr, "trace: %d span(s) written to %s (open in Perfetto)\n",
				len(tracer.Records()), *traceSpans)
		}()
	}
	if *debugAddr != "" {
		srv, err := obs.ServeDebug(*debugAddr)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "debug server: http://%s/debug/pprof/, /debug/vars, /metrics, /debug/solver\n", srv.Addr())
	}
	if *metrics {
		defer func() {
			fmt.Fprintln(os.Stderr, "\nmetrics:")
			_ = obs.Default.WriteText(os.Stderr)
		}()
	}

	wanted := map[string]bool{}
	if !*all {
		if *figs == "" {
			return fmt.Errorf("nothing to do: pass -all or -fig ids")
		}
		for _, id := range strings.Split(*figs, ",") {
			wanted[strings.TrimSpace(id)] = true
		}
	}
	want := func(ids ...string) bool {
		if *all {
			return true
		}
		for _, id := range ids {
			if wanted[id] {
				return true
			}
		}
		return false
	}

	// emit writes each table as soon as its sweep completes, so partial
	// output survives an interrupted run.
	emitted := 0
	emit := func(ts ...*experiments.Table) error {
		for _, t := range ts {
			if err := t.Write(out); err != nil {
				return err
			}
			if *plot {
				if chart, err := t.Chart(); err == nil {
					if err := chart.Render(out); err != nil {
						return err
					}
				}
			}
			if *csvDir != "" {
				if err := os.MkdirAll(*csvDir, 0o755); err != nil {
					return err
				}
				f, err := os.Create(filepath.Join(*csvDir, t.ID+".csv"))
				if err != nil {
					return err
				}
				if err := t.WriteCSV(f); err != nil {
					f.Close()
					return err
				}
				if err := f.Close(); err != nil {
					return err
				}
			}
			emitted++
		}
		return nil
	}
	add := func(ts []*experiments.Table, err error) error {
		if err != nil {
			return err
		}
		return emit(ts...)
	}

	if want("fig2a", "fig2b", "fig2c", "fig2d") {
		if err := add(setup.Fig2(ctx, []float64{0, 25, 50, 75, 100, 150, 200})); err != nil {
			return err
		}
	}
	if want("fig3a", "fig3b") {
		if err := add(setup.Fig3(ctx, []int{2, 4, 6, 8, 10, 14, 20})); err != nil {
			return err
		}
	}
	if want("fig4a", "fig4b") {
		if err := add(setup.Fig4(ctx, []float64{5, 10, 15, 20, 30, 40, 50})); err != nil {
			return err
		}
	}
	if want("fig5") {
		t, err := setup.Fig5(ctx, []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5})
		if err != nil {
			return err
		}
		if err := emit(t); err != nil {
			return err
		}
	}
	if want("headline") {
		t, err := setup.Headline(ctx, 50)
		if err != nil {
			return err
		}
		if err := emit(t); err != nil {
			return err
		}
	}
	if want("rho") {
		t, err := setup.RhoSweep(ctx, []float64{0.2, 0.3, 0.382, 0.5, 0.65, 0.8})
		if err != nil {
			return err
		}
		if err := emit(t); err != nil {
			return err
		}
	}
	if want("chc-r") {
		rs := []int{1, 2, 3, 5, 8, 10}
		var valid []int
		for _, r := range rs {
			if r <= setup.Window {
				valid = append(valid, r)
			}
		}
		t, err := setup.CommitmentSweep(ctx, valid)
		if err != nil {
			return err
		}
		if err := emit(t); err != nil {
			return err
		}
	}

	if want("competitive") {
		ws := []int{1, 2, 4, 8}
		var valid []int
		for _, w := range ws {
			if w <= setup.Config.T {
				valid = append(valid, w)
			}
		}
		t, err := setup.Competitive(ctx, valid)
		if err != nil {
			return err
		}
		if err := emit(t); err != nil {
			return err
		}
	}
	if want("loadmode") {
		t, err := setup.LoadModeComparison(ctx, []float64{0, 0.2, 0.4})
		if err != nil {
			return err
		}
		if err := emit(t); err != nil {
			return err
		}
	}
	if want("hitratio") {
		t, err := setup.HitRatioSweep(ctx, []int{1, 2, 5, 10, 15})
		if err != nil {
			return err
		}
		if err := emit(t); err != nil {
			return err
		}
	}
	if want("classic") {
		t, err := setup.ClassicComparison(ctx, []float64{0, 50, 100})
		if err != nil {
			return err
		}
		if err := emit(t); err != nil {
			return err
		}
	}
	if want("outage") {
		t, err := setup.FigOutage(ctx, []float64{0, 0.01, 0.02, 0.05, 0.1})
		if err != nil {
			return err
		}
		if err := emit(t); err != nil {
			return err
		}
	}

	if emitted == 0 {
		return fmt.Errorf("no experiment matched %q", *figs)
	}
	return nil
}
