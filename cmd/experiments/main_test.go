package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSelectedFigures(t *testing.T) {
	var buf bytes.Buffer
	err := run(context.Background(), []string{"-scale", "quick", "-fig", "headline", "-progress=false"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"[headline]", "RatioToOffline", "Offline", "LRFU"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunWritesCSV(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	err := run(context.Background(), []string{"-scale", "quick", "-fig", "chc-r", "-progress=false", "-csv", dir, "-w", "3"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "chc-r.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "r,CHC") {
		t.Fatalf("unexpected CSV header: %q", string(data[:20]))
	}
}

func TestRunRejectsNothingSelected(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-scale", "quick"}, &buf); err == nil {
		t.Fatal("accepted empty selection")
	}
}

func TestRunRejectsUnknownScale(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-scale", "galactic", "-all"}, &buf); err == nil {
		t.Fatal("accepted unknown scale")
	}
}

func TestRunRejectsUnknownFigure(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-scale", "quick", "-fig", "fig99"}, &buf); err == nil {
		t.Fatal("accepted unknown figure id")
	}
}

func TestRunRejectsBadFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-nope"}, &buf); err == nil {
		t.Fatal("accepted unknown flag")
	}
}

func TestAuditFlagCleanSweep(t *testing.T) {
	var buf bytes.Buffer
	err := run(context.Background(), []string{"-scale", "quick", "-fig", "headline", "-progress=false", "-audit"}, &buf)
	if err != nil {
		t.Fatalf("audited sweep reported violations or failed: %v", err)
	}
	if !strings.Contains(buf.String(), "[headline]") {
		t.Fatal("audited sweep lost its normal output")
	}
}
