package experiments

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadCSV parses a table previously written by WriteCSV. The id, title
// and x-label are reconstructed from the arguments and header (CSV keeps
// the x-label but not the title), so callers pass the experiment id and
// get back a Table usable by the report generator.
func ReadCSV(id, title string, r io.Reader) (*Table, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("experiments: read csv: %w", err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 1 || lines[0] == "" {
		return nil, fmt.Errorf("experiments: csv %s is empty", id)
	}
	header := strings.Split(lines[0], ",")
	if len(header) < 2 {
		return nil, fmt.Errorf("experiments: csv %s has no data columns", id)
	}
	t := NewTable(id, title, header[0], header[1:])
	for ln, line := range lines[1:] {
		parts := strings.Split(line, ",")
		if len(parts) != len(header) {
			return nil, fmt.Errorf("experiments: csv %s row %d has %d fields, want %d", id, ln+1, len(parts), len(header))
		}
		cells := make(map[string]float64, len(header)-1)
		for i, col := range header[1:] {
			if parts[i+1] == "" {
				continue
			}
			v, err := strconv.ParseFloat(parts[i+1], 64)
			if err != nil {
				return nil, fmt.Errorf("experiments: csv %s row %d column %s: %w", id, ln+1, col, err)
			}
			cells[col] = v
		}
		x, err := strconv.ParseFloat(parts[0], 64)
		if err != nil {
			// Labeled row (headline table).
			t.AddLabeled(float64(ln), parts[0], cells)
			continue
		}
		t.Add(x, cells)
	}
	return t, nil
}
