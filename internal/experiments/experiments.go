// Package experiments reproduces every table and figure of the paper's
// numerical evaluation (§V): the β sweep of Fig. 2 (a–d), the prediction
// window sweep of Fig. 3 (a–b), the SBS bandwidth sweep of Fig. 4 (a–b),
// the prediction-noise sweep of Fig. 5, the §V-C(1) headline cost ratios,
// and two ablations DESIGN.md calls out (rounding threshold ρ, CHC
// commitment level r).
//
// Each experiment returns Tables whose rows are the figure's x-axis and
// whose columns are the algorithms' series, ready for text or CSV output.
// `go run ./cmd/experiments -all` regenerates everything reported in
// EXPERIMENTS.md.
package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"edgecache/internal/audit"
	"edgecache/internal/baseline"
	"edgecache/internal/core"
	"edgecache/internal/fault"
	"edgecache/internal/model"
	"edgecache/internal/obs"
	"edgecache/internal/online"
	"edgecache/internal/sim"
	"edgecache/internal/trace"
	"edgecache/internal/workload"
)

// Setup fixes everything an experiment does not sweep.
type Setup struct {
	// Config is the base instance configuration; sweeps mutate copies.
	Config workload.InstanceConfig
	// Window and Commitment configure the online controllers (paper
	// defaults: w = 10; CHC evaluated at r = w/2).
	Window, Commitment int
	// Eta is the default prediction noise (paper: 0.1).
	Eta float64
	// OfflineOpts and OnlineOpts tune the two solver contexts.
	OfflineOpts core.Options
	// OnlineOpts is embedded into each controller's Core options.
	OnlineOpts core.Options
	// Seeds, when non-empty, repeats every sweep point under each seed and
	// reports per-cell means; empty uses Config.Seed once.
	Seeds []uint64
	// SlotBudget bounds each window solve's wall-clock time. A solve that
	// overruns degrades gracefully (best feasible iterate, then the LRFU
	// fallback — see DESIGN.md §7) instead of failing the sweep. Zero
	// disables budgeting.
	SlotBudget time.Duration
	// Audit re-derives every committed trajectory's claims (package
	// audit: per-slot constraints, integrality, independent cost
	// recomputation) and fails the sweep on the first violation —
	// experiment tables must never be built from corrupt runs.
	Audit bool
	// Telemetry receives structured progress events plus everything the
	// underlying solvers emit (run_summary, solver_iteration, ...).
	Telemetry *obs.Telemetry
	// Progress, when non-nil, receives one text line per progress event —
	// the plain-text adapter for the structured stream above. Both may be
	// set; events then go to both.
	Progress io.Writer
}

// tel resolves the effective telemetry handle: the structured handle,
// the Progress text adapter, or both tee'd together.
func (s Setup) tel() *obs.Telemetry {
	switch {
	case s.Telemetry != nil && s.Progress != nil:
		return obs.New(obs.Tee(s.Telemetry.Sink(), obs.NewText(s.Progress, "progress")), s.Telemetry.Registry())
	case s.Telemetry != nil:
		return s.Telemetry
	case s.Progress != nil:
		return obs.New(obs.NewText(s.Progress, "progress"), nil)
	default:
		return nil
	}
}

// Default returns the evaluation setup at a horizon that keeps full
// sweeps tractable on one core (T = 60; everything else per §V-B).
func Default() Setup {
	cfg := workload.PaperDefault()
	cfg.T = 60
	return Setup{
		Config:      cfg,
		Window:      10,
		Commitment:  5,
		Eta:         0.1,
		OfflineOpts: core.Options{MaxIter: 40, StallIter: 12},
	}
}

// PaperScale returns the full §V-B setup (T = 100).
func PaperScale() Setup {
	s := Default()
	s.Config.T = 100
	return s
}

// Quick returns a miniature setup for benchmarks and smoke tests.
func Quick() Setup {
	s := Default()
	s.Config.T = 10
	s.Config.K = 8
	s.Config.ClassesPerSBS = 6
	s.Config.CacheCap = 2
	s.Config.Bandwidth = 5
	s.Config.Beta = 10
	s.Window = 4
	s.Commitment = 2
	s.OfflineOpts = core.Options{MaxIter: 15, StallIter: 6}
	s.OnlineOpts = core.Options{MaxIter: 12, StallIter: 6}
	return s
}

// logf emits one structured progress event (rendered as a bare line by
// the text adapter).
func (s Setup) logf(format string, args ...any) {
	if t := s.tel(); t.Enabled() {
		t.Emit("progress", obs.Fields{"msg": fmt.Sprintf(format, args...)})
	}
}

// seedList returns the seeds a point is averaged over.
func (s Setup) seedList() []uint64 {
	if len(s.Seeds) > 0 {
		return s.Seeds
	}
	return []uint64{s.Config.Seed}
}

// run evaluates one policy under the setup's telemetry, slot budget and
// audit configuration.
func (s Setup) run(ctx context.Context, in *model.Instance, pred *workload.Predictor, p sim.Policy) (*sim.Result, error) {
	res, err := sim.RunWith(ctx, in, pred, p, sim.Config{Telemetry: s.tel(), SlotBudget: s.SlotBudget, Audit: s.Audit})
	if err != nil {
		return nil, err
	}
	if s.Audit {
		if err := res.Audit.Err(); err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", p.Name(), err)
		}
	}
	return res, nil
}

// auditTrajectory applies the Setup.Audit policy to sweeps that drive
// online.Run directly (bypassing sim.RunWith).
func (s Setup) auditTrajectory(in *model.Instance, traj model.Trajectory, name string) error {
	if !s.Audit {
		return nil
	}
	rep := audit.Trajectory(in, traj, nil, audit.Options{})
	rep.Publish(s.tel(), name)
	if err := rep.Err(); err != nil {
		return fmt.Errorf("experiments: %s: %w", name, err)
	}
	return nil
}

// pointResults holds, per canonical algorithm name, one result per seed.
type pointResults map[string][]*sim.Result

// point runs every algorithm on one instance variant — once per seed —
// and returns results keyed by the canonical column names.
func (s Setup) point(ctx context.Context, mutate func(*workload.InstanceConfig), eta float64, window, commitment int) (pointResults, error) {
	out := make(pointResults)
	for _, seed := range s.seedList() {
		cfg := s.Config
		cfg.Seed = seed
		if mutate != nil {
			mutate(&cfg)
		}
		in, err := workload.BuildInstance(cfg)
		if err != nil {
			return nil, err
		}
		pred, err := workload.NewPredictor(in.Demand, eta, cfg.Seed)
		if err != nil {
			return nil, err
		}

		rhc := online.RHC(window)
		rhc.Core = s.OnlineOpts
		chc := online.CHC(window, commitment)
		chc.Core = s.OnlineOpts
		afhc := online.AFHC(window)
		afhc.Core = s.OnlineOpts

		policies := []sim.Policy{
			sim.Offline(s.OfflineOpts),
			sim.Online(rhc),
			sim.Online(chc),
			sim.Online(afhc),
			sim.FromBaseline(baseline.NewLRFU()),
		}
		for _, p := range policies {
			res, err := s.run(ctx, in, pred, p)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s: %w", p.Name(), err)
			}
			name := canonical(p.Name())
			out[name] = append(out[name], res)
			s.logf("  %-12s seed=%d total=%.1f repl=%d (%.1fs)", name, seed,
				res.Cost.Total, res.Cost.Replacements, res.Runtime.Seconds())
		}
	}
	return out, nil
}

// canonical strips parameterisation from policy names so columns stay
// stable across sweeps ("RHC(w=10)" → "RHC").
func canonical(name string) string {
	for _, prefix := range []string{"RHC", "CHC", "AFHC"} {
		if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
			return prefix
		}
	}
	return name
}

// Columns used by the sweeps, in display order.
var (
	allAlgorithms    = []string{"Offline", "RHC", "CHC", "AFHC", "LRFU"}
	onlineAlgorithms = []string{"RHC", "CHC", "AFHC"}
)

// metric extracts one reported series from a result.
type metric func(*sim.Result) float64

func totalCost(r *sim.Result) float64       { return r.Cost.Total }
func replacementCost(r *sim.Result) float64 { return r.Cost.Replacement }
func replacementCount(r *sim.Result) float64 {
	return float64(r.Cost.Replacements)
}
func bsCost(r *sim.Result) float64 { return r.Cost.BS }

// Fig2 sweeps the cache replacement cost β and reports the four panels of
// Fig. 2: (a) total operating cost, (b) cache replacement cost, (c) number
// of cache replacements, (d) BS operating cost.
func (s Setup) Fig2(ctx context.Context, betas []float64) ([]*Table, error) {
	panels := []struct {
		id, title string
		m         metric
	}{
		{"fig2a", "Total operating cost vs β", totalCost},
		{"fig2b", "Cache replacement cost vs β", replacementCost},
		{"fig2c", "Number of cache replacements vs β", replacementCount},
		{"fig2d", "BS operating cost vs β", bsCost},
	}
	tables := make([]*Table, len(panels))
	for i, p := range panels {
		tables[i] = NewTable(p.id, p.title, "beta", allAlgorithms)
	}
	for _, beta := range betas {
		s.logf("fig2: beta=%g", beta)
		res, err := s.point(ctx, func(c *workload.InstanceConfig) { c.Beta = beta }, s.Eta, s.Window, s.Commitment)
		if err != nil {
			return nil, err
		}
		for i, p := range panels {
			tables[i].Add(beta, extract(res, allAlgorithms, p.m))
		}
	}
	return tables, nil
}

// Fig3 sweeps the prediction window w and reports (a) total operating
// cost and (b) replacement count for the online algorithms, with the
// offline optimum as the reference line.
func (s Setup) Fig3(ctx context.Context, windows []int) ([]*Table, error) {
	cols := append([]string{"Offline"}, onlineAlgorithms...)
	ta := NewTable("fig3a", "Total operating cost vs prediction window w", "w", cols)
	tb := NewTable("fig3b", "Number of cache replacements vs prediction window w", "w", cols)
	for _, w := range windows {
		if w < 1 {
			return nil, fmt.Errorf("experiments: window %d invalid", w)
		}
		s.logf("fig3: w=%d", w)
		r := min(s.Commitment, w)
		res, err := s.point(ctx, nil, s.Eta, w, r)
		if err != nil {
			return nil, err
		}
		ta.Add(float64(w), extract(res, cols, totalCost))
		tb.Add(float64(w), extract(res, cols, replacementCount))
	}
	return []*Table{ta, tb}, nil
}

// Fig4 sweeps the SBS bandwidth B and reports (a) total operating cost
// and (b) replacement count.
func (s Setup) Fig4(ctx context.Context, bandwidths []float64) ([]*Table, error) {
	ta := NewTable("fig4a", "Total operating cost vs SBS bandwidth B", "B", allAlgorithms)
	tb := NewTable("fig4b", "Number of cache replacements vs SBS bandwidth B", "B", allAlgorithms)
	for _, b := range bandwidths {
		s.logf("fig4: B=%g", b)
		res, err := s.point(ctx, func(c *workload.InstanceConfig) { c.Bandwidth = b }, s.Eta, s.Window, s.Commitment)
		if err != nil {
			return nil, err
		}
		ta.Add(b, extract(res, allAlgorithms, totalCost))
		tb.Add(b, extract(res, allAlgorithms, replacementCount))
	}
	return []*Table{ta, tb}, nil
}

// Fig5 sweeps the prediction perturbation η and reports the total
// operating cost; LRFU and the offline optimum consume exact demand, so
// their rows are flat by construction.
func (s Setup) Fig5(ctx context.Context, etas []float64) (*Table, error) {
	t := NewTable("fig5", "Total operating cost vs prediction noise η", "eta", allAlgorithms)
	for _, eta := range etas {
		s.logf("fig5: eta=%g", eta)
		res, err := s.point(ctx, nil, eta, s.Window, s.Commitment)
		if err != nil {
			return nil, err
		}
		t.Add(eta, extract(res, allAlgorithms, totalCost))
	}
	return t, nil
}

// Headline reproduces §V-C(1): at one β, the cost of every algorithm, its
// ratio to the offline optimum (paper: RHC 1.02, CHC 1.08, AFHC 1.11,
// LRFU 1.3) and its reduction relative to LRFU (paper: 27%, 20%, 17%).
func (s Setup) Headline(ctx context.Context, beta float64) (*Table, error) {
	s.logf("headline: beta=%g", beta)
	res, err := s.point(ctx, func(c *workload.InstanceConfig) { c.Beta = beta }, s.Eta, s.Window, s.Commitment)
	if err != nil {
		return nil, err
	}
	t := NewTable("headline", fmt.Sprintf("Cost ratios at β=%g", beta), "row",
		[]string{"TotalCost", "RatioToOffline", "ReductionVsLRFU"})
	offline := res.meanTotal("Offline")
	lrfu := res.meanTotal("LRFU")
	for i, name := range allAlgorithms {
		c := res.meanTotal(name)
		t.AddLabeled(float64(i), name, map[string]float64{
			"TotalCost":       c,
			"RatioToOffline":  c / offline,
			"ReductionVsLRFU": (lrfu - c) / lrfu,
		})
	}
	return t, nil
}

// RhoSweep ablates the CHC/AFHC rounding threshold around the theoretical
// optimum ρ* = (3−√5)/2 of Theorem 3.
func (s Setup) RhoSweep(ctx context.Context, rhos []float64) (*Table, error) {
	t := NewTable("rho", "Total operating cost vs rounding threshold ρ", "rho", []string{"CHC", "AFHC"})
	for _, rho := range rhos {
		s.logf("rho sweep: rho=%g", rho)
		cfg := s.Config
		in, err := workload.BuildInstance(cfg)
		if err != nil {
			return nil, err
		}
		pred, err := workload.NewPredictor(in.Demand, s.Eta, cfg.Seed)
		if err != nil {
			return nil, err
		}
		cells := make(map[string]float64, 2)
		for _, alg := range []struct {
			name string
			cfg  online.Config
		}{
			{"CHC", online.CHC(s.Window, s.Commitment)},
			{"AFHC", online.AFHC(s.Window)},
		} {
			c := alg.cfg
			c.Rho = rho
			c.Core = s.OnlineOpts
			c.Telemetry = s.tel()
			c.SlotBudget = s.SlotBudget
			res, err := online.Run(ctx, in, pred, c)
			if err != nil {
				return nil, fmt.Errorf("experiments: rho=%g %s: %w", rho, alg.name, err)
			}
			if err := s.auditTrajectory(in, res.Trajectory, alg.name); err != nil {
				return nil, err
			}
			cells[alg.name] = in.TotalCost(res.Trajectory).Total
		}
		t.Add(rho, cells)
	}
	return t, nil
}

// CommitmentSweep ablates CHC's commitment level r from RHC (r = 1) to
// AFHC (r = w).
func (s Setup) CommitmentSweep(ctx context.Context, rs []int) (*Table, error) {
	t := NewTable("chc-r", "Total operating cost vs CHC commitment r", "r", []string{"CHC"})
	cfg := s.Config
	in, err := workload.BuildInstance(cfg)
	if err != nil {
		return nil, err
	}
	pred, err := workload.NewPredictor(in.Demand, s.Eta, cfg.Seed)
	if err != nil {
		return nil, err
	}
	for _, r := range rs {
		s.logf("commitment sweep: r=%d", r)
		c := online.CHC(s.Window, r)
		c.Core = s.OnlineOpts
		c.Telemetry = s.tel()
		c.SlotBudget = s.SlotBudget
		res, err := online.Run(ctx, in, pred, c)
		if err != nil {
			return nil, fmt.Errorf("experiments: r=%d: %w", r, err)
		}
		if err := s.auditTrajectory(in, res.Trajectory, c.Name()); err != nil {
			return nil, err
		}
		t.Add(float64(r), map[string]float64{"CHC": in.TotalCost(res.Trajectory).Total})
	}
	return t, nil
}

// Competitive is the Theorem-2 empirical check: under exact predictions
// (η = 0), RHC's cost ratio to the offline optimum should approach 1 as
// the window grows, staying within the O(1 + 1/w) competitive regime. The
// table reports the measured ratio next to the 1 + 1/w reference curve.
func (s Setup) Competitive(ctx context.Context, windows []int) (*Table, error) {
	t := NewTable("competitive", "RHC/offline cost ratio vs window (exact predictions)", "w",
		[]string{"Ratio", "OnePlusOneOverW"})
	for _, w := range windows {
		if w < 1 {
			return nil, fmt.Errorf("experiments: window %d invalid", w)
		}
		s.logf("competitive: w=%d", w)
		var ratio float64
		for _, seed := range s.seedList() {
			cfg := s.Config
			cfg.Seed = seed
			in, err := workload.BuildInstance(cfg)
			if err != nil {
				return nil, err
			}
			pred, err := workload.NewPredictor(in.Demand, 0, seed)
			if err != nil {
				return nil, err
			}
			off, err := s.run(ctx, in, pred, sim.Offline(s.OfflineOpts))
			if err != nil {
				return nil, err
			}
			rhc := online.RHC(w)
			rhc.Core = s.OnlineOpts
			rhc.Telemetry = s.tel()
			rhc.SlotBudget = s.SlotBudget
			res, err := online.Run(ctx, in, pred, rhc)
			if err != nil {
				return nil, err
			}
			if err := s.auditTrajectory(in, res.Trajectory, rhc.Name()); err != nil {
				return nil, err
			}
			ratio += in.TotalCost(res.Trajectory).Total / off.Cost.Total / float64(len(s.seedList()))
		}
		t.Add(float64(w), map[string]float64{
			"Ratio":           ratio,
			"OnePlusOneOverW": 1 + 1/float64(w),
		})
	}
	return t, nil
}

// LoadModeComparison is an ablation of the committed load split: the
// paper-literal predicted split (averaged window solutions, rescaled for
// feasibility) against the reactive split (optimal for the committed
// placement under realised demand), swept over prediction noise η. It
// quantifies how much of Fig. 5's degradation comes from mis-split load
// versus mis-placed caches.
func (s Setup) LoadModeComparison(ctx context.Context, etas []float64) (*Table, error) {
	t := NewTable("loadmode", "Predicted vs reactive load split (RHC total cost)", "eta",
		[]string{"Predicted", "Reactive"})
	for _, eta := range etas {
		s.logf("loadmode: eta=%g", eta)
		cells := make(map[string]float64, 2)
		for _, seed := range s.seedList() {
			cfg := s.Config
			cfg.Seed = seed
			in, err := workload.BuildInstance(cfg)
			if err != nil {
				return nil, err
			}
			pred, err := workload.NewPredictor(in.Demand, eta, seed)
			if err != nil {
				return nil, err
			}
			for _, mode := range []online.LoadMode{online.LoadPredicted, online.LoadReactive} {
				c := online.RHC(s.Window)
				c.Core = s.OnlineOpts
				c.LoadMode = mode
				c.Telemetry = s.tel()
				c.SlotBudget = s.SlotBudget
				res, err := online.Run(ctx, in, pred, c)
				if err != nil {
					return nil, fmt.Errorf("experiments: loadmode %v: %w", mode, err)
				}
				if err := s.auditTrajectory(in, res.Trajectory, c.Name()); err != nil {
					return nil, err
				}
				name := "Predicted"
				if mode == online.LoadReactive {
					name = "Reactive"
				}
				cells[name] += in.TotalCost(res.Trajectory).Total / float64(len(s.seedList()))
			}
		}
		t.Add(eta, cells)
	}
	return t, nil
}

// HitRatioSweep is a request-level extension: the classic caches' hit
// ratios versus cache capacity on a Poisson trace of the configured
// workload — the metric CDN operators actually monitor, complementing the
// paper's cost-based comparison.
func (s Setup) HitRatioSweep(ctx context.Context, capacities []int) (*Table, error) {
	cols := []string{"LRU", "FIFO", "LFU", "CLRFU"}
	t := NewTable("hitratio", "Classic cache hit ratio vs capacity", "C", cols)
	cfg := s.Config
	in, err := workload.BuildInstance(cfg)
	if err != nil {
		return nil, err
	}
	tr := trace.Generate(in.Demand, cfg.Seed)
	factories := map[string]trace.Factory{
		"LRU":   trace.NewLRU(),
		"FIFO":  trace.NewFIFO(),
		"LFU":   trace.NewLFU(),
		"CLRFU": trace.NewClassicLRFU(0.1),
	}
	for _, c := range capacities {
		if c < 0 {
			return nil, fmt.Errorf("experiments: negative capacity %d", c)
		}
		s.logf("hitratio: C=%d", c)
		cells := make(map[string]float64, len(cols))
		for name, f := range factories {
			var hits, reqs int
			for n := 0; n < in.N; n++ {
				res, err := trace.Replay(tr, n, f(c))
				if err != nil {
					return nil, fmt.Errorf("experiments: hitratio %s: %w", name, err)
				}
				hits += res.Hits
				reqs += res.Requests
			}
			if reqs > 0 {
				cells[name] = float64(hits) / float64(reqs)
			}
		}
		t.Add(float64(c), cells)
	}
	return t, nil
}

// ClassicComparison is an extension table (not in the paper): the paper's
// optimization-based policies against the request-driven classics of its
// related-work section (LRU, FIFO, perfect LFU, Lee-et-al. LRFU), all
// costed under the same objective, swept over β.
func (s Setup) ClassicComparison(ctx context.Context, betas []float64) (*Table, error) {
	cols := []string{"Offline", "RHC", "LRFU", "LRU", "FIFO", "CLFU", "CLRFU"}
	t := NewTable("classic", "Optimization vs classic request-driven caches (total cost)", "beta", cols)
	for _, beta := range betas {
		s.logf("classic: beta=%g", beta)
		cfg := s.Config
		cfg.Beta = beta
		in, err := workload.BuildInstance(cfg)
		if err != nil {
			return nil, err
		}
		pred, err := workload.NewPredictor(in.Demand, s.Eta, cfg.Seed)
		if err != nil {
			return nil, err
		}
		rhc := online.RHC(s.Window)
		rhc.Core = s.OnlineOpts
		policies := map[string]sim.Policy{
			"Offline": sim.Offline(s.OfflineOpts),
			"RHC":     sim.Online(rhc),
			"LRFU":    sim.FromBaseline(baseline.NewLRFU()),
			"LRU":     sim.FromBaseline(trace.NewPolicyAdapter(trace.NewLRU(), cfg.Seed)),
			"FIFO":    sim.FromBaseline(trace.NewPolicyAdapter(trace.NewFIFO(), cfg.Seed)),
			"CLFU":    sim.FromBaseline(trace.NewPolicyAdapter(trace.NewLFU(), cfg.Seed)),
			"CLRFU":   sim.FromBaseline(trace.NewPolicyAdapter(trace.NewClassicLRFU(0.1), cfg.Seed)),
		}
		cells := make(map[string]float64, len(policies))
		for name, p := range policies {
			res, err := s.run(ctx, in, pred, p)
			if err != nil {
				return nil, fmt.Errorf("experiments: classic %s: %w", name, err)
			}
			cells[name] = res.Cost.Total
			s.logf("  %-12s total=%.1f repl=%d (%.1fs)", name, res.Cost.Total, res.Cost.Replacements, res.Runtime.Seconds())
		}
		t.Add(beta, cells)
	}
	return t, nil
}

// FigOutage is a robustness extension (not in the paper): total
// operating cost versus the per-slot SBS outage rate, under random
// geometric-length outages injected through the fault subsystem. It
// compares the failure-aware online controllers (which replan at
// topology events and evict from dead SBSs) against the reactive LRFU
// baseline. The offline solver is excluded: Theorem 3's competitive
// guarantee is void under outages (DESIGN.md §10), so there is no
// meaningful optimal reference to normalise by.
func (s Setup) FigOutage(ctx context.Context, rates []float64) (*Table, error) {
	cols := []string{"RHC", "CHC", "AFHC", "LRFU"}
	t := NewTable("outage", "Total operating cost vs SBS outage rate", "rate", cols)
	for _, rate := range rates {
		if rate < 0 || rate >= 1 {
			return nil, fmt.Errorf("experiments: outage rate %g outside [0, 1)", rate)
		}
		s.logf("outage: rate=%g", rate)
		cells := make(map[string]float64, len(cols))
		for _, seed := range s.seedList() {
			cfg := s.Config
			cfg.Seed = seed
			in, err := workload.BuildInstance(cfg)
			if err != nil {
				return nil, err
			}
			pred, err := workload.NewPredictor(in.Demand, s.Eta, seed)
			if err != nil {
				return nil, err
			}
			var schedule *fault.Schedule
			if rate > 0 {
				schedule = &fault.Schedule{Seed: seed, Injectors: []fault.Injector{
					fault.RandomOutages{Rate: rate, MeanLen: 3},
				}}
			}
			rhc := online.RHC(s.Window)
			rhc.Core = s.OnlineOpts
			chc := online.CHC(s.Window, s.Commitment)
			chc.Core = s.OnlineOpts
			afhc := online.AFHC(s.Window)
			afhc.Core = s.OnlineOpts
			policies := []sim.Policy{
				sim.Online(rhc),
				sim.Online(chc),
				sim.Online(afhc),
				sim.FromBaseline(baseline.NewLRFU()),
			}
			for _, p := range policies {
				res, err := sim.RunWith(ctx, in, pred, p, sim.Config{
					Telemetry: s.tel(), SlotBudget: s.SlotBudget, Audit: s.Audit, Faults: schedule,
				})
				if err != nil {
					return nil, fmt.Errorf("experiments: outage rate=%g %s: %w", rate, p.Name(), err)
				}
				if s.Audit {
					if err := res.Audit.Err(); err != nil {
						return nil, fmt.Errorf("experiments: outage rate=%g %s: %w", rate, p.Name(), err)
					}
				}
				name := canonical(p.Name())
				cells[name] += res.Cost.Total / float64(len(s.seedList()))
				s.logf("  %-12s seed=%d total=%.1f (%.1fs)", name, seed, res.Cost.Total, res.Runtime.Seconds())
			}
		}
		t.Add(rate, cells)
	}
	return t, nil
}

// extract pulls one metric for the named columns, averaged over seeds.
func extract(res pointResults, cols []string, m metric) map[string]float64 {
	out := make(map[string]float64, len(cols))
	for _, c := range cols {
		rs, ok := res[c]
		if !ok || len(rs) == 0 {
			continue
		}
		var sum float64
		for _, r := range rs {
			sum += m(r)
		}
		out[c] = sum / float64(len(rs))
	}
	return out
}

// meanTotal averages one algorithm's total cost across seeds.
func (p pointResults) meanTotal(name string) float64 {
	rs := p[name]
	if len(rs) == 0 {
		return 0
	}
	var sum float64
	for _, r := range rs {
		sum += r.Cost.Total
	}
	return sum / float64(len(rs))
}
