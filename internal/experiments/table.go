package experiments

import (
	"fmt"
	"io"
	"strings"

	"edgecache/internal/textplot"
)

// Table is one experiment's output: rows along the sweep's x-axis, one
// column per reported series.
type Table struct {
	// ID is the experiment identifier ("fig2a", "headline", ...).
	ID string
	// Title describes the sweep.
	Title string
	// XLabel names the x-axis ("beta", "w", ...).
	XLabel string
	// Columns are the series names in display order.
	Columns []string
	// Rows hold the data.
	Rows []RowData
}

// RowData is one x-value with its series values. Label, when non-empty,
// replaces the numeric x in text output (used by the headline table).
type RowData struct {
	X     float64
	Label string
	Cells map[string]float64
}

// NewTable allocates an empty table.
func NewTable(id, title, xLabel string, columns []string) *Table {
	return &Table{
		ID:      id,
		Title:   title,
		XLabel:  xLabel,
		Columns: append([]string(nil), columns...),
	}
}

// Add appends a numeric-x row.
func (t *Table) Add(x float64, cells map[string]float64) {
	t.Rows = append(t.Rows, RowData{X: x, Cells: cells})
}

// AddLabeled appends a row displayed under a label instead of its x value.
func (t *Table) AddLabeled(x float64, label string, cells map[string]float64) {
	t.Rows = append(t.Rows, RowData{X: x, Label: label, Cells: cells})
}

// Write renders an aligned text table.
func (t *Table) Write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "## %s [%s]\n\n", t.Title, t.ID); err != nil {
		return err
	}
	header := make([]string, 0, len(t.Columns)+1)
	header = append(header, t.XLabel)
	header = append(header, t.Columns...)

	widths := make([]int, len(header))
	cells := make([][]string, len(t.Rows))
	for i, h := range header {
		widths[i] = len(h)
	}
	for ri, row := range t.Rows {
		line := make([]string, len(header))
		if row.Label != "" {
			line[0] = row.Label
		} else {
			line[0] = trimFloat(row.X)
		}
		for ci, col := range t.Columns {
			v, ok := row.Cells[col]
			if !ok {
				line[ci+1] = "-"
			} else {
				line[ci+1] = trimFloat(v)
			}
		}
		for i, c := range line {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
		cells[ri] = line
	}

	writeLine := func(parts []string) error {
		var b strings.Builder
		for i, p := range parts {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], p)
		}
		b.WriteByte('\n')
		_, err := io.WriteString(w, b.String())
		return err
	}
	if err := writeLine(header); err != nil {
		return err
	}
	rule := make([]string, len(header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if err := writeLine(rule); err != nil {
		return err
	}
	for _, line := range cells {
		if err := writeLine(line); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// WriteCSV renders the table as CSV with an x column.
func (t *Table) WriteCSV(w io.Writer) error {
	cols := append([]string{t.XLabel}, t.Columns...)
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		parts := make([]string, 0, len(cols))
		if row.Label != "" {
			parts = append(parts, row.Label)
		} else {
			parts = append(parts, trimFloat(row.X))
		}
		for _, c := range t.Columns {
			if v, ok := row.Cells[c]; ok {
				parts = append(parts, trimFloat(v))
			} else {
				parts = append(parts, "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(parts, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Chart converts a numeric-x table into an ASCII chart. Tables with
// labeled rows (the headline table) are not plottable and return an error.
func (t *Table) Chart() (*textplot.Chart, error) {
	c := &textplot.Chart{Title: fmt.Sprintf("%s [%s]", t.Title, t.ID), XLabel: t.XLabel}
	for _, row := range t.Rows {
		if row.Label != "" {
			return nil, fmt.Errorf("experiments: table %s has labeled rows; not plottable", t.ID)
		}
		c.X = append(c.X, row.X)
	}
	for _, col := range t.Columns {
		s := textplot.Series{Name: col}
		for _, row := range t.Rows {
			v, ok := row.Cells[col]
			if !ok {
				return nil, fmt.Errorf("experiments: table %s misses %s at x=%g", t.ID, col, row.X)
			}
			s.Y = append(s.Y, v)
		}
		c.Series = append(c.Series, s)
	}
	return c, nil
}

// trimFloat renders numbers compactly (integers without decimals, others
// with four significant digits).
func trimFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.4g", v)
}
