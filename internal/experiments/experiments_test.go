package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestTableWrite(t *testing.T) {
	tab := NewTable("x1", "Demo", "beta", []string{"A", "B"})
	tab.Add(1, map[string]float64{"A": 10, "B": 20.5})
	tab.Add(2.5, map[string]float64{"A": 11})
	tab.AddLabeled(3, "row3", map[string]float64{"A": 1, "B": 2})
	var buf bytes.Buffer
	if err := tab.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Demo", "[x1]", "beta", "20.5", "row3", "-"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTableWriteCSV(t *testing.T) {
	tab := NewTable("x1", "Demo", "x", []string{"A"})
	tab.Add(1, map[string]float64{"A": 3})
	tab.Add(2, nil)
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "x,A" || lines[1] != "1,3" || lines[2] != "2," {
		t.Fatalf("CSV = %q", lines)
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{
		3:       "3",
		-2:      "-2",
		2.5:     "2.5",
		1234.56: "1235",
	}
	for v, want := range cases {
		if got := trimFloat(v); got != want {
			t.Errorf("trimFloat(%g) = %q, want %q", v, got, want)
		}
	}
}

func TestReadCSVRoundTrip(t *testing.T) {
	tab := NewTable("x1", "Demo", "beta", []string{"A", "B"})
	tab.Add(1, map[string]float64{"A": 10, "B": 20.5})
	tab.Add(2.5, map[string]float64{"A": 11})
	tab.AddLabeled(3, "row3", map[string]float64{"A": 1, "B": 2})
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV("x1", "Demo", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.XLabel != "beta" || len(got.Columns) != 2 || len(got.Rows) != 3 {
		t.Fatalf("parsed table %+v", got)
	}
	if got.Rows[0].Cells["B"] != 20.5 {
		t.Fatalf("cell lost: %+v", got.Rows[0])
	}
	if _, ok := got.Rows[1].Cells["B"]; ok {
		t.Fatal("empty cell resurrected")
	}
	if got.Rows[2].Label != "row3" {
		t.Fatalf("label lost: %+v", got.Rows[2])
	}
}

func TestReadCSVErrors(t *testing.T) {
	for name, data := range map[string]string{
		"empty":      "",
		"no columns": "x",
		"ragged":     "x,A\n1,2,3",
		"bad number": "x,A\n1,zap",
	} {
		if _, err := ReadCSV("id", "t", strings.NewReader(data)); err == nil {
			t.Errorf("%s: accepted %q", name, data)
		}
	}
}

func TestTableChart(t *testing.T) {
	tab := NewTable("x1", "Demo", "beta", []string{"A"})
	tab.Add(1, map[string]float64{"A": 10})
	tab.Add(2, map[string]float64{"A": 20})
	c, err := tab.Chart()
	if err != nil {
		t.Fatal(err)
	}
	if len(c.X) != 2 || len(c.Series) != 1 || c.Series[0].Y[1] != 20 {
		t.Fatalf("chart = %+v", c)
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}

	labeled := NewTable("h", "H", "row", []string{"A"})
	labeled.AddLabeled(0, "L", map[string]float64{"A": 1})
	if _, err := labeled.Chart(); err == nil {
		t.Fatal("labeled table was plottable")
	}
	sparse := NewTable("s", "S", "x", []string{"A"})
	sparse.Add(1, nil)
	if _, err := sparse.Chart(); err == nil {
		t.Fatal("sparse table was plottable")
	}
}

func TestCanonical(t *testing.T) {
	cases := map[string]string{
		"RHC(w=10)":     "RHC",
		"CHC(w=10,r=5)": "CHC",
		"AFHC(w=10)":    "AFHC",
		"LRFU":          "LRFU",
		"Offline":       "Offline",
	}
	for in, want := range cases {
		if got := canonical(in); got != want {
			t.Errorf("canonical(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestQuickFig2EndToEnd exercises the full harness at Quick scale: the
// central shape claims must hold even on the miniature instance.
func TestQuickFig2EndToEnd(t *testing.T) {
	s := Quick()
	tables, err := s.Fig2(context.Background(), []float64{0, 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 4 {
		t.Fatalf("Fig2 returned %d tables, want 4", len(tables))
	}
	for _, tab := range tables {
		if len(tab.Rows) != 2 {
			t.Fatalf("%s has %d rows, want 2", tab.ID, len(tab.Rows))
		}
	}
	// Offline never exceeds any other algorithm's total (it optimises the
	// same objective with full information and a superset search).
	total := tables[0]
	for _, row := range total.Rows {
		off := row.Cells["Offline"]
		for _, col := range []string{"RHC", "CHC", "AFHC", "LRFU"} {
			if off > row.Cells[col]*1.05+1e-9 {
				t.Fatalf("β=%g: offline %g worse than %s %g", row.X, off, col, row.Cells[col])
			}
		}
	}
	// Replacement cost at β=0 is 0 by definition.
	replCost := tables[1]
	for _, col := range []string{"Offline", "RHC", "CHC", "AFHC", "LRFU"} {
		if v := replCost.Rows[0].Cells[col]; v != 0 {
			t.Fatalf("β=0: %s replacement cost %g, want 0", col, v)
		}
	}
}

func TestQuickFig5NoiseMonotonicityForLRFU(t *testing.T) {
	s := Quick()
	tab, err := s.Fig5(context.Background(), []float64{0, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	// LRFU and offline consume exact demand: their totals must be flat.
	for _, col := range []string{"LRFU", "Offline"} {
		a := tab.Rows[0].Cells[col]
		b := tab.Rows[1].Cells[col]
		if a != b {
			t.Fatalf("%s varies with η: %g vs %g", col, a, b)
		}
	}
}

func TestQuickHeadline(t *testing.T) {
	s := Quick()
	tab, err := s.Headline(context.Background(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("headline has %d rows", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row.Label == "Offline" {
			if r := row.Cells["RatioToOffline"]; r != 1 {
				t.Fatalf("offline ratio = %g, want 1", r)
			}
		}
		if row.Cells["RatioToOffline"] < 1-1e-9 {
			t.Fatalf("%s beats offline: ratio %g", row.Label, row.Cells["RatioToOffline"])
		}
	}
}

func TestQuickCommitmentSweepEndpoints(t *testing.T) {
	s := Quick()
	tab, err := s.CommitmentSweep(context.Background(), []int{1, s.Window})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestMultiSeedAveraging(t *testing.T) {
	s := Quick()
	s.Seeds = []uint64{1, 2}
	tab, err := s.Fig5(context.Background(), []float64{0.1})
	if err != nil {
		t.Fatal(err)
	}
	avg := tab.Rows[0].Cells["LRFU"]

	s.Seeds = []uint64{1}
	t1, err := s.Fig5(context.Background(), []float64{0.1})
	if err != nil {
		t.Fatal(err)
	}
	s.Seeds = []uint64{2}
	t2, err := s.Fig5(context.Background(), []float64{0.1})
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5 * (t1.Rows[0].Cells["LRFU"] + t2.Rows[0].Cells["LRFU"])
	if diff := avg - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("mean of seeds = %g, want %g", avg, want)
	}
}

func TestQuickClassicComparison(t *testing.T) {
	s := Quick()
	tab, err := s.ClassicComparison(context.Background(), []float64{5})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	row := tab.Rows[0].Cells
	for _, col := range tab.Columns {
		if _, ok := row[col]; !ok {
			t.Fatalf("missing column %s", col)
		}
	}
	// The offline optimum must dominate every classic cache.
	for _, col := range []string{"LRU", "FIFO", "CLFU", "CLRFU"} {
		if row["Offline"] > row[col]*1.02+1e-9 {
			t.Fatalf("offline %g worse than %s %g", row["Offline"], col, row[col])
		}
	}
}

func TestQuickLoadModeComparison(t *testing.T) {
	s := Quick()
	tab, err := s.LoadModeComparison(context.Background(), []float64{0.1})
	if err != nil {
		t.Fatal(err)
	}
	row := tab.Rows[0].Cells
	if row["Predicted"] <= 0 || row["Reactive"] <= 0 {
		t.Fatalf("non-positive costs: %v", row)
	}
	// Reactive has strictly more information at load-split time; it can
	// only help (small solver slack allowed).
	if row["Reactive"] > row["Predicted"]*1.01 {
		t.Fatalf("reactive %g worse than predicted %g", row["Reactive"], row["Predicted"])
	}
}

func TestQuickHitRatioSweep(t *testing.T) {
	s := Quick()
	tab, err := s.HitRatioSweep(context.Background(), []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		for col, v := range row.Cells {
			if v < 0 || v > 1 {
				t.Fatalf("%s hit ratio %g at C=%g", col, v, row.X)
			}
		}
	}
	// More capacity never lowers LRU's hit ratio on the same trace.
	if tab.Rows[1].Cells["LRU"] < tab.Rows[0].Cells["LRU"] {
		t.Fatal("LRU hit ratio fell with capacity")
	}
	if _, err := s.HitRatioSweep(context.Background(), []int{-1}); err == nil {
		t.Fatal("accepted negative capacity")
	}
}

func TestFig3RejectsBadWindow(t *testing.T) {
	s := Quick()
	if _, err := s.Fig3(context.Background(), []int{0}); err == nil {
		t.Fatal("Fig3 accepted window 0")
	}
}

func TestQuickCompetitive(t *testing.T) {
	s := Quick()
	tab, err := s.Competitive(context.Background(), []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row.Cells["Ratio"] < 1-1e-6 {
			t.Fatalf("ratio %g < 1 at w=%g", row.Cells["Ratio"], row.X)
		}
	}
	if tab.Rows[0].Cells["OnePlusOneOverW"] != 2 {
		t.Fatalf("reference curve wrong: %g", tab.Rows[0].Cells["OnePlusOneOverW"])
	}
	if _, err := s.Competitive(context.Background(), []int{0}); err == nil {
		t.Fatal("accepted window 0")
	}
}

func TestQuickFigOutage(t *testing.T) {
	s := Quick()
	s.Audit = true // every faulted trajectory must audit clean
	tab, err := s.FigOutage(context.Background(), []float64{0, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("FigOutage returned %d rows, want 2", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		for _, col := range []string{"RHC", "CHC", "AFHC", "LRFU"} {
			if v, ok := row.Cells[col]; !ok || v <= 0 {
				t.Fatalf("rate=%g: %s cell missing or non-positive (%g)", row.X, col, v)
			}
		}
	}
	// Killing SBS capacity can only push load to the costlier BS: the
	// faulted point must not beat the failure-free one (solver slack).
	clean, faulted := tab.Rows[0], tab.Rows[1]
	for _, col := range []string{"RHC", "LRFU"} {
		if faulted.Cells[col] < clean.Cells[col]*0.95 {
			t.Errorf("%s cost fell under outages: %g -> %g", col, clean.Cells[col], faulted.Cells[col])
		}
	}
}

func TestFigOutageRejectsBadRate(t *testing.T) {
	s := Quick()
	if _, err := s.FigOutage(context.Background(), []float64{1.5}); err == nil {
		t.Fatal("rate 1.5 accepted")
	}
}
