package parallel

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

func TestForSupervisedConvertsPanicToError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			before := mWorkerPanic.Value()
			var ran atomic.Int64
			err := ForSupervised(context.Background(), 8, workers, func(i int) error {
				ran.Add(1)
				if i == 3 {
					panic("boom")
				}
				return nil
			})
			var pe *PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("err = %v, want *PanicError", err)
			}
			if pe.Index != 3 || pe.Value != "boom" {
				t.Errorf("PanicError = {Index: %d, Value: %v}, want {3, boom}", pe.Index, pe.Value)
			}
			if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "goroutine") {
				t.Error("PanicError carries no stack trace")
			}
			if got := ran.Load(); got != 8 {
				t.Errorf("ran %d iterations, want all 8 despite the panic", got)
			}
			if mWorkerPanic.Value() != before+1 {
				t.Errorf("fault.worker_panic advanced by %d, want 1", mWorkerPanic.Value()-before)
			}
		})
	}
}

func TestForSupervisedLowestIndexWins(t *testing.T) {
	errOrdinary := errors.New("ordinary")
	err := ForSupervised(context.Background(), 8, 1, func(i int) error {
		switch i {
		case 2:
			return errOrdinary
		case 5:
			panic("later panic")
		}
		return nil
	})
	if !errors.Is(err, errOrdinary) {
		t.Errorf("err = %v, want the lower-index ordinary error", err)
	}
}

func TestForSupervisedNoPanic(t *testing.T) {
	var sum atomic.Int64
	if err := ForSupervised(context.Background(), 100, 0, func(i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatalf("err = %v, want nil", err)
	}
	if sum.Load() != 4950 {
		t.Errorf("sum = %d, want 4950", sum.Load())
	}
}

func TestForStillPropagatesPanics(t *testing.T) {
	// The unsupervised variant must keep crashing loudly: supervision is
	// opt-in at fault boundaries, not a global behaviour change.
	defer func() {
		if recover() == nil {
			t.Error("For swallowed a panic")
		}
	}()
	_ = For(context.Background(), 4, 1, func(i int) error {
		panic("bug")
	})
}
