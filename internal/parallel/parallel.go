// Package parallel provides the small fork-join helper used to fan
// independent per-slot subproblem solves across CPUs. It exists because the
// load-balancing subproblem P2 separates per (slot, SBS) — the dominant
// cost of every solver in this repository — and the standard library offers
// no errgroup.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// For runs fn(i) for i in [0, n) using up to workers goroutines (0 means
// GOMAXPROCS) and returns the error of the lowest index that failed, or
// nil. Panics in fn propagate to the caller.
//
// Cancellation: once ctx is done no new iteration is dispatched and For
// returns ctx.Err() (iteration errors of already-dispatched work take
// precedence, lowest index first). If every iteration had already
// completed, the work is whole and For reports success regardless of the
// context. In-flight iterations are allowed to finish — fn is never
// abandoned mid-call — so For never leaks a goroutine: every worker has
// returned by the time For returns. A nil ctx is treated as
// context.Background().
func For(ctx context.Context, n, workers int, fn func(i int) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		var firstErr error
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				if firstErr != nil {
					return firstErr
				}
				return err
			}
			if err := fn(i); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}

	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		next      int
		completed int
		errIdx    = -1
		err       error
		panicMu   sync.Mutex
		panicV    any
	)
	worker := func() {
		defer wg.Done()
		for {
			if ctx.Err() != nil {
				return
			}
			mu.Lock()
			i := next
			next++
			mu.Unlock()
			if i >= n {
				return
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						panicMu.Lock()
						if panicV == nil {
							panicV = fmt.Sprintf("parallel: panic in iteration %d: %v", i, r)
						}
						panicMu.Unlock()
					}
				}()
				e := fn(i)
				mu.Lock()
				completed++
				if e != nil && (errIdx == -1 || i < errIdx) {
					errIdx, err = i, e
				}
				mu.Unlock()
			}()
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go worker()
	}
	wg.Wait()
	if panicV != nil {
		panic(panicV)
	}
	if err != nil {
		return err
	}
	if completed < n {
		return ctx.Err()
	}
	return nil
}
