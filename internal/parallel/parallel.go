// Package parallel provides the small fork-join helper used to fan
// independent per-slot subproblem solves across CPUs. It exists because the
// load-balancing subproblem P2 separates per (slot, SBS) — the dominant
// cost of every solver in this repository — and the standard library offers
// no errgroup.
//
// All For calls in the process share one bounded pool of helper permits
// sized to GOMAXPROCS−1: the caller of For always works through the index
// range itself, and extra goroutines are spawned only while permits are
// available. Nested fan-outs (online versions → dual iterations → per-slot
// solves) therefore degrade gracefully to running inline in their caller
// instead of oversubscribing the scheduler multiplicatively.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"edgecache/internal/obs"
)

// mWorkerPanic counts panics converted to errors by ForSupervised — the
// signal that fault isolation absorbed a crash that would otherwise have
// taken down the whole run.
var mWorkerPanic = obs.Default.Counter("fault.worker_panic")

// PanicError is the per-item error ForSupervised synthesises from a
// panicking iteration: the panic value plus the goroutine stack at the
// point of recovery.
type PanicError struct {
	Index int
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: panic in iteration %d: %v", e.Index, e.Value)
}

// tokens is the process-wide pool of helper-goroutine permits shared by
// every For call. Its capacity is GOMAXPROCS−1 (at init), so the total
// number of goroutines actively working across all concurrent and nested
// For calls — callers included — never exceeds GOMAXPROCS.
var tokens chan struct{}

func init() {
	n := runtime.GOMAXPROCS(0) - 1
	if n < 0 {
		n = 0
	}
	tokens = make(chan struct{}, n)
	for i := 0; i < n; i++ {
		tokens <- struct{}{}
	}
}

// For runs fn(i) for i in [0, n) and returns the error of the lowest index
// that failed, or nil. The caller's goroutine always participates; up to
// workers−1 helpers (workers ≤ 0 means GOMAXPROCS) are added while the
// shared permit pool allows, so workers is an upper bound on this call's
// concurrency, never a demand. Panics in fn propagate to the caller.
//
// Cancellation: once ctx is done no new iteration is dispatched and For
// returns ctx.Err() (iteration errors of already-dispatched work take
// precedence, lowest index first). If every iteration had already
// completed, the work is whole and For reports success regardless of the
// context. In-flight iterations are allowed to finish — fn is never
// abandoned mid-call — so For never leaks a goroutine: every helper has
// returned by the time For returns. A nil ctx is treated as
// context.Background().
func For(ctx context.Context, n, workers int, fn func(i int) error) error {
	return run(ctx, n, workers, fn, false)
}

// ForSupervised is For with panic isolation: a panic in fn(i) is
// recovered, counted (fault.worker_panic) and converted into a
// *PanicError for index i instead of propagating, so one crashing item
// degrades that item rather than the whole fan-out. Error selection
// follows For's rule (lowest failing index wins, panics and ordinary
// errors alike). Use it at fault boundaries — per-version online solves,
// per-slot recovery — where the caller has a principled way to degrade;
// plain For remains correct elsewhere, where a panic is a bug that
// should crash loudly.
func ForSupervised(ctx context.Context, n, workers int, fn func(i int) error) error {
	return run(ctx, n, workers, fn, true)
}

func run(ctx context.Context, n, workers int, fn func(i int) error, supervised bool) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if n <= 0 {
		return nil
	}
	if supervised {
		raw := fn
		fn = func(i int) (err error) {
			defer func() {
				if r := recover(); r != nil {
					mWorkerPanic.Inc()
					err = &PanicError{Index: i, Value: r, Stack: debug.Stack()}
				}
			}()
			return raw(i)
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		var firstErr error
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				if firstErr != nil {
					return firstErr
				}
				return err
			}
			if err := fn(i); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}

	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		next      int
		completed int
		errIdx    = -1
		err       error
		panicMu   sync.Mutex
		panicV    any
	)
	worker := func() {
		for {
			if ctx.Err() != nil {
				return
			}
			mu.Lock()
			i := next
			next++
			mu.Unlock()
			if i >= n {
				return
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						panicMu.Lock()
						if panicV == nil {
							panicV = fmt.Sprintf("parallel: panic in iteration %d: %v", i, r)
						}
						panicMu.Unlock()
					}
				}()
				e := fn(i)
				mu.Lock()
				completed++
				if e != nil && (errIdx == -1 || i < errIdx) {
					errIdx, err = i, e
				}
				mu.Unlock()
			}()
		}
	}

	// Helpers beyond the caller each need a permit from the shared pool;
	// when the pool is drained (typically because enclosing For calls
	// already hold the permits) the call runs entirely in the caller.
	drained := false
	for h := 0; h < workers-1 && !drained; h++ {
		select {
		case <-tokens:
			wg.Add(1)
			go func() {
				defer func() {
					tokens <- struct{}{}
					wg.Done()
				}()
				worker()
			}()
		default:
			drained = true
		}
	}
	worker() // the caller always works too
	wg.Wait()

	if panicV != nil {
		panic(panicV)
	}
	if err != nil {
		return err
	}
	if completed < n {
		return ctx.Err()
	}
	return nil
}
