// Package parallel provides the small fork-join helper used to fan
// independent per-slot subproblem solves across CPUs. It exists because the
// load-balancing subproblem P2 separates per (slot, SBS) — the dominant
// cost of every solver in this repository — and the standard library offers
// no errgroup.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
)

// For runs fn(i) for i in [0, n) using up to workers goroutines (0 means
// GOMAXPROCS) and returns the error of the lowest index that failed, or
// nil. All iterations run even after a failure (they are independent and
// cheap to finish); panics in fn propagate to the caller.
func For(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		var firstErr error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		next    int
		errIdx  = -1
		err     error
		panicMu sync.Mutex
		panicV  any
	)
	worker := func() {
		defer wg.Done()
		for {
			mu.Lock()
			i := next
			next++
			mu.Unlock()
			if i >= n {
				return
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						panicMu.Lock()
						if panicV == nil {
							panicV = fmt.Sprintf("parallel: panic in iteration %d: %v", i, r)
						}
						panicMu.Unlock()
					}
				}()
				if e := fn(i); e != nil {
					mu.Lock()
					if errIdx == -1 || i < errIdx {
						errIdx, err = i, e
					}
					mu.Unlock()
				}
			}()
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go worker()
	}
	wg.Wait()
	if panicV != nil {
		panic(panicV)
	}
	return err
}
