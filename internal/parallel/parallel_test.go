package parallel

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestForRunsAllIterations(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		var count atomic.Int64
		seen := make([]atomic.Bool, 100)
		err := For(context.Background(), 100, workers, func(i int) error {
			count.Add(1)
			seen[i].Store(true)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if count.Load() != 100 {
			t.Fatalf("workers=%d: ran %d iterations, want 100", workers, count.Load())
		}
		for i := range seen {
			if !seen[i].Load() {
				t.Fatalf("workers=%d: iteration %d never ran", workers, i)
			}
		}
	}
}

func TestForZeroIterations(t *testing.T) {
	if err := For(context.Background(), 0, 4, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := For(context.Background(), -3, 4, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestForReturnsLowestIndexError(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	for _, workers := range []int{1, 4} {
		err := For(context.Background(), 50, workers, func(i int) error {
			switch i {
			case 7:
				return errA
			case 30:
				return errB
			}
			return nil
		})
		if !errors.Is(err, errA) {
			t.Fatalf("workers=%d: err = %v, want errA (lowest index)", workers, err)
		}
	}
}

func TestForPropagatesPanic(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic did not propagate")
		}
		if !strings.Contains(r.(string), "boom") {
			t.Fatalf("panic value %v does not mention cause", r)
		}
	}()
	_ = For(context.Background(), 10, 4, func(i int) error {
		if i == 5 {
			panic("boom")
		}
		return nil
	})
}

func TestForPropagatesPanicAllWorkers(t *testing.T) {
	// Every iteration panics, so every worker hits the recover path
	// concurrently. For must still join all workers (no deadlock), run the
	// whole index range, and re-panic with exactly one recorded value.
	var ran atomic.Int64
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic did not propagate")
		}
		s, ok := r.(string)
		if !ok || !strings.Contains(s, "parallel: panic in iteration") {
			t.Fatalf("panic value %v not wrapped with iteration context", r)
		}
		if ran.Load() != 64 {
			t.Fatalf("ran %d of 64 iterations before joining", ran.Load())
		}
	}()
	_ = For(context.Background(), 64, 8, func(i int) error {
		ran.Add(1)
		panic(i)
	})
}

func TestForPropagatesPanicSingleWorker(t *testing.T) {
	// The workers==1 fast path has no recover wrapper: the panic value must
	// reach the caller unmodified.
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic did not propagate")
		}
		if r != "boom-serial" {
			t.Fatalf("panic value = %v, want raw \"boom-serial\"", r)
		}
	}()
	_ = For(context.Background(), 10, 1, func(i int) error {
		if i == 5 {
			panic("boom-serial")
		}
		return nil
	})
}

func TestForConcurrencyBound(t *testing.T) {
	var inFlight, peak atomic.Int64
	_ = For(context.Background(), 200, 3, func(i int) error {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		inFlight.Add(-1)
		return nil
	})
	if peak.Load() > 3 {
		t.Fatalf("peak concurrency %d > 3", peak.Load())
	}
}

func TestForCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var count atomic.Int64
	err := For(ctx, 100, 4, func(i int) error {
		count.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if count.Load() == 100 {
		t.Fatal("all iterations ran despite pre-cancelled context")
	}
}

func TestForCancelMidwayStopsPromptly(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var count atomic.Int64
		err := For(ctx, 10000, workers, func(i int) error {
			if count.Add(1) == 10 {
				cancel()
			}
			return nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// Only in-flight iterations (at most one per worker) may finish
		// after the cancel; the rest must never be dispatched.
		if c := count.Load(); c >= 10000 {
			t.Fatalf("workers=%d: %d iterations ran despite cancellation", workers, c)
		}
	}
}

// TestForNoGoroutineLeak pins down the join guarantee: every worker has
// returned by the time For returns, even when the context is cancelled
// mid-run, so repeated calls do not accumulate goroutines.
func TestForNoGoroutineLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for round := 0; round < 20; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		_ = For(ctx, 500, 8, func(i int) error {
			if i == 5 {
				cancel()
			}
			return nil
		})
		cancel()
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestForLateCancelAfterCompletion: a context that expires only after
// every iteration has completed must not fail the call — the work is
// whole.
func TestForLateCancelAfterCompletion(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var count atomic.Int64
	err := For(ctx, 8, 4, func(i int) error {
		if count.Add(1) == 8 {
			cancel() // fires inside the final iteration
		}
		return nil
	})
	if err != nil {
		t.Fatalf("completed work reported error: %v", err)
	}
	if count.Load() != 8 {
		t.Fatalf("ran %d of 8 iterations", count.Load())
	}
}

// TestForNestedBoundsGlobalConcurrency exercises the nested fan-out shape
// the solver used to create (a For inside a For): it must complete without
// deadlock, run every iteration exactly once, and keep total concurrency
// within the global token pool's bound (GOMAXPROCS callers at most — inner
// calls always run on their caller, extra goroutines only on spare
// tokens).
func TestForNestedBoundsGlobalConcurrency(t *testing.T) {
	const outer, inner = 8, 16
	var inFlight, peak atomic.Int64
	var runs atomic.Int64
	err := For(context.Background(), outer, 4, func(i int) error {
		return For(context.Background(), inner, 4, func(j int) error {
			cur := inFlight.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			runs.Add(1)
			time.Sleep(100 * time.Microsecond)
			inFlight.Add(-1)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := runs.Load(); got != outer*inner {
		t.Fatalf("ran %d iterations, want %d", got, outer*inner)
	}
	// Each of up to GOMAXPROCS concurrently-live For calls contributes its
	// caller; every extra worker holds one of the GOMAXPROCS−1 tokens.
	limit := int64(2*runtime.GOMAXPROCS(0) - 1)
	if peak.Load() > limit {
		t.Fatalf("peak nested concurrency %d > %d", peak.Load(), limit)
	}
}
