package projection

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"edgecache/internal/mat"
)

func TestBox(t *testing.T) {
	z := []float64{-1, 0.5, 2}
	lo := []float64{0, 0, 0}
	hi := []float64{1, 1, 1}
	got := Box(make([]float64, 3), z, lo, hi)
	want := []float64{0, 0.5, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Box = %v, want %v", got, want)
		}
	}
	// In-place aliasing.
	Box(z, z, lo, hi)
	if z[0] != 0 || z[2] != 1 {
		t.Fatalf("in-place Box = %v", z)
	}
}

func TestBoxPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"length":   func() { Box(make([]float64, 1), []float64{1, 2}, []float64{0, 0}, []float64{1, 1}) },
		"inverted": func() { Box(make([]float64, 1), []float64{0}, []float64{1}, []float64{0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestBoxKnapsackInactive(t *testing.T) {
	// Knapsack slack: result is the plain box projection.
	z := []float64{0.2, 0.3}
	lo := []float64{0, 0}
	hi := []float64{1, 1}
	c := []float64{1, 1}
	got, err := BoxKnapsack(make([]float64, 2), z, lo, hi, c, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0.2 || got[1] != 0.3 {
		t.Fatalf("got %v, want z unchanged", got)
	}
}

func TestBoxKnapsackActive(t *testing.T) {
	// Project (1, 1) onto {0 ≤ y ≤ 1, y₁+y₂ ≤ 1}: answer (0.5, 0.5).
	z := []float64{1, 1}
	got, err := BoxKnapsack(make([]float64, 2), z, []float64{0, 0}, []float64{1, 1}, []float64{1, 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-0.5) > 1e-9 || math.Abs(got[1]-0.5) > 1e-9 {
		t.Fatalf("got %v, want (0.5, 0.5)", got)
	}
}

func TestBoxKnapsackInfeasible(t *testing.T) {
	_, err := BoxKnapsack(make([]float64, 1), []float64{1}, []float64{0.5}, []float64{1}, []float64{1}, 0.1)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestBoxKnapsackZeroWeights(t *testing.T) {
	// c = 0 coordinates are unconstrained by the knapsack.
	z := []float64{5, 5}
	got, err := BoxKnapsack(make([]float64, 2), z, []float64{0, 0}, []float64{1, 1}, []float64{0, 1}, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 {
		t.Fatalf("unweighted coordinate = %g, want 1 (box only)", got[0])
	}
	if math.Abs(got[1]-0.25) > 1e-9 {
		t.Fatalf("weighted coordinate = %g, want 0.25", got[1])
	}
}

func TestBoxKnapsackPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative weight")
		}
	}()
	_, _ = BoxKnapsack(make([]float64, 1), []float64{1}, []float64{0}, []float64{1}, []float64{-1}, 1)
}

// feasible samples a random point of {lo ≤ y ≤ hi, Σ c y ≤ b} by rejection
// from the box, shrinking toward lo when needed.
func feasiblePoint(r *rand.Rand, lo, hi, c []float64, b float64) []float64 {
	y := make([]float64, len(lo))
	for i := range y {
		y[i] = lo[i] + r.Float64()*(hi[i]-lo[i])
	}
	// Shrink toward lo until feasible (possible when Σ c·lo ≤ b).
	for iter := 0; iter < 200; iter++ {
		var load float64
		for i := range y {
			load += c[i] * y[i]
		}
		if load <= b {
			return y
		}
		for i := range y {
			y[i] = lo[i] + 0.7*(y[i]-lo[i])
		}
	}
	return append([]float64(nil), lo...)
}

// Property: the projection is feasible, idempotent, and no random feasible
// point is closer to z (up to tolerance) — the defining property of a
// Euclidean projection onto a convex set.
func TestBoxKnapsackProjectionProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 99))
		n := 1 + r.IntN(8)
		z := make([]float64, n)
		lo := make([]float64, n)
		hi := make([]float64, n)
		c := make([]float64, n)
		for i := range z {
			z[i] = r.Float64()*4 - 1
			lo[i] = 0
			hi[i] = 0.5 + r.Float64()
			if r.Float64() < 0.2 {
				c[i] = 0
			} else {
				c[i] = r.Float64() * 2
			}
		}
		b := r.Float64() * 3
		y, err := BoxKnapsack(make([]float64, n), z, lo, hi, c, b)
		if err != nil {
			return errors.Is(err, ErrInfeasible) // only legal failure
		}
		// Feasibility.
		var load float64
		for i := range y {
			if y[i] < lo[i]-1e-9 || y[i] > hi[i]+1e-9 {
				return false
			}
			load += c[i] * y[i]
		}
		if load > b+1e-6 {
			return false
		}
		// Idempotency.
		y2, err := BoxKnapsack(make([]float64, n), y, lo, hi, c, b)
		if err != nil || mat.Dist2(y, y2) > 1e-6 {
			return false
		}
		// Optimality against random feasible competitors.
		dStar := mat.Dist2(y, z)
		for trial := 0; trial < 20; trial++ {
			p := feasiblePoint(r, lo, hi, c, b)
			if mat.Dist2(p, z) < dStar-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestSimplex(t *testing.T) {
	got := Simplex(make([]float64, 3), []float64{1, 0.5, -1}, 1)
	if math.Abs(mat.Sum(got)-1) > 1e-9 {
		t.Fatalf("sum = %g, want 1", mat.Sum(got))
	}
	// Known answer: project (1, 0.5, −1) onto the unit simplex →
	// support {1, 2}, τ = 0.25 → (0.75, 0.25, 0).
	want := []float64{0.75, 0.25, 0}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("Simplex = %v, want %v", got, want)
		}
	}
}

func TestSimplexProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 17))
		n := 1 + r.IntN(10)
		z := make([]float64, n)
		for i := range z {
			z[i] = r.NormFloat64() * 3
		}
		radius := 0.5 + r.Float64()*2
		y := Simplex(make([]float64, n), z, radius)
		if math.Abs(mat.Sum(y)-radius) > 1e-8 {
			return false
		}
		for _, v := range y {
			if v < -1e-12 {
				return false
			}
		}
		// Competitors: random simplex points must not be closer.
		dStar := mat.Dist2(y, z)
		for trial := 0; trial < 20; trial++ {
			p := make([]float64, n)
			var s float64
			for i := range p {
				p[i] = r.Float64()
				s += p[i]
			}
			mat.Scale(radius/s, p)
			if mat.Dist2(p, z) < dStar-1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestSimplexPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on non-positive radius")
		}
	}()
	Simplex(make([]float64, 1), []float64{1}, 0)
}
