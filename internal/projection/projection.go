// Package projection provides Euclidean projections onto the feasible sets
// that arise in the load-balancing subproblem P2 (eq. 19): box constraints
// 0 ≤ y ≤ 1 (eq. 11, tightened to y ≤ x when the placement is fixed) and
// the SBS bandwidth knapsack Σ λ y ≤ B (eq. 2). The first-order solver in
// package convex composes these with gradient steps.
package projection

import (
	"errors"
	"fmt"
	"math"

	"edgecache/internal/mat"
)

// ErrInfeasible reports an empty feasible set (e.g. Σ c·lo > b).
var ErrInfeasible = errors.New("projection: feasible set is empty")

// bisectIters bounds the bisection loops; the loops also exit early once
// the bracket or the constraint residual is inside float64 noise, so this
// is a safety cap, not the typical iteration count.
const bisectIters = 90

// Box writes the projection of z onto the box [lo_i, hi_i] into dst and
// returns dst. dst may alias z. It panics on length mismatch or on an
// inverted box (lo > hi), which indicate solver construction bugs.
func Box(dst, z, lo, hi []float64) []float64 {
	if len(dst) != len(z) || len(z) != len(lo) || len(lo) != len(hi) {
		panic(fmt.Sprintf("projection: Box length mismatch %d/%d/%d/%d", len(dst), len(z), len(lo), len(hi)))
	}
	for i, v := range z {
		if lo[i] > hi[i] {
			panic(fmt.Sprintf("projection: inverted box [%g, %g] at %d", lo[i], hi[i], i))
		}
		dst[i] = mat.Clamp(v, lo[i], hi[i])
	}
	return dst
}

// BoxKnapsack writes into dst the projection of z onto
//
//	{ y : lo ≤ y ≤ hi,  Σ_i c_i y_i ≤ b },   c ≥ 0,
//
// and returns dst. dst may alias z. The solution has the KKT form
// y_i = clamp(z_i − θ c_i, lo_i, hi_i) for the smallest θ ≥ 0 that
// satisfies the knapsack row; θ is located by monotone bisection.
func BoxKnapsack(dst, z, lo, hi, c []float64, b float64) ([]float64, error) {
	if len(dst) != len(z) || len(z) != len(lo) || len(lo) != len(hi) || len(hi) != len(c) {
		panic(fmt.Sprintf("projection: BoxKnapsack length mismatch %d/%d/%d/%d/%d",
			len(dst), len(z), len(lo), len(hi), len(c)))
	}
	for i, ci := range c {
		if ci < 0 {
			panic(fmt.Sprintf("projection: negative knapsack weight c[%d] = %g", i, ci))
		}
		if lo[i] > hi[i] {
			panic(fmt.Sprintf("projection: inverted box [%g, %g] at %d", lo[i], hi[i], i))
		}
	}

	// Feasibility: the box's cheapest point must fit the knapsack.
	var minLoad float64
	for i, ci := range c {
		minLoad += ci * lo[i]
	}
	if minLoad > b+1e-9*(1+math.Abs(b)) {
		return nil, fmt.Errorf("%w: Σ c·lo = %g > b = %g", ErrInfeasible, minLoad, b)
	}

	// θ = 0 is the plain box projection; accept it when it already fits.
	if knapsackLoad(z, lo, hi, c, 0) <= b {
		return Box(dst, z, lo, hi), nil
	}

	// Bracket: at θmax every weighted coordinate is at its lower bound.
	var thetaMax float64
	for i, ci := range c {
		if ci == 0 {
			continue
		}
		if t := (z[i] - lo[i]) / ci; t > thetaMax {
			thetaMax = t
		}
	}
	loT, hiT := 0.0, thetaMax
	resTol := 1e-10 * (1 + math.Abs(b))
	for iter := 0; iter < bisectIters && hiT-loT > 1e-13*(1+hiT); iter++ {
		mid := 0.5 * (loT + hiT)
		l := knapsackLoad(z, lo, hi, c, mid)
		if l > b {
			loT = mid
		} else {
			hiT = mid
			if b-l <= resTol {
				break
			}
		}
	}
	theta := hiT // the feasible end of the bracket
	for i := range z {
		dst[i] = mat.Clamp(z[i]-theta*c[i], lo[i], hi[i])
	}
	return dst, nil
}

// knapsackLoad evaluates the knapsack row Σ_i c_i·clamp(z_i − θ c_i, lo_i,
// hi_i) — one bisection probe of BoxKnapsack. The slices are re-sliced to a
// common length so the compiler drops the per-element bounds checks: this
// probe runs up to bisectIters times per projection and dominates the P2
// solve profile.
func knapsackLoad(z, lo, hi, c []float64, theta float64) float64 {
	z = z[:len(c)]
	lo = lo[:len(c)]
	hi = hi[:len(c)]
	var s float64
	for i, ci := range c {
		if ci == 0 {
			continue
		}
		v := z[i] - theta*ci
		if v < lo[i] {
			v = lo[i]
		} else if v > hi[i] {
			v = hi[i]
		}
		s += ci * v
	}
	return s
}

// unitLoad is knapsackLoad for the unit box lo ≡ 0, hi ≡ 1.
func unitLoad(z, c []float64, theta float64) float64 {
	z = z[:len(c)]
	var s float64
	for i, ci := range c {
		if ci == 0 {
			continue
		}
		v := z[i] - theta*ci
		if v < 0 {
			v = 0
		} else if v > 1 {
			v = 1
		}
		s += ci * v
	}
	return s
}

// UnitBoxKnapsack writes into dst the projection of z onto the unit-box
// knapsack { y : 0 ≤ y ≤ 1, Σ_i c_i y_i ≤ b }, c ≥ 0 — the dual-iteration
// fast path of P2, where the box never tightens. It executes the same
// float64 operation sequence as BoxKnapsack with lo ≡ 0, hi ≡ 1 (so the
// two are interchangeable bit for bit), minus the two bound-vector loads
// per probed coordinate.
func UnitBoxKnapsack(dst, z, c []float64, b float64) ([]float64, error) {
	if len(dst) != len(z) || len(z) != len(c) {
		panic(fmt.Sprintf("projection: UnitBoxKnapsack length mismatch %d/%d/%d", len(dst), len(z), len(c)))
	}
	for i, ci := range c {
		if ci < 0 {
			panic(fmt.Sprintf("projection: negative knapsack weight c[%d] = %g", i, ci))
		}
	}
	// Feasibility: Σ c·lo = 0 must fit the knapsack (b may be negative).
	if 0 > b+1e-9*(1+math.Abs(b)) {
		return nil, fmt.Errorf("%w: Σ c·lo = %g > b = %g", ErrInfeasible, 0.0, b)
	}

	if unitLoad(z, c, 0) <= b {
		z = z[:len(dst)]
		for i, v := range z {
			dst[i] = mat.Clamp(v, 0, 1)
		}
		return dst, nil
	}

	var thetaMax float64
	for i, ci := range c {
		if ci == 0 {
			continue
		}
		if t := z[i] / ci; t > thetaMax {
			thetaMax = t
		}
	}
	loT, hiT := 0.0, thetaMax
	resTol := 1e-10 * (1 + math.Abs(b))
	for iter := 0; iter < bisectIters && hiT-loT > 1e-13*(1+hiT); iter++ {
		mid := 0.5 * (loT + hiT)
		l := unitLoad(z, c, mid)
		if l > b {
			loT = mid
		} else {
			hiT = mid
			if b-l <= resTol {
				break
			}
		}
	}
	theta := hiT // the feasible end of the bracket
	for i := range z {
		dst[i] = mat.Clamp(z[i]-theta*c[i], 0, 1)
	}
	return dst, nil
}

// Simplex writes into dst the projection of z onto the scaled simplex
// { y ≥ 0, Σ y = r } (r > 0) and returns dst. dst may alias z. It uses the
// classic sorted-threshold characterisation y_i = max(z_i − τ, 0).
func Simplex(dst, z []float64, r float64) []float64 {
	if len(dst) != len(z) {
		panic(fmt.Sprintf("projection: Simplex length mismatch %d/%d", len(dst), len(z)))
	}
	if r <= 0 {
		panic(fmt.Sprintf("projection: Simplex radius %g ≤ 0", r))
	}
	// Bisection on τ keeps the implementation allocation-light and mirrors
	// BoxKnapsack; Σ max(z−τ, 0) is strictly decreasing until it hits 0.
	sum := func(tau float64) float64 {
		var s float64
		for _, v := range z {
			if v > tau {
				s += v - tau
			}
		}
		return s
	}
	hiT := mat.NormInf(z) // Σ at this τ is 0 ≤ r
	loT := hiT - 1
	for sum(loT) < r {
		loT -= math.Max(1, math.Abs(loT))
	}
	for iter := 0; iter < bisectIters && hiT-loT > 1e-14*(1+math.Abs(hiT)); iter++ {
		mid := 0.5 * (loT + hiT)
		if sum(mid) > r {
			loT = mid
		} else {
			hiT = mid
		}
	}
	tau := 0.5 * (loT + hiT)
	for i, v := range z {
		dst[i] = math.Max(v-tau, 0)
	}
	// Rescale the tiny residual mismatch onto the support for an exact sum.
	if s := mat.Sum(dst); s > 0 {
		mat.Scale(r/s, dst)
	}
	return dst
}
