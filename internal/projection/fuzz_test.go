package projection

import (
	"math"
	"math/rand/v2"
	"testing"

	"edgecache/internal/mat"
)

// FuzzBoxKnapsack derives random projection problems from the fuzz seed
// and checks the projection invariants: output in the box, knapsack row
// satisfied, idempotent, and never NaN. Run with
// `go test -fuzz FuzzBoxKnapsack ./internal/projection`.
func FuzzBoxKnapsack(f *testing.F) {
	f.Add(uint64(1), uint64(2))
	f.Add(uint64(42), uint64(7))
	f.Add(^uint64(0), uint64(0))
	f.Fuzz(func(t *testing.T, s1, s2 uint64) {
		rng := rand.New(rand.NewPCG(s1, s2))
		n := 1 + rng.IntN(12)
		z := make([]float64, n)
		lo := make([]float64, n)
		hi := make([]float64, n)
		c := make([]float64, n)
		for i := range z {
			z[i] = rng.NormFloat64() * 3
			lo[i] = rng.Float64() * 0.3
			hi[i] = lo[i] + rng.Float64()*2
			if rng.Float64() < 0.25 {
				c[i] = 0
			} else {
				c[i] = rng.Float64() * 3
			}
		}
		b := rng.Float64() * 4

		y, err := BoxKnapsack(make([]float64, n), z, lo, hi, c, b)
		if err != nil {
			// Infeasibility is the only legal failure and must be real.
			var minLoad float64
			for i := range c {
				minLoad += c[i] * lo[i]
			}
			if minLoad <= b-1e-9 {
				t.Fatalf("spurious infeasibility: Σc·lo = %g ≤ b = %g", minLoad, b)
			}
			return
		}
		var load float64
		for i := range y {
			if math.IsNaN(y[i]) {
				t.Fatalf("NaN output at %d", i)
			}
			if y[i] < lo[i]-1e-9 || y[i] > hi[i]+1e-9 {
				t.Fatalf("box violated at %d: %g ∉ [%g, %g]", i, y[i], lo[i], hi[i])
			}
			load += c[i] * y[i]
		}
		if load > b+1e-6*(1+b) {
			t.Fatalf("knapsack violated: %g > %g", load, b)
		}
		y2, err := BoxKnapsack(make([]float64, n), y, lo, hi, c, b)
		if err != nil {
			t.Fatalf("projection of projection failed: %v", err)
		}
		if mat.Dist2(y, y2) > 1e-6*(1+mat.Norm2(y)) {
			t.Fatalf("not idempotent: moved %g", mat.Dist2(y, y2))
		}
	})
}

// FuzzSimplexProjection checks the simplex projection invariants.
func FuzzSimplexProjection(f *testing.F) {
	f.Add(uint64(3), 1.0)
	f.Add(uint64(9), 2.5)
	f.Fuzz(func(t *testing.T, seed uint64, radius float64) {
		if math.IsNaN(radius) || math.IsInf(radius, 0) || radius <= 0 || radius > 1e6 {
			t.Skip()
		}
		rng := rand.New(rand.NewPCG(seed, 1))
		n := 1 + rng.IntN(12)
		z := make([]float64, n)
		for i := range z {
			z[i] = rng.NormFloat64() * 5
		}
		y := Simplex(make([]float64, n), z, radius)
		var sum float64
		for _, v := range y {
			if v < -1e-12 || math.IsNaN(v) {
				t.Fatalf("invalid coordinate %g", v)
			}
			sum += v
		}
		if math.Abs(sum-radius) > 1e-6*(1+radius) {
			t.Fatalf("sum %g != radius %g", sum, radius)
		}
	})
}
