package stats

import (
	"math"
	"strings"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 || s.Median != 2.5 {
		t.Fatalf("Summary = %+v", s)
	}
	want := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 3)
	if math.Abs(s.Std-want) > 1e-12 {
		t.Fatalf("Std = %g, want %g", s.Std, want)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Std != 0 || s.Median != 7 || s.Mean != 7 {
		t.Fatalf("Summary = %+v", s)
	}
}

func TestSummarizeOddMedian(t *testing.T) {
	if s := Summarize([]float64{9, 1, 5}); s.Median != 5 {
		t.Fatalf("Median = %g, want 5", s.Median)
	}
}

func TestSummarizePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty sample")
		}
	}()
	Summarize(nil)
}

func TestSummaryString(t *testing.T) {
	if got := Summarize([]float64{1, 1}).String(); !strings.Contains(got, "n=2") {
		t.Fatalf("String = %q", got)
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(6, 3); got != 2 {
		t.Fatalf("Ratio = %g, want 2", got)
	}
	if !math.IsNaN(Ratio(1, 0)) {
		t.Fatal("Ratio(1, 0) should be NaN")
	}
}

func TestReduction(t *testing.T) {
	if got := Reduction(73, 100); math.Abs(got-0.27) > 1e-12 {
		t.Fatalf("Reduction = %g, want 0.27", got)
	}
	if !math.IsNaN(Reduction(1, 0)) {
		t.Fatal("Reduction(1, 0) should be NaN")
	}
}
