// Package stats provides the summary statistics used when experiments
// aggregate repeated seeded runs.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample.
type Summary struct {
	N         int
	Mean, Std float64
	Min, Max  float64
	Median    float64
}

// Summarize computes a Summary of xs; it panics on an empty sample, which
// always indicates a harness bug.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: empty sample")
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	for _, v := range xs {
		s.Mean += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean /= float64(len(xs))
	var ssq float64
	for _, v := range xs {
		d := v - s.Mean
		ssq += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(ssq / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = 0.5 * (sorted[mid-1] + sorted[mid])
	}
	return s
}

// String renders "mean ± std (n)" for tables.
func (s Summary) String() string {
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", s.Mean, s.Std, s.N)
}

// Ratio returns a/b, guarding the b = 0 case with NaN rather than ±Inf so
// downstream formatting flags it clearly.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return math.NaN()
	}
	return a / b
}

// Reduction returns the relative cost reduction of value against base,
// e.g. Reduction(73, 100) = 0.27 — the quantity behind the paper's "by as
// much as 27%" headline.
func Reduction(value, base float64) float64 {
	if base == 0 {
		return math.NaN()
	}
	return (base - value) / base
}
