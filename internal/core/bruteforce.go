package core

import (
	"fmt"
	"math"

	"edgecache/internal/convex"
	"edgecache/internal/loadbalance"
	"edgecache/internal/model"
)

// maxBruteForceK bounds the catalogue size accepted by BruteForce: the DP
// state space is every ≤C-subset of K items, which grows as 2^K.
const maxBruteForceK = 14

// BruteForce computes the exact offline optimum of eq. (9) by dynamic
// programming over cache-placement states, and serves as the test oracle
// for Algorithm 1 and the online controllers.
//
// It exploits two structural facts: the objective and constraints separate
// across SBSs (each term of f, g and h involves one SBS only), and the
// only temporal coupling is the replacement cost h between consecutive
// placements. Per SBS the DP state is the set of cached items; the
// per-state slot cost is the exact optimal load split from package
// loadbalance. Exponential in K — intended for tiny instances.
func BruteForce(in *model.Instance, opts convex.Options) (model.Trajectory, model.CostBreakdown, error) {
	if err := in.Validate(); err != nil {
		return nil, model.CostBreakdown{}, fmt.Errorf("core: %w", err)
	}
	if in.K > maxBruteForceK {
		return nil, model.CostBreakdown{}, fmt.Errorf("core: brute force limited to K ≤ %d, got %d", maxBruteForceK, in.K)
	}

	traj := model.NewTrajectory(in)
	initial := in.InitialPlan()
	for n := 0; n < in.N; n++ {
		if err := bruteForceSBS(in, n, initial[n], traj, opts); err != nil {
			return nil, model.CostBreakdown{}, err
		}
	}
	return traj, in.TotalCost(traj), nil
}

// bruteForceSBS fills traj's slots for SBS n with its optimal trajectory.
func bruteForceSBS(in *model.Instance, n int, initial []float64, traj model.Trajectory, opts convex.Options) error {
	states := enumerateStates(in.K, in.CacheCap[n])
	initMask := uint(0)
	for k, v := range initial {
		if v >= 0.5 {
			initMask |= 1 << k
		}
	}

	// opCost[s] for the current slot and the memoised optimal load splits.
	type slotSolution struct {
		cost float64
		y    [][]float64 // per class
	}
	solveState := func(t int, mask uint) (slotSolution, error) {
		upper := make([]float64, in.Classes[n]*in.K)
		for m := 0; m < in.Classes[n]; m++ {
			for k := 0; k < in.K; k++ {
				if mask&(1<<k) != 0 {
					upper[m*in.K+k] = 1
				}
			}
		}
		sp := loadbalance.ForInstance(in, t, n, nil, upper)
		y, _, err := sp.Solve(nil, opts)
		if err != nil {
			return slotSolution{}, fmt.Errorf("core: brute force slot %d state %b: %w", t, mask, err)
		}
		ym := make([][]float64, in.Classes[n])
		for m := range ym {
			ym[m] = y[m*in.K : (m+1)*in.K]
		}
		f, g := sp.OperatingCosts(y)
		return slotSolution{cost: f + g, y: ym}, nil
	}

	switchCost := func(prev, cur uint) float64 {
		inserted := bitsCount(cur &^ prev)
		return in.Beta[n] * float64(inserted)
	}

	// DP forward: best[s] = min cost of reaching state s at slot t.
	best := make([]float64, len(states))
	choice := make([][]int, in.T) // argmin predecessor per (t, state)
	sols := make([][]slotSolution, in.T)
	for t := 0; t < in.T; t++ {
		choice[t] = make([]int, len(states))
		sols[t] = make([]slotSolution, len(states))
		next := make([]float64, len(states))
		for si, s := range states {
			sol, err := solveState(t, s)
			if err != nil {
				return err
			}
			sols[t][si] = sol
			bestPrev := math.Inf(1)
			bestIdx := -1
			if t == 0 {
				bestPrev = switchCost(initMask, s)
			} else {
				for pi, p := range states {
					if c := best[pi] + switchCost(p, s); c < bestPrev {
						bestPrev = c
						bestIdx = pi
					}
				}
			}
			choice[t][si] = bestIdx
			next[si] = bestPrev + sol.cost
		}
		best = next
	}

	// Backtrack.
	endIdx := 0
	for si := range states {
		if best[si] < best[endIdx] {
			endIdx = si
		}
	}
	for t := in.T - 1; t >= 0; t-- {
		mask := states[endIdx]
		for k := 0; k < in.K; k++ {
			if mask&(1<<k) != 0 {
				traj[t].X[n][k] = 1
			}
		}
		for m := 0; m < in.Classes[n]; m++ {
			copy(traj[t].Y[n][m], sols[t][endIdx].y[m])
		}
		endIdx = choice[t][endIdx]
	}
	return nil
}

// enumerateStates lists all item subsets of size ≤ cap as bitmasks.
func enumerateStates(k, cacheCap int) []uint {
	var states []uint
	for mask := uint(0); mask < 1<<k; mask++ {
		if bitsCount(mask) <= cacheCap {
			states = append(states, mask)
		}
	}
	return states
}

func bitsCount(m uint) int {
	c := 0
	for ; m != 0; m &= m - 1 {
		c++
	}
	return c
}
