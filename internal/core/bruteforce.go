package core

import (
	"context"
	"fmt"

	"edgecache/internal/convex"
	"edgecache/internal/model"
	"edgecache/internal/oracle"
)

// BruteForce computes the exact offline optimum of eq. (9) and serves as
// the test oracle for Algorithm 1 and the online controllers. It is a
// thin wrapper over oracle.Solve (see internal/oracle for the DP
// formulation and its size limits); the differential harness calls the
// oracle directly, this entry point remains for core's own tests and
// callers that predate the oracle package.
func BruteForce(in *model.Instance, opts convex.Options) (model.Trajectory, model.CostBreakdown, error) {
	traj, br, err := oracle.Solve(context.Background(), in, opts)
	if err != nil {
		return nil, model.CostBreakdown{}, fmt.Errorf("core: %w", err)
	}
	return traj, br, nil
}
