package core

import (
	"context"

	"edgecache/internal/caching"
	"edgecache/internal/loadbalance"
	"edgecache/internal/model"
)

// Workspace bundles the reusable solver state of one primal-dual run: the
// P1 flow networks, the P2 per-(t, n) subproblem state with its FISTA and
// projection scratch, and the dual-reward buffer. Solve binds it to the
// instance on entry, so one workspace amortises all per-instance
// precomputation and steady-state allocation across the ~MaxIter dual
// iterations — and, when carried across calls (Options.Workspace), across
// the overlapping window solves of a receding-horizon controller.
//
// A workspace serves one Solve at a time; concurrent Solves need separate
// workspaces.
type Workspace struct {
	p1      caching.Workspace
	p2      loadbalance.Workspace
	rewards [][][]float64 // ρ^t_{n,k} buffer, [t][n][k]
	muDirty [][]bool      // per-(t, n): μ row changed since its last consumption
}

// NewWorkspace returns an empty workspace, ready to be passed via
// Options.Workspace.
func NewWorkspace() *Workspace { return &Workspace{} }

// bind sizes the workspace for an instance, reusing buffers whose capacity
// suffices. advance > 0 declares the instance to be the previous bind's
// window shifted forward that many slots (Options.Advance): the P2 bind
// then rotates its per-slot state and carries iterates for the overlap.
func (ws *Workspace) bind(in *model.Instance, advance int) {
	// The P1 networks prune to each SBS's candidate set — items with
	// demand somewhere in the window or initially cached. Dual rewards
	// vanish outside that set (the multiplier of a never-requested,
	// never-cached coordinate stays at zero), so pruning is exact; see
	// caching.BindPruned for the argument and the β = 0 tie caveat. On
	// dense instances every candidate row spans the catalogue and the
	// pruned bind degenerates to the plain one.
	cands := make([][]int, in.N)
	pruned := false
	for n := 0; n < in.N; n++ {
		if c := in.Candidates(n); len(c) < in.K {
			cands[n] = c
			pruned = true
		}
	}
	if !pruned {
		cands = nil
	}
	ws.p1.BindPruned(in, cands)
	if advance > 0 {
		ws.p2.BindAdvance(in, advance, true)
	} else {
		ws.p2.Bind(in)
	}
	if cap(ws.rewards) < in.T {
		ws.rewards = make([][][]float64, in.T)
	} else {
		ws.rewards = ws.rewards[:in.T]
	}
	if cap(ws.muDirty) < in.T {
		ws.muDirty = make([][]bool, in.T)
	} else {
		ws.muDirty = ws.muDirty[:in.T]
	}
	for t := range ws.rewards {
		if cap(ws.rewards[t]) < in.N {
			ws.rewards[t] = make([][]float64, in.N)
		} else {
			ws.rewards[t] = ws.rewards[t][:in.N]
		}
		if cap(ws.muDirty[t]) < in.N {
			ws.muDirty[t] = make([]bool, in.N)
		} else {
			ws.muDirty[t] = ws.muDirty[t][:in.N]
		}
		for n := range ws.rewards[t] {
			if cap(ws.rewards[t][n]) < in.K {
				ws.rewards[t][n] = make([]float64, in.K)
			} else {
				ws.rewards[t][n] = ws.rewards[t][n][:in.K]
			}
			// Everything is dirty at bind time: the first dual iteration of
			// a fresh solve must recompute and re-solve every row.
			ws.muDirty[t][n] = true
		}
	}
}

// Invalidate discards the workspace's bindings so the next Solve rebinds
// everything from scratch: no advance rotation, no reuse of possibly
// half-written per-slot state. The online layer calls it when a panic
// escaped a solve — the bind may have been interrupted midway.
func (ws *Workspace) Invalidate() {
	ws.p2.Invalidate()
}

// ExportP2Iterates deep-copies the P2 dual load iterates and their
// compact-path invariants — the cross-window warm-start state of the
// incremental path (Options.Advance), which is the only solver state
// inside the workspace that affects results across Solve calls. Valid
// between a Solve and the next bind.
func (ws *Workspace) ExportP2Iterates() ([][]float64, []bool) {
	return ws.p2.ExportIterates()
}

// RestoreP2 rebinds the P2 state to win — the window instance of the
// workspace's last bound solve — and loads previously exported iterates,
// reconstructing the warm-start state an uninterrupted run would carry
// into its next BindAdvance. The P1 networks and recovery memoisation
// stay cold: both are bit-exact result-neutral (the next Solve rebinds P1
// and recomputes recoveries to identical values), so a restored
// workspace's subsequent solves reproduce the uninterrupted run exactly.
func (ws *Workspace) RestoreP2(win *model.Instance, y [][]float64, compactOK []bool) error {
	ws.p2.Bind(win)
	return ws.p2.ImportIterates(y, compactOK)
}

// linearizedPlacements is LinearizedPlacements on workspace state: the
// same reward arithmetic written into the reused buffer, solved on the
// reused P1 networks. The returned plans alias the workspace.
func (ws *Workspace) linearizedPlacements(ctx context.Context, in *model.Instance) ([]model.CachePlan, error) {
	for t := 0; t < in.T; t++ {
		for n := 0; n < in.N; n++ {
			omega := in.OmegaBS[n]
			var a float64
			in.Demand.ForEachActive(t, n, func(m, k int, rate float64) {
				a += omega[m] * rate
			})
			r := ws.rewards[t][n]
			for k := range r {
				r[k] = 0
			}
			in.Demand.ForEachActive(t, n, func(m, k int, rate float64) {
				r[k] += 2 * a * omega[m] * rate
			})
		}
	}
	plans, _, err := ws.p1.SolveAll(ctx, ws.rewards)
	return plans, err
}
