package core

import (
	"context"
	"fmt"
	"sync"

	"edgecache/internal/model"
	"edgecache/internal/parallel"
)

// ShardSolution is the outcome of one per-SBS shard of SolveSharded. The
// shard was solved on the SBS's compact sub-instance (model.CompactSBS),
// so every buffer it carries scales with the SBS's candidate set — the
// items it ever sees demand for, plus its initial cache — rather than the
// global catalogue size K. Placements and Loads store the trajectory
// sparsely for the same reason: at web scale (K ~ 10⁶) a dense [T][M][K]
// plane per SBS would dwarf the problem being solved.
type ShardSolution struct {
	// SBS is the global SBS index n this shard solved.
	SBS int
	// Candidates are the sorted global content ids of the shard's compact
	// catalogue; compact item ci stands for Candidates[ci].
	Candidates []int
	// LowerBound, Cost, Gap, Iterations and Converged mirror the Result
	// fields of the shard's own Algorithm 1 run.
	LowerBound float64
	Cost       model.CostBreakdown
	Gap        float64
	Iterations int
	Converged  bool
	// Placements[t] lists the global content ids cached at slot t,
	// ascending.
	Placements [][]int
	// Loads[t][i][m] is the load fraction y^t_{m,k} of class m on cached
	// item k = Placements[t][i]. Items outside Placements[t] carry no
	// load: the recovered feasible split obeys y ≤ x exactly, so the
	// sparse form is lossless.
	Loads [][][]float64
}

// ShardedResult aggregates the per-SBS shards of SolveSharded. LowerBound
// and Cost are sums (the objective and the dual bound separate across
// SBSs), Iterations is the maximum across shards (the distributed
// wall-clock), Converged is the conjunction, and Gap is recomputed from
// the aggregate bounds.
type ShardedResult struct {
	Shards     []ShardSolution // index n
	LowerBound float64
	Cost       model.CostBreakdown
	Gap        float64
	Iterations int
	Converged  bool
}

// Densify expands the sharded trajectory into a full dense trajectory of
// the original instance. This is O(T·N·(M·K)) memory — fine for test and
// report sizes, deliberately avoided on web-scale instances, where the
// sparse ShardSolution form is the deliverable.
func (sr *ShardedResult) Densify(in *model.Instance) model.Trajectory {
	traj := model.NewTrajectory(in)
	for _, sh := range sr.Shards {
		n := sh.SBS
		for t := 0; t < in.T; t++ {
			for i, k := range sh.Placements[t] {
				traj[t].X[n][k] = 1
				for m := 0; m < in.Classes[n]; m++ {
					traj[t].Y[n][m][k] = sh.Loads[t][i][m]
				}
			}
		}
	}
	return traj
}

// SolveSharded solves the joint problem one SBS shard at a time: each SBS
// becomes an independent compact sub-instance over its own candidate set
// (model.Instance.CompactSBS) and runs Algorithm 1 on it, with the shards
// scheduled across the shared bounded worker pool. The objective and every
// constraint separate across SBSs, so the concatenation of shard optima is
// the joint optimum — the distributed deployment the paper names as
// future work (§VII) — while the compact catalogue keeps per-shard memory
// proportional to demand, not to K. Solver workspaces are pooled and
// rebound across shards, so steady-state allocation is bounded by the
// worker count, not the SBS count.
//
// Options.Workspace is ignored (shards run concurrently and each needs
// its own), and Options.InitialMu must be nil: global multiplier planes
// are shaped [T][N][M·K] and do not map onto compact shards. Every shard
// starts its duals from zero, exactly like a fresh Solve.
func SolveSharded(ctx context.Context, in *model.Instance, opts Options) (*ShardedResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if opts.InitialMu != nil {
		return nil, fmt.Errorf("core: sharded solve cannot warm-start from global multipliers (InitialMu must be nil)")
	}
	opts.Workspace = nil

	// Worker-bound pool of solver workspaces: at most one live workspace
	// per concurrently running shard, each sized to the largest shard it
	// has served, all released to the GC when the solve returns.
	var pool sync.Pool
	shards := make([]ShardSolution, in.N)
	err := parallel.For(ctx, in.N, 0, func(n int) error {
		sub, items, err := in.CompactSBS(n)
		if err != nil {
			return err
		}
		shardOpts := opts
		if ws, ok := pool.Get().(*Workspace); ok {
			shardOpts.Workspace = ws
		} else {
			shardOpts.Workspace = NewWorkspace()
		}
		res, err := Solve(ctx, sub, shardOpts)
		pool.Put(shardOpts.Workspace)
		if err != nil {
			return fmt.Errorf("distributed SBS %d: %w", n, err)
		}

		sh := ShardSolution{
			SBS:        n,
			Candidates: items,
			LowerBound: res.LowerBound,
			Cost:       res.Cost,
			Gap:        res.Gap,
			Iterations: res.Iterations,
			Converged:  res.Converged,
			Placements: make([][]int, in.T),
			Loads:      make([][][]float64, in.T),
		}
		m := in.Classes[n]
		for t := 0; t < in.T; t++ {
			xt := res.Trajectory[t].X[0]
			yt := res.Trajectory[t].Y[0]
			for ci, v := range xt {
				if v < 0.5 {
					continue
				}
				sh.Placements[t] = append(sh.Placements[t], items[ci])
				load := make([]float64, m)
				for mm := 0; mm < m; mm++ {
					load[mm] = yt[mm][ci]
				}
				sh.Loads[t] = append(sh.Loads[t], load)
			}
		}
		shards[n] = sh
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	agg := &ShardedResult{Shards: shards, Converged: true}
	for n := range shards {
		sh := &shards[n]
		agg.LowerBound += sh.LowerBound
		agg.Cost.Total += sh.Cost.Total
		agg.Cost.BS += sh.Cost.BS
		agg.Cost.SBS += sh.Cost.SBS
		agg.Cost.Replacement += sh.Cost.Replacement
		agg.Cost.Replacements += sh.Cost.Replacements
		if sh.Iterations > agg.Iterations {
			agg.Iterations = sh.Iterations
		}
		agg.Converged = agg.Converged && sh.Converged
	}
	if agg.Cost.Total != 0 {
		agg.Gap = (agg.Cost.Total - agg.LowerBound) / agg.Cost.Total
		if agg.Gap < 0 {
			agg.Gap = 0
		}
	}
	return agg, nil
}
