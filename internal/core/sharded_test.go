package core

import (
	"context"
	"math"
	"reflect"
	"testing"

	"edgecache/internal/model"
	"edgecache/internal/workload"
)

func sparseMultiInstance(t *testing.T) *model.Instance {
	t.Helper()
	cfg := workload.PaperDefault()
	cfg.N = 3
	cfg.T = 5
	cfg.K = 24
	cfg.ClassesPerSBS = 3
	cfg.CacheCap = 2
	cfg.Bandwidth = 5
	cfg.Beta = 8
	in, err := workload.BuildInstanceWith(cfg, workload.WithSparse(6))
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestSolveShardedMatchesPerSBSSolves(t *testing.T) {
	in := sparseMultiInstance(t)
	opts := Options{MaxIter: 30}

	sharded, err := SolveSharded(context.Background(), in, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(sharded.Shards) != in.N {
		t.Fatalf("%d shards for %d SBSs", len(sharded.Shards), in.N)
	}

	var wantCost, wantLB float64
	for n := 0; n < in.N; n++ {
		sub, err := in.PerSBS(n)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Solve(context.Background(), sub, opts)
		if err != nil {
			t.Fatal(err)
		}
		wantCost += res.Cost.Total
		wantLB += res.LowerBound
	}
	// The compact shard is the same optimisation problem as the full
	// per-SBS sub-instance (dropped items never carry demand or cache
	// bits), so both runs land on the same costs up to solver tie-breaks.
	if rel := math.Abs(sharded.Cost.Total-wantCost) / math.Max(wantCost, 1); rel > 0.01 {
		t.Fatalf("sharded cost %g vs per-SBS %g (rel %g)", sharded.Cost.Total, wantCost, rel)
	}
	if rel := math.Abs(sharded.LowerBound-wantLB) / math.Max(math.Abs(wantLB), 1); rel > 0.01 {
		t.Fatalf("sharded LB %g vs per-SBS %g (rel %g)", sharded.LowerBound, wantLB, rel)
	}
	if sharded.LowerBound > sharded.Cost.Total+1e-6 {
		t.Fatalf("LB %g exceeds cost %g", sharded.LowerBound, sharded.Cost.Total)
	}

	// The densified trajectory must be feasible and integral, reproduce
	// the reported cost exactly, and place items only within each shard's
	// candidate set.
	traj := sharded.Densify(in)
	if err := in.CheckTrajectory(traj, 1e-6); err != nil {
		t.Fatalf("densified trajectory infeasible: %v", err)
	}
	br := in.TotalCost(traj)
	if math.Abs(br.Total-sharded.Cost.Total) > 1e-6*math.Max(br.Total, 1) {
		t.Fatalf("densified cost %g vs reported %g", br.Total, sharded.Cost.Total)
	}
	for _, sh := range sharded.Shards {
		cands := map[int]bool{}
		for _, k := range sh.Candidates {
			cands[k] = true
		}
		for tt := range sh.Placements {
			if len(sh.Placements[tt]) != len(sh.Loads[tt]) {
				t.Fatalf("shard %d slot %d: %d placements, %d load rows",
					sh.SBS, tt, len(sh.Placements[tt]), len(sh.Loads[tt]))
			}
			for _, k := range sh.Placements[tt] {
				if !cands[k] {
					t.Fatalf("shard %d cached non-candidate item %d", sh.SBS, k)
				}
			}
		}
	}
}

func TestSolveShardedDensifyMatchesDistributed(t *testing.T) {
	in := sparseMultiInstance(t)
	opts := Options{MaxIter: 20}
	sharded, err := SolveSharded(context.Background(), in, opts)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := SolveDistributed(context.Background(), in, opts)
	if err != nil {
		t.Fatal(err)
	}
	// SolveDistributed is a thin densifying wrapper over SolveSharded;
	// with identical options the two runs are the same computation.
	if !reflect.DeepEqual(dist.Trajectory, sharded.Densify(in)) {
		t.Fatal("SolveDistributed trajectory diverges from Densify of SolveSharded")
	}
	if dist.Cost != sharded.Cost || dist.LowerBound != sharded.LowerBound {
		t.Fatalf("wrapper bounds diverge: %+v vs %+v", dist.Cost, sharded.Cost)
	}
}

func TestSolveShardedRejectsWarmStart(t *testing.T) {
	in := sparseMultiInstance(t)
	mu := make([][][]float64, in.T)
	if _, err := SolveSharded(context.Background(), in, Options{InitialMu: mu}); err == nil {
		t.Fatal("accepted a global warm start")
	}
}
