package core

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"

	"edgecache/internal/obs"
)

// cancelOnSink cancels a context as soon as an event of the given type is
// emitted — the deterministic way to interrupt a solve mid-flight.
type cancelOnSink struct {
	on     string
	cancel context.CancelFunc

	mu     sync.Mutex
	events []obs.Event
}

func (s *cancelOnSink) Emit(e obs.Event) {
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
	if e.Type == s.on {
		s.cancel()
	}
}

func (s *cancelOnSink) count(typ string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, e := range s.events {
		if e.Type == typ {
			n++
		}
	}
	return n
}

func TestSolveCancelledBeforeStart(t *testing.T) {
	in := tinyInstance(t, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Solve(ctx, in, Options{MaxIter: 30})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("got partial result %+v before any iteration ran", res)
	}
}

// TestSolveCancelMidIteration interrupts the dual ascent after exactly one
// iteration (via a telemetry sink that cancels on the first
// solver_iteration event) and checks both halves of the contract: the
// error wraps context.Canceled, and the partial result carries the
// feasible best-so-far trajectory of the completed iteration.
func TestSolveCancelMidIteration(t *testing.T) {
	in := tinyInstance(t, nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sink := &cancelOnSink{on: "solver_iteration", cancel: cancel}
	res, err := Solve(ctx, in, Options{MaxIter: 50, StallIter: -1, Telemetry: obs.New(sink, obs.NewRegistry())})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
	if got := sink.count("solver_iteration"); got != 1 {
		t.Fatalf("solver ran %d iterations after cancellation, want 1", got)
	}
	if res == nil {
		t.Fatal("no partial result despite a completed iteration")
	}
	if err := in.CheckTrajectory(res.Trajectory, 1e-6); err != nil {
		t.Fatalf("partial trajectory infeasible: %v", err)
	}
	if math.IsInf(res.Gap, 1) {
		t.Fatalf("gap still +Inf after a completed iteration: %+v", res)
	}
}

func TestSolveDistributedCancelled(t *testing.T) {
	in := tinyInstance(t, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SolveDistributed(ctx, in, Options{MaxIter: 10}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
}
