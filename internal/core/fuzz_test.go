package core

import (
	"context"
	"math"
	"math/rand/v2"
	"testing"

	"edgecache/internal/audit"
	"edgecache/internal/convex"
	"edgecache/internal/oracle"
	"edgecache/internal/workload"
)

// FuzzDifferentialOffline cross-checks the primal-dual solver against the
// exact oracle on randomly generated tiny instances: the solver's upper
// bound may not beat the true optimum, its dual lower bound may not
// exceed it (together these pin the reported duality gap around the
// optimum), and the committed trajectory must pass the differential
// auditor — feasibility, P1 integrality and independent cost
// recomputation. Run with
// `go test -fuzz FuzzDifferentialOffline ./internal/core`.
func FuzzDifferentialOffline(f *testing.F) {
	f.Add(uint64(1), uint64(2))
	f.Add(uint64(3), uint64(5))
	f.Add(uint64(7), uint64(11))
	f.Add(^uint64(0), uint64(13))
	f.Fuzz(func(t *testing.T, s1, s2 uint64) {
		rng := rand.New(rand.NewPCG(s1, s2))
		cfg := workload.PaperDefault()
		cfg.N = 1 + rng.IntN(2)
		cfg.T = 2 + rng.IntN(3)
		cfg.K = 3 + rng.IntN(3)
		cfg.ClassesPerSBS = 2 + rng.IntN(2)
		cfg.CacheCap = 1 + rng.IntN(2)
		cfg.Bandwidth = 2 + rng.Float64()*6
		cfg.Beta = rng.Float64() * 25
		cfg.Workload.Jitter = rng.Float64() * 0.5
		cfg.Seed = 1 + s1 ^ s2
		in, err := workload.BuildInstance(cfg)
		if err != nil {
			t.Fatalf("instance generation failed: %v", err)
		}

		_, want, err := oracle.Solve(context.Background(), in, convex.Options{})
		if err != nil {
			t.Fatalf("oracle: %v", err)
		}
		got, err := Solve(context.Background(), in, Options{MaxIter: 80})
		if err != nil {
			t.Fatalf("primal-dual: %v", err)
		}

		// The oracle is exact over placements but its per-state load
		// splits come from the same first-order convex machinery the
		// solver uses, so both sides carry subsolver tolerance; 1e-5
		// relative covers it at the oracle's tightened defaults.
		tol := 1e-5 * (1 + math.Abs(want.Total))
		if got.Cost.Total < want.Total-tol {
			t.Fatalf("primal-dual %g beats exact optimum %g — oracle or solver bug", got.Cost.Total, want.Total)
		}
		if got.LowerBound > want.Total+tol {
			t.Fatalf("dual bound %g exceeds exact optimum %g — invalid certificate", got.LowerBound, want.Total)
		}
		if rep := audit.Trajectory(in, got.Trajectory, &got.Cost, audit.Options{}); !rep.OK() {
			t.Fatalf("solver trajectory failed audit: %v", rep.Err())
		}
	})
}
