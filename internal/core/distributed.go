package core

import (
	"context"
	"fmt"

	"edgecache/internal/model"
)

// SolveDistributed solves the joint problem by running Algorithm 1
// independently per SBS and concatenating the solutions — the distributed
// deployment the paper names as future work (§VII). It is exact relative
// to Solve because the objective and every constraint separate across
// SBSs (see model.Instance.PerSBS); no coordination rounds are required,
// so each SBS's computing unit can run its own controller with only its
// local demand.
//
// The heavy lifting is SolveSharded: each SBS runs on its compact
// candidate-set sub-instance over the bounded worker pool, and this
// wrapper densifies the sharded outcome into a full Result for callers
// that want the joint trajectory. Options.InitialMu is ignored for N > 1
// (global multiplier planes do not map onto the per-SBS shards; every
// shard starts its duals from zero) and honoured on the N = 1 fast path,
// which is a plain Solve.
//
// The returned Result aggregates the per-SBS runs: LowerBound and Cost
// are sums, Iterations is the maximum across SBSs (the distributed
// wall-clock), and Gap is recomputed from the aggregates. Result.Mu is
// nil: compact per-shard multipliers have no global dense form worth
// materialising.
func SolveDistributed(ctx context.Context, in *model.Instance, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if in.N == 1 {
		return Solve(ctx, in, opts)
	}
	opts.InitialMu = nil

	sharded, err := SolveSharded(ctx, in, opts)
	if err != nil {
		return nil, err
	}
	merged := &Result{
		Trajectory: sharded.Densify(in),
		Cost:       sharded.Cost,
		LowerBound: sharded.LowerBound,
		Gap:        sharded.Gap,
		Iterations: sharded.Iterations,
		Converged:  sharded.Converged,
	}
	return merged, nil
}
