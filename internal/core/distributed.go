package core

import (
	"context"
	"fmt"
	"sync"

	"edgecache/internal/model"
)

// SolveDistributed solves the joint problem by running Algorithm 1
// independently per SBS, in parallel, and concatenating the solutions —
// the distributed deployment the paper names as future work (§VII). It is
// exact relative to Solve because the objective and every constraint
// separate across SBSs (see model.Instance.PerSBS); no coordination
// rounds are required, so each SBS's computing unit can run its own
// controller with only its local demand.
//
// The returned Result aggregates the per-SBS runs: LowerBound and Cost
// are sums, Iterations is the maximum across SBSs (the distributed
// wall-clock), and Gap is recomputed from the aggregates.
func SolveDistributed(ctx context.Context, in *model.Instance, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if in.N == 1 {
		return Solve(ctx, in, opts)
	}
	// Per-SBS solves run concurrently; a caller-supplied workspace cannot
	// be shared between them, so each solve allocates its own.
	opts.Workspace = nil

	type outcome struct {
		res *Result
		err error
	}
	outcomes := make([]outcome, in.N)
	var wg sync.WaitGroup
	for n := 0; n < in.N; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			sub, err := in.PerSBS(n)
			if err != nil {
				outcomes[n] = outcome{err: err}
				return
			}
			res, err := Solve(ctx, sub, opts)
			outcomes[n] = outcome{res: res, err: err}
		}(n)
	}
	wg.Wait()
	for n, o := range outcomes {
		if o.err != nil {
			return nil, fmt.Errorf("core: distributed SBS %d: %w", n, o.err)
		}
	}

	merged := &Result{
		Trajectory: model.NewTrajectory(in),
		Converged:  true,
	}
	for n, o := range outcomes {
		r := o.res
		merged.LowerBound += r.LowerBound
		merged.Cost.Total += r.Cost.Total
		merged.Cost.BS += r.Cost.BS
		merged.Cost.SBS += r.Cost.SBS
		merged.Cost.Replacement += r.Cost.Replacement
		merged.Cost.Replacements += r.Cost.Replacements
		if r.Iterations > merged.Iterations {
			merged.Iterations = r.Iterations
		}
		merged.Converged = merged.Converged && r.Converged
		for t := 0; t < in.T; t++ {
			copy(merged.Trajectory[t].X[n], r.Trajectory[t].X[0])
			for m := 0; m < in.Classes[n]; m++ {
				copy(merged.Trajectory[t].Y[n][m], r.Trajectory[t].Y[0][m])
			}
		}
	}
	if merged.Cost.Total != 0 {
		merged.Gap = (merged.Cost.Total - merged.LowerBound) / merged.Cost.Total
		if merged.Gap < 0 {
			merged.Gap = 0
		}
	}
	return merged, nil
}
