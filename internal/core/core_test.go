package core

import (
	"context"
	"math"
	"testing"

	"edgecache/internal/convex"
	"edgecache/internal/model"
	"edgecache/internal/workload"
)

// tinyInstance builds a small instance solvable by BruteForce.
func tinyInstance(t *testing.T, mutate func(*workload.InstanceConfig)) *model.Instance {
	t.Helper()
	cfg := workload.PaperDefault()
	cfg.T = 4
	cfg.K = 4
	cfg.ClassesPerSBS = 3
	cfg.CacheCap = 2
	cfg.Bandwidth = 6
	cfg.Beta = 3
	cfg.Workload.Jitter = 0.4
	if mutate != nil {
		mutate(&cfg)
	}
	in, err := workload.BuildInstance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestBruteForceBeatsNullAndIsFeasible(t *testing.T) {
	in := tinyInstance(t, nil)
	traj, br, err := BruteForce(in, convex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := in.CheckTrajectory(traj, 1e-6); err != nil {
		t.Fatalf("brute force trajectory infeasible: %v", err)
	}
	if br.Total > in.NoCachingCost()+1e-9 {
		t.Fatalf("brute force %g worse than caching nothing %g", br.Total, in.NoCachingCost())
	}
}

func TestBruteForceRejectsLargeK(t *testing.T) {
	in := tinyInstance(t, func(cfg *workload.InstanceConfig) { cfg.K = 20; cfg.Bandwidth = 6 })
	if _, _, err := BruteForce(in, convex.Options{}); err == nil {
		t.Fatal("BruteForce accepted K = 20")
	}
}

func TestSolveMatchesBruteForceOnTinyInstances(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		in := tinyInstance(t, func(cfg *workload.InstanceConfig) { cfg.Seed = seed })
		_, want, err := BruteForce(in, convex.Options{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := Solve(context.Background(), in, Options{MaxIter: 120})
		if err != nil {
			t.Fatal(err)
		}
		if err := in.CheckTrajectory(got.Trajectory, 1e-6); err != nil {
			t.Fatalf("seed %d: infeasible: %v", seed, err)
		}
		// Algorithm 1's UB should come very close to the true optimum.
		if got.Cost.Total > want.Total*1.05+1e-9 {
			t.Fatalf("seed %d: primal-dual %g vs optimum %g (> 5%% off)", seed, got.Cost.Total, want.Total)
		}
		if got.Cost.Total < want.Total-1e-6 {
			t.Fatalf("seed %d: primal-dual %g beats 'optimum' %g — oracle bug", seed, got.Cost.Total, want.Total)
		}
		// The dual bound must actually lower-bound the optimum.
		if got.LowerBound > want.Total+1e-6*math.Max(1, math.Abs(want.Total)) {
			t.Fatalf("seed %d: LB %g exceeds optimum %g", seed, got.LowerBound, want.Total)
		}
	}
}

func TestSolvePlacementsAreIntegralAndWithinCapacity(t *testing.T) {
	in := tinyInstance(t, nil)
	res, err := Solve(context.Background(), in, Options{MaxIter: 40})
	if err != nil {
		t.Fatal(err)
	}
	for tt, dec := range res.Trajectory {
		if !dec.X.IsIntegral(0) {
			t.Fatalf("slot %d: fractional placement", tt)
		}
		for n := 0; n < in.N; n++ {
			if len(dec.X.Items(n)) > in.CacheCap[n] {
				t.Fatalf("slot %d SBS %d: over capacity", tt, n)
			}
		}
	}
	if res.Iterations <= 0 {
		t.Fatal("no iterations recorded")
	}
}

func TestSolveRespectsInitialCache(t *testing.T) {
	in := tinyInstance(t, nil)
	init := model.NewCachePlan(in.N, in.K)
	init[0][0] = 1
	in.InitialCache = init
	res, err := Solve(context.Background(), in, Options{MaxIter: 30})
	if err != nil {
		t.Fatal(err)
	}
	// Cost accounting must charge h relative to the initial plan.
	br := in.TotalCost(res.Trajectory)
	if math.Abs(br.Total-res.Cost.Total) > 1e-9 {
		t.Fatalf("reported %g, recomputed %g", res.Cost.Total, br.Total)
	}
}

func TestSolveValidatesInstance(t *testing.T) {
	in := tinyInstance(t, nil)
	in.N = 0
	if _, err := Solve(context.Background(), in, Options{}); err == nil {
		t.Fatal("Solve accepted invalid instance")
	}
	if _, _, err := BruteForce(in, convex.Options{}); err == nil {
		t.Fatal("BruteForce accepted invalid instance")
	}
}

func TestRecoverFeasibleShapeCheck(t *testing.T) {
	in := tinyInstance(t, nil)
	if _, err := RecoverFeasible(context.Background(), in, make([]model.CachePlan, 1), convex.Options{}); err == nil {
		t.Fatal("RecoverFeasible accepted short placements")
	}
}

func TestMultiSBSSeparability(t *testing.T) {
	// Optimum of a 2-SBS instance equals the sum of the two 1-SBS optima
	// (the problem separates across SBSs).
	in2 := tinyInstance(t, func(cfg *workload.InstanceConfig) {
		cfg.N = 2
		cfg.T = 3
		cfg.K = 3
		cfg.ClassesPerSBS = 2
		cfg.CacheCap = 1
	})
	_, br2, err := BruteForce(in2, convex.Options{})
	if err != nil {
		t.Fatal(err)
	}

	var sum float64
	for n := 0; n < 2; n++ {
		sub := &model.Instance{
			N:         1,
			K:         in2.K,
			T:         in2.T,
			Classes:   []int{in2.Classes[n]},
			CacheCap:  []int{in2.CacheCap[n]},
			Bandwidth: []float64{in2.Bandwidth[n]},
			OmegaBS:   [][]float64{in2.OmegaBS[n]},
			OmegaSBS:  [][]float64{in2.OmegaSBS[n]},
			Beta:      []float64{in2.Beta[n]},
			Demand:    extractSBS(in2, n),
		}
		if err := sub.Validate(); err != nil {
			t.Fatal(err)
		}
		_, br, err := BruteForce(sub, convex.Options{})
		if err != nil {
			t.Fatal(err)
		}
		sum += br.Total
	}
	if math.Abs(br2.Total-sum) > 1e-6*(1+math.Abs(sum)) {
		t.Fatalf("joint %g != sum of per-SBS %g", br2.Total, sum)
	}
}

// extractSBS copies SBS n's demand into a 1-SBS tensor.
func extractSBS(in *model.Instance, n int) *model.Demand {
	d := model.NewDemand(in.T, []int{in.Classes[n]}, in.K)
	for t := 0; t < in.T; t++ {
		for m := 0; m < in.Classes[n]; m++ {
			for k := 0; k < in.K; k++ {
				d.Set(t, 0, m, k, in.Demand.At(t, n, m, k))
			}
		}
	}
	return d
}
