// Package core implements the paper's primary contribution: the offline
// primal-dual decomposition solver (Algorithm 1) for the joint caching /
// load-balancing problem of eq. (9).
//
// The coupling constraint y ≤ x (eq. 3) is relaxed with multipliers
// μ^t_{n,m,k} ≥ 0 (eq. 12). For fixed μ the Lagrangian splits into the
// caching subproblem P1 (package caching — integral by Theorem 1) and the
// load-balancing subproblem P2 (package loadbalance — smooth convex). The
// dual is ascended by a projected subgradient g = y − x with diminishing
// step δ_l = 1/(1 + αl) (eqs. 15–17); every iteration also recovers a
// feasible primal by fixing the P1 placement and re-solving the best load
// split subject to y ≤ x, which provides the upper bound of Algorithm 1.
//
// Solve returns the best feasible solution found, together with the dual
// lower bound and the achieved gap — exactly the bookkeeping in the
// paper's Algorithm 1 (LB/UB with tolerance ε = 10⁻⁴).
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"edgecache/internal/caching"
	"edgecache/internal/convex"
	"edgecache/internal/loadbalance"
	"edgecache/internal/model"
	"edgecache/internal/obs"
	"edgecache/internal/parallel"
)

// Always-on solver metrics (atomic; read by -metrics and /debug/vars).
var (
	mSolves    = obs.Default.Counter("core.solves")
	mIters     = obs.Default.Counter("core.iterations")
	mConverged = obs.Default.Counter("core.converged")
	mP1Time    = obs.Default.Timer("core.p1_solve")
	mP2Time    = obs.Default.Timer("core.p2_solve")
	mRecover   = obs.Default.Timer("core.recover")
	mSolveTime = obs.Default.Timer("core.solve")
	mLastGap   = obs.Default.Gauge("core.last_gap")
	mGapHist   = obs.Default.Histogram("core.final_gap")
	mIterHist  = obs.Default.Histogram("core.iterations_per_solve")
)

// dualBatchSpanSize groups dual iterations into one "dual_batch" span
// each, so traces of long solves stay browsable: run → solve →
// dual_batch → caching/loadbalance/recover.
const dualBatchSpanSize = 8

// Options tune Algorithm 1. The zero value selects the paper's defaults.
type Options struct {
	// Epsilon is the relative duality-gap stopping tolerance (paper: 1e-4).
	Epsilon float64
	// MaxIter is the iteration budget L (default 60).
	MaxIter int
	// StepAlpha is α in the diminishing step δ_l = 1/(1+αl) (default 0.05).
	// Smaller values take larger steps for longer.
	StepAlpha float64
	// StallIter stops the iteration early when the recovered upper bound
	// has not improved for this many consecutive iterations (the duality
	// gap rarely closes to ε on integer instances, so this is the
	// practical stopping rule; default 8, ≤ 0 disables).
	StallIter int
	// StepScale multiplies every δ_l. The subgradient g = y − x lives in
	// [−1, 1] while useful multipliers must reach the scale of the cost
	// gradients, so the raw step 1/(1+αl) is scaled by this factor
	// (default: auto — twice the mean per-coordinate BS cost gradient at
	// y = 0, a problem-size-independent calibration).
	StepScale float64
	// Convex configures the inner P2 solves.
	Convex convex.Options
	// InitialMu warm-starts the dual multipliers (shape [T][N][M_n·K]);
	// nil starts from zero. Receding-horizon controllers pass the shifted
	// multipliers of the previous window, which typically cuts the
	// iteration count several-fold.
	InitialMu [][][]float64
	// Telemetry receives one solver_iteration event per dual update
	// (iteration, LB, UB, gap, step, subgradient norm, P1/P2/recovery
	// durations) and a solver_done summary. Telemetry is observational
	// only — it never alters the iterates — and the nil default costs
	// nothing on the hot path.
	Telemetry *obs.Telemetry
	// Workspace supplies reusable solver state (see NewWorkspace). Nil
	// allocates a fresh workspace inside Solve. Receding-horizon
	// controllers pass one workspace across their overlapping window
	// solves to amortise per-instance precomputation; results are
	// bit-identical either way. A workspace must not be shared by
	// concurrent Solves (SolveDistributed therefore ignores this field).
	Workspace *Workspace
	// Advance hints that the instance is the previous Solve's window shifted
	// forward this many slots (receding horizon, same Workspace). Overlapping
	// slots then keep their P2 coefficient precompute and carry their dual
	// load iterates as warm starts — the x/y analogue of InitialMu, ablated
	// upstream by online.Config.DisableIterateWarmStart. The hint is verified
	// per slot against the actual plane inputs, so a wrong value degrades to
	// a full rebind, never to corruption. 0 (the default) rebinds from
	// scratch, resetting all cross-window P2 state.
	Advance int
	// DisableIncremental turns off the delta-aware re-solve machinery inside
	// the dual loop — per-(t, n) μ-row change tracking, the reward-row
	// recompute skip, the P1 incremental flow re-optimisation and the P2
	// fixed-point slot skip. Results are bit-identical either way (that is
	// the machinery's contract, pinned by TestSolveIncrementalMatchesDisabled
	// and the sim-level differential suite); the switch exists for ablation,
	// benchmarking and debugging.
	DisableIncremental bool
}

func (o Options) withDefaults() Options {
	if o.Epsilon <= 0 {
		o.Epsilon = 1e-4
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 60
	}
	if o.StepAlpha <= 0 {
		o.StepAlpha = 0.05
	}
	if o.StallIter == 0 {
		o.StallIter = 8
	}
	// Inner P2 solves happen hundreds of times per outer iteration; a
	// relative accuracy far below the duality gap is wasted work.
	if o.Convex.StepTol == 0 {
		o.Convex.StepTol = 1e-6
	}
	if o.Convex.MaxIter == 0 {
		o.Convex.MaxIter = 600
	}
	return o
}

// Result is the outcome of an offline solve. A cancelled or deadline-
// expired solve returns the best-so-far Result alongside the wrapped
// context error (see Solve); all fields then describe the partial run.
type Result struct {
	// Trajectory is the best feasible (integral-x) solution found.
	Trajectory model.Trajectory
	// Cost is the objective breakdown of Trajectory (the upper bound UB).
	Cost model.CostBreakdown
	// LowerBound is the best dual value (a certified lower bound on the
	// optimum of eq. 9).
	LowerBound float64
	// Gap is (UB − LB) / max(|UB|, 1), clamped at 0. It is +Inf until the
	// first dual iteration completes (no lower bound exists yet) — the
	// condition the degradation ladder of package online keys on.
	Gap float64
	// Iterations is the number of dual updates performed.
	Iterations int
	// Converged reports whether Gap ≤ Epsilon within MaxIter.
	Converged bool
	// Mu holds the final dual multipliers, suitable for warm-starting a
	// subsequent overlapping solve via Options.InitialMu.
	Mu [][][]float64
}

// Solve runs Algorithm 1 on the full horizon of the instance.
//
// Cancellation is checked at the start of every dual iteration and inside
// every inner P1/P2/recovery solve. When ctx is cancelled or its deadline
// expires mid-solve, Solve returns a wrapped ctx.Err(); the returned
// *Result is then non-nil iff at least one feasible trajectory had been
// recovered, and holds the best-so-far primal iterate together with the
// bounds achieved up to the interruption. Callers implementing graceful
// degradation (the per-slot budget of package online) commit that iterate
// when its duality gap is finite. A nil ctx means context.Background().
func Solve(ctx context.Context, in *model.Instance, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	opts = opts.withDefaults()
	if opts.StepScale <= 0 {
		opts.StepScale = autoStepScale(in)
	}
	tel := opts.Telemetry
	mSolves.Inc()
	solveStart := time.Now()
	defer func() { mSolveTime.Observe(time.Since(solveStart)) }()

	// Hierarchical trace: one "solve" span per Algorithm 1 invocation,
	// with per-batch and per-phase children below. Nil (tracing off) for
	// every method call when no tracer is installed in ctx.
	ctx, solveSpan := obs.StartSpan(ctx, "solve")
	var batch *obs.Span
	defer func() { batch.End(); solveSpan.End() }()

	ws := opts.Workspace
	if ws == nil {
		ws = NewWorkspace()
	}
	ws.bind(in, opts.Advance)

	// μ[t][n] is a flat (class, content) row like the demand layout.
	mu := make([][][]float64, in.T)
	for t := range mu {
		mu[t] = make([][]float64, in.N)
		for n := range mu[t] {
			mu[t][n] = make([]float64, in.Classes[n]*in.K)
			if opts.InitialMu != nil {
				if len(opts.InitialMu) != in.T || len(opts.InitialMu[t]) != in.N ||
					len(opts.InitialMu[t][n]) != in.Classes[n]*in.K {
					return nil, fmt.Errorf("core: InitialMu shape mismatch at (t=%d, n=%d)", t, n)
				}
				copy(mu[t][n], opts.InitialMu[t][n])
				for i, v := range mu[t][n] {
					if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
						return nil, fmt.Errorf("core: InitialMu[%d][%d][%d] = %g invalid", t, n, i, v)
					}
				}
			}
		}
	}

	res := &Result{LowerBound: math.Inf(-1), Gap: math.Inf(1)}
	best := math.Inf(1)
	stall := 0

	// dirty aliases the workspace's per-(t, n) μ-row change flags — the
	// event-driven schedule of the delta-aware dual loop (all true right
	// after bind; maintained by the subgradient step below). Nil ablates
	// the whole incremental path: every row recomputes and re-solves.
	var dirty [][]bool
	if !opts.DisableIncremental {
		dirty = ws.muDirty
	}

	// partial is the best-so-far result handed back alongside a context
	// error: nil until a feasible trajectory exists, so callers can
	// distinguish "nothing usable" from "usable but unfinished".
	partial := func() *Result {
		if res.Trajectory == nil {
			return nil
		}
		res.Mu = mu
		return res
	}

	// Seed the upper bound with the linearised-reward heuristic before any
	// dual iteration: the Lagrangian placements can carry an integrality
	// gap that the subgradient never closes, while the seed is near-optimal
	// at both β extremes (myopic top-C at β = 0, near-static as β → ∞).
	if seed, err := ws.linearizedPlacements(ctx, in); err == nil {
		if traj, err := ws.p2.Recover(ctx, seed, opts.Convex); err == nil {
			if br := in.TotalCost(traj); br.Total < best {
				best = br.Total
				res.Trajectory = traj
				res.Cost = br
			}
		}
	}

	for l := 1; l <= opts.MaxIter; l++ {
		if err := ctx.Err(); err != nil {
			return partial(), fmt.Errorf("core: solve interrupted before iteration %d: %w", l, err)
		}
		res.Iterations = l
		mIters.Inc()
		if solveSpan != nil && (l-1)%dualBatchSpanSize == 0 {
			batch.End()
			batch = solveSpan.Child("dual_batch")
			batch.Set("first_iter", l)
		}

		// ρ^t_{n,k} = Σ_m μ^t_{n,m,k} for P1. Rows whose μ did not move since
		// their last recompute still hold the identical sum, so the
		// incremental path leaves them untouched (dirty is nil — recompute
		// everything — when the machinery is ablated).
		for t := 0; t < in.T; t++ {
			for n := 0; n < in.N; n++ {
				if dirty != nil && !dirty[t][n] {
					continue
				}
				row := ws.rewards[t][n]
				for k := range row {
					row[k] = 0
				}
				muRow := mu[t][n]
				for m := 0; m < in.Classes[n]; m++ {
					base := m * in.K
					for k := 0; k < in.K; k++ {
						row[k] += muRow[base+k]
					}
				}
			}
		}

		p1Span := batch.Child("caching")
		p1Span.Set("iter", l)
		p1Start := time.Now()
		xPlans, objP1, err := ws.p1.SolveAllRows(ctx, ws.rewards, dirty)
		p1Span.End()
		if err != nil {
			return partialOnCtx(ctx, partial), fmt.Errorf("core: iteration %d: %w", l, err)
		}
		p1Dur := time.Since(p1Start)
		mP1Time.Observe(p1Dur)

		// The dual iterates warm-start from the previous iteration by
		// staying in place inside the workspace; no plan copies change hands.
		p2Span := batch.Child("loadbalance")
		p2Span.Set("iter", l)
		p2Start := time.Now()
		objP2, err := ws.p2.SolveDualDirty(ctx, mu, opts.Convex, dirty)
		p2Span.End()
		if err != nil {
			return partialOnCtx(ctx, partial), fmt.Errorf("core: iteration %d: %w", l, err)
		}
		p2Dur := time.Since(p2Start)
		mP2Time.Observe(p2Dur)

		// Dual value = P1 + P2 optima (weak duality ⇒ lower bound).
		if dual := objP1 + objP2; dual > res.LowerBound {
			res.LowerBound = dual
		}

		// Primal recovery: keep x, re-solve y subject to y ≤ x.
		recSpan := batch.Child("recover")
		recSpan.Set("iter", l)
		recStart := time.Now()
		traj, err := ws.p2.Recover(ctx, xPlans, opts.Convex)
		recSpan.End()
		if err != nil {
			return partialOnCtx(ctx, partial), fmt.Errorf("core: iteration %d: %w", l, err)
		}
		recDur := time.Since(recStart)
		mRecover.Observe(recDur)
		if br := in.TotalCost(traj); res.Trajectory == nil || br.Total < best-1e-9*(1+math.Abs(best)) {
			best = br.Total
			res.Trajectory = traj
			res.Cost = br
			stall = 0
		} else {
			stall++
		}

		res.Gap = math.Max(0, (best-res.LowerBound)/math.Max(math.Abs(best), 1))
		mLastGap.Set(res.Gap)

		// δ_l is a pure function of l, so the value reported for this
		// iteration equals the step a continuing iteration would take.
		delta := opts.StepScale / (1 + opts.StepAlpha*float64(l))
		if tel.Enabled() {
			tel.Emit("solver_iteration", obs.Fields{
				"iter":         l,
				"lb":           res.LowerBound,
				"ub":           best,
				"gap":          res.Gap,
				"step":         delta,
				"subgrad_norm": subgradNorm(in, xPlans, ws),
				"p1_ms":        ms(p1Dur),
				"p2_ms":        ms(p2Dur),
				"recover_ms":   ms(recDur),
			})
		}

		if res.Gap <= opts.Epsilon {
			res.Converged = true
			break
		}
		if opts.StallIter > 0 && stall >= opts.StallIter {
			break
		}

		// Projected subgradient step on μ (eqs. 15–17). This is the sole
		// mutator of μ, so it also maintains the per-row dirty flags: a row
		// is clean for the next iteration iff no coordinate changed value
		// (clamped rows with g ≥ 0 against μ = 0 are the common clean case
		// once x and y agree). Writes are conditional on an actual change,
		// which keeps μ bitwise identical to the unconditional baseline.
		for t := 0; t < in.T; t++ {
			for n := 0; n < in.N; n++ {
				muRow := mu[t][n]
				yRow := ws.p2.DualY(t, n)
				xRow := xPlans[t][n]
				changed := false
				for m := 0; m < in.Classes[n]; m++ {
					base := m * in.K
					for k := 0; k < in.K; k++ {
						g := yRow[base+k] - xRow[k]
						v := muRow[base+k] + delta*g
						if v < 0 {
							v = 0
						}
						if v != muRow[base+k] {
							muRow[base+k] = v
							changed = true
						}
					}
				}
				ws.muDirty[t][n] = changed
			}
		}
	}

	if res.Trajectory == nil {
		return nil, errors.New("core: no feasible solution recovered")
	}
	res.Mu = mu
	if res.Converged {
		mConverged.Inc()
	}
	mGapHist.Observe(res.Gap)
	mIterHist.Observe(float64(res.Iterations))
	solveSpan.Set("iterations", res.Iterations)
	solveSpan.Set("converged", res.Converged)
	solveSpan.Set("gap", res.Gap)
	if tel.Enabled() {
		tel.Emit("solver_done", obs.Fields{
			"iterations": res.Iterations,
			"converged":  res.Converged,
			"lb":         res.LowerBound,
			"ub":         res.Cost.Total,
			"gap":        res.Gap,
			"total_ms":   ms(time.Since(solveStart)),
		})
	}
	return res, nil
}

// subgradNorm is the L2 norm of the dual subgradient g = y − x — the
// convergence diagnostic reported per iteration. It is computed only
// when telemetry is enabled, so the disabled path never pays the pass.
func subgradNorm(in *model.Instance, xPlans []model.CachePlan, ws *Workspace) float64 {
	var sum float64
	for t := 0; t < in.T; t++ {
		for n := 0; n < in.N; n++ {
			yRow := ws.p2.DualY(t, n)
			xRow := xPlans[t][n]
			for m := 0; m < in.Classes[n]; m++ {
				base := m * in.K
				for k := 0; k < in.K; k++ {
					g := yRow[base+k] - xRow[k]
					sum += g * g
				}
			}
		}
	}
	return math.Sqrt(sum)
}

// ms converts a duration to fractional milliseconds for event payloads.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// partialOnCtx returns the best-so-far result when an inner solve failed
// because the context is done (the partial iterate is still valid and
// valuable), and nil for genuine solver failures (nothing trustworthy to
// return).
func partialOnCtx(ctx context.Context, partial func() *Result) *Result {
	if ctx.Err() != nil {
		return partial()
	}
	return nil
}

// RecoverFeasible completes integral placements into a fully feasible
// trajectory by computing the optimal load split for each slot subject to
// y ≤ x — the UB evaluation step of Algorithm 1. Slots are independent and
// solved in parallel; cancellation is honoured at per-slot granularity.
func RecoverFeasible(ctx context.Context, in *model.Instance, xPlans []model.CachePlan, opts convex.Options) (model.Trajectory, error) {
	if len(xPlans) != in.T {
		return nil, fmt.Errorf("core: %d placements for horizon %d", len(xPlans), in.T)
	}
	traj := make(model.Trajectory, in.T)
	// Supervised: RecoverFeasible sits on the degradation path (it turns
	// best-so-far iterates into committable plans), so a panic in one
	// slot's recovery must degrade that slot, not crash the ladder.
	err := parallel.ForSupervised(ctx, in.T, 0, func(t int) error {
		y, err := loadbalance.OptimalGivenPlacement(in, t, xPlans[t], opts)
		if err != nil {
			return err
		}
		traj[t] = model.SlotDecision{X: xPlans[t].Clone(), Y: y}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return traj, nil
}

// LinearizedPlacements computes a heuristic placement trajectory by
// solving the caching subproblem P1 with the true replacement cost β and
// per-(item, slot) rewards equal to the linearised operating-cost saving
// of caching the item: r^t_{n,k} = ∂f_t/∂u · Σ_m ω_m λ^t_{m,k} evaluated
// at y = 0 (so ∂f/∂u = 2A_t). It is exact at β = 0 up to bandwidth
// effects, switching-cost aware at every β, and serves as the upper-bound
// seed of Solve.
func LinearizedPlacements(ctx context.Context, in *model.Instance) ([]model.CachePlan, error) {
	rewards := make([][][]float64, in.T)
	for t := 0; t < in.T; t++ {
		rewards[t] = make([][]float64, in.N)
		for n := 0; n < in.N; n++ {
			omega := in.OmegaBS[n]
			var a float64
			in.Demand.ForEachActive(t, n, func(m, k int, rate float64) {
				a += omega[m] * rate
			})
			r := make([]float64, in.K)
			in.Demand.ForEachActive(t, n, func(m, k int, rate float64) {
				r[k] += 2 * a * omega[m] * rate
			})
			rewards[t][n] = r
		}
	}
	plans, _, err := caching.SolveAll(ctx, in, rewards)
	return plans, err
}

// autoStepScale calibrates the subgradient step to the problem's cost
// scale: the mean magnitude of ∂f/∂y at y = 0 over all coordinates with
// demand, which is the size multipliers must reach to influence P1/P2.
func autoStepScale(in *model.Instance) float64 {
	var sum float64
	var count int
	for t := 0; t < in.T; t++ {
		for n := 0; n < in.N; n++ {
			omega := in.OmegaBS[n]
			// A_n = Σ_m ω_m Σ_k λ: the all-BS weighted load.
			var a float64
			in.Demand.ForEachActive(t, n, func(m, k int, rate float64) {
				a += omega[m] * rate
			})
			in.Demand.ForEachActive(t, n, func(m, k int, rate float64) {
				if rate > 0 {
					sum += 2 * a * omega[m] * rate
					count++
				}
			})
		}
	}
	if count == 0 || sum <= 0 {
		return 1
	}
	return 2 * sum / float64(count)
}
