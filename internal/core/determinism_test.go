package core

import (
	"context"
	"reflect"
	"testing"

	"edgecache/internal/workload"
)

func mediumInstance(t *testing.T, mutate func(*workload.InstanceConfig)) *workload.InstanceConfig {
	t.Helper()
	cfg := workload.PaperDefault()
	cfg.N = 2
	cfg.T = 5
	cfg.K = 8
	cfg.ClassesPerSBS = 3
	cfg.CacheCap = 2
	if mutate != nil {
		mutate(&cfg)
	}
	return &cfg
}

// solveResults compares every deterministic field of two solver results.
func sameResult(a, b *Result) bool {
	return a.LowerBound == b.LowerBound &&
		a.Gap == b.Gap &&
		a.Iterations == b.Iterations &&
		a.Converged == b.Converged &&
		a.Cost == b.Cost &&
		reflect.DeepEqual(a.Trajectory, b.Trajectory) &&
		reflect.DeepEqual(a.Mu, b.Mu)
}

// TestSolveDeterministicAcrossWorkspaceReuse is the determinism guarantee
// of the zero-reallocation refactor: Solve with a nil workspace, with a
// fresh caller-supplied workspace, and with a workspace already dirtied by
// other solves must all produce byte-identical results.
func TestSolveDeterministicAcrossWorkspaceReuse(t *testing.T) {
	for _, ratio := range []float64{0, 0.25} {
		cfg := mediumInstance(t, func(c *workload.InstanceConfig) { c.OmegaSBSRatio = ratio })
		in, err := workload.BuildInstance(*cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Different shape to dirty the reused workspace before the real solve.
		cfgOther := mediumInstance(t, func(c *workload.InstanceConfig) {
			c.OmegaSBSRatio = ratio
			c.T = 3
			c.K = 11
			c.Seed = 999
		})
		other, err := workload.BuildInstance(*cfgOther)
		if err != nil {
			t.Fatal(err)
		}

		opts := Options{MaxIter: 12}
		base, err := Solve(context.Background(), in, opts)
		if err != nil {
			t.Fatal(err)
		}

		fresh := opts
		fresh.Workspace = NewWorkspace()
		got, err := Solve(context.Background(), in, fresh)
		if err != nil {
			t.Fatal(err)
		}
		if !sameResult(base, got) {
			t.Fatalf("ratio=%g: fresh-workspace solve diverges from nil-workspace solve", ratio)
		}

		reused := opts
		reused.Workspace = NewWorkspace()
		if _, err := Solve(context.Background(), other, reused); err != nil {
			t.Fatal(err)
		}
		got, err = Solve(context.Background(), in, reused)
		if err != nil {
			t.Fatal(err)
		}
		if !sameResult(base, got) {
			t.Fatalf("ratio=%g: dirty-workspace solve diverges from nil-workspace solve", ratio)
		}

		// Same workspace, same instance, back to back.
		got, err = Solve(context.Background(), in, reused)
		if err != nil {
			t.Fatal(err)
		}
		if !sameResult(base, got) {
			t.Fatalf("ratio=%g: repeated reused-workspace solve diverges", ratio)
		}
	}
}
