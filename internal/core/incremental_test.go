package core

import (
	"context"
	"testing"

	"edgecache/internal/model"
	"edgecache/internal/workload"
)

// TestSolveIncrementalMatchesDisabled pins the tentpole contract of the
// delta-aware dual loop: with the incremental machinery on (μ-row dirty
// tracking, reward-row recompute skips, P1 flow re-optimisation, P2
// fixed-point skips) every Solve result — trajectory, bounds, multipliers,
// iteration count — is bit-identical to the ablated from-scratch loop.
func TestSolveIncrementalMatchesDisabled(t *testing.T) {
	for _, ratio := range []float64{0, 0.25} {
		cfg := mediumInstance(t, func(c *workload.InstanceConfig) { c.OmegaSBSRatio = ratio })
		in, err := workload.BuildInstance(*cfg)
		if err != nil {
			t.Fatal(err)
		}

		// Enough iterations that μ settles and rows actually go clean —
		// otherwise the skip paths are never exercised.
		opts := Options{MaxIter: 25}
		inc, err := Solve(context.Background(), in, opts)
		if err != nil {
			t.Fatal(err)
		}

		ablated := opts
		ablated.DisableIncremental = true
		ref, err := Solve(context.Background(), in, ablated)
		if err != nil {
			t.Fatal(err)
		}
		if !sameResult(inc, ref) {
			t.Fatalf("ratio=%g: incremental solve diverges from the from-scratch loop", ratio)
		}

		// Reused workspaces on both sides: the incremental path must also
		// survive warm, previously-dirtied solver state.
		incWS, refWS := opts, ablated
		incWS.Workspace = NewWorkspace()
		refWS.Workspace = NewWorkspace()
		for round := 0; round < 2; round++ {
			got, err := Solve(context.Background(), in, incWS)
			if err != nil {
				t.Fatal(err)
			}
			want, err := Solve(context.Background(), in, refWS)
			if err != nil {
				t.Fatal(err)
			}
			if !sameResult(got, want) {
				t.Fatalf("ratio=%g round %d: incremental reused-workspace solve diverges", ratio, round)
			}
			if !sameResult(got, inc) {
				t.Fatalf("ratio=%g round %d: reused-workspace solve diverges from fresh solve", ratio, round)
			}
		}
	}
}

// TestSolveAdvanceIncrementalMatchesDisabled slides one workspace across
// overlapping windows with Options.Advance (coefficient reuse + iterate
// carry) and checks the incremental machinery changes nothing under it:
// an ablated (DisableIncremental) workspace driven through the same
// Advance sequence produces bit-identical results at every window. It
// also checks an out-of-range Advance degrades to the full rebind —
// identical to an Advance = 0 run — rather than corrupting state.
func TestSolveAdvanceIncrementalMatchesDisabled(t *testing.T) {
	cfg := mediumInstance(t, func(c *workload.InstanceConfig) {
		c.T = 8
		c.OmegaSBSRatio = 0.25
	})
	full, err := workload.BuildInstance(*cfg)
	if err != nil {
		t.Fatal(err)
	}
	const w = 5
	win := func(from int) *model.Instance {
		sub, err := full.Window(from, from+w, full.InitialPlan(), nil)
		if err != nil {
			t.Fatal(err)
		}
		return sub
	}

	run := func(disable bool) []*Result {
		opts := Options{MaxIter: 15, DisableIncremental: disable, Workspace: NewWorkspace()}
		var out []*Result
		for from := 0; from+w <= full.T; from++ {
			o := opts
			if from > 0 {
				o.Advance = 1
			}
			res, err := Solve(context.Background(), win(from), o)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, res)
		}
		return out
	}
	inc, ref := run(false), run(true)
	for i := range inc {
		if !sameResult(inc[i], ref[i]) {
			t.Fatalf("window %d: Advance run diverges between incremental and ablated loops", i)
		}
	}

	// An Advance larger than the previous horizon cannot describe any
	// overlap; the bind must fall back to a from-scratch rebind and match
	// the Advance = 0 result exactly.
	wsBad := Options{MaxIter: 15, Workspace: NewWorkspace()}
	if _, err := Solve(context.Background(), win(0), wsBad); err != nil {
		t.Fatal(err)
	}
	bad := wsBad
	bad.Advance = w + 3
	gotBad, err := Solve(context.Background(), win(1), bad)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Solve(context.Background(), win(1), Options{MaxIter: 15})
	if err != nil {
		t.Fatal(err)
	}
	if !sameResult(gotBad, plain) {
		t.Fatal("out-of-range Advance did not degrade to a full rebind")
	}
}
