package core

import (
	"context"
	"math"
	"testing"

	"edgecache/internal/model"
	"edgecache/internal/workload"
)

func multiInstance(t *testing.T) *model.Instance {
	t.Helper()
	cfg := workload.PaperDefault()
	cfg.N = 3
	cfg.T = 5
	cfg.K = 6
	cfg.ClassesPerSBS = 3
	cfg.CacheCap = 2
	cfg.Bandwidth = 5
	cfg.Beta = 8
	in, err := workload.BuildInstance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestPerSBSExtraction(t *testing.T) {
	in := multiInstance(t)
	in.InitialCache = model.NewCachePlan(in.N, in.K)
	in.InitialCache[1][3] = 1
	sub, err := in.PerSBS(1)
	if err != nil {
		t.Fatal(err)
	}
	if sub.N != 1 || sub.K != in.K || sub.T != in.T {
		t.Fatalf("sub shape N=%d K=%d T=%d", sub.N, sub.K, sub.T)
	}
	if sub.InitialCache[0][3] != 1 {
		t.Fatal("initial cache not carried over")
	}
	if sub.Demand.At(2, 0, 1, 4) != in.Demand.At(2, 1, 1, 4) {
		t.Fatal("demand not carried over")
	}
	if _, err := in.PerSBS(-1); err == nil {
		t.Fatal("accepted negative SBS")
	}
	if _, err := in.PerSBS(3); err == nil {
		t.Fatal("accepted out-of-range SBS")
	}
}

func TestDistributedMatchesJoint(t *testing.T) {
	in := multiInstance(t)
	opts := Options{MaxIter: 30}
	joint, err := Solve(context.Background(), in, opts)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := SolveDistributed(context.Background(), in, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.CheckTrajectory(dist.Trajectory, 1e-6); err != nil {
		t.Fatalf("distributed trajectory infeasible: %v", err)
	}
	// Separability: the two must land on (essentially) the same cost. The
	// joint run could in principle differ through solver tolerances only.
	if math.Abs(joint.Cost.Total-dist.Cost.Total) > 0.01*joint.Cost.Total {
		t.Fatalf("joint %g vs distributed %g", joint.Cost.Total, dist.Cost.Total)
	}
	// Reported breakdown must match the merged trajectory exactly.
	br := in.TotalCost(dist.Trajectory)
	if math.Abs(br.Total-dist.Cost.Total) > 1e-9*(1+br.Total) {
		t.Fatalf("reported %g != recomputed %g", dist.Cost.Total, br.Total)
	}
	if dist.Cost.Replacements != br.Replacements {
		t.Fatalf("replacement counts disagree: %d vs %d", dist.Cost.Replacements, br.Replacements)
	}
	// Lower bounds sum to a valid bound on the joint optimum.
	if dist.LowerBound > dist.Cost.Total+1e-6 {
		t.Fatalf("aggregate LB %g exceeds cost %g", dist.LowerBound, dist.Cost.Total)
	}
}

func TestDistributedSingleSBSDelegates(t *testing.T) {
	cfg := workload.PaperDefault()
	cfg.T = 4
	cfg.K = 5
	cfg.ClassesPerSBS = 3
	cfg.CacheCap = 2
	cfg.Bandwidth = 4
	in, err := workload.BuildInstance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Solve(context.Background(), in, Options{MaxIter: 10})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SolveDistributed(context.Background(), in, Options{MaxIter: 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Cost.Total-b.Cost.Total) > 1e-12 {
		t.Fatalf("single-SBS delegation mismatch: %g vs %g", a.Cost.Total, b.Cost.Total)
	}
}

func TestDistributedValidates(t *testing.T) {
	in := multiInstance(t)
	in.T = 0
	if _, err := SolveDistributed(context.Background(), in, Options{}); err == nil {
		t.Fatal("accepted invalid instance")
	}
}
