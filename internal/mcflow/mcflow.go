// Package mcflow implements a min-cost-flow solver by successive shortest
// paths with Johnson potentials.
//
// The caching subproblem P1 of the paper (eq. 18, linearised as eq. 21–22)
// is, per SBS, an integral LP on a time-expanded "cache slot" network: C_n
// units of slot-flow travel from the first to the last slot, either idling
// in a pool or occupying an item, paying β_n when they fetch an item and
// collecting the dual reward Σ_m μ^t_{m,k} while holding it. Total
// unimodularity (Theorem 1 of the paper) is exactly flow integrality, so
// solving the flow problem yields the paper's integral optimum directly.
// Package caching builds that network; this package solves it.
//
// Costs may be negative (rewards). Initial potentials are computed by DAG
// relaxation when the graph is acyclic — which the time-expanded network
// always is — and by Bellman–Ford otherwise; subsequent iterations use
// Dijkstra on reduced costs.
package mcflow

import (
	"errors"
	"fmt"
	"math"
)

// Solver failure modes.
var (
	// ErrInfeasible reports that the requested supply cannot reach the sink.
	ErrInfeasible = errors.New("mcflow: requested flow exceeds network capacity")
	// ErrNegativeCycle reports a negative-cost cycle, on which min-cost flow
	// is unbounded below.
	ErrNegativeCycle = errors.New("mcflow: negative-cost cycle")
)

// Arc identifies an arc returned by AddArc, usable to query its flow after
// a solve.
type Arc int

// arc is a directed residual edge. Arcs are stored in pairs: arc 2i is the
// forward edge and 2i+1 its residual reverse.
type arc struct {
	to   int
	cap  int // remaining capacity
	cost float64
	next int // index of previous arc out of the same tail, -1 terminates
}

// Graph is a directed flow network under construction. The zero value is
// not usable; call NewGraph. A graph is not safe for concurrent use (Solve
// mutates residual capacities and reuses internal scratch).
type Graph struct {
	head []int // per node: last arc index, -1 if none
	arcs []arc
	caps []int // original capacity of each forward arc, for flow queries

	// Solver scratch, lazily sized to the node count and reused across
	// Solve calls so repeated solves on a reused graph allocate nothing.
	pi, dist     []float64
	prevArc      []int
	done         []bool
	q            []pqItem
	indeg, order []int
	queue        []int
}

// NewGraph returns an empty network with n nodes, numbered 0..n−1.
func NewGraph(n int) *Graph {
	head := make([]int, n)
	for i := range head {
		head[i] = -1
	}
	return &Graph{head: head}
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.head) }

// AddArc adds a directed arc from → to with the given capacity and per-unit
// cost, returning its handle. Capacity must be non-negative and the
// endpoints in range; violations panic since they are construction bugs.
func (g *Graph) AddArc(from, to int, capacity int, cost float64) Arc {
	if from < 0 || from >= len(g.head) || to < 0 || to >= len(g.head) {
		panic(fmt.Sprintf("mcflow: arc (%d → %d) outside node range [0, %d)", from, to, len(g.head)))
	}
	if capacity < 0 {
		panic(fmt.Sprintf("mcflow: negative capacity %d", capacity))
	}
	if math.IsNaN(cost) || math.IsInf(cost, 0) {
		panic(fmt.Sprintf("mcflow: non-finite cost %g", cost))
	}
	id := Arc(len(g.caps))
	g.arcs = append(g.arcs, arc{to: to, cap: capacity, cost: cost, next: g.head[from]})
	g.head[from] = len(g.arcs) - 1
	g.arcs = append(g.arcs, arc{to: from, cap: 0, cost: -cost, next: g.head[to]})
	g.head[to] = len(g.arcs) - 1
	g.caps = append(g.caps, capacity)
	return id
}

// Flow returns the flow currently routed through arc id (0 before Solve).
func (g *Graph) Flow(id Arc) int {
	return g.caps[id] - g.arcs[2*id].cap
}

// Reset restores every arc's residual capacity to its construction value
// (forward = capacity, reverse = 0), erasing all routed flow so the graph
// can be solved afresh. Costs are kept. Together with SetCost this lets a
// caller reuse one network across solves that differ only in arc costs —
// the dual-reward updates of the caching subproblem P1.
func (g *Graph) Reset() {
	for i, c := range g.caps {
		g.arcs[2*i].cap = c
		g.arcs[2*i+1].cap = 0
	}
}

// SetCost replaces the cost of arc id (and of its residual reverse). Call
// it only between solves: changing costs mid-solve corrupts the
// potentials.
func (g *Graph) SetCost(id Arc, cost float64) {
	if math.IsNaN(cost) || math.IsInf(cost, 0) {
		panic(fmt.Sprintf("mcflow: non-finite cost %g", cost))
	}
	g.arcs[2*id].cost = cost
	g.arcs[2*id+1].cost = -cost
}

// scratch sizes the reusable solver buffers to the node count.
func (g *Graph) scratch() {
	n := len(g.head)
	if cap(g.dist) < n {
		g.pi = make([]float64, n)
		g.dist = make([]float64, n)
		g.prevArc = make([]int, n)
		g.done = make([]bool, n)
		g.indeg = make([]int, n)
	} else {
		g.pi = g.pi[:n]
		g.dist = g.dist[:n]
		g.prevArc = g.prevArc[:n]
		g.done = g.done[:n]
		g.indeg = g.indeg[:n]
	}
}

// Result summarises a solve.
type Result struct {
	// Cost is the total cost of the routed flow.
	Cost float64
	// Flow is the amount actually routed (equals the requested supply on
	// success).
	Flow int
}

// Solve routes supply units from source to sink at minimum cost. It
// mutates the graph's residual capacities; call Flow to read per-arc flow
// afterwards. Calling Solve again routes additional flow on top of the
// existing one (the residual graph is re-potentialised first).
func (g *Graph) Solve(source, sink, supply int) (*Result, error) {
	if source < 0 || source >= len(g.head) || sink < 0 || sink >= len(g.head) {
		return nil, fmt.Errorf("mcflow: endpoints (%d, %d) outside node range [0, %d)", source, sink, len(g.head))
	}
	if supply < 0 {
		return nil, fmt.Errorf("mcflow: negative supply %d", supply)
	}
	if supply == 0 {
		return &Result{}, nil
	}

	g.scratch()
	pi, err := g.initialPotentials(source)
	if err != nil {
		return nil, err
	}

	res := &Result{}
	dist, prevArc := g.dist, g.prevArc
	for res.Flow < supply {
		ok := g.dijkstra(source, pi, dist, prevArc)
		if !ok {
			return nil, errors.New("mcflow: internal error: negative reduced cost (corrupted potentials)")
		}
		if math.IsInf(dist[sink], 1) {
			return nil, fmt.Errorf("%w: routed %d of %d", ErrInfeasible, res.Flow, supply)
		}
		// Update potentials, capping unreachable nodes at the sink distance
		// so reduced costs stay non-negative on arcs that can still matter.
		dSink := dist[sink]
		for v := range pi {
			pi[v] += math.Min(dist[v], dSink)
		}
		// Bottleneck along the path.
		bottleneck := supply - res.Flow
		for v := sink; v != source; {
			a := &g.arcs[prevArc[v]]
			if a.cap < bottleneck {
				bottleneck = a.cap
			}
			v = g.arcs[prevArc[v]^1].to
		}
		// Augment.
		for v := sink; v != source; {
			fwd := &g.arcs[prevArc[v]]
			rev := &g.arcs[prevArc[v]^1]
			fwd.cap -= bottleneck
			rev.cap += bottleneck
			res.Cost += fwd.cost * float64(bottleneck)
			v = rev.to
		}
		res.Flow += bottleneck
	}
	return res, nil
}

// initialPotentials computes shortest-path potentials from source over the
// original arcs, by DAG relaxation when possible and Bellman–Ford otherwise.
func (g *Graph) initialPotentials(source int) ([]float64, error) {
	if order, ok := g.topoOrder(); ok {
		return g.dagPotentials(source, order), nil
	}
	return g.bellmanFord(source)
}

// topoOrder returns a topological order of nodes over residual arcs with
// positive capacity, or ok = false if the residual graph has a cycle (which
// is always the case after at least one augmentation). The returned slice
// aliases graph scratch.
func (g *Graph) topoOrder() ([]int, bool) {
	n := len(g.head)
	indeg := g.indeg
	for i := range indeg {
		indeg[i] = 0
	}
	for u := 0; u < n; u++ {
		for e := g.head[u]; e != -1; e = g.arcs[e].next {
			if g.arcs[e].cap > 0 {
				indeg[g.arcs[e].to]++
			}
		}
	}
	if cap(g.order) < n {
		g.order = make([]int, 0, n)
		g.queue = make([]int, 0, n)
	}
	order := g.order[:0]
	queue := g.queue[:0]
	for v, d := range indeg {
		if d == 0 {
			queue = append(queue, v)
		}
	}
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		order = append(order, u)
		for e := g.head[u]; e != -1; e = g.arcs[e].next {
			if g.arcs[e].cap > 0 {
				v := g.arcs[e].to
				indeg[v]--
				if indeg[v] == 0 {
					queue = append(queue, v)
				}
			}
		}
	}
	return order, len(order) == n
}

// dagPotentials relaxes arcs in topological order. Nodes unreachable from
// the source keep potential 0, which is safe because no residual arc into
// them exists yet. The returned slice aliases graph scratch.
func (g *Graph) dagPotentials(source int, order []int) []float64 {
	dist := g.pi
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[source] = 0
	for _, u := range order {
		if math.IsInf(dist[u], 1) {
			continue
		}
		for e := g.head[u]; e != -1; e = g.arcs[e].next {
			if g.arcs[e].cap == 0 {
				continue
			}
			if d := dist[u] + g.arcs[e].cost; d < dist[g.arcs[e].to] {
				dist[g.arcs[e].to] = d
			}
		}
	}
	for i, d := range dist {
		if math.IsInf(d, 1) {
			dist[i] = 0
		}
	}
	return dist
}

// bellmanFord computes potentials on general graphs and detects negative
// cycles reachable from the source. The returned slice aliases graph
// scratch.
func (g *Graph) bellmanFord(source int) ([]float64, error) {
	n := len(g.head)
	dist := g.pi
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[source] = 0
	for iter := 0; iter < n; iter++ {
		changed := false
		for u := 0; u < n; u++ {
			if math.IsInf(dist[u], 1) {
				continue
			}
			for e := g.head[u]; e != -1; e = g.arcs[e].next {
				if g.arcs[e].cap == 0 {
					continue
				}
				if d := dist[u] + g.arcs[e].cost; d < dist[g.arcs[e].to]-1e-12 {
					dist[g.arcs[e].to] = d
					changed = true
				}
			}
		}
		if !changed {
			for i, d := range dist {
				if math.IsInf(d, 1) {
					dist[i] = 0
				}
			}
			return dist, nil
		}
	}
	return nil, ErrNegativeCycle
}

// pqItem is a priority-queue entry for Dijkstra.
type pqItem struct {
	node int
	dist float64
}

// pqPush appends it and sifts it up. The sift replicates container/heap's
// order of comparisons and swaps exactly, so equal-distance tie-breaks —
// and therefore the augmenting paths Dijkstra selects — are unchanged from
// the previous container/heap-based implementation.
func pqPush(q []pqItem, it pqItem) []pqItem {
	q = append(q, it)
	j := len(q) - 1
	for {
		i := (j - 1) / 2 // parent
		if i == j || !(q[j].dist < q[i].dist) {
			break
		}
		q[i], q[j] = q[j], q[i]
		j = i
	}
	return q
}

// pqPop removes and returns the minimum element, sifting down in
// container/heap's exact order (swap root with last, sift over the
// shortened prefix, then strip the last element).
func pqPop(q []pqItem) (pqItem, []pqItem) {
	n := len(q) - 1
	q[0], q[n] = q[n], q[0]
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && q[j2].dist < q[j1].dist {
			j = j2
		}
		if !(q[j].dist < q[i].dist) {
			break
		}
		q[i], q[j] = q[j], q[i]
		i = j
	}
	return q[n], q[:n]
}

// dijkstra computes reduced-cost shortest paths over the residual graph.
// It fills dist (potential-adjusted) and prevArc, returning false if a
// negative reduced cost is detected (which indicates corrupted potentials).
func (g *Graph) dijkstra(source int, pi, dist []float64, prevArc []int) bool {
	for i := range dist {
		dist[i] = math.Inf(1)
		prevArc[i] = -1
	}
	dist[source] = 0
	done := g.done
	for i := range done {
		done[i] = false
	}
	q := append(g.q[:0], pqItem{node: source})
	for len(q) > 0 {
		var it pqItem
		it, q = pqPop(q)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		for e := g.head[u]; e != -1; e = g.arcs[e].next {
			a := g.arcs[e]
			if a.cap == 0 {
				continue
			}
			rc := a.cost + pi[u] - pi[a.to]
			if rc < -1e-7 {
				g.q = q
				return false
			}
			if rc < 0 {
				rc = 0 // clamp rounding noise
			}
			if d := dist[u] + rc; d < dist[a.to]-1e-15 {
				dist[a.to] = d
				prevArc[a.to] = e
				q = pqPush(q, pqItem{node: a.to, dist: d})
			}
		}
	}
	g.q = q
	return true
}
