// Package mcflow implements a min-cost-flow solver by successive shortest
// paths with Johnson potentials.
//
// The caching subproblem P1 of the paper (eq. 18, linearised as eq. 21–22)
// is, per SBS, an integral LP on a time-expanded "cache slot" network: C_n
// units of slot-flow travel from the first to the last slot, either idling
// in a pool or occupying an item, paying β_n when they fetch an item and
// collecting the dual reward Σ_m μ^t_{m,k} while holding it. Total
// unimodularity (Theorem 1 of the paper) is exactly flow integrality, so
// solving the flow problem yields the paper's integral optimum directly.
// Package caching builds that network; this package solves it.
//
// Costs may be negative (rewards). Initial potentials are computed by DAG
// relaxation when the graph is acyclic — which the time-expanded network
// always is — and by Bellman–Ford otherwise; subsequent iterations use
// Dijkstra on reduced costs.
//
// # Reuse contract: Reset versus Resolve
//
// A network can be reused across solves in two ways. Reset restores every
// arc to its construction capacity, erasing all routed flow (and clearing
// the incremental bookkeeping below); together with SetCost it supports
// the rebuild-from-zero pattern — Reset, retarget costs, Solve — whose
// results match a freshly constructed graph bit for bit
// (TestResetSetCostMatchesFresh).
//
// Resolve is the delta-aware alternative. While the graph holds a solved
// flow, SetCost records which arcs actually changed; Resolve then keeps
// the previous flow and potentials when every dirty arc's residual
// reduced cost remains non-negative, repairs the potentials with a
// bounded Bellman–Ford pass over the residual graph when it does not,
// and — before trusting the retained flow — certifies via the tight
// residual subgraph that the optimum is unique, so the kept flow is the
// one a from-scratch solve would find. Whenever the certificate cannot
// establish that, Resolve falls back to exactly the Reset+Solve path.
// Either way the per-arc flows returned are bit-identical to a fresh
// solve (TestResolveMatchesFresh); only Result.Cost may differ in the
// last bits, because the kept path accumulates cost in arc order while
// the augmenting path accumulates it in augmentation order — callers that
// need bit-stable objectives should recompute them from the flows.
package mcflow

import (
	"errors"
	"fmt"
	"math"
)

// Solver failure modes.
var (
	// ErrInfeasible reports that the requested supply cannot reach the sink.
	ErrInfeasible = errors.New("mcflow: requested flow exceeds network capacity")
	// ErrNegativeCycle reports a negative-cost cycle, on which min-cost flow
	// is unbounded below.
	ErrNegativeCycle = errors.New("mcflow: negative-cost cycle")
)

// Arc identifies an arc returned by AddArc, usable to query its flow after
// a solve.
type Arc int

// arc is a directed residual edge. Arcs are stored in pairs: arc 2i is the
// forward edge and 2i+1 its residual reverse.
type arc struct {
	to   int
	cap  int // remaining capacity
	cost float64
	next int // index of previous arc out of the same tail, -1 terminates
}

// Graph is a directed flow network under construction. The zero value is
// not usable; call NewGraph. A graph is not safe for concurrent use (Solve
// mutates residual capacities and reuses internal scratch).
type Graph struct {
	head []int // per node: last arc index, -1 if none
	arcs []arc
	caps []int // original capacity of each forward arc, for flow queries

	// Solver scratch, lazily sized to the node count and reused across
	// Solve calls so repeated solves on a reused graph allocate nothing.
	pi, dist     []float64
	prevArc      []int
	done         []bool
	q            []pqItem
	indeg, order []int
	queue        []int

	// Incremental re-solve state (Resolve). dirty lists the arcs whose
	// cost changed since the flow was last solved (dirtyMark dedups), and
	// warm* pin the (source, sink, supply) problem the retained flow and
	// potentials solve. routed tracks total flow routed since the last
	// Reset so Solve knows whether it started from a pristine network.
	dirty      []Arc
	dirtyMark  []bool
	warm       bool
	warmSrc    int
	warmSink   int
	warmSupply int
	routed     int
	stats      ResolveStats

	// Uniqueness-certificate scratch (tight residual subgraph).
	comp, tHead, tTo, tNext []int
}

// ResolveStats counts Resolve outcomes since construction: Kept retained
// the flow directly, Repaired retained it after a potential-repair pass,
// Fresh fell back to the from-scratch Reset+Solve path.
type ResolveStats struct {
	Kept, Repaired, Fresh int
}

// Stats returns the Resolve outcome counters.
func (g *Graph) Stats() ResolveStats { return g.stats }

// NewGraph returns an empty network with n nodes, numbered 0..n−1.
func NewGraph(n int) *Graph {
	head := make([]int, n)
	for i := range head {
		head[i] = -1
	}
	return &Graph{head: head}
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.head) }

// AddArc adds a directed arc from → to with the given capacity and per-unit
// cost, returning its handle. Capacity must be non-negative and the
// endpoints in range; violations panic since they are construction bugs.
func (g *Graph) AddArc(from, to int, capacity int, cost float64) Arc {
	if from < 0 || from >= len(g.head) || to < 0 || to >= len(g.head) {
		panic(fmt.Sprintf("mcflow: arc (%d → %d) outside node range [0, %d)", from, to, len(g.head)))
	}
	if capacity < 0 {
		panic(fmt.Sprintf("mcflow: negative capacity %d", capacity))
	}
	if math.IsNaN(cost) || math.IsInf(cost, 0) {
		panic(fmt.Sprintf("mcflow: non-finite cost %g", cost))
	}
	id := Arc(len(g.caps))
	g.arcs = append(g.arcs, arc{to: to, cap: capacity, cost: cost, next: g.head[from]})
	g.head[from] = len(g.arcs) - 1
	g.arcs = append(g.arcs, arc{to: from, cap: 0, cost: -cost, next: g.head[to]})
	g.head[to] = len(g.arcs) - 1
	g.caps = append(g.caps, capacity)
	g.dirtyMark = append(g.dirtyMark, false)
	g.warm = false // topology changed: the retained flow no longer applies
	return id
}

// Flow returns the flow currently routed through arc id (0 before Solve).
func (g *Graph) Flow(id Arc) int {
	return g.caps[id] - g.arcs[2*id].cap
}

// Reset restores every arc's residual capacity to its construction value
// (forward = capacity, reverse = 0), erasing all routed flow so the graph
// can be solved afresh. Costs are kept. Together with SetCost this lets a
// caller reuse one network across solves that differ only in arc costs —
// the dual-reward updates of the caching subproblem P1. Reset also clears
// the incremental bookkeeping (dirty arcs, warm state), so the next solve
// starts from the same state as a freshly constructed graph.
func (g *Graph) Reset() {
	for i, c := range g.caps {
		g.arcs[2*i].cap = c
		g.arcs[2*i+1].cap = 0
	}
	g.routed = 0
	g.warm = false
	g.clearDirty()
}

// SetCost replaces the cost of arc id (and of its residual reverse). A
// call that does not change the stored bits is a no-op; a changing call
// on a graph holding a solved flow records the arc on the dirty list
// consumed by Resolve. Call it only between solves: changing costs
// mid-solve corrupts the potentials.
func (g *Graph) SetCost(id Arc, cost float64) {
	if math.IsNaN(cost) || math.IsInf(cost, 0) {
		panic(fmt.Sprintf("mcflow: non-finite cost %g", cost))
	}
	if g.arcs[2*id].cost == cost {
		return
	}
	g.arcs[2*id].cost = cost
	g.arcs[2*id+1].cost = -cost
	if g.warm && !g.dirtyMark[id] {
		g.dirtyMark[id] = true
		g.dirty = append(g.dirty, id)
	}
}

// clearDirty empties the dirty-arc list and its dedup marks.
func (g *Graph) clearDirty() {
	for _, id := range g.dirty {
		g.dirtyMark[id] = false
	}
	g.dirty = g.dirty[:0]
}

// scratch sizes the reusable solver buffers to the node count.
func (g *Graph) scratch() {
	n := len(g.head)
	if cap(g.dist) < n {
		g.pi = make([]float64, n)
		g.dist = make([]float64, n)
		g.prevArc = make([]int, n)
		g.done = make([]bool, n)
		g.indeg = make([]int, n)
	} else {
		g.pi = g.pi[:n]
		g.dist = g.dist[:n]
		g.prevArc = g.prevArc[:n]
		g.done = g.done[:n]
		g.indeg = g.indeg[:n]
	}
}

// Result summarises a solve.
type Result struct {
	// Cost is the total cost of the routed flow.
	Cost float64
	// Flow is the amount actually routed (equals the requested supply on
	// success).
	Flow int
}

// Solve routes supply units from source to sink at minimum cost. It
// mutates the graph's residual capacities; call Flow to read per-arc flow
// afterwards. Calling Solve again routes additional flow on top of the
// existing one (the residual graph is re-potentialised first).
func (g *Graph) Solve(source, sink, supply int) (*Result, error) {
	if source < 0 || source >= len(g.head) || sink < 0 || sink >= len(g.head) {
		return nil, fmt.Errorf("mcflow: endpoints (%d, %d) outside node range [0, %d)", source, sink, len(g.head))
	}
	if supply < 0 {
		return nil, fmt.Errorf("mcflow: negative supply %d", supply)
	}
	if supply == 0 {
		return &Result{}, nil
	}

	// An additive solve on an unchanged-cost warm graph extends the warm
	// problem; anything else re-establishes warmth only when the network
	// held no flow at all (the Reset+Solve and Resolve-fallback paths).
	routedBefore := g.routed
	extendsWarm := g.warm && g.warmSrc == source && g.warmSink == sink && len(g.dirty) == 0
	g.warm = false
	g.clearDirty()

	g.scratch()
	pi, err := g.initialPotentials(source)
	if err != nil {
		return nil, err
	}

	res := &Result{}
	dist, prevArc := g.dist, g.prevArc
	for res.Flow < supply {
		ok := g.dijkstra(source, pi, dist, prevArc)
		if !ok {
			g.routed += res.Flow
			return nil, errors.New("mcflow: internal error: negative reduced cost (corrupted potentials)")
		}
		if math.IsInf(dist[sink], 1) {
			g.routed += res.Flow
			return nil, fmt.Errorf("%w: routed %d of %d", ErrInfeasible, res.Flow, supply)
		}
		// Update potentials, capping unreachable nodes at the sink distance
		// so reduced costs stay non-negative on arcs that can still matter.
		dSink := dist[sink]
		for v := range pi {
			pi[v] += math.Min(dist[v], dSink)
		}
		// Bottleneck along the path.
		bottleneck := supply - res.Flow
		for v := sink; v != source; {
			a := &g.arcs[prevArc[v]]
			if a.cap < bottleneck {
				bottleneck = a.cap
			}
			v = g.arcs[prevArc[v]^1].to
		}
		// Augment.
		for v := sink; v != source; {
			fwd := &g.arcs[prevArc[v]]
			rev := &g.arcs[prevArc[v]^1]
			fwd.cap -= bottleneck
			rev.cap += bottleneck
			res.Cost += fwd.cost * float64(bottleneck)
			v = rev.to
		}
		res.Flow += bottleneck
	}
	g.routed += res.Flow
	if routedBefore == 0 {
		g.warm, g.warmSrc, g.warmSink, g.warmSupply = true, source, sink, res.Flow
	} else if extendsWarm {
		g.warm = true
		g.warmSupply += res.Flow
	}
	return res, nil
}

// Resolve re-solves the network after SetCost updates, with results
// equivalent to Reset followed by Solve: per-arc flows are bit-identical
// to a from-scratch solve. When the retained flow can be certified as the
// unique optimum under the updated costs it is kept as is — O(arcs)
// instead of a full successive-shortest-paths run — otherwise Resolve
// falls back to exactly the Reset+Solve path. See the package comment for
// the full reuse contract.
func (g *Graph) Resolve(source, sink, supply int) (Result, error) {
	if source < 0 || source >= len(g.head) || sink < 0 || sink >= len(g.head) {
		return Result{}, fmt.Errorf("mcflow: endpoints (%d, %d) outside node range [0, %d)", source, sink, len(g.head))
	}
	if supply < 0 {
		return Result{}, fmt.Errorf("mcflow: negative supply %d", supply)
	}
	if g.warm && g.warmSrc == source && g.warmSink == sink && g.warmSupply == supply {
		g.scratch()
		repaired := false
		feasible := g.dirtyFeasible()
		if !feasible {
			feasible = g.repairPotentials()
			repaired = true
		}
		if feasible && g.tightUnique() {
			if repaired {
				g.stats.Repaired++
			} else {
				g.stats.Kept++
			}
			g.clearDirty()
			return g.canonicalResult(supply), nil
		}
	}
	g.stats.Fresh++
	return g.resolveFresh(source, sink, supply)
}

// resolveFresh zeroes the routed flow and solves from scratch — the
// fallback (and baseline-equivalent) path of Resolve.
func (g *Graph) resolveFresh(source, sink, supply int) (Result, error) {
	for i, c := range g.caps {
		g.arcs[2*i].cap = c
		g.arcs[2*i+1].cap = 0
	}
	g.routed = 0
	g.warm = false
	g.clearDirty()
	res, err := g.Solve(source, sink, supply)
	if err != nil {
		return Result{}, err
	}
	return *res, nil
}

// dirtyFeasible reports whether every dirty arc's residual directions
// still have non-negative reduced cost under the retained potentials.
// Costs of clean arcs did not change, so their reduced costs carry over
// from the last solve; dirty arcs are the only ones that can break the
// optimality invariant.
func (g *Graph) dirtyFeasible() bool {
	for _, id := range g.dirty {
		e := 2 * int(id)
		u, v := g.arcs[e^1].to, g.arcs[e].to
		if g.arcs[e].cap > 0 && g.arcs[e].cost+g.pi[u]-g.pi[v] < 0 {
			return false
		}
		if g.arcs[e^1].cap > 0 && g.arcs[e^1].cost+g.pi[v]-g.pi[u] < 0 {
			return false
		}
	}
	return true
}

// repairPotentials relaxes the retained potentials over the residual
// graph until every residual arc's reduced cost is (numerically)
// non-negative again. The pass count is bounded: cost perturbations from
// a dual update are localized, so violations that have not settled after
// a few sweeps signal a structurally different optimum — at which point a
// fresh solve is the cheaper answer anyway.
func (g *Graph) repairPotentials() bool {
	const maxPasses = 16
	n := len(g.head)
	for pass := 0; pass < maxPasses; pass++ {
		changed := false
		for u := 0; u < n; u++ {
			if math.IsInf(g.pi[u], 1) {
				continue
			}
			for e := g.head[u]; e != -1; e = g.arcs[e].next {
				if g.arcs[e].cap == 0 {
					continue
				}
				if d := g.pi[u] + g.arcs[e].cost; d < g.pi[g.arcs[e].to]-1e-12 {
					g.pi[g.arcs[e].to] = d
					changed = true
				}
			}
		}
		if !changed {
			return true
		}
	}
	return false
}

// tightUnique certifies that the retained flow is the unique optimum. Two
// optima differ by a conformal cycle in the residual graph — one that
// never uses both directions of the same arc pair — and such a cycle has
// true cost zero, so (potentials telescoping) every arc on it is tight:
// reduced cost below a tolerance that dwarfs accumulated float error.
// Pairs tight in both directions act as undirected edges (a conformal
// cycle may cross them either way); they are contracted with a union-find
// whose components must stay forests. Single-direction tight arcs then
// must form a DAG over those components. Any violation means an alternate
// optimum could exist and the caller must fall back to a fresh solve —
// the certificate is conservative, never wrong.
func (g *Graph) tightUnique() bool {
	n := len(g.head)
	maxAbs := 0.0
	for i := range g.caps {
		if c := math.Abs(g.arcs[2*i].cost); c > maxAbs {
			maxAbs = c
		}
	}
	for _, p := range g.pi {
		if a := math.Abs(p); a > maxAbs {
			maxAbs = a
		}
	}
	tol := 1e-7 * (1 + maxAbs)

	if cap(g.comp) < n {
		g.comp = make([]int, n)
		g.tHead = make([]int, n)
	}
	comp := g.comp[:n]
	tHead := g.tHead[:n]
	for i := range comp {
		comp[i] = i
		tHead[i] = -1
	}
	find := func(x int) int {
		for comp[x] != x {
			comp[x] = comp[comp[x]]
			x = comp[x]
		}
		return x
	}
	tight := func(e, u, v int) bool {
		return g.arcs[e].cap > 0 && g.arcs[e].cost+g.pi[u]-g.pi[v] < tol
	}

	// Pass 1: contract pairs tight in both directions; a union closing a
	// cycle is a zero-cost alternate already.
	for i := range g.caps {
		e := 2 * i
		u, v := g.arcs[e^1].to, g.arcs[e].to
		if tight(e, u, v) && tight(e^1, v, u) {
			ru, rv := find(u), find(v)
			if ru == rv {
				return false
			}
			comp[ru] = rv
		}
	}
	// Pass 2: single-direction tight arcs between components.
	g.tTo = g.tTo[:0]
	g.tNext = g.tNext[:0]
	for i := range g.caps {
		e := 2 * i
		u, v := g.arcs[e^1].to, g.arcs[e].to
		fwd, rev := tight(e, u, v), tight(e^1, v, u)
		if fwd == rev {
			continue // both: contracted above; neither: cannot sit on a zero-cost cycle
		}
		if rev {
			u, v = v, u
		}
		cu, cv := find(u), find(v)
		if cu == cv {
			return false
		}
		g.tTo = append(g.tTo, cv)
		g.tNext = append(g.tNext, tHead[cu])
		tHead[cu] = len(g.tTo) - 1
	}
	// Kahn over the contracted graph: acyclic ⇒ no conformal tight cycle.
	indeg := g.indeg[:n]
	for i := range indeg {
		indeg[i] = 0
	}
	for _, cv := range g.tTo {
		indeg[cv]++
	}
	if cap(g.queue) < n {
		g.queue = make([]int, 0, n)
	}
	queue := g.queue[:0]
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	processed := 0
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		processed++
		for e := tHead[u]; e != -1; e = g.tNext[e] {
			v := g.tTo[e]
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	return processed == n
}

// canonicalResult rebuilds a Result from the retained flow, accumulating
// cost in ascending arc order so the value does not depend on the
// augmentation history that produced the flow.
func (g *Graph) canonicalResult(supply int) Result {
	res := Result{Flow: supply}
	for i, c := range g.caps {
		if f := c - g.arcs[2*i].cap; f != 0 {
			res.Cost += g.arcs[2*i].cost * float64(f)
		}
	}
	return res
}

// initialPotentials computes shortest-path potentials from source over the
// original arcs, by DAG relaxation when possible and Bellman–Ford otherwise.
func (g *Graph) initialPotentials(source int) ([]float64, error) {
	if order, ok := g.topoOrder(); ok {
		return g.dagPotentials(source, order), nil
	}
	return g.bellmanFord(source)
}

// topoOrder returns a topological order of nodes over residual arcs with
// positive capacity, or ok = false if the residual graph has a cycle (which
// is always the case after at least one augmentation). The returned slice
// aliases graph scratch.
func (g *Graph) topoOrder() ([]int, bool) {
	n := len(g.head)
	indeg := g.indeg
	for i := range indeg {
		indeg[i] = 0
	}
	for u := 0; u < n; u++ {
		for e := g.head[u]; e != -1; e = g.arcs[e].next {
			if g.arcs[e].cap > 0 {
				indeg[g.arcs[e].to]++
			}
		}
	}
	if cap(g.order) < n {
		g.order = make([]int, 0, n)
		g.queue = make([]int, 0, n)
	}
	order := g.order[:0]
	queue := g.queue[:0]
	for v, d := range indeg {
		if d == 0 {
			queue = append(queue, v)
		}
	}
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		order = append(order, u)
		for e := g.head[u]; e != -1; e = g.arcs[e].next {
			if g.arcs[e].cap > 0 {
				v := g.arcs[e].to
				indeg[v]--
				if indeg[v] == 0 {
					queue = append(queue, v)
				}
			}
		}
	}
	return order, len(order) == n
}

// dagPotentials relaxes arcs in topological order. Nodes unreachable from
// the source keep potential 0, which is safe because no residual arc into
// them exists yet. The returned slice aliases graph scratch.
func (g *Graph) dagPotentials(source int, order []int) []float64 {
	dist := g.pi
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[source] = 0
	for _, u := range order {
		if math.IsInf(dist[u], 1) {
			continue
		}
		for e := g.head[u]; e != -1; e = g.arcs[e].next {
			if g.arcs[e].cap == 0 {
				continue
			}
			if d := dist[u] + g.arcs[e].cost; d < dist[g.arcs[e].to] {
				dist[g.arcs[e].to] = d
			}
		}
	}
	for i, d := range dist {
		if math.IsInf(d, 1) {
			dist[i] = 0
		}
	}
	return dist
}

// bellmanFord computes potentials on general graphs and detects negative
// cycles reachable from the source. The returned slice aliases graph
// scratch.
func (g *Graph) bellmanFord(source int) ([]float64, error) {
	n := len(g.head)
	dist := g.pi
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[source] = 0
	for iter := 0; iter < n; iter++ {
		changed := false
		for u := 0; u < n; u++ {
			if math.IsInf(dist[u], 1) {
				continue
			}
			for e := g.head[u]; e != -1; e = g.arcs[e].next {
				if g.arcs[e].cap == 0 {
					continue
				}
				if d := dist[u] + g.arcs[e].cost; d < dist[g.arcs[e].to]-1e-12 {
					dist[g.arcs[e].to] = d
					changed = true
				}
			}
		}
		if !changed {
			for i, d := range dist {
				if math.IsInf(d, 1) {
					dist[i] = 0
				}
			}
			return dist, nil
		}
	}
	return nil, ErrNegativeCycle
}

// pqItem is a priority-queue entry for Dijkstra.
type pqItem struct {
	node int
	dist float64
}

// pqPush appends it and sifts it up. The sift replicates container/heap's
// order of comparisons and swaps exactly, so equal-distance tie-breaks —
// and therefore the augmenting paths Dijkstra selects — are unchanged from
// the previous container/heap-based implementation.
func pqPush(q []pqItem, it pqItem) []pqItem {
	q = append(q, it)
	j := len(q) - 1
	for {
		i := (j - 1) / 2 // parent
		if i == j || !(q[j].dist < q[i].dist) {
			break
		}
		q[i], q[j] = q[j], q[i]
		j = i
	}
	return q
}

// pqPop removes and returns the minimum element, sifting down in
// container/heap's exact order (swap root with last, sift over the
// shortened prefix, then strip the last element).
func pqPop(q []pqItem) (pqItem, []pqItem) {
	n := len(q) - 1
	q[0], q[n] = q[n], q[0]
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && q[j2].dist < q[j1].dist {
			j = j2
		}
		if !(q[j].dist < q[i].dist) {
			break
		}
		q[i], q[j] = q[j], q[i]
		i = j
	}
	return q[n], q[:n]
}

// dijkstra computes reduced-cost shortest paths over the residual graph.
// It fills dist (potential-adjusted) and prevArc, returning false if a
// negative reduced cost is detected (which indicates corrupted potentials).
func (g *Graph) dijkstra(source int, pi, dist []float64, prevArc []int) bool {
	for i := range dist {
		dist[i] = math.Inf(1)
		prevArc[i] = -1
	}
	dist[source] = 0
	done := g.done
	for i := range done {
		done[i] = false
	}
	q := append(g.q[:0], pqItem{node: source})
	for len(q) > 0 {
		var it pqItem
		it, q = pqPop(q)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		for e := g.head[u]; e != -1; e = g.arcs[e].next {
			a := g.arcs[e]
			if a.cap == 0 {
				continue
			}
			rc := a.cost + pi[u] - pi[a.to]
			if rc < -1e-7 {
				g.q = q
				return false
			}
			if rc < 0 {
				rc = 0 // clamp rounding noise
			}
			if d := dist[u] + rc; d < dist[a.to]-1e-15 {
				dist[a.to] = d
				prevArc[a.to] = e
				q = pqPush(q, pqItem{node: a.to, dist: d})
			}
		}
	}
	g.q = q
	return true
}
