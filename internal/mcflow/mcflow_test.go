package mcflow

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"

	"edgecache/internal/lp"
)

func TestSingleArc(t *testing.T) {
	g := NewGraph(2)
	a := g.AddArc(0, 1, 3, 2.5)
	res, err := g.Solve(0, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != 3 || math.Abs(res.Cost-7.5) > 1e-12 {
		t.Fatalf("got flow %d cost %g, want 3, 7.5", res.Flow, res.Cost)
	}
	if g.Flow(a) != 3 {
		t.Fatalf("arc flow = %d, want 3", g.Flow(a))
	}
}

func TestChoosesCheaperPath(t *testing.T) {
	// Two parallel 0→1 paths via 2 and 3: costs 5 and 1, capacities 1 each.
	g := NewGraph(4)
	exp := g.AddArc(0, 2, 1, 4)
	g.AddArc(2, 1, 1, 1)
	cheap := g.AddArc(0, 3, 1, 0.5)
	g.AddArc(3, 1, 1, 0.5)
	res, err := g.Solve(0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Cost-1) > 1e-12 {
		t.Fatalf("cost = %g, want 1", res.Cost)
	}
	if g.Flow(cheap) != 1 || g.Flow(exp) != 0 {
		t.Fatalf("flows: cheap %d, expensive %d", g.Flow(cheap), g.Flow(exp))
	}
	// Second unit must take the expensive path.
	res2, err := g.Solve(0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res2.Cost-5) > 1e-12 {
		t.Fatalf("second unit cost = %g, want 5", res2.Cost)
	}
}

func TestNegativeCosts(t *testing.T) {
	// A reward arc: routing through it is cheaper than the direct path.
	g := NewGraph(3)
	g.AddArc(0, 1, 1, 1)
	g.AddArc(0, 2, 1, 2)
	g.AddArc(2, 1, 1, -5)
	res, err := g.Solve(0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Cost-(-3)) > 1e-12 {
		t.Fatalf("cost = %g, want -3", res.Cost)
	}
}

func TestReroutingThroughResidual(t *testing.T) {
	// Classic example where the second augmentation must undo part of the
	// first via a residual arc.
	//   0→1 (cap 1, cost 1), 0→2 (cap 1, cost 10)
	//   1→2 (cap 1, cost 1), 1→3 (cap 1, cost 10), 2→3 (cap 2, cost 1)
	// One unit: 0→1→2→3 cost 3. Two units: 0→1→3 + 0→2→3 = 11+11... or
	// 0→1→2→3 + 0→2... cap(2→3)=2 so 0→2→3 cost 11 → total 14 vs
	// 0→1→3 (12) + 0→2→3 (11) = 23. Optimum keeps the first path: 14.
	g := NewGraph(4)
	g.AddArc(0, 1, 1, 1)
	g.AddArc(0, 2, 1, 10)
	g.AddArc(1, 2, 1, 1)
	g.AddArc(1, 3, 1, 10)
	g.AddArc(2, 3, 2, 1)
	res, err := g.Solve(0, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Cost-14) > 1e-12 {
		t.Fatalf("cost = %g, want 14", res.Cost)
	}
}

func TestInfeasible(t *testing.T) {
	g := NewGraph(2)
	g.AddArc(0, 1, 1, 1)
	if _, err := g.Solve(0, 1, 2); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestZeroSupply(t *testing.T) {
	g := NewGraph(2)
	g.AddArc(0, 1, 1, 1)
	res, err := g.Solve(0, 1, 0)
	if err != nil || res.Flow != 0 || res.Cost != 0 {
		t.Fatalf("got (%v, %v), want zero result", res, err)
	}
}

func TestBadArguments(t *testing.T) {
	g := NewGraph(2)
	g.AddArc(0, 1, 1, 1)
	if _, err := g.Solve(-1, 1, 1); err == nil {
		t.Fatal("accepted negative source")
	}
	if _, err := g.Solve(0, 5, 1); err == nil {
		t.Fatal("accepted out-of-range sink")
	}
	if _, err := g.Solve(0, 1, -1); err == nil {
		t.Fatal("accepted negative supply")
	}
}

func TestAddArcPanics(t *testing.T) {
	g := NewGraph(2)
	for name, fn := range map[string]func(){
		"bad node": func() { g.AddArc(0, 9, 1, 0) },
		"negative": func() { g.AddArc(0, 1, -1, 0) },
		"nan cost": func() { g.AddArc(0, 1, 1, math.NaN()) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: AddArc did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestCyclicGraphUsesBellmanFord(t *testing.T) {
	// A cycle 1→2→1 with non-negative total cost plus a path 0→1→3.
	g := NewGraph(4)
	g.AddArc(0, 1, 2, 1)
	g.AddArc(1, 2, 1, 1)
	g.AddArc(2, 1, 1, 1)
	g.AddArc(1, 3, 2, 1)
	res, err := g.Solve(0, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Cost-4) > 1e-12 {
		t.Fatalf("cost = %g, want 4", res.Cost)
	}
}

func TestNegativeCycleDetected(t *testing.T) {
	g := NewGraph(3)
	g.AddArc(0, 1, 1, 1)
	g.AddArc(1, 2, 1, -3)
	g.AddArc(2, 1, 1, 1)
	if _, err := g.Solve(0, 1, 1); !errors.Is(err, ErrNegativeCycle) {
		t.Fatalf("err = %v, want ErrNegativeCycle", err)
	}
}

// randomDAG builds a layered random DAG with integer capacities and float
// costs (possibly negative), returning also the dense arc list for the LP
// cross-check.
type testArc struct {
	from, to, cap int
	cost          float64
}

func randomDAG(r *rand.Rand) (nodes int, arcs []testArc) {
	layers := 2 + r.IntN(3)   // 2..4 layers
	perLayer := 1 + r.IntN(3) // 1..3 nodes per layer
	nodes = layers*perLayer + 2
	src, snk := nodes-2, nodes-1
	id := func(l, i int) int { return l*perLayer + i }
	for i := 0; i < perLayer; i++ {
		arcs = append(arcs, testArc{src, id(0, i), 1 + r.IntN(3), 0})
		arcs = append(arcs, testArc{id(layers-1, i), snk, 1 + r.IntN(3), 0})
	}
	for l := 0; l+1 < layers; l++ {
		for i := 0; i < perLayer; i++ {
			for j := 0; j < perLayer; j++ {
				if r.Float64() < 0.8 {
					arcs = append(arcs, testArc{
						id(l, i), id(l+1, j),
						1 + r.IntN(3),
						math.Round((r.Float64()*8-2)*4) / 4, // −2..6, quarter steps
					})
				}
			}
		}
	}
	return nodes, arcs
}

// lpMinCostFlow solves the same flow problem as an LP: variables are arc
// flows, conservation as equalities, capacities as ≤ rows.
func lpMinCostFlow(nodes int, arcs []testArc, src, snk, supply int) (float64, error) {
	n := len(arcs)
	p := lp.NewProblem(n)
	for j, a := range arcs {
		p.C[j] = a.cost
		row := make([]float64, n)
		row[j] = 1
		p.AddConstraint(row, lp.LE, float64(a.cap))
	}
	for v := 0; v < nodes; v++ {
		row := make([]float64, n)
		for j, a := range arcs {
			if a.from == v {
				row[j] += 1
			}
			if a.to == v {
				row[j] -= 1
			}
		}
		rhs := 0.0
		switch v {
		case src:
			rhs = float64(supply)
		case snk:
			rhs = -float64(supply)
		}
		p.AddConstraint(row, lp.EQ, rhs)
	}
	sol, err := p.Solve(lp.Options{})
	if err != nil {
		return 0, err
	}
	return sol.Objective, nil
}

// TestRandomAgainstLP cross-checks successive shortest paths against the LP
// formulation on random DAGs, including flow-conservation verification.
func TestRandomAgainstLP(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	checked := 0
	for trial := 0; trial < 80; trial++ {
		nodes, arcs := randomDAG(rng)
		src, snk := nodes-2, nodes-1

		// Find max feasible supply first (cost-free probe on a copy).
		probe := NewGraph(nodes)
		for _, a := range arcs {
			probe.AddArc(a.from, a.to, a.cap, 0)
		}
		maxFlow := 0
		for {
			if _, err := probe.Solve(src, snk, 1); err != nil {
				break
			}
			maxFlow++
		}
		if maxFlow == 0 {
			continue
		}
		supply := 1 + rng.IntN(maxFlow)

		g := NewGraph(nodes)
		ids := make([]Arc, len(arcs))
		for i, a := range arcs {
			ids[i] = g.AddArc(a.from, a.to, a.cap, a.cost)
		}
		res, err := g.Solve(src, snk, supply)
		if err != nil {
			t.Fatalf("trial %d: Solve: %v", trial, err)
		}

		want, err := lpMinCostFlow(nodes, arcs, src, snk, supply)
		if err != nil {
			t.Fatalf("trial %d: LP: %v", trial, err)
		}
		if math.Abs(res.Cost-want) > 1e-6*(1+math.Abs(want)) {
			t.Fatalf("trial %d: flow cost %g, LP cost %g", trial, res.Cost, want)
		}

		// Conservation at internal nodes and cost consistency.
		net := make([]int, nodes)
		var cost float64
		for i, a := range arcs {
			f := g.Flow(ids[i])
			if f < 0 || f > a.cap {
				t.Fatalf("trial %d: arc %d flow %d outside [0, %d]", trial, i, f, a.cap)
			}
			net[a.from] += f
			net[a.to] -= f
			cost += float64(f) * a.cost
		}
		for v := 0; v < nodes; v++ {
			want := 0
			if v == src {
				want = supply
			} else if v == snk {
				want = -supply
			}
			if net[v] != want {
				t.Fatalf("trial %d: conservation violated at node %d: %d", trial, v, net[v])
			}
		}
		if math.Abs(cost-res.Cost) > 1e-9 {
			t.Fatalf("trial %d: per-arc cost %g != reported %g", trial, cost, res.Cost)
		}
		checked++
	}
	if checked < 40 {
		t.Fatalf("only %d random trials had positive max flow; generator too sparse", checked)
	}
}

// TestResolveKeepsOnSafeCostIncrease pins the incremental fast path: a
// cost increase on an arc carrying no flow leaves every dirty reduced
// cost non-negative and the tight subgraph acyclic, so Resolve must keep
// the routed flow without re-running successive shortest paths.
func TestResolveKeepsOnSafeCostIncrease(t *testing.T) {
	g := NewGraph(4)
	a := g.AddArc(0, 1, 1, 1)
	b := g.AddArc(1, 3, 1, 1)
	c := g.AddArc(0, 2, 1, 5)
	d := g.AddArc(2, 3, 1, 5)
	if _, err := g.Solve(0, 3, 1); err != nil {
		t.Fatal(err)
	}
	g.SetCost(c, 6)
	res, err := g.Resolve(0, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != 1 || math.Abs(res.Cost-2) > 1e-12 {
		t.Fatalf("got flow %d cost %g, want 1, 2", res.Flow, res.Cost)
	}
	if g.Flow(a) != 1 || g.Flow(b) != 1 || g.Flow(c) != 0 || g.Flow(d) != 0 {
		t.Fatalf("flows after keep: a=%d b=%d c=%d d=%d", g.Flow(a), g.Flow(b), g.Flow(c), g.Flow(d))
	}
	if st := g.Stats(); st.Kept != 1 || st.Fresh != 0 {
		t.Fatalf("stats = %+v, want exactly one kept resolve", st)
	}
	// A second Resolve with no cost change must keep again.
	if _, err := g.Resolve(0, 3, 1); err != nil {
		t.Fatal(err)
	}
	if st := g.Stats(); st.Kept != 2 {
		t.Fatalf("stats after no-op resolve = %+v, want Kept=2", st)
	}
}

// TestResolveFallsBackOnProblemChange: a Resolve for a different supply
// (or endpoints) than the retained flow solves cannot reuse it.
func TestResolveFallsBackOnProblemChange(t *testing.T) {
	g := NewGraph(3)
	g.AddArc(0, 1, 2, 1)
	g.AddArc(1, 2, 2, 1)
	if _, err := g.Solve(0, 2, 1); err != nil {
		t.Fatal(err)
	}
	res, err := g.Resolve(0, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != 2 || math.Abs(res.Cost-4) > 1e-12 {
		t.Fatalf("got flow %d cost %g, want 2, 4", res.Flow, res.Cost)
	}
	if st := g.Stats(); st.Fresh != 1 || st.Kept != 0 {
		t.Fatalf("stats = %+v, want one fresh resolve", st)
	}
}

// TestResetClearsDirtyBookkeeping: Reset must drop the dirty list and the
// warm state, so a post-Reset SetCost is not misattributed to a stale
// flow (the satellite fix of PR 8).
func TestResetClearsDirtyBookkeeping(t *testing.T) {
	g := NewGraph(2)
	a := g.AddArc(0, 1, 1, 1)
	if _, err := g.Solve(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	g.SetCost(a, 2)
	if len(g.dirty) != 1 || !g.dirtyMark[a] {
		t.Fatalf("dirty list not recorded while warm: %v", g.dirty)
	}
	g.Reset()
	if len(g.dirty) != 0 || g.dirtyMark[a] || g.warm {
		t.Fatalf("Reset left dirty bookkeeping: dirty=%v mark=%v warm=%v", g.dirty, g.dirtyMark[a], g.warm)
	}
	g.SetCost(a, 3)
	if len(g.dirty) != 0 {
		t.Fatal("SetCost recorded dirty arcs on a cold graph")
	}
}

// TestResolveMatchesFresh extends the Reset+SetCost reuse contract to the
// incremental path: across rounds of cost updates — tiny perturbations
// that the keep path should absorb and full re-randomizations that force
// the fallback — Resolve on a reused graph must route exactly the same
// per-arc flows as a freshly built graph, with the cost agreeing to
// within accumulation noise (the kept path sums cost in arc order, the
// fresh path in augmentation order).
func TestResolveMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 21))
	const nodes = 12
	type edge struct{ from, to, cap int }
	var edges []edge
	for u := 0; u < nodes-1; u++ {
		edges = append(edges, edge{u, u + 1, 2 + rng.IntN(3)})
		for extra := 0; extra < 2; extra++ {
			v := u + 1 + rng.IntN(nodes-u-1)
			edges = append(edges, edge{u, v, 1 + rng.IntN(2)})
		}
	}
	costs := make([]float64, len(edges))
	for i := range costs {
		costs[i] = rng.Float64()*10 - 5
	}

	reused := NewGraph(nodes)
	reusedIDs := make([]Arc, len(edges))
	for i, e := range edges {
		reusedIDs[i] = reused.AddArc(e.from, e.to, e.cap, costs[i])
	}
	for round := 0; round < 40; round++ {
		if round > 0 {
			if round%3 == 0 {
				// Full retarget: every cost changes.
				for i := range costs {
					costs[i] = rng.Float64()*10 - 5
				}
			} else {
				// Delta retarget: perturb a few arcs slightly.
				for j := 0; j < 1+rng.IntN(3); j++ {
					i := rng.IntN(len(costs))
					costs[i] += (rng.Float64() - 0.5) * 0.2
				}
			}
			for i := range edges {
				reused.SetCost(reusedIDs[i], costs[i])
			}
		}
		fresh := NewGraph(nodes)
		freshIDs := make([]Arc, len(edges))
		for i, e := range edges {
			freshIDs[i] = fresh.AddArc(e.from, e.to, e.cap, costs[i])
		}
		want, errW := fresh.Solve(0, nodes-1, 2)
		got, errG := reused.Resolve(0, nodes-1, 2)
		if (errW == nil) != (errG == nil) {
			t.Fatalf("round %d: fresh err %v, resolve err %v", round, errW, errG)
		}
		if errW != nil {
			continue
		}
		if got.Flow != want.Flow || math.Abs(got.Cost-want.Cost) > 1e-9*(1+math.Abs(want.Cost)) {
			t.Fatalf("round %d: resolve (cost %v, flow %d) != fresh (cost %v, flow %d)",
				round, got.Cost, got.Flow, want.Cost, want.Flow)
		}
		for i := range edges {
			if reused.Flow(reusedIDs[i]) != fresh.Flow(freshIDs[i]) {
				t.Fatalf("round %d arc %d: resolve flow %d != fresh flow %d",
					round, i, reused.Flow(reusedIDs[i]), fresh.Flow(freshIDs[i]))
			}
		}
	}
	if st := reused.Stats(); st.Kept+st.Repaired == 0 {
		t.Fatalf("incremental path never engaged across perturbation rounds: %+v", st)
	}
}

// TestResetSetCostMatchesFresh checks the graph-reuse contract behind the
// caching workspace: after Reset (and optional SetCost updates) a solved
// graph must behave exactly like a freshly built one — same cost, same flow
// on every arc — across repeated rounds.
func TestResetSetCostMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 9))
	const nodes = 12
	type edge struct{ from, to, cap int }
	var edges []edge
	// Layered DAG (arcs go low → high index) so negative costs are safe.
	for u := 0; u < nodes-1; u++ {
		edges = append(edges, edge{u, u + 1, 2 + rng.IntN(3)})
		for extra := 0; extra < 2; extra++ {
			v := u + 1 + rng.IntN(nodes-u-1)
			edges = append(edges, edge{u, v, 1 + rng.IntN(2)})
		}
	}
	costs := make([]float64, len(edges))

	reused := NewGraph(nodes)
	reusedIDs := make([]Arc, len(edges))
	for i, e := range edges {
		reusedIDs[i] = reused.AddArc(e.from, e.to, e.cap, 0)
	}
	for round := 0; round < 6; round++ {
		for i := range costs {
			costs[i] = rng.Float64()*10 - 5
		}
		fresh := NewGraph(nodes)
		freshIDs := make([]Arc, len(edges))
		for i, e := range edges {
			freshIDs[i] = fresh.AddArc(e.from, e.to, e.cap, costs[i])
		}
		reused.Reset()
		for i := range edges {
			reused.SetCost(reusedIDs[i], costs[i])
		}
		want, errW := fresh.Solve(0, nodes-1, 2)
		got, errG := reused.Solve(0, nodes-1, 2)
		if (errW == nil) != (errG == nil) {
			t.Fatalf("round %d: fresh err %v, reused err %v", round, errW, errG)
		}
		if errW != nil {
			continue
		}
		if got.Cost != want.Cost || got.Flow != want.Flow {
			t.Fatalf("round %d: reused (cost %v, flow %d) != fresh (cost %v, flow %d)",
				round, got.Cost, got.Flow, want.Cost, want.Flow)
		}
		for i := range edges {
			if reused.Flow(reusedIDs[i]) != fresh.Flow(freshIDs[i]) {
				t.Fatalf("round %d arc %d: reused flow %d != fresh flow %d",
					round, i, reused.Flow(reusedIDs[i]), fresh.Flow(freshIDs[i]))
			}
		}
	}
}
