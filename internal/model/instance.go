// Package model defines the joint edge-caching / load-balancing problem of
// Zeng et al., "Joint Online Edge Caching and Load Balancing for Mobile Data
// Offloading in 5G Networks" (ICDCS 2019).
//
// A problem Instance describes one macro base station (BS) serving N small
// base stations (SBS). SBS n has a content cache of CacheCap[n] unit-size
// items (out of a catalogue of K items) and a downlink bandwidth budget
// Bandwidth[n]. Mobile-user class m at SBS n requests content k at mean rate
// λ^t_{m,k} (see Demand). Per slot t a controller chooses
//
//   - a cache placement x^t_{n,k} ∈ {0,1} with Σ_k x^t_{n,k} ≤ CacheCap[n],
//   - a load split y^t_{m,k} ∈ [0,1] (fraction of class-m requests for k
//     served by the SBS; the remainder is served by the BS) with
//     y ≤ x and Σ_{m,k} λ^t_{m,k} y^t_{m,k} ≤ Bandwidth[n],
//
// to minimise Σ_t f_t(Y^t) + g_t(Y^t) + h(X^t, X^{t-1}) where f is the
// quadratic BS operating cost, g the quadratic SBS operating cost and h the
// cache replacement (switching) cost β_n Σ_k (x^t − x^{t−1})⁺.
package model

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Instance is a fully specified joint caching / load-balancing problem over
// a finite horizon. All slices are indexed as documented on each field; an
// Instance is immutable once constructed and safe for concurrent readers.
type Instance struct {
	// N is the number of small base stations.
	N int
	// K is the number of catalogue items (all of unit size, paper §II-A).
	K int
	// T is the number of time slots in the horizon.
	T int
	// Classes[n] is the number of mobile-user classes served by SBS n.
	Classes []int
	// CacheCap[n] is the cache capacity C_n of SBS n, in items.
	CacheCap []int
	// Bandwidth[n] is the per-slot bandwidth budget B_n of SBS n, in the
	// same unit as demand rates (file transmissions per slot).
	Bandwidth []float64
	// OmegaBS[n][m] is the BS transmission weight ω_{m_n} of class m at
	// SBS n (larger for users far from the BS).
	OmegaBS [][]float64
	// OmegaSBS[n][m] is the SBS transmission weight ŵ_{m_n}; the paper's
	// headline setup uses 0 (SBS cost negligible next to BS cost).
	OmegaSBS [][]float64
	// Beta[n] is the per-item cache replacement cost β_n of SBS n.
	Beta []float64
	// Demand holds the request-rate matrices λ^t behind the DemandView
	// contract: dense (*Demand) by default, CSR-style (*SparseDemand) for
	// web-scale catalogues.
	Demand DemandView
	// InitialCache is x^0, the placement in force before slot 0. Nil means
	// an empty cache. When non-nil it must be integral and feasible.
	InitialCache CachePlan
	// Overlay, when non-nil, imposes slot-varying effective capacities
	// B^t_n / C^t_n on top of the base Bandwidth/CacheCap — the view of a
	// faulted world (SBS outages, backhaul degradation; package fault
	// builds these). All feasibility checks validate against the
	// effective values; see BandwidthAt / CacheCapAt.
	Overlay *Overlay
}

// Validate checks internal consistency of the instance: dimensions agree,
// capacities and rates are non-negative, and the initial cache (if any) is
// integral and within capacity. It returns the first problem found.
func (in *Instance) Validate() error {
	switch {
	case in == nil:
		return errors.New("model: nil instance")
	case in.N <= 0:
		return fmt.Errorf("model: N = %d, want > 0", in.N)
	case in.K <= 0:
		return fmt.Errorf("model: K = %d, want > 0", in.K)
	case in.T <= 0:
		return fmt.Errorf("model: T = %d, want > 0", in.T)
	}
	if len(in.Classes) != in.N {
		return fmt.Errorf("model: len(Classes) = %d, want N = %d", len(in.Classes), in.N)
	}
	if len(in.CacheCap) != in.N {
		return fmt.Errorf("model: len(CacheCap) = %d, want N = %d", len(in.CacheCap), in.N)
	}
	if len(in.Bandwidth) != in.N {
		return fmt.Errorf("model: len(Bandwidth) = %d, want N = %d", len(in.Bandwidth), in.N)
	}
	if len(in.Beta) != in.N {
		return fmt.Errorf("model: len(Beta) = %d, want N = %d", len(in.Beta), in.N)
	}
	if len(in.OmegaBS) != in.N {
		return fmt.Errorf("model: len(OmegaBS) = %d, want N = %d", len(in.OmegaBS), in.N)
	}
	if len(in.OmegaSBS) != in.N {
		return fmt.Errorf("model: len(OmegaSBS) = %d, want N = %d", len(in.OmegaSBS), in.N)
	}
	for n := 0; n < in.N; n++ {
		if in.Classes[n] <= 0 {
			return fmt.Errorf("model: Classes[%d] = %d, want > 0", n, in.Classes[n])
		}
		if in.CacheCap[n] < 0 {
			return fmt.Errorf("model: CacheCap[%d] = %d, want ≥ 0", n, in.CacheCap[n])
		}
		if b := in.Bandwidth[n]; b < 0 || math.IsNaN(b) || math.IsInf(b, 0) {
			return fmt.Errorf("model: Bandwidth[%d] = %g, want finite ≥ 0", n, b)
		}
		if b := in.Beta[n]; b < 0 || math.IsNaN(b) || math.IsInf(b, 0) {
			return fmt.Errorf("model: Beta[%d] = %g, want finite ≥ 0", n, b)
		}
		if got := len(in.OmegaBS[n]); got != in.Classes[n] {
			return fmt.Errorf("model: len(OmegaBS[%d]) = %d, want %d", n, got, in.Classes[n])
		}
		if got := len(in.OmegaSBS[n]); got != in.Classes[n] {
			return fmt.Errorf("model: len(OmegaSBS[%d]) = %d, want %d", n, got, in.Classes[n])
		}
		for m := 0; m < in.Classes[n]; m++ {
			if w := in.OmegaBS[n][m]; w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
				return fmt.Errorf("model: OmegaBS[%d][%d] = %g, want finite ≥ 0", n, m, w)
			}
			if w := in.OmegaSBS[n][m]; w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
				return fmt.Errorf("model: OmegaSBS[%d][%d] = %g, want finite ≥ 0", n, m, w)
			}
		}
	}
	if in.Demand == nil {
		return errors.New("model: nil Demand")
	}
	if err := in.Demand.conforms(in); err != nil {
		return err
	}
	if err := in.Demand.CheckValues(); err != nil {
		return err
	}
	if err := in.Overlay.validate(in); err != nil {
		return err
	}
	if in.InitialCache != nil {
		if err := in.checkCacheShape(in.InitialCache); err != nil {
			return fmt.Errorf("model: initial cache: %w", err)
		}
		if !in.InitialCache.IsIntegral(DefaultTol) {
			return errors.New("model: initial cache is not integral")
		}
		if err := in.checkCacheCapacity(in.InitialCache, DefaultTol); err != nil {
			return fmt.Errorf("model: initial cache: %w", err)
		}
	}
	return nil
}

// InitialPlan returns the placement in force before slot 0: a copy of
// InitialCache if set, otherwise an all-zero plan.
func (in *Instance) InitialPlan() CachePlan {
	if in.InitialCache != nil {
		return in.InitialCache.Clone()
	}
	return NewCachePlan(in.N, in.K)
}

// Window returns a sub-instance covering slots [from, to) of in, with the
// supplied placement as the initial cache. The demand of the window may be
// overridden (e.g. with noisy predictions) by passing a non-nil demand of
// matching shape; pass nil to slice the instance's own demand. Windowing is
// how the receding-horizon controllers of package online re-use the offline
// solver on short horizons.
func (in *Instance) Window(from, to int, initial CachePlan, demand DemandView) (*Instance, error) {
	if from < 0 || to > in.T || from >= to {
		return nil, fmt.Errorf("model: window [%d, %d) outside horizon [0, %d)", from, to, in.T)
	}
	d := demand
	if d == nil {
		var err error
		d, err = in.Demand.Slice(from, to)
		if err != nil {
			return nil, err
		}
	}
	w := &Instance{
		N:            in.N,
		K:            in.K,
		T:            to - from,
		Classes:      in.Classes,
		CacheCap:     in.CacheCap,
		Bandwidth:    in.Bandwidth,
		OmegaBS:      in.OmegaBS,
		OmegaSBS:     in.OmegaSBS,
		Beta:         in.Beta,
		Demand:       d,
		InitialCache: initial,
		Overlay:      in.sliceOverlay(from, to),
	}
	if err := w.Validate(); err != nil {
		return nil, fmt.Errorf("model: window [%d, %d): %w", from, to, err)
	}
	return w, nil
}

// Candidates returns the sorted set of contents that can matter to SBS n
// anywhere in the horizon: every item with positive demand in some slot,
// plus every initially cached item. The second part is what keeps
// eviction and β-refill accounting honest — a cached-but-cold item must
// stay a candidate so the solver can charge for (or decline) keeping it.
// Items outside the candidate set can never profitably be cached (fetching
// costs β ≥ 0 and earns nothing), so pruning solver state to this set
// preserves optimal placements and dual bounds.
func (in *Instance) Candidates(n int) []int {
	set := make(map[int]struct{})
	for t := 0; t < in.T; t++ {
		for _, k := range in.Demand.ActiveItems(t, n) {
			set[k] = struct{}{}
		}
	}
	if in.InitialCache != nil {
		for k, v := range in.InitialCache[n] {
			if v >= 0.5 {
				set[k] = struct{}{}
			}
		}
	}
	items := make([]int, 0, len(set))
	for k := range set {
		items = append(items, k)
	}
	sort.Ints(items)
	return items
}
