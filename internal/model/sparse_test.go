package model

import (
	"math/rand/v2"
	"reflect"
	"testing"
)

// randomPair builds a sparse demand and its dense twin with identical
// values: roughly one coordinate in four is active.
func randomPair(t *testing.T, seed uint64) (*SparseDemand, *Demand) {
	t.Helper()
	classes := []int{3, 2}
	horizon, k := 4, 7
	sp := NewSparseDemand(horizon, classes, k)
	dn := NewDemand(horizon, classes, k)
	rng := rand.New(rand.NewPCG(seed, 99))
	for tt := 0; tt < horizon; tt++ {
		for n := range classes {
			for m := 0; m < classes[n]; m++ {
				for kk := 0; kk < k; kk++ {
					if rng.Float64() < 0.25 {
						v := 1 + 10*rng.Float64()
						sp.Set(tt, n, m, kk, v)
						dn.Set(tt, n, m, kk, v)
					}
				}
			}
		}
	}
	return sp, dn
}

func TestSparseDemandMatchesDense(t *testing.T) {
	sp, dn := randomPair(t, 5)
	if sp.T() != dn.T() || sp.N() != dn.N() || sp.K() != dn.K() {
		t.Fatalf("shape mismatch: sparse (%d,%d,%d) dense (%d,%d,%d)",
			sp.T(), sp.N(), sp.K(), dn.T(), dn.N(), dn.K())
	}
	for tt := 0; tt < sp.T(); tt++ {
		for n := 0; n < sp.N(); n++ {
			if got, want := sp.SlotTotal(tt, n), dn.SlotTotal(tt, n); got != want {
				t.Fatalf("SlotTotal(%d,%d) = %g, dense %g", tt, n, got, want)
			}
			for m := 0; m < sp.Classes()[n]; m++ {
				for kk := 0; kk < sp.K(); kk++ {
					if got, want := sp.At(tt, n, m, kk), dn.At(tt, n, m, kk); got != want {
						t.Fatalf("At(%d,%d,%d,%d) = %g, dense %g", tt, n, m, kk, got, want)
					}
				}
			}
			if got, want := sp.ActiveItems(tt, n), dn.ActiveItems(tt, n); !reflect.DeepEqual(got, want) {
				t.Fatalf("ActiveItems(%d,%d) = %v, dense %v", tt, n, got, want)
			}
			if got, want := sp.CopySlot(nil, tt, n), dn.CopySlot(nil, tt, n); !reflect.DeepEqual(got, want) {
				t.Fatalf("CopySlot(%d,%d) diverges", tt, n)
			}
		}
	}
	for kk := 0; kk < sp.K(); kk++ {
		if got, want := sp.ContentTotal(1, 0, kk), dn.ContentTotal(1, 0, kk); got != want {
			t.Fatalf("ContentTotal(1,0,%d) = %g, dense %g", kk, got, want)
		}
	}
}

// TestSparseForEachActiveOrder pins the iteration contract both
// implementations share: class-major, contents ascending, zero rates
// skipped — the order every bit-exactness argument in the solvers leans
// on.
func TestSparseForEachActiveOrder(t *testing.T) {
	sp, dn := randomPair(t, 11)
	type visit struct {
		m, k int
		v    float64
	}
	for tt := 0; tt < sp.T(); tt++ {
		for n := 0; n < sp.N(); n++ {
			var got, want []visit
			sp.ForEachActive(tt, n, func(m, k int, v float64) { got = append(got, visit{m, k, v}) })
			dn.ForEachActive(tt, n, func(m, k int, v float64) { want = append(want, visit{m, k, v}) })
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("visit sequence (%d,%d): sparse %v dense %v", tt, n, got, want)
			}
			for i := 1; i < len(got); i++ {
				prev, cur := got[i-1], got[i]
				if cur.m < prev.m || (cur.m == prev.m && cur.k <= prev.k) {
					t.Fatalf("visit order violated at (%d,%d): %v then %v", tt, n, prev, cur)
				}
			}
		}
	}
}

// TestSparseSliceStaysSparse is the regression test for the satellite
// bugfix: Slice (and Clone and Map) on a sparse view must stay sparse —
// densifying a web-scale window would defeat the representation exactly
// where it matters, inside the receding-horizon window extraction.
func TestSparseSliceStaysSparse(t *testing.T) {
	sp, dn := randomPair(t, 23)
	sl, err := sp.Slice(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	sub, ok := sl.(*SparseDemand)
	if !ok {
		t.Fatalf("Slice returned %T, want *SparseDemand", sl)
	}
	if sub.NNZ() > sp.NNZ() {
		t.Fatalf("slice has %d stored entries, parent only %d", sub.NNZ(), sp.NNZ())
	}
	for tt := 0; tt < 2; tt++ {
		for n := 0; n < sp.N(); n++ {
			for m := 0; m < sp.Classes()[n]; m++ {
				for kk := 0; kk < sp.K(); kk++ {
					if got, want := sub.At(tt, n, m, kk), dn.At(tt+1, n, m, kk); got != want {
						t.Fatalf("slice At(%d,%d,%d,%d) = %g, want %g", tt, n, m, kk, got, want)
					}
				}
			}
		}
	}

	if _, ok := sp.Clone().(*SparseDemand); !ok {
		t.Fatal("Clone densified the sparse view")
	}
	cl := sp.Clone().(*SparseDemand)
	cl.Set(0, 0, 0, 0, 42)
	if sp.At(0, 0, 0, 0) == 42 {
		t.Fatal("Clone shares storage with its parent")
	}

	mp, ok := sp.Clone().Map(func(t, n, m, k int, v float64) float64 { return 2 * v }).(*SparseDemand)
	if !ok {
		t.Fatal("Map densified the sparse view")
	}
	if got, want := mp.NNZ(), sp.NNZ(); got != want {
		t.Fatalf("Map changed stored-entry count: %d vs %d", got, want)
	}
}

func TestDensifyMatches(t *testing.T) {
	sp, dn := randomPair(t, 31)
	got := Densify(sp)
	if !reflect.DeepEqual(got, Densify(dn)) {
		t.Fatal("Densify(sparse) differs from Densify(dense twin)")
	}
	// Densify never aliases: mutating the copy must not touch the view.
	got.Set(0, 0, 0, 0, 1234)
	if sp.At(0, 0, 0, 0) == 1234 {
		t.Fatal("Densify aliases the source view")
	}
}

func TestSparseSetUnsetAndInvalid(t *testing.T) {
	sp := NewSparseDemand(2, []int{2}, 5)
	// Setting an unstored coordinate to zero must stay a no-op (no
	// storage growth), while a real insert lands in sorted position.
	sp.Set(0, 0, 0, 3, 0)
	if sp.NNZ() != 0 {
		t.Fatalf("zero Set stored %d entries", sp.NNZ())
	}
	sp.Set(0, 0, 1, 4, 2)
	sp.Set(0, 0, 0, 1, 3)
	if got := sp.ActiveItems(0, 0); !reflect.DeepEqual(got, []int{1, 4}) {
		t.Fatalf("ActiveItems = %v", got)
	}
	// Overwrite in place.
	sp.Set(0, 0, 0, 1, 7)
	if sp.At(0, 0, 0, 1) != 7 {
		t.Fatalf("overwrite lost: %g", sp.At(0, 0, 0, 1))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Set did not panic")
		}
	}()
	sp.Set(0, 0, 0, 99, 1)
}

func TestCandidatesAndCompactSBS(t *testing.T) {
	sp := NewSparseDemand(3, []int{2, 1}, 10)
	sp.Set(0, 0, 0, 2, 1.5)
	sp.Set(2, 0, 1, 7, 2.5)
	sp.Set(1, 1, 0, 4, 3.5)
	in := &Instance{
		N: 2, K: 10, T: 3,
		Classes:   []int{2, 1},
		CacheCap:  []int{2, 2},
		Bandwidth: []float64{5, 5},
		OmegaBS:   [][]float64{{1, 1}, {1}},
		OmegaSBS:  [][]float64{{0, 0}, {0}},
		Beta:      []float64{1, 1},
		Demand:    sp,
		// Item 9 is cached but never requested: it must stay a candidate
		// (evicting it is a real decision with a real replacement-cost
		// interaction).
		InitialCache: CachePlan{
			{0, 0, 0, 0, 0, 0, 0, 0, 0, 1},
			make([]float64, 10),
		},
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := in.Candidates(0); !reflect.DeepEqual(got, []int{2, 7, 9}) {
		t.Fatalf("Candidates(0) = %v, want [2 7 9]", got)
	}
	if got := in.Candidates(1); !reflect.DeepEqual(got, []int{4}) {
		t.Fatalf("Candidates(1) = %v, want [4]", got)
	}

	sub, items, err := in.CompactSBS(0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(items, []int{2, 7, 9}) {
		t.Fatalf("items = %v", items)
	}
	if sub.N != 1 || sub.K != 3 || sub.T != 3 {
		t.Fatalf("compact shape N=%d K=%d T=%d", sub.N, sub.K, sub.T)
	}
	if got := sub.Demand.At(0, 0, 0, 0); got != 1.5 {
		t.Fatalf("compact demand for item 2 = %g", got)
	}
	if got := sub.Demand.At(2, 0, 1, 1); got != 2.5 {
		t.Fatalf("compact demand for item 7 = %g", got)
	}
	if sub.InitialCache[0][2] != 1 {
		t.Fatal("cached-but-cold item lost its initial-cache bit")
	}

	// An SBS with no demand and no cache still yields a valid shard.
	in3 := *in
	in3.Demand = NewSparseDemand(3, []int{2, 1}, 10)
	in3.InitialCache = nil
	sub3, items3, err := in3.CompactSBS(1)
	if err != nil {
		t.Fatal(err)
	}
	if sub3.K != 1 || len(items3) != 1 {
		t.Fatalf("empty shard K=%d items=%v, want the one-dummy-item shape", sub3.K, items3)
	}
	if sub3.Demand.SlotTotal(0, 0) != 0 {
		t.Fatal("dummy item carries demand")
	}
}
