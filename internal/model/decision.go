package model

import "math"

// DefaultTol is the numerical tolerance used by integrality and feasibility
// checks throughout the library. Solvers report solutions well inside this
// tolerance.
const DefaultTol = 1e-6

// CachePlan is a per-slot cache placement x_{n,k}, indexed [n][k]. Values
// are in [0, 1]; committed plans are integral (exactly 0 or 1 up to
// tolerance), while intermediate primal-dual and averaged CHC iterates may
// be fractional.
type CachePlan [][]float64

// NewCachePlan returns an all-zero placement for n SBSs and k contents.
// Rows share one contiguous backing array (two allocations total, cache-
// friendly iteration); each row is capacity-clipped so appends cannot
// bleed into a neighbour.
func NewCachePlan(n, k int) CachePlan {
	p := make(CachePlan, n)
	buf := make([]float64, n*k)
	for i := range p {
		p[i] = buf[i*k : (i+1)*k : (i+1)*k]
	}
	return p
}

// Clone returns a deep copy of the placement, flattened onto one backing
// array regardless of the source's layout.
func (p CachePlan) Clone() CachePlan {
	out := make(CachePlan, len(p))
	var total int
	for i := range p {
		total += len(p[i])
	}
	buf := make([]float64, 0, total)
	for i := range p {
		buf = append(buf, p[i]...)
		out[i] = buf[len(buf)-len(p[i]) : len(buf) : len(buf)]
	}
	return out
}

// IsIntegral reports whether every entry is within tol of 0 or 1.
func (p CachePlan) IsIntegral(tol float64) bool {
	for _, row := range p {
		for _, v := range row {
			if math.Abs(v) > tol && math.Abs(v-1) > tol {
				return false
			}
		}
	}
	return true
}

// Round snaps every entry to the nearer of 0 and 1, in place, and returns p.
// It is intended for plans already integral up to solver tolerance; use the
// online package's rounding policy for genuinely fractional plans.
func (p CachePlan) Round() CachePlan {
	for _, row := range p {
		for k, v := range row {
			if v >= 0.5 {
				row[k] = 1
			} else {
				row[k] = 0
			}
		}
	}
	return p
}

// Items returns the indices of contents cached at SBS n (entries ≥ 0.5).
func (p CachePlan) Items(n int) []int {
	var items []int
	for k, v := range p[n] {
		if v >= 0.5 {
			items = append(items, k)
		}
	}
	return items
}

// LoadPlan is a per-slot load split y_{m_n,k} ∈ [0,1], indexed [n][m][k]:
// the fraction of class-m requests for content k served by SBS n (the BS
// serves the complement 1−y).
type LoadPlan [][][]float64

// NewLoadPlan returns an all-zero load split for the given per-SBS class
// counts and k contents. All class rows share one contiguous backing array
// and all per-SBS row tables one backing table (three allocations total
// instead of 1 + N + Σ M_n); rows are capacity-clipped against appends.
func NewLoadPlan(classes []int, k int) LoadPlan {
	p := make(LoadPlan, len(classes))
	var rows int
	for _, m := range classes {
		rows += m
	}
	tab := make([][]float64, rows)
	buf := make([]float64, rows*k)
	idx := 0
	for n := range p {
		p[n] = tab[idx : idx+classes[n] : idx+classes[n]]
		for m := 0; m < classes[n]; m++ {
			off := (idx + m) * k
			tab[idx+m] = buf[off : off+k : off+k]
		}
		idx += classes[n]
	}
	return p
}

// Clone returns a deep copy of the load split, flattened onto contiguous
// backing arrays regardless of the source's layout.
func (p LoadPlan) Clone() LoadPlan {
	out := make(LoadPlan, len(p))
	var rows, total int
	for n := range p {
		rows += len(p[n])
		for m := range p[n] {
			total += len(p[n][m])
		}
	}
	tab := make([][]float64, 0, rows)
	buf := make([]float64, 0, total)
	for n := range p {
		for m := range p[n] {
			buf = append(buf, p[n][m]...)
			tab = append(tab, buf[len(buf)-len(p[n][m]):len(buf):len(buf)])
		}
		out[n] = tab[len(tab)-len(p[n]) : len(tab) : len(tab)]
	}
	return out
}

// SlotDecision bundles the two coupled per-slot decisions.
type SlotDecision struct {
	X CachePlan
	Y LoadPlan
}

// Clone returns a deep copy of the decision.
func (d SlotDecision) Clone() SlotDecision {
	return SlotDecision{X: d.X.Clone(), Y: d.Y.Clone()}
}

// Trajectory is a sequence of per-slot decisions covering a horizon.
type Trajectory []SlotDecision

// NewTrajectory returns an all-zero trajectory shaped for the instance.
func NewTrajectory(in *Instance) Trajectory {
	traj := make(Trajectory, in.T)
	for t := range traj {
		traj[t] = SlotDecision{
			X: NewCachePlan(in.N, in.K),
			Y: NewLoadPlan(in.Classes, in.K),
		}
	}
	return traj
}

// Clone returns a deep copy of the trajectory.
func (traj Trajectory) Clone() Trajectory {
	out := make(Trajectory, len(traj))
	for t := range traj {
		out[t] = traj[t].Clone()
	}
	return out
}
