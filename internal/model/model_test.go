package model

import (
	"math"
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"
)

// testInstance builds a small, fully valid instance:
// 2 SBSs, 3 contents, 2 slots, classes {2, 1}.
func testInstance(t *testing.T) *Instance {
	t.Helper()
	d := NewDemand(2, []int{2, 1}, 3)
	// SBS 0, class 0: rates 1, 2, 3 at slot 0; 2, 2, 2 at slot 1.
	for k, v := range []float64{1, 2, 3} {
		d.Set(0, 0, 0, k, v)
	}
	for k := 0; k < 3; k++ {
		d.Set(1, 0, 0, k, 2)
	}
	// SBS 0, class 1: constant rate 1.
	for tt := 0; tt < 2; tt++ {
		for k := 0; k < 3; k++ {
			d.Set(tt, 0, 1, k, 1)
		}
	}
	// SBS 1, class 0: rate k+1 each slot.
	for tt := 0; tt < 2; tt++ {
		for k := 0; k < 3; k++ {
			d.Set(tt, 1, 0, k, float64(k+1))
		}
	}
	in := &Instance{
		N:         2,
		K:         3,
		T:         2,
		Classes:   []int{2, 1},
		CacheCap:  []int{1, 2},
		Bandwidth: []float64{10, 10},
		OmegaBS:   [][]float64{{1, 0.5}, {2}},
		OmegaSBS:  [][]float64{{0, 0}, {0.1}},
		Beta:      []float64{10, 5},
		Demand:    d,
	}
	if err := in.Validate(); err != nil {
		t.Fatalf("testInstance invalid: %v", err)
	}
	return in
}

func TestValidateRejectsBadInstances(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Instance)
		wantSub string
	}{
		{"zero N", func(in *Instance) { in.N = 0 }, "N = 0"},
		{"zero K", func(in *Instance) { in.K = 0 }, "K = 0"},
		{"zero T", func(in *Instance) { in.T = 0 }, "T = 0"},
		{"classes length", func(in *Instance) { in.Classes = []int{1} }, "len(Classes)"},
		{"cachecap length", func(in *Instance) { in.CacheCap = []int{1} }, "len(CacheCap)"},
		{"bandwidth length", func(in *Instance) { in.Bandwidth = []float64{1} }, "len(Bandwidth)"},
		{"beta length", func(in *Instance) { in.Beta = nil }, "len(Beta)"},
		{"negative bandwidth", func(in *Instance) { in.Bandwidth[1] = -1 }, "Bandwidth[1]"},
		{"negative beta", func(in *Instance) { in.Beta[0] = -2 }, "Beta[0]"},
		{"negative cap", func(in *Instance) { in.CacheCap[0] = -1 }, "CacheCap[0]"},
		{"zero classes", func(in *Instance) { in.Classes[0] = 0 }, "Classes[0]"},
		{"omega shape", func(in *Instance) { in.OmegaBS[0] = []float64{1} }, "OmegaBS[0]"},
		{"negative omega", func(in *Instance) { in.OmegaBS[1][0] = -1 }, "OmegaBS[1][0]"},
		{"negative omega sbs", func(in *Instance) { in.OmegaSBS[1][0] = -1 }, "OmegaSBS[1][0]"},
		{"nil demand", func(in *Instance) { in.Demand = nil }, "nil Demand"},
		{"demand shape", func(in *Instance) { in.Demand = NewDemand(1, []int{2, 1}, 3) }, "slots"},
		{
			"fractional initial cache",
			func(in *Instance) {
				in.InitialCache = NewCachePlan(2, 3)
				in.InitialCache[0][0] = 0.5
			},
			"not integral",
		},
		{
			"overfull initial cache",
			func(in *Instance) {
				in.InitialCache = NewCachePlan(2, 3)
				in.InitialCache[0][0] = 1
				in.InitialCache[0][1] = 1
			},
			"capacity",
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			in := testInstance(t)
			tc.mutate(in)
			err := in.Validate()
			if err == nil {
				t.Fatalf("Validate() = nil, want error containing %q", tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("Validate() = %q, want substring %q", err, tc.wantSub)
			}
		})
	}
}

func TestValidateAcceptsNilInitialCache(t *testing.T) {
	in := testInstance(t)
	in.InitialCache = nil
	if err := in.Validate(); err != nil {
		t.Fatalf("Validate() = %v, want nil", err)
	}
}

func TestBSCostHandComputed(t *testing.T) {
	in := testInstance(t)
	y := NewLoadPlan(in.Classes, in.K)

	// All served by BS: SBS0 load = 1·(1+2+3) + 0.5·(1+1+1) = 7.5 → 56.25;
	// SBS1 load = 2·(1+2+3) = 12 → 144. Total 200.25.
	if got, want := in.BSCost(0, y), 56.25+144.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("BSCost(0, zero) = %g, want %g", got, want)
	}

	// Serve content 2 of class 0 at SBS 0 fully: load drops by 1·3 to 4.5.
	y[0][0][2] = 1
	if got, want := in.BSCost(0, y), 4.5*4.5+144.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("BSCost(0, partial) = %g, want %g", got, want)
	}
}

func TestSBSCostHandComputed(t *testing.T) {
	in := testInstance(t)
	y := NewLoadPlan(in.Classes, in.K)
	if got := in.SBSCost(0, y); got != 0 {
		t.Fatalf("SBSCost(0, zero) = %g, want 0", got)
	}
	// Serve content 1 (rate 2) at SBS 1, weight 0.1 → (0.1·2)² = 0.04.
	y[1][0][1] = 1
	if got, want := in.SBSCost(0, y), 0.04; math.Abs(got-want) > 1e-12 {
		t.Fatalf("SBSCost = %g, want %g", got, want)
	}
}

func TestReplacementCostAndCount(t *testing.T) {
	in := testInstance(t)
	prev := NewCachePlan(2, 3)
	cur := NewCachePlan(2, 3)
	prev[0][0] = 1
	cur[0][1] = 1 // SBS 0: drop 0, insert 1 → β₀ = 10.
	cur[1][0] = 1 // SBS 1: insert 0 → β₁ = 5.
	cur[1][2] = 1 // SBS 1: insert 2 → β₁ = 5.
	if got, want := in.ReplacementCost(prev, cur), 20.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("ReplacementCost = %g, want %g", got, want)
	}
	if got, want := ReplacementCount(prev, cur), 3; got != want {
		t.Fatalf("ReplacementCount = %d, want %d", got, want)
	}
	// Evictions alone cost nothing.
	if got := in.ReplacementCost(cur, prev); got != in.Beta[0]*1 {
		// prev has one item cur lacks at SBS 0 (content 0) → one insert.
		t.Fatalf("ReplacementCost(reverse) = %g, want %g", got, in.Beta[0])
	}
}

func TestReplacementCostFractional(t *testing.T) {
	in := testInstance(t)
	prev := NewCachePlan(2, 3)
	cur := NewCachePlan(2, 3)
	prev[0][0] = 0.25
	cur[0][0] = 0.75
	if got, want := in.ReplacementCost(prev, cur), 10*0.5; math.Abs(got-want) > 1e-12 {
		t.Fatalf("fractional ReplacementCost = %g, want %g", got, want)
	}
}

func TestTotalCostAccumulates(t *testing.T) {
	in := testInstance(t)
	traj := NewTrajectory(in)
	traj[0].X[0][0] = 1
	traj[1].X[0][1] = 1
	br := in.TotalCost(traj)
	if br.Replacements != 2 {
		t.Fatalf("Replacements = %d, want 2", br.Replacements)
	}
	if math.Abs(br.Replacement-20) > 1e-12 {
		t.Fatalf("Replacement = %g, want 20", br.Replacement)
	}
	wantBS := in.BSCost(0, traj[0].Y) + in.BSCost(1, traj[1].Y)
	if math.Abs(br.BS-wantBS) > 1e-12 {
		t.Fatalf("BS = %g, want %g", br.BS, wantBS)
	}
	if math.Abs(br.Total-(br.BS+br.SBS+br.Replacement)) > 1e-12 {
		t.Fatalf("Total = %g does not match sum of parts", br.Total)
	}
}

func TestNoCachingCostMatchesZeroTrajectory(t *testing.T) {
	in := testInstance(t)
	traj := NewTrajectory(in)
	br := in.TotalCost(traj)
	if got := in.NoCachingCost(); math.Abs(got-br.Total) > 1e-12 {
		t.Fatalf("NoCachingCost = %g, want %g", got, br.Total)
	}
}

func TestCheckSlotViolations(t *testing.T) {
	in := testInstance(t)

	feasible := func() SlotDecision {
		dec := SlotDecision{X: NewCachePlan(2, 3), Y: NewLoadPlan(in.Classes, in.K)}
		dec.X[0][2] = 1
		dec.Y[0][0][2] = 0.5
		return dec
	}
	if err := in.CheckSlot(0, feasible(), DefaultTol); err != nil {
		t.Fatalf("CheckSlot(feasible) = %v, want nil", err)
	}

	tests := []struct {
		name    string
		mutate  func(*SlotDecision)
		wantSub string
	}{
		{"x out of range", func(d *SlotDecision) { d.X[0][0] = 1.5 }, "outside [0, 1]"},
		{"x negative", func(d *SlotDecision) { d.X[0][0] = -0.5 }, "outside [0, 1]"},
		{"y out of range", func(d *SlotDecision) { d.X[0][0] = 1; d.X[0][2] = 0; d.Y[0][0][2] = 0; d.Y[0][0][0] = 2 }, "outside [0, 1]"},
		{"capacity", func(d *SlotDecision) { d.X[0][0], d.X[0][1] = 1, 1 }, "cache capacity"},
		{"coupling", func(d *SlotDecision) { d.Y[0][1][0] = 0.5 }, "coupling"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			dec := feasible()
			tc.mutate(&dec)
			err := in.CheckSlot(0, dec, DefaultTol)
			if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("CheckSlot = %v, want error containing %q", err, tc.wantSub)
			}
		})
	}
}

func TestCheckSlotBandwidth(t *testing.T) {
	in := testInstance(t)
	in.Bandwidth[0] = 2
	dec := SlotDecision{X: NewCachePlan(2, 3), Y: NewLoadPlan(in.Classes, in.K)}
	dec.X[0][2] = 1
	dec.Y[0][0][2] = 1 // load 3 > bandwidth 2
	err := in.CheckSlot(0, dec, DefaultTol)
	if err == nil || !strings.Contains(err.Error(), "bandwidth") {
		t.Fatalf("CheckSlot = %v, want bandwidth violation", err)
	}
}

func TestCheckTrajectoryLength(t *testing.T) {
	in := testInstance(t)
	traj := NewTrajectory(in)[:1]
	if err := in.CheckTrajectory(traj, DefaultTol); err == nil {
		t.Fatal("CheckTrajectory accepted short trajectory")
	}
}

func TestDemandAccessors(t *testing.T) {
	in := testInstance(t)
	d := in.Demand
	if d.T() != 2 || d.N() != 2 || d.K() != 3 {
		t.Fatalf("shape = (%d, %d, %d), want (2, 2, 3)", d.T(), d.N(), d.K())
	}
	if got := d.At(0, 0, 0, 2); got != 3 {
		t.Fatalf("At = %g, want 3", got)
	}
	if got, want := d.SlotTotal(0, 0), 1+2+3+1+1+1.0; got != want {
		t.Fatalf("SlotTotal = %g, want %g", got, want)
	}
	// ContentTotal at SBS 0, content 0: class0 rate 1 + class1 rate 1 = 2.
	if got, want := d.ContentTotal(0, 0, 0), 2.0; got != want {
		t.Fatalf("ContentTotal = %g, want %g", got, want)
	}
}

func TestDemandSetRejectsInvalid(t *testing.T) {
	d := NewDemand(1, []int{1}, 1)
	for _, v := range []float64{-1, math.NaN(), math.Inf(1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Set(%g) did not panic", v)
				}
			}()
			d.Set(0, 0, 0, 0, v)
		}()
	}
}

func TestDemandSliceIsDeepCopy(t *testing.T) {
	in := testInstance(t)
	s, err := in.Demand.Slice(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	s.Set(0, 0, 0, 0, 99)
	if got := in.Demand.At(0, 0, 0, 0); got != 1 {
		t.Fatalf("Slice aliased storage: original demand changed to %g", got)
	}
}

func TestDemandSliceBounds(t *testing.T) {
	in := testInstance(t)
	for _, rng := range [][2]int{{-1, 1}, {0, 3}, {1, 1}, {2, 1}} {
		if _, err := in.Demand.Slice(rng[0], rng[1]); err == nil {
			t.Errorf("Slice(%d, %d) = nil error, want out-of-range", rng[0], rng[1])
		}
	}
}

func TestDemandMap(t *testing.T) {
	in := testInstance(t)
	d := in.Demand.Clone()
	d.Map(func(t, n, m, k int, v float64) float64 { return 2 * v })
	if got := d.At(0, 0, 0, 2); got != 6 {
		t.Fatalf("Map doubled rate = %g, want 6", got)
	}
	if got := in.Demand.At(0, 0, 0, 2); got != 3 {
		t.Fatalf("Clone aliased storage: original rate = %g, want 3", got)
	}
}

func TestWindow(t *testing.T) {
	in := testInstance(t)
	init := NewCachePlan(2, 3)
	init[0][1] = 1
	w, err := in.Window(1, 2, init, nil)
	if err != nil {
		t.Fatal(err)
	}
	if w.T != 1 {
		t.Fatalf("window T = %d, want 1", w.T)
	}
	if got := w.Demand.At(0, 0, 0, 0); got != 2 {
		t.Fatalf("window demand = %g, want 2 (slot 1 of original)", got)
	}
	if got := w.InitialPlan()[0][1]; got != 1 {
		t.Fatalf("window initial plan lost state: %g", got)
	}
	if _, err := in.Window(1, 3, nil, nil); err == nil {
		t.Fatal("Window(1, 3) accepted out-of-horizon window")
	}
}

func TestCachePlanHelpers(t *testing.T) {
	p := NewCachePlan(1, 4)
	p[0][1] = 0.9
	p[0][3] = 0.2
	if p.IsIntegral(DefaultTol) {
		t.Fatal("IsIntegral = true for fractional plan")
	}
	p.Round()
	if !p.IsIntegral(0) {
		t.Fatal("Round did not produce integral plan")
	}
	if items := p.Items(0); len(items) != 1 || items[0] != 1 {
		t.Fatalf("Items = %v, want [1]", items)
	}
	c := p.Clone()
	c[0][0] = 1
	if p[0][0] != 0 {
		t.Fatal("Clone aliased storage")
	}
}

func TestTrajectoryClone(t *testing.T) {
	in := testInstance(t)
	traj := NewTrajectory(in)
	c := traj.Clone()
	c[0].X[0][0] = 1
	c[1].Y[0][0][0] = 0.5
	if traj[0].X[0][0] != 0 || traj[1].Y[0][0][0] != 0 {
		t.Fatal("Trajectory.Clone aliased storage")
	}
}

// Property: the BS cost never increases when any y entry increases
// (f_t is non-increasing in served fraction), and is always non-negative.
func TestBSCostMonotoneProperty(t *testing.T) {
	in := testInstance(t)
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 7))
		y := NewLoadPlan(in.Classes, in.K)
		for n := range y {
			for m := range y[n] {
				for k := range y[n][m] {
					y[n][m][k] = r.Float64()
				}
			}
		}
		base := in.BSCost(0, y)
		if base < 0 {
			return false
		}
		// Bump one random coordinate toward 1.
		n := r.IntN(in.N)
		m := r.IntN(in.Classes[n])
		k := r.IntN(in.K)
		y[n][m][k] = y[n][m][k] + (1-y[n][m][k])*r.Float64()
		return in.BSCost(0, y) <= base+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: replacement cost satisfies the triangle-like inequality
// h(a→c) ≤ h(a→b) + h(b→c) for arbitrary fractional plans, and h(a→a) = 0.
func TestReplacementCostTriangleProperty(t *testing.T) {
	in := testInstance(t)
	randPlan := func(r *rand.Rand) CachePlan {
		p := NewCachePlan(in.N, in.K)
		for n := range p {
			for k := range p[n] {
				p[n][k] = r.Float64()
			}
		}
		return p
	}
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 11))
		a, b, c := randPlan(r), randPlan(r), randPlan(r)
		if in.ReplacementCost(a, a) != 0 {
			return false
		}
		return in.ReplacementCost(a, c) <= in.ReplacementCost(a, b)+in.ReplacementCost(b, c)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: TotalCost decomposes exactly into per-slot SlotCost terms.
func TestTotalCostSlotAdditivityProperty(t *testing.T) {
	in := testInstance(t)
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 23))
		traj := NewTrajectory(in)
		for tt := range traj {
			for n := 0; n < in.N; n++ {
				// Random (feasible-by-construction) placements and splits.
				for _, k := range r.Perm(in.K)[:in.CacheCap[n]] {
					traj[tt].X[n][k] = 1
				}
				for m := 0; m < in.Classes[n]; m++ {
					for k := 0; k < in.K; k++ {
						traj[tt].Y[n][m][k] = traj[tt].X[n][k] * r.Float64()
					}
				}
			}
		}
		var sum float64
		prev := in.InitialPlan()
		for tt := range traj {
			sum += in.SlotCost(tt, prev, traj[tt])
			prev = traj[tt].X
		}
		br := in.TotalCost(traj)
		return math.Abs(sum-br.Total) <= 1e-9*(1+math.Abs(sum))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
