package model

// DemandView is the demand-access contract every solver layer consumes.
// It abstracts over the storage of the λ^t_{m_n,k} tensor so that the same
// algorithms run on the dense tensor (Demand, the default — every rate is
// materialised) and on the CSR-style SparseDemand, whose per-(t, n) item
// lists make web-scale catalogues (K in the millions) affordable.
//
// The iteration methods are the preferred access path:
//
//   - ForEachActive visits exactly the coordinates with λ > 0, in the same
//     (class-major, then content-ascending) order a dense row scan would,
//     so accumulations over active coordinates are bit-identical to dense
//     accumulations — skipped zero terms contribute an exact +0.0.
//   - ActiveItems lists the contents with any positive demand at (t, n),
//     the raw material for candidate sets (Instance.Candidates).
//
// The deprecated Slot remains as a dense-row shim; new code should use
// ForEachActive, At or CopySlot instead. Implementations live in this
// package only (the interface is sealed by the unexported conforms method)
// so the solver layers can rely on the invariants documented here.
type DemandView interface {
	// T, N, K and Classes report the tensor's shape. Classes returns a
	// shared slice that callers must not modify.
	T() int
	N() int
	K() int
	Classes() []int

	// At returns λ^t_{m_n,k}; zero for coordinates the backing does not
	// store.
	At(t, n, m, k int) float64

	// Set assigns λ^t_{m_n,k} = v. Rates must be finite and non-negative;
	// violating values panic (they indicate a generator bug, not a runtime
	// condition a caller could handle).
	Set(t, n, m, k int, v float64)

	// Slot returns the dense row-major (class, content) rate matrix for
	// (t, n).
	//
	// Deprecated: Slot hard-codes O(K) work and, on sparse backings, O(K)
	// fresh memory per call. Use ForEachActive for accumulations, At for
	// point reads, or CopySlot when a dense row into caller-owned memory
	// is genuinely required.
	Slot(t, n int) []float64

	// CopySlot writes the dense row-major (class, content) rate matrix of
	// (t, n) into dst, growing it when needed, and returns it. Unlike the
	// deprecated Slot the result never aliases internal storage.
	CopySlot(dst []float64, t, n int) []float64

	// SlotTotal returns Σ_{m,k} λ^t_{m,k}: the aggregate request volume of
	// SBS n at slot t.
	SlotTotal(t, n int) float64

	// ContentTotal returns Σ_m λ^t_{m,k}: the aggregate demand for content
	// k at SBS n in slot t (the quantity the LRFU baseline ranks by).
	ContentTotal(t, n, k int) float64

	// ForEachActive calls fn for every coordinate with λ ≠ 0 at (t, n), in
	// class-major order with contents ascending within a class — the exact
	// order of a dense row scan, so sums over the visited terms match
	// dense sums bit for bit.
	ForEachActive(t, n int, fn func(m, k int, rate float64))

	// ActiveItems returns the sorted contents with any positive demand at
	// (t, n). The returned slice is freshly allocated.
	ActiveItems(t, n int) []int

	// Slice returns a deep copy of slots [from, to) with the same backing,
	// so window solvers can perturb predictions without aliasing the
	// ground truth — and without densifying a sparse tensor.
	Slice(from, to int) (DemandView, error)

	// Clone returns a deep copy of the whole tensor with the same backing.
	Clone() DemandView

	// Map applies f to rates and stores the result, returning the view.
	// Dense backings visit every coordinate; sparse backings visit only
	// the stored entries, so f must map 0 to 0 (true for the
	// multiplicative transforms the predictor stack applies).
	Map(f func(t, n, m, k int, v float64) float64) DemandView

	// CheckValues verifies every stored rate is finite and non-negative,
	// memoising success.
	CheckValues() error

	// conforms checks the view's shape against an instance. Unexported on
	// purpose: it seals the interface to this package's implementations.
	conforms(in *Instance) error
}

// Densify materialises any view as an independent dense Demand tensor.
// Useful for differential tests (dense vs sparse backings of the same
// workload) and for tooling that genuinely needs dense rows.
func Densify(v DemandView) *Demand {
	out := NewDemand(v.T(), v.Classes(), v.K())
	for t := 0; t < out.t; t++ {
		for n := 0; n < out.n; n++ {
			row := out.data[t][n]
			v.ForEachActive(t, n, func(m, k int, rate float64) {
				row[m*out.k+k] = rate
			})
		}
	}
	if v.CheckValues() == nil {
		out.checked.Store(true)
	}
	return out
}
