package model

import "fmt"

// PerSBS extracts the single-SBS subproblem of SBS n as an independent
// instance. The paper's objective and constraints separate across SBSs
// (every term of f, g and h involves exactly one SBS), so the joint
// optimum is the concatenation of the per-SBS optima — the structural
// fact behind the distributed solver and the §VII future-work direction.
func (in *Instance) PerSBS(n int) (*Instance, error) {
	if n < 0 || n >= in.N {
		return nil, fmt.Errorf("model: SBS %d outside [0, %d)", n, in.N)
	}
	d := NewDemand(in.T, []int{in.Classes[n]}, in.K)
	for t := 0; t < in.T; t++ {
		for m := 0; m < in.Classes[n]; m++ {
			for k := 0; k < in.K; k++ {
				d.Set(t, 0, m, k, in.Demand.At(t, n, m, k))
			}
		}
	}
	sub := &Instance{
		N:         1,
		K:         in.K,
		T:         in.T,
		Classes:   []int{in.Classes[n]},
		CacheCap:  []int{in.CacheCap[n]},
		Bandwidth: []float64{in.Bandwidth[n]},
		OmegaBS:   [][]float64{in.OmegaBS[n]},
		OmegaSBS:  [][]float64{in.OmegaSBS[n]},
		Beta:      []float64{in.Beta[n]},
		Demand:    d,
	}
	if in.InitialCache != nil {
		sub.InitialCache = CachePlan{append([]float64(nil), in.InitialCache[n]...)}
	}
	if in.Overlay != nil {
		ov := &Overlay{}
		if in.Overlay.Bandwidth != nil {
			ov.Bandwidth = make([][]float64, in.T)
			for t := range ov.Bandwidth {
				ov.Bandwidth[t] = []float64{in.Overlay.Bandwidth[t][n]}
			}
		}
		if in.Overlay.CacheCap != nil {
			ov.CacheCap = make([][]int, in.T)
			for t := range ov.CacheCap {
				ov.CacheCap[t] = []int{in.Overlay.CacheCap[t][n]}
			}
		}
		sub.Overlay = ov
	}
	if err := sub.Validate(); err != nil {
		return nil, fmt.Errorf("model: PerSBS(%d): %w", n, err)
	}
	return sub, nil
}

// CompactSBS extracts SBS n as a single-SBS instance over only its
// candidate items (see Candidates): compact content ci stands for global
// content items[ci]. This is the shard the web-scale solver operates on —
// its catalogue is the SBS's active set, not K, so workspace memory per
// shard scales with demand rather than catalogue size. The compact demand
// is materialised densely: with K' = len(items) a plane is O(M·K'), and
// the solver hot paths stay on their dense, zero-alloc code paths.
//
// The compact instance is semantically equivalent to PerSBS(n): dropped
// items have zero demand in every slot and are not initially cached, so no
// optimal placement or load split ever touches them.
func (in *Instance) CompactSBS(n int) (*Instance, []int, error) {
	if n < 0 || n >= in.N {
		return nil, nil, fmt.Errorf("model: SBS %d outside [0, %d)", n, in.N)
	}
	items := in.Candidates(n)
	if len(items) == 0 {
		// K must stay positive; one dummy item keeps every shape valid and
		// carries zero demand.
		items = []int{0}
	}
	kc := len(items)
	pos := make(map[int]int, kc)
	for ci, k := range items {
		pos[k] = ci
	}
	d := NewDemand(in.T, []int{in.Classes[n]}, kc)
	for t := 0; t < in.T; t++ {
		in.Demand.ForEachActive(t, n, func(m, k int, rate float64) {
			d.Set(t, 0, m, pos[k], rate)
		})
	}
	sub := &Instance{
		N:         1,
		K:         kc,
		T:         in.T,
		Classes:   []int{in.Classes[n]},
		CacheCap:  []int{in.CacheCap[n]},
		Bandwidth: []float64{in.Bandwidth[n]},
		OmegaBS:   [][]float64{in.OmegaBS[n]},
		OmegaSBS:  [][]float64{in.OmegaSBS[n]},
		Beta:      []float64{in.Beta[n]},
		Demand:    d,
	}
	if in.InitialCache != nil {
		row := make([]float64, kc)
		for ci, k := range items {
			row[ci] = in.InitialCache[n][k]
		}
		sub.InitialCache = CachePlan{row}
	}
	if in.Overlay != nil {
		ov := &Overlay{}
		if in.Overlay.Bandwidth != nil {
			ov.Bandwidth = make([][]float64, in.T)
			for t := range ov.Bandwidth {
				ov.Bandwidth[t] = []float64{in.Overlay.Bandwidth[t][n]}
			}
		}
		if in.Overlay.CacheCap != nil {
			ov.CacheCap = make([][]int, in.T)
			for t := range ov.CacheCap {
				ov.CacheCap[t] = []int{in.Overlay.CacheCap[t][n]}
			}
		}
		sub.Overlay = ov
	}
	if err := sub.Validate(); err != nil {
		return nil, nil, fmt.Errorf("model: CompactSBS(%d): %w", n, err)
	}
	return sub, items, nil
}
