package model

import "fmt"

// PerSBS extracts the single-SBS subproblem of SBS n as an independent
// instance. The paper's objective and constraints separate across SBSs
// (every term of f, g and h involves exactly one SBS), so the joint
// optimum is the concatenation of the per-SBS optima — the structural
// fact behind the distributed solver and the §VII future-work direction.
func (in *Instance) PerSBS(n int) (*Instance, error) {
	if n < 0 || n >= in.N {
		return nil, fmt.Errorf("model: SBS %d outside [0, %d)", n, in.N)
	}
	d := NewDemand(in.T, []int{in.Classes[n]}, in.K)
	for t := 0; t < in.T; t++ {
		for m := 0; m < in.Classes[n]; m++ {
			for k := 0; k < in.K; k++ {
				d.Set(t, 0, m, k, in.Demand.At(t, n, m, k))
			}
		}
	}
	sub := &Instance{
		N:         1,
		K:         in.K,
		T:         in.T,
		Classes:   []int{in.Classes[n]},
		CacheCap:  []int{in.CacheCap[n]},
		Bandwidth: []float64{in.Bandwidth[n]},
		OmegaBS:   [][]float64{in.OmegaBS[n]},
		OmegaSBS:  [][]float64{in.OmegaSBS[n]},
		Beta:      []float64{in.Beta[n]},
		Demand:    d,
	}
	if in.InitialCache != nil {
		sub.InitialCache = CachePlan{append([]float64(nil), in.InitialCache[n]...)}
	}
	if in.Overlay != nil {
		ov := &Overlay{}
		if in.Overlay.Bandwidth != nil {
			ov.Bandwidth = make([][]float64, in.T)
			for t := range ov.Bandwidth {
				ov.Bandwidth[t] = []float64{in.Overlay.Bandwidth[t][n]}
			}
		}
		if in.Overlay.CacheCap != nil {
			ov.CacheCap = make([][]int, in.T)
			for t := range ov.CacheCap {
				ov.CacheCap[t] = []int{in.Overlay.CacheCap[t][n]}
			}
		}
		sub.Overlay = ov
	}
	if err := sub.Validate(); err != nil {
		return nil, fmt.Errorf("model: PerSBS(%d): %w", n, err)
	}
	return sub, nil
}
