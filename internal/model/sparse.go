package model

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// SparseDemand stores the λ^t_{m_n,k} tensor in CSR style: per (t, n) a
// sorted list of the items with stored rates plus a per-class rate column
// for each listed item. Memory and iteration cost scale with the number of
// active (item, slot) pairs rather than with the catalogue size K, which
// makes the web-scale operating point (N ≈ 1000 SBSs, K ≈ 1e6 items,
// Zipf-concentrated demand) affordable: a slot plane costs O(M·topK)
// instead of O(M·K).
//
// SparseDemand implements DemandView. Coordinates that were never Set are
// structurally zero: At returns 0 for them, ForEachActive skips them, and
// Map never visits them (so Map transforms must send 0 to 0 — true for the
// multiplicative noise and corruption hooks the predictor stack applies,
// with the documented exception of the fault package's "freeze" mode,
// which resurrects rates and therefore requires a dense view).
type SparseDemand struct {
	t, n    int
	classes []int
	k       int
	// rows[t][n] lists the stored items of that plane.
	rows [][]sparseRow
	// checked memoises CheckValues, exactly as in the dense tensor.
	checked atomic.Bool
}

// sparseRow is one (t, n) plane: items is the sorted list of stored
// content ids and rates[m][i] the rate of class m for content items[i].
type sparseRow struct {
	items []int
	rates [][]float64
}

// NewSparseDemand allocates an empty sparse demand tensor for t slots,
// len(classes) SBSs and k contents. Rates are added with Set; appending in
// ascending content order per plane is O(1) amortised.
func NewSparseDemand(t int, classes []int, k int) *SparseDemand {
	d := &SparseDemand{
		t:       t,
		n:       len(classes),
		classes: append([]int(nil), classes...),
		k:       k,
		rows:    make([][]sparseRow, t),
	}
	for ti := range d.rows {
		d.rows[ti] = make([]sparseRow, d.n)
		for n := range d.rows[ti] {
			d.rows[ti][n].rates = make([][]float64, classes[n])
		}
	}
	return d
}

// T returns the number of slots covered by the demand tensor.
func (d *SparseDemand) T() int { return d.t }

// N returns the number of SBSs covered by the demand tensor.
func (d *SparseDemand) N() int { return d.n }

// K returns the number of contents covered by the demand tensor.
func (d *SparseDemand) K() int { return d.k }

// Classes returns the per-SBS class counts. The returned slice is shared;
// callers must not modify it.
func (d *SparseDemand) Classes() []int { return d.classes }

// NNZ returns the number of stored (t, n, item) triples — the footprint
// the sparse representation actually pays for (each triple carries one
// rate per class).
func (d *SparseDemand) NNZ() int {
	var nnz int
	for t := range d.rows {
		for n := range d.rows[t] {
			nnz += len(d.rows[t][n].items)
		}
	}
	return nnz
}

// find returns the position of item k in r.items and whether it is stored.
func (r *sparseRow) find(k int) (int, bool) {
	i := sort.SearchInts(r.items, k)
	return i, i < len(r.items) && r.items[i] == k
}

// At returns λ^t_{m_n,k}; zero for unstored coordinates.
func (d *SparseDemand) At(t, n, m, k int) float64 {
	r := &d.rows[t][n]
	if i, ok := r.find(k); ok {
		return r.rates[m][i]
	}
	return 0
}

// Set assigns λ^t_{m_n,k} = v, inserting item k into the plane's item list
// when absent. Rates must be non-negative and finite; violating values
// panic. Setting an unstored coordinate to 0 is a no-op, so generators can
// Set unconditionally without densifying the structure.
func (d *SparseDemand) Set(t, n, m, k int, v float64) {
	if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		panic(fmt.Sprintf("model: demand rate %g at (t=%d n=%d m=%d k=%d) is not a finite non-negative number", v, t, n, m, k))
	}
	if k < 0 || k >= d.k {
		// The dense tensor faults on an out-of-range content naturally;
		// the sparse map would silently grow a phantom item.
		panic(fmt.Sprintf("model: content %d outside [0, %d)", k, d.k))
	}
	r := &d.rows[t][n]
	i, ok := r.find(k)
	if !ok {
		if v == 0 {
			return
		}
		r.items = append(r.items, 0)
		copy(r.items[i+1:], r.items[i:])
		r.items[i] = k
		for m := range r.rates {
			col := append(r.rates[m], 0)
			copy(col[i+1:], col[i:])
			col[i] = 0
			r.rates[m] = col
		}
	}
	r.rates[m][i] = v
}

// Slot materialises the dense row-major (class, content) rate matrix for
// (t, n) into fresh memory.
//
// Deprecated: on a sparse backing every call allocates and fills O(M·K)
// memory. Use ForEachActive, At or CopySlot.
func (d *SparseDemand) Slot(t, n int) []float64 {
	return d.CopySlot(nil, t, n)
}

// CopySlot writes the dense row-major (class, content) rate matrix of
// (t, n) into dst, growing it when needed, and returns it.
func (d *SparseDemand) CopySlot(dst []float64, t, n int) []float64 {
	dim := d.classes[n] * d.k
	if cap(dst) < dim {
		dst = make([]float64, dim)
	}
	dst = dst[:dim]
	for i := range dst {
		dst[i] = 0
	}
	r := &d.rows[t][n]
	for m, col := range r.rates {
		base := m * d.k
		for i, k := range r.items {
			dst[base+k] = col[i]
		}
	}
	return dst
}

// SlotTotal returns Σ_{m,k} λ^t_{m,k} for SBS n at slot t, accumulating in
// the dense scan order (class-major, contents ascending) so the sum is bit
// identical to the dense tensor's.
func (d *SparseDemand) SlotTotal(t, n int) float64 {
	var sum float64
	r := &d.rows[t][n]
	for _, col := range r.rates {
		for _, v := range col {
			sum += v
		}
	}
	return sum
}

// ContentTotal returns Σ_m λ^t_{m,k}.
func (d *SparseDemand) ContentTotal(t, n, k int) float64 {
	r := &d.rows[t][n]
	i, ok := r.find(k)
	if !ok {
		return 0
	}
	var sum float64
	for _, col := range r.rates {
		sum += col[i]
	}
	return sum
}

// ForEachActive calls fn for every stored coordinate with λ ≠ 0 at (t, n),
// class-major with contents ascending — the dense scan order.
func (d *SparseDemand) ForEachActive(t, n int, fn func(m, k int, rate float64)) {
	r := &d.rows[t][n]
	for m, col := range r.rates {
		for i, v := range col {
			if v != 0 {
				fn(m, r.items[i], v)
			}
		}
	}
}

// ActiveItems returns the sorted contents with any positive demand at
// (t, n). The slice is freshly allocated.
func (d *SparseDemand) ActiveItems(t, n int) []int {
	r := &d.rows[t][n]
	var items []int
	for i, k := range r.items {
		for _, col := range r.rates {
			if col[i] != 0 {
				items = append(items, k)
				break
			}
		}
	}
	return items
}

// Slice returns a deep copy of slots [from, to) as an independent
// SparseDemand — the backing is preserved, not densified.
func (d *SparseDemand) Slice(from, to int) (DemandView, error) {
	if from < 0 || to > d.t || from >= to {
		return nil, fmt.Errorf("model: demand slice [%d, %d) outside [0, %d)", from, to, d.t)
	}
	out := NewSparseDemand(to-from, d.classes, d.k)
	for t := from; t < to; t++ {
		for n := 0; n < d.n; n++ {
			src := &d.rows[t][n]
			dst := &out.rows[t-from][n]
			dst.items = append([]int(nil), src.items...)
			for m := range src.rates {
				dst.rates[m] = append([]float64(nil), src.rates[m]...)
			}
		}
	}
	out.checked.Store(d.checked.Load())
	return out, nil
}

// Clone returns a deep copy of the whole tensor, sparse-backed.
func (d *SparseDemand) Clone() DemandView {
	out, err := d.Slice(0, d.t)
	if err != nil {
		panic("model: Clone: " + err.Error()) // unreachable: full range is valid
	}
	return out
}

// Map applies f to every stored rate and keeps the result, returning d.
// Unstored coordinates are structurally zero and never visited, so f must
// map 0 to 0 for the transform to mean the same thing it would on a dense
// tensor.
func (d *SparseDemand) Map(f func(t, n, m, k int, v float64) float64) DemandView {
	for t := 0; t < d.t; t++ {
		for n := 0; n < d.n; n++ {
			r := &d.rows[t][n]
			for m, col := range r.rates {
				for i, v := range col {
					nv := f(t, n, m, r.items[i], v)
					if nv < 0 || math.IsNaN(nv) || math.IsInf(nv, 0) {
						panic(fmt.Sprintf("model: Map produced invalid rate %g", nv))
					}
					col[i] = nv
				}
			}
		}
	}
	return d
}

// CheckValues verifies every stored rate is a finite non-negative number,
// memoising success exactly like the dense tensor.
func (d *SparseDemand) CheckValues() error {
	if d.checked.Load() {
		return nil
	}
	for t := 0; t < d.t; t++ {
		for n := 0; n < d.n; n++ {
			r := &d.rows[t][n]
			for m, col := range r.rates {
				for i, v := range col {
					if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
						return fmt.Errorf("model: demand rate λ(t=%d, n=%d, m=%d, k=%d) = %g, want finite ≥ 0",
							t, n, m, r.items[i], v)
					}
				}
			}
		}
	}
	d.checked.Store(true)
	return nil
}

// conforms reports whether the tensor's shape matches the instance.
func (d *SparseDemand) conforms(in *Instance) error {
	if d.t != in.T {
		return fmt.Errorf("model: demand has %d slots, instance has %d", d.t, in.T)
	}
	if d.n != in.N {
		return fmt.Errorf("model: demand has %d SBSs, instance has %d", d.n, in.N)
	}
	if d.k != in.K {
		return fmt.Errorf("model: demand has %d contents, instance has %d", d.k, in.K)
	}
	for n := 0; n < in.N; n++ {
		if d.classes[n] != in.Classes[n] {
			return fmt.Errorf("model: demand has %d classes at SBS %d, instance has %d", d.classes[n], n, in.Classes[n])
		}
	}
	return nil
}
