package model

import (
	"math"
	"strings"
	"testing"
)

// overlayInstance attaches a simple overlay to the standard test
// instance: SBS 0 loses all bandwidth and cache at slot 1 (full
// outage); SBS 1 keeps base values throughout.
func overlayInstance(t *testing.T) *Instance {
	t.Helper()
	in := testInstance(t)
	in.Overlay = &Overlay{
		Bandwidth: [][]float64{{10, 10}, {0, 10}},
		CacheCap:  [][]int{{1, 2}, {0, 2}},
	}
	if err := in.Validate(); err != nil {
		t.Fatalf("overlayInstance invalid: %v", err)
	}
	return in
}

func TestValidateRejectsNonFinite(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	tests := []struct {
		name    string
		mutate  func(*Instance)
		wantSub string
	}{
		{"NaN bandwidth", func(in *Instance) { in.Bandwidth[0] = nan }, "Bandwidth[0]"},
		{"Inf bandwidth", func(in *Instance) { in.Bandwidth[1] = inf }, "Bandwidth[1]"},
		{"NaN beta", func(in *Instance) { in.Beta[1] = nan }, "Beta[1]"},
		{"Inf beta", func(in *Instance) { in.Beta[0] = inf }, "Beta[0]"},
		{"NaN omega BS", func(in *Instance) { in.OmegaBS[0][1] = nan }, "OmegaBS[0][1]"},
		{"Inf omega BS", func(in *Instance) { in.OmegaBS[1][0] = inf }, "OmegaBS[1][0]"},
		{"NaN omega SBS", func(in *Instance) { in.OmegaSBS[0][0] = nan }, "OmegaSBS[0][0]"},
		{"Inf omega SBS", func(in *Instance) { in.OmegaSBS[1][0] = inf }, "OmegaSBS[1][0]"},
		// Set panics on bad rates, so smuggle the value through the
		// aliasing Slot row of a fresh (never-validated) tensor — the
		// path CheckValues exists to catch.
		{"NaN demand", func(in *Instance) {
			in.Demand = NewDemand(2, []int{2, 1}, 3)
			in.Demand.Slot(1, 0)[2] = nan
		}, "λ(t=1, n=0, m=0, k=2)"},
		{"Inf demand", func(in *Instance) {
			in.Demand = NewDemand(2, []int{2, 1}, 3)
			in.Demand.Slot(0, 1)[0] = inf
		}, "λ(t=0, n=1, m=0, k=0)"},
		{"negative demand", func(in *Instance) {
			in.Demand = NewDemand(2, []int{2, 1}, 3)
			in.Demand.Slot(0, 0)[4] = -3
		}, "λ(t=0, n=0, m=1, k=1)"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			in := testInstance(t)
			tc.mutate(in)
			err := in.Validate()
			if err == nil {
				t.Fatalf("Validate() = nil, want error containing %q", tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("Validate() = %q, want substring %q", err, tc.wantSub)
			}
		})
	}
}

func TestDemandCheckValuesMemoised(t *testing.T) {
	in := testInstance(t)
	if err := in.Demand.CheckValues(); err != nil {
		t.Fatalf("CheckValues() = %v, want nil", err)
	}
	// After a passing scan the tensor is marked checked; a smuggled NaN is
	// no longer caught. This documents the memoisation contract: Slot rows
	// must be treated as read-only after validation.
	in.Demand.Slot(0, 0)[0] = math.NaN()
	if err := in.Demand.CheckValues(); err != nil {
		t.Fatalf("CheckValues() after pass = %v, want memoised nil", err)
	}
	// A fresh tensor with the same trick is caught.
	d := NewDemand(1, []int{1}, 2)
	d.Slot(0, 0)[1] = math.Inf(-1)
	if err := d.CheckValues(); err == nil {
		t.Fatal("CheckValues() = nil for Inf rate, want error")
	}
}

func TestOverlayValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Instance)
		wantSub string
	}{
		{"bandwidth slots", func(in *Instance) { in.Overlay.Bandwidth = [][]float64{{1, 1}} }, "covers 1 slots"},
		{"bandwidth sbs", func(in *Instance) { in.Overlay.Bandwidth[1] = []float64{1} }, "covers 1 SBSs"},
		{"cachecap slots", func(in *Instance) { in.Overlay.CacheCap = [][]int{{1, 1}} }, "covers 1 slots"},
		{"cachecap sbs", func(in *Instance) { in.Overlay.CacheCap[0] = []int{1} }, "covers 1 SBSs"},
		{"NaN bandwidth", func(in *Instance) { in.Overlay.Bandwidth[0][0] = math.NaN() }, "want finite"},
		{"negative bandwidth", func(in *Instance) { in.Overlay.Bandwidth[0][1] = -1 }, "outside [0, base"},
		{"amplified bandwidth", func(in *Instance) { in.Overlay.Bandwidth[1][1] = 11 }, "outside [0, base"},
		{"negative cachecap", func(in *Instance) { in.Overlay.CacheCap[1][0] = -1 }, "outside [0, base"},
		{"amplified cachecap", func(in *Instance) { in.Overlay.CacheCap[0][1] = 3 }, "outside [0, base"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			in := overlayInstance(t)
			tc.mutate(in)
			err := in.Validate()
			if err == nil {
				t.Fatalf("Validate() = nil, want error containing %q", tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("Validate() = %q, want substring %q", err, tc.wantSub)
			}
		})
	}
}

func TestOverlayAccessors(t *testing.T) {
	in := overlayInstance(t)
	if got := in.BandwidthAt(0, 0); got != 10 {
		t.Errorf("BandwidthAt(0,0) = %g, want 10", got)
	}
	if got := in.BandwidthAt(1, 0); got != 0 {
		t.Errorf("BandwidthAt(1,0) = %g, want 0", got)
	}
	if got := in.CacheCapAt(1, 0); got != 0 {
		t.Errorf("CacheCapAt(1,0) = %d, want 0", got)
	}
	if got := in.CacheCapFloor(0); got != 0 {
		t.Errorf("CacheCapFloor(0) = %d, want 0", got)
	}
	if got := in.CacheCapFloor(1); got != 2 {
		t.Errorf("CacheCapFloor(1) = %d, want 2", got)
	}
	if !in.OutageAt(1, 0) {
		t.Error("OutageAt(1,0) = false, want true")
	}
	if in.OutageAt(0, 0) || in.OutageAt(1, 1) {
		t.Error("OutageAt reported an outage on a healthy (t, n)")
	}
	if got := in.EventSlots(); len(got) != 1 || got[0] != 1 {
		t.Errorf("EventSlots() = %v, want [1]", got)
	}

	// No overlay: base values everywhere, no events.
	base := testInstance(t)
	if got := base.BandwidthAt(1, 1); got != 10 {
		t.Errorf("BandwidthAt without overlay = %g, want 10", got)
	}
	if got := base.CacheCapFloor(0); got != 1 {
		t.Errorf("CacheCapFloor without overlay = %d, want 1", got)
	}
	if got := base.EventSlots(); got != nil {
		t.Errorf("EventSlots without overlay = %v, want nil", got)
	}
}

func TestEventSlotsDetectsSlotZero(t *testing.T) {
	in := testInstance(t)
	// Degraded from the very first slot: the overlay differs from base at
	// t = 0, and recovers at t = 1 — both are events.
	in.Overlay = &Overlay{Bandwidth: [][]float64{{5, 10}, {10, 10}}}
	if err := in.Validate(); err != nil {
		t.Fatalf("Validate() = %v", err)
	}
	if got := in.EventSlots(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("EventSlots() = %v, want [0 1]", got)
	}
}

func TestWindowSlicesOverlay(t *testing.T) {
	in := overlayInstance(t)
	w, err := in.Window(1, 2, nil, nil)
	if err != nil {
		t.Fatalf("Window: %v", err)
	}
	if w.Overlay == nil {
		t.Fatal("window lost the overlay")
	}
	if got := w.BandwidthAt(0, 0); got != 0 {
		t.Errorf("window BandwidthAt(0,0) = %g, want 0 (outage slot)", got)
	}
	if got := w.CacheCapAt(0, 1); got != 2 {
		t.Errorf("window CacheCapAt(0,1) = %d, want 2", got)
	}
}

func TestCheckSlotHonoursOverlay(t *testing.T) {
	in := overlayInstance(t)
	// A decision that is feasible at slot 0 (base values) but places load
	// and cache on SBS 0 must be rejected at slot 1 (outage).
	dec := SlotDecision{X: NewCachePlan(2, 3), Y: NewLoadPlan([]int{2, 1}, 3)}
	dec.X[0][0] = 1
	dec.Y[0][0][0] = 1
	if err := in.CheckSlot(0, dec, DefaultTol); err != nil {
		t.Fatalf("CheckSlot(0) = %v, want nil", err)
	}
	err := in.CheckSlot(1, dec, DefaultTol)
	if err == nil {
		t.Fatal("CheckSlot(1) = nil, want effective-capacity violation")
	}
	if !strings.Contains(err.Error(), "effective capacity") {
		t.Errorf("CheckSlot(1) = %q, want effective capacity error", err)
	}
	// Load alone (no cache) on the dead SBS trips the bandwidth check.
	dec.X[0][0] = 0
	dec.Y[0][0][0] = 0
	dec.Y[0][1][0] = 0 // keep coupling satisfied
	dec.X[1][0] = 1
	dec.Y[1][0][0] = 1
	if err := in.CheckSlot(1, dec, DefaultTol); err != nil {
		t.Fatalf("CheckSlot(1) healthy SBS = %v, want nil", err)
	}
}

func TestPerSBSCarriesOverlay(t *testing.T) {
	in := overlayInstance(t)
	sub, err := in.PerSBS(0)
	if err != nil {
		t.Fatalf("PerSBS(0): %v", err)
	}
	if sub.Overlay == nil {
		t.Fatal("PerSBS dropped the overlay")
	}
	if got := sub.BandwidthAt(1, 0); got != 0 {
		t.Errorf("sub BandwidthAt(1,0) = %g, want 0", got)
	}
	if got := sub.CacheCapAt(1, 0); got != 0 {
		t.Errorf("sub CacheCapAt(1,0) = %d, want 0", got)
	}
	sub1, err := in.PerSBS(1)
	if err != nil {
		t.Fatalf("PerSBS(1): %v", err)
	}
	if got := sub1.BandwidthAt(1, 0); got != 10 {
		t.Errorf("sub1 BandwidthAt(1,0) = %g, want 10", got)
	}
}

// FuzzInstanceValidate feeds malformed scalar fields into Validate and
// checks it either rejects the instance or accepts one on which every
// accessor is safe to call. The seed corpus enumerates the malformed
// shapes the validator was hardened against: NaN/Inf capacities, rates
// and weights, and out-of-range overlays.
func FuzzInstanceValidate(f *testing.F) {
	nan, inf := math.NaN(), math.Inf(1)
	// (bandwidth, beta, omegaBS, rate, overlayB; overlayC)
	f.Add(10.0, 5.0, 1.0, 2.0, 10.0, 1)
	f.Add(nan, 5.0, 1.0, 2.0, 10.0, 1)
	f.Add(inf, 5.0, 1.0, 2.0, 10.0, 1)
	f.Add(10.0, nan, 1.0, 2.0, 10.0, 1)
	f.Add(10.0, -inf, 1.0, 2.0, 10.0, 1)
	f.Add(10.0, 5.0, nan, 2.0, 10.0, 1)
	f.Add(10.0, 5.0, inf, 2.0, 10.0, 1)
	f.Add(10.0, 5.0, 1.0, nan, 10.0, 1)
	f.Add(10.0, 5.0, 1.0, inf, 10.0, 1)
	f.Add(10.0, 5.0, 1.0, -1.0, 10.0, 1)
	f.Add(10.0, 5.0, 1.0, 2.0, nan, 1)
	f.Add(10.0, 5.0, 1.0, 2.0, -2.0, 1)
	f.Add(10.0, 5.0, 1.0, 2.0, 99.0, 1)
	f.Add(10.0, 5.0, 1.0, 2.0, 10.0, -1)
	f.Add(10.0, 5.0, 1.0, 2.0, 10.0, 7)
	f.Add(-4.0, -4.0, -4.0, -4.0, -4.0, -4)
	f.Fuzz(func(t *testing.T, bw, beta, omega, rate, ovB float64, ovC int) {
		d := NewDemand(2, []int{1}, 2)
		// Route the rate through the aliasing Slot row so invalid values
		// reach Validate instead of panicking in Set.
		d.Slot(0, 0)[0] = rate
		in := &Instance{
			N: 1, K: 2, T: 2,
			Classes:   []int{1},
			CacheCap:  []int{1},
			Bandwidth: []float64{bw},
			OmegaBS:   [][]float64{{omega}},
			OmegaSBS:  [][]float64{{0}},
			Beta:      []float64{beta},
			Demand:    d,
			Overlay: &Overlay{
				Bandwidth: [][]float64{{ovB}, {ovB}},
				CacheCap:  [][]int{{ovC}, {ovC}},
			},
		}
		err := in.Validate()
		valid := bw >= 0 && !math.IsNaN(bw) && !math.IsInf(bw, 0) &&
			beta >= 0 && !math.IsNaN(beta) && !math.IsInf(beta, 0) &&
			omega >= 0 && !math.IsNaN(omega) && !math.IsInf(omega, 0) &&
			rate >= 0 && !math.IsNaN(rate) && !math.IsInf(rate, 0) &&
			ovB >= 0 && ovB <= bw && !math.IsNaN(ovB) &&
			ovC >= 0 && ovC <= 1
		if valid && err != nil {
			t.Fatalf("Validate() = %v for a well-formed instance", err)
		}
		if !valid && err == nil {
			t.Fatalf("Validate() = nil for malformed instance (bw=%g beta=%g omega=%g rate=%g ovB=%g ovC=%d)",
				bw, beta, omega, rate, ovB, ovC)
		}
		if err == nil {
			// Accessors must be total on validated instances.
			for tt := 0; tt < in.T; tt++ {
				_ = in.BandwidthAt(tt, 0)
				_ = in.CacheCapAt(tt, 0)
				_ = in.OutageAt(tt, 0)
			}
			_ = in.CacheCapFloor(0)
			_ = in.EventSlots()
		}
	})
}
