package model

// This file implements the three cost components of the paper's objective
// (eq. 9): the BS operating cost f_t (eq. 5), the SBS operating cost g_t
// (eq. 6) and the cache replacement cost h (eq. 8).

// BSCost returns f_t(Y), the BS operating cost of slot t under load split Y:
//
//	f_t(Y) = Σ_n ( Σ_m ω_{m_n} Σ_k (1 − y_{m,k}) λ^t_{m,k} )².
//
// It is non-decreasing and jointly convex in Y, as required by §II-B.
func (in *Instance) BSCost(t int, y LoadPlan) float64 {
	var total float64
	for n := 0; n < in.N; n++ {
		// Accumulate per class through the active-coordinate iterator:
		// classes arrive in ascending order, so flushing w·unserved on
		// every class change reproduces the dense scan's summation order
		// (skipped zero-rate terms contribute an exact +0.0).
		var load, unserved float64
		cur := 0
		yn := y[n]
		omega := in.OmegaBS[n]
		in.Demand.ForEachActive(t, n, func(m, k int, rate float64) {
			if m != cur {
				load += omega[cur] * unserved
				unserved = 0
				cur = m
			}
			unserved += (1 - yn[m][k]) * rate
		})
		load += omega[cur] * unserved
		total += load * load
	}
	return total
}

// SBSCost returns g_t(Y), the SBS operating cost of slot t:
//
//	g_t(Y) = Σ_n ( Σ_m ŵ_{m_n} Σ_k y_{m,k} λ^t_{m,k} )².
func (in *Instance) SBSCost(t int, y LoadPlan) float64 {
	var total float64
	for n := 0; n < in.N; n++ {
		var load, served float64
		cur := 0
		yn := y[n]
		omega := in.OmegaSBS[n]
		in.Demand.ForEachActive(t, n, func(m, k int, rate float64) {
			if m != cur {
				load += omega[cur] * served
				served = 0
				cur = m
			}
			served += yn[m][k] * rate
		})
		load += omega[cur] * served
		total += load * load
	}
	return total
}

// ReplacementCost returns h(X, Xprev) = Σ_n β_n Σ_k (x_{n,k} − xprev_{n,k})⁺,
// the cost of fetching newly cached items between consecutive slots (eq. 8).
// It accepts fractional plans (used on relaxed iterates); on integral plans
// it is β_n times the number of newly inserted items.
func (in *Instance) ReplacementCost(prev, cur CachePlan) float64 {
	var total float64
	for n := 0; n < in.N; n++ {
		var inserted float64
		for k := 0; k < in.K; k++ {
			if d := cur[n][k] - prev[n][k]; d > 0 {
				inserted += d
			}
		}
		total += in.Beta[n] * inserted
	}
	return total
}

// ReplacementCount returns the number of cache insertions between two
// integral plans: Σ_{n,k} [cur_{n,k} = 1 ∧ prev_{n,k} = 0]. This is the
// "number of cache replacement times" series of Figs. 2c, 3b and 4b.
func ReplacementCount(prev, cur CachePlan) int {
	var count int
	for n := range cur {
		for k := range cur[n] {
			if cur[n][k] >= 0.5 && prev[n][k] < 0.5 {
				count++
			}
		}
	}
	return count
}

// SlotCost returns the full per-slot cost f_t + g_t + h for a decision made
// at slot t given the previous placement.
func (in *Instance) SlotCost(t int, prev CachePlan, dec SlotDecision) float64 {
	return in.BSCost(t, dec.Y) + in.SBSCost(t, dec.Y) + in.ReplacementCost(prev, dec.X)
}

// CostBreakdown decomposes a trajectory's objective value into the paper's
// reported series.
type CostBreakdown struct {
	// Total = BS + SBS + Replacement, the objective of eq. (9).
	Total float64 `json:"total"`
	// BS is Σ_t f_t, the "operating cost of BS" of Fig. 2d.
	BS float64 `json:"bsCost"`
	// SBS is Σ_t g_t.
	SBS float64 `json:"sbsCost"`
	// Replacement is Σ_t h(X^t, X^{t−1}), the series of Fig. 2b.
	Replacement float64 `json:"replacementCost"`
	// Replacements is the total insertion count, the series of Fig. 2c.
	Replacements int `json:"replacements"`
}

// TotalCost evaluates the objective of eq. (9) along a trajectory, starting
// from the instance's initial placement.
func (in *Instance) TotalCost(traj Trajectory) CostBreakdown {
	var br CostBreakdown
	prev := in.InitialPlan()
	for t := range traj {
		br.BS += in.BSCost(t, traj[t].Y)
		br.SBS += in.SBSCost(t, traj[t].Y)
		br.Replacement += in.ReplacementCost(prev, traj[t].X)
		br.Replacements += ReplacementCount(prev, traj[t].X)
		prev = traj[t].X
	}
	br.Total = br.BS + br.SBS + br.Replacement
	return br
}

// NoCachingCost returns the objective value of the null policy that serves
// every request from the BS (x = y = 0): Σ_t f_t(0). It upper-bounds every
// feasible policy's BS cost and anchors "cost reduction" percentages.
func (in *Instance) NoCachingCost() float64 {
	var total float64
	y := NewLoadPlan(in.Classes, in.K)
	for t := 0; t < in.T; t++ {
		total += in.BSCost(t, y)
	}
	return total
}
