package model

import (
	"fmt"
	"math"
)

// Overlay holds slot-varying *effective* capacities imposed on an
// instance by infrastructure faults (package fault): SBS outages,
// backhaul degradation, cache shrinkage. The base Bandwidth/CacheCap
// fields keep describing the provisioned hardware; the overlay describes
// what of it is actually usable at each slot. A nil overlay means the
// base values hold for the whole horizon — the paper's failure-free
// model, and the representation every pre-fault code path sees.
//
// Effective values are accessed through Instance.BandwidthAt and
// Instance.CacheCapAt; all feasibility checks (CheckSlot,
// CheckTrajectory, the auditor) validate against the effective view, so
// a trajectory is only "feasible" if it respects every fault. An overlay
// may only degrade: effective values must lie in [0, base].
//
// An Overlay is immutable once attached to an Instance and safe for
// concurrent readers, like the instance itself.
type Overlay struct {
	// Bandwidth[t][n] is the effective bandwidth B^t_n. Nil leaves the
	// base Bandwidth in force for every slot.
	Bandwidth [][]float64
	// CacheCap[t][n] is the effective cache capacity C^t_n. Nil leaves
	// the base CacheCap in force for every slot.
	CacheCap [][]int
}

// validate checks the overlay against the instance's dimensions and the
// degradation-only invariant.
func (ov *Overlay) validate(in *Instance) error {
	if ov == nil {
		return nil
	}
	if ov.Bandwidth != nil {
		if len(ov.Bandwidth) != in.T {
			return fmt.Errorf("model: overlay bandwidth covers %d slots, want T = %d", len(ov.Bandwidth), in.T)
		}
		for t := range ov.Bandwidth {
			if len(ov.Bandwidth[t]) != in.N {
				return fmt.Errorf("model: overlay bandwidth[%d] covers %d SBSs, want N = %d", t, len(ov.Bandwidth[t]), in.N)
			}
			for n, b := range ov.Bandwidth[t] {
				if math.IsNaN(b) || math.IsInf(b, 0) {
					return fmt.Errorf("model: overlay Bandwidth[%d][%d] = %g, want finite", t, n, b)
				}
				if b < 0 || b > in.Bandwidth[n] {
					return fmt.Errorf("model: overlay Bandwidth[%d][%d] = %g outside [0, base %g]", t, n, b, in.Bandwidth[n])
				}
			}
		}
	}
	if ov.CacheCap != nil {
		if len(ov.CacheCap) != in.T {
			return fmt.Errorf("model: overlay cache capacity covers %d slots, want T = %d", len(ov.CacheCap), in.T)
		}
		for t := range ov.CacheCap {
			if len(ov.CacheCap[t]) != in.N {
				return fmt.Errorf("model: overlay cacheCap[%d] covers %d SBSs, want N = %d", t, len(ov.CacheCap[t]), in.N)
			}
			for n, c := range ov.CacheCap[t] {
				if c < 0 || c > in.CacheCap[n] {
					return fmt.Errorf("model: overlay CacheCap[%d][%d] = %d outside [0, base %d]", t, n, c, in.CacheCap[n])
				}
			}
		}
	}
	return nil
}

// BandwidthAt returns the effective bandwidth B^t_n: the overlay value
// when one is attached, the base Bandwidth[n] otherwise.
func (in *Instance) BandwidthAt(t, n int) float64 {
	if in.Overlay != nil && in.Overlay.Bandwidth != nil {
		return in.Overlay.Bandwidth[t][n]
	}
	return in.Bandwidth[n]
}

// CacheCapAt returns the effective cache capacity C^t_n: the overlay
// value when one is attached, the base CacheCap[n] otherwise.
func (in *Instance) CacheCapAt(t, n int) int {
	if in.Overlay != nil && in.Overlay.CacheCap != nil {
		return in.Overlay.CacheCap[t][n]
	}
	return in.CacheCap[n]
}

// CacheCapFloor returns min_t C^t_n over the instance's horizon — the
// capacity a placement may rely on at every slot. The time-expanded P1
// flow network plans against this floor (a single per-SBS commodity
// cannot express per-slot capacities), which is conservative inside a
// window but always feasible; the per-slot rounding repair then enforces
// the exact C^t_n at commit time. Without an overlay this is CacheCap[n].
func (in *Instance) CacheCapFloor(n int) int {
	if in.Overlay == nil || in.Overlay.CacheCap == nil {
		return in.CacheCap[n]
	}
	floor := in.CacheCap[n]
	for t := 0; t < in.T; t++ {
		if c := in.Overlay.CacheCap[t][n]; c < floor {
			floor = c
		}
	}
	return floor
}

// OutageAt reports whether SBS n is fully down at slot t: zero effective
// bandwidth and zero effective cache capacity. A down SBS must carry no
// load and cache nothing; the auditor checks this strictly.
func (in *Instance) OutageAt(t, n int) bool {
	return in.BandwidthAt(t, n) == 0 && in.CacheCapAt(t, n) == 0
}

// EventSlots returns, in increasing order, every slot t ≥ 1 at which
// some SBS's effective (bandwidth, capacity) pair differs from slot
// t−1, plus slot 0 when it differs from the base values — the topology
// events a failure-aware online controller must replan at. Nil when the
// instance has no overlay.
func (in *Instance) EventSlots() []int {
	if in.Overlay == nil {
		return nil
	}
	var out []int
	for t := 0; t < in.T; t++ {
		changed := false
		for n := 0; n < in.N; n++ {
			prevB, prevC := in.Bandwidth[n], in.CacheCap[n]
			if t > 0 {
				prevB, prevC = in.BandwidthAt(t-1, n), in.CacheCapAt(t-1, n)
			}
			if in.BandwidthAt(t, n) != prevB || in.CacheCapAt(t, n) != prevC {
				changed = true
				break
			}
		}
		if changed {
			out = append(out, t)
		}
	}
	return out
}

// sliceOverlay returns the overlay restricted to slots [from, to), or
// nil when the instance has none. Rows are shared (the overlay is
// immutable), so slicing allocates only the outer spine.
func (in *Instance) sliceOverlay(from, to int) *Overlay {
	if in.Overlay == nil {
		return nil
	}
	out := &Overlay{}
	if in.Overlay.Bandwidth != nil {
		out.Bandwidth = in.Overlay.Bandwidth[from:to]
	}
	if in.Overlay.CacheCap != nil {
		out.CacheCap = in.Overlay.CacheCap[from:to]
	}
	return out
}
