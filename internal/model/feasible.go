package model

import (
	"fmt"
	"math"
)

// This file implements the constraint checks of §II-A: cache capacity
// (eq. 1), SBS bandwidth (eq. 2), the caching/load coupling y ≤ x (eq. 3)
// and the variable domains (eqs. 10–11).

// checkCacheShape verifies the placement has the instance's dimensions.
func (in *Instance) checkCacheShape(x CachePlan) error {
	if len(x) != in.N {
		return fmt.Errorf("placement has %d SBSs, want %d", len(x), in.N)
	}
	for n := range x {
		if len(x[n]) != in.K {
			return fmt.Errorf("placement row %d has %d contents, want %d", n, len(x[n]), in.K)
		}
	}
	return nil
}

// checkLoadShape verifies the load split has the instance's dimensions.
func (in *Instance) checkLoadShape(y LoadPlan) error {
	if len(y) != in.N {
		return fmt.Errorf("load split has %d SBSs, want %d", len(y), in.N)
	}
	for n := range y {
		if len(y[n]) != in.Classes[n] {
			return fmt.Errorf("load split row %d has %d classes, want %d", n, len(y[n]), in.Classes[n])
		}
		for m := range y[n] {
			if len(y[n][m]) != in.K {
				return fmt.Errorf("load split row (%d, %d) has %d contents, want %d", n, m, len(y[n][m]), in.K)
			}
		}
	}
	return nil
}

// checkCacheCapacity verifies eq. (1) against the base capacities:
// Σ_k x_{n,k} ≤ C_n. Used for the initial cache, which is in force
// before slot 0 and therefore before any fault overlay applies.
func (in *Instance) checkCacheCapacity(x CachePlan, tol float64) error {
	for n := 0; n < in.N; n++ {
		var used float64
		for k := 0; k < in.K; k++ {
			used += x[n][k]
		}
		if used > float64(in.CacheCap[n])+tol {
			return fmt.Errorf("cache capacity violated at SBS %d: %g items cached, capacity %d", n, used, in.CacheCap[n])
		}
	}
	return nil
}

// checkCacheCapacityAt verifies eq. (1) at slot t against the effective
// capacity C^t_n (identical to the base check without an overlay).
func (in *Instance) checkCacheCapacityAt(t int, x CachePlan, tol float64) error {
	for n := 0; n < in.N; n++ {
		var used float64
		for k := 0; k < in.K; k++ {
			used += x[n][k]
		}
		if c := in.CacheCapAt(t, n); used > float64(c)+tol {
			return fmt.Errorf("cache capacity violated at SBS %d: %g items cached, effective capacity %d", n, used, c)
		}
	}
	return nil
}

// CheckSlot verifies the decision for slot t against every per-slot
// constraint of §II-A within tolerance tol. It does not require x to be
// integral (relaxed iterates are legal); use CachePlan.IsIntegral for the
// integrality requirement of committed plans.
func (in *Instance) CheckSlot(t int, dec SlotDecision, tol float64) error {
	if t < 0 || t >= in.T {
		return fmt.Errorf("model: slot %d outside horizon [0, %d)", t, in.T)
	}
	if err := in.checkCacheShape(dec.X); err != nil {
		return fmt.Errorf("model: slot %d: %w", t, err)
	}
	if err := in.checkLoadShape(dec.Y); err != nil {
		return fmt.Errorf("model: slot %d: %w", t, err)
	}
	// Domains (eqs. 10–11).
	for n := 0; n < in.N; n++ {
		for k := 0; k < in.K; k++ {
			if v := dec.X[n][k]; v < -tol || v > 1+tol || math.IsNaN(v) {
				return fmt.Errorf("model: slot %d: x[%d][%d] = %g outside [0, 1]", t, n, k, v)
			}
		}
		for m := 0; m < in.Classes[n]; m++ {
			for k := 0; k < in.K; k++ {
				if v := dec.Y[n][m][k]; v < -tol || v > 1+tol || math.IsNaN(v) {
					return fmt.Errorf("model: slot %d: y[%d][%d][%d] = %g outside [0, 1]", t, n, m, k, v)
				}
			}
		}
	}
	// Cache capacity (eq. 1), against the slot's effective C^t_n.
	if err := in.checkCacheCapacityAt(t, dec.X, tol); err != nil {
		return fmt.Errorf("model: slot %d: %w", t, err)
	}
	// Bandwidth (eq. 2) and coupling (eq. 3). The coupling check is
	// demand-independent, so it scans the dense plans; the served load is
	// demand-weighted and accumulates over the active coordinates only
	// (zero-rate terms contribute an exact +0.0 to the dense sum).
	for n := 0; n < in.N; n++ {
		for m := 0; m < in.Classes[n]; m++ {
			for k := 0; k < in.K; k++ {
				if dec.Y[n][m][k] > dec.X[n][k]+tol {
					return fmt.Errorf("model: slot %d: coupling violated at SBS %d: y[%d][%d] = %g > x[%d] = %g",
						t, n, m, k, dec.Y[n][m][k], k, dec.X[n][k])
				}
			}
		}
		var served float64
		yn := dec.Y[n]
		in.Demand.ForEachActive(t, n, func(m, k int, rate float64) {
			served += rate * yn[m][k]
		})
		// Scale the bandwidth tolerance by demand volume so that checks
		// remain meaningful across workload magnitudes. The budget is the
		// slot's effective B^t_n, which a fault overlay may shrink.
		scale := 1 + in.Demand.SlotTotal(t, n)
		if bw := in.BandwidthAt(t, n); served > bw+tol*scale {
			return fmt.Errorf("model: slot %d: bandwidth violated at SBS %d: load %g > %g", t, n, served, bw)
		}
	}
	return nil
}

// CheckTrajectory verifies every slot of a trajectory and that its length
// matches the horizon.
func (in *Instance) CheckTrajectory(traj Trajectory, tol float64) error {
	if len(traj) != in.T {
		return fmt.Errorf("model: trajectory has %d slots, want %d", len(traj), in.T)
	}
	for t := range traj {
		if err := in.CheckSlot(t, traj[t], tol); err != nil {
			return err
		}
	}
	return nil
}
