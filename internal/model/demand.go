package model

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Demand holds the mean request rates λ^t_{m_n,k} for every slot t, SBS n,
// user class m and content k. Storage is flat per (t, n) for cache locality
// in the solvers' inner loops.
type Demand struct {
	t, n    int
	classes []int
	k       int
	// data[t][n] is a row-major (class, content) matrix of length
	// classes[n]*k.
	data [][][]float64
	// checked records that a full CheckValues scan has passed. Set and
	// Map preserve validity (they panic on invalid writes), so a tensor
	// that passed once never needs rescanning. Atomic because instances
	// are validated from concurrent window solves.
	checked atomic.Bool
}

// NewDemand allocates an all-zero demand tensor for T slots, len(classes)
// SBSs with classes[n] user classes each, and k contents.
func NewDemand(t int, classes []int, k int) *Demand {
	d := &Demand{
		t:       t,
		n:       len(classes),
		classes: append([]int(nil), classes...),
		k:       k,
		data:    make([][][]float64, t),
	}
	for ti := range d.data {
		d.data[ti] = make([][]float64, d.n)
		for n := range d.data[ti] {
			d.data[ti][n] = make([]float64, classes[n]*k)
		}
	}
	return d
}

// T returns the number of slots covered by the demand tensor.
func (d *Demand) T() int { return d.t }

// N returns the number of SBSs covered by the demand tensor.
func (d *Demand) N() int { return d.n }

// K returns the number of contents covered by the demand tensor.
func (d *Demand) K() int { return d.k }

// Classes returns the per-SBS class counts. The returned slice is shared;
// callers must not modify it.
func (d *Demand) Classes() []int { return d.classes }

// At returns λ^t_{m_n,k}.
func (d *Demand) At(t, n, m, k int) float64 {
	return d.data[t][n][m*d.k+k]
}

// Set assigns λ^t_{m_n,k} = v. Rates must be non-negative and finite;
// violating values panic, as they indicate a generator bug rather than a
// runtime condition a caller could handle.
func (d *Demand) Set(t, n, m, k int, v float64) {
	if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		panic(fmt.Sprintf("model: demand rate %g at (t=%d n=%d m=%d k=%d) is not a finite non-negative number", v, t, n, m, k))
	}
	d.data[t][n][m*d.k+k] = v
}

// Slot returns the row-major (class, content) rate matrix for (t, n). The
// returned slice aliases internal storage and must be treated as read-only.
//
// Deprecated: Slot hard-codes O(K) work per plane and cannot be served
// cheaply by sparse backings. Use ForEachActive, At or CopySlot (see the
// DemandView contract).
func (d *Demand) Slot(t, n int) []float64 { return d.data[t][n] }

// CopySlot writes the row-major (class, content) rate matrix of (t, n)
// into dst, growing it when needed, and returns it. The result never
// aliases internal storage.
func (d *Demand) CopySlot(dst []float64, t, n int) []float64 {
	row := d.data[t][n]
	if cap(dst) < len(row) {
		dst = make([]float64, len(row))
	}
	dst = dst[:len(row)]
	copy(dst, row)
	return dst
}

// ForEachActive calls fn for every coordinate with λ ≠ 0 at (t, n), in the
// order of a dense row scan: class-major, contents ascending.
func (d *Demand) ForEachActive(t, n int, fn func(m, k int, rate float64)) {
	row := d.data[t][n]
	for m := 0; m < d.classes[n]; m++ {
		base := m * d.k
		for j, v := range row[base : base+d.k] {
			if v != 0 {
				fn(m, j, v)
			}
		}
	}
}

// ActiveItems returns the sorted contents with any positive demand at
// (t, n). The slice is freshly allocated.
func (d *Demand) ActiveItems(t, n int) []int {
	row := d.data[t][n]
	var items []int
	for k := 0; k < d.k; k++ {
		for m := 0; m < d.classes[n]; m++ {
			if row[m*d.k+k] != 0 {
				items = append(items, k)
				break
			}
		}
	}
	return items
}

// SlotTotal returns Σ_{m,k} λ^t_{m,k} for SBS n at slot t: the aggregate
// request volume the SBS's users generate in that slot.
func (d *Demand) SlotTotal(t, n int) float64 {
	var sum float64
	for _, v := range d.data[t][n] {
		sum += v
	}
	return sum
}

// ContentTotal returns Σ_m λ^t_{m,k}: the aggregate demand for content k at
// SBS n in slot t, the quantity the paper's LRFU baseline ranks by.
func (d *Demand) ContentTotal(t, n, k int) float64 {
	var sum float64
	row := d.data[t][n]
	for m := 0; m < d.classes[n]; m++ {
		sum += row[m*d.k+k]
	}
	return sum
}

// Slice returns a deep copy of slots [from, to) as an independent dense
// Demand, so window solvers can perturb predictions without aliasing the
// ground truth.
func (d *Demand) Slice(from, to int) (DemandView, error) {
	if from < 0 || to > d.t || from >= to {
		return nil, fmt.Errorf("model: demand slice [%d, %d) outside [0, %d)", from, to, d.t)
	}
	out := NewDemand(to-from, d.classes, d.k)
	for t := from; t < to; t++ {
		for n := 0; n < d.n; n++ {
			copy(out.data[t-from][n], d.data[t][n])
		}
	}
	// A slice of a verified tensor is verified: Set/Map preserve validity.
	out.checked.Store(d.checked.Load())
	return out, nil
}

// Clone returns a deep copy of the whole tensor.
func (d *Demand) Clone() DemandView {
	out, err := d.Slice(0, d.t)
	if err != nil {
		panic("model: Clone: " + err.Error()) // unreachable: full range is valid
	}
	return out
}

// Map applies f to every rate and stores the result, returning d. It is the
// hook used to inject multiplicative prediction noise.
func (d *Demand) Map(f func(t, n, m, k int, v float64) float64) DemandView {
	for t := 0; t < d.t; t++ {
		for n := 0; n < d.n; n++ {
			row := d.data[t][n]
			for m := 0; m < d.classes[n]; m++ {
				for k := 0; k < d.k; k++ {
					v := f(t, n, m, k, row[m*d.k+k])
					if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
						panic(fmt.Sprintf("model: Map produced invalid rate %g", v))
					}
					row[m*d.k+k] = v
				}
			}
		}
	}
	return d
}

// CheckValues verifies every rate is a finite non-negative number,
// returning a field-precise error for the first offender. Set and Map
// maintain this invariant themselves, but tensors assembled through the
// aliasing Slot rows (or deserialised by hand) can smuggle NaN/Inf rates
// that historically only surfaced as solver misbehaviour deep in the
// primal-dual loop; Instance.Validate calls this so such tensors are
// rejected at construction instead. The scan is memoised: once a tensor
// passes it is never rescanned, so repeated validation (one per window
// solve) costs one atomic load.
func (d *Demand) CheckValues() error {
	if d.checked.Load() {
		return nil
	}
	for t := 0; t < d.t; t++ {
		for n := 0; n < d.n; n++ {
			row := d.data[t][n]
			for i, v := range row {
				if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
					return fmt.Errorf("model: demand rate λ(t=%d, n=%d, m=%d, k=%d) = %g, want finite ≥ 0",
						t, n, i/d.k, i%d.k, v)
				}
			}
		}
	}
	d.checked.Store(true)
	return nil
}

// conforms reports whether the tensor's shape matches the instance.
func (d *Demand) conforms(in *Instance) error {
	if d.t != in.T {
		return fmt.Errorf("model: demand has %d slots, instance has %d", d.t, in.T)
	}
	if d.n != in.N {
		return fmt.Errorf("model: demand has %d SBSs, instance has %d", d.n, in.N)
	}
	if d.k != in.K {
		return fmt.Errorf("model: demand has %d contents, instance has %d", d.k, in.K)
	}
	for n := 0; n < in.N; n++ {
		if d.classes[n] != in.Classes[n] {
			return fmt.Errorf("model: demand has %d classes at SBS %d, instance has %d", d.classes[n], n, in.Classes[n])
		}
	}
	return nil
}
