package trace

import (
	"context"
	"fmt"

	"edgecache/internal/convex"
	"edgecache/internal/loadbalance"
	"edgecache/internal/model"
	"edgecache/internal/parallel"
)

// PolicyAdapter evaluates a request-driven cache under the paper's cost
// model, so classic policies (LRU, FIFO, …) can be compared head-to-head
// with the optimization-based ones. It satisfies baseline.Policy (and
// hence plugs into package sim).
//
// Semantics: a Poisson trace is sampled from the instance's demand; each
// SBS's requests stream through a fresh cache; the placement x^t is the
// cache's contents at the end of slot t (net insertions between
// consecutive placements incur β, mirroring eq. 8 — intra-slot transient
// insertions that are evicted within the same slot are not charged, which
// slightly favours the classic policies); the load split is the optimal
// one for that placement.
type PolicyAdapter struct {
	// New builds the cache per SBS.
	New Factory
	// Seed drives trace sampling.
	Seed uint64
	// Convex configures the load-split solves.
	Convex convex.Options

	label string
}

// NewPolicyAdapter wraps a cache factory for cost-model evaluation.
func NewPolicyAdapter(f Factory, seed uint64) *PolicyAdapter {
	return &PolicyAdapter{New: f, Seed: seed, label: f(1).Name()}
}

// Name implements baseline.Policy.
func (p *PolicyAdapter) Name() string { return p.label }

// Plan implements baseline.Policy.
func (p *PolicyAdapter) Plan(ctx context.Context, in *model.Instance) (model.Trajectory, error) {
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if p.New == nil {
		return nil, fmt.Errorf("trace: nil cache factory")
	}
	tr := Generate(in.Demand, p.Seed)

	placements := make([]model.CachePlan, in.T)
	for t := range placements {
		placements[t] = model.NewCachePlan(in.N, in.K)
	}
	for n := 0; n < in.N; n++ {
		// Classic caches carry one fixed capacity, so under a fault
		// overlay they run at the horizon's floor (conservative).
		cache := p.New(in.CacheCapFloor(n))
		for t := 0; t < in.T; t++ {
			for _, req := range tr.Slot(t, n) {
				cache.Access(req.Content)
			}
			for _, k := range cache.Contents() {
				placements[t][n][k] = 1
			}
		}
	}

	traj := make(model.Trajectory, in.T)
	err := parallel.For(ctx, in.T, 0, func(t int) error {
		y, err := loadbalance.OptimalGivenPlacement(in, t, placements[t], p.Convex)
		if err != nil {
			return fmt.Errorf("trace: slot %d: %w", t, err)
		}
		traj[t] = model.SlotDecision{X: placements[t], Y: y}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return traj, nil
}
