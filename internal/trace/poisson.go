// Package trace provides request-level simulation beneath the paper's
// mean-rate model: Poisson sampling of discrete requests from a demand
// tensor, classic request-driven cache replacement policies (LRU, FIFO,
// LFU and the original LRFU of Lee et al. — the rule-based families the
// paper's §VI surveys), trace replay with hit-ratio accounting, and a
// bridge that evaluates any such cache under the paper's cost model.
//
// The paper itself works purely on mean rates; this package exists
// because a downstream user of the library will want to sanity-check the
// fluid model against discrete arrivals and to compare against the cache
// policies that actually run in CDN software.
package trace

import (
	"math"
	"math/rand/v2"
)

// poisson draws a Poisson(λ) variate. Knuth's product method covers small
// rates; larger rates use the normal approximation with continuity
// correction, which is accurate well past λ = 30 and keeps the sampler
// allocation-free.
func poisson(rng *rand.Rand, lambda float64) int {
	switch {
	case lambda <= 0:
		return 0
	case lambda < 30:
		// Knuth: count multiplications until the product falls below e^-λ.
		limit := math.Exp(-lambda)
		product := rng.Float64()
		count := 0
		for product > limit {
			product *= rng.Float64()
			count++
		}
		return count
	default:
		v := lambda + math.Sqrt(lambda)*rng.NormFloat64() + 0.5
		if v < 0 {
			return 0
		}
		return int(v)
	}
}
