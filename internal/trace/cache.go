package trace

import (
	"container/list"
	"fmt"
	"math"
)

// Cache is a request-driven cache replacement policy. Access records a
// request for content k and reports whether it hit, and whether the access
// inserted k into the cache (a demand-fill; insertions are what cost β in
// the paper's model).
type Cache interface {
	// Name labels the policy in results.
	Name() string
	// Access processes one request.
	Access(k int) (hit, inserted bool)
	// Contents lists the cached items in unspecified order.
	Contents() []int
}

// Factory builds a fresh cache of the given capacity; capacity 0 caches
// nothing.
type Factory func(capacity int) Cache

// --- LRU ---------------------------------------------------------------------

// lru evicts the least-recently-used item.
type lru struct {
	capacity int
	order    *list.List // front = most recent
	items    map[int]*list.Element
}

// NewLRU returns an LRU cache factory.
func NewLRU() Factory {
	return func(capacity int) Cache {
		return &lru{capacity: capacity, order: list.New(), items: make(map[int]*list.Element, capacity)}
	}
}

func (c *lru) Name() string { return "LRU" }

func (c *lru) Access(k int) (hit, inserted bool) {
	if el, ok := c.items[k]; ok {
		c.order.MoveToFront(el)
		return true, false
	}
	if c.capacity == 0 {
		return false, false
	}
	if len(c.items) >= c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(int))
	}
	c.items[k] = c.order.PushFront(k)
	return false, true
}

func (c *lru) Contents() []int {
	out := make([]int, 0, len(c.items))
	for k := range c.items {
		out = append(out, k)
	}
	return out
}

// --- FIFO --------------------------------------------------------------------

// fifo evicts the oldest-inserted item regardless of use.
type fifo struct {
	capacity int
	order    *list.List // front = newest
	items    map[int]*list.Element
}

// NewFIFO returns a FIFO cache factory.
func NewFIFO() Factory {
	return func(capacity int) Cache {
		return &fifo{capacity: capacity, order: list.New(), items: make(map[int]*list.Element, capacity)}
	}
}

func (c *fifo) Name() string { return "FIFO" }

func (c *fifo) Access(k int) (hit, inserted bool) {
	if _, ok := c.items[k]; ok {
		return true, false
	}
	if c.capacity == 0 {
		return false, false
	}
	if len(c.items) >= c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(int))
	}
	c.items[k] = c.order.PushFront(k)
	return false, true
}

func (c *fifo) Contents() []int {
	out := make([]int, 0, len(c.items))
	for k := range c.items {
		out = append(out, k)
	}
	return out
}

// --- LFU ---------------------------------------------------------------------

// lfu evicts the least-frequently-used item; frequency persists across
// evictions (classic "perfect LFU").
type lfu struct {
	capacity int
	counts   map[int]int // all-time frequencies
	cached   map[int]bool
}

// NewLFU returns a perfect-LFU cache factory.
func NewLFU() Factory {
	return func(capacity int) Cache {
		return &lfu{capacity: capacity, counts: make(map[int]int), cached: make(map[int]bool, capacity)}
	}
}

func (c *lfu) Name() string { return "LFU" }

func (c *lfu) Access(k int) (hit, inserted bool) {
	c.counts[k]++
	if c.cached[k] {
		return true, false
	}
	if c.capacity == 0 {
		return false, false
	}
	if len(c.cached) < c.capacity {
		c.cached[k] = true
		return false, true
	}
	// Evict the cached item with the lowest frequency if the newcomer now
	// exceeds it (ties keep the incumbent: avoids thrashing).
	victim, victimCount := -1, math.MaxInt
	for item := range c.cached {
		if c.counts[item] < victimCount || (c.counts[item] == victimCount && item < victim) {
			victim, victimCount = item, c.counts[item]
		}
	}
	if c.counts[k] > victimCount {
		delete(c.cached, victim)
		c.cached[k] = true
		return false, true
	}
	return false, false
}

func (c *lfu) Contents() []int {
	out := make([]int, 0, len(c.cached))
	for k := range c.cached {
		out = append(out, k)
	}
	return out
}

// --- classic LRFU (Lee et al.) -------------------------------------------------

// classicLRFU implements the original LRFU of Lee et al. (1999): every
// item carries a "combined recency and frequency" score
// CRF(t) = Σ_accesses (1/2)^{λ·(t−t_access)}, updated lazily; the item
// with the smallest CRF is evicted. λ → 0 degenerates to LFU, λ large to
// LRU. This is the policy the paper's baseline borrows its name from.
type classicLRFU struct {
	capacity int
	lambda   float64
	clock    int
	crf      map[int]float64
	stamp    map[int]int
	cached   map[int]bool
}

// NewClassicLRFU returns a Lee-et-al. LRFU factory with decay λ > 0.
func NewClassicLRFU(lambda float64) Factory {
	return func(capacity int) Cache {
		return &classicLRFU{
			capacity: capacity,
			lambda:   lambda,
			crf:      make(map[int]float64),
			stamp:    make(map[int]int),
			cached:   make(map[int]bool, capacity),
		}
	}
}

func (c *classicLRFU) Name() string { return fmt.Sprintf("LRFU(λ=%.2g)", c.lambda) }

// score returns the item's CRF decayed to the current clock.
func (c *classicLRFU) score(k int) float64 {
	if s, ok := c.crf[k]; ok {
		return s * math.Pow(0.5, c.lambda*float64(c.clock-c.stamp[k]))
	}
	return 0
}

func (c *classicLRFU) Access(k int) (hit, inserted bool) {
	c.clock++
	c.crf[k] = c.score(k) + 1
	c.stamp[k] = c.clock
	if c.cached[k] {
		return true, false
	}
	if c.capacity == 0 {
		return false, false
	}
	if len(c.cached) < c.capacity {
		c.cached[k] = true
		return false, true
	}
	victim, victimScore := -1, math.Inf(1)
	for item := range c.cached {
		if s := c.score(item); s < victimScore {
			victim, victimScore = item, s
		}
	}
	if c.crf[k] >= victimScore {
		delete(c.cached, victim)
		c.cached[k] = true
		return false, true
	}
	return false, false
}

func (c *classicLRFU) Contents() []int {
	out := make([]int, 0, len(c.cached))
	for k := range c.cached {
		out = append(out, k)
	}
	return out
}
