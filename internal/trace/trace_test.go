package trace

import (
	"context"
	"math"
	"math/rand/v2"
	"testing"

	"edgecache/internal/model"
	"edgecache/internal/workload"
)

func TestPoissonMoments(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for _, lambda := range []float64{0.5, 3, 12, 80} {
		const samples = 20000
		var sum, sumSq float64
		for i := 0; i < samples; i++ {
			v := float64(poisson(rng, lambda))
			sum += v
			sumSq += v * v
		}
		mean := sum / samples
		variance := sumSq/samples - mean*mean
		if math.Abs(mean-lambda) > 0.05*lambda+0.05 {
			t.Fatalf("λ=%g: mean %g", lambda, mean)
		}
		if math.Abs(variance-lambda) > 0.15*lambda+0.1 {
			t.Fatalf("λ=%g: variance %g", lambda, variance)
		}
	}
}

func TestPoissonEdge(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	if poisson(rng, 0) != 0 || poisson(rng, -1) != 0 {
		t.Fatal("non-positive rate must yield 0")
	}
}

func testDemand(t *testing.T) model.DemandView {
	t.Helper()
	cfg := workload.Config{
		Classes:    []int{3, 2},
		K:          6,
		T:          5,
		Zipf:       workload.ZipfMandelbrot{K: 6, Alpha: 0.8, Q: 2},
		MaxDensity: 20,
		Seed:       9,
	}
	d, err := workload.NewDemand(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestGenerateMatchesRates(t *testing.T) {
	d := testDemand(t)
	tr := Generate(d, 1)
	if tr.T() != 5 || tr.N() != 2 || tr.K() != 6 {
		t.Fatalf("trace shape (%d, %d, %d)", tr.T(), tr.N(), tr.K())
	}
	// The empirical request volume should track the expected volume.
	var expected float64
	for tt := 0; tt < 5; tt++ {
		for n := 0; n < 2; n++ {
			expected += d.SlotTotal(tt, n)
		}
	}
	ratio := float64(tr.Len()) / expected
	if ratio < 0.8 || ratio > 1.2 {
		t.Fatalf("trace volume %d vs expected %g (ratio %g)", tr.Len(), expected, ratio)
	}
	// Determinism.
	if Generate(d, 1).Len() != tr.Len() {
		t.Fatal("same seed, different trace")
	}
	if Generate(d, 2).Len() == tr.Len() {
		t.Log("different seeds produced equal volume (possible but unlikely)")
	}
}

func TestEmpiricalDemandRoundTrip(t *testing.T) {
	d := testDemand(t)
	tr := Generate(d, 7)
	emp := tr.EmpiricalDemand()
	var total float64
	for tt := 0; tt < 5; tt++ {
		for n := 0; n < 2; n++ {
			total += emp.SlotTotal(tt, n)
		}
	}
	if int(total) != tr.Len() {
		t.Fatalf("empirical demand mass %g != trace length %d", total, tr.Len())
	}
	counts := tr.ContentCounts(0, 0)
	var fromCounts int
	for _, c := range counts {
		fromCounts += c
	}
	if fromCounts != len(tr.Slot(0, 0)) {
		t.Fatal("ContentCounts disagree with Slot")
	}
}

func TestLRUSemantics(t *testing.T) {
	c := NewLRU()(2)
	if hit, ins := c.Access(1); hit || !ins {
		t.Fatal("first access must miss+insert")
	}
	c.Access(2)
	c.Access(1) // touch 1 → 2 is now LRU
	c.Access(3) // evicts 2 → cache {1, 3}
	if hit, _ := c.Access(1); !hit {
		t.Fatal("1 should still be cached")
	}
	if hit, _ := c.Access(2); hit {
		t.Fatal("2 should have been evicted")
	}
	if len(c.Contents()) != 2 {
		t.Fatalf("contents %v", c.Contents())
	}
}

func TestFIFOSemantics(t *testing.T) {
	c := NewFIFO()(2)
	c.Access(1)
	c.Access(2)
	c.Access(1) // hit; does NOT refresh insertion order
	c.Access(3) // evicts 1 (oldest inserted)
	if hit, _ := c.Access(1); hit {
		t.Fatal("FIFO should have evicted 1")
	}
}

func TestLFUSemantics(t *testing.T) {
	c := NewLFU()(2)
	c.Access(1)
	c.Access(1)
	c.Access(2)
	// 3 arrives once: count 1 vs incumbent 2's count 1 → tie keeps incumbent.
	if _, ins := c.Access(3); ins {
		t.Fatal("LFU admitted a tied newcomer")
	}
	// Second arrival: count 2 > 2's count 1 → replaces 2.
	if _, ins := c.Access(3); !ins {
		t.Fatal("LFU did not admit a more frequent item")
	}
	if hit, _ := c.Access(1); !hit {
		t.Fatal("most frequent item evicted")
	}
}

func TestClassicLRFUInterpolates(t *testing.T) {
	// With heavy decay it behaves like LRU: recency dominates.
	c := NewClassicLRFU(5)(2)
	c.Access(1)
	c.Access(1)
	c.Access(1) // very frequent but will decay fast
	c.Access(2)
	for i := 0; i < 6; i++ {
		c.Access(3) // hammer 3 to raise its CRF and age 1
	}
	c.Access(4) // with λ=5, item 1's CRF has decayed ≈ 0 → evicted
	if hit, _ := c.Access(3); !hit {
		t.Fatal("recently hammered item evicted under recency-heavy decay")
	}
}

func TestZeroCapacityCaches(t *testing.T) {
	for _, f := range []Factory{NewLRU(), NewFIFO(), NewLFU(), NewClassicLRFU(0.5)} {
		c := f(0)
		if hit, ins := c.Access(1); hit || ins {
			t.Fatalf("%s: zero-capacity cache stored something", c.Name())
		}
		if len(c.Contents()) != 0 {
			t.Fatalf("%s: contents not empty", c.Name())
		}
	}
}

func TestReplay(t *testing.T) {
	d := testDemand(t)
	tr := Generate(d, 3)
	res, err := Replay(tr, 0, NewLRU()(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 {
		t.Fatal("no requests replayed")
	}
	if res.Hits+res.Insertions > res.Requests+3 {
		t.Fatalf("inconsistent accounting: %+v", res)
	}
	hr := res.HitRatio()
	if hr < 0 || hr > 1 {
		t.Fatalf("hit ratio %g", hr)
	}
	var perSlot int
	for _, h := range res.PerSlotHits {
		perSlot += h
	}
	if perSlot != res.Hits {
		t.Fatal("per-slot hits do not sum to total")
	}
	if _, err := Replay(tr, 9, NewLRU()(3)); err == nil {
		t.Fatal("accepted out-of-range SBS")
	}
}

func TestReplayZipfFavoursSkewedCatalogue(t *testing.T) {
	// A steeper Zipf gives every sane policy a higher hit ratio.
	flat := workload.Config{Classes: []int{4}, K: 20, T: 20,
		Zipf: workload.ZipfMandelbrot{K: 20, Alpha: 0.2}, MaxDensity: 10, Seed: 5}
	steep := flat
	steep.Zipf = workload.ZipfMandelbrot{K: 20, Alpha: 2.0}
	df, err := workload.NewDemand(flat)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := workload.NewDemand(steep)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []Factory{NewLRU(), NewLFU(), NewFIFO()} {
		rf, err := Replay(Generate(df, 1), 0, f(4))
		if err != nil {
			t.Fatal(err)
		}
		rs, err := Replay(Generate(ds, 1), 0, f(4))
		if err != nil {
			t.Fatal(err)
		}
		if rs.HitRatio() <= rf.HitRatio() {
			t.Fatalf("%s: steep Zipf hit ratio %g not above flat %g", f(1).Name(), rs.HitRatio(), rf.HitRatio())
		}
	}
}

func TestPolicyAdapterProducesFeasibleTrajectory(t *testing.T) {
	cfg := workload.PaperDefault()
	cfg.T = 6
	cfg.K = 8
	cfg.ClassesPerSBS = 4
	cfg.CacheCap = 2
	cfg.Bandwidth = 8
	in, err := workload.BuildInstance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []Factory{NewLRU(), NewFIFO(), NewLFU(), NewClassicLRFU(0.1)} {
		p := NewPolicyAdapter(f, 42)
		traj, err := p.Plan(context.Background(), in)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if err := in.CheckTrajectory(traj, 1e-6); err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		br := in.TotalCost(traj)
		if br.BS > in.NoCachingCost()+1e-9 {
			t.Fatalf("%s: BS cost above null policy", p.Name())
		}
	}
}

func TestPolicyAdapterValidation(t *testing.T) {
	in := &model.Instance{}
	p := NewPolicyAdapter(NewLRU(), 1)
	if _, err := p.Plan(context.Background(), in); err == nil {
		t.Fatal("accepted invalid instance")
	}
	cfg := workload.PaperDefault()
	cfg.T = 2
	good, err := workload.BuildInstance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bad := &PolicyAdapter{label: "x"}
	if _, err := bad.Plan(context.Background(), good); err == nil {
		t.Fatal("accepted nil factory")
	}
}
