package trace

import (
	"fmt"
	"math/rand/v2"

	"edgecache/internal/model"
)

// Request is one discrete content request.
type Request struct {
	// Slot is the time slot the request arrives in.
	Slot int
	// SBS and Class identify the requesting user class.
	SBS, Class int
	// Content is the requested item.
	Content int
}

// Trace is a discrete request log sampled from a demand tensor.
type Trace struct {
	t, n, k int
	classes []int
	// perSlot[t][n] lists the slot's requests at SBS n in arrival order.
	perSlot [][][]Request
	total   int
}

// Generate samples a Poisson request trace from the demand tensor: the
// number of class-m requests for content k in slot t is Poisson with mean
// λ^t_{m,k}. Within a slot, requests are shuffled into a random arrival
// order (classic caches are order-sensitive).
func Generate(d model.DemandView, seed uint64) *Trace {
	rng := rand.New(rand.NewPCG(seed, 0xda3e39cb94b95bdb))
	tr := &Trace{
		t:       d.T(),
		n:       d.N(),
		k:       d.K(),
		classes: d.Classes(),
		perSlot: make([][][]Request, d.T()),
	}
	for t := 0; t < d.T(); t++ {
		tr.perSlot[t] = make([][]Request, d.N())
		for n := 0; n < d.N(); n++ {
			var reqs []Request
			for m := 0; m < tr.classes[n]; m++ {
				for k := 0; k < d.K(); k++ {
					for c := poisson(rng, d.At(t, n, m, k)); c > 0; c-- {
						reqs = append(reqs, Request{Slot: t, SBS: n, Class: m, Content: k})
					}
				}
			}
			rng.Shuffle(len(reqs), func(i, j int) { reqs[i], reqs[j] = reqs[j], reqs[i] })
			tr.perSlot[t][n] = reqs
			tr.total += len(reqs)
		}
	}
	return tr
}

// T returns the number of slots.
func (tr *Trace) T() int { return tr.t }

// N returns the number of SBSs.
func (tr *Trace) N() int { return tr.n }

// K returns the catalogue size.
func (tr *Trace) K() int { return tr.k }

// Len returns the total request count.
func (tr *Trace) Len() int { return tr.total }

// Slot returns the requests of (t, n) in arrival order. The returned
// slice aliases internal storage and must be treated as read-only.
func (tr *Trace) Slot(t, n int) []Request { return tr.perSlot[t][n] }

// ContentCounts returns the per-content request counts of (t, n).
func (tr *Trace) ContentCounts(t, n int) []int {
	counts := make([]int, tr.k)
	for _, r := range tr.perSlot[t][n] {
		counts[r.Content]++
	}
	return counts
}

// EmpiricalDemand converts the trace back into a rate tensor (requests per
// slot), the natural input for the paper's solvers when only logs are
// available.
func (tr *Trace) EmpiricalDemand() *model.Demand {
	d := model.NewDemand(tr.t, tr.classes, tr.k)
	for t := 0; t < tr.t; t++ {
		for n := 0; n < tr.n; n++ {
			for _, r := range tr.perSlot[t][n] {
				d.Set(t, n, r.Class, r.Content, d.At(t, n, r.Class, r.Content)+1)
			}
		}
	}
	return d
}

// ReplayResult summarises one cache policy's pass over one SBS's trace.
type ReplayResult struct {
	// Requests and Hits count accesses and cache hits.
	Requests, Hits int
	// Insertions counts cache fills (each costs β in the paper's model).
	Insertions int
	// PerSlotHits[t] is the slot's hit count.
	PerSlotHits []int
}

// HitRatio returns Hits/Requests (0 for an empty trace).
func (r *ReplayResult) HitRatio() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Requests)
}

// Replay feeds SBS n's requests through a cache policy in arrival order.
func Replay(tr *Trace, n int, c Cache) (*ReplayResult, error) {
	if n < 0 || n >= tr.n {
		return nil, fmt.Errorf("trace: SBS %d outside [0, %d)", n, tr.n)
	}
	res := &ReplayResult{PerSlotHits: make([]int, tr.t)}
	for t := 0; t < tr.t; t++ {
		for _, req := range tr.perSlot[t][n] {
			res.Requests++
			hit, inserted := c.Access(req.Content)
			if hit {
				res.Hits++
				res.PerSlotHits[t]++
			}
			if inserted {
				res.Insertions++
			}
		}
	}
	return res, nil
}
