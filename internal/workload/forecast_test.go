package workload

import (
	"math"
	"reflect"
	"sync"
	"testing"

	"edgecache/internal/model"
)

// TestEstimatorZeroDemandWindows is the regression test for the
// zero-arrival seam of the live estimation path: a (n, m, k) coordinate
// that goes silent for whole windows must decay smoothly (no freeze, no
// 0/0, no NaN) and reach exactly zero under the clamped decay instead of
// lingering at denormal rates forever.
func TestEstimatorZeroDemandWindows(t *testing.T) {
	const T = 80
	d := model.NewDemand(T, []int{2}, 3)
	// Arrivals only in the first two slots; everything after is silence.
	d.Set(0, 0, 0, 1, 4)
	d.Set(1, 0, 1, 2, 2)
	est, err := NewOnlineEstimator(d, 0.5, -1)
	if err != nil {
		t.Fatal(err)
	}
	last := math.Inf(1)
	sawZero := false
	for tau := 2; tau <= T; tau++ {
		f, err := est.Predict(tau, tau-1, tau)
		if err != nil {
			t.Fatalf("tau %d: %v", tau, err)
		}
		if err := f.CheckValues(); err != nil {
			t.Fatalf("tau %d: forecast invalid: %v", tau, err)
		}
		v := f.At(0, 0, 0, 1)
		if math.IsNaN(v) || v < 0 {
			t.Fatalf("tau %d: estimate %g", tau, v)
		}
		if v > last {
			t.Fatalf("tau %d: silent coordinate grew: %g > %g", tau, v, last)
		}
		last = v
		if v == 0 {
			sawZero = true
		}
	}
	if !sawZero {
		t.Fatalf("decay never clamped to zero; final estimate %g", last)
	}
}

// TestEstimatorAllZeroStream pins the pathological live case: a stream
// with no arrivals at all. The estimator must produce valid all-zero
// forecasts from the zero prior rather than dividing by an arrival count.
func TestEstimatorAllZeroStream(t *testing.T) {
	d := model.NewDemand(6, []int{1, 2}, 4)
	est, err := NewOnlineEstimator(d, 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	for _, tau := range []int{-2, 0, 3, 6} {
		f, err := est.Predict(tau, 0, 6)
		if err != nil {
			t.Fatalf("tau %d: %v", tau, err)
		}
		if err := f.CheckValues(); err != nil {
			t.Fatalf("tau %d: %v", tau, err)
		}
		for n := 0; n < 2; n++ {
			if f.SlotTotal(0, n) != 0 {
				t.Fatalf("tau %d: zero stream forecast nonzero at SBS %d", tau, n)
			}
		}
	}
}

// TestEstimatorCallOrderIndependence pins the Forecaster contract the
// staggered FHC versions rely on: forecasts are pure functions of
// (tau, from, to), whatever the interleaving of prior queries.
func TestEstimatorCallOrderIndependence(t *testing.T) {
	d := model.NewDemand(10, []int{2}, 3)
	for tt := 0; tt < 10; tt++ {
		d.Set(tt, 0, tt%2, (tt+1)%3, float64(1+tt%4))
	}
	mk := func() *OnlineEstimator {
		e, err := NewOnlineEstimator(d, 0.25, -1)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	forward, backward := mk(), mk()
	var fw, bw []model.DemandView
	for tau := 0; tau <= 8; tau++ {
		f, err := forward.Predict(tau, tau, tau+2)
		if err != nil {
			t.Fatal(err)
		}
		fw = append(fw, f)
	}
	for tau := 8; tau >= 0; tau-- {
		f, err := backward.Predict(tau, tau, tau+2)
		if err != nil {
			t.Fatal(err)
		}
		bw = append(bw, f)
	}
	for i := range fw {
		if !reflect.DeepEqual(fw[i], bw[len(bw)-1-i]) {
			t.Fatalf("forecast at tau %d depends on query order", i)
		}
	}

	// Concurrent queries (the parallel versions of online.Run) must also
	// agree; run under -race this doubles as the estimator's race test.
	conc := mk()
	var wg sync.WaitGroup
	got := make([]model.DemandView, 9)
	for tau := 0; tau <= 8; tau++ {
		wg.Add(1)
		go func(tau int) {
			defer wg.Done()
			f, err := conc.Predict(tau, tau, tau+2)
			if err != nil {
				t.Error(err)
				return
			}
			got[tau] = f
		}(tau)
	}
	wg.Wait()
	for tau := range got {
		if !reflect.DeepEqual(got[tau], fw[tau]) {
			t.Fatalf("concurrent forecast at tau %d diverges", tau)
		}
	}
}
