package workload

import (
	"fmt"
	"math"
	"math/rand/v2"

	"edgecache/internal/model"
)

// Config describes one synthetic workload in the style of §V-B: each user
// class m has a base density d_m ~ U[0, MaxDensity]; the rate for content k
// is d_m times the Zipf–Mandelbrot mass of k's current popularity rank,
// multiplied by a per-(t,m,k) jitter drawn from U[1−Jitter, 1+Jitter].
type Config struct {
	// Classes is the number of user classes per SBS.
	Classes []int
	// K is the catalogue size and T the horizon.
	K, T int
	// Zipf is the popularity model (paper: α = 0.8, q = 30).
	Zipf ZipfMandelbrot
	// MaxDensity scales the per-class base densities d_m ~ U[0, MaxDensity].
	MaxDensity float64
	// Jitter is the slot-to-slot multiplicative demand variation σ:
	// every rate is scaled by U[1−σ, 1+σ]. This is the temporal variability
	// that makes caching a genuinely online problem; 0 gives a stationary
	// workload.
	Jitter float64
	// DriftPeriod, when positive, rotates content popularity ranks by one
	// position every DriftPeriod slots (content k holds rank
	// (k + t/DriftPeriod) mod K). It models the slow popularity churn of
	// video catalogues; 0 disables drift.
	DriftPeriod int
	// DiurnalAmplitude a ∈ [0, 1) modulates the total demand sinusoidally
	// over DiurnalPeriod slots: rates scale by 1 + a·sin(2πt/period),
	// modelling the day/night cycle the paper's introduction mentions
	// ("temporal variability of network traffic provides the opportunity
	// to perform caching updates during the periods with low traffic").
	DiurnalAmplitude float64
	// DiurnalPeriod is the cycle length in slots (required when the
	// amplitude is positive).
	DiurnalPeriod int
	// Seed makes generation deterministic.
	Seed uint64
}

func (c Config) validate() error {
	if len(c.Classes) == 0 {
		return fmt.Errorf("workload: no SBS classes configured")
	}
	for n, m := range c.Classes {
		if m <= 0 {
			return fmt.Errorf("workload: Classes[%d] = %d, want > 0", n, m)
		}
	}
	if c.K <= 0 || c.T <= 0 {
		return fmt.Errorf("workload: K = %d, T = %d, want > 0", c.K, c.T)
	}
	if c.MaxDensity < 0 {
		return fmt.Errorf("workload: MaxDensity = %g, want ≥ 0", c.MaxDensity)
	}
	if c.Jitter < 0 || c.Jitter >= 1 {
		return fmt.Errorf("workload: Jitter = %g, want [0, 1)", c.Jitter)
	}
	if c.DriftPeriod < 0 {
		return fmt.Errorf("workload: DriftPeriod = %d, want ≥ 0", c.DriftPeriod)
	}
	if c.DiurnalAmplitude < 0 || c.DiurnalAmplitude >= 1 {
		return fmt.Errorf("workload: DiurnalAmplitude = %g, want [0, 1)", c.DiurnalAmplitude)
	}
	if c.DiurnalAmplitude > 0 && c.DiurnalPeriod <= 0 {
		return fmt.Errorf("workload: DiurnalAmplitude set but DiurnalPeriod = %d", c.DiurnalPeriod)
	}
	return nil
}

// Option customises NewDemand beyond the Config fields.
type Option func(*genOptions)

type genOptions struct {
	sparse    bool
	topK      int
	zipfAlpha float64
	hasSeed   bool
	seed      uint64
}

// WithSparse selects the CSR-style sparse backing (model.SparseDemand) and
// truncates each slot's popularity distribution to its top topK ranks —
// the Zipf tail beyond them is treated as structurally zero. topK ≤ 0 or
// ≥ K keeps the full catalogue active (still sparse-backed). With drift
// the active item set rotates with the ranks, so the union over a horizon
// grows beyond topK; that union is what Instance.Candidates reports.
func WithSparse(topK int) Option {
	return func(o *genOptions) {
		o.sparse = true
		o.topK = topK
	}
}

// WithZipfSkew overrides the Zipf–Mandelbrot skew α of the config.
func WithZipfSkew(alpha float64) Option {
	return func(o *genOptions) { o.zipfAlpha = alpha }
}

// WithSeed overrides the config's workload seed.
func WithSeed(seed uint64) Option {
	return func(o *genOptions) {
		o.hasSeed = true
		o.seed = seed
	}
}

// NewDemand synthesises the ground-truth demand for the config, behind the
// DemandView contract. Without options it reproduces the legacy Generate
// bit for bit (dense backing, identical RNG consumption order). With
// WithSparse the tensor is CSR-backed and only the active top-K ranks per
// slot are visited and stored, so generation costs O(T·N·M·topK) instead
// of O(T·N·M·K); the jitter stream then covers active coordinates only,
// which defines a new (equally deterministic) workload for a given seed.
func NewDemand(cfg Config, opts ...Option) (model.DemandView, error) {
	var o genOptions
	for _, opt := range opts {
		opt(&o)
	}
	if o.zipfAlpha > 0 {
		cfg.Zipf.Alpha = o.zipfAlpha
	}
	if o.hasSeed {
		cfg.Seed = o.seed
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Zipf.K == 0 {
		cfg.Zipf.K = cfg.K
	}
	if cfg.Zipf.K != cfg.K {
		return nil, fmt.Errorf("workload: zipf catalogue %d != K %d", cfg.Zipf.K, cfg.K)
	}
	weights, err := cfg.Zipf.Weights()
	if err != nil {
		return nil, err
	}

	topK := cfg.K
	if o.sparse && o.topK > 0 && o.topK < cfg.K {
		topK = o.topK
	}
	var d model.DemandView
	if o.sparse {
		d = model.NewSparseDemand(cfg.T, cfg.Classes, cfg.K)
	} else {
		d = model.NewDemand(cfg.T, cfg.Classes, cfg.K)
	}

	rng := rand.New(rand.NewPCG(cfg.Seed, 0x9e3779b97f4a7c15))
	emit := func(t, n, m, k, rank int, density, diurnal float64) {
		rate := density * weights[rank] * diurnal
		if cfg.Jitter > 0 {
			rate *= 1 + cfg.Jitter*(2*rng.Float64()-1)
		}
		d.Set(t, n, m, k, rate)
	}
	for n, classes := range cfg.Classes {
		density := make([]float64, classes)
		for m := range density {
			density[m] = rng.Float64() * cfg.MaxDensity
		}
		for t := 0; t < cfg.T; t++ {
			diurnal := 1.0
			if cfg.DiurnalAmplitude > 0 {
				diurnal = 1 + cfg.DiurnalAmplitude*math.Sin(2*math.Pi*float64(t)/float64(cfg.DiurnalPeriod))
			}
			shift := 0
			if cfg.DriftPeriod > 0 {
				shift = (t / cfg.DriftPeriod) % cfg.K
			}
			for m := 0; m < classes; m++ {
				if topK == cfg.K {
					// Full catalogue: identical loop (and RNG stream) to the
					// legacy dense generator.
					for k := 0; k < cfg.K; k++ {
						rank := k
						if cfg.DriftPeriod > 0 {
							rank = (k + shift) % cfg.K
						}
						emit(t, n, m, k, rank, density[m], diurnal)
					}
					continue
				}
				// Truncated catalogue: ranks [0, topK) live at contents
				// k = (rank − shift) mod K, a cyclic interval. Visit them in
				// ascending content order so sparse rows append in O(1).
				lo := (cfg.K - shift) % cfg.K
				if lo+topK <= cfg.K {
					for k := lo; k < lo+topK; k++ {
						emit(t, n, m, k, (k+shift)%cfg.K, density[m], diurnal)
					}
				} else {
					for k := 0; k < lo+topK-cfg.K; k++ {
						emit(t, n, m, k, (k+shift)%cfg.K, density[m], diurnal)
					}
					for k := lo; k < cfg.K; k++ {
						emit(t, n, m, k, (k+shift)%cfg.K, density[m], diurnal)
					}
				}
			}
		}
	}
	return d, nil
}

// Generate synthesises the ground-truth demand tensor for the config.
//
// Deprecated: use NewDemand, which returns the DemandView contract and
// accepts functional options (WithSparse, WithZipfSkew, WithSeed). This
// wrapper is the dense, option-free path and is bit-identical to NewDemand
// with no options.
func Generate(cfg Config) (*model.Demand, error) {
	v, err := NewDemand(cfg)
	if err != nil {
		return nil, err
	}
	return v.(*model.Demand), nil
}

// InstanceConfig assembles a complete problem instance around a workload:
// homogeneous SBS parameters plus per-class BS weights ω ~ U[0, 1] (the
// paper's "normalized distance to the BS") and ŵ = OmegaSBSRatio·ω.
type InstanceConfig struct {
	// N is the number of SBSs; ClassesPerSBS the user classes at each.
	N, ClassesPerSBS int
	// K is the catalogue size, T the horizon.
	K, T int
	// CacheCap and Bandwidth are C_n and B_n, identical across SBSs.
	CacheCap int
	// Bandwidth is the per-slot transmission budget of each SBS.
	Bandwidth float64
	// Beta is the cache replacement cost β.
	Beta float64
	// OmegaSBSRatio sets ŵ = ratio·ω (paper: 0 — SBS operating cost
	// negligible; footnote suggests ≈ 0.01 for a 100× distance ratio).
	OmegaSBSRatio float64
	// Workload configures demand generation. Classes, K and T are filled
	// from this struct when zero.
	Workload Config
	// Seed drives both ω sampling and workload generation.
	Seed uint64
}

// PaperDefault returns the §V-B simulation setup: N = 1 SBS, K = 30
// contents, 30 user classes, T = 100 slots, C = 5, B = 30, β = 100,
// Zipf–Mandelbrot(α = 0.8, q = 30), ŵ = 0.
//
// One calibration applies (documented in DESIGN.md §3): the paper's
// "request density picked from [0, 100]" leaves the absolute demand scale
// underdetermined, so MaxDensity is set to 4.0, which puts the aggregate
// demand near 2× the SBS bandwidth — the regime where the paper's
// bandwidth sweep (Fig. 4) shows both a binding and a saturated side.
func PaperDefault() InstanceConfig {
	return InstanceConfig{
		N:             1,
		ClassesPerSBS: 30,
		K:             30,
		T:             100,
		CacheCap:      5,
		Bandwidth:     30,
		Beta:          100,
		OmegaSBSRatio: 0,
		Workload: Config{
			// Zipf.K is left 0 and auto-filled from the instance's K so
			// that sweeps overriding the catalogue size stay consistent.
			Zipf:       ZipfMandelbrot{Alpha: 0.8, Q: 30},
			MaxDensity: 4.0,
			Jitter:     0.4,
		},
		Seed: 1,
	}
}

// BuildInstance generates a fully populated, validated model.Instance with
// the default dense demand backing.
func BuildInstance(cfg InstanceConfig) (*model.Instance, error) {
	return BuildInstanceWith(cfg)
}

// BuildInstanceWith is BuildInstance with demand-generation options: pass
// WithSparse(topK) for a CSR-backed web-scale workload, WithZipfSkew or
// WithSeed to override the popularity skew or workload seed. No options
// reproduces BuildInstance exactly.
func BuildInstanceWith(cfg InstanceConfig, opts ...Option) (*model.Instance, error) {
	if cfg.N <= 0 || cfg.ClassesPerSBS <= 0 {
		return nil, fmt.Errorf("workload: N = %d, ClassesPerSBS = %d, want > 0", cfg.N, cfg.ClassesPerSBS)
	}
	classes := make([]int, cfg.N)
	for n := range classes {
		classes[n] = cfg.ClassesPerSBS
	}
	w := cfg.Workload
	if w.Classes == nil {
		w.Classes = classes
	}
	if w.K == 0 {
		w.K = cfg.K
	}
	if w.T == 0 {
		w.T = cfg.T
	}
	if w.Seed == 0 {
		w.Seed = cfg.Seed
	}
	demand, err := NewDemand(w, opts...)
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewPCG(cfg.Seed, 0x2545f4914f6cdd1d))
	omegaBS := make([][]float64, cfg.N)
	omegaSBS := make([][]float64, cfg.N)
	capacities := make([]int, cfg.N)
	bandwidths := make([]float64, cfg.N)
	betas := make([]float64, cfg.N)
	for n := 0; n < cfg.N; n++ {
		omegaBS[n] = make([]float64, cfg.ClassesPerSBS)
		omegaSBS[n] = make([]float64, cfg.ClassesPerSBS)
		for m := range omegaBS[n] {
			omegaBS[n][m] = rng.Float64()
			omegaSBS[n][m] = cfg.OmegaSBSRatio * omegaBS[n][m]
		}
		capacities[n] = cfg.CacheCap
		bandwidths[n] = cfg.Bandwidth
		betas[n] = cfg.Beta
	}

	in := &model.Instance{
		N:         cfg.N,
		K:         cfg.K,
		T:         cfg.T,
		Classes:   classes,
		CacheCap:  capacities,
		Bandwidth: bandwidths,
		OmegaBS:   omegaBS,
		OmegaSBS:  omegaSBS,
		Beta:      betas,
		Demand:    demand,
	}
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("workload: built instance invalid: %w", err)
	}
	return in, nil
}
