package workload

import (
	"fmt"

	"edgecache/internal/model"
)

// Predictor is the limited-lookahead demand oracle of §V-B: a prediction
// of λ^t requested at decision time τ equals the true rate scaled by a
// uniform factor from [1−η, 1+η]. The paper's offline algorithm and LRFU
// consume exact demand (η = 0 path); the online controllers consume noisy
// windows.
//
// Noise is a pure function of (seed, τ, t, n, m, k), so different
// algorithms asking for the same prediction at the same decision time see
// identical noise — sweeps compare algorithms, not noise realisations —
// while re-predictions of the same slot from later decision times are
// independently perturbed, as fresh forecasts would be.
type Predictor struct {
	truth   model.DemandView
	eta     float64
	seed    uint64
	corrupt func(tau, t, n, m, k int, v float64) float64
}

// NewPredictor wraps the ground truth with noise level eta ∈ [0, 1).
func NewPredictor(truth model.DemandView, eta float64, seed uint64) (*Predictor, error) {
	if truth == nil {
		return nil, fmt.Errorf("workload: nil truth demand")
	}
	if eta < 0 || eta >= 1 {
		return nil, fmt.Errorf("workload: eta = %g, want [0, 1)", eta)
	}
	return &Predictor{truth: truth, eta: eta, seed: seed}, nil
}

// Eta returns the configured noise level.
func (p *Predictor) Eta() float64 { return p.eta }

// Truth returns the wrapped ground-truth demand (shared, read-only).
func (p *Predictor) Truth() model.DemandView { return p.truth }

// WithCorruption returns a predictor sharing p's truth, noise level and
// seed whose forecasts are additionally passed through hook (applied
// after noise; t is the absolute slot). A nil hook returns p itself.
// Package fault builds such hooks to model corrupted prediction feeds;
// the ground truth is never touched. Hooks must clamp their output to
// finite non-negative rates — predictions feed Demand.Map, which panics
// on anything else.
func (p *Predictor) WithCorruption(hook func(tau, t, n, m, k int, v float64) float64) *Predictor {
	if hook == nil {
		return p
	}
	return &Predictor{truth: p.truth, eta: p.eta, seed: p.seed, corrupt: hook}
}

// Predict returns the forecast, made at decision time tau, of demand over
// absolute slots [from, to). The result is an independent tensor of length
// to−from.
func (p *Predictor) Predict(tau, from, to int) (model.DemandView, error) {
	window, err := p.truth.Slice(from, to)
	if err != nil {
		return nil, err
	}
	if p.eta == 0 && p.corrupt == nil {
		return window, nil
	}
	window.Map(func(t, n, m, k int, v float64) float64 {
		if p.eta != 0 {
			u := uniform01(p.seed, uint64(tau), uint64(from+t), uint64(n), uint64(m), uint64(k))
			v *= 1 + p.eta*(2*u-1)
		}
		if p.corrupt != nil {
			v = p.corrupt(tau, from+t, n, m, k, v)
		}
		return v
	})
	return window, nil
}

// uniform01 hashes its arguments into a deterministic uniform [0, 1)
// variate via splitmix64 finalisation.
func uniform01(parts ...uint64) float64 {
	var h uint64 = 0x9e3779b97f4a7c15
	for _, p := range parts {
		h ^= p + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
		h = splitmix64(h)
	}
	// 53-bit mantissa → [0, 1).
	return float64(h>>11) / float64(1<<53)
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
