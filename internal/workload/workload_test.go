package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestZipfWeightsNormalised(t *testing.T) {
	z := ZipfMandelbrot{K: 30, Alpha: 0.8, Q: 30}
	w, err := z.Weights()
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != 30 {
		t.Fatalf("len = %d, want 30", len(w))
	}
	var sum float64
	for i, v := range w {
		if v <= 0 {
			t.Fatalf("weight %d = %g, want > 0", i, v)
		}
		if i > 0 && v > w[i-1]+1e-15 {
			t.Fatalf("weights not non-increasing at %d: %g > %g", i, v, w[i-1])
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("Σ = %g, want 1", sum)
	}
}

func TestZipfSkewOrdering(t *testing.T) {
	// Higher α concentrates more mass on rank 0; higher q flattens it.
	flat, _ := ZipfMandelbrot{K: 10, Alpha: 0.8, Q: 30}.Weights()
	skew, _ := ZipfMandelbrot{K: 10, Alpha: 2.0, Q: 0}.Weights()
	if skew[0] <= flat[0] {
		t.Fatalf("skewed head %g ≤ flat head %g", skew[0], flat[0])
	}
}

func TestZipfValidation(t *testing.T) {
	for _, z := range []ZipfMandelbrot{{K: 0}, {K: 3, Alpha: -1}, {K: 3, Q: -1}} {
		if _, err := z.Weights(); err == nil {
			t.Errorf("Weights(%+v) accepted invalid config", z)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{
		Classes:    []int{2, 3},
		K:          5,
		T:          4,
		Zipf:       ZipfMandelbrot{K: 5, Alpha: 0.8, Q: 2},
		MaxDensity: 10,
		Jitter:     0.3,
		Seed:       7,
	}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt < 4; tt++ {
		for n := 0; n < 2; n++ {
			for m := 0; m < cfg.Classes[n]; m++ {
				for k := 0; k < 5; k++ {
					if a.At(tt, n, m, k) != b.At(tt, n, m, k) {
						t.Fatal("same seed produced different workloads")
					}
				}
			}
		}
	}
	cfg.Seed = 8
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for k := 0; k < 5 && same; k++ {
		same = a.At(0, 0, 0, k) == c.At(0, 0, 0, k)
	}
	if same {
		t.Fatal("different seeds produced identical first row")
	}
}

func TestGenerateValidation(t *testing.T) {
	base := Config{Classes: []int{1}, K: 2, T: 2, MaxDensity: 1}
	for name, mutate := range map[string]func(*Config){
		"no classes":   func(c *Config) { c.Classes = nil },
		"zero class":   func(c *Config) { c.Classes = []int{0} },
		"zero K":       func(c *Config) { c.K = 0 },
		"zero T":       func(c *Config) { c.T = 0 },
		"neg density":  func(c *Config) { c.MaxDensity = -1 },
		"jitter ≥ 1":   func(c *Config) { c.Jitter = 1 },
		"neg drift":    func(c *Config) { c.DriftPeriod = -1 },
		"zipf K wrong": func(c *Config) { c.Zipf = ZipfMandelbrot{K: 5, Alpha: 1} },
	} {
		cfg := base
		mutate(&cfg)
		if _, err := Generate(cfg); err == nil {
			t.Errorf("%s: Generate accepted invalid config", name)
		}
	}
}

func TestGenerateStationaryWithoutJitter(t *testing.T) {
	cfg := Config{Classes: []int{2}, K: 4, T: 5, MaxDensity: 3, Seed: 3}
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for tt := 1; tt < 5; tt++ {
		for m := 0; m < 2; m++ {
			for k := 0; k < 4; k++ {
				if d.At(tt, 0, m, k) != d.At(0, 0, m, k) {
					t.Fatal("zero-jitter workload is not stationary")
				}
			}
		}
	}
}

func TestGenerateDrift(t *testing.T) {
	cfg := Config{Classes: []int{1}, K: 3, T: 6, MaxDensity: 2, DriftPeriod: 2, Seed: 5}
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// After one drift period, content 0 should take content 1's old rate.
	if got, want := d.At(2, 0, 0, 0), d.At(0, 0, 0, 1); math.Abs(got-want) > 1e-12 {
		t.Fatalf("drifted rate = %g, want %g", got, want)
	}
	// A full rotation (K·period slots would exceed T; check 2 periods = rank+2).
	if got, want := d.At(4, 0, 0, 0), d.At(0, 0, 0, 2); math.Abs(got-want) > 1e-12 {
		t.Fatalf("doubly drifted rate = %g, want %g", got, want)
	}
}

func TestBuildInstancePaperDefault(t *testing.T) {
	in, err := BuildInstance(PaperDefault())
	if err != nil {
		t.Fatal(err)
	}
	if in.N != 1 || in.K != 30 || in.T != 100 || in.Classes[0] != 30 {
		t.Fatalf("unexpected shape: N=%d K=%d T=%d M=%d", in.N, in.K, in.T, in.Classes[0])
	}
	if in.CacheCap[0] != 5 || in.Bandwidth[0] != 30 || in.Beta[0] != 100 {
		t.Fatalf("unexpected parameters: C=%d B=%g β=%g", in.CacheCap[0], in.Bandwidth[0], in.Beta[0])
	}
	for m, w := range in.OmegaBS[0] {
		if w < 0 || w > 1 {
			t.Fatalf("ω[%d] = %g outside [0, 1]", m, w)
		}
		if in.OmegaSBS[0][m] != 0 {
			t.Fatalf("ŵ[%d] = %g, want 0", m, in.OmegaSBS[0][m])
		}
	}
}

func TestBuildInstanceValidation(t *testing.T) {
	cfg := PaperDefault()
	cfg.N = 0
	if _, err := BuildInstance(cfg); err == nil {
		t.Fatal("accepted N = 0")
	}
}

func TestPredictorExactWhenNoiseFree(t *testing.T) {
	in, err := BuildInstance(PaperDefault())
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPredictor(in.Demand, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	w, err := p.Predict(0, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if w.T() != 4 {
		t.Fatalf("window length %d, want 4", w.T())
	}
	for tt := 0; tt < 4; tt++ {
		for k := 0; k < in.K; k++ {
			if w.At(tt, 0, 0, k) != in.Demand.At(3+tt, 0, 0, k) {
				t.Fatal("noise-free prediction differs from truth")
			}
		}
	}
}

func TestPredictorNoiseBoundedAndDeterministic(t *testing.T) {
	in, err := BuildInstance(PaperDefault())
	if err != nil {
		t.Fatal(err)
	}
	eta := 0.3
	p, err := NewPredictor(in.Demand, eta, 42)
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Predict(5, 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Predict(5, 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	varies := false
	for tt := 0; tt < 5; tt++ {
		for m := 0; m < 30; m++ {
			for k := 0; k < 30; k++ {
				truth := in.Demand.At(5+tt, 0, m, k)
				av := a.At(tt, 0, m, k)
				if av != b.At(tt, 0, m, k) {
					t.Fatal("same (tau, window) prediction not deterministic")
				}
				if av < truth*(1-eta)-1e-12 || av > truth*(1+eta)+1e-12 {
					t.Fatalf("prediction %g outside η band of truth %g", av, truth)
				}
				if truth > 0 && math.Abs(av-truth) > 1e-15 {
					varies = true
				}
			}
		}
	}
	if !varies {
		t.Fatal("noise never perturbed any rate")
	}
	// A different decision time re-perturbs.
	c, err := p.Predict(6, 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if c.At(0, 0, 0, 0) == a.At(0, 0, 0, 0) && c.At(0, 0, 1, 1) == a.At(0, 0, 1, 1) && c.At(1, 0, 2, 2) == a.At(1, 0, 2, 2) {
		t.Fatal("re-forecast from a later decision time reused old noise")
	}
}

func TestPredictorValidation(t *testing.T) {
	if _, err := NewPredictor(nil, 0, 1); err == nil {
		t.Fatal("accepted nil truth")
	}
	in, err := BuildInstance(PaperDefault())
	if err != nil {
		t.Fatal(err)
	}
	for _, eta := range []float64{-0.1, 1.0} {
		if _, err := NewPredictor(in.Demand, eta, 1); err == nil {
			t.Errorf("accepted eta = %g", eta)
		}
	}
	p, _ := NewPredictor(in.Demand, 0.1, 1)
	if _, err := p.Predict(0, 90, 200); err == nil {
		t.Fatal("accepted out-of-horizon window")
	}
}

// Property: uniform01 stays in [0, 1) and is insensitive to argument count
// collisions in an obvious way (different tuples rarely collide).
func TestUniform01Property(t *testing.T) {
	f := func(a, b, c uint64) bool {
		u := uniform01(a, b, c)
		return u >= 0 && u < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
	if uniform01(1, 2, 3) == uniform01(3, 2, 1) {
		t.Fatal("argument order ignored by hash")
	}
}

func TestGenerateDiurnal(t *testing.T) {
	cfg := Config{
		Classes:          []int{1},
		K:                2,
		T:                8,
		MaxDensity:       4,
		DiurnalAmplitude: 0.5,
		DiurnalPeriod:    8,
		Seed:             3,
	}
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Peak near t = 2 (sin max), trough near t = 6 (sin min).
	peak := d.SlotTotal(2, 0)
	trough := d.SlotTotal(6, 0)
	if peak <= trough {
		t.Fatalf("diurnal cycle missing: peak %g ≤ trough %g", peak, trough)
	}
	ratio := peak / trough
	if math.Abs(ratio-3) > 0.2 { // (1+0.5)/(1−0.5) = 3
		t.Fatalf("peak/trough = %g, want ≈ 3", ratio)
	}
	// Validation.
	cfg.DiurnalPeriod = 0
	if _, err := Generate(cfg); err == nil {
		t.Fatal("accepted amplitude without period")
	}
	cfg.DiurnalPeriod = 8
	cfg.DiurnalAmplitude = 1
	if _, err := Generate(cfg); err == nil {
		t.Fatal("accepted amplitude ≥ 1")
	}
}
