package workload

import (
	"math"
	"sort"

	"edgecache/internal/model"
)

// DemandStats summarises a demand tensor — the numbers one checks before
// trusting a synthetic (or imported) workload.
type DemandStats struct {
	// TotalVolume is Σ over all (t, n, m, k) of λ.
	TotalVolume float64
	// MeanPerSlot and PeakPerSlot aggregate Σ_{n,m,k} λ^t per slot.
	MeanPerSlot, PeakPerSlot float64
	// PeakSlot is the argmax slot.
	PeakSlot int
	// HeadMass[c] is the fraction of volume carried by the top-(c+1)
	// contents (by total volume); HeadMass[K-1] = 1. It quantifies how
	// cacheable the workload is: a C-item cache can offload at most
	// HeadMass[C-1] of the demand.
	HeadMass []float64
	// Gini is the Gini coefficient of per-content volumes (0 = uniform,
	// → 1 = concentrated), a scale-free skew measure.
	Gini float64
	// TemporalCV is the coefficient of variation of the per-slot volumes:
	// 0 for a stationary workload, growing with jitter and drift.
	TemporalCV float64
}

// Stats computes DemandStats for any demand view. Per-content volumes
// accumulate through ForEachActive, so the pass costs O(active entries)
// rather than O(T·N·K) — the difference between instant and hopeless on
// web-scale sparse workloads.
func Stats(d model.DemandView) DemandStats {
	var s DemandStats
	perSlot := make([]float64, d.T())
	perContent := make([]float64, d.K())
	for t := 0; t < d.T(); t++ {
		for n := 0; n < d.N(); n++ {
			perSlot[t] += d.SlotTotal(t, n)
			d.ForEachActive(t, n, func(m, k int, rate float64) {
				perContent[k] += rate
			})
		}
		s.TotalVolume += perSlot[t]
		if perSlot[t] > s.PeakPerSlot {
			s.PeakPerSlot = perSlot[t]
			s.PeakSlot = t
		}
	}
	s.MeanPerSlot = s.TotalVolume / float64(d.T())

	// Head mass: cumulative share of the sorted per-content volumes.
	sorted := append([]float64(nil), perContent...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	s.HeadMass = make([]float64, d.K())
	var cum float64
	for i, v := range sorted {
		cum += v
		if s.TotalVolume > 0 {
			s.HeadMass[i] = cum / s.TotalVolume
		}
	}

	s.Gini = gini(perContent)

	if d.T() > 1 && s.MeanPerSlot > 0 {
		var ssq float64
		for _, v := range perSlot {
			dlt := v - s.MeanPerSlot
			ssq += dlt * dlt
		}
		s.TemporalCV = math.Sqrt(ssq/float64(d.T()-1)) / s.MeanPerSlot
	}
	return s
}

// gini computes the Gini coefficient of non-negative values.
func gini(values []float64) float64 {
	n := len(values)
	if n == 0 {
		return 0
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	var cum, weighted float64
	for i, v := range sorted {
		cum += v
		weighted += float64(i+1) * v
	}
	if cum == 0 {
		return 0
	}
	return (2*weighted)/(float64(n)*cum) - float64(n+1)/float64(n)
}
