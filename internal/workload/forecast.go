package workload

import (
	"fmt"
	"sync"

	"edgecache/internal/model"
)

// Forecaster is the demand-forecast source of the online controllers: at
// decision time tau it forecasts the request rates of absolute slots
// [from, to). Two implementations ship:
//
//   - *Predictor, the paper's §V-B noisy lookahead oracle (it reads the
//     future of the ground-truth tensor and perturbs it);
//   - *OnlineEstimator, an oracle-free streaming estimator that learns
//     rates from the realised slots alone — the live-deployment mode of
//     package serve, where no future exists to peek at.
//
// Implementations must be safe for concurrent Predict calls and
// call-order independent: the forecast for a given (tau, from, to) must
// not depend on which other forecasts were requested before it, because
// the staggered FHC versions of package online query concurrently and
// interleaved. Truth anchors the forecaster to an instance (online.Run
// rejects a forecaster whose truth is not the instance's demand).
type Forecaster interface {
	// Truth returns the ground-truth demand the forecasts are anchored to
	// (shared, read-only).
	Truth() model.DemandView
	// Predict returns the forecast, made at decision time tau, of demand
	// over absolute slots [from, to), as an independent tensor of length
	// to−from that the caller may mutate.
	Predict(tau, from, to int) (model.DemandView, error)
}

// Forecaster conformance of the oracle predictor.
var _ Forecaster = (*Predictor)(nil)

// DefaultEstimatorAlpha is the EWMA weight of the newest observed slot.
const DefaultEstimatorAlpha = 0.3

// DefaultEstimatorFloor is the clamped-decay floor: a rate that geometric
// decay has pushed below this value snaps to exactly zero. Without the
// clamp a single request would keep its (n, m, k) coordinate active
// forever — (1−α)^t never reaches zero in float64 until it underflows
// through ~700 slots of denormals — polluting candidate pruning and the
// sparse active sets with phantom demand.
const DefaultEstimatorFloor = 1e-9

// OnlineEstimator forecasts demand from the realised request stream: an
// exponentially weighted moving average λ̂ over the closed slots of the
// truth tensor, held flat across the prediction window (the no-trend
// forecast). It is the oracle-free Forecaster of the streaming controller
// (package serve), which appends each slot's empirical rates to the truth
// tensor as the slot closes.
//
// Determinism and restartability: λ̂ at decision time tau is a pure
// function of truth rows [0, tau) — no hidden accumulator state — so a
// controller restored from a snapshot of the realised tensor reproduces
// the exact forecasts of the uninterrupted run, and the batch harness
// (sim.Run over the completed tensor) reproduces the live service's
// decisions bit for bit. States per tau are memoised; Predict is safe
// for concurrent use.
//
// Zero-demand windows are first-class: a coordinate (or a whole SBS) that
// sees no arrivals for a full window simply decays by (1−α) per slot —
// there is no normalisation by the arrival count, hence no 0/0 — and the
// decay is clamped (Floor) so long-silent coordinates reach exactly zero
// instead of freezing at denormal rates.
type OnlineEstimator struct {
	truth model.DemandView
	alpha float64
	floor float64

	mu sync.Mutex
	// states[t][n] is the flat (class, content) λ̂ after observing rows
	// [0, t); states[0] is the all-zero prior. Filled lazily and only
	// ever appended to, so memoised values are call-order independent.
	states [][][]float64
}

// NewOnlineEstimator wraps the (progressively filled) truth tensor with
// an EWMA rate estimator. alpha ∈ (0, 1] is the weight of the newest
// slot (0 selects DefaultEstimatorAlpha); floor < 0 selects
// DefaultEstimatorFloor, 0 disables the decay clamp.
func NewOnlineEstimator(truth model.DemandView, alpha, floor float64) (*OnlineEstimator, error) {
	if truth == nil {
		return nil, fmt.Errorf("workload: nil truth demand")
	}
	if alpha == 0 {
		alpha = DefaultEstimatorAlpha
	}
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("workload: estimator alpha = %g, want (0, 1]", alpha)
	}
	if floor < 0 {
		floor = DefaultEstimatorFloor
	}
	return &OnlineEstimator{truth: truth, alpha: alpha, floor: floor}, nil
}

// Alpha returns the EWMA weight of the newest slot.
func (e *OnlineEstimator) Alpha() float64 { return e.alpha }

// Truth implements Forecaster.
func (e *OnlineEstimator) Truth() model.DemandView { return e.truth }

// Predict implements Forecaster: the EWMA state after truth rows
// [0, min(max(tau, 0), T)) — negative tau (the start-up solves of
// staggered FHC versions) and tau = 0 see the zero prior — held constant
// over the window.
//
// Causality contract: the caller must not ask for a tau whose prefix
// rows are not yet final (the streaming controller only queries tau up
// to the number of closed slots).
func (e *OnlineEstimator) Predict(tau, from, to int) (model.DemandView, error) {
	d := e.truth
	if from < 0 || to > d.T() || from >= to {
		return nil, fmt.Errorf("workload: estimator window [%d, %d) outside [0, %d)", from, to, d.T())
	}
	upto := tau
	if upto < 0 {
		upto = 0
	}
	if upto > d.T() {
		upto = d.T()
	}
	state := e.stateAt(upto)
	out := model.NewDemand(to-from, d.Classes(), d.K())
	for t := 0; t < to-from; t++ {
		for n := 0; n < d.N(); n++ {
			row := state[n]
			k := d.K()
			for m := 0; m < d.Classes()[n]; m++ {
				base := m * k
				for kk := 0; kk < k; kk++ {
					if v := row[base+kk]; v != 0 {
						out.Set(t, n, m, kk, v)
					}
				}
			}
		}
	}
	return out, nil
}

// Rates returns λ̂ after observing rows [0, upto) as per-SBS flat
// (class, content) rows. The result is shared memoised state: read-only.
func (e *OnlineEstimator) Rates(upto int) [][]float64 {
	if upto < 0 {
		upto = 0
	}
	if t := e.truth.T(); upto > t {
		upto = t
	}
	return e.stateAt(upto)
}

// stateAt returns the memoised EWMA state after t observed rows,
// computing forward from the highest cached prefix on first use.
func (e *OnlineEstimator) stateAt(t int) [][]float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.states) == 0 {
		zero := make([][]float64, e.truth.N())
		for n := range zero {
			zero[n] = make([]float64, e.truth.Classes()[n]*e.truth.K())
		}
		e.states = append(e.states, zero)
	}
	var scratch []float64
	for len(e.states) <= t {
		slot := len(e.states) - 1 // observe truth row `slot`
		prev := e.states[slot]
		next := make([][]float64, len(prev))
		for n := range prev {
			next[n] = append([]float64(nil), prev[n]...)
			scratch = e.truth.CopySlot(scratch, slot, n)
			row := next[n]
			for i, v := range scratch {
				nv := row[i] + e.alpha*(v-row[i])
				if e.floor > 0 && nv < e.floor {
					// Clamped decay: silence drives the estimate to an
					// exact zero instead of an ever-shrinking denormal.
					nv = 0
				}
				row[i] = nv
			}
		}
		e.states = append(e.states, next)
	}
	return e.states[t]
}
