// Package workload synthesises the request workloads of the paper's
// numerical evaluation (§V-B) and the prediction oracle the online
// algorithms consume: Zipf–Mandelbrot content popularity, per-class demand
// densities, slot-to-slot temporal jitter, optional popularity drift, and
// multiplicative prediction noise η.
package workload

import (
	"fmt"
	"math"
)

// ZipfMandelbrot is the shifted-Zipf popularity model of eq. (49):
// p(i) ∝ K/(i+q)^α over ranks i = 1..K. The paper uses α = 0.8, q = 30.
type ZipfMandelbrot struct {
	// K is the catalogue size.
	K int
	// Alpha is the shape parameter (skew); larger concentrates demand on
	// the head of the catalogue.
	Alpha float64
	// Q is the Mandelbrot shift; larger flattens the head.
	Q float64
}

// Weights returns the normalised popularity mass of each rank, Σ = 1. Rank
// r (0-based) corresponds to the paper's i = r+1.
func (z ZipfMandelbrot) Weights() ([]float64, error) {
	if z.K <= 0 {
		return nil, fmt.Errorf("workload: zipf catalogue size %d, want > 0", z.K)
	}
	if z.Alpha < 0 {
		return nil, fmt.Errorf("workload: zipf alpha %g, want ≥ 0", z.Alpha)
	}
	if z.Q < 0 {
		return nil, fmt.Errorf("workload: zipf shift %g, want ≥ 0", z.Q)
	}
	w := make([]float64, z.K)
	var sum float64
	for r := range w {
		w[r] = 1 / math.Pow(float64(r+1)+z.Q, z.Alpha)
		sum += w[r]
	}
	for r := range w {
		w[r] /= sum
	}
	return w, nil
}
