package workload

import (
	"math"
	"testing"

	"edgecache/internal/model"
)

func TestStatsHandComputed(t *testing.T) {
	// 2 slots, 1 SBS, 1 class, 2 contents.
	d := model.NewDemand(2, []int{1}, 2)
	d.Set(0, 0, 0, 0, 3)
	d.Set(0, 0, 0, 1, 1)
	d.Set(1, 0, 0, 0, 5)
	d.Set(1, 0, 0, 1, 1)
	s := Stats(d)
	if s.TotalVolume != 10 {
		t.Fatalf("TotalVolume = %g", s.TotalVolume)
	}
	if s.MeanPerSlot != 5 || s.PeakPerSlot != 6 || s.PeakSlot != 1 {
		t.Fatalf("per-slot stats: %+v", s)
	}
	// Content volumes: 8 and 2 → head mass [0.8, 1].
	if math.Abs(s.HeadMass[0]-0.8) > 1e-12 || math.Abs(s.HeadMass[1]-1) > 1e-12 {
		t.Fatalf("HeadMass = %v", s.HeadMass)
	}
	// Gini of {2, 8}: (2·(1·2+2·8))/(2·10) − 3/2 = 36/20 − 1.5 = 0.3.
	if math.Abs(s.Gini-0.3) > 1e-12 {
		t.Fatalf("Gini = %g", s.Gini)
	}
	// CV of {4, 6}: std = √2, mean 5 → ≈ 0.2828.
	if math.Abs(s.TemporalCV-math.Sqrt2/5) > 1e-12 {
		t.Fatalf("TemporalCV = %g", s.TemporalCV)
	}
}

func TestStatsUniformGiniZero(t *testing.T) {
	d := model.NewDemand(1, []int{1}, 4)
	for k := 0; k < 4; k++ {
		d.Set(0, 0, 0, k, 2)
	}
	s := Stats(d)
	if math.Abs(s.Gini) > 1e-12 {
		t.Fatalf("uniform Gini = %g", s.Gini)
	}
	if s.TemporalCV != 0 {
		t.Fatalf("single-slot CV = %g", s.TemporalCV)
	}
}

func TestStatsZeroDemand(t *testing.T) {
	d := model.NewDemand(2, []int{1}, 2)
	s := Stats(d)
	if s.TotalVolume != 0 || s.Gini != 0 || s.TemporalCV != 0 {
		t.Fatalf("zero demand stats: %+v", s)
	}
}

func TestStatsSkewOrdering(t *testing.T) {
	// A steeper Zipf must show higher head mass and Gini.
	flat, err := Generate(Config{Classes: []int{5}, K: 20, T: 10,
		Zipf: ZipfMandelbrot{K: 20, Alpha: 0.3}, MaxDensity: 10, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	steep, err := Generate(Config{Classes: []int{5}, K: 20, T: 10,
		Zipf: ZipfMandelbrot{K: 20, Alpha: 2.5}, MaxDensity: 10, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	sf, ss := Stats(flat), Stats(steep)
	if ss.HeadMass[4] <= sf.HeadMass[4] {
		t.Fatalf("steep head mass %g ≤ flat %g", ss.HeadMass[4], sf.HeadMass[4])
	}
	if ss.Gini <= sf.Gini {
		t.Fatalf("steep Gini %g ≤ flat %g", ss.Gini, sf.Gini)
	}
}

func TestStatsJitterRaisesCV(t *testing.T) {
	still, err := Generate(Config{Classes: []int{5}, K: 8, T: 20,
		Zipf: ZipfMandelbrot{K: 8, Alpha: 1}, MaxDensity: 10, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := Generate(Config{Classes: []int{5}, K: 8, T: 20,
		Zipf: ZipfMandelbrot{K: 8, Alpha: 1}, MaxDensity: 10, Jitter: 0.5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if Stats(noisy).TemporalCV <= Stats(still).TemporalCV {
		t.Fatal("jitter did not raise temporal CV")
	}
}
