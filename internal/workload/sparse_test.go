package workload

import (
	"reflect"
	"testing"

	"edgecache/internal/model"
)

func sparseCfg() Config {
	cfg := PaperDefault().Workload
	cfg.Classes = []int{3, 2}
	cfg.K = 40
	cfg.T = 6
	cfg.Seed = 17
	return cfg
}

// TestNewDemandSparseFullTopKBitExact pins the compatibility guarantee of
// the functional-options redesign: WithSparse at topK ≥ K replays the
// legacy generator's RNG stream coordinate for coordinate, so the sparse
// backing holds bit-identical values to the dense tensor.
func TestNewDemandSparseFullTopKBitExact(t *testing.T) {
	cfg := sparseCfg()
	dense, err := NewDemand(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := dense.(*model.Demand); !ok {
		t.Fatalf("default NewDemand returned %T, want *model.Demand", dense)
	}
	sparse, err := NewDemand(cfg, WithSparse(cfg.K))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sparse.(*model.SparseDemand); !ok {
		t.Fatalf("WithSparse returned %T, want *model.SparseDemand", sparse)
	}
	for tt := 0; tt < cfg.T; tt++ {
		for n := range cfg.Classes {
			for m := 0; m < cfg.Classes[n]; m++ {
				for k := 0; k < cfg.K; k++ {
					if got, want := sparse.At(tt, n, m, k), dense.At(tt, n, m, k); got != want {
						t.Fatalf("At(%d,%d,%d,%d): sparse %g dense %g", tt, n, m, k, got, want)
					}
				}
			}
		}
	}
}

// TestDeprecatedGenerateMatchesNewDemand keeps the shim honest: the old
// entry point must stay a byte-for-byte alias of the new one.
func TestDeprecatedGenerateMatchesNewDemand(t *testing.T) {
	cfg := sparseCfg()
	old, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := NewDemand(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(model.Densify(old), model.Densify(cur)) {
		t.Fatal("Generate diverges from NewDemand")
	}
}

func TestWithSparseTruncation(t *testing.T) {
	cfg := sparseCfg()
	const topK = 5
	d, err := NewDemand(cfg, WithSparse(topK))
	if err != nil {
		t.Fatal(err)
	}
	sp := d.(*model.SparseDemand)
	for tt := 0; tt < cfg.T; tt++ {
		for n := range cfg.Classes {
			if got := len(sp.ActiveItems(tt, n)); got > topK {
				t.Fatalf("slot (%d,%d) has %d active items, cap %d", tt, n, got, topK)
			}
		}
	}
	if sp.NNZ() == 0 {
		t.Fatal("truncated workload is empty")
	}

	// Determinism: the same options give the same tensor.
	d2, err := NewDemand(cfg, WithSparse(topK))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(model.Densify(d), model.Densify(d2)) {
		t.Fatal("truncated generation is not deterministic")
	}

	// WithSeed overrides the config's seed.
	d3, err := NewDemand(cfg, WithSparse(topK), WithSeed(cfg.Seed+1))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(model.Densify(d), model.Densify(d3)) {
		t.Fatal("WithSeed did not change the stream")
	}
}

func TestWithZipfSkew(t *testing.T) {
	cfg := sparseCfg()
	flat, err := NewDemand(cfg, WithZipfSkew(0.2))
	if err != nil {
		t.Fatal(err)
	}
	steep, err := NewDemand(cfg, WithZipfSkew(2.5))
	if err != nil {
		t.Fatal(err)
	}
	headShare := func(d model.DemandView) float64 {
		var head, total float64
		for tt := 0; tt < cfg.T; tt++ {
			for n := range cfg.Classes {
				d.ForEachActive(tt, n, func(m, k int, rate float64) {
					total += rate
					if k < cfg.K/10 {
						head += rate
					}
				})
			}
		}
		return head / total
	}
	if headShare(steep) <= headShare(flat) {
		t.Fatalf("steeper Zipf did not concentrate demand: steep %.3f flat %.3f",
			headShare(steep), headShare(flat))
	}
}

// TestBuildInstanceWithSparse exercises the instance-level entry: the
// built instance must validate and carry a sparse demand view.
func TestBuildInstanceWithSparse(t *testing.T) {
	icfg := PaperDefault()
	icfg.N = 2
	icfg.K = 50
	icfg.T = 4
	icfg.ClassesPerSBS = 3
	in, err := BuildInstanceWith(icfg, WithSparse(8))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := in.Demand.(*model.SparseDemand); !ok {
		t.Fatalf("instance demand is %T, want *model.SparseDemand", in.Demand)
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < in.N; n++ {
		if c := in.Candidates(n); len(c) == 0 || len(c) >= in.K {
			t.Fatalf("SBS %d candidate set has %d items of %d — truncation had no effect", n, len(c), in.K)
		}
	}
}
