package workload

import "edgecache/internal/model"

// Corrupt wraps a forecaster so every forecast is additionally passed
// through hook — the same per-coordinate transform Predictor.WithCorruption
// applies (t is the absolute slot; hooks must clamp to finite non-negative
// rates). It is how fault schedules corrupt the prediction feed of any
// Forecaster, not just the oracle: the ground truth is never touched, only
// the returned windows. A nil hook returns f itself; a *Predictor keeps
// its optimised single-Map path via WithCorruption.
func Corrupt(f Forecaster, hook func(tau, t, n, m, k int, v float64) float64) Forecaster {
	if hook == nil {
		return f
	}
	if p, ok := f.(*Predictor); ok {
		return p.WithCorruption(hook)
	}
	return &corrupted{f: f, hook: hook}
}

type corrupted struct {
	f    Forecaster
	hook func(tau, t, n, m, k int, v float64) float64
}

func (c *corrupted) Truth() model.DemandView { return c.f.Truth() }

func (c *corrupted) Predict(tau, from, to int) (model.DemandView, error) {
	window, err := c.f.Predict(tau, from, to)
	if err != nil {
		return nil, err
	}
	window.Map(func(t, n, m, k int, v float64) float64 {
		return c.hook(tau, from+t, n, m, k, v)
	})
	return window, nil
}
