package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestDemandCSVRoundTrip(t *testing.T) {
	cfg := Config{
		Classes:    []int{2, 3},
		K:          4,
		T:          3,
		Zipf:       ZipfMandelbrot{K: 4, Alpha: 1, Q: 1},
		MaxDensity: 5,
		Jitter:     0.2,
		Seed:       6,
	}
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteDemandCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDemandCSV(&buf, 3, []int{2, 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt < 3; tt++ {
		for n := 0; n < 2; n++ {
			for m := 0; m < cfg.Classes[n]; m++ {
				for k := 0; k < 4; k++ {
					if got.At(tt, n, m, k) != d.At(tt, n, m, k) {
						t.Fatalf("round trip changed rate at (%d,%d,%d,%d)", tt, n, m, k)
					}
				}
			}
		}
	}
}

func TestReadDemandCSVErrors(t *testing.T) {
	header := "t,sbs,class,content,rate\n"
	cases := map[string]string{
		"bad header":    "a,b,c,d,e\n",
		"bad int":       header + "x,0,0,0,1\n",
		"bad rate":      header + "0,0,0,0,zap\n",
		"neg rate":      header + "0,0,0,0,-1\n",
		"slot range":    header + "9,0,0,0,1\n",
		"sbs range":     header + "0,9,0,0,1\n",
		"class range":   header + "0,0,9,0,1\n",
		"content range": header + "0,0,0,9,1\n",
		"short record":  header + "0,0,0\n",
	}
	for name, data := range cases {
		if _, err := ReadDemandCSV(strings.NewReader(data), 2, []int{1}, 2); err == nil {
			t.Errorf("%s: accepted %q", name, data)
		}
	}
}

func TestReadDemandCSVSparse(t *testing.T) {
	data := "t,sbs,class,content,rate\n1,0,0,1,2.5\n"
	d, err := ReadDemandCSV(strings.NewReader(data), 2, []int{1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d.At(1, 0, 0, 1) != 2.5 || d.At(0, 0, 0, 0) != 0 {
		t.Fatal("sparse read incorrect")
	}
}
