package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"edgecache/internal/model"
)

// WriteDemandCSV serialises a demand tensor as long-format CSV with header
// t,sbs,class,content,rate. Zero rates are omitted, keeping real traces
// (which are sparse) compact.
func WriteDemandCSV(w io.Writer, d model.DemandView) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"t", "sbs", "class", "content", "rate"}); err != nil {
		return fmt.Errorf("workload: write csv: %w", err)
	}
	for t := 0; t < d.T(); t++ {
		for n := 0; n < d.N(); n++ {
			var werr error
			d.ForEachActive(t, n, func(m, k int, rate float64) {
				if werr != nil {
					return
				}
				rec := []string{
					strconv.Itoa(t),
					strconv.Itoa(n),
					strconv.Itoa(m),
					strconv.Itoa(k),
					strconv.FormatFloat(rate, 'g', -1, 64),
				}
				werr = cw.Write(rec)
			})
			if werr != nil {
				return fmt.Errorf("workload: write csv: %w", werr)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadDemandCSV parses a long-format demand CSV (see WriteDemandCSV) into
// a tensor of the given shape — the "bring your own trace" entry point:
// export request rates from production logs in this format and feed them
// straight to the solvers. Records outside the declared shape or with
// invalid rates are rejected.
func ReadDemandCSV(r io.Reader, t int, classes []int, k int) (*model.Demand, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 5
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("workload: read csv header: %w", err)
	}
	want := []string{"t", "sbs", "class", "content", "rate"}
	for i, h := range want {
		if header[i] != h {
			return nil, fmt.Errorf("workload: csv header %v, want %v", header, want)
		}
	}

	d := model.NewDemand(t, classes, k)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return d, nil
		}
		if err != nil {
			return nil, fmt.Errorf("workload: read csv: %w", err)
		}
		ints := make([]int, 4)
		for i := 0; i < 4; i++ {
			v, err := strconv.Atoi(rec[i])
			if err != nil {
				return nil, fmt.Errorf("workload: csv line %d field %d: %w", line, i, err)
			}
			ints[i] = v
		}
		rate, err := strconv.ParseFloat(rec[4], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: csv line %d rate: %w", line, err)
		}
		tt, n, m, kk := ints[0], ints[1], ints[2], ints[3]
		if tt < 0 || tt >= t || n < 0 || n >= len(classes) || kk < 0 || kk >= k {
			return nil, fmt.Errorf("workload: csv line %d outside shape (t=%d sbs=%d content=%d)", line, tt, n, kk)
		}
		if m < 0 || m >= classes[n] {
			return nil, fmt.Errorf("workload: csv line %d class %d outside [0, %d)", line, m, classes[n])
		}
		if rate < 0 {
			return nil, fmt.Errorf("workload: csv line %d negative rate %g", line, rate)
		}
		d.Set(tt, n, m, kk, rate)
	}
}
