package convex

import (
	"math"
	"math/rand/v2"
	"testing"

	"edgecache/internal/mat"
	"edgecache/internal/projection"
)

// boxProject returns a Problem.Project clamping to [0, 1]^n.
func boxProject(n int) func(dst, z []float64) ([]float64, error) {
	lo := make([]float64, n)
	hi := make([]float64, n)
	for i := range hi {
		hi[i] = 1
	}
	return func(dst, z []float64) ([]float64, error) {
		return projection.Box(dst, z, lo, hi), nil
	}
}

// quadratic builds F(x) = ½ xᵀQx + bᵀx for a dense symmetric PSD Q.
func quadratic(q *mat.Dense, b []float64) Problem {
	n := len(b)
	tmp := make([]float64, n)
	return Problem{
		Func: func(x []float64) float64 {
			q.MulVec(x, tmp)
			return 0.5*mat.Dot(x, tmp) + mat.Dot(b, x)
		},
		Grad: func(x, grad []float64) {
			q.MulVec(x, grad)
			mat.Axpy(1, b, grad)
		},
		Project: boxProject(n),
	}
}

// randomPSD builds Q = AᵀA + εI with entries of A standard normal.
func randomPSD(r *rand.Rand, n int) *mat.Dense {
	a := mat.NewDense(n, n)
	for i := range a.Data {
		a.Data[i] = r.NormFloat64()
	}
	q := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += a.At(k, i) * a.At(k, j)
			}
			q.Set(i, j, s)
		}
		q.Set(i, i, q.At(i, i)+0.1)
	}
	return q
}

func TestSeparableQuadraticClosedForm(t *testing.T) {
	// F = Σ (x_i − c_i)² over [0,1]^n has the closed-form box solution.
	c := []float64{-0.5, 0.3, 1.7}
	n := len(c)
	p := Problem{
		Func: func(x []float64) float64 {
			var s float64
			for i := range x {
				s += (x[i] - c[i]) * (x[i] - c[i])
			}
			return s
		},
		Grad: func(x, g []float64) {
			for i := range x {
				g[i] = 2 * (x[i] - c[i])
			}
		},
		Project: boxProject(n),
	}
	for _, method := range []Method{FISTA, PGD} {
		res, err := Minimize(p, make([]float64, n), Options{Method: method})
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		want := []float64{0, 0.3, 1}
		for i := range want {
			if math.Abs(res.X[i]-want[i]) > 1e-6 {
				t.Fatalf("%v: X = %v, want %v", method, res.X, want)
			}
		}
		if !res.Converged {
			t.Fatalf("%v: did not converge", method)
		}
	}
}

func TestFixedLipschitzStep(t *testing.T) {
	c := []float64{0.5}
	p := Problem{
		Func:    func(x []float64) float64 { return (x[0] - c[0]) * (x[0] - c[0]) },
		Grad:    func(x, g []float64) { g[0] = 2 * (x[0] - c[0]) },
		Project: boxProject(1),
	}
	res, err := Minimize(p, []float64{0}, Options{Lipschitz: 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-0.5) > 1e-8 {
		t.Fatalf("X = %v, want 0.5", res.X)
	}
}

// kktResidual measures max_i of the projected-gradient optimality violation
// for box-constrained problems: at a solution, g_i ≥ 0 when x_i = 0,
// g_i ≤ 0 when x_i = 1, and g_i ≈ 0 inside.
func kktResidual(x, g []float64) float64 {
	var worst float64
	for i := range x {
		var v float64
		switch {
		case x[i] <= 1e-8:
			v = math.Max(0, -g[i])
		case x[i] >= 1-1e-8:
			v = math.Max(0, g[i])
		default:
			v = math.Abs(g[i])
		}
		if v > worst {
			worst = v
		}
	}
	return worst
}

func TestRandomQuadraticsSatisfyKKT(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.IntN(6)
		q := randomPSD(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		p := quadratic(q, b)
		x0 := make([]float64, n)
		res, err := Minimize(p, x0, Options{MaxIter: 5000, StepTol: 1e-12})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		g := make([]float64, n)
		p.Grad(res.X, g)
		if r := kktResidual(res.X, g); r > 1e-4 {
			t.Fatalf("trial %d: KKT residual %g", trial, r)
		}
	}
}

func TestFISTAMatchesPGD(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.IntN(5)
		q := randomPSD(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		p := quadratic(q, b)
		fast, err := Minimize(p, make([]float64, n), Options{Method: FISTA, MaxIter: 8000, StepTol: 1e-12})
		if err != nil {
			t.Fatal(err)
		}
		slow, err := Minimize(p, make([]float64, n), Options{Method: PGD, MaxIter: 20000, StepTol: 1e-12})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fast.Value-slow.Value) > 1e-5*(1+math.Abs(slow.Value)) {
			t.Fatalf("trial %d: FISTA %g vs PGD %g", trial, fast.Value, slow.Value)
		}
	}
}

func TestKnapsackConstrainedQuadratic(t *testing.T) {
	// min (x₁−1)² + (x₂−1)² s.t. x ∈ [0,1]², x₁+x₂ ≤ 1 → (0.5, 0.5).
	n := 2
	lo := []float64{0, 0}
	hi := []float64{1, 1}
	c := []float64{1, 1}
	p := Problem{
		Func: func(x []float64) float64 {
			return (x[0]-1)*(x[0]-1) + (x[1]-1)*(x[1]-1)
		},
		Grad: func(x, g []float64) {
			g[0] = 2 * (x[0] - 1)
			g[1] = 2 * (x[1] - 1)
		},
		Project: func(dst, z []float64) ([]float64, error) {
			return projection.BoxKnapsack(dst, z, lo, hi, c, 1)
		},
	}
	res, err := Minimize(p, make([]float64, n), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-0.5) > 1e-6 || math.Abs(res.X[1]-0.5) > 1e-6 {
		t.Fatalf("X = %v, want (0.5, 0.5)", res.X)
	}
}

func TestMinimizeValidation(t *testing.T) {
	if _, err := Minimize(Problem{}, []float64{0}, Options{}); err == nil {
		t.Fatal("accepted nil oracles")
	}
	p := Problem{
		Func:    func(x []float64) float64 { return 0 },
		Grad:    func(x, g []float64) {},
		Project: boxProject(1),
	}
	if _, err := Minimize(p, []float64{0}, Options{Method: Method(99)}); err == nil {
		t.Fatal("accepted unknown method")
	}
}

func TestMethodString(t *testing.T) {
	if FISTA.String() != "fista" || PGD.String() != "pgd" {
		t.Fatal("Method.String mismatch")
	}
	if got := Method(42).String(); got != "Method(42)" {
		t.Fatalf("String = %q", got)
	}
}

func TestInfeasibleStartIsProjected(t *testing.T) {
	p := Problem{
		Func:    func(x []float64) float64 { return x[0] * x[0] },
		Grad:    func(x, g []float64) { g[0] = 2 * x[0] },
		Project: boxProject(1),
	}
	res, err := Minimize(p, []float64{17}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]) > 1e-7 {
		t.Fatalf("X = %v, want 0", res.X)
	}
}

// TestWorkspaceMinimizeMatchesPackage pins the reusable-workspace solver to
// the package-level entry point: identical iterates, values and iteration
// counts on random quadratics, for both methods and with buffer reuse
// across differently-sized problems.
func TestWorkspaceMinimizeMatchesPackage(t *testing.T) {
	r := rand.New(rand.NewPCG(41, 42))
	var ws Workspace
	for trial := 0; trial < 20; trial++ {
		n := 1 + r.IntN(12)
		q := randomPSD(r, n)
		b := make([]float64, n)
		x0 := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
			x0[i] = r.Float64()
		}
		p := quadratic(q, b)
		opts := Options{MaxIter: 400, StepTol: 1e-10}
		if trial%2 == 1 {
			opts.Method = PGD
		}
		want, err := Minimize(p, x0, opts)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, n)
		got, err := ws.Minimize(p, x0, out, opts)
		if err != nil {
			t.Fatal(err)
		}
		if got.Value != want.Value || got.Iterations != want.Iterations || got.Converged != want.Converged {
			t.Fatalf("trial %d: workspace result (%v, %d, %v) != package (%v, %d, %v)",
				trial, got.Value, got.Iterations, got.Converged, want.Value, want.Iterations, want.Converged)
		}
		for i := range out {
			if out[i] != want.X[i] {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, i, out[i], want.X[i])
			}
		}
		if &got.X[0] != &out[0] {
			t.Fatalf("trial %d: workspace result does not alias the out buffer", trial)
		}
	}
}

// TestWorkspaceMinimizeZeroAllocs verifies the steady-state promise: after
// the first solve sized the scratch, further solves do not allocate.
func TestWorkspaceMinimizeZeroAllocs(t *testing.T) {
	r := rand.New(rand.NewPCG(43, 44))
	const n = 8
	q := randomPSD(r, n)
	b := make([]float64, n)
	x0 := make([]float64, n)
	for i := range b {
		b[i] = r.NormFloat64()
		x0[i] = r.Float64()
	}
	p := quadratic(q, b)
	out := make([]float64, n)
	var ws Workspace
	opts := Options{MaxIter: 300, StepTol: 1e-10}
	if _, err := ws.Minimize(p, x0, out, opts); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		if _, err := ws.Minimize(p, x0, out, opts); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("steady-state Workspace.Minimize allocates %.0f objects/op, want 0", allocs)
	}
}

// TestWorkspaceMinimizeValidatesOut pins the out-length contract.
func TestWorkspaceMinimizeValidatesOut(t *testing.T) {
	p := quadratic(randomPSD(rand.New(rand.NewPCG(1, 2)), 3), []float64{1, 1, 1})
	var ws Workspace
	if _, err := ws.Minimize(p, []float64{0, 0, 0}, make([]float64, 2), Options{}); err == nil {
		t.Fatal("Workspace.Minimize accepted a short out buffer")
	}
}
