// Package convex implements first-order methods for smooth convex
// minimisation over a simple convex set given by a projection oracle:
//
//	minimize F(x)  subject to  x ∈ Ω,
//
// with F convex and L-smooth. It provides plain projected gradient descent
// and its accelerated variant FISTA (Beck & Teboulle) with backtracking
// line search and adaptive restart.
//
// In this repository the solver handles the load-balancing subproblem P2
// (eq. 19): F is the quadratic operating cost f_t + g_t plus the linear
// Lagrangian term Σ μ y, and Ω is the box-and-bandwidth set projected by
// package projection.
package convex

import (
	"errors"
	"fmt"
	"math"

	"edgecache/internal/mat"
)

// Method selects the iteration scheme.
type Method int

const (
	// FISTA is accelerated projected gradient with adaptive restart — the
	// default and the right choice for the ill-conditioned rank-one-plus-
	// linear quadratics of P2.
	FISTA Method = iota + 1
	// PGD is plain projected gradient descent, kept as the ablation
	// baseline (BenchmarkP2_FISTAvsPGD).
	PGD
)

// String names the method.
func (m Method) String() string {
	switch m {
	case FISTA:
		return "fista"
	case PGD:
		return "pgd"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Problem bundles the oracles of one minimisation.
type Problem struct {
	// Func returns F(x).
	Func func(x []float64) float64
	// Grad writes ∇F(x) into grad (len(grad) == len(x)).
	Grad func(x, grad []float64)
	// Project writes the Euclidean projection of z onto Ω into dst and
	// returns dst; dst may alias z. It must be a true projection (firmly
	// non-expansive) for the convergence guarantees to hold.
	Project func(dst, z []float64) ([]float64, error)
}

// Options tune a solve; the zero value selects defaults.
type Options struct {
	// Method defaults to FISTA.
	Method Method
	// MaxIter defaults to 2000.
	MaxIter int
	// StepTol stops the iteration when the step size drops below
	// StepTol·(1+‖x‖). Default 1e-9.
	StepTol float64
	// Lipschitz, when positive, fixes the step to 1/Lipschitz and disables
	// backtracking. P2 supplies its exact smoothness constant, making each
	// iteration a single gradient + projection.
	Lipschitz float64
}

func (o Options) withDefaults() Options {
	if o.Method == 0 {
		o.Method = FISTA
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 2000
	}
	if o.StepTol <= 0 {
		o.StepTol = 1e-9
	}
	return o
}

// Result reports the final iterate.
type Result struct {
	// X is the best iterate found.
	X []float64
	// Value is F(X).
	Value float64
	// Iterations is the number of gradient steps taken.
	Iterations int
	// Converged reports whether the step-size criterion was met before
	// MaxIter.
	Converged bool
}

// Minimize runs the selected method from x0 (which must be feasible or at
// least projectable) and returns the final iterate. The only error sources
// are an invalid configuration and a failing projection oracle.
func Minimize(p Problem, x0 []float64, opts Options) (*Result, error) {
	var ws Workspace
	out := make([]float64, len(x0))
	res, err := ws.Minimize(p, x0, out, opts)
	if err != nil {
		return nil, err
	}
	return &res, nil
}

// Workspace owns the iterate and scratch buffers of a solve so that
// repeated Minimize calls of the same (or smaller) dimension perform no
// steady-state heap allocations. The zero value is ready to use; buffers
// grow on demand and are retained across calls. A Workspace must not be
// used by concurrent solves.
type Workspace struct {
	x, y, xPrev, grad, trial []float64
}

// grow returns buf resized to n entries, reallocating only when the
// capacity is insufficient. Contents are unspecified.
func grow(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// Minimize is the workspace form of the package-level Minimize: scratch
// comes from ws and the final iterate is written into out (len(out) ==
// len(x0); out may alias x0), which the returned Result aliases as X. It
// performs the exact float64 operation sequence of the allocating path —
// buffer rotation replaces the per-iteration copies, and when
// Options.Lipschitz fixes the step the objective value at the extrapolated
// point, which only the backtracking test consumes, is not evaluated at
// all. On error the Result is meaningless.
func (ws *Workspace) Minimize(p Problem, x0, out []float64, opts Options) (Result, error) {
	var res Result
	if p.Func == nil || p.Grad == nil || p.Project == nil {
		return res, errors.New("convex: Problem requires Func, Grad and Project")
	}
	opts = opts.withDefaults()
	if opts.Method != FISTA && opts.Method != PGD {
		return res, fmt.Errorf("convex: unknown method %d", int(opts.Method))
	}
	n := len(x0)
	if len(out) != n {
		return res, fmt.Errorf("convex: out has %d entries, want %d", len(out), n)
	}

	ws.x = grow(ws.x, n)
	ws.y = grow(ws.y, n)
	ws.xPrev = grow(ws.xPrev, n)
	ws.grad = grow(ws.grad, n)
	ws.trial = grow(ws.trial, n)
	x, y, xPrev, grad, trial := ws.x, ws.y, ws.xPrev, ws.grad, ws.trial

	copy(x, x0)
	if _, err := p.Project(x, x); err != nil {
		return res, fmt.Errorf("convex: projecting start point: %w", err)
	}
	// y is the extrapolated point (equals x for PGD). xPrev and trial hold
	// stale data until the first iteration overwrites them.
	copy(y, x)

	// Backtracking state: L grows by ×2 on failure, shrinks by ×0.9 across
	// iterations to re-probe longer steps.
	l := opts.Lipschitz
	backtrack := l <= 0
	if backtrack {
		l = 1
	}

	tk := 1.0
	var fy float64
	if backtrack {
		fy = p.Func(y)
	}
	fxPrev := math.Inf(1)
	for iter := 0; iter < opts.MaxIter; iter++ {
		res.Iterations = iter + 1
		p.Grad(y, grad)

		// Find a step satisfying the sufficient-decrease (majorisation)
		// condition F(x⁺) ≤ F(y) + ⟨∇F(y), x⁺−y⟩ + L/2·‖x⁺−y‖².
		for {
			copy(trial, y)
			mat.Axpy(-1/l, grad, trial)
			if _, err := p.Project(trial, trial); err != nil {
				return res, fmt.Errorf("convex: projection failed at iteration %d: %w", iter, err)
			}
			if !backtrack {
				break
			}
			var lin, sq float64
			for i := range trial {
				d := trial[i] - y[i]
				lin += grad[i] * d
				sq += d * d
			}
			if p.Func(trial) <= fy+lin+0.5*l*sq+1e-12*(1+math.Abs(fy)) {
				break
			}
			l *= 2
			if l > 1e18 {
				return res, errors.New("convex: backtracking failed (non-smooth objective?)")
			}
		}

		step := mat.Dist2(trial, x)
		// Rotate instead of copying: trial becomes the new x, the old x the
		// new xPrev, and the old xPrev the next iteration's trial buffer
		// (fully overwritten before any read).
		xPrev, x, trial = x, trial, xPrev

		if opts.Method == PGD {
			copy(y, x)
		} else {
			// Function-value adaptive restart (O'Donoghue & Candès): FISTA
			// is non-monotone, and when the objective rises the momentum is
			// overshooting — drop it.
			fx := p.Func(x)
			if fx > fxPrev {
				tk = 1
				copy(y, x)
			} else {
				tNext := 0.5 * (1 + math.Sqrt(1+4*tk*tk))
				beta := (tk - 1) / tNext
				for i := range y {
					y[i] = x[i] + beta*(x[i]-xPrev[i])
				}
				tk = tNext
			}
			fxPrev = fx
		}
		if backtrack {
			fy = p.Func(y)
			l *= 0.9
		}
		if step <= opts.StepTol*(1+mat.Norm2(x)) {
			res.Converged = true
			break
		}
	}

	copy(out, x)
	res.X = out
	res.Value = p.Func(x)
	return res, nil
}
