// Package textplot renders experiment series as ASCII line charts so the
// sweep commands can show the figures' shapes directly in a terminal,
// without any plotting dependency (the module is stdlib-only).
package textplot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named line.
type Series struct {
	Name string
	Y    []float64
}

// Chart is a set of series over shared x values.
type Chart struct {
	Title  string
	XLabel string
	X      []float64
	Series []Series

	// Width and Height are the plot area size in characters; zero values
	// default to 64×16.
	Width, Height int
}

// markers label the series in plotting order.
const markers = "ox*+#@%&"

// Render draws the chart. Each series is plotted with its own marker;
// collisions show the later series. Returns an error only when the chart
// is malformed or the writer fails.
func (c *Chart) Render(w io.Writer) error {
	if len(c.X) == 0 {
		return fmt.Errorf("textplot: no x values")
	}
	if len(c.Series) == 0 {
		return fmt.Errorf("textplot: no series")
	}
	if len(c.Series) > len(markers) {
		return fmt.Errorf("textplot: at most %d series supported, got %d", len(markers), len(c.Series))
	}
	for _, s := range c.Series {
		if len(s.Y) != len(c.X) {
			return fmt.Errorf("textplot: series %q has %d points, want %d", s.Name, len(s.Y), len(c.X))
		}
	}
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 16
	}

	xMin, xMax := minMax(c.X)
	var yMin, yMax float64
	yMin, yMax = math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		lo, hi := minMax(s.Y)
		yMin = math.Min(yMin, lo)
		yMax = math.Max(yMax, hi)
	}
	if yMax == yMin {
		yMax = yMin + 1
	}
	if xMax == xMin {
		xMax = xMin + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	col := func(x float64) int {
		return int(math.Round((x - xMin) / (xMax - xMin) * float64(width-1)))
	}
	row := func(y float64) int {
		return height - 1 - int(math.Round((y-yMin)/(yMax-yMin)*float64(height-1)))
	}
	for si, s := range c.Series {
		for i, y := range s.Y {
			grid[row(y)][col(c.X[i])] = markers[si]
		}
	}

	if c.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", c.Title); err != nil {
			return err
		}
	}
	yTop := fmt.Sprintf("%.4g", yMax)
	yBot := fmt.Sprintf("%.4g", yMin)
	labelWidth := max(len(yTop), len(yBot))
	for i, line := range grid {
		label := strings.Repeat(" ", labelWidth)
		switch i {
		case 0:
			label = fmt.Sprintf("%*s", labelWidth, yTop)
		case height - 1:
			label = fmt.Sprintf("%*s", labelWidth, yBot)
		}
		if _, err := fmt.Fprintf(w, "%s |%s\n", label, string(line)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", labelWidth), strings.Repeat("-", width)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s  %-*.4g%*.4g  (%s)\n",
		strings.Repeat(" ", labelWidth), width/2, xMin, width-width/2, xMax, c.XLabel); err != nil {
		return err
	}
	var legend []string
	for si, s := range c.Series {
		legend = append(legend, fmt.Sprintf("%c=%s", markers[si], s.Name))
	}
	_, err := fmt.Fprintf(w, "%s  %s\n\n", strings.Repeat(" ", labelWidth), strings.Join(legend, "  "))
	return err
}

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range xs {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return lo, hi
}
