package textplot

import (
	"bytes"
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	c := &Chart{
		Title:  "demo",
		XLabel: "beta",
		X:      []float64{0, 1, 2, 3},
		Series: []Series{
			{Name: "A", Y: []float64{1, 2, 3, 4}},
			{Name: "B", Y: []float64{4, 3, 2, 1}},
		},
		Width:  20,
		Height: 6,
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"demo", "o=A", "x=B", "(beta)", "|"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Increasing series A: its first point is on the bottom row, its last
	// on the top row.
	lines := strings.Split(out, "\n")
	plotLines := lines[1 : 1+6]
	if !strings.Contains(plotLines[0], "o") {
		t.Fatalf("top row missing A's max:\n%s", out)
	}
	if !strings.Contains(plotLines[5], "o") {
		t.Fatalf("bottom row missing A's min:\n%s", out)
	}
}

func TestRenderConstantSeries(t *testing.T) {
	c := &Chart{
		X:      []float64{1, 2},
		Series: []Series{{Name: "flat", Y: []float64{5, 5}}},
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestRenderSinglePoint(t *testing.T) {
	c := &Chart{X: []float64{2}, Series: []Series{{Name: "p", Y: []float64{3}}}}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestRenderErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Chart{}).Render(&buf); err == nil {
		t.Fatal("accepted empty chart")
	}
	if err := (&Chart{X: []float64{1}}).Render(&buf); err == nil {
		t.Fatal("accepted chart without series")
	}
	bad := &Chart{X: []float64{1, 2}, Series: []Series{{Name: "s", Y: []float64{1}}}}
	if err := bad.Render(&buf); err == nil {
		t.Fatal("accepted ragged series")
	}
	many := &Chart{X: []float64{1}}
	for i := 0; i < 10; i++ {
		many.Series = append(many.Series, Series{Name: "s", Y: []float64{1}})
	}
	if err := many.Render(&buf); err == nil {
		t.Fatal("accepted too many series")
	}
}
