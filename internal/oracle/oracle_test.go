package oracle

import (
	"context"
	"math"
	"math/bits"
	"testing"

	"edgecache/internal/audit"
	"edgecache/internal/convex"
	"edgecache/internal/loadbalance"
	"edgecache/internal/model"
	"edgecache/internal/workload"
)

// tinyInstance builds an instance small enough for exhaustive enumeration.
func tinyInstance(t *testing.T, mutate func(*workload.InstanceConfig)) *model.Instance {
	t.Helper()
	cfg := workload.PaperDefault()
	cfg.T = 3
	cfg.K = 3
	cfg.ClassesPerSBS = 2
	cfg.CacheCap = 1
	cfg.Bandwidth = 4
	cfg.Beta = 3
	cfg.Workload.Jitter = 0.4
	if mutate != nil {
		mutate(&cfg)
	}
	in, err := workload.BuildInstance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// exhaustiveOptimum enumerates every joint state sequence (all SBSs, all
// slots), computes the exact load split per slot through a *different*
// code path than the oracle uses (loadbalance.OptimalGivenPlacement
// instead of the per-SBS SlotProblem), and evaluates the total cost with
// model.Instance.TotalCost. It is a deliberately brute, independent
// reference for the oracle's DP.
func exhaustiveOptimum(t *testing.T, in *model.Instance) float64 {
	t.Helper()
	// Joint per-slot states: the cartesian product of each SBS's
	// capacity-feasible subsets.
	perSBS := make([][]uint, in.N)
	for n := 0; n < in.N; n++ {
		for mask := uint(0); mask < 1<<in.K; mask++ {
			if bits.OnesCount(mask) <= in.CacheCap[n] {
				perSBS[n] = append(perSBS[n], mask)
			}
		}
	}
	var joint []model.CachePlan
	var build func(n int, cur model.CachePlan)
	build = func(n int, cur model.CachePlan) {
		if n == in.N {
			cp := model.NewCachePlan(in.N, in.K)
			for i := range cur {
				copy(cp[i], cur[i])
			}
			joint = append(joint, cp)
			return
		}
		for _, mask := range perSBS[n] {
			for k := 0; k < in.K; k++ {
				if mask&(1<<k) != 0 {
					cur[n][k] = 1
				} else {
					cur[n][k] = 0
				}
			}
			build(n+1, cur)
		}
	}
	build(0, model.NewCachePlan(in.N, in.K))

	// Optimal load split per (slot, joint state), memoised.
	splits := make([]map[int]model.LoadPlan, in.T)
	splitCost := make([]map[int]float64, in.T)
	for tt := 0; tt < in.T; tt++ {
		splits[tt] = make(map[int]model.LoadPlan, len(joint))
		splitCost[tt] = make(map[int]float64, len(joint))
		for si, x := range joint {
			y, err := loadbalance.OptimalGivenPlacement(in, tt, x, convex.Options{})
			if err != nil {
				t.Fatalf("slot %d state %d: %v", tt, si, err)
			}
			splits[tt][si] = y
			splitCost[tt][si] = in.BSCost(tt, y) + in.SBSCost(tt, y)
		}
	}

	// Enumerate all sequences of joint states.
	best := math.Inf(1)
	var walk func(tt int, prev model.CachePlan, acc float64)
	walk = func(tt int, prev model.CachePlan, acc float64) {
		if acc >= best {
			return // branch-and-bound: costs only grow
		}
		if tt == in.T {
			best = acc
			return
		}
		for si, x := range joint {
			walk(tt+1, x, acc+in.ReplacementCost(prev, x)+splitCost[tt][si])
		}
	}
	walk(0, in.InitialPlan(), 0)
	return best
}

func TestOracleMatchesExhaustiveEnumeration(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mutate func(*workload.InstanceConfig)
	}{
		{"1sbs", nil},
		{"1sbs-tight-bandwidth", func(cfg *workload.InstanceConfig) { cfg.Bandwidth = 1 }},
		{"1sbs-free-replacement", func(cfg *workload.InstanceConfig) { cfg.Beta = 0 }},
		{"2sbs", func(cfg *workload.InstanceConfig) {
			cfg.N = 2
			cfg.T = 2
			cfg.K = 2
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			in := tinyInstance(t, tc.mutate)
			_, br, err := Solve(context.Background(), in, convex.Options{})
			if err != nil {
				t.Fatal(err)
			}
			want := exhaustiveOptimum(t, in)
			if math.Abs(br.Total-want) > 1e-6*(1+math.Abs(want)) {
				t.Fatalf("oracle DP %g != exhaustive optimum %g", br.Total, want)
			}
		})
	}
}

func TestOracleTrajectoryAuditsClean(t *testing.T) {
	in := tinyInstance(t, func(cfg *workload.InstanceConfig) { cfg.T = 4; cfg.K = 4; cfg.CacheCap = 2 })
	traj, br, err := Solve(context.Background(), in, convex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep := audit.Trajectory(in, traj, &br, audit.Options{})
	if !rep.OK() {
		t.Fatalf("oracle trajectory failed its own audit: %v", rep.Err())
	}
	if err := in.CheckTrajectory(traj, 1e-6); err != nil {
		t.Fatal(err)
	}
}

func TestOracleAvoidsReplacementsUnderHugeBeta(t *testing.T) {
	// With an empty initial cache and a replacement cost dwarfing any
	// operating saving, the optimum is to never insert anything.
	in := tinyInstance(t, func(cfg *workload.InstanceConfig) { cfg.Beta = 1e12 })
	traj, br, err := Solve(context.Background(), in, convex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if br.Replacements != 0 || br.Replacement != 0 {
		t.Fatalf("oracle paid %g for %d replacements despite β = 1e12", br.Replacement, br.Replacements)
	}
	for tt := range traj {
		for n := 0; n < in.N; n++ {
			if items := traj[tt].X.Items(n); len(items) != 0 {
				t.Fatalf("slot %d SBS %d caches %v with an empty initial cache and β = 1e12", tt, n, items)
			}
		}
	}
}

func TestSolvableGuards(t *testing.T) {
	if err := Solvable(nil); err == nil {
		t.Fatal("Solvable accepted a nil instance")
	}
	in := tinyInstance(t, func(cfg *workload.InstanceConfig) { cfg.K = MaxK + 1; cfg.Bandwidth = 8 })
	if err := Solvable(in); err == nil {
		t.Fatalf("Solvable accepted K = %d", MaxK+1)
	}
	if _, _, err := Solve(context.Background(), in, convex.Options{}); err == nil {
		t.Fatal("Solve accepted an oversized catalogue")
	}
}

func TestSolveValidatesInstance(t *testing.T) {
	in := tinyInstance(t, nil)
	in.N = 0
	if _, _, err := Solve(context.Background(), in, convex.Options{}); err == nil {
		t.Fatal("Solve accepted an invalid instance")
	}
}

func TestSolveHonoursCancellation(t *testing.T) {
	in := tinyInstance(t, func(cfg *workload.InstanceConfig) { cfg.K = 8; cfg.CacheCap = 3 })
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := Solve(ctx, in, convex.Options{}); err == nil {
		t.Fatal("Solve ignored a cancelled context")
	}
}
