// Package oracle computes the exact offline optimum of the joint
// caching / load-balancing problem (eq. 9) on tiny instances. It is the
// ground truth of the differential correctness harness: the primal-dual
// solver (package core), the online controllers (package online) and the
// trajectory auditor (package audit) are all cross-checked against it.
//
// # Formulation (DESIGN.md §9)
//
// The objective and every constraint separate across SBSs — each term of
// f_t, g_t and h involves exactly one SBS, and capacity/bandwidth bind per
// SBS — so the instance decomposes into N independent per-SBS problems.
// The only temporal coupling left is the replacement cost h between
// consecutive placements, which makes each per-SBS problem a shortest
// path over time through placement states:
//
//   - a state is a capacity-feasible item subset S ⊆ {1..K}, |S| ≤ C_n,
//     enumerated as a bitmask (eq. 1 holds by construction);
//   - the per-(t, state) cost is f_t + g_t at the *exact* optimal load
//     split for that placement — the same convex machinery the solvers
//     use (package loadbalance), with the coupling y ≤ x (eq. 3) as the
//     upper bound and the bandwidth knapsack (eq. 2) intact;
//   - the transition cost from state P to state S entering slot t is
//     β_n·|S \ P| (eq. 8);
//   - a forward DP over slots with backtracking recovers the optimal
//     state sequence, starting from the instance's initial placement.
//
// The state space is every ≤C_n-subset of K items, so the DP is
// exponential in K: Solve refuses K > MaxK, and the differential test
// suites stay far below that (N ≤ 2, K ≤ 6, T ≤ 4) where a solve is
// milliseconds. Within those limits the result is the true optimum up to
// the convex subsolver's tolerance.
package oracle

import (
	"context"
	"fmt"
	"math"
	"math/bits"

	"edgecache/internal/convex"
	"edgecache/internal/loadbalance"
	"edgecache/internal/model"
)

// MaxK bounds the catalogue size accepted by Solve: the DP state space is
// every ≤C-subset of K items, which grows as 2^K.
const MaxK = 14

// Solvable reports whether the instance is within the oracle's size
// limits; it returns a descriptive error when it is not.
func Solvable(in *model.Instance) error {
	if in == nil {
		return fmt.Errorf("oracle: nil instance")
	}
	if in.K > MaxK {
		return fmt.Errorf("oracle: exact DP limited to K ≤ %d, got %d", MaxK, in.K)
	}
	if in.Overlay != nil {
		// The DP enumerates states against a single per-SBS capacity and
		// its load splits assume the base bandwidth; it has not been
		// taught the slot-varying effective capacities of a fault
		// overlay, so it refuses rather than return a wrong "optimum".
		return fmt.Errorf("oracle: exact DP does not support fault overlays")
	}
	return nil
}

// Solve computes the exact optimum of eq. (9) over the instance's horizon
// and returns the optimal trajectory with its cost breakdown. It is
// exponential in K (see MaxK) and intended for tiny instances only.
// Cancellation is honoured between per-state load-split solves.
func Solve(ctx context.Context, in *model.Instance, opts convex.Options) (model.Trajectory, model.CostBreakdown, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := in.Validate(); err != nil {
		return nil, model.CostBreakdown{}, fmt.Errorf("oracle: %w", err)
	}
	if err := Solvable(in); err != nil {
		return nil, model.CostBreakdown{}, err
	}
	// The DP's optimality argument needs each per-state load split to be
	// essentially exact: an under-converged split inflates a state's cost
	// and can make the "optimum" lose to the production solver. Default
	// far past the production tolerances — instances here are tiny, so
	// the extra iterations are cheap.
	if opts.MaxIter == 0 {
		opts.MaxIter = 50000
	}
	if opts.StepTol == 0 {
		opts.StepTol = 1e-12
	}

	traj := model.NewTrajectory(in)
	initial := in.InitialPlan()
	for n := 0; n < in.N; n++ {
		if err := solveSBS(ctx, in, n, initial[n], traj, opts); err != nil {
			return nil, model.CostBreakdown{}, err
		}
	}
	return traj, in.TotalCost(traj), nil
}

// solveSBS fills traj's slots for SBS n with its optimal trajectory via
// the per-SBS DP described in the package comment.
func solveSBS(ctx context.Context, in *model.Instance, n int, initial []float64, traj model.Trajectory, opts convex.Options) error {
	states := enumerateStates(in.K, in.CacheCap[n])
	initMask := uint(0)
	for k, v := range initial {
		if v >= 0.5 {
			initMask |= 1 << k
		}
	}

	// slotSolution memoises the exact optimal load split of one
	// (slot, state) pair and its operating cost f_t + g_t.
	type slotSolution struct {
		cost float64
		y    [][]float64 // per class
	}
	solveState := func(t int, mask uint) (slotSolution, error) {
		upper := make([]float64, in.Classes[n]*in.K)
		for m := 0; m < in.Classes[n]; m++ {
			for k := 0; k < in.K; k++ {
				if mask&(1<<k) != 0 {
					upper[m*in.K+k] = 1
				}
			}
		}
		sp := loadbalance.ForInstance(in, t, n, nil, upper)
		y, _, err := sp.Solve(nil, opts)
		if err != nil {
			return slotSolution{}, fmt.Errorf("oracle: slot %d state %b: %w", t, mask, err)
		}
		ym := make([][]float64, in.Classes[n])
		for m := range ym {
			ym[m] = y[m*in.K : (m+1)*in.K]
		}
		f, g := sp.OperatingCosts(y)
		return slotSolution{cost: f + g, y: ym}, nil
	}

	switchCost := func(prev, cur uint) float64 {
		inserted := bits.OnesCount(cur &^ prev)
		return in.Beta[n] * float64(inserted)
	}

	// DP forward: best[s] = min cost of reaching state s at slot t.
	best := make([]float64, len(states))
	choice := make([][]int, in.T) // argmin predecessor per (t, state)
	sols := make([][]slotSolution, in.T)
	for t := 0; t < in.T; t++ {
		choice[t] = make([]int, len(states))
		sols[t] = make([]slotSolution, len(states))
		next := make([]float64, len(states))
		for si, s := range states {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("oracle: interrupted at slot %d: %w", t, err)
			}
			sol, err := solveState(t, s)
			if err != nil {
				return err
			}
			sols[t][si] = sol
			bestPrev := math.Inf(1)
			bestIdx := -1
			if t == 0 {
				bestPrev = switchCost(initMask, s)
			} else {
				for pi, p := range states {
					if c := best[pi] + switchCost(p, s); c < bestPrev {
						bestPrev = c
						bestIdx = pi
					}
				}
			}
			choice[t][si] = bestIdx
			next[si] = bestPrev + sol.cost
		}
		best = next
	}

	// Backtrack the optimal state sequence into the shared trajectory.
	endIdx := 0
	for si := range states {
		if best[si] < best[endIdx] {
			endIdx = si
		}
	}
	for t := in.T - 1; t >= 0; t-- {
		mask := states[endIdx]
		for k := 0; k < in.K; k++ {
			if mask&(1<<k) != 0 {
				traj[t].X[n][k] = 1
			}
		}
		for m := 0; m < in.Classes[n]; m++ {
			copy(traj[t].Y[n][m], sols[t][endIdx].y[m])
		}
		endIdx = choice[t][endIdx]
	}
	return nil
}

// enumerateStates lists all item subsets of size ≤ cap as bitmasks, in
// increasing mask order (deterministic tie-breaking in the DP).
func enumerateStates(k, cacheCap int) []uint {
	var states []uint
	for mask := uint(0); mask < 1<<k; mask++ {
		if bits.OnesCount(mask) <= cacheCap {
			states = append(states, mask)
		}
	}
	return states
}
