package report

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"edgecache/internal/experiments"
)

func table(id string, cols []string, rows ...map[string]float64) *experiments.Table {
	t := experiments.NewTable(id, "T "+id, "x", cols)
	for i, r := range rows {
		t.Add(float64(i), r)
	}
	return t
}

func TestNonIncreasing(t *testing.T) {
	tab := table("a", []string{"A"},
		map[string]float64{"A": 10}, map[string]float64{"A": 9}, map[string]float64{"A": 9.05})
	if err := NonIncreasing("A", 0.01)(tab); err != nil {
		t.Fatalf("within slack: %v", err)
	}
	if err := NonIncreasing("A", 0.001)(tab); err == nil {
		t.Fatal("rise beyond slack accepted")
	}
	if err := NonIncreasing("B", 0.01)(tab); err == nil {
		t.Fatal("missing column accepted")
	}
}

func TestNonDecreasing(t *testing.T) {
	tab := table("a", []string{"A"},
		map[string]float64{"A": 1}, map[string]float64{"A": 2}, map[string]float64{"A": 1.99})
	if err := NonDecreasing("A", 0.01)(tab); err != nil {
		t.Fatalf("within slack: %v", err)
	}
	if err := NonDecreasing("A", 0.001)(tab); err == nil {
		t.Fatal("fall beyond slack accepted")
	}
}

func TestFlat(t *testing.T) {
	tab := table("a", []string{"A", "Z"},
		map[string]float64{"A": 5, "Z": 0}, map[string]float64{"A": 5.001, "Z": 0})
	if err := Flat("A", 0.01)(tab); err != nil {
		t.Fatalf("flat within band: %v", err)
	}
	if err := Flat("A", 1e-9)(tab); err == nil {
		t.Fatal("variation beyond band accepted")
	}
	if err := Flat("Z", 1e-9)(tab); err != nil {
		t.Fatalf("all-zero column: %v", err)
	}
}

func TestDominatesAndOrdering(t *testing.T) {
	tab := table("a", []string{"A", "B", "C"},
		map[string]float64{"A": 1, "B": 2, "C": 3},
		map[string]float64{"A": 2, "B": 2, "C": 4})
	if err := Ordering(0.01, "A", "B", "C")(tab); err != nil {
		t.Fatalf("valid ordering: %v", err)
	}
	if err := Dominates("C", "A", 0.01)(tab); err == nil {
		t.Fatal("inverted dominance accepted")
	}
}

func TestLabeledCellBetween(t *testing.T) {
	tab := experiments.NewTable("h", "H", "row", []string{"R"})
	tab.AddLabeled(0, "RHC", map[string]float64{"R": 1.1})
	if err := LabeledCellBetween("RHC", "R", 1, 1.25)(tab); err != nil {
		t.Fatalf("in range: %v", err)
	}
	if err := LabeledCellBetween("RHC", "R", 1, 1.05)(tab); err == nil {
		t.Fatal("out of range accepted")
	}
	if err := LabeledCellBetween("AFHC", "R", 0, 2)(tab); err == nil {
		t.Fatal("missing label accepted")
	}
}

func TestMinimumNear(t *testing.T) {
	tab := experiments.NewTable("r", "R", "rho", []string{"C"})
	tab.Add(0.2, map[string]float64{"C": 10})
	tab.Add(0.4, map[string]float64{"C": 8})
	tab.Add(0.8, map[string]float64{"C": 12})
	if err := MinimumNear("C", 0.382, 0.1)(tab); err != nil {
		t.Fatalf("minimum near rho*: %v", err)
	}
	if err := MinimumNear("C", 0.8, 0.05)(tab); err == nil {
		t.Fatal("far minimum accepted")
	}
}

func TestWriteRendersVerdicts(t *testing.T) {
	sections := []Section{
		{
			ID:             "demo",
			PaperStatement: "the paper says A is flat",
			Claims: []Claim{
				{"A flat", true, Flat("A", 0.01)},
				{"A rises (informational, should warn)", false, NonDecreasing("A", 0.0001)},
			},
		},
		{ID: "missing", PaperStatement: "not measured"},
	}
	tab := table("demo", []string{"A"},
		map[string]float64{"A": 5}, map[string]float64{"A": 4.999})
	var buf bytes.Buffer
	err := Write(&buf, sections, map[string]*experiments.Table{"demo": tab}, "# doc\n\n")
	if err != nil {
		t.Fatalf("no strict failure expected: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"# doc", "[PASS] A flat", "[WARN] A rises", "the paper says A is flat", "*Not measured in this run.*"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteReportsStrictFailure(t *testing.T) {
	sections := []Section{{
		ID:     "demo",
		Claims: []Claim{{"A flat", true, Flat("A", 1e-12)}},
	}}
	tab := table("demo", []string{"A"},
		map[string]float64{"A": 1}, map[string]float64{"A": 2})
	var buf bytes.Buffer
	err := Write(&buf, sections, map[string]*experiments.Table{"demo": tab}, "")
	if err == nil {
		t.Fatal("strict failure not reported")
	}
	if !strings.Contains(buf.String(), "[FAIL]") {
		t.Fatal("FAIL marker missing from document")
	}
}

func TestPaperSectionsWellFormed(t *testing.T) {
	ids := map[string]bool{}
	for _, s := range PaperSections() {
		if s.ID == "" || s.PaperStatement == "" {
			t.Fatalf("section %+v incomplete", s)
		}
		if ids[s.ID] {
			t.Fatalf("duplicate section %s", s.ID)
		}
		ids[s.ID] = true
		if len(s.Claims) == 0 {
			t.Fatalf("section %s has no claims", s.ID)
		}
		for _, c := range s.Claims {
			if c.Description == "" || c.Check == nil {
				t.Fatalf("section %s has malformed claim %+v", s.ID, c)
			}
		}
	}
	for _, want := range []string{"fig2a", "fig2b", "fig2c", "fig2d", "fig3a", "fig3b", "fig4a", "fig4b", "fig5", "headline", "rho", "chc-r", "classic"} {
		if !ids[want] {
			t.Fatalf("missing section %s", want)
		}
	}
}

func TestVerdictStatus(t *testing.T) {
	pass := Verdict{Claim: Claim{Strict: true}}
	if pass.Status() != "PASS" {
		t.Fatal("nil error should PASS")
	}
	fail := Verdict{Claim: Claim{Strict: true}, Err: errTest}
	if fail.Status() != "FAIL" {
		t.Fatal("strict error should FAIL")
	}
	warn := Verdict{Claim: Claim{Strict: false}, Err: errTest}
	if warn.Status() != "WARN" {
		t.Fatal("informational error should WARN")
	}
}

var errTest = fmtError("boom")

type fmtError string

func (e fmtError) Error() string { return string(e) }

// TestUndefinedClaimsAreExplicit is the regression test for silent NaN
// propagation: a zero-cost baseline makes stats.Ratio/Reduction return
// NaN, and every NaN comparison is false — so a bound check like
// `v < lo || v > hi` used to pass silently on undefined data. Every
// claim helper must instead surface ErrUndefined.
func TestUndefinedClaimsAreExplicit(t *testing.T) {
	nan := math.NaN()
	tab := table("u", []string{"A", "B"},
		map[string]float64{"A": nan, "B": 1},
		map[string]float64{"A": nan, "B": 2})
	checks := map[string]func(*experiments.Table) error{
		"NonIncreasing": NonIncreasing("A", 0.01),
		"NonDecreasing": NonDecreasing("A", 0.01),
		"Flat":          Flat("A", 0.01),
		"Dominates":     Dominates("A", "B", 0.01),
		"Ordering":      Ordering(0.01, "B", "A"),
		"MinimumNear":   MinimumNear("A", 0.5, 10),
	}
	for name, check := range checks {
		if err := check(tab); !errors.Is(err, ErrUndefined) {
			t.Errorf("%s on NaN column: err = %v, want ErrUndefined", name, err)
		}
	}

	labeled := experiments.NewTable("h", "H", "row", []string{"RatioToOffline"})
	labeled.AddLabeled(0, "RHC", map[string]float64{"RatioToOffline": nan})
	if err := LabeledCellBetween("RHC", "RatioToOffline", 0, 10)(labeled); !errors.Is(err, ErrUndefined) {
		t.Errorf("LabeledCellBetween on NaN cell: err = %v, want ErrUndefined", err)
	}

	// MinimumNear over an all-NaN column must not vacuously pass either.
	if err := MinimumNear("A", 0.5, 1e9)(tab); err == nil {
		t.Error("MinimumNear vacuously passed on an all-NaN column")
	}
}

func TestVerdictStatusUndef(t *testing.T) {
	v := Verdict{Claim: Claim{Strict: true}, Err: fmt.Errorf("col: %w", ErrUndefined)}
	if v.Status() != "UNDEF" {
		t.Fatalf("Status() = %q, want UNDEF", v.Status())
	}
	// UNDEF outranks the strict/informational split: an informational
	// undefined claim is UNDEF, not WARN.
	v.Claim.Strict = false
	if v.Status() != "UNDEF" {
		t.Fatalf("informational Status() = %q, want UNDEF", v.Status())
	}
}

// TestWriteFailsOnStrictUndefined: an unverifiable reproduction-critical
// claim must fail the document exactly like a refuted one.
func TestWriteFailsOnStrictUndefined(t *testing.T) {
	sections := []Section{{
		ID:     "demo",
		Claims: []Claim{{"A flat", true, Flat("A", 0.01)}},
	}}
	tab := table("demo", []string{"A"},
		map[string]float64{"A": math.NaN()}, map[string]float64{"A": math.NaN()})
	var buf bytes.Buffer
	err := Write(&buf, sections, map[string]*experiments.Table{"demo": tab}, "")
	if err == nil {
		t.Fatal("strict undefined claim did not fail the document")
	}
	if !strings.Contains(err.Error(), "UNDEF") {
		t.Fatalf("error does not carry the UNDEF status: %v", err)
	}
	if !strings.Contains(buf.String(), "[UNDEF]") {
		t.Fatal("UNDEF marker missing from document")
	}
}
