// Package report turns measured experiment tables into the
// EXPERIMENTS.md comparison document: for every figure of the paper it
// renders the measured series, states the paper's published claim, and
// machine-checks the claim against the measurement.
//
// Claims come in two strengths. Strict claims are the qualitative results
// the reproduction stands on (cost orderings, monotonicities, flat
// baselines) — a strict failure means the reproduction disagrees with the
// paper. Informational claims record softer statements (approximate
// ratios, saturation points) whose exact position legitimately depends on
// the demand-scale calibration documented in DESIGN.md §3.
package report

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"edgecache/internal/experiments"
)

// ErrUndefined marks a claim whose measured inputs contain NaN —
// typically a ratio or reduction over a zero base (stats.Ratio and
// stats.Reduction deliberately return NaN there). NaN comparisons are
// always false, so without an explicit check a bound like
// `v < lo || v > hi` silently passes on undefined data and an ordering
// check silently holds; claims on NaN inputs are instead reported as
// UNDEF (and strict ones fail the document, see Write).
var ErrUndefined = errors.New("undefined (NaN input)")

// checkDefined returns a wrapped ErrUndefined when any value is NaN.
func checkDefined(col string, xs ...float64) error {
	for _, v := range xs {
		if math.IsNaN(v) {
			return fmt.Errorf("column %s: %w", col, ErrUndefined)
		}
	}
	return nil
}

// Claim is one checkable statement about a measured table.
type Claim struct {
	// Description is the human-readable statement, phrased as the paper
	// phrases it.
	Description string
	// Strict marks reproduction-critical claims.
	Strict bool
	// Check returns nil when the measurement supports the claim.
	Check func(t *experiments.Table) error
}

// Verdict is the outcome of checking one claim.
type Verdict struct {
	Claim Claim
	Err   error
}

// Status renders PASS / WARN / FAIL / UNDEF. UNDEF means the claim's
// inputs were NaN (ErrUndefined): the measurement neither supports nor
// refutes the claim.
func (v Verdict) Status() string {
	switch {
	case v.Err == nil:
		return "PASS"
	case errors.Is(v.Err, ErrUndefined):
		return "UNDEF"
	case v.Claim.Strict:
		return "FAIL"
	default:
		return "WARN"
	}
}

// column extracts a column's values in row order. Gaps are skipped (a
// sweep may not define every algorithm at every x, e.g. CHC collapses
// into AFHC when r = w); a column with fewer than one value errors.
func column(t *experiments.Table, col string) ([]float64, error) {
	out := make([]float64, 0, len(t.Rows))
	for _, row := range t.Rows {
		if v, ok := row.Cells[col]; ok {
			out = append(out, v)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("column %s has no values", col)
	}
	return out, nil
}

// NonIncreasing claims a column never rises along the sweep (within a
// relative slack).
func NonIncreasing(col string, slack float64) func(*experiments.Table) error {
	return func(t *experiments.Table) error {
		xs, err := column(t, col)
		if err != nil {
			return err
		}
		if err := checkDefined(col, xs...); err != nil {
			return err
		}
		for i := 1; i < len(xs); i++ {
			if xs[i] > xs[i-1]*(1+slack) {
				return fmt.Errorf("%s rises at row %d: %g → %g", col, i, xs[i-1], xs[i])
			}
		}
		return nil
	}
}

// NonDecreasing claims a column never falls along the sweep.
func NonDecreasing(col string, slack float64) func(*experiments.Table) error {
	return func(t *experiments.Table) error {
		xs, err := column(t, col)
		if err != nil {
			return err
		}
		if err := checkDefined(col, xs...); err != nil {
			return err
		}
		for i := 1; i < len(xs); i++ {
			if xs[i] < xs[i-1]*(1-slack) {
				return fmt.Errorf("%s falls at row %d: %g → %g", col, i, xs[i-1], xs[i])
			}
		}
		return nil
	}
}

// Flat claims a column is constant (within a relative band).
func Flat(col string, band float64) func(*experiments.Table) error {
	return func(t *experiments.Table) error {
		xs, err := column(t, col)
		if err != nil {
			return err
		}
		if err := checkDefined(col, xs...); err != nil {
			return err
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range xs {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		if lo <= 0 {
			if hi-lo > band {
				return fmt.Errorf("%s varies: [%g, %g]", col, lo, hi)
			}
			return nil
		}
		if hi/lo > 1+band {
			return fmt.Errorf("%s varies: [%g, %g]", col, lo, hi)
		}
		return nil
	}
}

// Dominates claims a ≤ b at every row where both are present (a is the
// better algorithm), with relative slack for solver tolerance.
func Dominates(a, b string, slack float64) func(*experiments.Table) error {
	return func(t *experiments.Table) error {
		compared := 0
		for i, row := range t.Rows {
			av, aok := row.Cells[a]
			bv, bok := row.Cells[b]
			if !aok || !bok {
				continue
			}
			compared++
			if err := checkDefined(a, av); err != nil {
				return err
			}
			if err := checkDefined(b, bv); err != nil {
				return err
			}
			if av > bv*(1+slack) {
				return fmt.Errorf("%s (%g) above %s (%g) at row %d", a, av, b, bv, i)
			}
		}
		if compared == 0 {
			return fmt.Errorf("no rows carry both %s and %s", a, b)
		}
		return nil
	}
}

// Ordering claims cols are sorted best-to-worst at every row.
func Ordering(slack float64, cols ...string) func(*experiments.Table) error {
	return func(t *experiments.Table) error {
		for i := 0; i+1 < len(cols); i++ {
			if err := Dominates(cols[i], cols[i+1], slack)(t); err != nil {
				return err
			}
		}
		return nil
	}
}

// LabeledCellBetween claims the labeled row's cell lies in [lo, hi] —
// used for the headline ratio table.
func LabeledCellBetween(label, col string, lo, hi float64) func(*experiments.Table) error {
	return func(t *experiments.Table) error {
		for _, row := range t.Rows {
			if row.Label != label {
				continue
			}
			v, ok := row.Cells[col]
			if !ok {
				return fmt.Errorf("row %s misses column %s", label, col)
			}
			if err := checkDefined(col, v); err != nil {
				return err
			}
			if v < lo || v > hi {
				return fmt.Errorf("%s[%s] = %g outside [%g, %g]", label, col, v, lo, hi)
			}
			return nil
		}
		return fmt.Errorf("no row labeled %s", label)
	}
}

// MinimumNear claims a column attains its minimum at an x within tol of
// x0 — used for the ρ ablation around (3−√5)/2.
func MinimumNear(col string, x0, tol float64) func(*experiments.Table) error {
	return func(t *experiments.Table) error {
		best := math.Inf(1)
		bestX := math.NaN()
		for _, row := range t.Rows {
			v, ok := row.Cells[col]
			if !ok {
				continue
			}
			if err := checkDefined(col, v); err != nil {
				return err
			}
			if v < best {
				best, bestX = v, row.X
			}
		}
		// A NaN bestX (no values at all) would make the distance check
		// below vacuously pass; fail it explicitly.
		if math.IsNaN(bestX) {
			return fmt.Errorf("column %s has no values", col)
		}
		if math.Abs(bestX-x0) > tol {
			return fmt.Errorf("%s minimised at %g, expected near %g", col, bestX, x0)
		}
		return nil
	}
}

// Section couples one table with its paper context.
type Section struct {
	// ID must match the table's experiment id.
	ID string
	// PaperStatement quotes/paraphrases what the paper reports.
	PaperStatement string
	// Claims are checked against the measured table.
	Claims []Claim
}

// Check evaluates all claims of the section against the table.
func (s Section) Check(t *experiments.Table) []Verdict {
	out := make([]Verdict, len(s.Claims))
	for i, c := range s.Claims {
		out[i] = Verdict{Claim: c, Err: c.Check(t)}
	}
	return out
}

// Write renders the full markdown document for the given measured tables
// (keyed by experiment id). Missing tables are reported as skipped; a
// non-nil error is returned if any strict claim failed, after the
// document is fully written.
func Write(w io.Writer, sections []Section, tables map[string]*experiments.Table, header string) error {
	if _, err := io.WriteString(w, header); err != nil {
		return err
	}
	var strictFailures []string
	for _, sec := range sections {
		t, ok := tables[sec.ID]
		if !ok {
			if _, err := fmt.Fprintf(w, "## %s\n\n*Not measured in this run.*\n\n", sec.ID); err != nil {
				return err
			}
			continue
		}
		if err := t.Write(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "**Paper:** %s\n\n", sec.PaperStatement); err != nil {
			return err
		}
		for _, v := range sec.Check(t) {
			detail := ""
			if v.Err != nil {
				detail = " — " + v.Err.Error()
			}
			if _, err := fmt.Fprintf(w, "- [%s] %s%s\n", v.Status(), v.Claim.Description, detail); err != nil {
				return err
			}
			// Strict claims fail the document both when refuted (FAIL)
			// and when undefined (UNDEF): an unverifiable critical claim
			// must not read as a pass.
			if v.Claim.Strict && v.Err != nil {
				strictFailures = append(strictFailures, fmt.Sprintf("%s: %s (%s)", sec.ID, v.Claim.Description, v.Status()))
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	if len(strictFailures) > 0 {
		sort.Strings(strictFailures)
		return fmt.Errorf("report: %d strict claim(s) failed or undefined:\n  %s",
			len(strictFailures), strings.Join(strictFailures, "\n  "))
	}
	return nil
}
