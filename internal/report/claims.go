package report

import (
	"fmt"

	"edgecache/internal/experiments"
)

// PaperSections returns the claim registry for every experiment: what the
// paper reports for the corresponding figure, and how we verify it on the
// measured tables. Slacks absorb solver tolerance and single-seed noise;
// anything that depends on the absolute demand scale (which the paper
// leaves unspecified — DESIGN.md §3) is informational rather than strict.
func PaperSections() []Section {
	const (
		tight = 0.02 // solver-tolerance slack
		loose = 0.10 // single-seed noise slack
	)
	online := []string{"RHC", "CHC", "AFHC"}

	var sections []Section

	// Fig. 2a — total operating cost vs β.
	s := Section{
		ID: "fig2a",
		PaperStatement: "Fig. 2a: total operating cost grows with β for every scheme; " +
			"the online algorithms stay close to the offline optimum while LRFU's " +
			"cost grows fastest.",
	}
	s.Claims = append(s.Claims,
		Claim{"offline lower-bounds every algorithm", true, Ordering(tight, "Offline", "RHC")},
		Claim{"offline ≤ CHC", true, Dominates("Offline", "CHC", tight)},
		Claim{"offline ≤ AFHC", true, Dominates("Offline", "AFHC", tight)},
		Claim{"offline ≤ LRFU", true, Dominates("Offline", "LRFU", tight)},
		Claim{"RHC beats LRFU throughout", true, Dominates("RHC", "LRFU", tight)},
		Claim{"total cost non-decreasing in β (offline)", true, NonDecreasing("Offline", tight)},
		Claim{"total cost non-decreasing in β (LRFU)", true, NonDecreasing("LRFU", tight)},
		Claim{"RHC ≤ CHC ≤ AFHC ordering", false, Ordering(loose, "RHC", "CHC", "AFHC")},
	)
	sections = append(sections, s)

	// Fig. 2b — cache replacement cost vs β.
	sections = append(sections, Section{
		ID: "fig2b",
		PaperStatement: "Fig. 2b: LRFU's replacement cost grows linearly in β (its placement " +
			"ignores β); the online algorithms' replacement cost grows far slower.",
		Claims: []Claim{
			{"LRFU replacement cost non-decreasing in β", true, NonDecreasing("LRFU", tight)},
			{"RHC replacement cost stays below LRFU's for β > 0", false, Dominates("RHC", "LRFU", loose)},
		},
	})

	// Fig. 2c — number of replacements vs β.
	sections = append(sections, Section{
		ID: "fig2c",
		PaperStatement: "Fig. 2c: the online algorithms replace less as β grows (the switching " +
			"cost suppresses churn); LRFU's count does not depend on β at all.",
		Claims: []Claim{
			{"LRFU replacement count flat in β", true, Flat("LRFU", 1e-9)},
			{"offline replacement count flat or falling in β", true, NonIncreasing("Offline", loose)},
			{"RHC replacement count non-increasing in β", true, NonIncreasing("RHC", loose)},
			{"CHC replacement count non-increasing in β", false, NonIncreasing("CHC", loose)},
			{"AFHC replacement count non-increasing in β", false, NonIncreasing("AFHC", loose)},
		},
	})

	// Fig. 2d — BS operating cost vs β.
	sections = append(sections, Section{
		ID: "fig2d",
		PaperStatement: "Fig. 2d: the BS operating cost of the online algorithms stays steady " +
			"as β grows (they absorb β by replacing less, not by serving less).",
		Claims: []Claim{
			{"LRFU BS cost exactly flat (its decisions ignore β)", true, Flat("LRFU", 1e-9)},
			{"RHC BS cost steady (≤ 25% band)", false, Flat("RHC", 0.25)},
			{"offline BS cost steady (≤ 25% band)", false, Flat("Offline", 0.25)},
		},
	})

	// Fig. 3a — total cost vs prediction window.
	s = Section{
		ID: "fig3a",
		PaperStatement: "Fig. 3a: with a larger prediction window every online algorithm moves " +
			"closer to the offline optimum.",
	}
	for _, col := range online {
		s.Claims = append(s.Claims, Claim{
			col + " total cost non-increasing in w", true, NonIncreasing(col, loose),
		})
		s.Claims = append(s.Claims, Claim{
			"offline ≤ " + col + " at every w", true, Dominates("Offline", col, tight),
		})
	}
	sections = append(sections, s)

	// Fig. 3b — replacements vs prediction window.
	sections = append(sections, Section{
		ID: "fig3b",
		PaperStatement: "Fig. 3b: more lookahead lets the controllers plan placements that " +
			"need fewer replacements.",
		Claims: []Claim{
			{"RHC replacement count non-increasing in w", false, NonIncreasing("RHC", 0.5)},
			{"AFHC replacement count non-increasing in w", false, NonIncreasing("AFHC", 0.5)},
		},
	})

	// Fig. 4a — total cost vs SBS bandwidth.
	s = Section{
		ID: "fig4a",
		PaperStatement: "Fig. 4a: every scheme's total cost falls as the SBS bandwidth grows, " +
			"saturating once the bandwidth covers all cacheable demand; LRFU's cost " +
			"falls slowest.",
	}
	for _, col := range append([]string{"Offline", "LRFU"}, online...) {
		s.Claims = append(s.Claims, Claim{
			col + " total cost non-increasing in B", true, NonIncreasing(col, tight),
		})
	}
	sections = append(sections, s)

	// Fig. 4b — replacements vs SBS bandwidth.
	sections = append(sections, Section{
		ID: "fig4b",
		PaperStatement: "Fig. 4b: LRFU's replacement count is bandwidth-independent; the online " +
			"algorithms replace more as bandwidth grows (more items become worth " +
			"serving) until the bandwidth covers all requests.",
		Claims: []Claim{
			{"LRFU replacement count flat in B", true, Flat("LRFU", 1e-9)},
			{"RHC replaces no less at the top of the sweep than at the bottom", false, lastAtLeastFirst("RHC", 0.25)},
		},
	})

	// Fig. 5 — total cost vs prediction noise.
	sections = append(sections, Section{
		ID: "fig5",
		PaperStatement: "Fig. 5: the online algorithms degrade as predictions get noisier; " +
			"LRFU (and the offline optimum) consume exact demand and are flat.",
		Claims: []Claim{
			{"offline flat in η", true, Flat("Offline", 1e-9)},
			{"LRFU flat in η", true, Flat("LRFU", 1e-9)},
			{"RHC cost at η=0.5 ≥ cost at η=0 (within noise)", false, lastAtLeastFirst("RHC", 0.05)},
			{"AFHC cost at η=0.5 ≥ cost at η=0 (within noise)", false, lastAtLeastFirst("AFHC", 0.05)},
		},
	})

	// Headline — §V-C(1) cost ratios at β=50.
	sections = append(sections, Section{
		ID: "headline",
		PaperStatement: "§V-C(1): at β=50 the cost ratios to offline are RHC 1.02, CHC 1.08, " +
			"AFHC 1.11 and LRFU 1.3; RHC/CHC/AFHC reduce cost vs LRFU by 27%/20%/17%.",
		Claims: []Claim{
			{"offline ratio is exactly 1", true, LabeledCellBetween("Offline", "RatioToOffline", 1, 1)},
			{"RHC ratio in [1.00, 1.25] (paper: 1.02)", true, LabeledCellBetween("RHC", "RatioToOffline", 1, 1.25)},
			{"CHC ratio in [1.00, 1.50] (paper: 1.08)", true, LabeledCellBetween("CHC", "RatioToOffline", 1, 1.5)},
			{"AFHC ratio in [1.00, 1.60] (paper: 1.11)", true, LabeledCellBetween("AFHC", "RatioToOffline", 1, 1.6)},
			{"LRFU ratio ≥ 1.05 (paper: 1.3)", true, LabeledCellBetween("LRFU", "RatioToOffline", 1.05, 10)},
			{"RHC reduction vs LRFU positive (paper: 27%)", true, LabeledCellBetween("RHC", "ReductionVsLRFU", 0.01, 1)},
			{"CHC reduction vs LRFU positive (paper: 20%)", true, LabeledCellBetween("CHC", "ReductionVsLRFU", 0.01, 1)},
			{"AFHC reduction vs LRFU positive (paper: 17%)", true, LabeledCellBetween("AFHC", "ReductionVsLRFU", 0.01, 1)},
		},
	})

	// ρ ablation — Theorem 3's optimum.
	sections = append(sections, Section{
		ID: "rho",
		PaperStatement: "Theorem 3: the rounding threshold ρ* = (3−√5)/2 ≈ 0.382 minimises the " +
			"worst-case approximation ratio; in simulation the cost curve should be " +
			"flat-bottomed around it.",
		Claims: []Claim{
			{"CHC cost minimised near ρ*", false, MinimumNear("CHC", 0.382, 0.3)},
			{"AFHC cost minimised near ρ*", false, MinimumNear("AFHC", 0.382, 0.3)},
		},
	})

	// CHC commitment ablation.
	sections = append(sections, Section{
		ID: "chc-r",
		PaperStatement: "§IV / Fig. 2a: CHC interpolates between RHC (r = 1, best) and AFHC " +
			"(r = w); cost should not fall as the commitment level grows.",
		Claims: []Claim{
			{"CHC cost non-decreasing in r", false, NonDecreasing("CHC", loose)},
		},
	})

	// Competitive-ratio theory check.
	sections = append(sections, Section{
		ID: "competitive",
		PaperStatement: "Theorem 2 / §IV-A: RHC's competitive ratio is O(1 + 1/w); with exact " +
			"predictions the measured ratio should approach 1 as w grows.",
		Claims: []Claim{
			{"ratio never below 1 (offline is optimal)", true, func(t *experiments.Table) error {
				xs, err := column(t, "Ratio")
				if err != nil {
					return err
				}
				if err := checkDefined("Ratio", xs...); err != nil {
					return err
				}
				for i, v := range xs {
					if v < 1-1e-6 {
						return fmt.Errorf("ratio %g < 1 at row %d", v, i)
					}
				}
				return nil
			}},
			{"ratio non-increasing in w", false, NonIncreasing("Ratio", 0.02)},
			{"ratio within the 1 + 1/w regime", false, Dominates("Ratio", "OnePlusOneOverW", 0.05)},
		},
	})

	// Load-mode ablation extension.
	sections = append(sections, Section{
		ID: "loadmode",
		PaperStatement: "Extension (not in the paper): how much of the online cost comes from " +
			"committing a predicted load split versus reacting to realised demand " +
			"with the committed placement.",
		Claims: []Claim{
			{"reactive split never loses to predicted split", true, Dominates("Reactive", "Predicted", tight)},
		},
	})

	// Hit-ratio extension.
	sections = append(sections, Section{
		ID: "hitratio",
		PaperStatement: "Extension (not in the paper): request-level hit ratios of the classic " +
			"caches of §VI, the metric CDN operators monitor.",
		Claims: []Claim{
			{"LRU hit ratio non-decreasing in capacity", true, NonDecreasing("LRU", 0.001)},
			{"LFU hit ratio non-decreasing in capacity", true, NonDecreasing("LFU", 0.001)},
		},
	})

	// Classic caches extension.
	sections = append(sections, Section{
		ID: "classic",
		PaperStatement: "Extension (not in the paper): the optimization-based policies against " +
			"the request-driven classics of §VI under the same cost model.",
		Claims: []Claim{
			{"offline dominates LRU", true, Dominates("Offline", "LRU", tight)},
			{"offline dominates FIFO", true, Dominates("Offline", "FIFO", tight)},
			{"offline dominates perfect LFU", true, Dominates("Offline", "CLFU", tight)},
			{"RHC beats the classic caches", false, Ordering(loose, "RHC", "LRU")},
		},
	})

	// Fault-injection robustness extension.
	sections = append(sections, Section{
		ID: "outage",
		PaperStatement: "Extension (not in the paper): total cost versus the random SBS " +
			"outage rate injected by the fault subsystem. Theorem 3's competitive " +
			"bound is void under outages (DESIGN.md §10); the claims here are " +
			"robustness statements — every controller survives, and losing SBS " +
			"capacity can only push load to the (costlier) BS.",
		Claims: []Claim{
			{"outages never reduce RHC's cost (right end vs failure-free)", true, lastAtLeastFirst("RHC", loose)},
			{"outages never reduce LRFU's cost (right end vs failure-free)", true, lastAtLeastFirst("LRFU", loose)},
			{"RHC stays ahead of LRFU under outages", false, Dominates("RHC", "LRFU", loose)},
			{"cost non-decreasing in outage rate (RHC)", false, NonDecreasing("RHC", loose)},
		},
	})

	return sections
}

// lastAtLeastFirst claims the column's final value is at least its first
// (up to relative slack) — "the sweep's right end is no better than its
// left end".
func lastAtLeastFirst(col string, slack float64) func(*experiments.Table) error {
	return func(t *experiments.Table) error {
		xs, err := column(t, col)
		if err != nil {
			return err
		}
		if err := checkDefined(col, xs...); err != nil {
			return err
		}
		if len(xs) < 2 {
			return nil
		}
		if xs[len(xs)-1] < xs[0]*(1-slack) {
			return errorfFirstLast(col, xs[0], xs[len(xs)-1])
		}
		return nil
	}
}

func errorfFirstLast(col string, first, last float64) error {
	return fmt.Errorf("%s fell across the sweep: %g → %g", col, first, last)
}
