// Package audit re-derives everything a committed trajectory claims and
// reports every discrepancy as a structured violation. It is the second
// half of the differential correctness harness (internal/oracle is the
// first): where the oracle checks *optimality* on tiny instances, the
// auditor checks *correctness* of any committed run at any scale —
// feasibility of every slot, integrality of every committed placement,
// and an independent recomputation of the cost breakdown compared
// against model.Instance.TotalCost.
//
// The cost recomputation deliberately does not call the model package's
// cost methods: it evaluates eqs. (5), (6) and (8) with its own loops in
// a different accumulation order, so a bug in either implementation
// shows up as a mismatch instead of cancelling out.
//
// Wiring: sim.Config.Audit runs Trajectory on every committed run and
// publishes the result through internal/obs — one "audit_violation"
// event per violation plus the "audit.violations" counter. The
// CheckCounterDeltas helper pins the accounting of the online repair
// counters (once per (slot, SBS)) in the differential test suites.
package audit

import (
	"errors"
	"fmt"
	"math"

	"edgecache/internal/model"
	"edgecache/internal/obs"
)

// Violation kinds, one per auditor invariant (DESIGN.md §9).
const (
	// KindConstraint: a per-slot constraint of §II-A failed (eqs. 1–3,
	// domains 10–11), as reported by model.CheckSlot.
	KindConstraint = "constraint"
	// KindIntegrality: a committed placement entry is fractional,
	// violating the integrality that Theorem 1 guarantees and the
	// rounding step is supposed to restore.
	KindIntegrality = "integrality"
	// KindCost: the auditor's independent recomputation of the cost
	// breakdown disagrees with model.Instance.TotalCost or with the
	// breakdown the run claimed.
	KindCost = "cost"
	// KindCounter: an online repair counter moved backwards or by more
	// than once per (slot, SBS).
	KindCounter = "counter"
	// KindFault: a fault-overlay invariant failed — load served or items
	// cached on an SBS during a full outage. Stricter than KindConstraint:
	// CheckSlot's demand-scaled tolerance could let a small residual load
	// pass on a dead SBS, but during an outage the requirement is exact.
	KindFault = "fault"
)

// Violation is one failed invariant.
type Violation struct {
	// Slot is the slot index the violation anchors to, or -1 for
	// trajectory-level violations (cost mismatches, counter accounting).
	Slot int `json:"slot"`
	// Kind is one of the Kind* constants.
	Kind string `json:"kind"`
	// Detail is a human-readable description with the numbers involved.
	Detail string `json:"detail"`
}

func (v Violation) String() string {
	if v.Slot < 0 {
		return fmt.Sprintf("[%s] %s", v.Kind, v.Detail)
	}
	return fmt.Sprintf("[%s] slot %d: %s", v.Kind, v.Slot, v.Detail)
}

// Report is the outcome of auditing one trajectory.
type Report struct {
	// Violations lists every failed invariant, in slot order.
	Violations []Violation `json:"violations,omitempty"`
	// Recomputed is the auditor's independent cost breakdown.
	Recomputed model.CostBreakdown `json:"recomputed"`
}

// OK reports whether the audit found no violations.
func (r *Report) OK() bool { return r == nil || len(r.Violations) == 0 }

// Err returns nil when the audit passed, otherwise an error summarising
// the first violation and the total count.
func (r *Report) Err() error {
	if r.OK() {
		return nil
	}
	return fmt.Errorf("%w: %d, first: %s", ErrViolations, len(r.Violations), r.Violations[0])
}

// Options tunes the auditor's tolerances. The zero value is ready to use.
type Options struct {
	// Tol is the absolute feasibility/integrality tolerance; 0 selects
	// model.DefaultTol.
	Tol float64
	// CostTol is the relative tolerance for cost comparisons; 0 selects
	// 1e-9 (the recomputation differs only by floating-point ordering).
	CostTol float64
}

func (o Options) tol() float64 {
	if o.Tol > 0 {
		return o.Tol
	}
	return model.DefaultTol
}

func (o Options) costTol() float64 {
	if o.CostTol > 0 {
		return o.CostTol
	}
	return 1e-9
}

// Trajectory audits a committed trajectory end to end: every slot's
// constraints (via model.CheckSlot), integrality of every committed
// placement, and an independent recomputation of the cost breakdown
// cross-checked against model.Instance.TotalCost. When claimed is
// non-nil it is additionally compared against the recomputation — pass
// the breakdown the run reported to catch stale or corrupted accounting.
//
// Trajectory is a pure function: it emits nothing and touches no
// counters. Use Report.Publish to surface the result through obs.
func Trajectory(in *model.Instance, traj model.Trajectory, claimed *model.CostBreakdown, opts Options) *Report {
	rep := &Report{}
	tol := opts.tol()

	if len(traj) != in.T {
		rep.Violations = append(rep.Violations, Violation{
			Slot: -1, Kind: KindConstraint,
			Detail: fmt.Sprintf("trajectory has %d slots, horizon is %d", len(traj), in.T),
		})
		return rep
	}
	for t := range traj {
		if err := in.CheckSlot(t, traj[t], tol); err != nil {
			rep.Violations = append(rep.Violations, Violation{Slot: t, Kind: KindConstraint, Detail: err.Error()})
		}
		if !traj[t].X.IsIntegral(tol) {
			rep.Violations = append(rep.Violations, Violation{
				Slot: t, Kind: KindIntegrality,
				Detail: fmt.Sprintf("committed placement is fractional: %s", fractionalEntries(traj[t].X, tol)),
			})
		}
		if in.Overlay != nil {
			checkOutages(rep, in, traj, t, tol)
		}
	}

	rep.Recomputed = recomputeCost(in, traj)
	compareBreakdowns(rep, "model.TotalCost", in.TotalCost(traj), opts)
	if claimed != nil {
		compareBreakdowns(rep, "claimed", *claimed, opts)
	}
	return rep
}

// Publish surfaces the report through telemetry: one "audit_violation"
// event per violation (policy tags the run) and the "audit.violations"
// counter in tel's registry. Safe on a nil report or nil telemetry.
func (r *Report) Publish(tel *obs.Telemetry, policy string) {
	if r == nil || len(r.Violations) == 0 {
		return
	}
	tel.Registry().Counter("audit.violations").Add(int64(len(r.Violations)))
	if !tel.Enabled() {
		return
	}
	for _, v := range r.Violations {
		tel.Emit("audit_violation", obs.Fields{
			"policy": policy,
			"slot":   v.Slot,
			"kind":   v.Kind,
			"detail": v.Detail,
		})
	}
}

// checkOutages enforces the exact fault-overlay invariants for slot t:
// an SBS in full outage (effective bandwidth and capacity both zero)
// must cache nothing and serve strictly no load. CheckSlot already
// bounds both through the effective constraints, but its tolerances
// scale with demand volume; here the bound is the raw tolerance.
func checkOutages(rep *Report, in *model.Instance, traj model.Trajectory, t int, tol float64) {
	for n := 0; n < in.N; n++ {
		if !in.OutageAt(t, n) {
			continue
		}
		if items := traj[t].X.Items(n); len(items) > 0 {
			rep.Violations = append(rep.Violations, Violation{
				Slot: t, Kind: KindFault,
				Detail: fmt.Sprintf("SBS %d is in outage but caches %d items", n, len(items)),
			})
		}
		var served float64
		for m := 0; m < in.Classes[n]; m++ {
			for k := 0; k < in.K; k++ {
				served += in.Demand.At(t, n, m, k) * traj[t].Y[n][m][k]
			}
		}
		if served > tol {
			rep.Violations = append(rep.Violations, Violation{
				Slot: t, Kind: KindFault,
				Detail: fmt.Sprintf("SBS %d is in outage but serves load %g", n, served),
			})
		}
	}
}

// compareBreakdowns appends a cost violation for every component of want
// that disagrees with the auditor's recomputation beyond the relative
// tolerance.
func compareBreakdowns(rep *Report, source string, want model.CostBreakdown, opts Options) {
	check := func(component string, got, want float64) {
		if !closeRel(got, want, opts.costTol()) {
			rep.Violations = append(rep.Violations, Violation{
				Slot: -1, Kind: KindCost,
				Detail: fmt.Sprintf("%s cost mismatch vs %s: recomputed %.12g, %s %.12g", component, source, got, source, want),
			})
		}
	}
	check("BS", rep.Recomputed.BS, want.BS)
	check("SBS", rep.Recomputed.SBS, want.SBS)
	check("replacement", rep.Recomputed.Replacement, want.Replacement)
	check("total", rep.Recomputed.Total, want.Total)
	if rep.Recomputed.Replacements != want.Replacements {
		rep.Violations = append(rep.Violations, Violation{
			Slot: -1, Kind: KindCost,
			Detail: fmt.Sprintf("replacement count mismatch vs %s: recomputed %d, %s %d", source, rep.Recomputed.Replacements, source, want.Replacements),
		})
	}
}

// closeRel reports |a−b| ≤ tol·max(1, |a|, |b|); NaN never matches.
func closeRel(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol*scale
}

// recomputeCost evaluates eqs. (5), (6) and (8) independently of the
// model package's cost methods: per-item demand lookups through
// Demand.At (not the flat Slot rows) and per-SBS accumulation before
// squaring, in a different association order.
func recomputeCost(in *model.Instance, traj model.Trajectory) model.CostBreakdown {
	var br model.CostBreakdown
	prev := in.InitialPlan()
	for t := range traj {
		for n := 0; n < in.N; n++ {
			// f_t term (eq. 5): weighted unserved demand, squared.
			var bsLoad float64
			for m := 0; m < in.Classes[n]; m++ {
				for k := 0; k < in.K; k++ {
					bsLoad += in.OmegaBS[n][m] * in.Demand.At(t, n, m, k) * (1 - traj[t].Y[n][m][k])
				}
			}
			br.BS += bsLoad * bsLoad
			// g_t term (eq. 6): weighted served demand, squared.
			var sbsLoad float64
			for m := 0; m < in.Classes[n]; m++ {
				for k := 0; k < in.K; k++ {
					sbsLoad += in.OmegaSBS[n][m] * in.Demand.At(t, n, m, k) * traj[t].Y[n][m][k]
				}
			}
			br.SBS += sbsLoad * sbsLoad
			// h term (eq. 8): β_n per positive placement delta, counting
			// integral insertions along the way.
			for k := 0; k < in.K; k++ {
				if d := traj[t].X[n][k] - prev[n][k]; d > 0 {
					br.Replacement += in.Beta[n] * d
				}
				if traj[t].X[n][k] >= 0.5 && prev[n][k] < 0.5 {
					br.Replacements++
				}
			}
		}
		prev = traj[t].X
	}
	br.Total = br.BS + br.SBS + br.Replacement
	return br
}

// fractionalEntries lists up to three fractional placement entries.
func fractionalEntries(x model.CachePlan, tol float64) string {
	var out string
	count := 0
	for n := range x {
		for k, v := range x[n] {
			if math.Abs(v) <= tol || math.Abs(v-1) <= tol {
				continue
			}
			if count < 3 {
				if out != "" {
					out += ", "
				}
				out += fmt.Sprintf("x[%d][%d]=%g", n, k, v)
			}
			count++
		}
	}
	if count > 3 {
		out += fmt.Sprintf(" (+%d more)", count-3)
	}
	return out
}

// CounterSnapshot captures the online repair and degradation counters of
// a registry at one point in time. Take one before and one after a run
// and feed the pair to CheckCounterDeltas.
type CounterSnapshot struct {
	CapacityDrops    int64
	BandwidthRepairs int64
	Degraded         int64
}

// Counters reads the current repair/degradation counter values from reg
// (nil selects obs.Default).
func Counters(reg *obs.Registry) CounterSnapshot {
	if reg == nil {
		reg = obs.Default
	}
	return CounterSnapshot{
		CapacityDrops:    reg.Counter("online.capacity_drops").Value(),
		BandwidthRepairs: reg.Counter("online.bandwidth_repairs").Value(),
		Degraded:         reg.Counter("solver.degraded").Value(),
	}
}

// CheckCounterDeltas validates the accounting of the online repair
// counters across one run on in: counters are monotone (deltas ≥ 0) and
// each repair counter fires at most once per (slot, SBS), so a single
// run can add at most T·N to each (DESIGN.md §6). It returns the
// violations found (nil when the accounting is sound). The caller must
// ensure no concurrent run shares the registry between the snapshots.
func CheckCounterDeltas(in *model.Instance, before, after CounterSnapshot) []Violation {
	var out []Violation
	bound := int64(in.T) * int64(in.N)
	check := func(name string, b, a int64, max int64) {
		d := a - b
		if d < 0 {
			out = append(out, Violation{
				Slot: -1, Kind: KindCounter,
				Detail: fmt.Sprintf("%s moved backwards: %d -> %d", name, b, a),
			})
		} else if d > max {
			out = append(out, Violation{
				Slot: -1, Kind: KindCounter,
				Detail: fmt.Sprintf("%s advanced by %d in one run, max is %d (once per (slot, SBS))", name, d, max),
			})
		}
	}
	check("online.capacity_drops", before.CapacityDrops, after.CapacityDrops, bound)
	check("online.bandwidth_repairs", before.BandwidthRepairs, after.BandwidthRepairs, bound)
	if after.Degraded < before.Degraded {
		out = append(out, Violation{
			Slot: -1, Kind: KindCounter,
			Detail: fmt.Sprintf("solver.degraded moved backwards: %d -> %d", before.Degraded, after.Degraded),
		})
	}
	return out
}

// ErrViolations is wrapped by errors returned from audit-enabled runs so
// callers can distinguish audit failures from solve failures.
var ErrViolations = errors.New("audit violations")
