package audit

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"edgecache/internal/core"
	"edgecache/internal/model"
	"edgecache/internal/obs"
	"edgecache/internal/workload"
)

// solvedInstance builds a small instance with a committed, feasible,
// integral trajectory from the primal-dual solver.
func solvedInstance(t *testing.T) (*model.Instance, model.Trajectory, model.CostBreakdown) {
	t.Helper()
	cfg := workload.PaperDefault()
	cfg.T = 4
	cfg.K = 4
	cfg.ClassesPerSBS = 3
	cfg.CacheCap = 2
	cfg.Bandwidth = 6
	cfg.Beta = 3
	in, err := workload.BuildInstance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Solve(context.Background(), in, core.Options{MaxIter: 40})
	if err != nil {
		t.Fatal(err)
	}
	return in, res.Trajectory, res.Cost
}

func kinds(rep *Report) map[string]int {
	out := map[string]int{}
	for _, v := range rep.Violations {
		out[v.Kind]++
	}
	return out
}

func TestCleanTrajectoryPasses(t *testing.T) {
	in, traj, cost := solvedInstance(t)
	rep := Trajectory(in, traj, &cost, Options{})
	if !rep.OK() {
		t.Fatalf("clean trajectory flagged: %v", rep.Err())
	}
	if rep.Err() != nil {
		t.Fatalf("Err() = %v on a clean report", rep.Err())
	}
	// The independent recomputation must agree with the model's accounting.
	want := in.TotalCost(traj)
	if math.Abs(rep.Recomputed.Total-want.Total) > 1e-9*(1+math.Abs(want.Total)) {
		t.Fatalf("recomputed total %g != model total %g", rep.Recomputed.Total, want.Total)
	}
	if rep.Recomputed.Replacements != want.Replacements {
		t.Fatalf("recomputed %d replacements, model %d", rep.Recomputed.Replacements, want.Replacements)
	}
}

func TestDetectsFractionalPlacement(t *testing.T) {
	in, traj, _ := solvedInstance(t)
	traj[1].X[0][0] = 0.5
	rep := Trajectory(in, traj, nil, Options{})
	if kinds(rep)[KindIntegrality] == 0 {
		t.Fatalf("fractional placement not flagged: %v", rep.Violations)
	}
	for _, v := range rep.Violations {
		if v.Kind == KindIntegrality && v.Slot != 1 {
			t.Fatalf("integrality violation anchored to slot %d, want 1", v.Slot)
		}
	}
}

func TestDetectsCouplingViolation(t *testing.T) {
	in, traj, _ := solvedInstance(t)
	// Serve an uncached content: violates y ≤ x (eq. 3).
	var doctored bool
	for k := 0; k < in.K && !doctored; k++ {
		if traj[2].X[0][k] < 0.5 {
			traj[2].Y[0][0][k] = 1
			doctored = true
		}
	}
	if !doctored {
		t.Fatal("no uncached content to doctor")
	}
	rep := Trajectory(in, traj, nil, Options{})
	if kinds(rep)[KindConstraint] == 0 {
		t.Fatalf("coupling violation not flagged: %v", rep.Violations)
	}
}

func TestDetectsCorruptedClaimedBreakdown(t *testing.T) {
	in, traj, cost := solvedInstance(t)
	cost.Total += 1 // stale/corrupted accounting
	rep := Trajectory(in, traj, &cost, Options{})
	if kinds(rep)[KindCost] == 0 {
		t.Fatalf("corrupted claimed breakdown not flagged: %v", rep.Violations)
	}
	var mentionsClaimed bool
	for _, v := range rep.Violations {
		if v.Kind == KindCost && strings.Contains(v.Detail, "claimed") {
			mentionsClaimed = true
		}
	}
	if !mentionsClaimed {
		t.Fatalf("cost violation does not name the claimed source: %v", rep.Violations)
	}
}

func TestDetectsWrongHorizonLength(t *testing.T) {
	in, traj, _ := solvedInstance(t)
	rep := Trajectory(in, traj[:len(traj)-1], nil, Options{})
	if rep.OK() {
		t.Fatal("short trajectory passed")
	}
	if rep.Violations[0].Slot != -1 || rep.Violations[0].Kind != KindConstraint {
		t.Fatalf("unexpected violation: %+v", rep.Violations[0])
	}
}

func TestErrWrapsErrViolations(t *testing.T) {
	rep := &Report{Violations: []Violation{{Slot: 0, Kind: KindConstraint, Detail: "x"}}}
	if !errors.Is(rep.Err(), ErrViolations) {
		t.Fatalf("Err() = %v, does not wrap ErrViolations", rep.Err())
	}
	var nilRep *Report
	if !nilRep.OK() || nilRep.Err() != nil {
		t.Fatal("nil report must be OK")
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Slot: 3, Kind: KindConstraint, Detail: "boom"}
	if got := v.String(); !strings.Contains(got, "slot 3") || !strings.Contains(got, "boom") {
		t.Fatalf("String() = %q", got)
	}
	v.Slot = -1
	if got := v.String(); strings.Contains(got, "slot") {
		t.Fatalf("trajectory-level violation mentions a slot: %q", got)
	}
}

func TestPublishEmitsEventsAndCounter(t *testing.T) {
	var col obs.Collector
	reg := obs.NewRegistry()
	tel := obs.New(&col, reg)
	rep := &Report{Violations: []Violation{
		{Slot: 0, Kind: KindConstraint, Detail: "a"},
		{Slot: -1, Kind: KindCost, Detail: "b"},
	}}
	rep.Publish(tel, "RHC(w=4)")
	if got := reg.Counter("audit.violations").Value(); got != 2 {
		t.Fatalf("audit.violations = %d, want 2", got)
	}
	events := col.ByType("audit_violation")
	if len(events) != 2 {
		t.Fatalf("%d audit_violation events, want 2", len(events))
	}
	for _, e := range events {
		if e.Fields["policy"] != "RHC(w=4)" {
			t.Fatalf("event policy = %v", e.Fields["policy"])
		}
	}
	// A clean or nil report publishes nothing and must not panic.
	(&Report{}).Publish(tel, "x")
	var nilRep *Report
	nilRep.Publish(tel, "x")
	nilRep.Publish(nil, "x")
	if got := reg.Counter("audit.violations").Value(); got != 2 {
		t.Fatalf("clean publishes moved the counter to %d", got)
	}
}

func TestCountersReadsRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("online.capacity_drops").Add(3)
	reg.Counter("online.bandwidth_repairs").Add(5)
	reg.Counter("solver.degraded").Add(7)
	snap := Counters(reg)
	if snap.CapacityDrops != 3 || snap.BandwidthRepairs != 5 || snap.Degraded != 7 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestCheckCounterDeltas(t *testing.T) {
	in := &model.Instance{T: 4, N: 2} // bound = 8; only T and N are read
	ok := CheckCounterDeltas(in,
		CounterSnapshot{CapacityDrops: 1, BandwidthRepairs: 0, Degraded: 2},
		CounterSnapshot{CapacityDrops: 9, BandwidthRepairs: 8, Degraded: 5})
	if len(ok) != 0 {
		t.Fatalf("sound accounting flagged: %v", ok)
	}
	backwards := CheckCounterDeltas(in,
		CounterSnapshot{CapacityDrops: 5},
		CounterSnapshot{CapacityDrops: 4})
	if len(backwards) != 1 || backwards[0].Kind != KindCounter {
		t.Fatalf("backwards counter not flagged: %v", backwards)
	}
	// Per-entry accounting (the pre-fix bug) can exceed T·N in one run.
	excessive := CheckCounterDeltas(in,
		CounterSnapshot{},
		CounterSnapshot{CapacityDrops: 9})
	if len(excessive) != 1 || !strings.Contains(excessive[0].Detail, "once per (slot, SBS)") {
		t.Fatalf("excessive delta not flagged: %v", excessive)
	}
	degradedBack := CheckCounterDeltas(in,
		CounterSnapshot{Degraded: 3},
		CounterSnapshot{Degraded: 1})
	if len(degradedBack) != 1 {
		t.Fatalf("backwards degraded counter not flagged: %v", degradedBack)
	}
}

// deadOverlay attaches an overlay to in that declares SBS 0 in full
// outage at the given slot (base values everywhere else).
func deadOverlay(in *model.Instance, slot int) {
	bw := make([][]float64, in.T)
	cc := make([][]int, in.T)
	for t := range bw {
		bw[t] = make([]float64, in.N)
		cc[t] = make([]int, in.N)
		for n := 0; n < in.N; n++ {
			bw[t][n] = in.Bandwidth[n]
			cc[t][n] = in.CacheCap[n]
		}
	}
	bw[slot][0], cc[slot][0] = 0, 0
	in.Overlay = &model.Overlay{Bandwidth: bw, CacheCap: cc}
}

func TestDetectsActivityOnDeadSBS(t *testing.T) {
	in, traj, _ := solvedInstance(t)
	deadOverlay(in, 1)
	// Force activity during the outage: one cached item, plus load served
	// on a class/content pair with positive realised demand.
	for k := range traj[1].X[0] {
		traj[1].X[0][k] = 0
	}
	traj[1].X[0][0] = 1
	for m := 0; m < in.Classes[0]; m++ {
		for k := 0; k < in.K; k++ {
			traj[1].Y[0][m][k] = 0
			if in.Demand.At(1, 0, m, k) > 0 {
				traj[1].Y[0][m][k] = 1
			}
		}
	}
	rep := Trajectory(in, traj, nil, Options{})
	if rep.OK() {
		t.Fatal("activity on a dead SBS audited clean")
	}
	if got := kinds(rep)[KindFault]; got != 2 {
		t.Fatalf("KindFault violations = %d, want 2 (items + load): %v", got, rep.Violations)
	}
}

func TestOutageSlotWithNoActivityPasses(t *testing.T) {
	in, traj, _ := solvedInstance(t)
	deadOverlay(in, 1)
	// Empty the dead SBS for the outage slot; the trajectory may then
	// violate nothing fault-specific (constraint/cost kinds may still
	// fire if emptying changed costs — recompute the claimed breakdown).
	for k := range traj[1].X[0] {
		traj[1].X[0][k] = 0
	}
	for m := range traj[1].Y[0] {
		for k := range traj[1].Y[0][m] {
			traj[1].Y[0][m][k] = 0
		}
	}
	rep := Trajectory(in, traj, nil, Options{})
	if got := kinds(rep)[KindFault]; got != 0 {
		t.Fatalf("KindFault violations on an empty dead SBS: %v", rep.Violations)
	}
}
