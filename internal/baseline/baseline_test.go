package baseline

import (
	"context"
	"math"
	"testing"

	"edgecache/internal/model"
	"edgecache/internal/workload"
)

func testInstance(t *testing.T, mutate func(*workload.InstanceConfig)) *model.Instance {
	t.Helper()
	cfg := workload.PaperDefault()
	cfg.T = 8
	cfg.K = 6
	cfg.ClassesPerSBS = 4
	cfg.CacheCap = 2
	cfg.Bandwidth = 6
	cfg.Workload.Jitter = 0.3
	if mutate != nil {
		mutate(&cfg)
	}
	in, err := workload.BuildInstance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestTopK(t *testing.T) {
	scores := []float64{3, 9, 1, 9, 0}
	got := topK(scores, 2)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("topK = %v, want [1 3]", got)
	}
	if got := topK(scores, 0); got != nil {
		t.Fatalf("topK(0) = %v, want nil", got)
	}
	// Zero-score items are never selected even when k exceeds the catalogue.
	if got := topK([]float64{0, 2, 0}, 3); len(got) != 1 || got[0] != 1 {
		t.Fatalf("topK skipping zeros = %v, want [1]", got)
	}
}

func TestLRFUCachesCurrentTopDemand(t *testing.T) {
	in := testInstance(t, nil)
	traj, err := NewLRFU().Plan(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.CheckTrajectory(traj, 1e-6); err != nil {
		t.Fatal(err)
	}
	// Each slot must cache exactly the top-C items by that slot's demand.
	for tt := 0; tt < in.T; tt++ {
		totals := make([]float64, in.K)
		for k := 0; k < in.K; k++ {
			totals[k] = in.Demand.ContentTotal(tt, 0, k)
		}
		want := topK(totals, in.CacheCap[0])
		for _, k := range want {
			if traj[tt].X[0][k] != 1 {
				t.Fatalf("slot %d: top item %d not cached", tt, k)
			}
		}
		if got := len(traj[tt].X.Items(0)); got != len(want) {
			t.Fatalf("slot %d: cached %d items, want %d", tt, got, len(want))
		}
	}
}

func TestLFUUsesCumulativeDemand(t *testing.T) {
	// Content 0 dominates early, content 1 dominates late but LFU's
	// cumulative score keeps content 0 cached while pure LRFU switches.
	d := model.NewDemand(4, []int{1}, 2)
	d.Set(0, 0, 0, 0, 10)
	d.Set(1, 0, 0, 0, 10)
	d.Set(2, 0, 0, 1, 11)
	d.Set(3, 0, 0, 1, 11)
	in := &model.Instance{
		N: 1, K: 2, T: 4,
		Classes:   []int{1},
		CacheCap:  []int{1},
		Bandwidth: []float64{100},
		OmegaBS:   [][]float64{{1}},
		OmegaSBS:  [][]float64{{0}},
		Beta:      []float64{1},
		Demand:    d,
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}

	lfu, err := NewLFU().Plan(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	// At slot 2 cumulative scores are 20 vs 11 → LFU keeps content 0.
	if lfu[2].X[0][0] != 1 {
		t.Fatalf("LFU switched away from cumulative leader: %v", lfu[2].X[0])
	}
	// At slot 3 cumulative scores are 20 vs 22 → content 1 takes over.
	if lfu[3].X[0][1] != 1 {
		t.Fatalf("LFU ignored new cumulative leader: %v", lfu[3].X[0])
	}

	lrfu, err := NewLRFU().Plan(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if lrfu[2].X[0][1] != 1 {
		t.Fatalf("LRFU did not switch to current leader: %v", lrfu[2].X[0])
	}
}

func TestEMADecayValidation(t *testing.T) {
	in := testInstance(t, nil)
	if _, err := NewEMA(1.5).Plan(context.Background(), in); err == nil {
		t.Fatal("accepted decay > 1")
	}
	if _, err := NewEMA(-0.1).Plan(context.Background(), in); err == nil {
		t.Fatal("accepted decay < 0")
	}
	traj, err := NewEMA(0.5).Plan(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.CheckTrajectory(traj, 1e-6); err != nil {
		t.Fatal(err)
	}
}

func TestStaticTopNeverReplaces(t *testing.T) {
	in := testInstance(t, nil)
	traj, err := (&StaticTop{}).Plan(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	br := in.TotalCost(traj)
	if br.Replacements > in.CacheCap[0] {
		t.Fatalf("static policy made %d replacements, want ≤ %d (initial fill)", br.Replacements, in.CacheCap[0])
	}
	for tt := 1; tt < in.T; tt++ {
		for k := 0; k < in.K; k++ {
			if traj[tt].X[0][k] != traj[0].X[0][k] {
				t.Fatal("static placement changed over time")
			}
		}
	}
}

func TestNoCachingMatchesNullCost(t *testing.T) {
	in := testInstance(t, nil)
	traj, err := (NoCaching{}).Plan(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	br := in.TotalCost(traj)
	if math.Abs(br.Total-in.NoCachingCost()) > 1e-9 {
		t.Fatalf("NoCaching cost %g != NoCachingCost %g", br.Total, in.NoCachingCost())
	}
	if br.Replacements != 0 {
		t.Fatalf("NoCaching made %d replacements", br.Replacements)
	}
}

func TestBaselinesBeatNoCaching(t *testing.T) {
	in := testInstance(t, nil)
	null := in.NoCachingCost()
	for _, p := range []Policy{NewLRFU(), NewLFU(), NewEMA(0.7), &StaticTop{}} {
		traj, err := p.Plan(context.Background(), in)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		br := in.TotalCost(traj)
		if br.BS > null+1e-9 {
			t.Fatalf("%s: BS cost %g exceeds no-caching %g", p.Name(), br.BS, null)
		}
	}
}

func TestPolicyNames(t *testing.T) {
	if NewLRFU().Name() != "LRFU" || NewLFU().Name() != "LFU" {
		t.Fatal("unexpected names")
	}
	if NewEMA(0.25).Name() != "EMA(0.25)" {
		t.Fatalf("EMA name = %q", NewEMA(0.25).Name())
	}
	if (&StaticTop{}).Name() != "StaticTop" || (NoCaching{}).Name() != "NoCaching" {
		t.Fatal("unexpected names")
	}
}

func TestPlanValidatesInstance(t *testing.T) {
	in := testInstance(t, nil)
	in.N = 0
	for _, p := range []Policy{NewLRFU(), &StaticTop{}, NoCaching{}} {
		if _, err := p.Plan(context.Background(), in); err == nil {
			t.Errorf("%s accepted invalid instance", p.Name())
		}
	}
}
