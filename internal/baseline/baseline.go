// Package baseline implements the caching schemes the paper compares
// against, plus closely related rule-based policies from its related-work
// discussion (§VI).
//
// The paper's "LRFU" (§V-A) is not the classic LRFU of Lee et al.; it is
// the rule "at each timeslot, cache the contents ranked by the MUs'
// request volume, top down, within the cache size", computed on exact
// (noise-free) demand. That rule is the Decay = 0 member of the score
// family implemented here:
//
//	score^t_k = demand^t_k + Decay · score^{t−1}_k,
//
// whose Decay = 1 member is LFU (cumulative frequency) and whose
// intermediate members are the exponential-smoothing recency/frequency
// hybrids of the classic LRFU literature.
//
// All baselines receive the optimal load split for their placement
// (package loadbalance) — the most favourable treatment, consistent with
// the cost ratios the paper reports.
package baseline

import (
	"context"
	"fmt"

	"edgecache/internal/convex"
	"edgecache/internal/loadbalance"
	"edgecache/internal/model"
	"edgecache/internal/parallel"
)

// Policy plans a full caching/load-balancing trajectory for an instance
// using only rule-based logic (no optimization of the placement). It is
// also the shape of the online controllers' degradation fallback: cheap,
// deterministic, and guaranteed feasible.
type Policy interface {
	// Name is a short label for tables ("LRFU", "LFU", ...).
	Name() string
	// Plan returns a feasible trajectory over the instance's horizon,
	// honouring ctx cancellation in its (parallel) load-split solves.
	Plan(ctx context.Context, in *model.Instance) (model.Trajectory, error)
}

// ScoreCaching caches, at every slot, the top-C_n contents by a running
// demand score.
type ScoreCaching struct {
	// Label is the policy name reported by Name.
	Label string
	// Decay is the score memory: 0 ranks by current-slot demand (the
	// paper's LRFU), 1 accumulates demand forever (LFU), in-between gives
	// exponentially smoothed recency/frequency ranking.
	Decay float64
	// Convex configures the load-split solves.
	Convex convex.Options
}

// NewLRFU returns the paper's §V-A baseline.
func NewLRFU() *ScoreCaching { return &ScoreCaching{Label: "LRFU", Decay: 0} }

// NewLFU returns the cumulative-frequency variant.
func NewLFU() *ScoreCaching { return &ScoreCaching{Label: "LFU", Decay: 1} }

// NewEMA returns an exponentially smoothed variant with the given decay.
func NewEMA(decay float64) *ScoreCaching {
	return &ScoreCaching{Label: fmt.Sprintf("EMA(%.2f)", decay), Decay: decay}
}

// Name implements Policy.
func (s *ScoreCaching) Name() string { return s.Label }

// Plan implements Policy.
func (s *ScoreCaching) Plan(ctx context.Context, in *model.Instance) (model.Trajectory, error) {
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	if s.Decay < 0 || s.Decay > 1 {
		return nil, fmt.Errorf("baseline: decay %g outside [0, 1]", s.Decay)
	}

	// Placements are sequential (scores carry over); load splits are
	// independent and filled in parallel afterwards.
	placements := make([]model.CachePlan, in.T)
	scores := make([][]float64, in.N)
	for n := range scores {
		scores[n] = make([]float64, in.K)
	}
	for t := 0; t < in.T; t++ {
		x := model.NewCachePlan(in.N, in.K)
		for n := 0; n < in.N; n++ {
			for k := 0; k < in.K; k++ {
				scores[n][k] = s.Decay*scores[n][k] + in.Demand.ContentTotal(t, n, k)
			}
			for _, k := range topK(scores[n], in.CacheCapAt(t, n)) {
				x[n][k] = 1
			}
		}
		placements[t] = x
	}
	return completeWithOptimalLoad(ctx, in, placements, s.Convex)
}

// StaticTop caches the top-C_n contents by average demand over the whole
// horizon and never replaces them: the zero-replacement-cost extreme,
// useful as an ablation anchor against the dynamic policies.
type StaticTop struct {
	// Convex configures the load-split solves.
	Convex convex.Options
}

// Name implements Policy.
func (*StaticTop) Name() string { return "StaticTop" }

// Plan implements Policy.
func (s *StaticTop) Plan(ctx context.Context, in *model.Instance) (model.Trajectory, error) {
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	x := model.NewCachePlan(in.N, in.K)
	for n := 0; n < in.N; n++ {
		totals := make([]float64, in.K)
		for t := 0; t < in.T; t++ {
			for k := 0; k < in.K; k++ {
				totals[k] += in.Demand.ContentTotal(t, n, k)
			}
		}
		// A static placement must be legal at every slot, so under a
		// fault overlay it can only use the horizon's capacity floor.
		for _, k := range topK(totals, in.CacheCapFloor(n)) {
			x[n][k] = 1
		}
	}
	placements := make([]model.CachePlan, in.T)
	for t := range placements {
		placements[t] = x
	}
	return completeWithOptimalLoad(ctx, in, placements, s.Convex)
}

// NoCaching serves everything from the BS: the x = y = 0 null policy whose
// cost anchors "reduction" percentages.
type NoCaching struct{}

// Name implements Policy.
func (NoCaching) Name() string { return "NoCaching" }

// Plan implements Policy.
func (NoCaching) Plan(_ context.Context, in *model.Instance) (model.Trajectory, error) {
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	return model.NewTrajectory(in), nil
}

// topK returns the indices of the k largest scores (ties toward smaller
// index, deterministic), skipping zero-score items: an item nobody has
// ever requested is not worth a cache slot.
func topK(scores []float64, k int) []int {
	if k <= 0 {
		return nil
	}
	idx := make([]int, 0, len(scores))
	for i, v := range scores {
		if v > 0 {
			idx = append(idx, i)
		}
	}
	// Partial selection sort: k is small (cache sizes).
	if k > len(idx) {
		k = len(idx)
	}
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			if scores[idx[j]] > scores[idx[best]] {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	return idx[:k]
}

// completeWithOptimalLoad fills each slot's load split with the optimum
// for its placement.
func completeWithOptimalLoad(ctx context.Context, in *model.Instance, placements []model.CachePlan, opts convex.Options) (model.Trajectory, error) {
	traj := make(model.Trajectory, in.T)
	err := parallel.For(ctx, in.T, 0, func(t int) error {
		y, err := loadbalance.OptimalGivenPlacement(in, t, placements[t], opts)
		if err != nil {
			return fmt.Errorf("baseline: slot %d: %w", t, err)
		}
		traj[t] = model.SlotDecision{X: placements[t].Clone(), Y: y}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return traj, nil
}
