package mat

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %g, want 32", got)
	}
	if got := Dot(nil, nil); got != 0 {
		t.Fatalf("Dot(nil, nil) = %g, want 0", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot did not panic on length mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestAxpy(t *testing.T) {
	y := []float64{1, 1}
	Axpy(2, []float64{3, -1}, y)
	if y[0] != 7 || y[1] != -1 {
		t.Fatalf("Axpy = %v, want [7 -1]", y)
	}
}

func TestScale(t *testing.T) {
	x := []float64{1, -2}
	Scale(-3, x)
	if x[0] != -3 || x[1] != 6 {
		t.Fatalf("Scale = %v, want [-3 6]", x)
	}
}

func TestNorm2(t *testing.T) {
	if got := Norm2([]float64{3, 4}); !almost(got, 5, 1e-12) {
		t.Fatalf("Norm2 = %g, want 5", got)
	}
	if got := Norm2(nil); got != 0 {
		t.Fatalf("Norm2(nil) = %g, want 0", got)
	}
	// Overflow safety: entries near MaxFloat64 must not produce +Inf.
	big := math.MaxFloat64 / 2
	if got := Norm2([]float64{big, big}); math.IsInf(got, 0) {
		t.Fatal("Norm2 overflowed")
	}
}

func TestNormInf(t *testing.T) {
	if got := NormInf([]float64{-7, 3}); got != 7 {
		t.Fatalf("NormInf = %g, want 7", got)
	}
}

func TestDist2(t *testing.T) {
	if got := Dist2([]float64{1, 1}, []float64{4, 5}); !almost(got, 5, 1e-12) {
		t.Fatalf("Dist2 = %g, want 5", got)
	}
}

func TestClamp(t *testing.T) {
	tests := []struct{ v, lo, hi, want float64 }{
		{0.5, 0, 1, 0.5},
		{-1, 0, 1, 0},
		{2, 0, 1, 1},
	}
	for _, tc := range tests {
		if got := Clamp(tc.v, tc.lo, tc.hi); got != tc.want {
			t.Errorf("Clamp(%g, %g, %g) = %g, want %g", tc.v, tc.lo, tc.hi, got, tc.want)
		}
	}
}

func TestSum(t *testing.T) {
	if got := Sum([]float64{1, 2, 3.5}); got != 6.5 {
		t.Fatalf("Sum = %g, want 6.5", got)
	}
}

func TestDense(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(0, 1, 5)
	m.Set(1, 2, -2)
	if m.At(0, 1) != 5 || m.At(1, 2) != -2 {
		t.Fatal("At/Set round trip failed")
	}
	out := make([]float64, 2)
	m.MulVec([]float64{1, 1, 1}, out)
	if out[0] != 5 || out[1] != -2 {
		t.Fatalf("MulVec = %v, want [5 -2]", out)
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 0 {
		t.Fatal("Clone aliased storage")
	}
	if got := m.Row(1); got[2] != -2 {
		t.Fatalf("Row = %v", got)
	}
}

func TestDensePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MulVec did not panic on shape mismatch")
		}
	}()
	NewDense(1, 2).MulVec([]float64{1}, []float64{0})
}

// Property: Cauchy–Schwarz |⟨a,b⟩| ≤ ‖a‖‖b‖ on random vectors.
func TestCauchySchwarzProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 3))
		n := 1 + r.IntN(20)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = r.NormFloat64()
			b[i] = r.NormFloat64()
		}
		return math.Abs(Dot(a, b)) <= Norm2(a)*Norm2(b)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: triangle inequality for Dist2.
func TestDistTriangleProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 5))
		n := 1 + r.IntN(10)
		a := make([]float64, n)
		b := make([]float64, n)
		c := make([]float64, n)
		for i := range a {
			a[i], b[i], c[i] = r.NormFloat64(), r.NormFloat64(), r.NormFloat64()
		}
		return Dist2(a, c) <= Dist2(a, b)+Dist2(b, c)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
