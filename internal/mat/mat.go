// Package mat provides the small dense vector and matrix kernels shared by
// the optimization substrates (simplex tableau, first-order convex solver,
// projections). It is deliberately minimal: the solvers in this repository
// work on problems with at most a few thousand variables, so clarity wins
// over cache-blocking tricks.
package mat

import (
	"fmt"
	"math"
)

// Dot returns the inner product Σ_i a_i b_i. It panics if the lengths
// differ, which always indicates a programming error in a solver.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Axpy computes y += alpha*x in place. It panics on length mismatch.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale multiplies every entry of x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Norm2 returns the Euclidean norm of x, computed with scaling to avoid
// overflow for large entries.
func Norm2(x []float64) float64 {
	var scale, ssq float64
	ssq = 1
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// NormInf returns the maximum absolute entry of x (0 for an empty slice).
func NormInf(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Dist2 returns the Euclidean distance between a and b.
func Dist2(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: Dist2 length mismatch %d vs %d", len(a), len(b)))
	}
	var ssq float64
	for i, v := range a {
		d := v - b[i]
		ssq += d * d
	}
	return math.Sqrt(ssq)
}

// Clamp returns v limited to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	switch {
	case v < lo:
		return lo
	case v > hi:
		return hi
	default:
		return v
	}
}

// Sum returns Σ_i x_i.
func Sum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// Dense is a row-major dense matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols
}

// NewDense allocates a zero matrix.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: NewDense(%d, %d) with negative dimension", rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns the (i, j) entry.
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the (i, j) entry.
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// MulVec computes out = M·x. out must have length Rows and x length Cols.
func (m *Dense) MulVec(x, out []float64) {
	if len(x) != m.Cols || len(out) != m.Rows {
		panic(fmt.Sprintf("mat: MulVec shapes (%d, %d)·%d → %d", m.Rows, m.Cols, len(x), len(out)))
	}
	for i := 0; i < m.Rows; i++ {
		out[i] = Dot(m.Row(i), x)
	}
}

// Clone returns a deep copy of the matrix.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}
