package loadbalance

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"edgecache/internal/convex"
	"edgecache/internal/mat"
	"edgecache/internal/model"
	"edgecache/internal/obs"
	"edgecache/internal/parallel"
	"edgecache/internal/projection"
)

// Delta-aware P2 metrics (atomic; read by -metrics and /debug/vars).
var (
	mSlotSkips  = obs.Default.Counter("loadbalance.p2_slot_skips")
	mRecReplays = obs.Default.Counter("loadbalance.p2_recovery_replays")
)

// Workspace is the zero-reallocation P2 solver state of one primal-dual
// run. Everything that the ~MaxIter × T × N inner solves of Algorithm 1
// re-derive in the naive path — the vectors w and ŵ, the scalar A, the
// exact Lipschitz constant, the greedy recovery order, the FISTA and
// projection scratch and the warm-started iterate itself — depends only on
// the instance (λ, ω), not on the dual multipliers μ. A workspace computes
// it once per Bind and then solves dual iterations and feasibility
// recoveries with zero steady-state heap allocations, scheduling the
// (slot, SBS) subproblems as one flat work list on the shared worker pool.
//
// Numerics are bit-for-bit identical to the reference path
// (SlotProblem.Solve / OptimalGivenPlacement): the same float64 operation
// sequence runs over precomputed inputs, warm starts carry the previous
// iterate by keeping it in place instead of copying plans, and the total
// objective is accumulated in the sequential order (per slot over SBSs,
// then over slots).
//
// A workspace is single-solve state: Bind and the solve methods must not
// be called concurrently, though each solve internally parallelises over
// its (t, n) grain.
type Workspace struct {
	in    *model.Instance
	slots []*slotState // index t*N + n; pointers so BindAdvance can rotate
	objs  []float64    // per-slot objectives of the last SolveDual
	zeros []float64    // shared all-zero lower bound (never written)
	rot   []*slotState // BindAdvance rotation scratch
	lam   []float64    // BindAdvance plane-comparison scratch

	// per-call bindings for the closure-free dispatch functions
	mu      [][][]float64
	opts    convex.Options
	dirty   [][]bool // non-nil only inside SolveDualDirty
	recX    []model.CachePlan
	recTraj model.Trajectory
	dualFn  func(i int) error
	recFn   func(i int) error
}

// slotState is the persistent P2 state of one (slot, SBS) pair.
type slotState struct {
	t, n   int
	m, k   int
	dim    int       // m·k
	lambda   []float64 // owned dense copy of the demand plane
	omega    []float64 // aliases OmegaBS[n]
	omegaSBS []float64 // aliases OmegaSBS[n]
	bw       float64

	w, wh  []float64 // ω_m λ_i and ŵ_m λ_i
	a      float64   // A = Σ w
	lip    float64   // exact smoothness constant 2(‖w‖²+‖ŵ‖²)
	whZero bool      // ŵ ≡ 0: skip the v-terms (bit-exact; see gradFunc)
	greedy bool      // OmegaSBS[n] ≡ 0: recovery takes the greedy path
	order  []int     // classes by descending ω (stable) for the greedy

	y        []float64 // persistent dual iterate — the warm start
	recovY   []float64 // recovery iterate (separate: must not clobber y)
	hi       []float64 // recovery upper bounds
	lo       []float64 // aliases Workspace.zeros
	mu       []float64 // bound per solve; nil = zero duals
	hiActive bool      // project onto [lo, hi] instead of the unit box

	// Compact active-coordinate plane: the coordinates with λ ≠ 0, the
	// only ones FISTA can move (zero-λ coordinates keep y = 0 exactly —
	// their gradient is the non-negative μ and the projection clamps them
	// at the lower bound — and they contribute an exact +0.0 to every dot
	// product, norm and knapsack load of the dense solve). The dual solve
	// therefore runs over these coordinates alone, bit-identically, with
	// cost per iteration O(active) instead of O(M·K). act == nil means the
	// plane is fully dense and pruning buys nothing. compactOK guards the
	// invariant "inactive coordinates of y are exactly 0", which external
	// warm starts (seedWarm) can break; they fall back to the dense path.
	act           []int
	lamC, wC, whC []float64
	muC, yC       []float64
	probC         convex.Problem
	compactOK     bool

	// Delta-aware re-solve state. fixed records that the last dual solve
	// was a bitwise fixed point — Minimize returned its warm start
	// unchanged — under lastOpts; SolveDualDirty may then skip the slot
	// when the caller certifies its μ row did not move (determinism makes
	// a re-solve reproduce the identical iterate and objective). yOut is
	// the alternate output buffer that makes the comparison observable.
	yOut     []float64
	fixed    bool
	lastOpts convex.Options

	// Recovery memoisation: recover() is a pure function of the plane
	// coefficients, the bandwidth, the placement row and the options, so a
	// repeated row replays the cached recovY instead of re-minimising.
	recovX    []float64
	recovOK   bool
	recovOpts convex.Options

	prob convex.Problem
	cw   convex.Workspace
}

// NewWorkspace returns an empty workspace; Bind prepares it for an
// instance.
func NewWorkspace() *Workspace { return &Workspace{} }

// Bind prepares the workspace for in: precomputes every per-(t, n)
// invariant and zeroes the dual iterates (warm starts are an intra-solve
// affair; across window solves only the shifted multipliers carry over,
// exactly as in the reference path). Rebinding reuses every buffer whose
// capacity suffices, so one workspace serves the overlapping window solves
// of an FHC version without steady-state allocation. The instance must
// already be validated.
func (ws *Workspace) Bind(in *model.Instance) {
	ws.bindShared(in)
	for t := 0; t < in.T; t++ {
		for n := 0; n < in.N; n++ {
			ws.slots[t*in.N+n].bind(in, t, n, ws.zeros)
		}
	}
}

// bindShared sizes the slot table and shared buffers for in and installs
// the dispatch closures; per-slot binding is the caller's affair.
func (ws *Workspace) bindShared(in *model.Instance) {
	ws.in = in
	total := in.T * in.N
	if cap(ws.slots) < total {
		grown := make([]*slotState, total)
		copy(grown, ws.slots[:len(ws.slots)])
		ws.slots = grown
	} else {
		ws.slots = ws.slots[:total]
	}
	for i, s := range ws.slots {
		if s == nil {
			ws.slots[i] = new(slotState)
		}
	}
	ws.objs = grow(ws.objs, total)

	maxDim := 0
	for n := 0; n < in.N; n++ {
		if d := in.Classes[n] * in.K; d > maxDim {
			maxDim = d
		}
	}
	// zeros is only ever read (it is the shared lower bound), so growth
	// preserves its all-zero invariant.
	ws.zeros = grow(ws.zeros, maxDim)

	if ws.dualFn == nil {
		ws.dualFn = func(i int) error {
			s := ws.slots[i]
			if ws.dirty != nil && !ws.dirty[s.t][s.n] && s.fixed && ws.opts == s.lastOpts {
				// The caller certifies the μ row is unchanged and the last
				// solve was a bitwise fixed point: re-solving would
				// reproduce s.y and ws.objs[i] exactly. Keep both.
				mSlotSkips.Inc()
				return nil
			}
			var muRow []float64
			if ws.mu != nil && ws.mu[s.t] != nil {
				muRow = ws.mu[s.t][s.n]
			}
			obj, err := s.solveDual(muRow, ws.opts)
			if err != nil {
				return fmt.Errorf("loadbalance: slot %d SBS %d: %w", s.t, s.n, err)
			}
			ws.objs[i] = obj
			return nil
		}
		ws.recFn = func(i int) error {
			s := ws.slots[i]
			if err := s.recover(ws.recX[s.t][s.n], ws.recTraj[s.t].Y[s.n], ws.opts); err != nil {
				return fmt.Errorf("loadbalance: slot %d SBS %d: %w", s.t, s.n, err)
			}
			return nil
		}
	}
}

// BindAdvance rebinds the workspace for the next overlapping window of a
// receding-horizon run: the new window starts advance slots after the
// previous one, so new slot (t, n) covers the same absolute slot as old
// slot (t+advance, n). Slot states rotate by pointer, and a rotated slot
// whose plane inputs (demand plane, ω vectors, dimensions) are bitwise
// unchanged keeps its entire coefficient precompute — w, ŵ, A, the
// Lipschitz constant, the greedy order, the compact gather — instead of
// re-deriving it. With carry set, the slot also keeps its dual iterate as
// the warm start for the new window's first dual iteration (an
// accuracy-level choice, ablated by online.Config.DisableIterateWarmStart);
// otherwise iterates reset to zero exactly like Bind. Slots that enter the
// window, change shape, or fail the bitwise comparison take the full bind
// path, so a wrong advance degrades to correctness, never to corruption.
func (ws *Workspace) BindAdvance(in *model.Instance, advance int, carry bool) {
	prev := ws.in
	if advance <= 0 || prev == nil || prev.N != in.N || advance >= prev.T ||
		len(ws.slots) != prev.T*prev.N {
		ws.Bind(in)
		return
	}
	n := in.N
	overlap := prev.T - advance
	if overlap > in.T {
		overlap = in.T
	}
	total := in.T * n
	if cap(ws.rot) < total {
		ws.rot = make([]*slotState, total)
	} else {
		ws.rot = ws.rot[:total]
	}
	// Overlapping prefix: pull each surviving state forward by advance.
	for t := 0; t < overlap; t++ {
		copy(ws.rot[t*n:(t+1)*n], ws.slots[(t+advance)*n:(t+advance+1)*n])
	}
	// Fill the tail with the states that rotated out (they rebind fully).
	spare := ws.slots[:advance*n]
	for i := overlap * n; i < total; i++ {
		if len(spare) > 0 {
			ws.rot[i] = spare[0]
			spare = spare[1:]
		} else {
			ws.rot[i] = new(slotState)
		}
	}
	ws.slots, ws.rot = ws.rot, ws.slots[:0]

	ws.bindShared(in)
	for t := 0; t < in.T; t++ {
		for sbs := 0; sbs < n; sbs++ {
			s := ws.slots[t*n+sbs]
			if t < overlap {
				s.bindReuse(ws, in, t, sbs, carry)
			} else {
				s.bind(in, t, sbs, ws.zeros)
			}
		}
	}
}

// bindReuse rebinds a rotated slot for (t, n), keeping the coefficient
// precompute when the plane inputs are bitwise identical to what the slot
// already holds and falling back to a full bind otherwise.
func (s *slotState) bindReuse(ws *Workspace, in *model.Instance, t, n int, carry bool) {
	m, k := in.Classes[n], in.K
	if s.n != n || s.m != m || s.k != k {
		s.bind(in, t, n, ws.zeros)
		return
	}
	ws.lam = in.Demand.CopySlot(ws.lam, t, n)
	if !equalFloats(ws.lam, s.lambda) ||
		!equalFloats(in.OmegaBS[n], s.omega[:m]) ||
		!equalFloats(in.OmegaSBS[n], s.omegaSBS[:m]) {
		s.bind(in, t, n, ws.zeros)
		return
	}
	// Same plane: every λ/ω-derived quantity is still exact. Only the
	// slot index, the bandwidth and the bound-lifetime aliases refresh.
	s.t = t
	if bw := in.BandwidthAt(t, n); bw != s.bw {
		s.bw = bw
		s.fixed = false   // different feasible set: the old fixed point is void
		s.recovOK = false // recovery depends on the knapsack bound
	}
	s.omega = in.OmegaBS[n]
	s.omegaSBS = in.OmegaSBS[n]
	s.lo = ws.zeros[:s.dim]
	s.mu = nil
	s.hiActive = false
	if carry {
		// Keep s.y (the iterate of the same absolute slot) and its
		// compactOK invariant; the fixed-point certificate still dies —
		// the caller's μ row for this slot is about to change.
		s.fixed = false
	} else {
		zero(s.y)
		s.compactOK = true
		s.fixed = false
	}
}

// equalFloats reports elementwise float64 equality (==; a NaN anywhere
// reads as unequal, which only costs a rebind).
func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}


func (s *slotState) bind(in *model.Instance, t, n int, zeros []float64) {
	m, k := in.Classes[n], in.K
	dim := m * k
	s.t, s.n, s.m, s.k, s.dim = t, n, m, k, dim
	s.lambda = in.Demand.CopySlot(s.lambda, t, n)
	s.omega = in.OmegaBS[n]
	s.omegaSBS = in.OmegaSBS[n]
	s.bw = in.BandwidthAt(t, n)

	s.w = grow(s.w, dim)
	s.wh = grow(s.wh, dim)
	var a float64
	for mm := 0; mm < m; mm++ {
		base := mm * k
		for kk := 0; kk < k; kk++ {
			s.w[base+kk] = in.OmegaBS[n][mm] * s.lambda[base+kk]
			s.wh[base+kk] = in.OmegaSBS[n][mm] * s.lambda[base+kk]
			a += s.w[base+kk]
		}
	}
	s.a = a
	nw := mat.Norm2(s.w)
	nh := mat.Norm2(s.wh)
	s.lip = math.Max(2*(nw*nw+nh*nh), 1e-9)
	s.whZero = allZero(s.wh)
	s.greedy = allZero(in.OmegaSBS[n])

	s.y = grow(s.y, dim)
	zero(s.y)
	s.yOut = grow(s.yOut, dim)
	s.recovY = grow(s.recovY, dim)
	s.hi = grow(s.hi, dim)
	s.lo = zeros[:dim]
	s.mu = nil
	s.hiActive = false
	s.fixed = false
	s.recovOK = false

	// Greedy recovery order: classes by descending ω, stable (ties keep
	// class-index order) — the permutation of the reference sort.
	if cap(s.order) < m {
		s.order = make([]int, m)
	} else {
		s.order = s.order[:m]
	}
	for i := range s.order {
		s.order[i] = i
	}
	omega := s.omega
	order := s.order
	sort.SliceStable(order, func(i, j int) bool { return omega[order[i]] > omega[order[j]] })

	// Compact plane: gather the λ ≠ 0 coordinates. A fully dense plane
	// keeps act == nil and the pruned path stays out of the way.
	s.act = growInts(s.act, 0)
	for i, v := range s.lambda {
		if v != 0 {
			s.act = append(s.act, i)
		}
	}
	if len(s.act) == dim {
		s.act = nil
	} else {
		na := len(s.act)
		s.lamC = grow(s.lamC, na)
		s.wC = grow(s.wC, na)
		s.whC = grow(s.whC, na)
		s.muC = grow(s.muC, na)
		s.yC = grow(s.yC, na)
		for i, j := range s.act {
			s.lamC[i] = s.lambda[j]
			s.wC[i] = s.w[j]
			s.whC[i] = s.wh[j]
		}
	}
	s.compactOK = true

	if s.prob.Func == nil {
		s.prob = convex.Problem{Func: s.objFunc, Grad: s.gradFunc, Project: s.projFunc}
	}
	if s.probC.Func == nil {
		s.probC = convex.Problem{Func: s.objFuncC, Grad: s.gradFuncC, Project: s.projFuncC}
	}
}

// growInts is grow for index slices, returning a zero-length slice over
// retained capacity.
func growInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

// grow returns buf resized to n entries, reallocating only when needed.
func grow(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

func zero(v []float64) {
	for i := range v {
		v[i] = 0
	}
}

// objFunc is SlotProblem.Solve's objective closure over precomputed state.
// When ŵ ≡ 0 the v-terms are skipped: v is exactly +0 there (Σ of +0
// products), so v² = +0 and adding it cannot change any bit of the result
// ((a−u)² ≥ +0).
func (s *slotState) objFunc(y []float64) float64 {
	u := mat.Dot(s.w, y)
	var obj float64
	if s.whZero {
		obj = (s.a - u) * (s.a - u)
	} else {
		v := mat.Dot(s.wh, y)
		obj = (s.a-u)*(s.a-u) + v*v
	}
	if s.mu != nil {
		obj += mat.Dot(s.mu, y)
	}
	return obj
}

// gradFunc is the gradient closure, with the μ branch hoisted out of the
// loop and the cv·ŵ term dropped when ŵ ≡ 0. The skipped term is ±0, so
// results can differ from the reference only in the sign of zero entries —
// which Go's == (and hence reflect.DeepEqual) treats as equal and which no
// downstream arithmetic can amplify (such coordinates have w = λ = 0).
func (s *slotState) gradFunc(y, grad []float64) {
	u := mat.Dot(s.w, y)
	cu := -2 * (s.a - u)
	w := s.w[:len(grad)]
	if s.whZero {
		if s.mu != nil {
			mu := s.mu[:len(grad)]
			for i := range grad {
				grad[i] = cu*w[i] + mu[i]
			}
		} else {
			for i := range grad {
				grad[i] = cu * w[i]
			}
		}
		return
	}
	v := mat.Dot(s.wh, y)
	cv := 2 * v
	wh := s.wh[:len(grad)]
	if s.mu != nil {
		mu := s.mu[:len(grad)]
		for i := range grad {
			grad[i] = cu*w[i] + cv*wh[i] + mu[i]
		}
	} else {
		for i := range grad {
			grad[i] = cu*w[i] + cv*wh[i]
		}
	}
}

func (s *slotState) projFunc(dst, z []float64) ([]float64, error) {
	if s.hiActive {
		return projection.BoxKnapsack(dst, z, s.lo, s.hi, s.lambda, s.bw)
	}
	return projection.UnitBoxKnapsack(dst, z, s.lambda, s.bw)
}

// objFuncC, gradFuncC and projFuncC are the compact-plane twins of the
// dense closures: identical arithmetic over the gathered λ ≠ 0
// coordinates. The dense sums they reproduce only ever add +0.0 terms at
// the skipped coordinates (w = ŵ = λ = 0 there and y is pinned at 0), so
// objective values, gradients, projections — and hence the whole FISTA
// trajectory and its stopping decisions — match the dense path bit for
// bit.
func (s *slotState) objFuncC(y []float64) float64 {
	u := mat.Dot(s.wC[:len(y)], y)
	var obj float64
	if s.whZero {
		obj = (s.a - u) * (s.a - u)
	} else {
		v := mat.Dot(s.whC[:len(y)], y)
		obj = (s.a-u)*(s.a-u) + v*v
	}
	if s.mu != nil {
		obj += mat.Dot(s.mu, y)
	}
	return obj
}

func (s *slotState) gradFuncC(y, grad []float64) {
	u := mat.Dot(s.wC[:len(y)], y)
	cu := -2 * (s.a - u)
	w := s.wC[:len(grad)]
	if s.whZero {
		if s.mu != nil {
			mu := s.mu[:len(grad)]
			for i := range grad {
				grad[i] = cu*w[i] + mu[i]
			}
		} else {
			for i := range grad {
				grad[i] = cu * w[i]
			}
		}
		return
	}
	v := mat.Dot(s.whC[:len(y)], y)
	cv := 2 * v
	wh := s.whC[:len(grad)]
	if s.mu != nil {
		mu := s.mu[:len(grad)]
		for i := range grad {
			grad[i] = cu*w[i] + cv*wh[i] + mu[i]
		}
	} else {
		for i := range grad {
			grad[i] = cu*w[i] + cv*wh[i]
		}
	}
}

func (s *slotState) projFuncC(dst, z []float64) ([]float64, error) {
	return projection.UnitBoxKnapsack(dst, z, s.lamC[:len(z)], s.bw)
}

// applyDefaults mirrors SlotProblem.Solve's per-call option defaulting.
func (s *slotState) applyDefaults(opts convex.Options) convex.Options {
	if opts.Lipschitz <= 0 {
		opts.Lipschitz = s.lip
	}
	if opts.MaxIter == 0 {
		opts.MaxIter = 3000
	}
	if opts.StepTol == 0 {
		opts.StepTol = 1e-10
	}
	return opts
}

// solveDual runs this slot's warm-started dual solve, leaving the iterate
// in s.y for the next iteration, and returns the objective value. Planes
// with inactive (λ = 0) coordinates solve over the compact gather instead
// of the dense row whenever the pruning invariant holds — bit-identical
// results either way.
func (s *slotState) solveDual(mu []float64, opts convex.Options) (float64, error) {
	if mu != nil && len(mu) != s.dim {
		return 0, fmt.Errorf("loadbalance: mu has %d entries, want %d", len(mu), s.dim)
	}
	if s.act != nil && s.compactOK {
		return s.solveDualCompact(mu, opts)
	}
	s.mu = mu
	s.hiActive = false
	start := time.Now()
	out := s.yOut[:s.dim]
	res, err := s.cw.Minimize(s.prob, s.y, out, s.applyDefaults(opts))
	if err != nil {
		s.fixed = false
		return 0, err
	}
	s.fixed = equalFloats(out, s.y[:s.dim])
	s.lastOpts = opts
	copy(s.y, out)
	mSlotSolves.Inc()
	mGradSteps.Add(int64(res.Iterations))
	mSolveTime.Observe(time.Since(start))
	return res.Value, nil
}

// solveDualCompact is solveDual over the active coordinates only: gather
// the warm iterate and μ, minimise, scatter back. Inactive coordinates of
// s.y stay exactly 0, which is also what the dense path would leave there.
func (s *slotState) solveDualCompact(mu []float64, opts convex.Options) (float64, error) {
	na := len(s.act)
	yC := s.yC[:na]
	for i, j := range s.act {
		yC[i] = s.y[j]
	}
	if mu != nil {
		muC := s.muC[:na]
		for i, j := range s.act {
			muC[i] = mu[j]
		}
		s.mu = muC
	} else {
		s.mu = nil
	}
	start := time.Now()
	out := s.yOut[:na]
	res, err := s.cw.Minimize(s.probC, yC, out, s.applyDefaults(opts))
	if err != nil {
		s.fixed = false
		return 0, err
	}
	s.fixed = equalFloats(out, yC)
	s.lastOpts = opts
	for i, j := range s.act {
		s.y[j] = out[i]
	}
	mSlotSolves.Inc()
	mGradSteps.Add(int64(res.Iterations))
	mSolveTime.Observe(time.Since(start))
	return res.Value, nil
}

// recover computes the optimal load split for the fixed placement row xn
// (length K) into yn — OptimalGivenPlacement for one (t, n). The dual
// iterate s.y is untouched.
func (s *slotState) recover(xn []float64, yn [][]float64, opts convex.Options) error {
	if s.greedy {
		s.greedyRecover(xn, yn)
		return nil
	}
	// The recovery solve starts from an all-zero iterate, so its result is
	// a pure function of (plane, bandwidth, xn, opts): when the placement
	// row repeats — the common case once the dual iteration has settled,
	// and guaranteed whenever P1 skipped the SBS — replay the cached
	// recovY instead of re-minimising.
	if s.recovOK && opts == s.recovOpts && equalFloats(xn, s.recovX[:s.k]) {
		mRecReplays.Inc()
		for m := 0; m < s.m; m++ {
			copy(yn[m], s.recovY[m*s.k:(m+1)*s.k])
		}
		return nil
	}
	s.recovOK = false
	for m := 0; m < s.m; m++ {
		base := m * s.k
		for k := 0; k < s.k; k++ {
			s.hi[base+k] = mat.Clamp(xn[k], 0, 1)
		}
	}
	s.mu = nil
	s.hiActive = true
	zero(s.recovY)
	start := time.Now()
	res, err := s.cw.Minimize(s.prob, s.recovY, s.recovY, s.applyDefaults(opts))
	s.hiActive = false
	if err != nil {
		return err
	}
	mSlotSolves.Inc()
	mGradSteps.Add(int64(res.Iterations))
	mSolveTime.Observe(time.Since(start))
	for m := 0; m < s.m; m++ {
		copy(yn[m], s.recovY[m*s.k:(m+1)*s.k])
	}
	s.recovX = grow(s.recovX, s.k)
	copy(s.recovX, xn)
	s.recovOpts = opts
	s.recovOK = true
	return nil
}

// greedyRecover is greedyGivenPlacement over the precomputed class order.
func (s *slotState) greedyRecover(xn []float64, yn [][]float64) {
	remaining := s.bw
	for _, m := range s.order {
		base := m * s.k
		for k := 0; k < s.k; k++ {
			if xn[k] < 0.5 {
				continue
			}
			rate := s.lambda[base+k]
			if rate <= 0 {
				yn[m][k] = 1 // zero load: free to serve even with no bandwidth left
				continue
			}
			if remaining <= 0 {
				continue
			}
			frac := remaining / rate
			if frac > 1 {
				frac = 1
			}
			yn[m][k] = frac
			remaining -= rate * frac
		}
	}
}

// SolveDual runs one dual iteration's P2 solves — every (t, n) pair, warm-
// started from the previous iteration's iterate — as a flat work list on
// the shared worker pool, and returns the total objective Σ_t Σ_n
// accumulated in the sequential reference order. mu may be nil (zero
// duals); its rows are read but never retained. Iterates stay inside the
// workspace: read them with DualY or materialise plans with ExportPlans.
func (ws *Workspace) SolveDual(ctx context.Context, mu [][][]float64, opts convex.Options) (float64, error) {
	ws.mu = mu
	ws.opts = opts
	err := parallel.For(ctx, len(ws.slots), 0, ws.dualFn)
	ws.mu = nil
	if err != nil {
		// A bare dispatch-time cancellation from parallel.For needs the
		// package prefix; slot errors arrive already wrapped. Matching with
		// errors.Is (not ==) also catches cause-carrying context errors.
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return 0, fmt.Errorf("loadbalance: %w", err)
		}
		return 0, err
	}
	var total float64
	for t := 0; t < ws.in.T; t++ {
		var slot float64
		for n := 0; n < ws.in.N; n++ {
			slot += ws.objs[t*ws.in.N+n]
		}
		total += slot
	}
	return total, nil
}

// SolveDualDirty is SolveDual with an event-driven dirty list: dirty[t][n]
// certifies whether slot (t, n)'s effective μ row changed since the
// previous dual iteration. A clean slot whose last solve was a bitwise
// fixed point under the same options is skipped outright — determinism
// guarantees a re-solve would reproduce the identical iterate and
// objective, so both are kept (DESIGN.md §12). Clean slots without the
// fixed-point certificate re-solve as usual; a nil dirty list degrades to
// plain SolveDual. Passing dirty = false for a row whose μ actually moved
// is a contract violation and yields stale results.
func (ws *Workspace) SolveDualDirty(ctx context.Context, mu [][][]float64, opts convex.Options, dirty [][]bool) (float64, error) {
	if dirty != nil && len(dirty) != ws.in.T {
		return 0, fmt.Errorf("loadbalance: dirty list covers %d slots, want %d", len(dirty), ws.in.T)
	}
	ws.dirty = dirty
	total, err := ws.SolveDual(ctx, mu, opts)
	ws.dirty = nil
	return total, err
}

// Invalidate discards the workspace's binding: the next Bind or
// BindAdvance rebuilds every per-slot state from scratch instead of
// rotating or reusing it. Callers use it when the bound state may be
// inconsistent — e.g. a panic interrupted a bind midway.
func (ws *Workspace) Invalidate() { ws.in = nil }

// ExportIterates returns deep copies of the per-(t, n) dual load
// iterates and their compact-path invariants, indexed t·N + n — the
// cross-window warm-start state a snapshot must carry (everything else
// the next bind recomputes from the instance). Valid only while the
// workspace is bound.
func (ws *Workspace) ExportIterates() ([][]float64, []bool) {
	y := make([][]float64, len(ws.slots))
	ok := make([]bool, len(ws.slots))
	for i, s := range ws.slots {
		y[i] = append([]float64(nil), s.y[:s.dim]...)
		ok[i] = s.compactOK
	}
	return y, ok
}

// ImportIterates loads previously exported dual iterates into a freshly
// bound workspace (restore path): iterate values and compactOK flags are
// taken verbatim, the fixed-point certificates stay dead (the next bind
// kills them on the live path too, so restored and uninterrupted
// workspaces are indistinguishable to the solver).
func (ws *Workspace) ImportIterates(y [][]float64, compactOK []bool) error {
	if len(y) != len(ws.slots) || len(compactOK) != len(ws.slots) {
		return fmt.Errorf("loadbalance: %d iterates for %d slots", len(y), len(ws.slots))
	}
	for i, s := range ws.slots {
		if len(y[i]) != s.dim {
			return fmt.Errorf("loadbalance: iterate %d has %d entries, want %d", i, len(y[i]), s.dim)
		}
		copy(s.y[:s.dim], y[i])
		s.compactOK = compactOK[i]
		s.fixed = false
	}
	return nil
}

// DualY returns the live dual iterate of slot (t, n) as a flat
// (class, content) row. It aliases workspace state: valid until the next
// SolveDual or Bind, and must not be mutated.
func (ws *Workspace) DualY(t, n int) []float64 {
	return ws.slots[t*ws.in.N+n].y
}

// ExportPlans materialises the current dual iterates as per-slot load
// plans (freshly allocated; safe to retain).
func (ws *Workspace) ExportPlans() []model.LoadPlan {
	in := ws.in
	plans := make([]model.LoadPlan, in.T)
	for t := range plans {
		plans[t] = model.NewLoadPlan(in.Classes, in.K)
		for n := 0; n < in.N; n++ {
			y := ws.slots[t*in.N+n].y
			for m := 0; m < in.Classes[n]; m++ {
				copy(plans[t][n][m], y[m*in.K:(m+1)*in.K])
			}
		}
	}
	return plans
}

// seedWarm loads external warm-start plans into the dual iterates —
// SolveAll's warm parameter. Nil per-slot entries keep the zero start.
func (ws *Workspace) seedWarm(warm []model.LoadPlan) {
	in := ws.in
	for t := 0; t < in.T; t++ {
		if warm[t] == nil {
			continue
		}
		for n := 0; n < in.N; n++ {
			s := ws.slots[t*in.N+n]
			for m := 0; m < in.Classes[n]; m++ {
				copy(s.y[m*in.K:(m+1)*in.K], warm[t][n][m])
			}
			s.refreshCompactOK()
			s.fixed = false // the iterate moved under the solver's feet
		}
	}
}

// refreshCompactOK re-derives the pruning invariant after an external
// warm start: the compact dual path is exact only while every inactive
// (λ = 0) coordinate of the iterate is exactly 0. Warm plans produced by
// the greedy recovery set y = 1 on cached zero-rate items, which the
// dense solve would carry along; such slots take the dense path.
func (s *slotState) refreshCompactOK() {
	if s.act == nil {
		return
	}
	ai := 0
	for i, v := range s.y {
		if ai < len(s.act) && s.act[ai] == i {
			ai++
			continue
		}
		if v != 0 {
			s.compactOK = false
			return
		}
	}
	s.compactOK = true
}

// Recover completes integral placements into a feasible trajectory — the
// UB evaluation of Algorithm 1 — solving the (t, n) recovery subproblems
// on the shared pool. The returned trajectory owns freshly allocated
// plans; the dual iterates are untouched.
func (ws *Workspace) Recover(ctx context.Context, xPlans []model.CachePlan, opts convex.Options) (model.Trajectory, error) {
	in := ws.in
	if len(xPlans) != in.T {
		return nil, fmt.Errorf("loadbalance: %d placements for horizon %d", len(xPlans), in.T)
	}
	traj := make(model.Trajectory, in.T)
	for t := range traj {
		traj[t] = model.SlotDecision{X: xPlans[t].Clone(), Y: model.NewLoadPlan(in.Classes, in.K)}
	}
	ws.recX, ws.recTraj, ws.opts = xPlans, traj, opts
	err := parallel.For(ctx, len(ws.slots), 0, ws.recFn)
	ws.recX, ws.recTraj = nil, nil
	if err != nil {
		return nil, err
	}
	return traj, nil
}
