package loadbalance

import (
	"context"
	"math/rand/v2"
	"reflect"
	"testing"

	"edgecache/internal/convex"
	"edgecache/internal/model"
	"edgecache/internal/workload"
)

func sparseInstance(t *testing.T) *model.Instance {
	t.Helper()
	cfg := workload.PaperDefault()
	cfg.N = 2
	cfg.T = 3
	cfg.K = 30
	cfg.ClassesPerSBS = 3
	in, err := workload.BuildInstanceWith(cfg, workload.WithSparse(6))
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// TestCompactDualSolveMatchesReference pins the compact-plane bit-exactness
// claim: on a sparse instance the workspace takes the active-coordinate
// path (act != nil) and must land on byte-identical plans and objectives
// as the dense reference solver.
func TestCompactDualSolveMatchesReference(t *testing.T) {
	in := sparseInstance(t)
	ws := NewWorkspace()
	ws.Bind(in)
	compact := 0
	for i := range ws.slots {
		if ws.slots[i].act != nil {
			compact++
		}
	}
	if compact == 0 {
		t.Fatal("no slot took the compact path — the instance is not sparse enough to test it")
	}

	rng := rand.New(rand.NewPCG(41, 42))
	opts := convex.Options{StepTol: 1e-6, MaxIter: 600}
	mu := randomMu(rng, in, 2.0)
	wantPlans, wantTotal := referenceSolveAll(t, in, mu, nil, opts)
	gotTotal, err := ws.SolveDual(context.Background(), mu, opts)
	if err != nil {
		t.Fatal(err)
	}
	gotPlans := ws.ExportPlans()
	if gotTotal != wantTotal || !reflect.DeepEqual(gotPlans, wantPlans) {
		t.Fatal("compact dual solve diverges from the dense reference")
	}

	// Warm restart (the primal-dual steady state) must stay bit-exact too.
	mu2 := randomMu(rng, in, 2.0)
	wantPlans2, wantTotal2 := referenceSolveAll(t, in, mu2, wantPlans, opts)
	gotTotal2, err := ws.SolveDual(context.Background(), mu2, opts)
	if err != nil {
		t.Fatal(err)
	}
	gotPlans2 := ws.ExportPlans()
	if gotTotal2 != wantTotal2 || !reflect.DeepEqual(gotPlans2, wantPlans2) {
		t.Fatal("warm compact dual solve diverges from the dense reference")
	}
}

// TestCompactDualSolveZeroAllocs extends the zero-allocation guard to the
// pruned sweep: once warm, a compact per-slot dual solve must not touch
// the heap either.
func TestCompactDualSolveZeroAllocs(t *testing.T) {
	in := sparseInstance(t)
	ws := NewWorkspace()
	ws.Bind(in)
	rng := rand.New(rand.NewPCG(51, 52))
	opts := convex.Options{StepTol: 1e-6, MaxIter: 600}
	mu := randomMu(rng, in, 2.0)
	if _, err := ws.SolveDual(context.Background(), mu, opts); err != nil {
		t.Fatal(err)
	}

	var s *slotState
	for i := range ws.slots {
		if ws.slots[i].act != nil {
			s = ws.slots[i]
			break
		}
	}
	if s == nil {
		t.Fatal("no compact slot to measure")
	}
	muRow := mu[s.t][s.n]
	if allocs := testing.AllocsPerRun(50, func() {
		if _, err := s.solveDual(muRow, opts); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("steady-state compact dual solve allocates %.0f objects/op, want 0", allocs)
	}
}
