package loadbalance

import (
	"context"
	"math/rand/v2"
	"testing"

	"edgecache/internal/convex"
	"edgecache/internal/model"
	"edgecache/internal/workload"
)

// dirtyTestInstance is the shared fixture of the delta-aware P2 tests:
// small enough to iterate fast, with an MBS cost component so the
// non-greedy recovery path is exercised.
func dirtyTestInstance(t *testing.T, horizon int) *model.Instance {
	t.Helper()
	cfg := workload.PaperDefault()
	cfg.N = 2
	cfg.T = horizon
	cfg.K = 8
	cfg.ClassesPerSBS = 3
	cfg.OmegaSBSRatio = 0.3
	in, err := workload.BuildInstance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// TestSolveDualDirtyMatchesFull locksteps the dirty-list path against the
// solve-everything path through a dual-iteration-shaped μ sequence where
// only some rows move, and checks every iteration produces bit-identical
// iterates and totals — the exactness contract of the dirty-(t, n) list.
// Rows with very large μ pin their iterate at zero, which the solver
// certifies as a bitwise fixed point, so the skip path demonstrably fires.
func TestSolveDualDirtyMatchesFull(t *testing.T) {
	in := dirtyTestInstance(t, 4)
	wsA := NewWorkspace()
	wsA.Bind(in)
	wsB := NewWorkspace()
	wsB.Bind(in)

	rng := rand.New(rand.NewPCG(21, 2))
	opts := convex.Options{StepTol: 1e-8, MaxIter: 800}
	mu := randomMu(rng, in, 1.0)
	dirty := make([][]bool, in.T)
	// Per-row μ scale: even rows huge (the dual prices every assignment
	// out, pinning y ≡ 0 — an exact fixed point), odd rows moderate.
	scale := func(tt, n int) float64 {
		if (tt+n)%2 == 0 {
			return 200
		}
		return 0.8
	}
	for tt := range dirty {
		dirty[tt] = make([]bool, in.N)
		for n := range dirty[tt] {
			for i := range mu[tt][n] {
				mu[tt][n][i] = rng.Float64() * scale(tt, n)
			}
		}
	}

	skipsBefore := mSlotSkips.Value()
	for iter := 0; iter < 10; iter++ {
		for tt := range dirty {
			for n := range dirty[tt] {
				dirty[tt][n] = iter == 0 || rng.Float64() < 0.4
				if dirty[tt][n] && iter > 0 {
					for i := range mu[tt][n] {
						mu[tt][n][i] = rng.Float64() * scale(tt, n)
					}
				}
			}
		}
		gotTotal, err := wsA.SolveDualDirty(context.Background(), mu, opts, dirty)
		if err != nil {
			t.Fatal(err)
		}
		wantTotal, err := wsB.SolveDual(context.Background(), mu, opts)
		if err != nil {
			t.Fatal(err)
		}
		if gotTotal != wantTotal {
			t.Fatalf("iter %d: dirty-list total %v, full-solve total %v", iter, gotTotal, wantTotal)
		}
		for tt := 0; tt < in.T; tt++ {
			for n := 0; n < in.N; n++ {
				yA, yB := wsA.DualY(tt, n), wsB.DualY(tt, n)
				for i := range yA {
					if yA[i] != yB[i] {
						t.Fatalf("iter %d (t=%d, n=%d, i=%d): dirty-list iterate %v, full-solve %v",
							iter, tt, n, i, yA[i], yB[i])
					}
				}
			}
		}
	}
	if skips := mSlotSkips.Value() - skipsBefore; skips == 0 {
		t.Fatal("no slot was ever skipped: the fixed-point certificate never engaged")
	}
}

// TestFixedPointResolveIsIdentity solves one slot to a bitwise fixed
// point and verifies the skip rule's premise directly: re-solving with
// the same μ row reproduces the identical iterate and objective.
func TestFixedPointResolveIsIdentity(t *testing.T) {
	in := dirtyTestInstance(t, 2)
	ws := NewWorkspace()
	ws.Bind(in)
	rng := rand.New(rand.NewPCG(3, 33))
	mu := randomMu(rng, in, 300) // price everything out: y* = 0 exactly
	opts := convex.Options{StepTol: 1e-8, MaxIter: 800}
	if _, err := ws.SolveDual(context.Background(), mu, opts); err != nil {
		t.Fatal(err)
	}
	var s *slotState
	for _, cand := range ws.slots {
		if cand.fixed {
			s = cand
			break
		}
	}
	if s == nil {
		t.Fatal("no slot reached a bitwise fixed point under saturating μ")
	}
	before := append([]float64(nil), s.y[:s.dim]...)
	objA, err := s.solveDual(mu[s.t][s.n], opts)
	if err != nil {
		t.Fatal(err)
	}
	objB, err := s.solveDual(mu[s.t][s.n], opts)
	if err != nil {
		t.Fatal(err)
	}
	if objA != objB {
		t.Fatalf("re-solve at fixed point changed the objective: %v -> %v", objA, objB)
	}
	for i, v := range before {
		if s.y[i] != v {
			t.Fatalf("re-solve at fixed point moved y[%d]: %v -> %v", i, v, s.y[i])
		}
	}
	if !s.fixed {
		t.Fatal("fixed-point certificate lost across an identity re-solve")
	}
}

// TestBindAdvanceMatchesBind slides a workspace across overlapping
// windows of one long instance and checks both halves of the contract:
// without iterate carry the rotated rebind is indistinguishable from a
// fresh Bind (bit-identical solves), and with carry the first solve of
// the new window equals the reference path warm-started from the previous
// window's iterate for the same absolute slot.
func TestBindAdvanceMatchesBind(t *testing.T) {
	full := dirtyTestInstance(t, 6)
	const w = 4
	win := func(from int) *model.Instance {
		sub, err := full.Window(from, from+w, full.InitialPlan(), nil)
		if err != nil {
			t.Fatal(err)
		}
		return sub
	}
	opts := convex.Options{StepTol: 1e-7, MaxIter: 600}
	rng := rand.New(rand.NewPCG(17, 4))

	w0, w1 := win(0), win(1)
	muW0 := randomMu(rng, w0, 1.5)
	muW1 := randomMu(rng, w1, 1.5)

	// No carry: BindAdvance must reproduce a fresh Bind bit for bit.
	wsA := NewWorkspace()
	wsA.Bind(w0)
	if _, err := wsA.SolveDual(context.Background(), muW0, opts); err != nil {
		t.Fatal(err)
	}
	rotated := wsA.slots[1*w0.N] // state of absolute slot 1 before the slide
	wsA.BindAdvance(w1, 1, false)
	if wsA.slots[0] != rotated {
		t.Fatal("BindAdvance did not rotate the overlapping slot state by pointer")
	}
	wsFresh := NewWorkspace()
	wsFresh.Bind(w1)
	gotA, err := wsA.SolveDual(context.Background(), muW1, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := wsFresh.SolveDual(context.Background(), muW1, opts)
	if err != nil {
		t.Fatal(err)
	}
	if gotA != want {
		t.Fatalf("BindAdvance(carry=false) total %v, fresh Bind total %v", gotA, want)
	}
	for tt := 0; tt < w1.T; tt++ {
		for n := 0; n < w1.N; n++ {
			yA, yF := wsA.DualY(tt, n), wsFresh.DualY(tt, n)
			for i := range yA {
				if yA[i] != yF[i] {
					t.Fatalf("carry=false (t=%d, n=%d, i=%d): advanced %v, fresh %v", tt, n, i, yA[i], yF[i])
				}
			}
		}
	}

	// Carry: the rotated slots start from the previous window's iterate
	// for the same absolute slot; the solve must equal the reference path
	// warm-started from exactly that iterate.
	wsC := NewWorkspace()
	wsC.Bind(w0)
	if _, err := wsC.SolveDual(context.Background(), muW0, opts); err != nil {
		t.Fatal(err)
	}
	carried := make([][]float64, 0, (w-1)*w0.N)
	for tt := 1; tt < w; tt++ {
		for n := 0; n < w0.N; n++ {
			carried = append(carried, append([]float64(nil), wsC.DualY(tt, n)...))
		}
	}
	wsC.BindAdvance(w1, 1, true)
	for i, tt := 0, 0; tt < w-1; tt++ {
		for n := 0; n < w1.N; n++ {
			y := wsC.DualY(tt, n)
			for j := range y {
				if y[j] != carried[i][j] {
					t.Fatalf("carry=true dropped the iterate at (t=%d, n=%d, j=%d)", tt, n, j)
				}
			}
			i++
		}
	}
	if _, err := wsC.SolveDual(context.Background(), muW1, opts); err != nil {
		t.Fatal(err)
	}
	for i, tt := 0, 0; tt < w-1; tt++ {
		for n := 0; n < w1.N; n++ {
			sp := ForInstance(w1, tt, n, muW1[tt][n], nil)
			wantY, _, err := sp.Solve(carried[i], opts)
			if err != nil {
				t.Fatal(err)
			}
			got := wsC.DualY(tt, n)
			for j := range got {
				if got[j] != wantY[j] {
					t.Fatalf("carry=true (t=%d, n=%d, j=%d): workspace %v, reference %v", tt, n, j, got[j], wantY[j])
				}
			}
			i++
		}
	}
}

// TestRecoveryReplayMatchesSolve checks the recovery memoisation: a
// repeated placement row replays the cached load split bit for bit and
// skips the minimiser, while a changed row re-solves.
func TestRecoveryReplayMatchesSolve(t *testing.T) {
	in := dirtyTestInstance(t, 3)
	ws := NewWorkspace()
	ws.Bind(in)
	rng := rand.New(rand.NewPCG(29, 7))
	opts := convex.Options{StepTol: 1e-7, MaxIter: 600}

	xPlans := make([]model.CachePlan, in.T)
	for tt := range xPlans {
		xPlans[tt] = model.NewCachePlan(in.N, in.K)
		for n := 0; n < in.N; n++ {
			for k := 0; k < in.K; k++ {
				if rng.Float64() < 0.5 {
					xPlans[tt][n][k] = 1
				}
			}
		}
	}
	first, err := ws.Recover(context.Background(), xPlans, opts)
	if err != nil {
		t.Fatal(err)
	}
	replaysBefore := mRecReplays.Value()
	second, err := ws.Recover(context.Background(), xPlans, opts)
	if err != nil {
		t.Fatal(err)
	}
	if replays := mRecReplays.Value() - replaysBefore; replays == 0 {
		t.Fatal("repeated placements did not replay any cached recovery")
	}
	for tt := range first {
		for n := range first[tt].Y {
			for m := range first[tt].Y[n] {
				for k, v := range first[tt].Y[n][m] {
					if second[tt].Y[n][m][k] != v {
						t.Fatalf("replayed recovery diverged at (t=%d, n=%d, m=%d, k=%d)", tt, n, m, k)
					}
				}
			}
		}
	}

	// Flip one placement: that slot must re-solve, and the result must
	// match a fresh workspace's recovery of the same placements.
	xPlans[1][0][2] = 1 - xPlans[1][0][2]
	third, err := ws.Recover(context.Background(), xPlans, opts)
	if err != nil {
		t.Fatal(err)
	}
	wsFresh := NewWorkspace()
	wsFresh.Bind(in)
	want, err := wsFresh.Recover(context.Background(), xPlans, opts)
	if err != nil {
		t.Fatal(err)
	}
	for tt := range want {
		for n := range want[tt].Y {
			for m := range want[tt].Y[n] {
				for k, v := range want[tt].Y[n][m] {
					if third[tt].Y[n][m][k] != v {
						t.Fatalf("post-flip recovery diverged at (t=%d, n=%d, m=%d, k=%d)", tt, n, m, k)
					}
				}
			}
		}
	}
}
