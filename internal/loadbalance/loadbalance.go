// Package loadbalance solves the paper's load-balancing subproblem P2
// (eq. 19). For fixed dual multipliers μ the problem separates per SBS and
// slot into
//
//	min  ( A − Σ_i w_i y_i )²  +  ( Σ_i ŵ_i y_i )²  +  Σ_i μ_i y_i
//	s.t. 0 ≤ y_i ≤ u_i,   Σ_i λ_i y_i ≤ B,
//
// over the flattened (class, content) coordinates i = m·K + k, where
// w_i = ω_m λ_i and ŵ_i = ŵ_m λ_i, and A = Σ_i w_i is the all-BS load.
// The first term is f_t, the second g_t, and the linear term comes from
// relaxing the coupling y ≤ x.
//
// The objective is convex and L-smooth with the exact constant
// L = 2(‖w‖² + ‖ŵ‖²); the solver is FISTA (package convex) over the
// box-and-knapsack set projected by package projection.
//
// The same machinery also recovers the best feasible load split for a
// fixed placement x (OptimalGivenPlacement): set μ = 0 and tighten the
// upper bounds to u_i = x_{n,k}. That routine is used to turn the
// primal-dual iterates into feasible solutions, and gives the LRFU
// baseline its (most favourable) load split.
package loadbalance

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"edgecache/internal/convex"
	"edgecache/internal/mat"
	"edgecache/internal/model"
	"edgecache/internal/obs"
	"edgecache/internal/projection"
)

// Always-on P2 metrics (atomic; read by -metrics and /debug/vars).
var (
	mSlotSolves = obs.Default.Counter("loadbalance.p2_solves")
	mGradSteps  = obs.Default.Counter("loadbalance.p2_gradient_steps")
	mSolveTime  = obs.Default.Timer("loadbalance.p2_solve")
)

// SlotProblem is P2 for one (SBS, slot) pair over M·K coordinates.
type SlotProblem struct {
	// M and K are the class and content counts.
	M, K int
	// Lambda is the flat rate vector λ_i, length M·K.
	Lambda []float64
	// OmegaBS and OmegaSBS are the per-class weights ω_m and ŵ_m, length M.
	OmegaBS, OmegaSBS []float64
	// Bandwidth is the knapsack budget B.
	Bandwidth float64
	// Mu is the linear dual term (length M·K); nil means zero.
	Mu []float64
	// Upper are per-coordinate upper bounds u_i ∈ [0, 1] (length M·K);
	// nil means all ones. Fixing a placement passes u_i = x_{n,k}.
	Upper []float64
}

func (p *SlotProblem) validate() error {
	n := p.M * p.K
	if p.M <= 0 || p.K <= 0 {
		return fmt.Errorf("loadbalance: M = %d, K = %d, want > 0", p.M, p.K)
	}
	if len(p.Lambda) != n {
		return fmt.Errorf("loadbalance: lambda has %d entries, want %d", len(p.Lambda), n)
	}
	if len(p.OmegaBS) != p.M || len(p.OmegaSBS) != p.M {
		return fmt.Errorf("loadbalance: omega lengths (%d, %d), want %d", len(p.OmegaBS), len(p.OmegaSBS), p.M)
	}
	if p.Bandwidth < 0 {
		return fmt.Errorf("loadbalance: bandwidth = %g, want ≥ 0", p.Bandwidth)
	}
	if p.Mu != nil && len(p.Mu) != n {
		return fmt.Errorf("loadbalance: mu has %d entries, want %d", len(p.Mu), n)
	}
	if p.Upper != nil && len(p.Upper) != n {
		return fmt.Errorf("loadbalance: upper has %d entries, want %d", len(p.Upper), n)
	}
	return nil
}

// Objective evaluates the slot objective at y.
func (p *SlotProblem) Objective(y []float64) float64 {
	f, g := p.OperatingCosts(y)
	obj := f + g
	if p.Mu != nil {
		obj += mat.Dot(p.Mu, y)
	}
	return obj
}

// OperatingCosts returns the f (BS) and g (SBS) components at y.
func (p *SlotProblem) OperatingCosts(y []float64) (f, g float64) {
	var u, v, a float64
	for m := 0; m < p.M; m++ {
		base := m * p.K
		var served float64
		for k := 0; k < p.K; k++ {
			served += p.Lambda[base+k] * y[base+k]
		}
		var total float64
		for k := 0; k < p.K; k++ {
			total += p.Lambda[base+k]
		}
		u += p.OmegaBS[m] * served
		a += p.OmegaBS[m] * total
		v += p.OmegaSBS[m] * served
	}
	return (a - u) * (a - u), v * v
}

// Solve minimises the slot objective to tolerance and returns the optimal
// y (length M·K) and its objective value. start, when non-nil, warm-starts
// the iteration (it is projected onto the feasible set first); the
// primal-dual loop passes the previous iterate to cut solve time sharply.
func (p *SlotProblem) Solve(start []float64, opts convex.Options) ([]float64, float64, error) {
	if err := p.validate(); err != nil {
		return nil, 0, err
	}
	n := p.M * p.K
	if start != nil && len(start) != n {
		return nil, 0, fmt.Errorf("loadbalance: start has %d entries, want %d", len(start), n)
	}

	// Precompute w, ŵ and A.
	w := make([]float64, n)
	wh := make([]float64, n)
	var a float64
	for m := 0; m < p.M; m++ {
		base := m * p.K
		for k := 0; k < p.K; k++ {
			w[base+k] = p.OmegaBS[m] * p.Lambda[base+k]
			wh[base+k] = p.OmegaSBS[m] * p.Lambda[base+k]
			a += w[base+k]
		}
	}

	lo := make([]float64, n)
	hi := make([]float64, n)
	if p.Upper != nil {
		copy(hi, p.Upper)
		for i, v := range hi {
			hi[i] = mat.Clamp(v, 0, 1)
		}
	} else {
		for i := range hi {
			hi[i] = 1
		}
	}

	prob := convex.Problem{
		Func: func(y []float64) float64 {
			u := mat.Dot(w, y)
			v := mat.Dot(wh, y)
			obj := (a-u)*(a-u) + v*v
			if p.Mu != nil {
				obj += mat.Dot(p.Mu, y)
			}
			return obj
		},
		Grad: func(y, grad []float64) {
			u := mat.Dot(w, y)
			v := mat.Dot(wh, y)
			cu := -2 * (a - u)
			cv := 2 * v
			for i := range grad {
				grad[i] = cu*w[i] + cv*wh[i]
				if p.Mu != nil {
					grad[i] += p.Mu[i]
				}
			}
		},
		Project: func(dst, z []float64) ([]float64, error) {
			return projection.BoxKnapsack(dst, z, lo, hi, p.Lambda, p.Bandwidth)
		},
	}

	if opts.Lipschitz <= 0 {
		// Exact smoothness constant of the two rank-one quadratics; the
		// linear term contributes nothing. Clamp away zero for the fully
		// degenerate (all-weights-zero) case, where any step converges.
		nw := mat.Norm2(w)
		nh := mat.Norm2(wh)
		opts.Lipschitz = math.Max(2*(nw*nw+nh*nh), 1e-9)
	}
	if opts.MaxIter == 0 {
		opts.MaxIter = 3000
	}
	if opts.StepTol == 0 {
		opts.StepTol = 1e-10
	}

	x0 := start
	if x0 == nil {
		x0 = make([]float64, n)
	}
	solveStart := time.Now()
	res, err := convex.Minimize(prob, x0, opts)
	if err != nil {
		return nil, 0, fmt.Errorf("loadbalance: %w", err)
	}
	mSlotSolves.Inc()
	mGradSteps.Add(int64(res.Iterations))
	mSolveTime.Observe(time.Since(solveStart))
	return res.X, res.Value, nil
}

// ForInstance builds the slot problem of (t, n) from an instance. mu and
// upper may be nil (zero duals, unit bounds).
func ForInstance(in *model.Instance, t, n int, mu, upper []float64) *SlotProblem {
	return &SlotProblem{
		M:         in.Classes[n],
		K:         in.K,
		Lambda:    in.Demand.CopySlot(nil, t, n),
		OmegaBS:   in.OmegaBS[n],
		OmegaSBS:  in.OmegaSBS[n],
		Bandwidth: in.BandwidthAt(t, n),
		Mu:        mu,
		Upper:     upper,
	}
}

// SolveAll solves P2 for every (t, n) of an instance given flat dual rows
// mu[t][n] (each of length M_n·K; the outer slices may be nil for zero
// duals) and returns per-slot load plans plus the total P2 objective.
// warm, when non-nil, supplies the previous iterate's load plans as warm
// starts. The (slot, SBS) subproblems are independent and solved in
// parallel on the shared worker pool; cancellation is checked at per-slot
// granularity and surfaces as a wrapped ctx.Err().
//
// SolveAll builds a throwaway Workspace per call; the primal-dual loop
// holds one across its iterations instead, which is where the warm starts
// and precomputations pay off.
func SolveAll(ctx context.Context, in *model.Instance, mu [][][]float64, warm []model.LoadPlan, opts convex.Options) ([]model.LoadPlan, float64, error) {
	if mu != nil && len(mu) != in.T {
		return nil, 0, fmt.Errorf("loadbalance: mu covers %d slots, want %d", len(mu), in.T)
	}
	if warm != nil && len(warm) != in.T {
		return nil, 0, fmt.Errorf("loadbalance: warm start covers %d slots, want %d", len(warm), in.T)
	}
	ws := NewWorkspace()
	ws.Bind(in)
	if warm != nil {
		ws.seedWarm(warm)
	}
	total, err := ws.SolveDual(ctx, mu, opts)
	if err != nil {
		return nil, 0, err
	}
	return ws.ExportPlans(), total, nil
}

// OptimalGivenPlacement returns the cost-minimal feasible load split for
// slot t when the placement x is fixed: the coupling y ≤ x becomes the
// upper bound, μ = 0, and the bandwidth knapsack applies. This is the
// primal-recovery step of Algorithm 1 and the fair load split handed to
// the baselines.
//
// When every ŵ_m is zero (the paper's headline setup) the objective
// reduces to (A − Σ w_i y_i)², which is minimised by maximising the served
// weighted load — an exact fractional knapsack solved greedily by the
// ratio w_i/λ_i = ω_m. Otherwise the FISTA path is used.
func OptimalGivenPlacement(in *model.Instance, t int, x model.CachePlan, opts convex.Options) (model.LoadPlan, error) {
	y := model.NewLoadPlan(in.Classes, in.K)
	for n := 0; n < in.N; n++ {
		if allZero(in.OmegaSBS[n]) {
			greedyGivenPlacement(in, t, n, x[n], y[n])
			continue
		}
		upper := make([]float64, in.Classes[n]*in.K)
		for m := 0; m < in.Classes[n]; m++ {
			copy(upper[m*in.K:(m+1)*in.K], x[n])
		}
		sp := ForInstance(in, t, n, nil, upper)
		sol, _, err := sp.Solve(nil, opts)
		if err != nil {
			return nil, fmt.Errorf("loadbalance: slot %d SBS %d: %w", t, n, err)
		}
		for m := 0; m < in.Classes[n]; m++ {
			copy(y[n][m], sol[m*in.K:(m+1)*in.K])
		}
	}
	return y, nil
}

func allZero(v []float64) bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

// greedyGivenPlacement fills yn with the exact fractional-knapsack optimum
// for ŵ = 0: serve cached demand in decreasing ω_m until the bandwidth is
// exhausted. Ties in ω are broken by class index for determinism.
// Zero-rate cached items are always served — they add no load and save
// their (zero) cost — even once the bandwidth is spent.
func greedyGivenPlacement(in *model.Instance, t, n int, xn []float64, yn [][]float64) {
	order := make([]int, in.Classes[n])
	for m := range order {
		order[m] = m
	}
	omega := in.OmegaBS[n]
	sort.SliceStable(order, func(i, j int) bool { return omega[order[i]] > omega[order[j]] })
	remaining := in.BandwidthAt(t, n)
	for _, m := range order {
		for k := 0; k < in.K; k++ {
			if xn[k] < 0.5 {
				continue
			}
			rate := in.Demand.At(t, n, m, k)
			if rate <= 0 {
				yn[m][k] = 1 // free to serve: zero load, zero cost
				continue
			}
			if remaining <= 0 {
				continue
			}
			frac := remaining / rate
			if frac > 1 {
				frac = 1
			}
			yn[m][k] = frac
			remaining -= rate * frac
		}
	}
}
