package loadbalance

import (
	"testing"

	"edgecache/internal/model"
	"edgecache/internal/workload"
)

func seamInstance(t *testing.T) *model.Instance {
	t.Helper()
	cfg := workload.PaperDefault()
	cfg.N = 1
	cfg.T = 12
	cfg.K = 4
	cfg.ClassesPerSBS = 2
	in, err := workload.BuildInstance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// tagIterates overwrites every slot's first iterate coordinate with a
// recognisable per-window-slot tag so rotation is observable through
// ExportIterates. Rotation-only: the workspace must not solve afterwards.
func tagIterates(t *testing.T, ws *Workspace, slots int) {
	t.Helper()
	y, ok := ws.ExportIterates()
	if len(y) != slots {
		t.Fatalf("workspace has %d slot states, want %d", len(y), slots)
	}
	for i := range y {
		y[i][0] = float64(100 + i)
	}
	if err := ws.ImportIterates(y, ok); err != nil {
		t.Fatal(err)
	}
}

// TestBindAdvanceTailShrink pins the window-shrink case at the horizon
// tail (to − from < w): when the next window is shorter than the
// previous one, the overlap clamps to the new horizon, every surviving
// slot state must hold the *new* window's demand plane for its absolute
// slot, and carried iterates must land on the correct absolute slots —
// no stale trailing planes from the longer previous window.
func TestBindAdvanceTailShrink(t *testing.T) {
	in := seamInstance(t)
	init := in.InitialPlan()

	sliceA, err := in.Demand.Slice(8, 12)
	if err != nil {
		t.Fatal(err)
	}
	winA, err := in.Window(8, 12, init, sliceA) // T = 4
	if err != nil {
		t.Fatal(err)
	}
	sliceB, err := in.Demand.Slice(9, 12)
	if err != nil {
		t.Fatal(err)
	}
	winB, err := in.Window(9, 12, init, sliceB) // T = 3: the shrunk tail
	if err != nil {
		t.Fatal(err)
	}

	ws := NewWorkspace()
	ws.Bind(winA)
	tagIterates(t, ws, 4)
	ws.BindAdvance(winB, 1, true)

	y, _ := ws.ExportIterates()
	if len(y) != 3 {
		t.Fatalf("shrunk window has %d slot states, want 3", len(y))
	}
	var lam []float64
	for tt := 0; tt < 3; tt++ {
		// Window slot tt of winB is absolute slot 9+tt = winA slot tt+1.
		if got, want := y[tt][0], float64(100+tt+1); got != want {
			t.Errorf("tail slot %d carries iterate tag %g, want %g", tt, got, want)
		}
		lam = winB.Demand.CopySlot(lam, tt, 0)
		if !equalFloats(lam, ws.slots[tt].lambda) {
			t.Errorf("tail slot %d holds a stale demand plane", tt)
		}
		if ws.slots[tt].t != tt {
			t.Errorf("tail slot %d records window slot %d", tt, ws.slots[tt].t)
		}
	}
}

// TestBindAdvanceTrustsTheHintOnStationaryPlanes is the mechanism behind
// the online seam bug this revision fixes: BindAdvance verifies each
// rotated slot's demand plane bitwise, but two window slots with
// identical planes (stationary demand) are indistinguishable, so a
// misaligned advance hint is accepted *silently* and carries dual
// iterates onto the wrong absolute slots. The caller's hint must
// therefore be exact — measured from the window the workspace really
// bound, which is what online.versionState's separate workspace seam
// guarantees.
func TestBindAdvanceTrustsTheHintOnStationaryPlanes(t *testing.T) {
	in := seamInstance(t)
	init := in.InitialPlan()

	// A stationary forecast: every slot of both windows sees the bitwise
	// same demand plane (slot 0 of the base tensor, repeated).
	stationary := func(slots int) *model.Demand {
		d := model.NewDemand(slots, in.Classes, in.K)
		var row []float64
		row = in.Demand.CopySlot(row, 0, 0)
		for tt := 0; tt < slots; tt++ {
			for m := 0; m < in.Classes[0]; m++ {
				for k := 0; k < in.K; k++ {
					if v := row[m*in.K+k]; v != 0 {
						d.Set(tt, 0, m, k, v)
					}
				}
			}
		}
		return d
	}
	winA, err := in.Window(0, 4, init, stationary(4))
	if err != nil {
		t.Fatal(err)
	}
	winB, err := in.Window(1, 5, init, stationary(4)) // true shift: 1 slot
	if err != nil {
		t.Fatal(err)
	}

	carried := func(advance int) []float64 {
		ws := NewWorkspace()
		ws.Bind(winA)
		tagIterates(t, ws, 4)
		ws.BindAdvance(winB, advance, true)
		y, _ := ws.ExportIterates()
		tags := make([]float64, len(y))
		for i := range y {
			tags[i] = y[i][0]
		}
		return tags
	}

	aligned := carried(1)
	misaligned := carried(2)
	// The aligned hint carries winA slot tt+1 into winB slot tt.
	for tt := 0; tt < 3; tt++ {
		if got, want := aligned[tt], float64(100+tt+1); got != want {
			t.Fatalf("aligned advance: slot %d carries tag %g, want %g", tt, got, want)
		}
	}
	// The misaligned hint is accepted without error and shifts the carry
	// by one absolute slot: winB slot tt now holds winA slot tt+2's
	// iterate. Nothing in the bind can detect this — the planes match.
	for tt := 0; tt < 2; tt++ {
		if got, want := misaligned[tt], float64(100+tt+2); got != want {
			t.Fatalf("misaligned advance: slot %d carries tag %g, want %g (silent wrong-slot carry is the pinned behaviour)", tt, got, want)
		}
	}
}

// TestImportIteratesRoundTrip pins the snapshot/restore seam of the
// workspace: export → fresh bind → import reproduces the iterate state
// verbatim, and malformed payloads are rejected.
func TestImportIteratesRoundTrip(t *testing.T) {
	in := seamInstance(t)
	sliceA, err := in.Demand.Slice(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	win, err := in.Window(0, 4, in.InitialPlan(), sliceA)
	if err != nil {
		t.Fatal(err)
	}
	ws := NewWorkspace()
	ws.Bind(win)
	tagIterates(t, ws, 4)
	y, ok := ws.ExportIterates()

	ws2 := NewWorkspace()
	ws2.Bind(win)
	if err := ws2.ImportIterates(y, ok); err != nil {
		t.Fatal(err)
	}
	y2, ok2 := ws2.ExportIterates()
	for i := range y {
		if !equalFloats(y[i], y2[i]) || ok[i] != ok2[i] {
			t.Fatalf("slot %d did not round-trip: %v/%v vs %v/%v", i, y[i], ok[i], y2[i], ok2[i])
		}
	}
	if err := ws2.ImportIterates(y[:2], ok[:2]); err == nil {
		t.Error("ImportIterates accepted a short payload")
	}
	bad := append([][]float64{}, y...)
	bad[1] = bad[1][:1]
	if err := ws2.ImportIterates(bad, ok); err == nil {
		t.Error("ImportIterates accepted a mis-sized iterate")
	}
}
