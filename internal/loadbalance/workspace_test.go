package loadbalance

import (
	"context"
	"math/rand/v2"
	"reflect"
	"runtime"
	"testing"

	"edgecache/internal/convex"
	"edgecache/internal/model"
	"edgecache/internal/workload"
)

// referenceSolveAll is the pre-workspace SolveAll loop, kept verbatim as
// the byte-exactness oracle: per (t, n) it constructs the subproblem and
// solves it with SlotProblem.Solve, warm-starting from the previous
// iteration's plans.
func referenceSolveAll(t *testing.T, in *model.Instance, mu [][][]float64, warm []model.LoadPlan, opts convex.Options) ([]model.LoadPlan, float64) {
	t.Helper()
	plans := make([]model.LoadPlan, in.T)
	var total float64
	for tt := 0; tt < in.T; tt++ {
		plans[tt] = model.NewLoadPlan(in.Classes, in.K)
		var slot float64
		for n := 0; n < in.N; n++ {
			var muRow []float64
			if mu != nil && mu[tt] != nil {
				muRow = mu[tt][n]
			}
			var start []float64
			if warm != nil && warm[tt] != nil {
				start = make([]float64, in.Classes[n]*in.K)
				for m := 0; m < in.Classes[n]; m++ {
					copy(start[m*in.K:(m+1)*in.K], warm[tt][n][m])
				}
			}
			sp := ForInstance(in, tt, n, muRow, nil)
			y, obj, err := sp.Solve(start, opts)
			if err != nil {
				t.Fatalf("reference solve (t=%d, n=%d): %v", tt, n, err)
			}
			slot += obj
			for m := 0; m < in.Classes[n]; m++ {
				copy(plans[tt][n][m], y[m*in.K:(m+1)*in.K])
			}
		}
		total += slot
	}
	return plans, total
}

func randomMu(rng *rand.Rand, in *model.Instance, scale float64) [][][]float64 {
	mu := make([][][]float64, in.T)
	for t := range mu {
		mu[t] = make([][]float64, in.N)
		for n := range mu[t] {
			mu[t][n] = make([]float64, in.Classes[n]*in.K)
			for i := range mu[t][n] {
				mu[t][n][i] = rng.Float64() * scale
			}
		}
	}
	return mu
}

// TestWorkspaceDualMatchesReference drives a workspace through a warm-
// started dual-iteration sequence — the access pattern of Algorithm 1 —
// and checks each iteration is byte-identical to the reference path:
// same iterates, same total objective.
func TestWorkspaceDualMatchesReference(t *testing.T) {
	for _, sbsCost := range []float64{0, 0.3} {
		cfg := workload.PaperDefault()
		cfg.N = 2
		cfg.T = 4
		cfg.K = 10
		cfg.ClassesPerSBS = 3
		cfg.OmegaSBSRatio = sbsCost
		in, err := workload.BuildInstance(cfg)
		if err != nil {
			t.Fatal(err)
		}

		ws := NewWorkspace()
		ws.Bind(in)
		rng := rand.New(rand.NewPCG(5, uint64(sbsCost*10)))
		opts := convex.Options{StepTol: 1e-6, MaxIter: 600}
		var warm []model.LoadPlan
		for iter := 0; iter < 6; iter++ {
			mu := randomMu(rng, in, 2.0)
			wantPlans, wantTotal := referenceSolveAll(t, in, mu, warm, opts)
			warm = wantPlans

			gotTotal, err := ws.SolveDual(context.Background(), mu, opts)
			if err != nil {
				t.Fatal(err)
			}
			if gotTotal != wantTotal {
				t.Fatalf("ωSBS=%g iter %d: workspace total %v, reference %v", sbsCost, iter, gotTotal, wantTotal)
			}
			for tt := 0; tt < in.T; tt++ {
				for n := 0; n < in.N; n++ {
					y := ws.DualY(tt, n)
					for m := 0; m < in.Classes[n]; m++ {
						for k := 0; k < in.K; k++ {
							if y[m*in.K+k] != wantPlans[tt][n][m][k] {
								t.Fatalf("ωSBS=%g iter %d (t=%d, n=%d, m=%d, k=%d): workspace %v, reference %v",
									sbsCost, iter, tt, n, m, k, y[m*in.K+k], wantPlans[tt][n][m][k])
							}
						}
					}
				}
			}
			if exported := ws.ExportPlans(); !reflect.DeepEqual(exported, wantPlans) {
				t.Fatalf("ωSBS=%g iter %d: exported plans diverge from reference", sbsCost, iter)
			}
		}
	}
}

// TestWorkspaceRecoverMatchesReference checks the workspace recovery —
// greedy and FISTA paths — against OptimalGivenPlacement, and that it
// leaves the dual iterates untouched.
func TestWorkspaceRecoverMatchesReference(t *testing.T) {
	for _, sbsCost := range []float64{0, 0.3} {
		cfg := workload.PaperDefault()
		cfg.N = 2
		cfg.T = 4
		cfg.K = 10
		cfg.ClassesPerSBS = 3
		cfg.OmegaSBSRatio = sbsCost
		in, err := workload.BuildInstance(cfg)
		if err != nil {
			t.Fatal(err)
		}

		ws := NewWorkspace()
		ws.Bind(in)
		opts := convex.Options{StepTol: 1e-6, MaxIter: 600}
		rng := rand.New(rand.NewPCG(9, uint64(sbsCost*10)))
		if _, err := ws.SolveDual(context.Background(), randomMu(rng, in, 2.0), opts); err != nil {
			t.Fatal(err)
		}
		savedY := make([][]float64, in.T*in.N)
		for i := range savedY {
			savedY[i] = append([]float64(nil), ws.slots[i].y...)
		}

		xPlans := make([]model.CachePlan, in.T)
		for tt := range xPlans {
			xPlans[tt] = model.NewCachePlan(in.N, in.K)
			for n := 0; n < in.N; n++ {
				for k := 0; k < in.K; k++ {
					if rng.Float64() < 0.4 {
						xPlans[tt][n][k] = 1
					}
				}
			}
		}

		traj, err := ws.Recover(context.Background(), xPlans, opts)
		if err != nil {
			t.Fatal(err)
		}
		for tt := 0; tt < in.T; tt++ {
			wantY, err := OptimalGivenPlacement(in, tt, xPlans[tt], opts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(traj[tt].Y, wantY) {
				t.Fatalf("ωSBS=%g slot %d: recovered split diverges from OptimalGivenPlacement", sbsCost, tt)
			}
			if !reflect.DeepEqual(traj[tt].X, xPlans[tt]) {
				t.Fatalf("ωSBS=%g slot %d: recovered X diverges", sbsCost, tt)
			}
		}
		for i := range savedY {
			if !reflect.DeepEqual(savedY[i], ws.slots[i].y) {
				t.Fatalf("ωSBS=%g: recovery clobbered the dual iterate of slot %d", sbsCost, i)
			}
		}
	}
}

// TestSolveAllMatchesReference pins the rewritten package-level SolveAll
// (workspace-backed) to the reference loop, including warm starts.
func TestSolveAllMatchesReference(t *testing.T) {
	cfg := workload.PaperDefault()
	cfg.N = 2
	cfg.T = 3
	cfg.K = 8
	cfg.ClassesPerSBS = 3
	in, err := workload.BuildInstance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(21, 22))
	opts := convex.Options{StepTol: 1e-6, MaxIter: 600}
	mu := randomMu(rng, in, 2.0)

	wantPlans, wantTotal := referenceSolveAll(t, in, mu, nil, opts)
	gotPlans, gotTotal, err := SolveAll(context.Background(), in, mu, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if gotTotal != wantTotal || !reflect.DeepEqual(gotPlans, wantPlans) {
		t.Fatal("cold SolveAll diverges from reference")
	}

	mu2 := randomMu(rng, in, 2.0)
	wantPlans2, wantTotal2 := referenceSolveAll(t, in, mu2, wantPlans, opts)
	gotPlans2, gotTotal2, err := SolveAll(context.Background(), in, mu2, gotPlans, opts)
	if err != nil {
		t.Fatal(err)
	}
	if gotTotal2 != wantTotal2 || !reflect.DeepEqual(gotPlans2, wantPlans2) {
		t.Fatal("warm SolveAll diverges from reference")
	}
}

// TestSteadyStateDualSolveZeroAllocs is the allocation regression guard of
// the perf work: once a workspace is warm, a per-slot dual solve must not
// touch the heap at all.
func TestSteadyStateDualSolveZeroAllocs(t *testing.T) {
	cfg := workload.PaperDefault()
	cfg.N = 2
	cfg.T = 3
	cfg.K = 10
	cfg.ClassesPerSBS = 3
	in, err := workload.BuildInstance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ws := NewWorkspace()
	ws.Bind(in)
	rng := rand.New(rand.NewPCG(13, 14))
	opts := convex.Options{StepTol: 1e-6, MaxIter: 600}
	mu := randomMu(rng, in, 2.0)
	// Warm every slot (grows all scratch to its steady-state size).
	if _, err := ws.SolveDual(context.Background(), mu, opts); err != nil {
		t.Fatal(err)
	}

	s := ws.slots[0]
	muRow := mu[0][0]
	if allocs := testing.AllocsPerRun(50, func() {
		if _, err := s.solveDual(muRow, opts); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("steady-state slot dual solve allocates %.0f objects/op, want 0", allocs)
	}

	// The full (t, n) sweep is also allocation-free when it runs on the
	// caller's goroutine (the worker pool spawns helpers only when spare
	// cores exist, which is a legitimate allocation).
	if runtime.GOMAXPROCS(0) == 1 {
		if allocs := testing.AllocsPerRun(20, func() {
			if _, err := ws.SolveDual(context.Background(), mu, opts); err != nil {
				t.Fatal(err)
			}
		}); allocs != 0 {
			t.Fatalf("steady-state SolveDual allocates %.0f objects/op, want 0", allocs)
		}
	}
}
