package loadbalance

import (
	"context"
	"math"
	"math/rand/v2"
	"testing"

	"edgecache/internal/convex"
	"edgecache/internal/model"
	"edgecache/internal/workload"
)

// singleVarProblem: one class, one content, ω = 1, ŵ = 0, λ = 2, B = 10:
// F(y) = (2 − 2y)² + μ·y over y ∈ [0, 1].
func singleVarProblem(mu float64) *SlotProblem {
	p := &SlotProblem{
		M:         1,
		K:         1,
		Lambda:    []float64{2},
		OmegaBS:   []float64{1},
		OmegaSBS:  []float64{0},
		Bandwidth: 10,
	}
	if mu != 0 {
		p.Mu = []float64{mu}
	}
	return p
}

func TestSingleVariableUnconstrained(t *testing.T) {
	y, obj, err := singleVarProblem(0).Solve(nil, convex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(y[0]-1) > 1e-7 {
		t.Fatalf("y = %g, want 1 (serve everything at the SBS)", y[0])
	}
	if math.Abs(obj) > 1e-10 {
		t.Fatalf("objective = %g, want 0", obj)
	}
}

func TestSingleVariableWithDualPenalty(t *testing.T) {
	// F = (2−2y)² + 4y: F' = −8 + 8y + 4 = 0 → y = 0.5, F = 1 + 2 = 3.
	y, obj, err := singleVarProblem(4).Solve(nil, convex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(y[0]-0.5) > 1e-6 {
		t.Fatalf("y = %g, want 0.5", y[0])
	}
	if math.Abs(obj-3) > 1e-6 {
		t.Fatalf("objective = %g, want 3", obj)
	}
}

func TestBandwidthBinds(t *testing.T) {
	// λ = 2 but B = 1: y ≤ 0.5 at the knapsack, optimum sits there.
	p := singleVarProblem(0)
	p.Bandwidth = 1
	y, _, err := p.Solve(nil, convex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(y[0]-0.5) > 1e-6 {
		t.Fatalf("y = %g, want 0.5 (bandwidth-limited)", y[0])
	}
}

func TestUpperBoundBinds(t *testing.T) {
	p := singleVarProblem(0)
	p.Upper = []float64{0.25}
	y, _, err := p.Solve(nil, convex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(y[0]-0.25) > 1e-7 {
		t.Fatalf("y = %g, want 0.25 (upper bound)", y[0])
	}
}

func TestSBSCostDiscouragesServing(t *testing.T) {
	// With ŵ = ω serving at the SBS costs as much as the BS; the optimum
	// balances: F = (2−2y)² + (2y)², F' = 0 → y = 0.5.
	p := singleVarProblem(0)
	p.OmegaSBS = []float64{1}
	y, _, err := p.Solve(nil, convex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(y[0]-0.5) > 1e-6 {
		t.Fatalf("y = %g, want 0.5", y[0])
	}
}

func TestValidation(t *testing.T) {
	bad := map[string]*SlotProblem{
		"zero M":       {M: 0, K: 1, Lambda: []float64{1}, OmegaBS: []float64{1}, OmegaSBS: []float64{0}},
		"short lambda": {M: 1, K: 2, Lambda: []float64{1}, OmegaBS: []float64{1}, OmegaSBS: []float64{0}},
		"short omega":  {M: 2, K: 1, Lambda: []float64{1, 1}, OmegaBS: []float64{1}, OmegaSBS: []float64{0, 0}},
		"neg band":     {M: 1, K: 1, Lambda: []float64{1}, OmegaBS: []float64{1}, OmegaSBS: []float64{0}, Bandwidth: -1},
		"short mu":     {M: 1, K: 2, Lambda: []float64{1, 1}, OmegaBS: []float64{1}, OmegaSBS: []float64{0}, Mu: []float64{1}},
		"short upper":  {M: 1, K: 2, Lambda: []float64{1, 1}, OmegaBS: []float64{1}, OmegaSBS: []float64{0}, Upper: []float64{1}},
	}
	for name, p := range bad {
		if _, _, err := p.Solve(nil, convex.Options{}); err == nil {
			t.Errorf("%s: Solve accepted invalid problem", name)
		}
	}
}

// TestGridSearchCrossCheck compares the solver against a dense grid on a
// 2-coordinate problem with an active knapsack.
func TestGridSearchCrossCheck(t *testing.T) {
	p := &SlotProblem{
		M:         2,
		K:         1,
		Lambda:    []float64{3, 1},
		OmegaBS:   []float64{1, 0.5},
		OmegaSBS:  []float64{0.1, 0.2},
		Bandwidth: 2,
		Mu:        []float64{0.3, 0.1},
	}
	y, obj, err := p.Solve(nil, convex.Options{})
	if err != nil {
		t.Fatal(err)
	}

	best := math.Inf(1)
	for i := 0; i <= 400; i++ {
		for j := 0; j <= 400; j++ {
			cand := []float64{float64(i) / 400, float64(j) / 400}
			if 3*cand[0]+1*cand[1] > 2 {
				continue
			}
			if v := p.Objective(cand); v < best {
				best = v
			}
		}
	}
	if obj > best+1e-3 {
		t.Fatalf("solver %g worse than grid %g", obj, best)
	}
	// Feasibility of the reported point.
	if 3*y[0]+y[1] > 2+1e-6 {
		t.Fatalf("bandwidth violated: %v", y)
	}
}

func paperInstance(t *testing.T, mutate func(*workload.InstanceConfig)) *model.Instance {
	t.Helper()
	cfg := workload.PaperDefault()
	cfg.T = 4
	cfg.K = 6
	cfg.ClassesPerSBS = 5
	cfg.CacheCap = 2
	cfg.Bandwidth = 8
	if mutate != nil {
		mutate(&cfg)
	}
	in, err := workload.BuildInstance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestSolveAllShapesAndFeasibility(t *testing.T) {
	in := paperInstance(t, nil)
	plans, total, err := SolveAll(context.Background(), in, nil, nil, convex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != in.T {
		t.Fatalf("plans cover %d slots, want %d", len(plans), in.T)
	}
	if total < 0 {
		t.Fatalf("total objective %g < 0 with zero duals", total)
	}
	for tt, y := range plans {
		// Bandwidth feasibility (upper bounds checked by CheckSlot with a
		// full-cache placement).
		x := model.NewCachePlan(in.N, in.K)
		for n := range x {
			for k := range x[n] {
				x[n][k] = 1
			}
		}
		dec := model.SlotDecision{X: x, Y: y}
		// Relax capacity for this check: only bandwidth/coupling matter.
		relaxed := *in
		caps := make([]int, in.N)
		for n := range caps {
			caps[n] = in.K
		}
		relaxed.CacheCap = caps
		if err := relaxed.CheckSlot(tt, dec, 1e-6); err != nil {
			t.Fatalf("slot %d infeasible: %v", tt, err)
		}
	}
}

func TestSolveAllMuShape(t *testing.T) {
	in := paperInstance(t, nil)
	if _, _, err := SolveAll(context.Background(), in, make([][][]float64, 1), nil, convex.Options{}); err == nil {
		t.Fatal("SolveAll accepted short mu")
	}
}

func TestOptimalGivenPlacementRespectsCoupling(t *testing.T) {
	in := paperInstance(t, nil)
	x := model.NewCachePlan(in.N, in.K)
	x[0][0] = 1
	x[0][3] = 1
	y, err := OptimalGivenPlacement(in, 0, x, convex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m < in.Classes[0]; m++ {
		for k := 0; k < in.K; k++ {
			if x[0][k] == 0 && y[0][m][k] > 1e-9 {
				t.Fatalf("served uncached content %d: y = %g", k, y[0][m][k])
			}
		}
	}
	if err := in.CheckSlot(0, model.SlotDecision{X: x, Y: y}, 1e-6); err != nil {
		t.Fatalf("recovered split infeasible: %v", err)
	}
}

func TestMoreCacheNeverHurts(t *testing.T) {
	in := paperInstance(t, nil)
	empty := model.NewCachePlan(in.N, in.K)
	one := empty.Clone()
	one[0][0] = 1
	two := one.Clone()
	two[0][1] = 1

	cost := func(x model.CachePlan) float64 {
		y, err := OptimalGivenPlacement(in, 0, x, convex.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return in.BSCost(0, y) + in.SBSCost(0, y)
	}
	c0, c1, c2 := cost(empty), cost(one), cost(two)
	if c1 > c0+1e-6 || c2 > c1+1e-6 {
		t.Fatalf("operating cost increased with cache: %g, %g, %g", c0, c1, c2)
	}
	if c0 != in.NoCachingCost()/float64(in.T) && c0 <= 0 {
		t.Fatalf("empty-cache cost %g suspicious", c0)
	}
}

// TestGreedyMatchesFISTA compares the ŵ = 0 greedy fast path of
// OptimalGivenPlacement against the generic FISTA path on the same
// problem: both must achieve the same BS cost.
func TestGreedyMatchesFISTA(t *testing.T) {
	in := paperInstance(t, func(cfg *workload.InstanceConfig) {
		cfg.Bandwidth = 3
		cfg.CacheCap = 3
	})
	x := model.NewCachePlan(in.N, in.K)
	x[0][0], x[0][2], x[0][4] = 1, 1, 1

	// Greedy path (ŵ = 0 in paperInstance).
	yGreedy, err := OptimalGivenPlacement(in, 0, x, convex.Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Generic path: solve the same slot problem directly.
	upper := make([]float64, in.Classes[0]*in.K)
	for m := 0; m < in.Classes[0]; m++ {
		copy(upper[m*in.K:(m+1)*in.K], x[0])
	}
	sp := ForInstance(in, 0, 0, nil, upper)
	yFlat, _, err := sp.Solve(nil, convex.Options{MaxIter: 20000, StepTol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	yFISTA := model.NewLoadPlan(in.Classes, in.K)
	for m := 0; m < in.Classes[0]; m++ {
		copy(yFISTA[0][m], yFlat[m*in.K:(m+1)*in.K])
	}

	cg := in.BSCost(0, yGreedy)
	cf := in.BSCost(0, yFISTA)
	if math.Abs(cg-cf) > 1e-4*(1+cf) {
		t.Fatalf("greedy BS cost %g vs FISTA %g", cg, cf)
	}
	if cg > cf+1e-6 {
		t.Fatalf("greedy %g worse than FISTA %g — knapsack argument broken", cg, cf)
	}
	if err := in.CheckSlot(0, model.SlotDecision{X: x, Y: yGreedy}, 1e-6); err != nil {
		t.Fatalf("greedy split infeasible: %v", err)
	}
}

// Property-style check: on random slot problems, the solver's objective is
// never beaten by random feasible competitors.
func TestRandomSlotProblemsOptimality(t *testing.T) {
	rng := rand.New(rand.NewPCG(77, 78))
	for trial := 0; trial < 20; trial++ {
		m := 1 + rng.IntN(3)
		k := 1 + rng.IntN(4)
		n := m * k
		p := &SlotProblem{
			M:         m,
			K:         k,
			Lambda:    make([]float64, n),
			OmegaBS:   make([]float64, m),
			OmegaSBS:  make([]float64, m),
			Bandwidth: rng.Float64() * 5,
			Mu:        make([]float64, n),
		}
		for i := range p.Lambda {
			p.Lambda[i] = rng.Float64() * 3
		}
		for i := 0; i < m; i++ {
			p.OmegaBS[i] = rng.Float64()
			p.OmegaSBS[i] = rng.Float64() * 0.1
		}
		for i := range p.Mu {
			p.Mu[i] = rng.Float64() * 2
		}
		_, obj, err := p.Solve(nil, convex.Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for probe := 0; probe < 50; probe++ {
			cand := make([]float64, n)
			var load float64
			for i := range cand {
				cand[i] = rng.Float64()
				load += cand[i] * p.Lambda[i]
			}
			if load > p.Bandwidth {
				scale := p.Bandwidth / load
				for i := range cand {
					cand[i] *= scale
				}
			}
			if v := p.Objective(cand); v < obj-1e-5*(1+math.Abs(obj)) {
				t.Fatalf("trial %d: competitor %g beats solver %g", trial, v, obj)
			}
		}
	}
}
