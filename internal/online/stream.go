package online

import (
	"context"
	"errors"
	"fmt"

	"edgecache/internal/fault"
	"edgecache/internal/model"
	"edgecache/internal/workload"
)

// Stream is the incremental form of Run: the same staggered FHC versions
// and the same average/round/repair commit stage, driven one slot at a
// time as a live request stream closes slots, instead of eagerly over a
// horizon of already-known demand. It is the engine of the control-plane
// service (package serve).
//
// Protocol: the instance's demand tensor is filled externally (the slot's
// empirical rates must be final before CloseSlot). While slot t is open,
// Plan returns the provisionally published decision for it — the rounded
// average of the versions' committed placements, which is demand-
// independent, plus (in LoadPredicted mode) the clamped split without the
// bandwidth rescale, which is not. CloseSlot then finalises the decision
// against the realised row with arithmetic identical to the batch loop.
//
// Determinism: with a Forecaster that is a pure function of the truth
// prefix (workload.OnlineEstimator) or of (tau, from, to) alone
// (workload.Predictor), a Stream over a fully replayed trace commits the
// exact trajectory Run computes in batch over the completed tensor — the
// versions run the identical window solves in the identical order, merely
// interleaved differently. SlotBudget is the one escape hatch: wall-clock
// deadlines are inherently non-reproducible, so restart-equivalent
// deployments leave it zero and bound work with Core.MaxIter instead.
type Stream struct {
	in   *model.Instance
	pred workload.Forecaster
	cfg  Config // defaulted

	versions []*versionState
	armed    *fault.Armed
	xa       [][]model.CachePlan
	ya       [][]model.LoadPlan
	comb     *combiner

	cur   int // open slot; slots [0, cur) are closed and committed
	traj  model.Trajectory
	planX model.CachePlan
	planY model.LoadPlan // nil in LoadReactive mode (needs realised demand)
}

// NewStream validates the configuration and solves the start-up windows:
// every version is advanced until it has committed an action for slot 0,
// and the provisional plan for slot 0 is published. Demand rows may still
// be all-zero at this point — a live controller forecasts slot 0 from the
// zero prior.
func NewStream(ctx context.Context, in *model.Instance, pred workload.Forecaster, cfg Config) (*Stream, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("online: %w", err)
	}
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if pred == nil {
		return nil, errors.New("online: nil predictor")
	}
	if pred.Truth() != in.Demand {
		return nil, errors.New("online: predictor truth is not the instance demand")
	}
	s := &Stream{in: in, pred: pred, cfg: cfg}
	versions := cfg.Commitment
	if cfg.SingleVersion {
		versions = 1
	}
	s.armed = cfg.Faults.Arm()
	events := in.EventSlots()
	s.versions = make([]*versionState, versions)
	s.xa = make([][]model.CachePlan, versions)
	s.ya = make([][]model.LoadPlan, versions)
	for v := range s.versions {
		s.xa[v] = make([]model.CachePlan, in.T)
		s.ya[v] = make([]model.LoadPlan, in.T)
		s.versions[v] = newVersionState(in, pred, cfg, v, s.armed, events, s.xa[v], s.ya[v])
	}
	s.comb = newCombiner(in, cfg, versions)
	s.traj = make(model.Trajectory, 0, in.T)
	if err := s.advance(ctx); err != nil {
		return nil, err
	}
	return s, nil
}

// advance steps every version until it has committed the open slot, then
// publishes the provisional plan for it.
func (s *Stream) advance(ctx context.Context) error {
	for _, vs := range s.versions {
		for !vs.done() && vs.committedThrough() <= s.cur {
			if err := vs.step(ctx); err != nil {
				return err
			}
		}
	}
	return s.publish()
}

// publish computes the provisionally published decision for the open
// slot from the versions' committed actions.
func (s *Stream) publish() error {
	t := s.cur
	if err := s.comb.average(t,
		func(v int) model.CachePlan { return s.xa[v][t] },
		func(v int) model.LoadPlan { return s.ya[v][t] }); err != nil {
		return err
	}
	x, _, _, _ := roundPlacement(s.in, t, s.comb.avgX, s.cfg.Rho)
	s.planX = x
	s.planY = nil
	if s.cfg.LoadMode == LoadPredicted {
		s.planY = provisionalLoad(s.in, x, s.comb.avgY)
	}
	return nil
}

// provisionalLoad is the demand-independent prefix of predictedLoad: zero
// the averaged split wherever the rounding dropped the item and clamp to
// [0, 1]. The bandwidth rescale needs the slot's realised demand, so the
// published provisional split defers it to commit time.
func provisionalLoad(in *model.Instance, x model.CachePlan, avgY model.LoadPlan) model.LoadPlan {
	y := avgY.Clone()
	for n := 0; n < in.N; n++ {
		for m := 0; m < in.Classes[n]; m++ {
			for k := 0; k < in.K; k++ {
				if x[n][k] < 0.5 {
					y[n][m][k] = 0
					continue
				}
				if y[n][m][k] > 1 {
					y[n][m][k] = 1
				} else if y[n][m][k] < 0 {
					y[n][m][k] = 0
				}
			}
		}
	}
	return y
}

// Slot returns the open slot index: slots [0, Slot()) are closed and
// committed.
func (s *Stream) Slot() int { return s.cur }

// Horizon returns the instance's slot horizon T.
func (s *Stream) Horizon() int { return s.in.T }

// Done reports whether every slot of the horizon has been closed.
func (s *Stream) Done() bool { return s.cur >= s.in.T }

// Plan returns the provisionally published decision for the open slot.
// The split is nil in LoadReactive mode (it needs the realised demand)
// and after the horizon completes. The returned plans are live: callers
// must not mutate them.
func (s *Stream) Plan() (slot int, x model.CachePlan, y model.LoadPlan) {
	return s.cur, s.planX, s.planY
}

// Trajectory returns the committed decisions of the closed slots (live;
// read-only).
func (s *Stream) Trajectory() model.Trajectory { return s.traj }

// CloseSlot finalises the open slot: its demand row must be final (the
// slot's empirical arrival rates written into the instance's tensor). The
// slot's decision is committed against the realised row, the versions
// advance to cover the next slot, and its provisional plan is published.
func (s *Stream) CloseSlot(ctx context.Context) (model.SlotDecision, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if s.Done() {
		return model.SlotDecision{}, fmt.Errorf("online: horizon complete at slot %d", s.cur)
	}
	t := s.cur
	// Re-average: identical values to the publish-time call (average is a
	// pure function of the versions' committed actions), re-run so the
	// commit below always consumes buffers for slot t even if a restore
	// or an out-of-band publish touched them.
	if err := s.comb.average(t,
		func(v int) model.CachePlan { return s.xa[v][t] },
		func(v int) model.LoadPlan { return s.ya[v][t] }); err != nil {
		return model.SlotDecision{}, err
	}
	dec, err := s.comb.commit(t)
	if err != nil {
		return model.SlotDecision{}, err
	}
	s.traj = append(s.traj, dec)
	s.cur++
	if s.Done() {
		s.planX, s.planY = nil, nil
		return dec, nil
	}
	if err := s.advance(ctx); err != nil {
		return model.SlotDecision{}, err
	}
	return dec, nil
}

// StreamStats are a live controller's counters so far.
type StreamStats struct {
	VersionStats
	CapacityDrops    int     `json:"capacityDrops"`
	BandwidthRepairs int     `json:"bandwidthRepairs"`
	RelaxedCost      float64 `json:"relaxedCost"`
}

// Stats sums the versions' solver-effort counters and the commit-stage
// repair counters accumulated so far.
func (s *Stream) Stats() StreamStats {
	var st StreamStats
	for _, vs := range s.versions {
		st.Solves += vs.stats.Solves
		st.DualIters += vs.stats.DualIters
		st.Degraded += vs.stats.Degraded
		st.Retries += vs.stats.Retries
		st.Replans += vs.stats.Replans
	}
	st.CapacityDrops = s.comb.capSBS
	st.BandwidthRepairs = s.comb.bwRepairs
	st.RelaxedCost = s.comb.relaxed
	return st
}

// Result assembles the completed run into the same Result batch Run
// returns, verifying the committed trajectory. It errors while slots
// remain open.
func (s *Stream) Result() (*Result, error) {
	if !s.Done() {
		return nil, fmt.Errorf("online: %d of %d slots still open", s.in.T-s.cur, s.in.T)
	}
	if err := s.in.CheckTrajectory(s.traj, 1e-6); err != nil {
		return nil, fmt.Errorf("online: committed trajectory infeasible: %w", err)
	}
	st := s.Stats()
	return &Result{
		Trajectory:     s.traj,
		RelaxedCost:    st.RelaxedCost,
		WindowSolves:   st.Solves,
		DualIterations: st.DualIters,
		Degraded:       st.Degraded,
		Retries:        st.Retries,
		Replans:        st.Replans,
	}, nil
}
