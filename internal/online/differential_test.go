package online

import (
	"context"
	"math"
	"math/rand/v2"
	"testing"
	"time"

	"edgecache/internal/audit"
	"edgecache/internal/convex"
	"edgecache/internal/fault"
	"edgecache/internal/model"
	"edgecache/internal/obs"
	"edgecache/internal/oracle"
	"edgecache/internal/workload"
)

// randomSchedule samples a fault schedule for the differential fuzz
// target: any combination of an outage, bandwidth degradation, capacity
// loss, prediction corruption and a solver fault, all within in's
// dimensions. May return an empty schedule (the failure-free world).
func randomSchedule(rng *rand.Rand, in *model.Instance) *fault.Schedule {
	s := &fault.Schedule{Seed: rng.Uint64()}
	if rng.Float64() < 0.5 {
		from := rng.IntN(in.T)
		s.Injectors = append(s.Injectors, fault.Outage{
			SBS: rng.IntN(in.N), From: from, To: from + 1 + rng.IntN(3),
		})
	}
	if rng.Float64() < 0.4 {
		s.Injectors = append(s.Injectors, fault.BandwidthFactor{
			SBS: -1, From: rng.IntN(in.T), Factor: 0.25 + rng.Float64()*0.5,
		})
	}
	if rng.Float64() < 0.3 {
		s.Injectors = append(s.Injectors, fault.CapacityLoss{
			SBS: rng.IntN(in.N), From: rng.IntN(in.T), Lost: 1,
		})
	}
	if rng.Float64() < 0.4 {
		modes := []fault.CorruptionMode{fault.Spike, fault.Dropout, fault.Freeze}
		s.Injectors = append(s.Injectors, fault.Corruption{
			Mode: modes[rng.IntN(len(modes))], From: 0, To: in.T,
			Magnitude: 1 + rng.Float64()*4, Rate: 0.1 + rng.Float64()*0.5,
		})
	}
	if rng.Float64() < 0.3 {
		s.Injectors = append(s.Injectors, fault.SolverFault{
			Slot: rng.IntN(in.T), Panic: rng.Float64() < 0.5, Attempts: 1 + rng.IntN(3),
		})
	}
	return s
}

// FuzzDifferentialOnline cross-checks the online controllers against the
// trajectory auditor on randomly generated instances: whatever
// controller, noise level, rounding repairs or budget degradation a run
// goes through, the committed trajectory must pass every auditor
// invariant — per-slot feasibility, placement integrality and the
// independent cost recomputation. When no feasibility repair fired and
// nothing degraded, the rounded cost must additionally respect the
// Theorem 3 bound against the relaxed (pre-rounding) cost. Run with
// `go test -fuzz FuzzDifferentialOnline ./internal/online`.
func FuzzDifferentialOnline(f *testing.F) {
	f.Add(uint64(1), uint64(2))
	f.Add(uint64(3), uint64(5))
	f.Add(uint64(7), uint64(11))
	f.Add(uint64(0), ^uint64(0))
	f.Fuzz(func(t *testing.T, s1, s2 uint64) {
		rng := rand.New(rand.NewPCG(s1, s2))
		cfg := workload.PaperDefault()
		cfg.T = 5 + rng.IntN(4)
		cfg.K = 4 + rng.IntN(3)
		cfg.ClassesPerSBS = 2 + rng.IntN(2)
		cfg.CacheCap = 1 + rng.IntN(2)
		cfg.Bandwidth = 2 + rng.Float64()*8
		cfg.Beta = rng.Float64() * 30
		cfg.Workload.Jitter = rng.Float64() * 0.5
		cfg.Seed = 1 + s1 ^ s2
		in, err := workload.BuildInstance(cfg)
		if err != nil {
			t.Fatalf("instance generation failed: %v", err)
		}
		eta := rng.Float64() * 0.5
		pred, err := workload.NewPredictor(in.Demand, eta, cfg.Seed)
		if err != nil {
			t.Fatal(err)
		}

		w := 1 + rng.IntN(4)
		var ctrl Config
		switch rng.IntN(3) {
		case 0:
			ctrl = RHC(w)
		case 1:
			ctrl = AFHC(w)
		default:
			ctrl = CHC(w, 1+rng.IntN(w))
		}
		if rng.Float64() < 0.2 {
			// Exercise the degradation ladder: an unmeetable budget forces
			// every window through best-iterate/fallback.
			ctrl.SlotBudget = time.Nanosecond
		}

		// Half the corpus runs through a faulted world: the auditor's
		// invariants must hold on the effective per-slot instance no
		// matter what combination of outages, degradations, corrupted
		// predictions and solver faults the run absorbed.
		var sched *fault.Schedule
		if rng.Float64() < 0.5 {
			sched = randomSchedule(rng, in)
			out, err := sched.Materialize(in, nil)
			if err != nil {
				t.Fatalf("materialize: %v", err)
			}
			in = out
			if hook := sched.Corruptor(in.Demand); hook != nil {
				pred = pred.WithCorruption(hook)
			}
			ctrl.Faults = sched
			ctrl.Retry = RetryPolicy{Max: 2, Backoff: time.Microsecond}
		}
		var col obs.Collector
		ctrl.Telemetry = obs.New(&col, obs.NewRegistry())

		res, err := Run(context.Background(), in, pred, ctrl)
		if err != nil {
			t.Fatalf("%s (η=%.2f): %v", ctrl.Name(), eta, err)
		}
		if rep := audit.Trajectory(in, res.Trajectory, nil, audit.Options{}); !rep.OK() {
			t.Fatalf("%s (η=%.2f, faults=%v): committed trajectory failed audit: %v",
				ctrl.Name(), eta, !sched.Empty(), rep.Err())
		}

		// Theorem 3 models neither the feasibility repairs, degraded
		// windows nor injected faults (DESIGN.md §10); check the bound
		// only when the run used none of them.
		repaired := false
		for _, e := range col.ByType("slot_decision") {
			if e.Fields["cap_dropped"].(int) > 0 || e.Fields["bw_repaired"].(int) > 0 {
				repaired = true
				break
			}
		}
		if sched.Empty() && !repaired && res.Degraded == 0 && res.RelaxedCost > 0 {
			rounded := in.TotalCost(res.Trajectory).Total
			if rounded > 2.62*res.RelaxedCost*(1+1e-9) {
				t.Fatalf("%s: rounded %g > 2.62 × relaxed %g — Theorem 3 violated",
					ctrl.Name(), rounded, res.RelaxedCost)
			}
		}
	})
}

// TestTheorem3VersusOracle pins the approximation guarantee against the
// exact optimum, not just the run's own relaxed cost: with exact
// predictions, a full-horizon window and bandwidth slack (the theorem's
// conditions), CHC and AFHC must land within 2.62× of the oracle's
// optimum, with a small slack for the window solves' duality gap.
func TestTheorem3VersusOracle(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		cfg := workload.PaperDefault()
		cfg.T = 4
		cfg.K = 5
		cfg.ClassesPerSBS = 3
		cfg.CacheCap = 2
		cfg.Bandwidth = 1000 // no rescale: theorem conditions hold
		cfg.Beta = 10
		cfg.Seed = seed
		in, err := workload.BuildInstance(cfg)
		if err != nil {
			t.Fatal(err)
		}
		pred, err := workload.NewPredictor(in.Demand, 0, seed)
		if err != nil {
			t.Fatal(err)
		}
		_, opt, err := oracle.Solve(context.Background(), in, convex.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if opt.Total <= 0 {
			t.Fatalf("seed %d: oracle optimum %g not positive", seed, opt.Total)
		}
		for _, c := range []Config{CHC(in.T, 2), AFHC(in.T)} {
			res, err := Run(context.Background(), in, pred, c)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, c.Name(), err)
			}
			cost := in.TotalCost(res.Trajectory).Total
			// 5% slack: the per-window primal-dual solves carry a duality
			// gap the theorem's exact-relaxation argument does not.
			if cost > 2.62*opt.Total*1.05 {
				t.Fatalf("seed %d %s: cost %g > 2.62 × oracle optimum %g",
					seed, c.Name(), cost, opt.Total)
			}
		}
	}
}

// TestPredictedLoadClampsNegativeAverages is the regression test for the
// one-sided clamp bug: averaged solver iterates can carry small negative
// y entries (convex tolerance), and predictedLoad only clamped the upper
// bound — a surviving negative violates eq. (11) in the committed plan
// and corrupts the load sum driving the bandwidth rescale.
func TestPredictedLoadClampsNegativeAverages(t *testing.T) {
	in, _ := smallInstance(t, nil)
	x := model.NewCachePlan(in.N, in.K)
	x[0][0] = 1
	x[0][1] = 1
	avgY := model.NewLoadPlan(in.Classes, in.K)
	for m := 0; m < in.Classes[0]; m++ {
		avgY[0][m][0] = -0.3 // stray negative iterate
		avgY[0][m][1] = 0.8
	}
	y, _ := predictedLoad(in, 0, x, avgY)
	for m := 0; m < in.Classes[0]; m++ {
		for k := 0; k < in.K; k++ {
			if y[0][m][k] < 0 {
				t.Fatalf("negative committed load y[0][%d][%d] = %g survived the clamp", m, k, y[0][m][k])
			}
		}
	}
}

// TestRepairCountersAdvanceOncePerSlotSBS is the regression test for the
// repair-counter accounting bug: online.capacity_drops used to advance
// once per dropped *entry*, conflating "how many repairs fired" with
// "how much the repairs dropped". The counter must advance once per
// (slot, SBS) where the repair fired, while the per-entry drop count
// stays in the slot_decision event.
func TestRepairCountersAdvanceOncePerSlotSBS(t *testing.T) {
	cfg := workload.PaperDefault()
	cfg.T = 10
	cfg.K = 8
	cfg.ClassesPerSBS = 4
	cfg.CacheCap = 2
	cfg.Bandwidth = 2 // tight: forces bandwidth rescales too
	cfg.Beta = 1
	cfg.Workload.Jitter = 0.5
	in, err := workload.BuildInstance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := workload.NewPredictor(in.Demand, 0.6, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := CHC(6, 3)
	ctrl.Rho = 0.25 // low threshold: staggered versions' disagreements all qualify
	var col obs.Collector
	ctrl.Telemetry = obs.New(&col, obs.NewRegistry())

	before := audit.Counters(nil) // package counters live in obs.Default
	res, err := Run(context.Background(), in, pred, ctrl)
	if err != nil {
		t.Fatal(err)
	}
	after := audit.Counters(nil)
	if viol := audit.CheckCounterDeltas(in, before, after); len(viol) != 0 {
		t.Fatalf("counter accounting violations: %v", viol)
	}

	// With N = 1, the per-(slot, SBS) semantics mean the capacity counter
	// delta equals the number of slots whose repair fired; the per-entry
	// counts in the events tell the two semantics apart.
	var wantCap, wantBW, multiDropSlots int
	for _, e := range col.ByType("slot_decision") {
		if d := e.Fields["cap_dropped"].(int); d > 0 {
			wantCap++
			if d >= 2 {
				multiDropSlots++
			}
		}
		wantBW += e.Fields["bw_repaired"].(int)
	}
	if multiDropSlots == 0 {
		t.Fatal("scenario never dropped ≥ 2 entries in one slot; per-entry and per-(slot, SBS) accounting would coincide — retune the config")
	}
	if got := after.CapacityDrops - before.CapacityDrops; got != int64(wantCap) {
		t.Fatalf("online.capacity_drops advanced by %d, want %d (one per repairing slot; per-entry accounting would give more)", got, wantCap)
	}
	if got := after.BandwidthRepairs - before.BandwidthRepairs; got != int64(wantBW) {
		t.Fatalf("online.bandwidth_repairs advanced by %d, want %d", got, wantBW)
	}
	if res.Degraded != 0 {
		t.Fatalf("unexpected degradation: %d", res.Degraded)
	}
}

// TestDegradationLadderEndToEnd is the e2e test of the budget-degradation
// path: an unmeetable SlotBudget forces every window through the ladder
// down to DefaultFallback, the committed trajectory still passes the full
// auditor, and the solve_degraded events pair 1:1 with solver.degraded
// counter increments.
func TestDegradationLadderEndToEnd(t *testing.T) {
	in, pred := smallInstance(t, nil)
	ctrl := CHC(4, 2)
	ctrl.SlotBudget = time.Nanosecond
	var col obs.Collector
	ctrl.Telemetry = obs.New(&col, obs.NewRegistry())

	before := audit.Counters(nil)
	res, err := Run(context.Background(), in, pred, ctrl)
	if err != nil {
		t.Fatalf("budgeted run failed instead of degrading: %v", err)
	}
	after := audit.Counters(nil)

	if res.Degraded == 0 {
		t.Fatal("1ns budget degraded no windows")
	}
	if rep := audit.Trajectory(in, res.Trajectory, nil, audit.Options{}); !rep.OK() {
		t.Fatalf("degraded trajectory failed audit: %v", rep.Err())
	}
	events := col.ByType("solve_degraded")
	if len(events) != res.Degraded {
		t.Fatalf("%d solve_degraded events for %d degraded windows", len(events), res.Degraded)
	}
	if got := after.Degraded - before.Degraded; got != int64(res.Degraded) {
		t.Fatalf("solver.degraded advanced by %d for %d degraded windows — events and counter must pair 1:1", got, res.Degraded)
	}
	// A 1ns budget expires before the first solver iteration, so the
	// ladder must reach its bottom rung at least once.
	var fellBack bool
	for _, e := range events {
		if e.Fields["mode"] == "fallback" {
			fellBack = true
		}
	}
	if !fellBack {
		t.Fatal("ladder never reached DefaultFallback under a 1ns budget")
	}
	if viol := audit.CheckCounterDeltas(in, before, after); len(viol) != 0 {
		t.Fatalf("counter accounting violations: %v", viol)
	}
}

// TestRelaxedCostIsFiniteAndPositive guards the RelaxedCost accounting
// the differential fuzz target keys on.
func TestRelaxedCostIsFiniteAndPositive(t *testing.T) {
	in, pred := smallInstance(t, nil)
	res, err := Run(context.Background(), in, pred, CHC(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.RelaxedCost) || math.IsInf(res.RelaxedCost, 0) || res.RelaxedCost <= 0 {
		t.Fatalf("RelaxedCost = %g", res.RelaxedCost)
	}
}
