package online

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"edgecache/internal/core"
	"edgecache/internal/fault"
	"edgecache/internal/model"
	"edgecache/internal/obs"
	"edgecache/internal/workload"
)

// VersionStats aggregates one FHC version's solver effort. The fields
// mirror Result's counters; Run and Stream sum them across versions.
type VersionStats struct {
	Solves    int `json:"solves"`
	DualIters int `json:"dualIterations"`
	Degraded  int `json:"degraded"`
	Retries   int `json:"retries"`
	Replans   int `json:"replans"`
}

// versionState is the between-windows state of one FHC version, factored
// out of the batch loop so the same machinery can run eagerly (runVersion,
// all windows at once) or incrementally (Stream, windows stepped as live
// slots close) — and so the whole of it can be serialised for
// snapshot/restore (VersionSnapshot).
//
// Two warm-start seams are tracked *separately*, which is the bug fix of
// this revision: the μ block and the solver workspace do not always come
// from the same window. A window whose every solve attempt was consumed
// by injected faults never reaches core.Solve, so the workspace stays
// bound to an older window; conflating the two (the old single
// prevFrom/prevTo pair) made the next Options.Advance measure from the
// unsolved window and silently rotate the P2 iterates onto the wrong
// absolute slots whenever the demand planes happened to match (stationary
// workloads). Likewise a window that produced no multipliers (fallback)
// must drop the μ carry without forgetting where the workspace really is.
type versionState struct {
	in     *model.Instance
	pred   workload.Forecaster
	cfg    Config // already defaulted
	v      int
	armed  *fault.Armed
	events []int

	// Committed per-slot actions (absolute slot index; shared with the
	// caller's combine stage) and solver-effort counters.
	xa    []model.CachePlan
	ya    []model.LoadPlan
	stats VersionStats

	// tau is the next decision time; slots [0, max(tau, 0)) are committed.
	tau         int
	virtualPrev model.CachePlan

	// μ warm-start seam: the multipliers of the last window solve that
	// produced any, aligned to absolute slots [muFrom, muTo). nil when the
	// last window fell back without multipliers.
	warmMu       [][][]float64
	muFrom, muTo int

	// Workspace seam: whether ws is bound to a window at all and, if so,
	// which one — the last window whose solve attempt actually entered
	// core.Solve without panicking out of it. wsTau/wsInitial record the
	// decision time and initial plan of that bind so snapshot/restore can
	// reconstruct the identical window instance.
	ws        *core.Workspace
	wsBound   bool
	wsTau     int
	wsFrom    int
	wsTo      int
	wsInitial model.CachePlan
}

// newVersionState prepares version v of the controller over in. cfg must
// already have defaults applied. xa and ya are the caller's per-slot
// commit arrays (length in.T).
func newVersionState(in *model.Instance, pred workload.Forecaster, cfg Config, v int,
	armed *fault.Armed, events []int, xa []model.CachePlan, ya []model.LoadPlan) *versionState {

	r := cfg.Commitment
	first := v - r
	if v == 0 {
		first = 0
	}
	return &versionState{
		in:          in,
		pred:        pred,
		cfg:         cfg,
		v:           v,
		armed:       armed,
		events:      events,
		xa:          xa,
		ya:          ya,
		tau:         first,
		virtualPrev: in.InitialPlan(),
		ws:          core.NewWorkspace(),
	}
}

// done reports whether the version has committed the whole horizon.
func (vs *versionState) done() bool { return vs.tau >= vs.in.T }

// committedThrough returns the first slot this version has not yet
// committed an action for.
func (vs *versionState) committedThrough() int {
	if vs.tau < 0 {
		return 0
	}
	return vs.tau
}

// step runs one window: forecast, solve (with retries, fault injection
// and the degradation ladder), commit [from, commitEnd), advance tau.
// A step that lands on an empty window just advances tau.
func (vs *versionState) step(ctx context.Context) error {
	in, cfg, v, r := vs.in, vs.cfg, vs.v, vs.cfg.Commitment
	tau := vs.tau
	from := max(tau, 0)
	to := min(tau+cfg.Window, in.T)
	// The next on-lattice commit boundary: the smallest L > τ with
	// L ≡ v (mod r). On-lattice this is τ+r; after an event replan
	// (off-lattice τ) it restores the version's staggering.
	lattice := tau + 1 + ((v-(tau+1))%r+r)%r
	commitEnd := min(lattice, in.T)
	eventCut := 0
	for _, e := range vs.events {
		if e > from && e < commitEnd {
			commitEnd, eventCut = e, e
			break
		}
	}
	if from >= to || commitEnd <= from {
		vs.tau = commitEnd
		return nil
	}

	forecast, err := vs.pred.Predict(tau, from, to)
	if err != nil {
		return fmt.Errorf("online: version %d at τ=%d: %w", v, tau, err)
	}
	win, err := in.Window(from, to, vs.virtualPrev, forecast)
	if err != nil {
		return fmt.Errorf("online: version %d at τ=%d: %w", v, tau, err)
	}

	opts := cfg.Core
	opts.Telemetry = cfg.Telemetry
	opts.Workspace = vs.ws
	if !cfg.DisableMuWarmStart && vs.warmMu != nil {
		opts.InitialMu = shiftMu(vs.warmMu, vs.muFrom, vs.muTo, from, to, in)
	}
	// Cross-window P2 reuse: declare how far this window slid past the
	// workspace's *actually bound* window, so overlapping slots keep their
	// coefficient precompute and carry their dual load iterates. The hint
	// is verified per slot inside the bind against the demand plane, but
	// that check cannot distinguish two slots with identical planes
	// (stationary demand), so the alignment here must be exact: it is
	// measured from wsFrom — the last window a solve attempt really bound
	// — never from a window whose attempts were all consumed by injected
	// faults before reaching the solver.
	if !cfg.DisableIterateWarmStart && vs.wsBound && from > vs.wsFrom {
		opts.Advance = from - vs.wsFrom
	} else {
		opts.Advance = 0
	}

	wctx, wSpan := obs.StartSpan(ctx, "window_solve")
	wSpan.Set("version", v)
	wSpan.Set("tau", tau)
	wSpan.Set("from", from)
	wSpan.Set("to", to)

	// The budget context spans every retry attempt and the backoff
	// sleeps between them: retrying never outlives the slot budget.
	solveCtx, cancel := wctx, context.CancelFunc(nil)
	if cfg.SlotBudget > 0 {
		solveCtx, cancel = context.WithTimeout(wctx, cfg.SlotBudget)
	}
	var seam solveSeam
	solveStart := time.Now()
	sol, err := solveWithRetry(solveCtx, win, opts, cfg, vs.armed, v, tau, &vs.stats, &seam)
	if cancel != nil {
		cancel()
	}
	solveDur := time.Since(solveStart)
	if err != nil {
		if ctx.Err() != nil {
			wSpan.End()
			// Parent cancellation: fail the version. Anything else —
			// budget overrun (DeadlineExceeded with a live parent) or a
			// solve that kept failing through its retries — walks the
			// degradation ladder: a failure-aware controller must
			// commit something feasible for the slot.
			return fmt.Errorf("online: version %d window [%d, %d): %w", v, from, to, err)
		}
		var mode string
		sol, mode, err = degradeWindow(ctx, cfg, win, sol)
		if err != nil {
			wSpan.End()
			return fmt.Errorf("online: version %d window [%d, %d): degraded solve: %w", v, from, to, err)
		}
		wSpan.Set("degraded", mode)
		vs.stats.Degraded++
		mDegraded.Inc()
		if cfg.Telemetry.Enabled() {
			fields := obs.Fields{
				"controller": cfg.Name(),
				"version":    v,
				"tau":        tau,
				"from":       from,
				"to":         to,
				"budget_ms":  float64(cfg.SlotBudget) / float64(time.Millisecond),
				"mode":       mode,
				"iterations": sol.Iterations,
				"solve_ms":   float64(solveDur) / float64(time.Millisecond),
			}
			if !math.IsInf(sol.Gap, 1) {
				fields["gap"] = sol.Gap
			}
			cfg.Telemetry.Emit("solve_degraded", fields)
		}
	}
	vs.stats.Solves++
	vs.stats.DualIters += sol.Iterations
	mWindowSolves.Inc()
	mDualIters.Add(int64(sol.Iterations))
	mWindowTime.Observe(solveDur)
	if !math.IsInf(sol.Gap, 1) {
		mWindowGapH.Observe(sol.Gap)
	}
	wSpan.Set("iterations", sol.Iterations)
	wSpan.Set("converged", sol.Converged)
	wSpan.End()
	if cfg.Telemetry.Enabled() {
		fields := obs.Fields{
			"controller": cfg.Name(),
			"version":    v,
			"tau":        tau,
			"from":       from,
			"to":         to,
			"commit_to":  commitEnd,
			"iterations": sol.Iterations,
			"converged":  sol.Converged,
			"solve_ms":   float64(solveDur) / float64(time.Millisecond),
		}
		if !math.IsInf(sol.Gap, 1) {
			fields["gap"] = sol.Gap
		}
		cfg.Telemetry.Emit("window_solve", fields)
	}

	// Advance the two warm-start seams independently (the bug fix; see the
	// type comment). μ: carry only multipliers that exist, aligned to this
	// window. Workspace: bound to this window iff some attempt entered
	// core.Solve and the last such attempt did not panic out of it (a
	// panicking solve poisons the half-bound workspace, which guardedSolve
	// already invalidated).
	if sol.Mu != nil {
		vs.warmMu, vs.muFrom, vs.muTo = sol.Mu, from, to
	} else {
		vs.warmMu = nil
	}
	if seam.entered {
		if seam.panicked {
			vs.wsBound = false
		} else {
			vs.wsBound = true
			vs.wsTau, vs.wsFrom, vs.wsTo = tau, from, to
			vs.wsInitial = vs.virtualPrev
		}
	}

	for t := from; t < commitEnd; t++ {
		vs.xa[t] = sol.Trajectory[t-from].X
		vs.ya[t] = sol.Trajectory[t-from].Y
	}
	vs.virtualPrev = vs.xa[commitEnd-1]
	if eventCut > 0 {
		vs.stats.Replans++
		mReplans.Inc()
		if cfg.Telemetry.Enabled() {
			cfg.Telemetry.Emit("replan", obs.Fields{
				"controller": cfg.Name(),
				"version":    v,
				"tau":        tau,
				"event_slot": eventCut,
				"committed":  commitEnd - from,
			})
		}
	}
	vs.tau = commitEnd
	return nil
}

// solveSeam records, for one window's retry loop, whether any attempt
// actually entered core.Solve (fault-injected attempts do not) and
// whether the last attempt that did panicked out of it — together they
// determine what the shared workspace is bound to afterwards.
type solveSeam struct {
	entered  bool
	panicked bool
}

// solvePanicError marks a window solve that panicked inside core.Solve
// (as opposed to an injected worker panic, which is routed through the
// supervised fan-out and never reaches the solver).
type solvePanicError struct{ value any }

func (e *solvePanicError) Error() string {
	return fmt.Sprintf("online: window solve panicked: %v", e.value)
}

// solveWithRetry is the per-window solve wrapped in the bounded
// retry-with-backoff of cfg.Retry, with the schedule's solver faults
// injected per attempt. Context errors — parent cancellation or slot
// budget exhaustion — are never retried; the caller distinguishes them.
// On failure the best partial result seen (an interrupted solve's
// best-so-far iterate) is returned alongside the error so the
// degradation ladder can still use it.
func solveWithRetry(ctx context.Context, win *model.Instance, opts core.Options, cfg Config,
	armed *fault.Armed, v, tau int, stats *VersionStats, seam *solveSeam) (*core.Result, error) {

	var best *core.Result
	backoff := cfg.Retry.Backoff
	for attempt := 0; ; attempt++ {
		sol, err := solveOnce(ctx, win, opts, armed, tau, seam)
		if err == nil {
			return sol, nil
		}
		if sol != nil {
			best = sol
		}
		if ctx.Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return best, err
		}
		if attempt >= cfg.Retry.Max {
			return best, err
		}
		stats.Retries++
		mRetries.Inc()
		if cfg.Telemetry.Enabled() {
			cfg.Telemetry.Emit("retry", obs.Fields{
				"controller": cfg.Name(),
				"version":    v,
				"tau":        tau,
				"attempt":    attempt + 1,
				"backoff_ms": float64(backoff) / float64(time.Millisecond),
				"error":      err.Error(),
			})
		}
		timer := time.NewTimer(backoff)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return best, err
		}
		backoff = time.Duration(float64(backoff) * cfg.Retry.Factor)
	}
}
