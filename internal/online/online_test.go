package online

import (
	"context"
	"math"
	"strings"
	"testing"

	"edgecache/internal/core"
	"edgecache/internal/model"
	"edgecache/internal/workload"
)

// smallInstance builds a quick-to-solve online test instance.
func smallInstance(t *testing.T, mutate func(*workload.InstanceConfig)) (*model.Instance, *workload.Predictor) {
	t.Helper()
	cfg := workload.PaperDefault()
	cfg.T = 12
	cfg.K = 6
	cfg.ClassesPerSBS = 4
	cfg.CacheCap = 2
	cfg.Bandwidth = 6
	cfg.Beta = 5
	if mutate != nil {
		mutate(&cfg)
	}
	in, err := workload.BuildInstance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := workload.NewPredictor(in.Demand, 0.1, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	return in, pred
}

func TestConfigNames(t *testing.T) {
	tests := []struct {
		cfg  Config
		want string
	}{
		{RHC(10), "RHC(w=10)"},
		{AFHC(8), "AFHC(w=8)"},
		{CHC(10, 5), "CHC(w=10,r=5)"},
	}
	for _, tc := range tests {
		if got := tc.cfg.Name(); got != tc.want {
			t.Errorf("Name = %q, want %q", got, tc.want)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	in, pred := smallInstance(t, nil)
	bad := []Config{
		{Window: 0},
		{Window: 4, Commitment: 5},
		{Window: 4, Commitment: -1},
		{Window: 4, Commitment: 2, Rho: 1.5},
		{Window: 4, Commitment: 2, LoadMode: LoadMode(9)},
	}
	for i, cfg := range bad {
		if _, err := Run(context.Background(), in, pred, cfg); err == nil {
			t.Errorf("case %d: Run accepted invalid config %+v", i, cfg)
		}
	}
	if _, err := Run(context.Background(), in, nil, RHC(4)); err == nil {
		t.Error("Run accepted nil predictor")
	}
	other, _ := smallInstance(t, func(c *workload.InstanceConfig) { c.Seed = 99 })
	if _, err := Run(context.Background(), in, mustPredictor(t, other), RHC(4)); err == nil {
		t.Error("Run accepted predictor with foreign truth")
	}
}

func mustPredictor(t *testing.T, in *model.Instance) *workload.Predictor {
	t.Helper()
	p, err := workload.NewPredictor(in.Demand, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRHCProducesFeasibleIntegralTrajectory(t *testing.T) {
	in, pred := smallInstance(t, nil)
	res, err := Run(context.Background(), in, pred, RHC(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trajectory) != in.T {
		t.Fatalf("trajectory has %d slots, want %d", len(res.Trajectory), in.T)
	}
	for tt, dec := range res.Trajectory {
		if !dec.X.IsIntegral(0) {
			t.Fatalf("slot %d: fractional placement", tt)
		}
	}
	if err := in.CheckTrajectory(res.Trajectory, 1e-6); err != nil {
		t.Fatal(err)
	}
	if res.WindowSolves != in.T {
		t.Fatalf("RHC made %d window solves, want %d", res.WindowSolves, in.T)
	}
}

func TestCHCAndAFHCFeasible(t *testing.T) {
	in, pred := smallInstance(t, nil)
	for _, cfg := range []Config{CHC(4, 2), AFHC(4)} {
		res, err := Run(context.Background(), in, pred, cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name(), err)
		}
		if err := in.CheckTrajectory(res.Trajectory, 1e-6); err != nil {
			t.Fatalf("%s: %v", cfg.Name(), err)
		}
		for tt, dec := range res.Trajectory {
			if !dec.X.IsIntegral(0) {
				t.Fatalf("%s slot %d: fractional placement after rounding", cfg.Name(), tt)
			}
			for n := 0; n < in.N; n++ {
				if len(dec.X.Items(n)) > in.CacheCap[n] {
					t.Fatalf("%s slot %d: capacity exceeded after rounding", cfg.Name(), tt)
				}
			}
		}
	}
}

func TestReactiveMode(t *testing.T) {
	in, pred := smallInstance(t, nil)
	cfg := RHC(4)
	cfg.LoadMode = LoadReactive
	res, err := Run(context.Background(), in, pred, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.CheckTrajectory(res.Trajectory, 1e-6); err != nil {
		t.Fatal(err)
	}
}

func TestPerfectPredictionRHCNearOffline(t *testing.T) {
	in, _ := smallInstance(t, nil)
	pred, err := workload.NewPredictor(in.Demand, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Full-horizon window + exact predictions ⇒ RHC should be close to the
	// offline solve (same solver, same information).
	res, err := Run(context.Background(), in, pred, RHC(in.T))
	if err != nil {
		t.Fatal(err)
	}
	off, err := core.Solve(context.Background(), in, core.Options{MaxIter: 40})
	if err != nil {
		t.Fatal(err)
	}
	onCost := in.TotalCost(res.Trajectory).Total
	if onCost > off.Cost.Total*1.25+1e-9 {
		t.Fatalf("full-window RHC %g much worse than offline %g", onCost, off.Cost.Total)
	}
}

func TestRoundPlacement(t *testing.T) {
	in, _ := smallInstance(t, nil)
	avg := model.NewCachePlan(in.N, in.K)
	avg[0][0] = 0.9
	avg[0][1] = 0.5
	avg[0][2] = 0.45
	avg[0][3] = 0.2 // below ρ
	x, candidates, dropped, droppedSBS := roundPlacement(in, 0, avg, DefaultRho)
	// Capacity 2: top-2 of the three candidates survive.
	if x[0][0] != 1 || x[0][1] != 1 {
		t.Fatalf("top candidates dropped: %v", x[0])
	}
	if x[0][2] != 0 || x[0][3] != 0 {
		t.Fatalf("capacity repair failed: %v", x[0])
	}
	if candidates != 3 || dropped != 1 || droppedSBS != 1 {
		t.Fatalf("repair stats = (%d candidates, %d dropped, %d SBSs), want (3, 1, 1)", candidates, dropped, droppedSBS)
	}
}

func TestRoundPlacementTieBreak(t *testing.T) {
	in, _ := smallInstance(t, nil)
	avg := model.NewCachePlan(in.N, in.K)
	for k := 0; k < 4; k++ {
		avg[0][k] = 0.5
	}
	x, _, _, _ := roundPlacement(in, 0, avg, DefaultRho)
	if x[0][0] != 1 || x[0][1] != 1 || x[0][2] != 0 {
		t.Fatalf("tie break not deterministic toward low indices: %v", x[0])
	}
}

func TestPredictedLoadZeroesAndRescales(t *testing.T) {
	in, _ := smallInstance(t, func(c *workload.InstanceConfig) { c.Bandwidth = 1 })
	x := model.NewCachePlan(in.N, in.K)
	x[0][0] = 1
	avgY := model.NewLoadPlan(in.Classes, in.K)
	for m := 0; m < in.Classes[0]; m++ {
		avgY[0][m][0] = 1
		avgY[0][m][1] = 0.7 // not cached → must be zeroed
	}
	y, repaired := predictedLoad(in, 0, x, avgY)
	row := in.Demand.CopySlot(nil, 0, 0)
	var rawLoad float64
	for m := 0; m < in.Classes[0]; m++ {
		rawLoad += row[m*in.K] // avgY = 1 for the cached content
	}
	if wantRepair := rawLoad > in.Bandwidth[0]; wantRepair != (repaired == 1) {
		t.Fatalf("repaired = %d with raw load %g vs bandwidth %g", repaired, rawLoad, in.Bandwidth[0])
	}
	var load float64
	for m := 0; m < in.Classes[0]; m++ {
		if y[0][m][1] != 0 {
			t.Fatalf("uncached content served: %g", y[0][m][1])
		}
		load += row[m*in.K] * y[0][m][0]
	}
	if load > in.Bandwidth[0]+1e-9 {
		t.Fatalf("load %g exceeds bandwidth %g after rescale", load, in.Bandwidth[0])
	}
}

func TestLoadModeString(t *testing.T) {
	if LoadPredicted.String() != "predicted" || LoadReactive.String() != "reactive" {
		t.Fatal("LoadMode.String mismatch")
	}
	if !strings.Contains(LoadMode(7).String(), "7") {
		t.Fatal("unknown LoadMode not reported")
	}
}

func TestDefaultRhoValue(t *testing.T) {
	if math.Abs(DefaultRho-0.381966) > 1e-5 {
		t.Fatalf("DefaultRho = %g, want (3−√5)/2 ≈ 0.381966", DefaultRho)
	}
}

func TestLargerWindowHelpsOnAverage(t *testing.T) {
	// With drifting demand and modest noise, w = 6 should beat w = 1 — the
	// central claim behind Fig. 3a. A single seed could be unlucky, so
	// average over a few.
	var short, long float64
	for seed := uint64(1); seed <= 3; seed++ {
		in, pred := smallInstance(t, func(c *workload.InstanceConfig) {
			c.Seed = seed
			c.Workload.Jitter = 0.3
			c.Beta = 20
		})
		rs, err := Run(context.Background(), in, pred, RHC(1))
		if err != nil {
			t.Fatal(err)
		}
		rl, err := Run(context.Background(), in, pred, RHC(6))
		if err != nil {
			t.Fatal(err)
		}
		short += in.TotalCost(rs.Trajectory).Total
		long += in.TotalCost(rl.Trajectory).Total
	}
	if long > short*1.02 {
		t.Fatalf("w=6 cost %g worse than w=1 cost %g", long, short)
	}
}

func TestMuWarmStartAblationAgrees(t *testing.T) {
	in, pred := smallInstance(t, nil)
	warm, err := Run(context.Background(), in, pred, RHC(4))
	if err != nil {
		t.Fatal(err)
	}
	cfg := RHC(4)
	cfg.DisableMuWarmStart = true
	cold, err := Run(context.Background(), in, pred, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cw := in.TotalCost(warm.Trajectory).Total
	cc := in.TotalCost(cold.Trajectory).Total
	// Warm starting changes solver accuracy, not the algorithm; costs must
	// be in the same ballpark.
	if math.Abs(cw-cc) > 0.2*math.Max(cw, cc) {
		t.Fatalf("warm %g vs cold %g differ too much", cw, cc)
	}
}

func TestFHCSingleVersion(t *testing.T) {
	in, pred := smallInstance(t, nil)
	res, err := Run(context.Background(), in, pred, FHC(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := in.CheckTrajectory(res.Trajectory, 1e-6); err != nil {
		t.Fatal(err)
	}
	// T = 12, w = 4 → exactly 3 window solves (one version).
	if res.WindowSolves != 3 {
		t.Fatalf("FHC made %d solves, want 3", res.WindowSolves)
	}
	if got := FHC(4).Name(); got != "FHC(w=4)" {
		t.Fatalf("Name = %q", got)
	}
	// FHC's committed actions are integral window solutions: no rounding
	// artefacts, so the relaxed and committed placements coincide.
	for tt, dec := range res.Trajectory {
		if !dec.X.IsIntegral(0) {
			t.Fatalf("slot %d fractional", tt)
		}
	}
}

func TestAFHCAveragesFHCVersions(t *testing.T) {
	// Sanity relation: AFHC's window-solve count is w× FHC's (staggered
	// copies), modulo boundary effects.
	in, pred := smallInstance(t, nil)
	fhc, err := Run(context.Background(), in, pred, FHC(4))
	if err != nil {
		t.Fatal(err)
	}
	afhc, err := Run(context.Background(), in, pred, AFHC(4))
	if err != nil {
		t.Fatal(err)
	}
	if afhc.WindowSolves <= fhc.WindowSolves {
		t.Fatalf("AFHC made %d solves, FHC %d", afhc.WindowSolves, fhc.WindowSolves)
	}
}
