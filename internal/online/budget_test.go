package online

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"edgecache/internal/model"
	"edgecache/internal/obs"
)

// recordSink collects events by type, concurrency-safe (staggered FHC
// versions emit in parallel).
type recordSink struct {
	mu     sync.Mutex
	events []obs.Event
}

func (s *recordSink) Emit(e obs.Event) {
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

func (s *recordSink) byType(typ string) []obs.Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []obs.Event
	for _, e := range s.events {
		if e.Type == typ {
			out = append(out, e)
		}
	}
	return out
}

// TestImpossibleSlotBudgetDegradesGracefully is the issue's acceptance
// scenario: a budget no solver can meet must still yield a feasible
// trajectory — every window falls back — and each degraded window must
// announce itself via a solve_degraded event.
func TestImpossibleSlotBudgetDegradesGracefully(t *testing.T) {
	in, pred := smallInstance(t, nil)
	sink := &recordSink{}
	cfg := RHC(4)
	cfg.SlotBudget = time.Nanosecond
	cfg.Telemetry = obs.New(sink, obs.NewRegistry())
	res, err := Run(context.Background(), in, pred, cfg)
	if err != nil {
		t.Fatalf("budgeted run failed instead of degrading: %v", err)
	}
	if err := in.CheckTrajectory(res.Trajectory, 1e-6); err != nil {
		t.Fatalf("degraded trajectory infeasible: %v", err)
	}
	if res.Degraded == 0 {
		t.Fatal("1ns budget degraded no windows")
	}
	if res.Degraded != res.WindowSolves {
		t.Fatalf("degraded %d of %d window solves; a 1ns budget must degrade all", res.Degraded, res.WindowSolves)
	}
	events := sink.byType("solve_degraded")
	if len(events) != res.Degraded {
		t.Fatalf("%d solve_degraded events for %d degraded windows", len(events), res.Degraded)
	}
	for _, e := range events {
		if e.Fields["mode"] != "best_iterate" && e.Fields["mode"] != "fallback" {
			t.Fatalf("solve_degraded mode = %v, want best_iterate or fallback", e.Fields["mode"])
		}
	}
}

// TestDegradedRunIsDeterministic: under a fixed seed the degraded
// trajectory must be reproducible — the fallback path contains no
// time- or scheduling-dependent choices.
func TestDegradedRunIsDeterministic(t *testing.T) {
	run := func() *Result {
		in, pred := smallInstance(t, nil)
		cfg := CHC(4, 2)
		cfg.SlotBudget = time.Nanosecond
		res, err := Run(context.Background(), in, pred, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Degraded != b.Degraded {
		t.Fatalf("degraded counts differ: %d vs %d", a.Degraded, b.Degraded)
	}
	if !reflect.DeepEqual(a.Trajectory, b.Trajectory) {
		t.Fatal("degraded trajectories differ across identical runs")
	}
}

// TestCustomFallbackIsUsed: a caller-supplied fallback replaces the LRFU
// default and its (feasible) plan is committed verbatim.
func TestCustomFallbackIsUsed(t *testing.T) {
	in, pred := smallInstance(t, nil)
	var calls int
	cfg := RHC(4)
	cfg.SlotBudget = time.Nanosecond
	cfg.Fallback = func(ctx context.Context, win *model.Instance) (model.Trajectory, error) {
		calls++
		// Cache nothing, serve everything from the BS: trivially feasible.
		traj := model.NewTrajectory(win)
		return traj, nil
	}
	res, err := Run(context.Background(), in, pred, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("custom fallback never invoked")
	}
	for t0 := 0; t0 < in.T; t0++ {
		for k := 0; k < in.K; k++ {
			if res.Trajectory[t0].X[0][k] != 0 {
				t.Fatalf("slot %d caches content %d; custom no-caching fallback was not committed", t0, k)
			}
		}
	}
}

// TestFallbackErrorFailsRun: a fallback that cannot produce a feasible
// plan is a hard error, not a silent hole in the trajectory.
func TestFallbackErrorFailsRun(t *testing.T) {
	in, pred := smallInstance(t, nil)
	cfg := RHC(4)
	cfg.SlotBudget = time.Nanosecond
	cfg.Fallback = func(ctx context.Context, win *model.Instance) (model.Trajectory, error) {
		return nil, fmt.Errorf("fallback exploded")
	}
	if _, err := Run(context.Background(), in, pred, cfg); err == nil {
		t.Fatal("run succeeded with a failing fallback")
	}
}

// TestRunCancelledMidWindow: cancelling the parent context — as opposed
// to a per-window budget expiry — must abort the run with a wrapped
// context error, not degrade it.
func TestRunCancelledMidWindow(t *testing.T) {
	in, pred := smallInstance(t, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, in, pred, RHC(4))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
}

// TestParentDeadlineIsNotDegraded: when the whole-run context itself
// carries the deadline that expires, the run must fail (the caller's
// deadline is gone) rather than degrade-and-continue.
func TestParentDeadlineIsNotDegraded(t *testing.T) {
	in, pred := smallInstance(t, nil)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	cfg := RHC(4)
	cfg.SlotBudget = time.Minute
	_, err := Run(ctx, in, pred, cfg)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want wrapped context.DeadlineExceeded", err)
	}
}

func TestNegativeSlotBudgetRejected(t *testing.T) {
	in, pred := smallInstance(t, nil)
	cfg := RHC(4)
	cfg.SlotBudget = -time.Second
	if _, err := Run(context.Background(), in, pred, cfg); err == nil {
		t.Fatal("accepted negative slot budget")
	}
}
