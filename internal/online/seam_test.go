package online

import (
	"context"
	"testing"

	"edgecache/internal/fault"
	"edgecache/internal/model"
)

// TestWorkspaceSeamSurvivesFullyFaultedWindow pins the warm-start seam
// contract that the pre-refactor controller violated: a window whose
// every solve attempt is consumed by injected faults never reaches
// core.Solve, so the solver workspace stays bound to the previous
// window — and the next window's Options.Advance must be measured from
// that window, not from the unsolved one. The old code tracked a single
// prevFrom for both the μ block and the workspace, advanced it
// unconditionally, and on the next window handed BindAdvance a hint one
// slot short; on stationary demand the per-slot plane verification
// cannot catch that, so dual iterates were silently rotated onto the
// wrong absolute slots.
func TestWorkspaceSeamSurvivesFullyFaultedWindow(t *testing.T) {
	in, pred := smallInstance(t, nil)
	cfg, err := RHC(4).withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	// Retry.Max defaults to 2, so attempts = 3 consumes every attempt of
	// the window at τ = 2 and the window degrades to the fallback.
	sched := &fault.Schedule{Injectors: []fault.Injector{
		fault.SolverFault{Slot: 2, Attempts: 3},
	}}
	xa := make([]model.CachePlan, in.T)
	ya := make([]model.LoadPlan, in.T)
	vs := newVersionState(in, pred, cfg, 0, sched.Arm(), in.EventSlots(), xa, ya)
	ctx := context.Background()

	// τ = 0 and τ = 1 solve normally: the workspace follows the windows.
	for want := 0; want <= 1; want++ {
		if err := vs.step(ctx); err != nil {
			t.Fatal(err)
		}
		if !vs.wsBound || vs.wsFrom != want {
			t.Fatalf("after τ=%d: wsBound=%v wsFrom=%d, want bound at %d", want, vs.wsBound, vs.wsFrom, want)
		}
		if vs.warmMu == nil || vs.muFrom != want {
			t.Fatalf("after τ=%d: muFrom=%d (warmMu nil: %v), want %d", want, vs.muFrom, vs.warmMu == nil, want)
		}
	}

	// τ = 2: all attempts injected, degradation commits the fallback. The
	// workspace seam must NOT advance (no attempt entered the solver), and
	// the μ carry must drop (the fallback has no multipliers).
	if err := vs.step(ctx); err != nil {
		t.Fatal(err)
	}
	if vs.stats.Degraded != 1 || vs.stats.Retries != 2 {
		t.Fatalf("faulted window: stats = %+v, want 1 degraded / 2 retries", vs.stats)
	}
	if !vs.wsBound || vs.wsFrom != 1 {
		t.Fatalf("faulted window moved the workspace seam: wsBound=%v wsFrom=%d, want bound at 1", vs.wsBound, vs.wsFrom)
	}
	if vs.warmMu != nil {
		t.Fatal("fallback window kept a stale μ carry")
	}
	if vs.xa[2] == nil || vs.ya[2] == nil {
		t.Fatal("faulted window committed nothing")
	}

	// τ = 3 solves normally again: Advance is measured from wsFrom = 1
	// (two slots), the solve succeeds, and both seams land on 3.
	if err := vs.step(ctx); err != nil {
		t.Fatal(err)
	}
	if !vs.wsBound || vs.wsFrom != 3 || vs.wsTau != 3 {
		t.Fatalf("recovered window: wsFrom=%d wsTau=%d, want 3/3", vs.wsFrom, vs.wsTau)
	}
	if vs.warmMu == nil || vs.muFrom != 3 {
		t.Fatalf("recovered window: muFrom=%d (warmMu nil: %v), want 3", vs.muFrom, vs.warmMu == nil)
	}
}

// TestWorkspaceSeamSurvivesInjectedPanics pins the other half of the
// seam contract: injected worker panics are routed through the parallel
// supervisor without ever reaching core.Solve, so — like injected
// errors — they must not move the workspace seam or poison the binding.
func TestWorkspaceSeamSurvivesInjectedPanics(t *testing.T) {
	in, pred := smallInstance(t, nil)
	cfg, err := RHC(4).withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	sched := &fault.Schedule{Injectors: []fault.Injector{
		fault.SolverFault{Slot: 2, Panic: true, Attempts: 3},
	}}
	xa := make([]model.CachePlan, in.T)
	ya := make([]model.LoadPlan, in.T)
	vs := newVersionState(in, pred, cfg, 0, sched.Arm(), in.EventSlots(), xa, ya)
	ctx := context.Background()
	for tau := 0; tau <= 2; tau++ {
		if err := vs.step(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if !vs.wsBound || vs.wsFrom != 1 {
		t.Fatalf("panicked window moved the workspace seam: wsBound=%v wsFrom=%d, want bound at 1", vs.wsBound, vs.wsFrom)
	}
	if vs.stats.Degraded != 1 {
		t.Fatalf("panicked window: stats = %+v, want 1 degraded", vs.stats)
	}
	if err := vs.step(ctx); err != nil {
		t.Fatal(err)
	}
	if !vs.wsBound || vs.wsFrom != 3 {
		t.Fatalf("recovered window: wsFrom=%d, want 3", vs.wsFrom)
	}
}

// TestShiftMuTailWindows pins shiftMu at the horizon tail, where windows
// shrink (to − from < w): the overlap must stay aligned to absolute
// slots with no stale trailing planes.
func TestShiftMuTailWindows(t *testing.T) {
	in, _ := smallInstance(t, nil) // T = 12
	tag := func(from, to int) [][][]float64 {
		mu := make([][][]float64, to-from)
		for i := range mu {
			mu[i] = make([][]float64, in.N)
			for n := range mu[i] {
				mu[i][n] = make([]float64, in.Classes[n]*in.K)
				mu[i][n][0] = float64(from + i)
			}
		}
		return mu
	}
	// Shrinking tail: previous window [8, 12), next [9, 12) — 3 slots,
	// all overlapping; nothing new enters.
	out := shiftMu(tag(8, 12), 8, 12, 9, 12, in)
	if len(out) != 3 {
		t.Fatalf("tail window has %d slots, want 3", len(out))
	}
	for i := 0; i < 3; i++ {
		if got, want := out[i][0][0], float64(9+i); got != want {
			t.Fatalf("tail slot %d carries µ from absolute slot %g, want %g", i, got, want)
		}
	}
	// Degenerate tail: previous [10, 12), next [11, 12) — one slot.
	out = shiftMu(tag(10, 12), 10, 12, 11, 12, in)
	if len(out) != 1 || out[0][0][0] != 11 {
		t.Fatalf("single-slot tail misaligned: %v", out[0][0][:1])
	}
}
