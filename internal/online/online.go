// Package online implements the paper's online controllers (§IV): Receding
// Horizon Control (RHC), Averaging Fixed Horizon Control (AFHC) and their
// generalisation Committed Horizon Control (CHC), all in the integer
// variants the paper introduces.
//
// All three share the Fixed Horizon Control building block: at decision
// time τ, solve the joint problem (Algorithm 1, package core) over the
// prediction window [τ, τ+w) using noisy demand forecasts, starting from
// the controller's committed placement at τ−1. They differ in commitment:
//
//   - RHC (Algorithm 2) re-solves every slot and commits only the first
//     action; it is CHC with commitment level r = 1.
//   - CHC (Algorithm 3) runs r staggered FHC versions, each committing r
//     consecutive slots per solve, and averages the r versions' actions at
//     every slot.
//   - AFHC is CHC with r = w.
//
// Averaged placements are fractional, so CHC/AFHC apply the paper's
// rounding policy: x = 1 iff the average ≥ ρ with ρ = (3−√5)/2 (the
// minimiser of the 2.62-approximation bound of Theorem 3), then y is
// zeroed wherever x = 0. Two repairs the paper leaves implicit are made
// explicit here and documented in DESIGN.md: rounding can exceed the cache
// capacity (kept: top-C_n by average), and the committed load split can
// exceed the true bandwidth because each version budgeted against
// predicted demand (kept: proportional rescale).
package online

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"edgecache/internal/baseline"
	"edgecache/internal/core"
	"edgecache/internal/fault"
	"edgecache/internal/loadbalance"
	"edgecache/internal/model"
	"edgecache/internal/obs"
	"edgecache/internal/parallel"
	"edgecache/internal/workload"
)

// Always-on controller metrics (atomic; read by -metrics, /debug/vars).
var (
	mWindowSolves = obs.Default.Counter("online.window_solves")
	mDualIters    = obs.Default.Counter("online.dual_iterations")
	mWindowTime   = obs.Default.Timer("online.window_solve")
	mCapDrops     = obs.Default.Counter("online.capacity_drops")
	mBWRepairs    = obs.Default.Counter("online.bandwidth_repairs")
	mDegraded     = obs.Default.Counter("solver.degraded")
	mReplans      = obs.Default.Counter("fault.replans")
	mRetries      = obs.Default.Counter("fault.retries")
	mWindowGapH   = obs.Default.Histogram("online.window_gap")
	mChurnH       = obs.Default.Histogram("online.slot_churn")
)

// DefaultRho is the rounding threshold ρ = (3−√5)/2 ≈ 0.382 of Theorem 3.
var DefaultRho = (3 - math.Sqrt(5)) / 2

// LoadMode selects how the committed load split y is produced.
type LoadMode int

const (
	// LoadPredicted commits the (averaged, rounded-consistent) load split
	// computed from the prediction windows — the paper-literal behaviour.
	// The split is rescaled if true demand would exceed the bandwidth.
	LoadPredicted LoadMode = iota + 1
	// LoadReactive recomputes the optimal load split for the committed
	// placement against the realised demand of the slot. This models a
	// system whose request routing reacts at per-slot timescale while only
	// the cache is pre-positioned; it isolates prediction noise to the
	// caching decision.
	LoadReactive
)

// String names the mode.
func (m LoadMode) String() string {
	switch m {
	case LoadPredicted:
		return "predicted"
	case LoadReactive:
		return "reactive"
	default:
		return fmt.Sprintf("LoadMode(%d)", int(m))
	}
}

// FallbackPlanner plans a feasible trajectory for a window instance when
// a budgeted solve had to be abandoned with no usable iterate — the last
// rung of the degradation ladder. The window's demand tensor holds the
// predicted rates and its initial plan the controller's committed state,
// so a fallback needs no other context. Implementations must be cheap
// (they run inside an already-blown slot budget) and deterministic.
type FallbackPlanner func(ctx context.Context, win *model.Instance) (model.Trajectory, error)

// DefaultFallback is the paper-native degraded mode: the LRFU placement
// of §V-A (top-C contents by predicted request volume, per slot) with the
// reactive load split (the optimal split for that placement, package
// loadbalance). It is the ladder's bottom rung — rule-based, feasible by
// construction, and orders of magnitude cheaper than a window solve.
func DefaultFallback(ctx context.Context, win *model.Instance) (model.Trajectory, error) {
	return baseline.NewLRFU().Plan(ctx, win)
}

// RetryPolicy bounds the retry-with-backoff wrapper around each window
// solve — the first rung of failure handling, tried before the
// degradation ladder (best-so-far iterate → Fallback). Retries share the
// window's slot budget: the deadline context spans every attempt and the
// backoff sleeps between them, so retrying never outlives the slot.
// Context errors (cancellation, budget exhaustion) are never retried.
type RetryPolicy struct {
	// Max is the number of retries after the first attempt. 0 selects
	// the default (2); negative disables retrying.
	Max int
	// Backoff is the sleep before the first retry (default 2ms).
	Backoff time.Duration
	// Factor multiplies the backoff after each retry (default 2).
	Factor float64
}

// Config describes one online controller.
type Config struct {
	// Window is the prediction horizon w ≥ 1.
	Window int
	// Commitment is the level r ∈ [1, Window]: 1 = RHC, Window = AFHC.
	Commitment int
	// Rho is the rounding threshold ρ ∈ (0, 1); 0 selects DefaultRho.
	Rho float64
	// LoadMode defaults to LoadPredicted.
	LoadMode LoadMode
	// Core configures the per-window Algorithm 1 solves. A zero value gets
	// window-appropriate defaults (fewer dual iterations than a full
	// offline solve; the μ warm start across overlapping windows makes up
	// the difference).
	Core core.Options
	// DisableMuWarmStart turns off carrying shifted dual multipliers
	// between consecutive window solves of the same FHC version (kept as
	// an ablation knob; warm starts change results only through solver
	// accuracy).
	DisableMuWarmStart bool
	// DisableIterateWarmStart turns off the cross-window reuse of P2
	// solver state between consecutive window solves of the same FHC
	// version: the shifted dual load iterates and the per-(t, n)
	// coefficient precompute of the overlapping slots stop carrying over
	// (core.Options.Advance stays 0 and every window rebinds from
	// scratch). The x/y analogue of DisableMuWarmStart, kept as an
	// ablation knob; like the μ warm start it changes results only
	// through solver accuracy. Reuse is verified per slot against the
	// actual demand plane, so under prediction noise (η > 0, where each
	// window re-forecasts overlapping slots) the carried state degrades
	// gracefully to a rebind.
	DisableIterateWarmStart bool
	// SingleVersion runs only version v = 0 instead of the r staggered
	// versions — plain Fixed Horizon Control, the classic baseline RHC
	// and AFHC generalise. No averaging occurs, so no rounding is needed.
	SingleVersion bool
	// SlotBudget bounds each window solve's wall-clock time — the
	// controller's per-slot compute deadline. When a solve overruns it the
	// controller degrades instead of erroring, walking the ladder
	// best-so-far iterate (finite duality gap) → Fallback, and emits a
	// solve_degraded event plus a solver.degraded counter increment.
	// 0 disables the budget (solves run to convergence or MaxIter).
	SlotBudget time.Duration
	// Fallback plans the degraded window when the budget expires before
	// any feasible iterate exists; nil selects DefaultFallback (the LRFU
	// placement with the reactive load split).
	Fallback FallbackPlanner
	// Retry bounds the in-budget retry of failed window solves; see
	// RetryPolicy. The zero value selects the defaults.
	Retry RetryPolicy
	// Faults, when non-nil, injects the schedule's solver-level faults
	// (fault.SolverFault clauses) into this run's window solves —
	// injected errors exercise the retry path, injected panics the
	// parallel supervisor. Topology faults (outages, degradation) and
	// prediction corruption do not act here: they are materialised into
	// the instance's overlay and the predictor by package sim before Run
	// ever sees them.
	Faults *fault.Schedule
	// Telemetry receives one window_solve event per FHC window solve and
	// one slot_decision event per committed slot (rounding decisions at
	// ρ, capacity/bandwidth repairs, cache churn). It is also forwarded
	// to the per-window Algorithm 1 solves, which then emit their own
	// solver_iteration events. Observational only; nil disables events.
	Telemetry *obs.Telemetry
}

// RHC returns the Receding Horizon Control configuration for window w.
func RHC(w int) Config { return Config{Window: w, Commitment: 1} }

// AFHC returns the Averaging Fixed Horizon Control configuration.
func AFHC(w int) Config { return Config{Window: w, Commitment: w} }

// CHC returns the Committed Horizon Control configuration with commitment
// level r.
func CHC(w, r int) Config { return Config{Window: w, Commitment: r} }

// FHC returns plain Fixed Horizon Control: solve every w slots, commit
// the whole window, no staggered averaging. It is the memoryless baseline
// of the RHC/AFHC literature; AFHC is exactly the average of w staggered
// copies of it.
func FHC(w int) Config { return Config{Window: w, Commitment: w, SingleVersion: true} }

// Name returns a short algorithm label ("RHC(w=10)", "CHC(w=10,r=5)", ...).
func (c Config) Name() string {
	switch {
	case c.SingleVersion:
		return fmt.Sprintf("FHC(w=%d)", c.Window)
	case c.Commitment <= 1:
		return fmt.Sprintf("RHC(w=%d)", c.Window)
	case c.Commitment >= c.Window:
		return fmt.Sprintf("AFHC(w=%d)", c.Window)
	default:
		return fmt.Sprintf("CHC(w=%d,r=%d)", c.Window, c.Commitment)
	}
}

func (c Config) withDefaults() (Config, error) {
	if c.Window < 1 {
		return c, fmt.Errorf("online: window %d, want ≥ 1", c.Window)
	}
	if c.Commitment == 0 {
		c.Commitment = 1
	}
	if c.Commitment < 1 || c.Commitment > c.Window {
		return c, fmt.Errorf("online: commitment %d outside [1, %d]", c.Commitment, c.Window)
	}
	if c.Rho == 0 {
		c.Rho = DefaultRho
	}
	if c.Rho <= 0 || c.Rho >= 1 {
		return c, fmt.Errorf("online: rho %g outside (0, 1)", c.Rho)
	}
	if c.LoadMode == 0 {
		c.LoadMode = LoadPredicted
	}
	if c.LoadMode != LoadPredicted && c.LoadMode != LoadReactive {
		return c, fmt.Errorf("online: unknown load mode %d", int(c.LoadMode))
	}
	if c.SlotBudget < 0 {
		return c, fmt.Errorf("online: negative slot budget %v", c.SlotBudget)
	}
	if c.Core.MaxIter == 0 {
		c.Core.MaxIter = 25
	}
	if c.Core.Epsilon == 0 {
		c.Core.Epsilon = 1e-3
	}
	if c.Core.StallIter == 0 {
		// Window solves keep iterating a little longer than the generic
		// default: committed actions feed future windows, so placement
		// quality compounds.
		c.Core.StallIter = 15
	}
	switch {
	case c.Retry.Max == 0:
		c.Retry.Max = 2
	case c.Retry.Max < 0:
		c.Retry.Max = 0
	}
	if c.Retry.Backoff <= 0 {
		c.Retry.Backoff = 2 * time.Millisecond
	}
	if c.Retry.Factor < 1 {
		c.Retry.Factor = 2
	}
	return c, nil
}

// Result is a completed online run.
type Result struct {
	// Trajectory is the committed, feasible decision sequence.
	Trajectory model.Trajectory
	// RelaxedCost is the objective value of the pre-rounding averaged
	// trajectory (fractional x is legal in the relaxed objective). It is
	// the C(X,Y)* of Theorem 3: the rounded trajectory's cost is provably
	// at most 2.62× this value, and tests verify the bound empirically.
	RelaxedCost float64
	// WindowSolves counts Algorithm 1 invocations across all versions.
	WindowSolves int
	// DualIterations sums the dual iterations over all window solves.
	DualIterations int
	// Degraded counts window solves that blew their SlotBudget and were
	// committed through the degradation ladder instead (best-so-far
	// iterate or fallback). Zero when no budget is set.
	Degraded int
	// Retries counts failed solve attempts that were retried in-budget
	// (fault.retries).
	Retries int
	// Replans counts commitments truncated at a topology event so the
	// post-event world could be re-solved immediately (fault.replans).
	Replans int
}

// Run executes the configured controller over the instance's horizon,
// reading demand forecasts from pred (whose truth tensor must be the
// instance's demand).
//
// Cancelling ctx aborts the run within one solver iteration, returning a
// wrapped ctx.Err(); cfg.SlotBudget bounds each window solve
// individually without failing the run (see Config.SlotBudget). A nil
// ctx means context.Background().
func Run(ctx context.Context, in *model.Instance, pred workload.Forecaster, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("online: %w", err)
	}
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if pred == nil {
		return nil, errors.New("online: nil predictor")
	}
	if pred.Truth() != in.Demand {
		return nil, errors.New("online: predictor truth is not the instance demand")
	}

	res := &Result{}
	r := cfg.Commitment
	versions := r
	if cfg.SingleVersion {
		versions = 1
	}

	// Armed solver faults (nil for fault-free runs) and the topology
	// events every version must replan at.
	armed := cfg.Faults.Arm()
	events := in.EventSlots()

	// Per-version committed actions for every real slot. Versions are
	// mutually independent (each sees only its own committed state and the
	// deterministic predictor), so they run in parallel. The fan-out is
	// supervised: a panic inside a version (solver bug, injected worker
	// panic that escaped the per-solve guard) fails the run with a
	// *parallel.PanicError instead of crashing the process.
	xa := make([][]model.CachePlan, versions)
	ya := make([][]model.LoadPlan, versions)
	stats := make([]VersionStats, versions)
	err = parallel.ForSupervised(ctx, versions, 0, func(v int) error {
		xa[v] = make([]model.CachePlan, in.T)
		ya[v] = make([]model.LoadPlan, in.T)
		return runVersion(ctx, in, pred, cfg, v, armed, events, xa[v], ya[v], &stats[v])
	})
	if err != nil {
		// A bare dispatch-time cancellation from parallel.For needs the
		// package prefix; version errors arrive already wrapped. errors.Is
		// (rather than ==) also matches cause-carrying context errors.
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, fmt.Errorf("online: %w", err)
		}
		return nil, err
	}
	for _, st := range stats {
		res.WindowSolves += st.Solves
		res.DualIterations += st.DualIters
		res.Degraded += st.Degraded
		res.Retries += st.Retries
		res.Replans += st.Replans
	}

	// Combine versions slot by slot: average, round, repair, commit.
	traj := make(model.Trajectory, in.T)
	comb := newCombiner(in, cfg, versions)
	for t := 0; t < in.T; t++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("online: commit at slot %d: %w", t, err)
		}
		if err := comb.average(t,
			func(v int) model.CachePlan { return xa[v][t] },
			func(v int) model.LoadPlan { return ya[v][t] }); err != nil {
			return nil, err
		}
		dec, err := comb.commit(t)
		if err != nil {
			return nil, err
		}
		traj[t] = dec
	}
	res.RelaxedCost = comb.relaxed

	if err := in.CheckTrajectory(traj, 1e-6); err != nil {
		return nil, fmt.Errorf("online: committed trajectory infeasible: %w", err)
	}
	res.Trajectory = traj
	if cfg.Telemetry.Enabled() {
		cfg.Telemetry.Emit("controller_done", obs.Fields{
			"controller":      cfg.Name(),
			"relaxed_cost":    res.RelaxedCost,
			"window_solves":   res.WindowSolves,
			"dual_iterations": res.DualIterations,
			"degraded":        res.Degraded,
			"retries":         res.Retries,
			"replans":         res.Replans,
		})
	}
	return res, nil
}

// runVersion executes FHC version v: solve at times τ ≡ v (mod r), commit
// slots [τ, τ+r). The start-up solve of versions v > 0 happens at τ = v−r
// (per Ψ_v of Algorithm 3, with zero demand before slot 0), which reduces
// to solving the clamped window [0, v−r+w) and committing [0, v).
//
// With a SlotBudget, each window solve runs under a deadline-carrying
// child context spanning every retry attempt; an overrun degrades the
// window (degradeWindow) rather than failing the version. Cancellation
// of the parent ctx always fails the version with a wrapped ctx.Err().
//
// Failure awareness: commitments are truncated at topology events (slots
// where some SBS's effective capacities change, in.EventSlots), so the
// post-event world is re-solved immediately instead of riding out stale
// commitments; the version then resumes its τ ≡ v (mod r) lattice at the
// next boundary, which keeps fault-free runs byte-identical to the
// pre-fault controller. Solve failures walk retry-with-backoff first
// (RetryPolicy), then the degradation ladder.
func runVersion(ctx context.Context, in *model.Instance, pred workload.Forecaster, cfg Config, v int,
	armed *fault.Armed, events []int, xa []model.CachePlan, ya []model.LoadPlan, stats *VersionStats) error {

	// Each FHC version gets its own trace track, so concurrent versions
	// render as separate Perfetto rows instead of interleaving.
	ctx, vSpan := obs.StartTrack(ctx, "version")
	vSpan.Set("controller", cfg.Name())
	vSpan.Set("version", v)
	defer vSpan.End()

	vs := newVersionState(in, pred, cfg, v, armed, events, xa, ya)
	for !vs.done() {
		if err := vs.step(ctx); err != nil {
			return err
		}
	}
	*stats = vs.stats
	return nil
}

// solveOnce runs one solve attempt, applying any armed solver fault for
// decision slot tau. Injected panics are routed through the supervised
// fan-out — the same machinery that guards real worker panics — and an
// extra recover converts panics escaping core.Solve itself into errors.
// seam records whether the attempt reached core.Solve (injected faults
// fail the attempt before the solver ever binds the workspace) and, if it
// did, whether it panicked out of it.
func solveOnce(ctx context.Context, win *model.Instance, opts core.Options, armed *fault.Armed, tau int, seam *solveSeam) (*core.Result, error) {
	if injErr, injPanic := armed.Inject(tau); injPanic {
		err := parallel.ForSupervised(ctx, 1, 1, func(int) error {
			panic(fmt.Sprintf("fault: injected worker panic at τ=%d", tau))
		})
		return nil, err
	} else if injErr != nil {
		return nil, injErr
	}
	seam.entered = true
	sol, err := guardedSolve(ctx, win, opts)
	var pe *solvePanicError
	seam.panicked = errors.As(err, &pe)
	return sol, err
}

// guardedSolve converts a panic anywhere inside the window solve into an
// error, so one crashing solve degrades its window instead of killing
// the run. The panic may have interrupted the workspace bind itself, so
// the workspace is invalidated: the next solve rebinds from scratch
// instead of advancing half-written state.
func guardedSolve(ctx context.Context, win *model.Instance, opts core.Options) (sol *core.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			if opts.Workspace != nil {
				opts.Workspace.Invalidate()
			}
			sol, err = nil, &solvePanicError{value: r}
		}
	}()
	return core.Solve(ctx, win, opts)
}

// degradeWindow walks the degradation ladder for a window solve that
// exceeded its budget:
//
//  1. best-so-far iterate — when the interrupted solve recovered a
//     feasible trajectory with a finite duality gap, commit it; it is
//     feasible by construction and carries a quality certificate.
//  2. fallback — otherwise plan the window with cfg.Fallback (default:
//     LRFU placement + reactive load split), verifying feasibility so a
//     misbehaving custom fallback fails loudly rather than corrupting
//     the committed trajectory.
//
// The fallback runs under the parent ctx (the budget is already spent;
// only full cancellation may stop it).
func degradeWindow(ctx context.Context, cfg Config, win *model.Instance, interrupted *core.Result) (*core.Result, string, error) {
	if interrupted != nil && interrupted.Trajectory != nil && !math.IsInf(interrupted.Gap, 1) {
		return interrupted, "best_iterate", nil
	}
	fb := cfg.Fallback
	if fb == nil {
		fb = DefaultFallback
	}
	traj, err := fb(ctx, win)
	if err != nil {
		return nil, "", fmt.Errorf("online: fallback: %w", err)
	}
	if err := win.CheckTrajectory(traj, 1e-6); err != nil {
		return nil, "", fmt.Errorf("online: fallback produced infeasible trajectory: %w", err)
	}
	return &core.Result{
		Trajectory: traj,
		Cost:       win.TotalCost(traj),
		LowerBound: math.Inf(-1),
		Gap:        math.Inf(1),
	}, "fallback", nil
}

// shiftMu re-aligns the previous window's multipliers onto the next
// window's slots (overlapping slots keep their values; new slots start at
// zero).
func shiftMu(mu [][][]float64, prevFrom, prevTo, from, to int, in *model.Instance) [][][]float64 {
	out := make([][][]float64, to-from)
	for t := range out {
		out[t] = make([][]float64, in.N)
		abs := from + t
		for n := range out[t] {
			out[t][n] = make([]float64, in.Classes[n]*in.K)
			if abs >= prevFrom && abs < prevTo {
				copy(out[t][n], mu[abs-prevFrom][n])
			}
		}
	}
	return out
}

// cand is a rounding candidate: content k with averaged placement value v.
type cand struct {
	k int
	v float64
}

// roundPlacement applies the CHC rounding policy with capacity repair:
// candidates are entries with average ≥ ρ; if more than C_n qualify the
// top C_n by average survive (ties broken toward smaller k for
// determinism). It also reports the total number of candidates, how many
// entries the capacity repair dropped, and at how many SBSs the repair
// fired — the telemetry of the two repairs DESIGN.md documents: the
// slot_decision event carries the per-entry drop count, while the
// online.capacity_drops counter advances once per (slot, SBS).
// The capacity repair enforces the slot's *effective* C^t_n: under a
// fault overlay a dead or shrunk SBS has its placements evicted here at
// commit time (the eviction itself is free under eq. 8 — β_n is charged
// honestly when items are re-fetched after recovery).
func roundPlacement(in *model.Instance, t int, avg model.CachePlan, rho float64) (x model.CachePlan, candidates, dropped, droppedSBS int) {
	x = model.NewCachePlan(in.N, in.K)
	cands := make([]cand, 0, in.K)
	for n := 0; n < in.N; n++ {
		cands = cands[:0]
		for k := 0; k < in.K; k++ {
			if avg[n][k] >= rho {
				cands = append(cands, cand{k, avg[n][k]})
			}
		}
		candidates += len(cands)
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].v != cands[j].v {
				return cands[i].v > cands[j].v
			}
			return cands[i].k < cands[j].k
		})
		if c := in.CacheCapAt(t, n); len(cands) > c {
			dropped += len(cands) - c
			droppedSBS++
			cands = cands[:c]
		}
		for _, c := range cands {
			x[n][c.k] = 1
		}
	}
	return x, candidates, dropped, droppedSBS
}

// predictedLoad zeroes the averaged load split wherever the rounded
// placement dropped the item (step (ii) of the rounding policy) and then
// rescales per SBS so the realised demand fits the bandwidth. It reports
// how many SBSs needed the bandwidth rescale.
func predictedLoad(in *model.Instance, t int, x model.CachePlan, avgY model.LoadPlan) (model.LoadPlan, int) {
	repaired := 0
	y := avgY.Clone()
	for n := 0; n < in.N; n++ {
		for m := 0; m < in.Classes[n]; m++ {
			for k := 0; k < in.K; k++ {
				if x[n][k] < 0.5 {
					y[n][m][k] = 0
					continue
				}
				// Averaged iterates can stray marginally outside [0, 1]
				// (convex-solver tolerance), so clamp both bounds: a
				// surviving negative would violate eq. (11) in the
				// committed plan and corrupt the load sum driving the
				// bandwidth rescale below.
				if y[n][m][k] > 1 {
					y[n][m][k] = 1
				} else if y[n][m][k] < 0 {
					y[n][m][k] = 0
				}
			}
		}
		// The load sum is demand-weighted, so it runs over the active
		// coordinates of the clamped split (zero-rate terms add an exact
		// +0.0 to the dense sum).
		var load float64
		yn := y[n]
		in.Demand.ForEachActive(t, n, func(m, k int, rate float64) {
			load += rate * yn[m][k]
		})
		// The rescale budget is the slot's effective B^t_n: a degraded
		// SBS sheds load proportionally, and a dead one (B^t_n = 0)
		// sheds all of it.
		if bw := in.BandwidthAt(t, n); load > bw && load > 0 {
			repaired++
			scale := bw / load
			for m := 0; m < in.Classes[n]; m++ {
				for k := 0; k < in.K; k++ {
					y[n][m][k] *= scale
				}
			}
		}
	}
	return y, repaired
}

// reactiveLoad recomputes the optimal split for the committed placement
// against realised demand.
func reactiveLoad(in *model.Instance, t int, x model.CachePlan, cfg Config) (model.LoadPlan, error) {
	y, err := loadbalance.OptimalGivenPlacement(in, t, x, cfg.Core.Convex)
	if err != nil {
		return nil, fmt.Errorf("online: reactive load at slot %d: %w", t, err)
	}
	return y, nil
}
