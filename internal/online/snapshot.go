package online

import (
	"context"
	"fmt"

	"edgecache/internal/model"
	"edgecache/internal/workload"
)

// StreamSnapshot is the complete serialisable state of a Stream between
// slots — everything a restarted controller needs to continue the run
// bit-for-bit. The restart-equivalence contract (DESIGN.md §13): a Stream
// restored from a snapshot over the same instance, forecaster and
// configuration commits exactly the remaining trajectory (and counter
// increments) of the uninterrupted run, provided SlotBudget is zero.
//
// What is carried and what deliberately is not:
//
//   - Results-affecting cross-window state is carried per version: the μ
//     multipliers of the last window that produced any, the P2 dual load
//     iterates of the last window the workspace actually bound (the
//     cross-window warm starts of Options.Advance), the committed
//     actions, the solve lattice position τ, and the solver-effort
//     counters. The fault schedule's consumed attempt budgets ride along
//     so a restored run does not re-inject already-fired solver faults.
//
//   - Results-neutral solver state is recomputed instead of carried: the
//     P1 flow networks, the recovery memoisation and the fixed-point
//     certificates are bit-exact caches that the next solve rebuilds to
//     identical values (the PR 8 incremental-path contract), and the
//     forecaster needs no state of its own because every shipped
//     Forecaster is a pure function of the (snapshotted) demand tensor.
//
// The snapshot is plain data: encode it with encoding/json (Go's float64
// encoding round-trips exactly via the shortest-representation parser).
// Demand rows are NOT included — the serving layer owns the tensor and
// snapshots the realised rows alongside (package serve).
//
// Durability layering (DESIGN.md §14): a StreamSnapshot only ever
// describes slot-boundary state — Stream has no mid-slot state to carry,
// because demand accumulates outside it until CloseSlot. The serving
// layer exploits that: its snapshot generations embed this struct as the
// watermark ("everything up to the last slot close") and replay their
// report WAL on top of it to rebuild the open slot. Nothing here needs
// to know about the WAL; idempotent replay works precisely because
// restoring this snapshot and re-running CloseSlot is deterministic.
type StreamSnapshot struct {
	// Algorithm is the configuration's Name(), checked on restore so a
	// snapshot is never resumed under a different controller.
	Algorithm string `json:"algorithm"`
	// Slot is the open slot at snapshot time; slots [0, Slot) are closed.
	Slot int `json:"slot"`
	// Trajectory holds the committed decisions of the closed slots.
	Trajectory model.Trajectory `json:"trajectory"`

	// Combine-stage state: the relaxed objective accumulated so far, the
	// previous slot's averaged and committed placements (the replacement
	// cost and churn baselines), and the repair counters.
	RelaxedCost      float64         `json:"relaxedCost"`
	PrevAvgX         model.CachePlan `json:"prevAvgX"`
	PrevX            model.CachePlan `json:"prevX"`
	CapacityDrops    int             `json:"capacityDrops"`
	BandwidthRepairs int             `json:"bandwidthRepairs"`

	// FaultBudgets are the armed schedule's remaining per-slot solver
	// fault attempts (nil when the run is fault-free).
	FaultBudgets map[int]int `json:"faultBudgets,omitempty"`

	Versions []VersionSnapshot `json:"versions"`
}

// VersionSnapshot is one FHC version's between-windows state.
type VersionSnapshot struct {
	Version     int             `json:"version"`
	Tau         int             `json:"tau"`
	VirtualPrev model.CachePlan `json:"virtualPrev"`

	// μ warm-start seam.
	WarmMu [][][]float64 `json:"warmMu,omitempty"`
	MuFrom int           `json:"muFrom"`
	MuTo   int           `json:"muTo"`

	// Workspace seam: the window the solver workspace is bound to, its
	// decision time and initial plan (enough to reconstruct the identical
	// window instance via the deterministic forecaster), and the P2 dual
	// iterates to load into it.
	WsBound   bool            `json:"wsBound"`
	WsTau     int             `json:"wsTau"`
	WsFrom    int             `json:"wsFrom"`
	WsTo      int             `json:"wsTo"`
	WsInitial model.CachePlan `json:"wsInitial,omitempty"`
	Iterates  [][]float64     `json:"iterates,omitempty"`
	CompactOK []bool          `json:"compactOK,omitempty"`

	// Committed per-slot actions (absolute slots; null = not yet
	// committed by this version) and solver-effort counters.
	XA    []model.CachePlan `json:"xa"`
	YA    []model.LoadPlan  `json:"ya"`
	Stats VersionStats      `json:"stats"`
}

// Snapshot captures the stream's state. It is only meaningful between
// CloseSlot calls (which is the only time callers can observe a Stream);
// the result shares no memory with the live stream.
func (s *Stream) Snapshot() *StreamSnapshot {
	snap := &StreamSnapshot{
		Algorithm:        s.cfg.Name(),
		Slot:             s.cur,
		Trajectory:       cloneTrajectory(s.traj),
		RelaxedCost:      s.comb.relaxed,
		PrevAvgX:         clonePlan(s.comb.prevAvgX),
		PrevX:            clonePlan(s.comb.prevX),
		CapacityDrops:    s.comb.capSBS,
		BandwidthRepairs: s.comb.bwRepairs,
		FaultBudgets:     s.armed.Snapshot(),
		Versions:         make([]VersionSnapshot, len(s.versions)),
	}
	for i, vs := range s.versions {
		snap.Versions[i] = vs.snapshot()
	}
	return snap
}

func (vs *versionState) snapshot() VersionSnapshot {
	sn := VersionSnapshot{
		Version:     vs.v,
		Tau:         vs.tau,
		VirtualPrev: clonePlan(vs.virtualPrev),
		WarmMu:      cloneMu(vs.warmMu),
		MuFrom:      vs.muFrom,
		MuTo:        vs.muTo,
		WsBound:     vs.wsBound,
		WsTau:       vs.wsTau,
		WsFrom:      vs.wsFrom,
		WsTo:        vs.wsTo,
		Stats:       vs.stats,
		XA:          make([]model.CachePlan, len(vs.xa)),
		YA:          make([]model.LoadPlan, len(vs.ya)),
	}
	if vs.wsBound {
		sn.WsInitial = clonePlan(vs.wsInitial)
		sn.Iterates, sn.CompactOK = vs.ws.ExportP2Iterates()
	}
	for t, x := range vs.xa {
		if x != nil {
			sn.XA[t] = x.Clone()
		}
	}
	for t, y := range vs.ya {
		if y != nil {
			sn.YA[t] = y.Clone()
		}
	}
	return sn
}

// RestoreStream reconstructs a Stream from a snapshot over the same
// instance, forecaster and configuration the snapshot was taken under.
// The demand tensor must hold the realised rows of the closed slots
// (restore re-runs no solves for them, but the forecaster reads the
// prefix when the restored workspaces' window forecasts are rebuilt, and
// future windows forecast from it). See StreamSnapshot for the
// equivalence contract.
func RestoreStream(ctx context.Context, in *model.Instance, pred workload.Forecaster, cfg Config, snap *StreamSnapshot) (*Stream, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if snap == nil {
		return nil, fmt.Errorf("online: nil snapshot")
	}
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("online: %w", err)
	}
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if pred == nil {
		return nil, fmt.Errorf("online: nil predictor")
	}
	if pred.Truth() != in.Demand {
		return nil, fmt.Errorf("online: predictor truth is not the instance demand")
	}
	if name := cfg.Name(); name != snap.Algorithm {
		return nil, fmt.Errorf("online: snapshot taken under %s, restoring under %s", snap.Algorithm, name)
	}
	if snap.Slot < 0 || snap.Slot > in.T {
		return nil, fmt.Errorf("online: snapshot slot %d outside [0, %d]", snap.Slot, in.T)
	}
	versions := cfg.Commitment
	if cfg.SingleVersion {
		versions = 1
	}
	if len(snap.Versions) != versions {
		return nil, fmt.Errorf("online: snapshot has %d versions, config needs %d", len(snap.Versions), versions)
	}

	s := &Stream{in: in, pred: pred, cfg: cfg, cur: snap.Slot}
	s.armed = cfg.Faults.Arm()
	s.armed.Restore(snap.FaultBudgets)
	events := in.EventSlots()
	s.versions = make([]*versionState, versions)
	s.xa = make([][]model.CachePlan, versions)
	s.ya = make([][]model.LoadPlan, versions)
	for v := range s.versions {
		s.xa[v] = make([]model.CachePlan, in.T)
		s.ya[v] = make([]model.LoadPlan, in.T)
		vs := newVersionState(in, pred, cfg, v, s.armed, events, s.xa[v], s.ya[v])
		if err := vs.restore(&snap.Versions[v]); err != nil {
			return nil, err
		}
		s.versions[v] = vs
	}

	s.comb = newCombiner(in, cfg, versions)
	s.comb.relaxed = snap.RelaxedCost
	s.comb.capSBS = snap.CapacityDrops
	s.comb.bwRepairs = snap.BandwidthRepairs
	if snap.PrevAvgX != nil {
		s.comb.prevAvgX = clonePlan(snap.PrevAvgX)
	}
	if snap.PrevX != nil {
		s.comb.prevX = clonePlan(snap.PrevX)
	}
	s.traj = make(model.Trajectory, 0, in.T)
	s.traj = append(s.traj, cloneTrajectory(snap.Trajectory)...)
	if len(s.traj) != s.cur {
		return nil, fmt.Errorf("online: snapshot trajectory covers %d slots, open slot is %d", len(s.traj), s.cur)
	}

	if !s.Done() {
		if err := s.advance(ctx); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// restore loads one version's snapshot, rebuilding the solver workspace
// of its last bound window: the window instance is reconstructed from the
// snapshotted (tau, from, to, initial plan) through the deterministic
// forecaster, freshly bound, and the carried dual iterates loaded into
// it — after which the next BindAdvance rotates it exactly as the
// uninterrupted run's would have.
func (vs *versionState) restore(sn *VersionSnapshot) error {
	if sn.Version != vs.v {
		return fmt.Errorf("online: version snapshot %d restored as %d", sn.Version, vs.v)
	}
	vs.tau = sn.Tau
	if sn.VirtualPrev != nil {
		vs.virtualPrev = clonePlan(sn.VirtualPrev)
	}
	vs.warmMu = cloneMu(sn.WarmMu)
	vs.muFrom, vs.muTo = sn.MuFrom, sn.MuTo
	vs.stats = sn.Stats
	if len(sn.XA) != len(vs.xa) || len(sn.YA) != len(vs.ya) {
		return fmt.Errorf("online: version %d snapshot covers %d slots, horizon is %d", vs.v, len(sn.XA), len(vs.xa))
	}
	for t, x := range sn.XA {
		if x != nil {
			vs.xa[t] = x.Clone()
		}
	}
	for t, y := range sn.YA {
		if y != nil {
			vs.ya[t] = y.Clone()
		}
	}
	if !sn.WsBound {
		return nil
	}
	forecast, err := vs.pred.Predict(sn.WsTau, sn.WsFrom, sn.WsTo)
	if err != nil {
		return fmt.Errorf("online: version %d restore forecast: %w", vs.v, err)
	}
	win, err := vs.in.Window(sn.WsFrom, sn.WsTo, sn.WsInitial, forecast)
	if err != nil {
		return fmt.Errorf("online: version %d restore window: %w", vs.v, err)
	}
	if err := vs.ws.RestoreP2(win, sn.Iterates, sn.CompactOK); err != nil {
		return fmt.Errorf("online: version %d restore workspace: %w", vs.v, err)
	}
	vs.wsBound = true
	vs.wsTau, vs.wsFrom, vs.wsTo = sn.WsTau, sn.WsFrom, sn.WsTo
	vs.wsInitial = clonePlan(sn.WsInitial)
	return nil
}

func clonePlan(x model.CachePlan) model.CachePlan {
	if x == nil {
		return nil
	}
	return x.Clone()
}

func cloneMu(mu [][][]float64) [][][]float64 {
	if mu == nil {
		return nil
	}
	out := make([][][]float64, len(mu))
	for t := range mu {
		out[t] = make([][]float64, len(mu[t]))
		for n := range mu[t] {
			out[t][n] = append([]float64(nil), mu[t][n]...)
		}
	}
	return out
}

func cloneTrajectory(traj model.Trajectory) model.Trajectory {
	out := make(model.Trajectory, len(traj))
	for t, dec := range traj {
		out[t] = model.SlotDecision{X: dec.X.Clone(), Y: dec.Y.Clone()}
	}
	return out
}
