package online

import (
	"context"
	"testing"

	"edgecache/internal/model"
	"edgecache/internal/workload"
)

func TestShiftMuAlignsOverlap(t *testing.T) {
	in, _ := smallInstance(t, nil)
	// Previous window [2, 6), next window [3, 7): slots 3..5 overlap.
	prevFrom, prevTo := 2, 6
	mu := make([][][]float64, prevTo-prevFrom)
	for i := range mu {
		mu[i] = make([][]float64, in.N)
		for n := range mu[i] {
			mu[i][n] = make([]float64, in.Classes[n]*in.K)
			mu[i][n][0] = float64(prevFrom + i) // tag with absolute slot
		}
	}
	out := shiftMu(mu, prevFrom, prevTo, 3, 7, in)
	if len(out) != 4 {
		t.Fatalf("shifted window has %d slots", len(out))
	}
	for i := 0; i < 3; i++ {
		if got, want := out[i][0][0], float64(3+i); got != want {
			t.Fatalf("slot %d carries µ from absolute slot %g, want %g", i, got, want)
		}
	}
	if out[3][0][0] != 0 {
		t.Fatalf("new slot not zero-initialised: %g", out[3][0][0])
	}
}

func TestRunVersionStartupCoversEarlySlots(t *testing.T) {
	in, pred := smallInstance(t, nil)
	cfg, err := CHC(4, 2).withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	// Version 1 of r = 2 first solves at τ = −1 and must still commit
	// slot 0 (Ψ_v reaches into negative time, per Algorithm 3).
	xa := make([]model.CachePlan, in.T)
	ya := make([]model.LoadPlan, in.T)
	var stats VersionStats
	if err := runVersion(context.Background(), in, pred, cfg, 1, nil, nil, xa, ya, &stats); err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt < in.T; tt++ {
		if xa[tt] == nil || ya[tt] == nil {
			t.Fatalf("version 1 left slot %d uncommitted", tt)
		}
	}
	if stats.Solves == 0 || stats.DualIters == 0 {
		t.Fatalf("no solver effort recorded: %+v", stats)
	}
}

func TestVersionsCommitDisjointBlocks(t *testing.T) {
	in, pred := smallInstance(t, nil)
	cfg, err := CHC(4, 2).withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	// Version 0 solves at τ = 0, 2, 4, …; between consecutive solves the
	// committed placements must be feasible and integral.
	xa := make([]model.CachePlan, in.T)
	ya := make([]model.LoadPlan, in.T)
	var stats VersionStats
	if err := runVersion(context.Background(), in, pred, cfg, 0, nil, nil, xa, ya, &stats); err != nil {
		t.Fatal(err)
	}
	for tt, x := range xa {
		if !x.IsIntegral(0) {
			t.Fatalf("slot %d: version placement fractional", tt)
		}
		if len(x.Items(0)) > in.CacheCap[0] {
			t.Fatalf("slot %d: version placement over capacity", tt)
		}
	}
	// T = 12, r = 2 → 6 solves.
	if stats.Solves != in.T/2 {
		t.Fatalf("version 0 made %d solves, want %d", stats.Solves, in.T/2)
	}
}

func TestPredictorSharedAcrossVersionsIsDeterministic(t *testing.T) {
	in, _ := smallInstance(t, nil)
	pred, err := workload.NewPredictor(in.Demand, 0.2, 5)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(context.Background(), in, pred, CHC(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), in, pred, CHC(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	ca := in.TotalCost(a.Trajectory)
	cb := in.TotalCost(b.Trajectory)
	if ca != cb {
		t.Fatalf("parallel version execution non-deterministic: %+v vs %+v", ca, cb)
	}
}
