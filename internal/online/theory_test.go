package online

import (
	"context"
	"math"
	"testing"

	"edgecache/internal/core"
	"edgecache/internal/workload"
)

// TestTheorem3RoundingBound verifies the paper's Theorem 3 empirically:
// the rounded CHC trajectory's cost never exceeds 2.62× the cost of the
// pre-rounding averaged (relaxed) trajectory. Generous bandwidth keeps the
// feasibility repairs (which the theorem does not model) inactive.
func TestTheorem3RoundingBound(t *testing.T) {
	const bound = 2.62
	for seed := uint64(1); seed <= 5; seed++ {
		cfg := workload.PaperDefault()
		cfg.T = 12
		cfg.K = 8
		cfg.ClassesPerSBS = 5
		cfg.CacheCap = 3
		cfg.Bandwidth = 1000 // no rescale, theorem conditions hold
		cfg.Beta = 10
		cfg.Seed = seed
		in, err := workload.BuildInstance(cfg)
		if err != nil {
			t.Fatal(err)
		}
		pred, err := workload.NewPredictor(in.Demand, 0.2, seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range []Config{CHC(4, 2), AFHC(4), CHC(6, 3)} {
			res, err := Run(context.Background(), in, pred, c)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, c.Name(), err)
			}
			rounded := in.TotalCost(res.Trajectory).Total
			if res.RelaxedCost <= 0 {
				t.Fatalf("seed %d %s: relaxed cost %g not positive", seed, c.Name(), res.RelaxedCost)
			}
			if rounded > bound*res.RelaxedCost*(1+1e-9) {
				t.Fatalf("seed %d %s: rounded %g > %g × relaxed %g — Theorem 3 violated",
					seed, c.Name(), rounded, bound, res.RelaxedCost)
			}
		}
	}
}

// TestRHCRelaxedEqualsCommitted checks that for RHC (r = 1, integral
// actions, no averaging) the relaxed cost differs from the committed cost
// only through the load-split feasibility repair.
func TestRHCRelaxedEqualsCommitted(t *testing.T) {
	cfg := workload.PaperDefault()
	cfg.T = 8
	cfg.K = 6
	cfg.ClassesPerSBS = 4
	cfg.CacheCap = 2
	cfg.Bandwidth = 1000
	in, err := workload.BuildInstance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := workload.NewPredictor(in.Demand, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), in, pred, RHC(3))
	if err != nil {
		t.Fatal(err)
	}
	committed := in.TotalCost(res.Trajectory).Total
	if math.Abs(committed-res.RelaxedCost) > 1e-6*(1+committed) {
		t.Fatalf("RHC committed %g != relaxed %g with exact predictions and slack bandwidth",
			committed, res.RelaxedCost)
	}
}

// TestRHCCompetitiveTrend verifies the behaviour Theorem 2 implies: as
// the window grows, RHC's cost ratio to the offline optimum approaches 1
// on average (the O(1 + 1/w) competitive ratio of §IV-A).
func TestRHCCompetitiveTrend(t *testing.T) {
	var ratioShort, ratioLong float64
	const seeds = 3
	for seed := uint64(1); seed <= seeds; seed++ {
		cfg := workload.PaperDefault()
		cfg.T = 12
		cfg.K = 8
		cfg.ClassesPerSBS = 5
		cfg.CacheCap = 2
		cfg.Bandwidth = 6
		cfg.Beta = 40
		cfg.Seed = seed
		in, err := workload.BuildInstance(cfg)
		if err != nil {
			t.Fatal(err)
		}
		pred, err := workload.NewPredictor(in.Demand, 0, seed)
		if err != nil {
			t.Fatal(err)
		}
		off, err := core.Solve(context.Background(), in, core.Options{MaxIter: 40})
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{1, 8} {
			res, err := Run(context.Background(), in, pred, RHC(w))
			if err != nil {
				t.Fatal(err)
			}
			ratio := in.TotalCost(res.Trajectory).Total / off.Cost.Total
			if ratio < 1-1e-6 {
				t.Fatalf("seed %d w=%d: online beat offline: ratio %g", seed, w, ratio)
			}
			if w == 1 {
				ratioShort += ratio / seeds
			} else {
				ratioLong += ratio / seeds
			}
		}
	}
	if ratioLong > ratioShort*1.01 {
		t.Fatalf("competitive ratio did not improve with window: w=1 → %.4f, w=8 → %.4f", ratioShort, ratioLong)
	}
	if ratioLong > 1.2 {
		t.Fatalf("w=8 exact-prediction RHC ratio %.4f far from 1", ratioLong)
	}
}
