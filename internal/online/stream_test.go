package online

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"edgecache/internal/fault"
	"edgecache/internal/model"
	"edgecache/internal/workload"
)

// drain closes every remaining slot of a stream and returns its result.
func drain(t *testing.T, s *Stream) *Result {
	t.Helper()
	ctx := context.Background()
	for !s.Done() {
		if _, err := s.CloseSlot(ctx); err != nil {
			t.Fatal(err)
		}
	}
	res, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestStreamMatchesBatchRun pins the stream/batch equivalence contract:
// a Stream driven slot by slot over the completed demand tensor commits
// the exact trajectory (and counters) the batch controller computes —
// the identical window solves run in the identical order, merely
// interleaved with the commit stage. Solver faults consume the same
// per-slot budgets either way (each decision slot belongs to exactly one
// version).
func TestStreamMatchesBatchRun(t *testing.T) {
	faulted := &fault.Schedule{Injectors: []fault.Injector{
		fault.SolverFault{Slot: 2, Attempts: 3},
		fault.SolverFault{Slot: 7, Attempts: 1},
	}}
	cases := []struct {
		name  string
		cfg   Config
		sched *fault.Schedule
	}{
		{"RHC", RHC(4), nil},
		{"CHC", CHC(4, 2), nil},
		{"FHC", FHC(4), nil},
		{"RHC-faulted", RHC(4), faulted},
		{"CHC-faulted", CHC(4, 2), faulted},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in, pred := smallInstance(t, nil)
			cfg := tc.cfg
			cfg.Faults = tc.sched
			batch, err := Run(context.Background(), in, pred, cfg)
			if err != nil {
				t.Fatal(err)
			}
			s, err := NewStream(context.Background(), in, pred, cfg)
			if err != nil {
				t.Fatal(err)
			}
			live := drain(t, s)
			if !reflect.DeepEqual(batch.Trajectory, live.Trajectory) {
				t.Fatal("stream trajectory diverges from batch run")
			}
			if batch.RelaxedCost != live.RelaxedCost ||
				batch.WindowSolves != live.WindowSolves ||
				batch.DualIterations != live.DualIterations ||
				batch.Degraded != live.Degraded ||
				batch.Retries != live.Retries ||
				batch.Replans != live.Replans {
				t.Fatalf("stream counters diverge from batch: %+v vs %+v", live, batch)
			}
		})
	}
}

// TestStreamPublishesProvisionalPlans checks the slot-open surface: the
// published placement is integral and within capacity before the slot's
// demand is known, and the provisional split stays inside the unit box
// on cached items only.
func TestStreamPublishesProvisionalPlans(t *testing.T) {
	in, pred := smallInstance(t, nil)
	s, err := NewStream(context.Background(), in, pred, RHC(4))
	if err != nil {
		t.Fatal(err)
	}
	for !s.Done() {
		slot, x, y := s.Plan()
		if slot != s.Slot() {
			t.Fatalf("Plan reports slot %d, Slot() %d", slot, s.Slot())
		}
		if !x.IsIntegral(0) {
			t.Fatalf("slot %d: provisional placement fractional", slot)
		}
		for n := 0; n < in.N; n++ {
			if len(x.Items(n)) > in.CacheCap[n] {
				t.Fatalf("slot %d: provisional placement over capacity", slot)
			}
			for m := 0; m < in.Classes[n]; m++ {
				for k := 0; k < in.K; k++ {
					v := y[n][m][k]
					if v < 0 || v > 1 {
						t.Fatalf("slot %d: provisional split out of box: %g", slot, v)
					}
					if x[n][k] < 0.5 && v != 0 {
						t.Fatalf("slot %d: provisional split serves uncached item", slot)
					}
				}
			}
		}
		if _, err := s.CloseSlot(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.CloseSlot(context.Background()); err == nil {
		t.Fatal("CloseSlot accepted a completed horizon")
	}
	if _, x, y := s.Plan(); x != nil || y != nil {
		t.Fatal("completed stream still publishes a plan")
	}
}

// TestRestartEquivalence is the differential restart test of the
// snapshot/restore contract: snapshot mid-horizon, serialise through
// JSON (the on-disk format), restore into a fresh Stream, and the
// restored run's full trajectory and counters must be DeepEqual to the
// uninterrupted run's — killed-and-restarted == unkilled. Runs across
// RHC and CHC, fault-free and under a fault schedule with one fault
// consumed before the snapshot and one injected after the restore.
func TestRestartEquivalence(t *testing.T) {
	faulted := &fault.Schedule{Injectors: []fault.Injector{
		fault.SolverFault{Slot: 2, Attempts: 3}, // fully consumed pre-snapshot
		fault.SolverFault{Slot: 8, Attempts: 1}, // fires post-restore
	}}
	cases := []struct {
		name  string
		cfg   Config
		sched *fault.Schedule
	}{
		{"RHC", RHC(4), nil},
		{"CHC", CHC(4, 2), nil},
		{"RHC-faulted", RHC(4), faulted},
		{"CHC-faulted", CHC(4, 2), faulted},
	}
	const snapAt = 5
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ctx := context.Background()
			in, pred := smallInstance(t, nil)
			cfg := tc.cfg
			cfg.Faults = tc.sched

			uninterrupted, err := NewStream(ctx, in, pred, cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := drain(t, uninterrupted)

			killed, err := NewStream(ctx, in, pred, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for killed.Slot() < snapAt {
				if _, err := killed.CloseSlot(ctx); err != nil {
					t.Fatal(err)
				}
			}
			raw, err := json.Marshal(killed.Snapshot())
			if err != nil {
				t.Fatal(err)
			}
			var snap StreamSnapshot
			if err := json.Unmarshal(raw, &snap); err != nil {
				t.Fatal(err)
			}
			// The killed stream is abandoned here; the restored one must
			// carry on as if the kill never happened.
			restored, err := RestoreStream(ctx, in, pred, cfg, &snap)
			if err != nil {
				t.Fatal(err)
			}
			if restored.Slot() != snapAt {
				t.Fatalf("restored stream opens slot %d, want %d", restored.Slot(), snapAt)
			}
			got := drain(t, restored)

			if !reflect.DeepEqual(want.Trajectory, got.Trajectory) {
				t.Fatal("restored trajectory diverges from the uninterrupted run")
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("restored result diverges: %+v vs %+v", got, want)
			}
		})
	}
}

// TestRestoreStreamRejectsMismatches checks the restore guards: a
// snapshot resumed under a different algorithm, horizon or version
// count fails loudly instead of silently mis-continuing.
func TestRestoreStreamRejectsMismatches(t *testing.T) {
	ctx := context.Background()
	in, pred := smallInstance(t, nil)
	s, err := NewStream(ctx, in, pred, CHC(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	for s.Slot() < 3 {
		if _, err := s.CloseSlot(ctx); err != nil {
			t.Fatal(err)
		}
	}
	snap := s.Snapshot()
	if _, err := RestoreStream(ctx, in, pred, RHC(4), snap); err == nil {
		t.Error("restore accepted a different algorithm")
	}
	if _, err := RestoreStream(ctx, in, pred, CHC(4, 2), nil); err == nil {
		t.Error("restore accepted a nil snapshot")
	}
	bad := *snap
	bad.Slot = in.T + 1
	if _, err := RestoreStream(ctx, in, pred, CHC(4, 2), &bad); err == nil {
		t.Error("restore accepted an out-of-range slot")
	}
	bad = *snap
	bad.Versions = bad.Versions[:1]
	if _, err := RestoreStream(ctx, in, pred, CHC(4, 2), &bad); err == nil {
		t.Error("restore accepted a version-count mismatch")
	}
}

// TestStreamWithOnlineEstimator runs the oracle-free live-deployment
// mode end to end: rows are revealed slot by slot into a progressively
// filled tensor, the estimator forecasts from the realised prefix only,
// and the committed trajectory must match a batch run over the final
// tensor with the same estimator — the serving layer's golden-replay
// property.
func TestStreamWithOnlineEstimator(t *testing.T) {
	in, _ := smallInstance(t, nil)

	// The live tensor starts empty and receives each slot's realised row
	// as the slot closes (copied from the reference instance's tensor).
	live := model.NewDemand(in.T, in.Classes, in.K)
	liveIn := *in
	liveIn.Demand = live
	reveal := func(t int) {
		for n := 0; n < in.N; n++ {
			in.Demand.ForEachActive(t, n, func(m, k int, rate float64) {
				live.Set(t, n, m, k, rate)
			})
		}
	}

	est, err := workload.NewOnlineEstimator(live, 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStream(context.Background(), &liveIn, est, CHC(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	for !s.Done() {
		reveal(s.Slot())
		if _, err := s.CloseSlot(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	res, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}

	// Batch replay over the completed tensor with a fresh estimator.
	est2, err := workload.NewOnlineEstimator(live, 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := Run(context.Background(), &liveIn, est2, CHC(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(batch.Trajectory, res.Trajectory) {
		t.Fatal("estimator-driven stream diverges from batch replay over the realised tensor")
	}
}
