package online

import (
	"context"
	"reflect"
	"runtime"
	"testing"
	"time"

	"edgecache/internal/fault"
	"edgecache/internal/model"
	"edgecache/internal/obs"
	"edgecache/internal/workload"
)

// faulted materialises a schedule onto the small test instance and wires
// a predictor against the shared truth.
func faulted(t *testing.T, s *fault.Schedule) (*model.Instance, *workload.Predictor) {
	t.Helper()
	in, _ := smallInstance(t, nil)
	out, err := s.Materialize(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := workload.NewPredictor(out.Demand, 0.1, 42)
	if err != nil {
		t.Fatal(err)
	}
	return out, pred
}

func TestRunSurvivesMidHorizonOutage(t *testing.T) {
	s := &fault.Schedule{Injectors: []fault.Injector{
		fault.Outage{SBS: 0, From: 4, To: 8},
	}}
	in, pred := faulted(t, s)
	for _, cfg := range []Config{RHC(4), CHC(4, 2), AFHC(4)} {
		t.Run(cfg.Name(), func(t *testing.T) {
			res, err := Run(context.Background(), in, pred, cfg)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			// The committed trajectory is feasible against the effective
			// per-slot instance (Run checks this itself; re-check here so a
			// regression in Run's self-check cannot hide one in commit).
			if err := in.CheckTrajectory(res.Trajectory, 1e-6); err != nil {
				t.Fatalf("trajectory infeasible under overlay: %v", err)
			}
			// Strictly nothing on the dead SBS during the outage.
			for tt := 4; tt < 8; tt++ {
				dec := res.Trajectory[tt]
				if got := len(dec.X.Items(0)); got != 0 {
					t.Errorf("slot %d: %d items cached on dead SBS", tt, got)
				}
				for m := range dec.Y[0] {
					for k, v := range dec.Y[0][m] {
						if in.Demand.At(tt, 0, m, k)*v != 0 {
							t.Errorf("slot %d: load %g served on dead SBS", tt, v)
						}
					}
				}
			}
			// Both outage edges (slots 4 and 8) truncate some commitment
			// for every multi-slot committer; RHC commits slot-by-slot so
			// its lattice always lands on events (no truncation needed).
			if cfg.Commitment > 1 && res.Replans == 0 {
				t.Error("no replans recorded across a topology event")
			}
		})
	}
}

func TestRunRetriesInjectedSolverError(t *testing.T) {
	s := &fault.Schedule{Injectors: []fault.Injector{
		fault.SolverFault{Slot: 2}, // first attempt at τ=2 fails, retry recovers
	}}
	in, pred := faulted(t, s)
	col := &obs.Collector{}
	cfg := RHC(4)
	cfg.Faults = s
	cfg.Retry = RetryPolicy{Max: 2, Backoff: time.Millisecond}
	cfg.Telemetry = obs.New(col, obs.NewRegistry())
	res, err := Run(context.Background(), in, pred, cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Retries != 1 {
		t.Errorf("Retries = %d, want 1", res.Retries)
	}
	if res.Degraded != 0 {
		t.Errorf("Degraded = %d, want 0 (retry should have recovered)", res.Degraded)
	}
	if evs := col.ByType("retry"); len(evs) != 1 {
		t.Errorf("got %d retry events, want 1", len(evs))
	}
}

func TestRunDegradesInjectedWorkerPanic(t *testing.T) {
	// Four panicking attempts exceed the 1+2 attempt budget, so slot 3
	// must be committed through the degradation ladder — one degraded
	// slot, not a crashed run.
	s := &fault.Schedule{Injectors: []fault.Injector{
		fault.SolverFault{Slot: 3, Panic: true, Attempts: 4},
	}}
	in, pred := faulted(t, s)
	cfg := RHC(4)
	cfg.Faults = s
	cfg.Retry = RetryPolicy{Max: 2, Backoff: time.Millisecond}
	res, err := Run(context.Background(), in, pred, cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Degraded != 1 {
		t.Errorf("Degraded = %d, want 1", res.Degraded)
	}
	if res.Retries != 2 {
		t.Errorf("Retries = %d, want 2 (all retries exhausted)", res.Retries)
	}
	if err := in.CheckTrajectory(res.Trajectory, 1e-6); err != nil {
		t.Fatalf("degraded trajectory infeasible: %v", err)
	}
}

func TestRetryRespectsSlotBudget(t *testing.T) {
	// An endlessly failing slot with a 10s backoff must still resolve
	// within the slot budget: the backoff sleep selects on the budget
	// context, so the run degrades in ~the budget, not in multiples of
	// the backoff.
	s := &fault.Schedule{Injectors: []fault.Injector{
		fault.SolverFault{Slot: 2, Attempts: 1 << 30},
	}}
	in, pred := faulted(t, s)
	cfg := RHC(4)
	cfg.Faults = s
	cfg.SlotBudget = 50 * time.Millisecond
	cfg.Retry = RetryPolicy{Max: 5, Backoff: 10 * time.Second}
	start := time.Now()
	res, err := Run(context.Background(), in, pred, cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("run took %v; retry backoff outlived the slot budget", elapsed)
	}
	if res.Degraded == 0 {
		t.Error("endlessly failing slot was not degraded")
	}
}

func TestRetryCancellationLeaksNoGoroutines(t *testing.T) {
	// Cancel the run while a retry backoff is pending and verify every
	// goroutine drains: the backoff timer must not strand a worker.
	s := &fault.Schedule{Injectors: []fault.Injector{
		fault.SolverFault{Slot: 0, Attempts: 1 << 30},
	}}
	in, pred := faulted(t, s)
	cfg := RHC(4)
	cfg.Faults = s
	cfg.Retry = RetryPolicy{Max: 1 << 20, Backoff: 20 * time.Millisecond, Factor: 1}
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := Run(ctx, in, pred, cfg)
		done <- err
	}()
	time.Sleep(30 * time.Millisecond) // let the retry loop reach a backoff sleep
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Error("cancelled run returned nil error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled run did not return")
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Fatalf("goroutines: %d before, %d after cancellation", before, now)
	}
}

func TestFaultedRunDeterministic(t *testing.T) {
	// Same fault seed ⇒ byte-identical overlays and trajectories.
	mk := func() *Result {
		s := &fault.Schedule{Seed: 17, Injectors: []fault.Injector{
			fault.RandomOutages{Rate: 0.05, MeanLen: 2},
			fault.BandwidthFactor{SBS: 0, From: 6, Factor: 0.4},
			fault.SolverFault{Slot: 2},
		}}
		in, pred := faulted(t, s)
		cfg := CHC(4, 2)
		cfg.Faults = s
		cfg.Retry = RetryPolicy{Max: 2, Backoff: time.Millisecond}
		res, err := Run(context.Background(), in, pred, cfg)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	a, b := mk(), mk()
	if !reflect.DeepEqual(a.Trajectory, b.Trajectory) {
		t.Error("same fault seed produced different trajectories")
	}
	if a.Replans != b.Replans || a.Retries != b.Retries || a.Degraded != b.Degraded {
		t.Errorf("fault accounting differs: %+v vs %+v", a, b)
	}
}

func TestNoFaultRunsUnchanged(t *testing.T) {
	// The failure-aware control path must be byte-identical to the
	// pre-fault controller when no schedule is attached: same lattice,
	// same solves, same trajectory.
	in, pred := smallInstance(t, nil)
	cfg := CHC(4, 2)
	base, err := Run(context.Background(), in, pred, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = &fault.Schedule{} // empty schedule ≡ nil
	again, err := Run(context.Background(), in, pred, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base.Trajectory, again.Trajectory) {
		t.Error("empty fault schedule changed the trajectory")
	}
	if base.WindowSolves != again.WindowSolves || base.Replans != 0 || again.Replans != 0 {
		t.Errorf("solve accounting changed: %+v vs %+v", base, again)
	}
}
