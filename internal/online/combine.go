package online

import (
	"fmt"

	"edgecache/internal/model"
	"edgecache/internal/obs"
)

// combiner merges the per-slot actions of the staggered FHC versions into
// the committed trajectory — the average/round/repair/commit stage of
// Algorithm 3, factored out of the batch loop so the streaming controller
// can run the identical arithmetic one slot at a time. The averaging
// buffers are allocated once and rotated: avgX swaps with prevAvgX at the
// end of each commit (the replacement-cost term needs last slot's
// average), avgY is consumed within the slot.
//
// The stage is split in two because only half of it needs the slot's
// realised demand: average is a pure function of the versions' committed
// actions (called again for the same slot it recomputes the same
// buffers), which lets a live controller publish a provisional plan when
// the slot opens; commit consumes the buffers against the realised demand
// row when the slot closes.
type combiner struct {
	in       *model.Instance
	cfg      Config // already defaulted
	versions int

	avgX     model.CachePlan
	avgY     model.LoadPlan
	prevAvgX model.CachePlan
	prevX    model.CachePlan

	relaxed   float64
	capSBS    int // slot-SBS pairs where the capacity repair fired
	bwRepairs int // slot-SBS pairs where the bandwidth rescale fired
}

func newCombiner(in *model.Instance, cfg Config, versions int) *combiner {
	return &combiner{
		in:       in,
		cfg:      cfg,
		versions: versions,
		avgX:     model.NewCachePlan(in.N, in.K),
		avgY:     model.NewLoadPlan(in.Classes, in.K),
		prevAvgX: in.InitialPlan(),
		prevX:    in.InitialPlan(),
	}
}

// average fills the slot-t averaging buffers from the versions' committed
// actions, reported by the two accessors (version index → action). It
// errors when a version committed no action for the slot.
func (c *combiner) average(t int, xa func(v int) model.CachePlan, ya func(v int) model.LoadPlan) error {
	in := c.in
	for n := 0; n < in.N; n++ {
		row := c.avgX[n]
		for k := range row {
			row[k] = 0
		}
		for m := 0; m < in.Classes[n]; m++ {
			yRow := c.avgY[n][m]
			for k := range yRow {
				yRow[k] = 0
			}
		}
	}
	for v := 0; v < c.versions; v++ {
		xv, yv := xa(v), ya(v)
		if xv == nil || yv == nil {
			return fmt.Errorf("online: version %d committed no action for slot %d", v, t)
		}
		for n := 0; n < in.N; n++ {
			for k := 0; k < in.K; k++ {
				c.avgX[n][k] += xv[n][k] / float64(c.versions)
			}
			for m := 0; m < in.Classes[n]; m++ {
				for k := 0; k < in.K; k++ {
					c.avgY[n][m][k] += yv[n][m][k] / float64(c.versions)
				}
			}
		}
	}
	return nil
}

// commit finalises slot t from the averaging buffers against the realised
// demand row: accumulate the relaxed objective, round the placement,
// repair the load split, advance the repair counters and rotate the
// buffers. average(t, …) must have run first.
func (c *combiner) commit(t int) (model.SlotDecision, error) {
	in, cfg := c.in, c.cfg

	// Relaxed (pre-rounding) objective for the Theorem 3 bound. The
	// averaged y may marginally exceed the true bandwidth (each version
	// budgeted against predictions), which the relaxed objective
	// tolerates.
	c.relaxed += in.BSCost(t, c.avgY) + in.SBSCost(t, c.avgY) +
		in.ReplacementCost(c.prevAvgX, c.avgX)

	x, candidates, capDropped, capSBS := roundPlacement(in, t, c.avgX, cfg.Rho)
	var y model.LoadPlan
	var bwRepaired int
	if cfg.LoadMode == LoadReactive {
		var err error
		y, err = reactiveLoad(in, t, x, cfg)
		if err != nil {
			return model.SlotDecision{}, err
		}
	} else {
		y, bwRepaired = predictedLoad(in, t, x, c.avgY)
	}
	dec := model.SlotDecision{X: x, Y: y}

	// Repair counters advance once per (slot, SBS) where the repair
	// fired (DESIGN.md §6); the per-entry drop count goes into the
	// slot_decision event below instead.
	c.capSBS += capSBS
	c.bwRepairs += bwRepaired
	mCapDrops.Add(int64(capSBS))
	mBWRepairs.Add(int64(bwRepaired))
	churn := model.ReplacementCount(c.prevX, x)
	mChurnH.Observe(float64(churn))
	if cfg.Telemetry.Enabled() {
		var cached int
		for n := 0; n < in.N; n++ {
			cached += len(x.Items(n))
		}
		cfg.Telemetry.Emit("slot_decision", obs.Fields{
			"controller":  cfg.Name(),
			"slot":        t,
			"window":      cfg.Window,
			"commitment":  cfg.Commitment,
			"rho":         cfg.Rho,
			"load_mode":   cfg.LoadMode.String(),
			"candidates":  candidates,
			"cached":      cached,
			"cap_dropped": capDropped,
			"bw_repaired": bwRepaired,
			"churn":       churn,
		})
	}
	c.prevX = x
	c.prevAvgX, c.avgX = c.avgX, c.prevAvgX
	return dec, nil
}
