package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"

	"edgecache/internal/online"
)

// SnapshotFormatVersion is the on-disk envelope format this build
// writes. Version 2 added the WalSeq watermark and the Checksum field;
// version-1 envelopes (pre-durability) are still read, without checksum
// verification. Bump on any incompatible change to Envelope or to
// online.StreamSnapshot; Load rejects foreign versions loudly instead of
// mis-restoring.
const SnapshotFormatVersion = 2

// Envelope is the on-disk snapshot: the controller state plus the
// realised demand rows of the closed slots (the stream snapshot carries
// no demand of its own — the estimator and the restored windows
// recompute from this prefix). Serialised as JSON; float64 values
// round-trip exactly through Go's shortest-representation encoding.
//
// An envelope always describes a slot boundary: Rows covers exactly the
// closed slots and Ingested counts exactly the reports folded into them.
// Open-slot reports are never inside an envelope — they live in the WAL
// past the watermark.
type Envelope struct {
	FormatVersion int    `json:"formatVersion"`
	Algorithm     string `json:"algorithm"`
	// Slot is the open slot at snapshot time; Rows covers [0, Slot).
	Slot     int   `json:"slot"`
	Ingested int64 `json:"ingested"`
	// WalSeq is the durability watermark: the sequence number of the last
	// WAL close marker whose effects this envelope captures. Recovery
	// replays records with Seq > WalSeq. Zero in legacy single-file mode
	// and at genesis.
	WalSeq uint64 `json:"walSeq,omitempty"`
	// Checksum is CRC32C over the envelope's canonical JSON with this
	// field zeroed; a bit flip anywhere in the file fails verification and
	// recovery falls back to the previous generation.
	Checksum uint32 `json:"checksum,omitempty"`
	// Rows[t][n] is the realised flat (class, content) rate row of slot
	// t at SBS n.
	Rows       [][][]float64          `json:"rows"`
	Controller *online.StreamSnapshot `json:"controller"`
}

// encodeSnapshot marshals env with its Checksum computed over the
// canonical (checksum-zeroed) encoding. The input is not mutated.
func encodeSnapshot(env *Envelope) ([]byte, error) {
	e := *env
	e.Checksum = 0
	canonical, err := json.Marshal(&e)
	if err != nil {
		return nil, fmt.Errorf("serve: marshal snapshot: %w", err)
	}
	e.Checksum = crc32.Checksum(canonical, castagnoli)
	data, err := json.Marshal(&e)
	if err != nil {
		return nil, fmt.Errorf("serve: marshal snapshot: %w", err)
	}
	return data, nil
}

// decodeSnapshot parses and verifies an envelope: format version gate,
// checksum (format ≥ 2 — verified by re-marshalling the decoded
// envelope with a zeroed checksum, which reproduces the writer's
// canonical bytes because encoding/json is deterministic), and the
// presence of the controller block. Arbitrary or damaged bytes return
// an error; they never panic.
func decodeSnapshot(data []byte) (*Envelope, error) {
	var env Envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("serve: parse snapshot: %w", err)
	}
	switch env.FormatVersion {
	case 1:
		// Pre-durability envelope: no checksum to verify.
	case SnapshotFormatVersion:
		sum := env.Checksum
		e := env
		e.Checksum = 0
		canonical, err := json.Marshal(&e)
		if err != nil {
			return nil, fmt.Errorf("serve: re-marshal snapshot: %w", err)
		}
		if got := crc32.Checksum(canonical, castagnoli); got != sum {
			return nil, fmt.Errorf("serve: snapshot checksum mismatch: stored %08x, computed %08x", sum, got)
		}
	default:
		return nil, fmt.Errorf("serve: snapshot has format version %d, this build reads %d",
			env.FormatVersion, SnapshotFormatVersion)
	}
	if env.Controller == nil {
		return nil, fmt.Errorf("serve: snapshot carries no controller state")
	}
	return &env, nil
}

// SaveSnapshot writes the envelope to path atomically and durably:
// marshal (with checksum), write to a temp file in the same directory,
// fsync, rename, fsync the parent directory. A crash mid-save leaves
// the previous snapshot intact; a reader never observes a partial file;
// the temp file is removed on every error path.
func SaveSnapshot(path string, env *Envelope) error {
	data, err := encodeSnapshot(env)
	if err != nil {
		return err
	}
	return writeFileAtomic(path, data)
}

// LoadSnapshot reads an envelope from path. A missing file returns
// (nil, nil) — the fresh-start case of Open; anything else that fails to
// parse, verify, or that carries a foreign format version is an error.
func LoadSnapshot(path string) (*Envelope, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("serve: read snapshot: %w", err)
	}
	env, err := decodeSnapshot(data)
	if err != nil {
		return nil, fmt.Errorf("%w (%s)", err, path)
	}
	return env, nil
}
