package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"edgecache/internal/online"
)

// SnapshotFormatVersion is the on-disk envelope format this build reads
// and writes. Bump it on any incompatible change to Envelope or to
// online.StreamSnapshot; Load rejects mismatches loudly instead of
// mis-restoring.
const SnapshotFormatVersion = 1

// Envelope is the on-disk snapshot: the controller state plus the
// realised demand rows of the closed slots (the stream snapshot carries
// no demand of its own — the estimator and the restored windows
// recompute from this prefix). Serialised as JSON; float64 values
// round-trip exactly through Go's shortest-representation encoding.
type Envelope struct {
	FormatVersion int    `json:"formatVersion"`
	Algorithm     string `json:"algorithm"`
	// Slot is the open slot at snapshot time; Rows covers [0, Slot).
	Slot     int   `json:"slot"`
	Ingested int64 `json:"ingested"`
	// Rows[t][n] is the realised flat (class, content) rate row of slot
	// t at SBS n.
	Rows       [][][]float64          `json:"rows"`
	Controller *online.StreamSnapshot `json:"controller"`
}

// SaveSnapshot writes the envelope to path atomically: marshal, write to
// a temp file in the same directory, fsync, rename. A crash mid-save
// leaves the previous snapshot intact; a reader never observes a partial
// file.
func SaveSnapshot(path string, env *Envelope) error {
	data, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("serve: marshal snapshot: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("serve: snapshot temp file: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("serve: write snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("serve: sync snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("serve: close snapshot: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("serve: publish snapshot: %w", err)
	}
	return nil
}

// LoadSnapshot reads an envelope from path. A missing file returns
// (nil, nil) — the fresh-start case of Open; anything else that fails to
// parse or carries a foreign format version is an error.
func LoadSnapshot(path string) (*Envelope, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("serve: read snapshot: %w", err)
	}
	var env Envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("serve: parse snapshot %s: %w", path, err)
	}
	if env.FormatVersion != SnapshotFormatVersion {
		return nil, fmt.Errorf("serve: snapshot %s has format version %d, this build reads %d",
			path, env.FormatVersion, SnapshotFormatVersion)
	}
	if env.Controller == nil {
		return nil, fmt.Errorf("serve: snapshot %s carries no controller state", path)
	}
	return &env, nil
}
