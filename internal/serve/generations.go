package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"edgecache/internal/fault"
)

// State-directory layout (DESIGN.md §14). Generation g is the snapshot
// taken when slot g became the open slot (so gen g covers the closed
// slots [0, g)); segment g is the WAL file opened right after gen g was
// published and receives every record from slot g onward until the next
// rotation. Sequence numbers run monotonically across segments.
//
//	state/
//	  snap.000016.json   generation 16 (open slot 16 at save time)
//	  snap.000017.json   generation 17 — the newest
//	  wal.000016         records for slot 16 (kept: gen 16 needs them)
//	  wal.000017         the live segment, appended to
const (
	genPrefix = "snap."
	genSuffix = ".json"
	segPrefix = "wal."
)

func genPath(dir string, g int) string {
	return filepath.Join(dir, fmt.Sprintf("%s%06d%s", genPrefix, g, genSuffix))
}

func segPath(dir string, g int) string {
	return filepath.Join(dir, fmt.Sprintf("%s%06d", segPrefix, g))
}

// parseStateName extracts the number from a generation or segment file
// name given its prefix/suffix.
func parseStateName(name, prefix, suffix string) (int, bool) {
	if len(name) <= len(prefix)+len(suffix) || name[:len(prefix)] != prefix || name[len(name)-len(suffix):] != suffix {
		return 0, false
	}
	digits := name[len(prefix) : len(name)-len(suffix)]
	g := 0
	for _, c := range digits {
		if c < '0' || c > '9' {
			return 0, false
		}
		g = g*10 + int(c-'0')
	}
	return g, true
}

// listStateDir enumerates the generation and segment numbers present in
// dir, each sorted ascending. Temp files and foreign names are ignored.
func listStateDir(dir string) (gens, segs []int, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: list state dir: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if g, ok := parseStateName(e.Name(), genPrefix, genSuffix); ok {
			gens = append(gens, g)
		} else if g, ok := parseStateName(e.Name(), segPrefix, ""); ok {
			segs = append(segs, g)
		}
	}
	sort.Ints(gens)
	sort.Ints(segs)
	return gens, segs, nil
}

// syncDir fsyncs a directory so a just-renamed (or just-removed) entry
// survives a power cut — rename atomicity alone does not imply rename
// durability.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("serve: open dir for sync: %w", err)
	}
	syncErr := d.Sync()
	closeErr := d.Close()
	if syncErr != nil {
		return fmt.Errorf("serve: sync dir: %w", syncErr)
	}
	if closeErr != nil {
		return fmt.Errorf("serve: close dir: %w", closeErr)
	}
	return nil
}

// writeFileAtomic publishes data at path via temp file, fsync, rename,
// parent-directory fsync. The temp file is removed on every error path;
// a crash at any byte leaves either the old file or the new one, never a
// mix, and the published name survives a power cut.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("serve: temp file: %w", err)
	}
	tmpName := tmp.Name()
	fail := func(step string, err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("serve: %s %s: %w", step, path, err)
	}
	if _, err := tmp.Write(data); err != nil {
		return fail("write", err)
	}
	if err := tmp.Sync(); err != nil {
		return fail("sync", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("serve: close %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("serve: publish %s: %w", path, err)
	}
	return syncDir(dir)
}

// saveGeneration publishes env as generation env.Slot in dir. A
// fault-injected save puts the mutated bytes (torn prefix or flipped
// bit) directly at the final path and fires the simulated crash — the
// write-then-rename discipline cannot be torn by the process itself, so
// the injection models what a power cut mid-rename or silent media
// corruption leaves behind.
func saveGeneration(dir string, env *Envelope, faults *fault.DiskFaults) error {
	data, err := encodeSnapshot(env)
	if err != nil {
		return err
	}
	path := genPath(dir, env.Slot)
	if mutated, crash := faults.SnapshotFault(data); crash {
		if err := os.WriteFile(path, mutated, 0o644); err != nil {
			return fmt.Errorf("serve: write faulted snapshot: %w", err)
		}
		_ = syncDir(dir)
		return faults.Crash()
	}
	return writeFileAtomic(path, data)
}

// loadGeneration reads and fully verifies generation g: envelope parse,
// format version, checksum, controller block.
func loadGeneration(dir string, g int) (*Envelope, error) {
	data, err := os.ReadFile(genPath(dir, g))
	if err != nil {
		return nil, fmt.Errorf("serve: read generation %06d: %w", g, err)
	}
	env, err := decodeSnapshot(data)
	if err != nil {
		return nil, fmt.Errorf("serve: generation %06d: %w", g, err)
	}
	if env.Slot != g {
		return nil, fmt.Errorf("serve: generation %06d carries slot %d", g, env.Slot)
	}
	return env, nil
}

// pruneStateDir deletes generations beyond the newest keep and every
// WAL segment no surviving generation can need. Segment s holds the
// close markers for slots [s, s′) where s′ is the next existing segment;
// recovery from the oldest kept generation G replays closes ≥ G, so s is
// dead only when s′ ≤ G. The live (final) segment is never deleted —
// its records run past every generation's watermark. Prune failures are
// returned but harmless: stale files only cost disk and are re-pruned
// on the next rotation.
func pruneStateDir(dir string, keep int) error {
	if keep < 1 {
		keep = 1
	}
	gens, segs, err := listStateDir(dir)
	if err != nil {
		return err
	}
	if len(gens) > keep {
		for _, g := range gens[:len(gens)-keep] {
			if err := os.Remove(genPath(dir, g)); err != nil {
				return fmt.Errorf("serve: prune generation %06d: %w", g, err)
			}
		}
		gens = gens[len(gens)-keep:]
	}
	if len(gens) == 0 || len(segs) == 0 {
		return nil
	}
	oldest := gens[0]
	removed := false
	for i := 0; i+1 < len(segs); i++ {
		if segs[i+1] <= oldest {
			if err := os.Remove(segPath(dir, segs[i])); err != nil {
				return fmt.Errorf("serve: prune wal segment %06d: %w", segs[i], err)
			}
			removed = true
		}
	}
	if removed {
		return syncDir(dir)
	}
	return nil
}
