package serve

import (
	"context"
	"testing"

	"edgecache/internal/online"
	"edgecache/internal/workload"
)

// FuzzSnapshotAndWALDecode feeds arbitrary bytes to both on-disk
// decoders. The contract under fuzz is narrow and absolute: corrupt
// input yields an error (snapshot) or a truncated record list (WAL) —
// never a panic, never an unbounded allocation. The seed corpus covers
// the two shapes a crash actually leaves behind: a truncated valid
// snapshot and a valid WAL prefix with a garbage tail.
func FuzzSnapshotAndWALDecode(f *testing.F) {
	// Seed 1: prefixes of a real snapshot envelope.
	cfg := workload.PaperDefault()
	cfg.T = 3
	cfg.K = 4
	cfg.ClassesPerSBS = 2
	cfg.CacheCap = 1
	cfg.Bandwidth = 4
	cfg.Beta = 2
	in, err := workload.BuildInstance(cfg)
	if err != nil {
		f.Fatal(err)
	}
	est, err := workload.NewOnlineEstimator(in.Demand, 0, -1)
	if err != nil {
		f.Fatal(err)
	}
	stream, err := online.NewStream(context.Background(), in, est, online.RHC(2))
	if err != nil {
		f.Fatal(err)
	}
	env := &Envelope{
		FormatVersion: SnapshotFormatVersion,
		Algorithm:     "rhc",
		Slot:          0,
		WalSeq:        7,
		Controller:    stream.Snapshot(),
	}
	valid, err := encodeSnapshot(env)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:1])

	// Seed 2: two good WAL frames followed by a garbage tail.
	frame1, err := encodeWALFrame(walRecord{Seq: 1, Kind: walKindReports, Slot: 0, Reqs: []Request{{SBS: 0, Class: 1, Content: 2, Count: 3}}})
	if err != nil {
		f.Fatal(err)
	}
	frame2, err := encodeWALFrame(walRecord{Seq: 2, Kind: walKindClose, Slot: 0})
	if err != nil {
		f.Fatal(err)
	}
	wal := append(append([]byte{}, frame1...), frame2...)
	f.Add(append(append([]byte{}, wal...), 0xDE, 0xAD, 0xBE, 0xEF))
	f.Add(wal[:len(wal)-3])
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Snapshot decode: error or a structurally valid envelope.
		if env, err := decodeSnapshot(data); err == nil {
			if env.Controller == nil {
				t.Fatal("decodeSnapshot returned nil controller without error")
			}
			if env.FormatVersion != SnapshotFormatVersion && env.FormatVersion != 1 {
				t.Fatalf("decodeSnapshot accepted foreign version %d", env.FormatVersion)
			}
		}
		// WAL decode: the good prefix is consistent with the input.
		recs, n := decodeWALBuffer(data)
		if n < 0 || n > len(data) {
			t.Fatalf("good prefix %d out of range for %d bytes", n, len(data))
		}
		if n == 0 && len(recs) != 0 {
			t.Fatalf("%d records decoded from an empty good prefix", len(recs))
		}
		// Re-decoding the good prefix must reproduce the records exactly.
		again, m := decodeWALBuffer(data[:n])
		if m != n || len(again) != len(recs) {
			t.Fatalf("good prefix unstable: (%d records, %d bytes) vs (%d, %d)", len(again), m, len(recs), n)
		}
	})
}
