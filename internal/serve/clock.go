// Package serve is the streaming control-plane service around the online
// controller: request-stream ingestion feeding an oracle-free demand
// estimator, a wall-clock slot ticker advancing the controller window by
// window, published per-slot decisions, and a crash-safe durability
// layer — a CRC-framed write-ahead log for acknowledged reports plus
// checksummed snapshot generations with corruption fallback — so a
// killed-and-restarted controller continues exactly where it stopped
// even when the kill lands mid-write (DESIGN.md §13–§14). cmd/jocserve
// wraps it into a binary.
package serve

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"
)

// CatchUpPolicy selects how the slot ticker handles missed ticks — the
// degraded-mode case where slot closes fall behind wall time (a long GC
// pause, a slow solve, the process suspended, or recovery finishing
// mid-horizon). Every tick event computes how many slot periods are due
// since the loop's anchor; the policy decides how many of them to close.
type CatchUpPolicy int

const (
	// CatchUpSkip closes one slot per tick event and logs the rest as
	// missed (serve.ticks_missed): real time wins, the controller simply
	// runs behind by the slots it skipped. The default — and exactly the
	// pre-durability tick behaviour when nothing is missed.
	CatchUpSkip CatchUpPolicy = iota
	// CatchUpFastForward closes up to ServerConfig.CatchUpBound due slots
	// back to back, counting only the remainder as missed: the slot index
	// catches up with wall time at the price of a burst of solves.
	CatchUpFastForward
)

// DefaultCatchUpBound caps a fast-forward burst when
// ServerConfig.CatchUpBound is zero.
const DefaultCatchUpBound = 8

// ParseCatchUpPolicy maps the -catchup flag: "skip", "fastforward" or
// "fastforward:N" (N bounding the burst). "" selects CatchUpSkip.
func ParseCatchUpPolicy(s string) (CatchUpPolicy, int, error) {
	switch {
	case s == "" || s == "skip":
		return CatchUpSkip, 0, nil
	case s == "fastforward":
		return CatchUpFastForward, 0, nil
	case strings.HasPrefix(s, "fastforward:"):
		n, err := strconv.Atoi(strings.TrimPrefix(s, "fastforward:"))
		if err != nil || n < 1 {
			return 0, 0, fmt.Errorf("serve: catch-up bound %q: want a positive integer", strings.TrimPrefix(s, "fastforward:"))
		}
		return CatchUpFastForward, n, nil
	}
	return 0, 0, fmt.Errorf("serve: unknown catch-up policy %q (want skip, fastforward or fastforward:N)", s)
}

// Clock abstracts wall time so the slot ticker is testable and the smoke
// harness deterministic. RealClock is the production implementation;
// MockClock fires ticks on demand.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Ticker returns a ticker firing every d.
	Ticker(d time.Duration) Ticker
}

// Ticker is the subset of time.Ticker the slot loop consumes.
type Ticker interface {
	// C returns the tick channel.
	C() <-chan time.Time
	// Stop releases the ticker. It does not close the channel.
	Stop()
}

// RealClock returns the wall clock.
func RealClock() Clock { return realClock{} }

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

func (realClock) Ticker(d time.Duration) Ticker {
	return realTicker{t: time.NewTicker(d)}
}

type realTicker struct{ t *time.Ticker }

func (rt realTicker) C() <-chan time.Time { return rt.t.C }
func (rt realTicker) Stop()               { rt.t.Stop() }

// MockClock is a manually driven Clock: Advance moves time forward and
// fires every due tick of every ticker, in order. Like time.Ticker, a
// tick that finds the channel full is dropped rather than queued. Safe
// for concurrent use — a test goroutine can Advance while the server's
// tick loop creates and stops tickers.
type MockClock struct {
	mu      sync.Mutex
	now     time.Time
	tickers []*mockTicker
}

// NewMockClock returns a mock clock reading start.
func NewMockClock(start time.Time) *MockClock {
	return &MockClock{now: start}
}

// Now implements Clock.
func (c *MockClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Ticker implements Clock.
func (c *MockClock) Ticker(d time.Duration) Ticker {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &mockTicker{clock: c, period: d, next: c.now.Add(d), ch: make(chan time.Time, 1)}
	c.tickers = append(c.tickers, t)
	return t
}

// Advance moves the clock forward by d, delivering due ticks.
func (c *MockClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	target := c.now.Add(d)
	for {
		// Fire the earliest due tick until none remain before target.
		var earliest *mockTicker
		for _, t := range c.tickers {
			if t.stopped || t.next.After(target) {
				continue
			}
			if earliest == nil || t.next.Before(earliest.next) {
				earliest = t
			}
		}
		if earliest == nil {
			break
		}
		c.now = earliest.next
		select {
		case earliest.ch <- earliest.next:
		default:
		}
		earliest.next = earliest.next.Add(earliest.period)
	}
	c.now = target
}

type mockTicker struct {
	clock   *MockClock
	period  time.Duration
	next    time.Time
	ch      chan time.Time
	stopped bool
}

func (t *mockTicker) C() <-chan time.Time { return t.ch }

func (t *mockTicker) Stop() {
	t.clock.mu.Lock()
	defer t.clock.mu.Unlock()
	t.stopped = true
}
