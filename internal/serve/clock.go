// Package serve is the streaming control-plane service around the online
// controller: request-stream ingestion feeding an oracle-free demand
// estimator, a wall-clock slot ticker advancing the controller window by
// window, published per-slot decisions, and versioned snapshot/restore so
// a killed-and-restarted controller continues exactly where it stopped
// (DESIGN.md §13). cmd/jocserve wraps it into a binary.
package serve

import (
	"sync"
	"time"
)

// Clock abstracts wall time so the slot ticker is testable and the smoke
// harness deterministic. RealClock is the production implementation;
// MockClock fires ticks on demand.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Ticker returns a ticker firing every d.
	Ticker(d time.Duration) Ticker
}

// Ticker is the subset of time.Ticker the slot loop consumes.
type Ticker interface {
	// C returns the tick channel.
	C() <-chan time.Time
	// Stop releases the ticker. It does not close the channel.
	Stop()
}

// RealClock returns the wall clock.
func RealClock() Clock { return realClock{} }

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

func (realClock) Ticker(d time.Duration) Ticker {
	return realTicker{t: time.NewTicker(d)}
}

type realTicker struct{ t *time.Ticker }

func (rt realTicker) C() <-chan time.Time { return rt.t.C }
func (rt realTicker) Stop()               { rt.t.Stop() }

// MockClock is a manually driven Clock: Advance moves time forward and
// fires every due tick of every ticker, in order. Like time.Ticker, a
// tick that finds the channel full is dropped rather than queued. Safe
// for concurrent use — a test goroutine can Advance while the server's
// tick loop creates and stops tickers.
type MockClock struct {
	mu      sync.Mutex
	now     time.Time
	tickers []*mockTicker
}

// NewMockClock returns a mock clock reading start.
func NewMockClock(start time.Time) *MockClock {
	return &MockClock{now: start}
}

// Now implements Clock.
func (c *MockClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Ticker implements Clock.
func (c *MockClock) Ticker(d time.Duration) Ticker {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &mockTicker{clock: c, period: d, next: c.now.Add(d), ch: make(chan time.Time, 1)}
	c.tickers = append(c.tickers, t)
	return t
}

// Advance moves the clock forward by d, delivering due ticks.
func (c *MockClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	target := c.now.Add(d)
	for {
		// Fire the earliest due tick until none remain before target.
		var earliest *mockTicker
		for _, t := range c.tickers {
			if t.stopped || t.next.After(target) {
				continue
			}
			if earliest == nil || t.next.Before(earliest.next) {
				earliest = t
			}
		}
		if earliest == nil {
			break
		}
		c.now = earliest.next
		select {
		case earliest.ch <- earliest.next:
		default:
		}
		earliest.next = earliest.next.Add(earliest.period)
	}
	c.now = target
}

type mockTicker struct {
	clock   *MockClock
	period  time.Duration
	next    time.Time
	ch      chan time.Time
	stopped bool
}

func (t *mockTicker) C() <-chan time.Time { return t.ch }

func (t *mockTicker) Stop() {
	t.clock.mu.Lock()
	defer t.clock.mu.Unlock()
	t.stopped = true
}
