package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"sync"
	"time"

	"edgecache/internal/fault"
	"edgecache/internal/model"
	"edgecache/internal/online"
	"edgecache/internal/workload"
)

// Request is one ingested demand report: Count requests (default 1) of
// class Class for content Content at SBS SBS, arriving in the open slot.
type Request struct {
	SBS     int     `json:"sbs"`
	Class   int     `json:"class"`
	Content int     `json:"content"`
	Count   float64 `json:"count,omitempty"`
}

// ErrBackpressure is returned by Ingest when the open slot's report
// buffer is saturated (Config.PendingLimit); the HTTP layer maps it to
// 429 with a Retry-After of one slot.
var ErrBackpressure = errors.New("serve: open-slot report buffer is full")

// ErrClosed is returned by mutating methods after Close.
var ErrClosed = errors.New("serve: controller closed")

// RequestError rejects one report of an Ingest batch; the whole batch is
// refused and nothing is applied (ingestion is all-or-nothing, so a WAL
// record always describes a fully applied batch).
type RequestError struct {
	Index  int    `json:"index"`
	Field  string `json:"field"`
	Reason string `json:"reason"`
}

func (e *RequestError) Error() string {
	return fmt.Sprintf("serve: request %d: %s %s", e.Index, e.Field, e.Reason)
}

// Config tunes a Controller beyond the topology instance.
type Config struct {
	// Online is the controller configuration (algorithm, window,
	// commitment, retry policy, …). Its Faults field arms solver faults;
	// topology faults must be materialised into the instance by the
	// caller (cmd/jocserve does both from one schedule).
	Online online.Config
	// EstimatorAlpha is the EWMA weight of the newest slot (0 selects
	// workload.DefaultEstimatorAlpha).
	EstimatorAlpha float64
	// EstimatorFloor is the clamped-decay floor (< 0 selects
	// workload.DefaultEstimatorFloor; 0 disables).
	EstimatorFloor float64
	// SnapshotPath, when non-empty, persists a snapshot envelope there
	// (atomic rename) after every closed slot; Open restores from it.
	// Legacy single-file mode: open-slot reports are not durable.
	// Mutually exclusive with StateDir.
	SnapshotPath string
	// StateDir, when non-empty, enables the crash-safe durability layer
	// (DESIGN.md §14): every acknowledged Ingest batch is written to an
	// append-only WAL before the acknowledgement, snapshots are kept as
	// checksummed generations rotated at slot close, and Open recovers
	// from the newest verifiable generation plus an idempotent WAL
	// replay — extending restart equivalence from "kill at slot
	// boundaries" to "kill -9 at any byte".
	StateDir string
	// WALFsync is the WAL flush policy ("" selects FsyncAlways).
	WALFsync FsyncPolicy
	// FsyncEvery is the FsyncInterval period (0 selects 100ms).
	FsyncEvery time.Duration
	// SnapKeep is how many snapshot generations to retain (0 selects 3;
	// minimum 2 — corruption fallback needs a predecessor).
	SnapKeep int
	// PendingLimit caps the number of report entries bookable into one
	// open slot; Ingest returns ErrBackpressure beyond it. 0 = unlimited.
	PendingLimit int64
	// DiskFaults arms torn-write/bit-flip injection on the durability
	// files (chaos harnesses only).
	DiskFaults *fault.DiskFaults
	// Faults is the full fault schedule. Its prediction-corruption arm is
	// hooked into the forecast feed here (reading the live tensor; the
	// realised rates are never touched) and its solver faults should also
	// ride in Online.Faults; topology injectors must be materialised into
	// the instance by the caller (MaterializeFaults).
	Faults *fault.Schedule
}

func (cfg *Config) snapKeep() int {
	if cfg.SnapKeep <= 0 {
		return 3
	}
	if cfg.SnapKeep < 2 {
		return 2
	}
	return cfg.SnapKeep
}

// Controller is the serving-side state machine around an online.Stream:
// it owns the live demand tensor (filled slot by slot from ingested
// requests), the oracle-free forecaster reading it, and the snapshot/WAL
// persistence. All methods are safe for concurrent use; Tick serialises
// against ingestion so a slot's rates are final when the stream closes
// it.
type Controller struct {
	mu   sync.Mutex
	base *model.Instance // caller's topology; its demand tensor is ignored
	in   *model.Instance // live instance: base with the realised tensor
	live *model.Demand
	cfg  Config

	stream  *online.Stream
	pending [][]float64 // [n][m*K+k] accumulated counts for the open slot
	total   int64       // requests ingested over the controller's lifetime

	// Durability state (StateDir mode).
	wal            *wal
	walErr         error  // sticky: any WAL write failure poisons the controller
	lastSeq        uint64 // last appended WAL sequence number
	walSeqClosed   uint64 // sequence of the last close marker (envelope watermark)
	ingestedClosed int64  // total at that close (envelope Ingested)
	openReports    int64  // report entries booked into the open slot
	closed         bool
}

// New starts a fresh controller over the topology of base (its demand
// tensor is replaced by an empty realised tensor — a live controller has
// no future to peek at). The start-up windows are solved immediately, so
// the slot-0 plan is published on return. New never touches disk; use
// Open for the persistent modes.
func New(ctx context.Context, base *model.Instance, cfg Config) (*Controller, error) {
	c, f, err := prepare(base, cfg)
	if err != nil {
		return nil, err
	}
	c.stream, err = online.NewStream(ctx, c.in, f, cfg.Online)
	if err != nil {
		return nil, err
	}
	return c, nil
}

// Open restores the controller from persistent state when any exists and
// starts fresh otherwise — so a killed-and-restarted service re-runs the
// same command line and continues where it stopped. With StateDir set
// this is full crash recovery: newest verifiable snapshot generation
// (falling back past torn or bit-flipped ones), idempotent WAL replay
// beyond its watermark, torn-tail truncation, and a repair snapshot when
// the newest generation was missing or damaged.
func Open(ctx context.Context, base *model.Instance, cfg Config) (*Controller, error) {
	if cfg.StateDir != "" {
		if cfg.SnapshotPath != "" {
			return nil, fmt.Errorf("serve: Config.StateDir and Config.SnapshotPath are mutually exclusive")
		}
		return openDurable(ctx, base, cfg)
	}
	if cfg.SnapshotPath == "" {
		return New(ctx, base, cfg)
	}
	env, err := LoadSnapshot(cfg.SnapshotPath)
	if err != nil {
		return nil, err
	}
	if env == nil {
		return New(ctx, base, cfg)
	}
	return Restore(ctx, base, cfg, env)
}

// openDurable is Open's StateDir path: plan recovery from disk, rebuild
// the in-memory controller, replay the WAL, reopen it for appending, and
// repair the generation chain if the newest one was lost.
func openDurable(ctx context.Context, base *model.Instance, cfg Config) (*Controller, error) {
	if err := os.MkdirAll(cfg.StateDir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: create state dir: %w", err)
	}
	rs, err := recoverState(cfg.StateDir)
	if err != nil {
		return nil, err
	}
	var c *Controller
	if rs.env == nil {
		c, err = New(ctx, base, cfg)
	} else {
		c, err = Restore(ctx, base, cfg, rs.env)
	}
	if err != nil {
		return nil, err
	}
	if rs.env != nil {
		c.walSeqClosed = rs.env.WalSeq
	}
	c.ingestedClosed = c.total

	// Idempotent replay: every record past the watermark, in sequence.
	// Reports re-validate (they were validated before their WAL append,
	// so a failure here means disk-level damage the CRC missed) and
	// closes re-run the deterministic slot commit.
	for _, rec := range rs.records {
		switch rec.Kind {
		case walKindReports:
			if rec.Slot != c.stream.Slot() {
				return nil, fmt.Errorf("serve: wal record %d reports for slot %d but slot %d is open", rec.Seq, rec.Slot, c.stream.Slot())
			}
			if rerr := c.validateLocked(rec.Reqs); rerr != nil {
				return nil, fmt.Errorf("serve: wal record %d: %w", rec.Seq, rerr)
			}
			c.applyLocked(rec.Reqs)
		case walKindClose:
			if rec.Slot != c.stream.Slot() {
				return nil, fmt.Errorf("serve: wal record %d closes slot %d but slot %d is open", rec.Seq, rec.Slot, c.stream.Slot())
			}
			if _, err := c.closeSlotLocked(ctx); err != nil {
				return nil, fmt.Errorf("serve: replay close of slot %d: %w", rec.Slot, err)
			}
			c.walSeqClosed = rec.Seq
			c.ingestedClosed = c.total
		default:
			return nil, fmt.Errorf("serve: wal record %d has unknown kind %q", rec.Seq, rec.Kind)
		}
	}
	mWALReplayed.Add(int64(len(rs.records)))
	c.lastSeq = rs.lastSeq

	seg := rs.appendSeg
	segLen := rs.appendLen
	if rs.genesis {
		seg, segLen = 0, 0
	}
	w, err := openWALSegment(segPath(cfg.StateDir, seg), segLen, cfg.WALFsync, cfg.FsyncEvery, cfg.DiskFaults)
	if err != nil {
		return nil, err
	}
	c.wal = w

	// Repair the generation chain: at genesis publish generation 0, and
	// after a fallback (or a close replayed past the newest generation)
	// re-publish the generation the crash destroyed — so the next startup
	// does not depend on the same fallback chain again.
	if rs.genesis || rs.fallbacks > 0 || c.stream.Slot() != rs.gen {
		if err := saveGeneration(cfg.StateDir, c.envelopeLocked(), cfg.DiskFaults); err != nil {
			c.wal.close()
			return nil, err
		}
	}
	if err := pruneStateDir(cfg.StateDir, cfg.snapKeep()); err != nil {
		c.wal.close()
		return nil, err
	}
	return c, nil
}

// Restore reconstructs a controller from a snapshot envelope taken under
// the same topology and configuration: the realised rows are replayed
// into a fresh tensor and the stream state restored, after which the
// controller is indistinguishable from one that was never stopped
// (online.RestoreStream's restart-equivalence contract).
func Restore(ctx context.Context, base *model.Instance, cfg Config, env *Envelope) (*Controller, error) {
	c, f, err := prepare(base, cfg)
	if err != nil {
		return nil, err
	}
	if len(env.Rows) != env.Controller.Slot {
		return nil, fmt.Errorf("serve: snapshot carries %d realised rows for slot %d", len(env.Rows), env.Controller.Slot)
	}
	for t, row := range env.Rows {
		if len(row) != base.N {
			return nil, fmt.Errorf("serve: snapshot row %d covers %d SBSs, want %d", t, len(row), base.N)
		}
		for n, flat := range row {
			if len(flat) != base.Classes[n]*base.K {
				return nil, fmt.Errorf("serve: snapshot row %d SBS %d has %d entries, want %d",
					t, n, len(flat), base.Classes[n]*base.K)
			}
			for i, v := range flat {
				if v != 0 {
					c.live.Set(t, n, i/base.K, i%base.K, v)
				}
			}
		}
	}
	c.total = env.Ingested
	c.stream, err = online.RestoreStream(ctx, c.in, f, cfg.Online, env.Controller)
	if err != nil {
		return nil, err
	}
	return c, nil
}

// prepare builds the live instance, tensor and forecaster shared by New
// and Restore.
func prepare(base *model.Instance, cfg Config) (*Controller, workload.Forecaster, error) {
	if err := base.Validate(); err != nil {
		return nil, nil, fmt.Errorf("serve: %w", err)
	}
	live := model.NewDemand(base.T, base.Classes, base.K)
	in := *base
	in.Demand = live
	est, err := workload.NewOnlineEstimator(live, cfg.EstimatorAlpha, cfg.EstimatorFloor)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: %w", err)
	}
	c := &Controller{
		base:    base,
		in:      &in,
		live:    live,
		cfg:     cfg,
		pending: make([][]float64, base.N),
	}
	for n := range c.pending {
		c.pending[n] = make([]float64, base.Classes[n]*base.K)
	}
	return c, workload.Corrupt(est, cfg.Faults.Corruptor(live)), nil
}

// validateLocked checks a batch without applying anything: index ranges
// and finite, non-negative counts. Validation is two-phase so a rejected
// batch leaves no partial state behind.
func (c *Controller) validateLocked(reqs []Request) *RequestError {
	for i, r := range reqs {
		if r.SBS < 0 || r.SBS >= c.base.N {
			return &RequestError{Index: i, Field: "sbs", Reason: fmt.Sprintf("%d outside [0, %d)", r.SBS, c.base.N)}
		}
		if r.Class < 0 || r.Class >= c.base.Classes[r.SBS] {
			return &RequestError{Index: i, Field: "class", Reason: fmt.Sprintf("%d outside [0, %d)", r.Class, c.base.Classes[r.SBS])}
		}
		if r.Content < 0 || r.Content >= c.base.K {
			return &RequestError{Index: i, Field: "content", Reason: fmt.Sprintf("%d outside [0, %d)", r.Content, c.base.K)}
		}
		if math.IsNaN(r.Count) || math.IsInf(r.Count, 0) {
			return &RequestError{Index: i, Field: "count", Reason: fmt.Sprintf("%g is not finite", r.Count)}
		}
		if r.Count < 0 {
			return &RequestError{Index: i, Field: "count", Reason: fmt.Sprintf("%g < 0", r.Count)}
		}
	}
	return nil
}

// applyLocked folds a validated batch into the open slot's accumulators.
func (c *Controller) applyLocked(reqs []Request) {
	for _, r := range reqs {
		count := r.Count
		if count == 0 {
			count = 1
		}
		c.pending[r.SBS][r.Class*c.base.K+r.Content] += count
		c.total++
		c.openReports++
	}
}

// Ingest accumulates a batch of requests into the open slot's empirical
// rates. It returns the slot the batch was booked under. The batch is
// all-or-nothing: validation happens before any state changes, and in
// StateDir mode the batch is durably logged to the WAL before it is
// applied — an acknowledged batch survives kill -9 at any later byte.
func (c *Controller) Ingest(reqs []Request) (slot int, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, ErrClosed
	}
	if c.walErr != nil {
		return 0, fmt.Errorf("serve: wal unhealthy, ingestion refused: %w", c.walErr)
	}
	if c.stream.Done() {
		return c.stream.Slot(), fmt.Errorf("serve: horizon complete, ingestion closed")
	}
	if rerr := c.validateLocked(reqs); rerr != nil {
		return 0, rerr
	}
	if c.cfg.PendingLimit > 0 && c.openReports+int64(len(reqs)) > c.cfg.PendingLimit {
		return 0, fmt.Errorf("%w: %d booked, %d offered, limit %d", ErrBackpressure, c.openReports, len(reqs), c.cfg.PendingLimit)
	}
	t := c.stream.Slot()
	if c.wal != nil {
		rec := walRecord{Seq: c.lastSeq + 1, Kind: walKindReports, Slot: t, Reqs: reqs}
		if err := c.wal.append(rec, false); err != nil {
			c.walErr = err
			return 0, err
		}
		c.lastSeq++
	}
	c.applyLocked(reqs)
	return t, nil
}

// closeSlotLocked flushes the open slot's accumulated counts into the
// live tensor and commits the slot through the stream. Shared by Tick
// and WAL replay — both sides of the restart-equivalence contract run
// exactly this code.
func (c *Controller) closeSlotLocked(ctx context.Context) (model.SlotDecision, error) {
	t := c.stream.Slot()
	for n, flat := range c.pending {
		for i, v := range flat {
			if v != 0 {
				c.live.Set(t, n, i/c.base.K, i%c.base.K, v)
				flat[i] = 0
			}
		}
	}
	dec, err := c.stream.CloseSlot(ctx)
	if err == nil {
		// The slot is closed in every mode — backpressure lifts here, not
		// in Tick's persistence tail.
		c.openReports = 0
	}
	return dec, err
}

// TickResult is one closed slot's outcome.
type TickResult struct {
	// Slot is the slot that was closed.
	Slot int `json:"slot"`
	// X and Y are the committed decision.
	X model.CachePlan `json:"x"`
	Y model.LoadPlan  `json:"y"`
	// NextSlot is the now-open slot; Done reports horizon completion.
	NextSlot int  `json:"nextSlot"`
	Done     bool `json:"done"`
}

// Tick closes the open slot: the accumulated request counts become the
// slot's final empirical rates (requests per slot), the stream commits
// the slot's decision against them and advances, and — when configured —
// the state is persisted before Tick returns. In StateDir mode the
// durable ordering is: close marker appended and fsynced to the WAL
// (regardless of fsync policy), then the new generation published, then
// the WAL rotated and old state pruned; a crash between any two of those
// steps recovers to the identical post-Tick state by replaying the close
// marker from an older generation.
func (c *Controller) Tick(ctx context.Context) (*TickResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	if c.walErr != nil {
		return nil, fmt.Errorf("serve: wal unhealthy, tick refused: %w", c.walErr)
	}
	if c.stream.Done() {
		return nil, fmt.Errorf("serve: horizon complete at slot %d", c.stream.Slot())
	}
	t := c.stream.Slot()
	dec, err := c.closeSlotLocked(ctx)
	if err != nil {
		return nil, err
	}
	if c.wal != nil {
		rec := walRecord{Seq: c.lastSeq + 1, Kind: walKindClose, Slot: t}
		if err := c.wal.append(rec, true); err != nil {
			// The in-memory stream advanced but the close is not durable:
			// continuing would let acknowledged state diverge from what a
			// recovery rebuilds. Poison the controller; /readyz goes red.
			c.walErr = err
			return nil, err
		}
		c.lastSeq++
		c.walSeqClosed = c.lastSeq
		c.ingestedClosed = c.total
		if err := c.saveAndRotateLocked(); err != nil {
			if errors.Is(err, fault.ErrCrash) {
				c.walErr = err
			}
			// A failed generation save (other than an injected crash) is
			// not fatal: the close marker is durable, so recovery from an
			// older generation replays it. The next Tick retries the save.
			return nil, err
		}
	} else if c.cfg.SnapshotPath != "" {
		if err := SaveSnapshot(c.cfg.SnapshotPath, c.envelopeLocked()); err != nil {
			return nil, err
		}
	}
	return &TickResult{
		Slot:     t,
		X:        dec.X,
		Y:        dec.Y,
		NextSlot: c.stream.Slot(),
		Done:     c.stream.Done(),
	}, nil
}

// saveAndRotateLocked publishes the boundary generation, rotates the WAL
// to the segment named after it, and prunes; c.mu must be held and the
// close marker must already be durable.
func (c *Controller) saveAndRotateLocked() error {
	env := c.envelopeLocked()
	if err := saveGeneration(c.cfg.StateDir, env, c.cfg.DiskFaults); err != nil {
		return err
	}
	if err := c.wal.close(); err != nil {
		return err
	}
	w, err := openWALSegment(segPath(c.cfg.StateDir, env.Slot), 0, c.cfg.WALFsync, c.cfg.FsyncEvery, c.cfg.DiskFaults)
	if err != nil {
		return err
	}
	c.wal = w
	return pruneStateDir(c.cfg.StateDir, c.cfg.snapKeep())
}

// envelopeLocked assembles the persistence envelope; c.mu must be held.
// An envelope always describes the last slot boundary: in StateDir mode
// Ingested and WalSeq come from the boundary bookkeeping so open-slot
// reports (which live in the WAL, not the envelope) are never counted as
// covered.
func (c *Controller) envelopeLocked() *Envelope {
	slot := c.stream.Slot()
	rows := make([][][]float64, slot)
	for t := 0; t < slot; t++ {
		rows[t] = make([][]float64, c.base.N)
		for n := 0; n < c.base.N; n++ {
			rows[t][n] = c.live.CopySlot(nil, t, n)
		}
	}
	env := &Envelope{
		FormatVersion: SnapshotFormatVersion,
		Algorithm:     c.cfg.Online.Name(),
		Slot:          slot,
		Ingested:      c.total,
		Rows:          rows,
		Controller:    c.stream.Snapshot(),
	}
	if c.cfg.StateDir != "" {
		env.Ingested = c.ingestedClosed
		env.WalSeq = c.walSeqClosed
	}
	return env
}

// Snapshot returns the controller's persistence envelope (deep copy).
func (c *Controller) Snapshot() *Envelope {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.envelopeLocked()
}

// Healthy returns nil while the durability layer is writable, and the
// sticky WAL error once any append failed — from then on Ingest and Tick
// refuse to run (acknowledging non-durable state would break the
// recovery contract) and /readyz reports the controller unready.
func (c *Controller) Healthy() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.walErr
}

// Close releases the WAL. Idempotent and safe to race with in-flight
// calls; operations after Close return ErrClosed.
func (c *Controller) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	if c.wal != nil {
		return c.wal.close()
	}
	return nil
}

// Plan is the published decision for the open slot.
type Plan struct {
	Slot    int             `json:"slot"`
	Horizon int             `json:"horizon"`
	Done    bool            `json:"done"`
	X       model.CachePlan `json:"x,omitempty"`
	// Y is the provisional split; nil in reactive load mode (the final
	// split needs the slot's realised demand) and after completion.
	Y model.LoadPlan `json:"y,omitempty"`
}

// Plan returns the provisionally published decision for the open slot.
// The plans are deep copies, safe to hand to encoders.
func (c *Controller) Plan() Plan {
	c.mu.Lock()
	defer c.mu.Unlock()
	slot, x, y := c.stream.Plan()
	p := Plan{Slot: slot, Horizon: c.base.T, Done: c.stream.Done()}
	if x != nil {
		p.X = x.Clone()
	}
	if y != nil {
		p.Y = y.Clone()
	}
	return p
}

// Stats are the controller's live counters.
type Stats struct {
	online.StreamStats
	Slot     int   `json:"slot"`
	Horizon  int   `json:"horizon"`
	Done     bool  `json:"done"`
	Ingested int64 `json:"ingested"`
}

// Stats returns the live counters.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		StreamStats: c.stream.Stats(),
		Slot:        c.stream.Slot(),
		Horizon:     c.base.T,
		Done:        c.stream.Done(),
		Ingested:    c.total,
	}
}

// Done reports whether every slot of the horizon has been closed.
func (c *Controller) Done() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stream.Done()
}

// Trajectory returns a deep copy of the committed decisions so far.
func (c *Controller) Trajectory() model.Trajectory {
	c.mu.Lock()
	defer c.mu.Unlock()
	traj := c.stream.Trajectory()
	out := make(model.Trajectory, len(traj))
	for t, dec := range traj {
		out[t] = model.SlotDecision{X: dec.X.Clone(), Y: dec.Y.Clone()}
	}
	return out
}

// Result assembles the completed run (errors while slots remain open).
func (c *Controller) Result() (*online.Result, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stream.Result()
}

// MaterializeFaults applies a schedule's topology injectors to base —
// the serving twin of sim.RunWith's materialisation — returning the
// effective instance to hand to New/Open. The corruption and solver
// arms of the same schedule ride in Config.Faults and
// Config.Online.Faults respectively.
func MaterializeFaults(base *model.Instance, sched *fault.Schedule) (*model.Instance, error) {
	if sched.Empty() {
		return base, nil
	}
	out, err := sched.Materialize(base, nil)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	return out, nil
}
