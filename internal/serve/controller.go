package serve

import (
	"context"
	"fmt"
	"sync"

	"edgecache/internal/fault"
	"edgecache/internal/model"
	"edgecache/internal/online"
	"edgecache/internal/workload"
)

// Request is one ingested demand report: Count requests (default 1) of
// class Class for content Content at SBS SBS, arriving in the open slot.
type Request struct {
	SBS     int     `json:"sbs"`
	Class   int     `json:"class"`
	Content int     `json:"content"`
	Count   float64 `json:"count,omitempty"`
}

// Config tunes a Controller beyond the topology instance.
type Config struct {
	// Online is the controller configuration (algorithm, window,
	// commitment, retry policy, …). Its Faults field arms solver faults;
	// topology faults must be materialised into the instance by the
	// caller (cmd/jocserve does both from one schedule).
	Online online.Config
	// EstimatorAlpha is the EWMA weight of the newest slot (0 selects
	// workload.DefaultEstimatorAlpha).
	EstimatorAlpha float64
	// EstimatorFloor is the clamped-decay floor (< 0 selects
	// workload.DefaultEstimatorFloor; 0 disables).
	EstimatorFloor float64
	// SnapshotPath, when non-empty, persists a snapshot envelope there
	// (atomic rename) after every closed slot; Open restores from it.
	SnapshotPath string
	// Faults is the full fault schedule. Its prediction-corruption arm is
	// hooked into the forecast feed here (reading the live tensor; the
	// realised rates are never touched) and its solver faults should also
	// ride in Online.Faults; topology injectors must be materialised into
	// the instance by the caller (MaterializeFaults).
	Faults *fault.Schedule
}

// Controller is the serving-side state machine around an online.Stream:
// it owns the live demand tensor (filled slot by slot from ingested
// requests), the oracle-free forecaster reading it, and the snapshot
// persistence. All methods are safe for concurrent use; Tick serialises
// against ingestion so a slot's rates are final when the stream closes
// it.
type Controller struct {
	mu   sync.Mutex
	base *model.Instance // caller's topology; its demand tensor is ignored
	in   *model.Instance // live instance: base with the realised tensor
	live *model.Demand
	cfg  Config

	stream  *online.Stream
	pending [][]float64 // [n][m*K+k] accumulated counts for the open slot
	total   int64       // requests ingested over the controller's lifetime
}

// New starts a fresh controller over the topology of base (its demand
// tensor is replaced by an empty realised tensor — a live controller has
// no future to peek at). The start-up windows are solved immediately, so
// the slot-0 plan is published on return.
func New(ctx context.Context, base *model.Instance, cfg Config) (*Controller, error) {
	c, f, err := prepare(base, cfg)
	if err != nil {
		return nil, err
	}
	c.stream, err = online.NewStream(ctx, c.in, f, cfg.Online)
	if err != nil {
		return nil, err
	}
	return c, nil
}

// Open restores the controller from cfg.SnapshotPath when a snapshot
// exists there, and starts fresh otherwise — so a killed-and-restarted
// service re-runs the same command line and continues where it stopped.
func Open(ctx context.Context, base *model.Instance, cfg Config) (*Controller, error) {
	if cfg.SnapshotPath == "" {
		return New(ctx, base, cfg)
	}
	env, err := LoadSnapshot(cfg.SnapshotPath)
	if err != nil {
		return nil, err
	}
	if env == nil {
		return New(ctx, base, cfg)
	}
	return Restore(ctx, base, cfg, env)
}

// Restore reconstructs a controller from a snapshot envelope taken under
// the same topology and configuration: the realised rows are replayed
// into a fresh tensor and the stream state restored, after which the
// controller is indistinguishable from one that was never stopped
// (online.RestoreStream's restart-equivalence contract).
func Restore(ctx context.Context, base *model.Instance, cfg Config, env *Envelope) (*Controller, error) {
	c, f, err := prepare(base, cfg)
	if err != nil {
		return nil, err
	}
	if len(env.Rows) != env.Controller.Slot {
		return nil, fmt.Errorf("serve: snapshot carries %d realised rows for slot %d", len(env.Rows), env.Controller.Slot)
	}
	for t, row := range env.Rows {
		if len(row) != base.N {
			return nil, fmt.Errorf("serve: snapshot row %d covers %d SBSs, want %d", t, len(row), base.N)
		}
		for n, flat := range row {
			if len(flat) != base.Classes[n]*base.K {
				return nil, fmt.Errorf("serve: snapshot row %d SBS %d has %d entries, want %d",
					t, n, len(flat), base.Classes[n]*base.K)
			}
			for i, v := range flat {
				if v != 0 {
					c.live.Set(t, n, i/base.K, i%base.K, v)
				}
			}
		}
	}
	c.total = env.Ingested
	c.stream, err = online.RestoreStream(ctx, c.in, f, cfg.Online, env.Controller)
	if err != nil {
		return nil, err
	}
	return c, nil
}

// prepare builds the live instance, tensor and forecaster shared by New
// and Restore.
func prepare(base *model.Instance, cfg Config) (*Controller, workload.Forecaster, error) {
	if err := base.Validate(); err != nil {
		return nil, nil, fmt.Errorf("serve: %w", err)
	}
	live := model.NewDemand(base.T, base.Classes, base.K)
	in := *base
	in.Demand = live
	est, err := workload.NewOnlineEstimator(live, cfg.EstimatorAlpha, cfg.EstimatorFloor)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: %w", err)
	}
	c := &Controller{
		base:    base,
		in:      &in,
		live:    live,
		cfg:     cfg,
		pending: make([][]float64, base.N),
	}
	for n := range c.pending {
		c.pending[n] = make([]float64, base.Classes[n]*base.K)
	}
	return c, workload.Corrupt(est, cfg.Faults.Corruptor(live)), nil
}

// Ingest accumulates a batch of requests into the open slot's empirical
// rates. It returns the slot the batch was booked under.
func (c *Controller) Ingest(reqs []Request) (slot int, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stream.Done() {
		return c.stream.Slot(), fmt.Errorf("serve: horizon complete, ingestion closed")
	}
	for i, r := range reqs {
		if r.SBS < 0 || r.SBS >= c.base.N {
			return 0, fmt.Errorf("serve: request %d: sbs %d outside [0, %d)", i, r.SBS, c.base.N)
		}
		if r.Class < 0 || r.Class >= c.base.Classes[r.SBS] {
			return 0, fmt.Errorf("serve: request %d: class %d outside [0, %d)", i, r.Class, c.base.Classes[r.SBS])
		}
		if r.Content < 0 || r.Content >= c.base.K {
			return 0, fmt.Errorf("serve: request %d: content %d outside [0, %d)", i, r.Content, c.base.K)
		}
		count := r.Count
		if count == 0 {
			count = 1
		}
		if count < 0 {
			return 0, fmt.Errorf("serve: request %d: count %g < 0", i, count)
		}
		c.pending[r.SBS][r.Class*c.base.K+r.Content] += count
		c.total++
	}
	return c.stream.Slot(), nil
}

// TickResult is one closed slot's outcome.
type TickResult struct {
	// Slot is the slot that was closed.
	Slot int `json:"slot"`
	// X and Y are the committed decision.
	X model.CachePlan `json:"x"`
	Y model.LoadPlan  `json:"y"`
	// NextSlot is the now-open slot; Done reports horizon completion.
	NextSlot int  `json:"nextSlot"`
	Done     bool `json:"done"`
}

// Tick closes the open slot: the accumulated request counts become the
// slot's final empirical rates (requests per slot), the stream commits
// the slot's decision against them and advances, and — when configured —
// the snapshot envelope is persisted atomically before Tick returns, so
// a crash after Tick never loses the slot.
func (c *Controller) Tick(ctx context.Context) (*TickResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stream.Done() {
		return nil, fmt.Errorf("serve: horizon complete at slot %d", c.stream.Slot())
	}
	t := c.stream.Slot()
	for n, flat := range c.pending {
		for i, v := range flat {
			if v != 0 {
				c.live.Set(t, n, i/c.base.K, i%c.base.K, v)
				flat[i] = 0
			}
		}
	}
	dec, err := c.stream.CloseSlot(ctx)
	if err != nil {
		return nil, err
	}
	if c.cfg.SnapshotPath != "" {
		if err := SaveSnapshot(c.cfg.SnapshotPath, c.envelopeLocked()); err != nil {
			return nil, err
		}
	}
	return &TickResult{
		Slot:     t,
		X:        dec.X,
		Y:        dec.Y,
		NextSlot: c.stream.Slot(),
		Done:     c.stream.Done(),
	}, nil
}

// envelopeLocked assembles the persistence envelope; c.mu must be held.
func (c *Controller) envelopeLocked() *Envelope {
	slot := c.stream.Slot()
	rows := make([][][]float64, slot)
	for t := 0; t < slot; t++ {
		rows[t] = make([][]float64, c.base.N)
		for n := 0; n < c.base.N; n++ {
			rows[t][n] = c.live.CopySlot(nil, t, n)
		}
	}
	return &Envelope{
		FormatVersion: SnapshotFormatVersion,
		Algorithm:     c.cfg.Online.Name(),
		Slot:          slot,
		Ingested:      c.total,
		Rows:          rows,
		Controller:    c.stream.Snapshot(),
	}
}

// Snapshot returns the controller's persistence envelope (deep copy).
func (c *Controller) Snapshot() *Envelope {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.envelopeLocked()
}

// Plan is the published decision for the open slot.
type Plan struct {
	Slot    int             `json:"slot"`
	Horizon int             `json:"horizon"`
	Done    bool            `json:"done"`
	X       model.CachePlan `json:"x,omitempty"`
	// Y is the provisional split; nil in reactive load mode (the final
	// split needs the slot's realised demand) and after completion.
	Y model.LoadPlan `json:"y,omitempty"`
}

// Plan returns the provisionally published decision for the open slot.
// The plans are deep copies, safe to hand to encoders.
func (c *Controller) Plan() Plan {
	c.mu.Lock()
	defer c.mu.Unlock()
	slot, x, y := c.stream.Plan()
	p := Plan{Slot: slot, Horizon: c.base.T, Done: c.stream.Done()}
	if x != nil {
		p.X = x.Clone()
	}
	if y != nil {
		p.Y = y.Clone()
	}
	return p
}

// Stats are the controller's live counters.
type Stats struct {
	online.StreamStats
	Slot     int   `json:"slot"`
	Horizon  int   `json:"horizon"`
	Done     bool  `json:"done"`
	Ingested int64 `json:"ingested"`
}

// Stats returns the live counters.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		StreamStats: c.stream.Stats(),
		Slot:        c.stream.Slot(),
		Horizon:     c.base.T,
		Done:        c.stream.Done(),
		Ingested:    c.total,
	}
}

// Done reports whether every slot of the horizon has been closed.
func (c *Controller) Done() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stream.Done()
}

// Trajectory returns a deep copy of the committed decisions so far.
func (c *Controller) Trajectory() model.Trajectory {
	c.mu.Lock()
	defer c.mu.Unlock()
	traj := c.stream.Trajectory()
	out := make(model.Trajectory, len(traj))
	for t, dec := range traj {
		out[t] = model.SlotDecision{X: dec.X.Clone(), Y: dec.Y.Clone()}
	}
	return out
}

// Result assembles the completed run (errors while slots remain open).
func (c *Controller) Result() (*online.Result, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stream.Result()
}

// MaterializeFaults applies a schedule's topology injectors to base —
// the serving twin of sim.RunWith's materialisation — returning the
// effective instance to hand to New/Open. The corruption and solver
// arms of the same schedule ride in Config.Faults and
// Config.Online.Faults respectively.
func MaterializeFaults(base *model.Instance, sched *fault.Schedule) (*model.Instance, error) {
	if sched.Empty() {
		return base, nil
	}
	out, err := sched.Materialize(base, nil)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	return out, nil
}
