package serve

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"time"

	"edgecache/internal/fault"
	"edgecache/internal/obs"
)

// Durability counters (DESIGN.md §14). Created on first use; zero-cost
// reads when metrics are disabled.
var (
	mWALAppends    = obs.Default.Counter("serve.wal_appends")
	mWALReplayed   = obs.Default.Counter("serve.wal_replayed")
	mWALTornTail   = obs.Default.Counter("serve.wal_torn_tail")
	mSnapFallbacks = obs.Default.Counter("serve.snapshot_fallbacks")
	mSnapCorrupt   = obs.Default.Counter("serve.snapshot_corrupt")
	mTicksMissed   = obs.Default.Counter("serve.ticks_missed")
	mPanics        = obs.Default.Counter("serve.handler_panics")
)

// FsyncPolicy selects when the WAL flushes appended records to stable
// storage. Close markers and snapshot generations are always synced
// regardless of policy, so the loss window of the relaxed policies is
// bounded to report records inside the open slot.
type FsyncPolicy string

const (
	// FsyncAlways syncs after every append: an acknowledged report is
	// durable before the acknowledgement leaves the process. The default.
	FsyncAlways FsyncPolicy = "always"
	// FsyncInterval syncs at most once per Config.FsyncEvery: a crash can
	// lose up to one interval of acknowledged open-slot reports.
	FsyncInterval FsyncPolicy = "interval"
	// FsyncOff never syncs report appends (the OS flushes eventually): a
	// crash can lose any acknowledged reports of the open slot.
	FsyncOff FsyncPolicy = "off"
)

// ParseFsyncPolicy maps the -wal-fsync flag values; "" selects
// FsyncAlways.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch FsyncPolicy(s) {
	case "", FsyncAlways:
		return FsyncAlways, nil
	case FsyncInterval:
		return FsyncInterval, nil
	case FsyncOff:
		return FsyncOff, nil
	}
	return "", fmt.Errorf("serve: unknown fsync policy %q (want always, interval or off)", s)
}

// WAL record kinds.
const (
	walKindReports = "reports" // an acknowledged Ingest batch
	walKindClose   = "close"   // a slot-close marker
)

// walRecord is one framed WAL entry. Seq is globally monotonic across
// segment rotations, starting at 1; recovery rejects duplicates, gaps
// and reordering.
type walRecord struct {
	Seq  uint64    `json:"seq"`
	Kind string    `json:"kind"`
	Slot int       `json:"slot"`
	Reqs []Request `json:"reqs,omitempty"`
}

// maxWALRecord caps one record's payload. Anything claiming to be
// larger is garbage (a torn or corrupt length header) — the cap keeps a
// hostile length field from allocating unbounded memory during replay
// and fuzzing.
const maxWALRecord = 1 << 24

// walFrameHeader is the fixed frame prefix: uint32 LE payload length,
// uint32 LE CRC32C of the payload.
const walFrameHeader = 8

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// encodeWALFrame frames a record: length, CRC32C, JSON payload.
func encodeWALFrame(rec walRecord) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("serve: marshal wal record: %w", err)
	}
	if len(payload) > maxWALRecord {
		return nil, fmt.Errorf("serve: wal record of %d bytes exceeds the %d cap", len(payload), maxWALRecord)
	}
	frame := make([]byte, walFrameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	copy(frame[walFrameHeader:], payload)
	return frame, nil
}

// decodeWALBuffer walks frames from the start of data and returns every
// record up to the first bad frame, plus the byte offset where the good
// prefix ends. It never returns an error and never panics: a truncated
// header, an absurd length, a CRC mismatch or unparsable JSON all just
// terminate the walk — that is the torn-tail tolerance the append-only
// write path guarantees is safe (frames are written strictly in order,
// so damage can only be a suffix; recovery decides whether a short
// prefix is tolerable).
func decodeWALBuffer(data []byte) (recs []walRecord, goodLen int) {
	off := 0
	for {
		if len(data)-off < walFrameHeader {
			return recs, off
		}
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		if n == 0 || n > maxWALRecord || n > len(data)-off-walFrameHeader {
			return recs, off
		}
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		payload := data[off+walFrameHeader : off+walFrameHeader+n]
		if crc32.Checksum(payload, castagnoli) != sum {
			return recs, off
		}
		var rec walRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return recs, off
		}
		recs = append(recs, rec)
		off += walFrameHeader + n
	}
}

// readWALSegment reads and decodes one segment file. torn reports
// whether undecodable bytes trail the good prefix; goodLen is the byte
// length of that prefix (the truncation point for reopening the final
// segment in append mode).
func readWALSegment(path string) (recs []walRecord, goodLen int64, torn bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, false, fmt.Errorf("serve: read wal segment: %w", err)
	}
	recs, n := decodeWALBuffer(data)
	return recs, int64(n), n < len(data), nil
}

// wal is an open append-mode segment file.
type wal struct {
	f        *os.File
	path     string
	policy   FsyncPolicy
	interval time.Duration
	lastSync time.Time
	faults   *fault.DiskFaults
}

// openWALSegment opens (creating if absent) a segment for appending.
// When goodLen ≥ 0 and the file is longer, it is truncated there first —
// recovery passes the decoded good-prefix length so a torn tail is cut
// off before new frames land after it (frames appended beyond garbage
// would be unreachable forever).
func openWALSegment(path string, goodLen int64, policy FsyncPolicy, interval time.Duration, faults *fault.DiskFaults) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("serve: open wal segment: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("serve: stat wal segment: %w", err)
	}
	if goodLen >= 0 && st.Size() > goodLen {
		if err := f.Truncate(goodLen); err != nil {
			f.Close()
			return nil, fmt.Errorf("serve: truncate wal torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("serve: sync wal truncation: %w", err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("serve: seek wal segment: %w", err)
	}
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	return &wal{f: f, path: path, policy: policy, interval: interval, faults: faults}, nil
}

// append frames and writes one record. force overrides the fsync policy
// (close markers must be durable before the snapshot that covers them).
// A fault-injected torn append writes only a prefix of the frame and
// then fires the simulated crash — from that point the in-memory
// controller state must be discarded, exactly as after SIGKILL.
func (w *wal) append(rec walRecord, force bool) error {
	frame, err := encodeWALFrame(rec)
	if err != nil {
		return err
	}
	if keep, tear := w.faults.WALTear(len(frame)); tear {
		if keep > 0 {
			_, _ = w.f.Write(frame[:keep])
		}
		_ = w.f.Sync() // make the torn prefix what a recovery will see
		return w.faults.Crash()
	}
	if _, err := w.f.Write(frame); err != nil {
		return fmt.Errorf("serve: append wal record: %w", err)
	}
	mWALAppends.Inc()
	switch {
	case force, w.policy == FsyncAlways, w.policy == "":
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("serve: sync wal: %w", err)
		}
		w.lastSync = time.Now()
	case w.policy == FsyncInterval:
		if now := time.Now(); now.Sub(w.lastSync) >= w.interval {
			if err := w.f.Sync(); err != nil {
				return fmt.Errorf("serve: sync wal: %w", err)
			}
			w.lastSync = now
		}
	}
	return nil
}

// close syncs and closes the segment file.
func (w *wal) close() error {
	if w.f == nil {
		return nil
	}
	syncErr := w.f.Sync()
	closeErr := w.f.Close()
	w.f = nil
	if syncErr != nil {
		return fmt.Errorf("serve: sync wal on close: %w", syncErr)
	}
	if closeErr != nil {
		return fmt.Errorf("serve: close wal: %w", closeErr)
	}
	return nil
}
