package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"edgecache/internal/online"
)

// TestIngestNonFiniteRejected pins the estimator-poisoning guard: NaN,
// ±Inf and negative counts are rejected with a structured RequestError
// locating the offending report.
func TestIngestNonFiniteRejected(t *testing.T) {
	base := testInstance(t)
	c, err := New(context.Background(), base, Config{Online: online.RHC(4), EstimatorFloor: -1})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		batch []Request
		field string
		index int
	}{
		{"nan", []Request{{SBS: 0}, {SBS: 0, Count: math.NaN()}}, "count", 1},
		{"+inf", []Request{{SBS: 0, Count: math.Inf(1)}}, "count", 0},
		{"-inf", []Request{{SBS: 0, Count: math.Inf(-1)}}, "count", 0},
		{"negative", []Request{{SBS: 0, Count: -1}}, "count", 0},
		{"sbs", []Request{{SBS: base.N}}, "sbs", 0},
		{"class", []Request{{SBS: 0, Class: -1}}, "class", 0},
		{"content", []Request{{SBS: 0, Content: base.K}}, "content", 0},
	}
	for _, tc := range cases {
		_, err := c.Ingest(tc.batch)
		rerr, ok := err.(*RequestError)
		if !ok {
			t.Errorf("%s: error %v, want *RequestError", tc.name, err)
			continue
		}
		if rerr.Field != tc.field || rerr.Index != tc.index {
			t.Errorf("%s: rejected field %q index %d, want %q index %d", tc.name, rerr.Field, rerr.Index, tc.field, tc.index)
		}
	}
	if got := c.Stats().Ingested; got != 0 {
		t.Fatalf("%d reports booked from rejected batches — validation is not atomic", got)
	}
}

// TestServerHardening drives the abuse surface of POST /v1/requests over
// HTTP: oversized bodies, malformed and non-finite payloads with the
// structured 400 body, ingest backpressure with Retry-After, and the
// panic-recovery middleware.
func TestServerHardening(t *testing.T) {
	base := testInstance(t)
	c, err := New(context.Background(), base, Config{
		Online: online.RHC(4), EstimatorFloor: -1, PendingLimit: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{Controller: c, MaxBodyBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(body string) (*http.Response, ErrorBody) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/requests", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var eb ErrorBody
		json.NewDecoder(resp.Body).Decode(&eb)
		return resp, eb
	}

	// An oversized body is cut off at MaxBodyBytes with 413.
	big := fmt.Sprintf(`{"requests":[%s{"sbs":0}]}`,
		strings.Repeat(`{"sbs":0,"class":0,"content":0,"count":1},`, 64))
	if resp, _ := post(big); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: %d, want 413", resp.StatusCode)
	}
	// Malformed JSON is a 400.
	if resp, _ := post(`{"requests":[`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: %d, want 400", resp.StatusCode)
	}
	// A bad rate is a 400 with the structured locator. (JSON cannot carry
	// NaN/Inf literally — those reach Ingest only through in-process
	// callers, covered above — so the wire case uses a negative count.)
	resp, eb := post(`{"requests":[{"sbs":0},{"sbs":0,"count":-3}]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative count: %d, want 400", resp.StatusCode)
	}
	if eb.Field != "count" || eb.Index != 1 || eb.Reason == "" {
		t.Fatalf("structured error body %+v, want field=count index=1", eb)
	}
	// Out-of-range index over the wire too.
	resp, eb = post(fmt.Sprintf(`{"requests":[{"sbs":%d}]}`, base.N))
	if resp.StatusCode != http.StatusBadRequest || eb.Field != "sbs" {
		t.Fatalf("out-of-range sbs: %d %+v", resp.StatusCode, eb)
	}

	// Backpressure: the 11th open-slot report trips PendingLimit=10 with
	// 429 + Retry-After.
	ok := fmt.Sprintf(`{"requests":[%s{"sbs":0}]}`,
		strings.Repeat(`{"sbs":0},`, 9))
	if resp, _ := post(ok); resp.StatusCode != http.StatusOK {
		t.Fatalf("filling batch: %d, want 200", resp.StatusCode)
	}
	resp, eb = post(`{"requests":[{"sbs":0}]}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over limit: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if !strings.Contains(eb.Error, "limit") {
		t.Fatalf("backpressure body %+v does not name the limit", eb)
	}
	// The booked 10 are still there; the rejected one was not applied.
	if got := c.Stats().Ingested; got != 10 {
		t.Fatalf("%d reports booked, want 10", got)
	}
	// Closing the slot drains the window and lifts the backpressure.
	if _, err := c.Tick(context.Background()); err != nil {
		t.Fatal(err)
	}
	if resp, _ := post(`{"requests":[{"sbs":0}]}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("after tick: %d, want 200", resp.StatusCode)
	}
}

// TestPanicMiddleware checks a handler panic becomes a 500 and a counter
// increment, not a process death.
func TestPanicMiddleware(t *testing.T) {
	base := testInstance(t)
	c, err := New(context.Background(), base, Config{Online: online.RHC(4), EstimatorFloor: -1})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{Controller: c})
	if err != nil {
		t.Fatal(err)
	}
	bomb := srv.recoverPanics(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	}))
	panics0 := mPanics.Value()
	rec := httptest.NewRecorder()
	bomb.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/plan", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler replied %d, want 500", rec.Code)
	}
	var eb ErrorBody
	if err := json.NewDecoder(rec.Body).Decode(&eb); err != nil || !strings.Contains(eb.Error, "kaboom") {
		t.Fatalf("panic body %+v, %v", eb, err)
	}
	if mPanics.Value() == panics0 {
		t.Fatal("panic not counted in serve.handler_panics")
	}
	// The real mux still serves normally afterwards.
	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz after a panic: %d", rec.Code)
	}
}
