package serve

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"edgecache/internal/fault"
)

// TestWALFrameRoundTrip pins the frame format: length+CRC32C header,
// JSON payload, decoded records identical to what was appended.
func TestWALFrameRoundTrip(t *testing.T) {
	recs := []walRecord{
		{Seq: 1, Kind: walKindReports, Slot: 0, Reqs: []Request{{SBS: 0, Class: 1, Content: 2, Count: 2.5}}},
		{Seq: 2, Kind: walKindReports, Slot: 0, Reqs: []Request{{SBS: 1}}},
		{Seq: 3, Kind: walKindClose, Slot: 0},
	}
	var buf bytes.Buffer
	for _, r := range recs {
		frame, err := encodeWALFrame(r)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(frame)
	}
	got, goodLen := decodeWALBuffer(buf.Bytes())
	if goodLen != buf.Len() {
		t.Fatalf("good prefix %d of %d bytes", goodLen, buf.Len())
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("decoded %+v, want %+v", got, recs)
	}
}

// TestWALDecodeTornTail checks the tail-tolerance contract: a garbage or
// half-written suffix terminates the walk at the last good frame without
// error, and corruption inside a frame is caught by the CRC.
func TestWALDecodeTornTail(t *testing.T) {
	good, err := encodeWALFrame(walRecord{Seq: 1, Kind: walKindClose, Slot: 0})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data []byte
		want int // records decoded
		good int // good prefix length
	}{
		{"empty", nil, 0, 0},
		{"garbage", []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3}, 0, 0},
		{"half header", good[:4], 0, 0},
		{"half frame", good[:len(good)-3], 0, 0},
		{"good then garbage", append(append([]byte{}, good...), 0xDE, 0xAD, 0xBE), 1, len(good)},
		{"good then half frame", append(append([]byte{}, good...), good[:len(good)-1]...), 1, len(good)},
		{"zero length", []byte{0, 0, 0, 0, 0, 0, 0, 0}, 0, 0},
	}
	for _, tc := range cases {
		recs, n := decodeWALBuffer(tc.data)
		if len(recs) != tc.want || n != tc.good {
			t.Errorf("%s: %d records, prefix %d; want %d, %d", tc.name, len(recs), n, tc.want, tc.good)
		}
	}
	// A flipped payload bit fails the CRC and terminates the walk.
	flipped := append([]byte{}, good...)
	flipped[walFrameHeader+2] ^= 0x10
	if recs, n := decodeWALBuffer(flipped); len(recs) != 0 || n != 0 {
		t.Errorf("bit flip: decoded %d records, prefix %d", len(recs), n)
	}
}

// TestWALSegmentAppendTruncation checks that reopening a torn segment
// truncates the tail before appending, so later records stay reachable.
func TestWALSegmentAppendTruncation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.000000")
	w, err := openWALSegment(path, 0, FsyncAlways, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.append(walRecord{Seq: 1, Kind: walKindClose, Slot: 0}, false); err != nil {
		t.Fatal(err)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	// Tear the file: half of a second record.
	frame, err := encodeWALFrame(walRecord{Seq: 2, Kind: walKindClose, Slot: 1})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frame[:len(frame)-2]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	recs, goodLen, torn, err := readWALSegment(path)
	if err != nil || !torn || len(recs) != 1 {
		t.Fatalf("torn read: %d records, torn=%v, err=%v", len(recs), torn, err)
	}
	// Reopen at the good prefix and append seq 2 for real.
	w, err = openWALSegment(path, goodLen, FsyncAlways, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.append(walRecord{Seq: 2, Kind: walKindClose, Slot: 1}, false); err != nil {
		t.Fatal(err)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	recs, _, torn, err = readWALSegment(path)
	if err != nil || torn || len(recs) != 2 || recs[1].Seq != 2 {
		t.Fatalf("after truncating reopen: %d records, torn=%v, err=%v", len(recs), torn, err)
	}
}

// TestParsePolicies covers the flag parsers for fsync and catch-up.
func TestParsePolicies(t *testing.T) {
	if p, err := ParseFsyncPolicy(""); p != FsyncAlways || err != nil {
		t.Fatalf("empty fsync policy: %v, %v", p, err)
	}
	for _, s := range []string{"always", "interval", "off"} {
		if _, err := ParseFsyncPolicy(s); err != nil {
			t.Errorf("%q rejected: %v", s, err)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Error("bogus fsync policy accepted")
	}
	if p, n, err := ParseCatchUpPolicy(""); p != CatchUpSkip || n != 0 || err != nil {
		t.Fatalf("empty catch-up policy: %v, %d, %v", p, n, err)
	}
	if p, n, err := ParseCatchUpPolicy("fastforward:4"); p != CatchUpFastForward || n != 4 || err != nil {
		t.Fatalf("fastforward:4: %v, %d, %v", p, n, err)
	}
	for _, s := range []string{"fastforward:0", "fastforward:x", "eventually"} {
		if _, _, err := ParseCatchUpPolicy(s); err == nil {
			t.Errorf("bogus catch-up policy %q accepted", s)
		}
	}
}

// TestParseDisk covers the disk-fault DSL.
func TestParseDisk(t *testing.T) {
	d, err := fault.ParseDisk("tearwal:op=5; flipsnap:op=2", 7)
	if err != nil {
		t.Fatal(err)
	}
	if d.TearWALAppend != 5 || d.FlipSnapshot != 2 || d.TearSnapshot != 0 {
		t.Fatalf("parsed %+v", d)
	}
	for _, spec := range []string{"", "tearwal:op=0", "tearwal:n=3", "burn:op=1"} {
		if _, err := fault.ParseDisk(spec, 7); err == nil {
			t.Errorf("bogus disk spec %q accepted", spec)
		}
	}
}

// TestDiskFaultDeterminism pins that tear offsets are pure functions of
// (seed, op): two identically armed injectors tear identically.
func TestDiskFaultDeterminism(t *testing.T) {
	a := &fault.DiskFaults{Seed: 3, TearWALAppend: 2}
	b := &fault.DiskFaults{Seed: 3, TearWALAppend: 2}
	for op := 0; op < 3; op++ {
		ka, ta := a.WALTear(100)
		kb, tb := b.WALTear(100)
		if ka != kb || ta != tb {
			t.Fatalf("op %d: (%d,%v) vs (%d,%v)", op, ka, ta, kb, tb)
		}
		if ta && (ka < 0 || ka >= 100) {
			t.Fatalf("op %d: tear keeps %d of 100 bytes — not a strict prefix", op, ka)
		}
	}
}
