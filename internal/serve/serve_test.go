package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"edgecache/internal/fault"
	"edgecache/internal/model"
	"edgecache/internal/online"
	"edgecache/internal/trace"
	"edgecache/internal/workload"
)

// testInstance builds the small deterministic topology the online-layer
// tests use; its synthetic demand tensor seeds the request trace only —
// the controller under test never sees it.
func testInstance(t *testing.T) *model.Instance {
	t.Helper()
	cfg := workload.PaperDefault()
	cfg.T = 12
	cfg.K = 6
	cfg.ClassesPerSBS = 4
	cfg.CacheCap = 2
	cfg.Bandwidth = 6
	cfg.Beta = 5
	in, err := workload.BuildInstance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// ingestSlot books slot t of the trace into the controller, one batch
// per SBS, and returns the number of requests booked.
func ingestSlot(t *testing.T, c *Controller, tr *trace.Trace, slot int) int {
	t.Helper()
	total := 0
	for n := 0; n < tr.N(); n++ {
		reqs := tr.Slot(slot, n)
		batch := make([]Request, len(reqs))
		for i, r := range reqs {
			batch[i] = Request{SBS: r.SBS, Class: r.Class, Content: r.Content}
		}
		if len(batch) == 0 {
			continue
		}
		got, err := c.Ingest(batch)
		if err != nil {
			t.Fatal(err)
		}
		if got != slot {
			t.Fatalf("ingest booked under slot %d, want %d", got, slot)
		}
		total += len(batch)
	}
	return total
}

// driveToCompletion ingests and ticks every remaining slot.
func driveToCompletion(t *testing.T, c *Controller, tr *trace.Trace) {
	t.Helper()
	ctx := context.Background()
	for !c.Done() {
		slot := c.Stats().Slot
		ingestSlot(t, c, tr, slot)
		if _, err := c.Tick(ctx); err != nil {
			t.Fatal(err)
		}
	}
}

// TestControllerGoldenReplay pins the serving layer's golden-replay
// property: a controller fed discrete requests slot by slot through
// Ingest/Tick commits the exact trajectory of a batch online.Run over
// the trace's empirical rate tensor with a fresh estimator — the HTTP
// shell adds no decision-relevant state of its own.
func TestControllerGoldenReplay(t *testing.T) {
	base := testInstance(t)
	tr := trace.Generate(base.Demand, 7)
	cfg := Config{Online: online.CHC(4, 2), EstimatorFloor: -1}

	c, err := New(context.Background(), base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Plan(); got.Slot != 0 || got.X == nil {
		t.Fatalf("fresh controller publishes no slot-0 plan: %+v", got)
	}
	driveToCompletion(t, c, tr)
	res, err := c.Result()
	if err != nil {
		t.Fatal(err)
	}

	empirical := tr.EmpiricalDemand()
	goldenIn := *base
	goldenIn.Demand = empirical
	est, err := workload.NewOnlineEstimator(empirical, 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	golden, err := online.Run(context.Background(), &goldenIn, est, cfg.Online)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(golden.Trajectory, res.Trajectory) {
		t.Fatal("controller trajectory diverges from the batch replay over the empirical tensor")
	}
	if !reflect.DeepEqual(golden, res) {
		t.Fatalf("controller result diverges from batch replay: %+v vs %+v", res, golden)
	}
	if got := c.Stats().Ingested; got != int64(tr.Len()) {
		t.Fatalf("controller ingested %d requests, trace has %d", got, tr.Len())
	}
}

// TestControllerRestartEquivalence is the service-level differential
// restart test: a controller persisting snapshots to disk, killed after
// a tick and reopened from the same command line (Open), must finish
// with a result DeepEqual to an uninterrupted controller's — including
// under a fault schedule with one solver fault consumed before the kill
// and one firing after the restore.
func TestControllerRestartEquivalence(t *testing.T) {
	faulted := &fault.Schedule{Injectors: []fault.Injector{
		fault.SolverFault{Slot: 2, Attempts: 3},
		fault.SolverFault{Slot: 8, Attempts: 1},
	}}
	cases := []struct {
		name  string
		cfg   online.Config
		sched *fault.Schedule
	}{
		{"RHC", online.RHC(4), nil},
		{"CHC", online.CHC(4, 2), nil},
		{"RHC-faulted", online.RHC(4), faulted},
		{"CHC-faulted", online.CHC(4, 2), faulted},
	}
	const killAt = 5
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ctx := context.Background()
			base := testInstance(t)
			tr := trace.Generate(base.Demand, 11)
			ocfg := tc.cfg
			ocfg.Faults = tc.sched

			uninterrupted, err := New(ctx, base, Config{Online: ocfg, EstimatorFloor: -1, Faults: tc.sched})
			if err != nil {
				t.Fatal(err)
			}
			driveToCompletion(t, uninterrupted, tr)
			want, err := uninterrupted.Result()
			if err != nil {
				t.Fatal(err)
			}

			cfg := Config{
				Online:         ocfg,
				EstimatorFloor: -1,
				SnapshotPath:   filepath.Join(t.TempDir(), "jocserve.snapshot.json"),
				Faults:         tc.sched,
			}
			killed, err := Open(ctx, base, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for killed.Stats().Slot < killAt {
				ingestSlot(t, killed, tr, killed.Stats().Slot)
				if _, err := killed.Tick(ctx); err != nil {
					t.Fatal(err)
				}
			}
			// The killed controller is dropped here; Open with the same
			// configuration must resume from the snapshot on disk.
			restored, err := Open(ctx, base, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got := restored.Stats().Slot; got != killAt {
				t.Fatalf("restored controller opens slot %d, want %d", got, killAt)
			}
			if got := restored.Stats().Ingested; got != killed.Stats().Ingested {
				t.Fatalf("restored ingestion counter %d, want %d", got, killed.Stats().Ingested)
			}
			driveToCompletion(t, restored, tr)
			got, err := restored.Result()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want.Trajectory, got.Trajectory) {
				t.Fatal("restored trajectory diverges from the uninterrupted run")
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("restored result diverges: %+v vs %+v", got, want)
			}
		})
	}
}

// TestOpenStartsFreshWithoutSnapshot checks Open's fresh-start path: no
// file at SnapshotPath means a new controller at slot 0.
func TestOpenStartsFreshWithoutSnapshot(t *testing.T) {
	base := testInstance(t)
	cfg := Config{
		Online:         online.RHC(4),
		EstimatorFloor: -1,
		SnapshotPath:   filepath.Join(t.TempDir(), "absent.json"),
	}
	c, err := Open(context.Background(), base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Slot; got != 0 {
		t.Fatalf("fresh Open starts at slot %d", got)
	}
}

// TestSnapshotFormatGuards checks the on-disk format gate: a foreign
// format version and a missing controller block are rejected; a missing
// file is the nil fresh-start signal.
func TestSnapshotFormatGuards(t *testing.T) {
	dir := t.TempDir()
	if env, err := LoadSnapshot(filepath.Join(dir, "missing.json")); env != nil || err != nil {
		t.Fatalf("missing file: got (%v, %v), want (nil, nil)", env, err)
	}
	path := filepath.Join(dir, "snap.json")
	if err := SaveSnapshot(path, &Envelope{FormatVersion: SnapshotFormatVersion + 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshot(path); err == nil {
		t.Fatal("LoadSnapshot accepted a foreign format version")
	}
	if err := SaveSnapshot(path, &Envelope{FormatVersion: SnapshotFormatVersion}); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshot(path); err == nil {
		t.Fatal("LoadSnapshot accepted an envelope without controller state")
	}
}

// TestIngestValidation checks the request-batch guards.
func TestIngestValidation(t *testing.T) {
	base := testInstance(t)
	c, err := New(context.Background(), base, Config{Online: online.RHC(4), EstimatorFloor: -1})
	if err != nil {
		t.Fatal(err)
	}
	bad := [][]Request{
		{{SBS: -1}},
		{{SBS: base.N}},
		{{SBS: 0, Class: base.Classes[0]}},
		{{SBS: 0, Content: base.K}},
		{{SBS: 0, Count: -2}},
	}
	for i, batch := range bad {
		if _, err := c.Ingest(batch); err == nil {
			t.Errorf("bad batch %d accepted", i)
		}
	}
	if _, err := c.Ingest([]Request{{SBS: 0, Class: 0, Content: 0, Count: 2.5}}); err != nil {
		t.Errorf("fractional count rejected: %v", err)
	}
}

// TestServerHTTP drives the full endpoint surface over a real listener:
// ingest, plan, explicit ticks to completion, stats, trajectory, health,
// and the conflict statuses after the horizon closes.
func TestServerHTTP(t *testing.T) {
	base := testInstance(t)
	tr := trace.Generate(base.Demand, 3)
	c, err := New(context.Background(), base, Config{Online: online.RHC(4), EstimatorFloor: -1})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{Controller: c})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("localhost:0"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Error(err)
		}
	}()
	url := func(path string) string { return fmt.Sprintf("http://%s%s", srv.Addr(), path) }

	getJSON := func(path string, out any) int {
		t.Helper()
		resp, err := http.Get(url(path))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if out != nil && resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				t.Fatalf("%s: %v", path, err)
			}
		} else {
			io.Copy(io.Discard, resp.Body)
		}
		return resp.StatusCode
	}
	postJSON := func(path string, body, out any) int {
		t.Helper()
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(url(path), "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if out != nil && resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				t.Fatalf("%s: %v", path, err)
			}
		} else {
			io.Copy(io.Discard, resp.Body)
		}
		return resp.StatusCode
	}

	var h Health
	if code := getJSON("/v1/healthz", &h); code != http.StatusOK || !h.OK || h.Slot != 0 {
		t.Fatalf("healthz: code %d, %+v", code, h)
	}

	for slot := 0; slot < base.T; slot++ {
		var plan Plan
		if code := getJSON("/v1/plan", &plan); code != http.StatusOK {
			t.Fatalf("plan: status %d", code)
		}
		if plan.Slot != slot || plan.X == nil {
			t.Fatalf("slot %d: plan %+v", slot, plan)
		}
		var batch []Request
		for n := 0; n < tr.N(); n++ {
			for _, r := range tr.Slot(slot, n) {
				batch = append(batch, Request{SBS: r.SBS, Class: r.Class, Content: r.Content})
			}
		}
		var ack IngestResponse
		if code := postJSON("/v1/requests", IngestRequest{Requests: batch}, &ack); code != http.StatusOK {
			t.Fatalf("slot %d: ingest status %d", slot, code)
		}
		if ack.Slot != slot || ack.Accepted != len(batch) {
			t.Fatalf("slot %d: ack %+v for %d requests", slot, ack, len(batch))
		}
		var tick TickResult
		if code := postJSON("/v1/tick", nil, &tick); code != http.StatusOK {
			t.Fatalf("slot %d: tick status %d", slot, code)
		}
		if tick.Slot != slot || tick.X == nil || tick.Y == nil {
			t.Fatalf("slot %d: tick %+v", slot, tick)
		}
	}

	var stats Stats
	if code := getJSON("/v1/stats", &stats); code != http.StatusOK || !stats.Done {
		t.Fatalf("stats after completion: code %d, %+v", code, stats)
	}
	if stats.Ingested != int64(tr.Len()) {
		t.Fatalf("stats report %d ingested, trace has %d", stats.Ingested, tr.Len())
	}
	var traj model.Trajectory
	if code := getJSON("/v1/trajectory", &traj); code != http.StatusOK || len(traj) != base.T {
		t.Fatalf("trajectory: code %d, %d slots", code, len(traj))
	}
	if code := postJSON("/v1/tick", nil, nil); code != http.StatusConflict {
		t.Fatalf("tick after completion: status %d, want %d", code, http.StatusConflict)
	}
	if code := postJSON("/v1/requests", IngestRequest{Requests: []Request{{}}}, nil); code != http.StatusConflict {
		t.Fatalf("ingest after completion: status %d, want %d", code, http.StatusConflict)
	}
	if code := getJSON("/v1/plan", nil); code != http.StatusOK {
		t.Fatalf("plan after completion: status %d", code)
	}
	// Method guards.
	if code := getJSON("/v1/tick", nil); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/tick: status %d", code)
	}
	if code := postJSON("/v1/plan", nil, nil); code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/plan: status %d", code)
	}
}

// TestServerTickerMockClock checks the wall-clock slot loop end to end
// on a mock clock: every Advance by one period closes exactly one slot,
// and the loop winds itself down at the horizon.
func TestServerTickerMockClock(t *testing.T) {
	base := testInstance(t)
	c, err := New(context.Background(), base, Config{Online: online.RHC(4), EstimatorFloor: -1})
	if err != nil {
		t.Fatal(err)
	}
	clock := NewMockClock(time.Unix(0, 0))
	const period = 100 * time.Millisecond
	srv, err := NewServer(ServerConfig{Controller: c, Clock: clock, SlotDuration: period})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("localhost:0"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Error(err)
		}
	}()

	waitSlot := func(want int) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			st := c.Stats()
			if st.Slot >= want || st.Done {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("slot stuck at %d waiting for %d", st.Slot, want)
			}
			time.Sleep(time.Millisecond)
		}
	}

	for slot := 0; slot < base.T; slot++ {
		clock.Advance(period)
		waitSlot(slot + 1)
	}
	if !c.Done() {
		t.Fatal("ticker did not complete the horizon")
	}
	// Further advances must be harmless after the loop wound down.
	clock.Advance(10 * period)
}
