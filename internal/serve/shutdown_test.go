package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"testing"
	"time"

	"edgecache/internal/online"
)

// feedClock is a Clock whose single ticker fires exactly the timestamps
// the test feeds — the deterministic way to exercise the due-accounting
// in the tick loop (MockClock.Advance always delivers periods one by
// one, so it can never produce a late, coalesced tick).
type feedClock struct{ ch chan time.Time }

func newFeedClock() *feedClock { return &feedClock{ch: make(chan time.Time)} }

func (c *feedClock) Now() time.Time                  { return time.Time{} }
func (c *feedClock) Ticker(time.Duration) Ticker     { return c }
func (c *feedClock) C() <-chan time.Time             { return c.ch }
func (c *feedClock) Stop()                           {}
func (c *feedClock) feed(t *testing.T, at time.Time) {
	t.Helper()
	select {
	case c.ch <- at:
	case <-time.After(5 * time.Second):
		t.Fatal("tick loop stopped consuming ticks")
	}
}

func waitSlot(t *testing.T, c *Controller, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for c.Stats().Slot < want {
		if time.Now().After(deadline) {
			t.Fatalf("slot stuck at %d waiting for %d", c.Stats().Slot, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCatchUpFastForward checks degraded-mode due accounting: a tick
// arriving 4 periods late closes CatchUpBound slots back to back and
// counts the remainder as missed.
func TestCatchUpFastForward(t *testing.T) {
	base := testInstance(t)
	c, err := New(context.Background(), base, Config{Online: online.RHC(4), EstimatorFloor: -1})
	if err != nil {
		t.Fatal(err)
	}
	clock := newFeedClock()
	const period = time.Second
	srv, err := NewServer(ServerConfig{
		Controller: c, Clock: clock, SlotDuration: period,
		CatchUp: CatchUpFastForward, CatchUpBound: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("localhost:0"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Error(err)
		}
	}()

	t0 := time.Unix(1000, 0)
	clock.feed(t, t0.Add(period)) // on time: anchors the loop, closes slot 0
	waitSlot(t, c, 1)

	missed0 := mTicksMissed.Value()
	// 4 periods late: 4 slots due, bound 2 → slots 1 and 2 close, 2 missed.
	clock.feed(t, t0.Add(5*period))
	waitSlot(t, c, 3)
	if got := mTicksMissed.Value() - missed0; got != 2 {
		t.Fatalf("fast-forward counted %d missed ticks, want 2", got)
	}
	// A stale duplicate of an already-handled period is ignored.
	clock.feed(t, t0.Add(5*period))
	clock.feed(t, t0.Add(6*period))
	waitSlot(t, c, 4)
	if got := c.Stats().Slot; got != 4 {
		t.Fatalf("slot %d after stale duplicate, want 4", got)
	}
}

// TestCatchUpSkip checks the default policy: one close per tick event no
// matter how late, the backlog logged as missed.
func TestCatchUpSkip(t *testing.T) {
	base := testInstance(t)
	c, err := New(context.Background(), base, Config{Online: online.RHC(4), EstimatorFloor: -1})
	if err != nil {
		t.Fatal(err)
	}
	clock := newFeedClock()
	const period = time.Second
	srv, err := NewServer(ServerConfig{Controller: c, Clock: clock, SlotDuration: period})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("localhost:0"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Error(err)
		}
	}()

	t0 := time.Unix(2000, 0)
	clock.feed(t, t0.Add(period))
	waitSlot(t, c, 1)
	missed0 := mTicksMissed.Value()
	clock.feed(t, t0.Add(4*period)) // 3 due: close 1, miss 2
	waitSlot(t, c, 2)
	if got := c.Stats().Slot; got != 2 {
		t.Fatalf("skip policy closed to slot %d, want 2", got)
	}
	if got := mTicksMissed.Value() - missed0; got != 2 {
		t.Fatalf("skip policy counted %d missed ticks, want 2", got)
	}
}

// TestShutdownDuringRecovery covers the in-flight-recovery case: the
// server comes up with Boot still running, reports not-ready, and a
// Shutdown issued mid-recovery cancels the boot context and returns
// cleanly. Shutdown and Close are idempotent.
func TestShutdownDuringRecovery(t *testing.T) {
	booting := make(chan struct{})
	srv, err := NewServer(ServerConfig{
		Boot: func(ctx context.Context) (*Controller, error) {
			close(booting)
			<-ctx.Done() // a recovery that never finishes on its own
			return nil, ctx.Err()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("localhost:0"); err != nil {
		t.Fatal(err)
	}
	<-booting

	url := fmt.Sprintf("http://%s", srv.Addr())
	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(url + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/v1/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz during recovery: %d, want 503", code)
	}
	if code := get("/v1/healthz"); code != http.StatusOK {
		t.Fatalf("healthz during recovery: %d, want 200 (liveness)", code)
	}
	if code := get("/v1/stats"); code != http.StatusServiceUnavailable {
		t.Fatalf("stats during recovery: %d, want 503", code)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown during recovery: %v", err)
	}
	if err := srv.BootErr(); !errors.Is(err, context.Canceled) {
		t.Fatalf("boot error %v, want context.Canceled", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

// TestBootServesAfterRecovery covers the happy Boot path: 503 while
// recovering, ready once the controller lands, and Shutdown closes the
// boot-owned controller.
func TestBootServesAfterRecovery(t *testing.T) {
	base := testInstance(t)
	release := make(chan struct{})
	var booted *Controller
	srv, err := NewServer(ServerConfig{
		Boot: func(ctx context.Context) (*Controller, error) {
			<-release
			c, err := New(ctx, base, Config{Online: online.RHC(4), EstimatorFloor: -1})
			booted = c
			return c, err
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("localhost:0"); err != nil {
		t.Fatal(err)
	}
	url := fmt.Sprintf("http://%s", srv.Addr())
	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(url + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/v1/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz before recovery finished: %d, want 503", code)
	}
	close(release)
	deadline := time.Now().Add(10 * time.Second)
	for get("/v1/readyz") != http.StatusOK {
		if time.Now().After(deadline) {
			t.Fatal("readyz never turned 200 after boot")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	// The server owned the boot-built controller and closed it.
	if _, err := booted.Ingest([]Request{{}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("boot-owned controller still open after shutdown: %v", err)
	}
	// Controller.Close is idempotent.
	if err := booted.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

// TestNoGoroutineLeak runs a full server lifecycle — boot, ticker on a
// mock clock, HTTP traffic, shutdown mid-horizon — and checks the
// goroutine count returns to baseline.
func TestNoGoroutineLeak(t *testing.T) {
	base := testInstance(t)
	baseline := runtime.NumGoroutine()

	clock := NewMockClock(time.Unix(0, 0))
	const period = 50 * time.Millisecond
	srv, err := NewServer(ServerConfig{
		Boot: func(ctx context.Context) (*Controller, error) {
			return New(ctx, base, Config{Online: online.RHC(4), EstimatorFloor: -1})
		},
		Clock: clock, SlotDuration: period,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("localhost:0"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for srv.Controller() == nil {
		if time.Now().After(deadline) {
			t.Fatal("boot never finished")
		}
		time.Sleep(time.Millisecond)
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/v1/stats", srv.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	clock.Advance(3 * period) // a few ticks, shutdown mid-horizon
	waitSlot(t, srv.Controller(), 1)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	http.DefaultClient.CloseIdleConnections()

	deadline = time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d baseline, %d after shutdown\n%s",
				baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
