package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"
)

// DefaultMaxBody caps POST /v1/requests bodies when
// ServerConfig.MaxBodyBytes is zero.
const DefaultMaxBody = 1 << 20

// ServerConfig assembles a Server.
type ServerConfig struct {
	// Controller is the controller to serve. Required unless Boot is set.
	Controller *Controller
	// Boot, when set, builds the controller asynchronously after Start —
	// the listener comes up immediately while recovery (snapshot
	// verification + WAL replay) runs in the background; /v1/readyz
	// reports 503 and the data endpoints reply 503 Retry-After until Boot
	// returns. The server owns a boot-built controller and closes it on
	// Shutdown. Mutually exclusive with Controller.
	Boot func(ctx context.Context) (*Controller, error)
	// Clock drives the slot ticker (nil selects the wall clock). Tests
	// and the smoke harness inject a MockClock.
	Clock Clock
	// SlotDuration is the wall-clock length of one slot. Zero disables
	// the ticker; slots then advance only through POST /v1/tick.
	SlotDuration time.Duration
	// CatchUp is the missed-tick policy (default CatchUpSkip).
	CatchUp CatchUpPolicy
	// CatchUpBound caps one fast-forward burst (0 = DefaultCatchUpBound).
	CatchUpBound int
	// MaxBodyBytes caps POST /v1/requests bodies (0 = DefaultMaxBody).
	MaxBodyBytes int64
}

// Server exposes a Controller over HTTP/JSON:
//
//	POST /v1/requests    ingest a batch of demand reports
//	GET  /v1/plan        the published decision for the open slot
//	POST /v1/tick        close the open slot explicitly
//	GET  /v1/stats       live controller counters
//	GET  /v1/trajectory  committed decisions so far
//	GET  /v1/healthz     liveness: slot, completion and degradation state
//	GET  /v1/readyz      readiness: 503 until recovery completes and
//	                     while the WAL is unhealthy
//
// Every handler runs behind panic-recovery middleware (a handler panic
// becomes a 500 plus the serve.handler_panics counter, not a process
// death). With a SlotDuration the server also runs a ticker goroutine
// closing slots per the catch-up policy until the horizon completes.
// Shutdown stops the ticker first, then drains in-flight requests
// gracefully.
type Server struct {
	clock    Clock
	slotDur  time.Duration
	catchUp  CatchUpPolicy
	catchN   int
	maxBody  int64
	boot     func(ctx context.Context) (*Controller, error)
	ownsCtrl bool

	mux *http.ServeMux
	srv *http.Server

	mu         sync.Mutex
	ctrl       *Controller
	bootErr    error
	addr       string
	serveDone  chan struct{}
	bootCancel context.CancelFunc
	bootDone   chan struct{}
	tickStop   context.CancelFunc
	tickDone   chan struct{}
	closeOne   sync.Once
	closeErr   error
}

// NewServer builds a server around cfg. Start brings it up.
func NewServer(cfg ServerConfig) (*Server, error) {
	if (cfg.Controller == nil) == (cfg.Boot == nil) {
		return nil, fmt.Errorf("serve: exactly one of ServerConfig.Controller and ServerConfig.Boot is required")
	}
	clock := cfg.Clock
	if clock == nil {
		clock = RealClock()
	}
	catchN := cfg.CatchUpBound
	if catchN <= 0 {
		catchN = DefaultCatchUpBound
	}
	maxBody := cfg.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = DefaultMaxBody
	}
	s := &Server{
		ctrl:     cfg.Controller,
		boot:     cfg.Boot,
		ownsCtrl: cfg.Boot != nil,
		clock:    clock,
		slotDur:  cfg.SlotDuration,
		catchUp:  cfg.CatchUp,
		catchN:   catchN,
		maxBody:  maxBody,
		mux:      http.NewServeMux(),
	}
	s.mux.HandleFunc("/v1/requests", s.handleRequests)
	s.mux.HandleFunc("/v1/plan", s.handlePlan)
	s.mux.HandleFunc("/v1/tick", s.handleTick)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/v1/trajectory", s.handleTrajectory)
	s.mux.HandleFunc("/v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("/v1/readyz", s.handleReadyz)
	s.srv = &http.Server{Handler: s.recoverPanics(s.mux)}
	return s, nil
}

// Handler returns the service handler (panic middleware included) —
// usable without Start (httptest, or embedding into a larger server).
func (s *Server) Handler() http.Handler { return s.srv.Handler }

// recoverPanics converts a handler panic into a 500 and a counter
// increment instead of tearing the whole process (and every other
// in-flight request) down with it.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				mPanics.Inc()
				httpError(w, http.StatusInternalServerError, "internal error: %v", p)
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// controller returns the live controller, or nil while Boot is still
// recovering (or failed).
func (s *Server) controller() *Controller {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ctrl
}

// Controller returns the served controller once available (nil while a
// Boot recovery is still in flight or after it failed).
func (s *Server) Controller() *Controller { return s.controller() }

// BootErr returns the terminal error of an asynchronous Boot, if any.
func (s *Server) BootErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bootErr
}

// Start listens on addr (e.g. "localhost:0"), serves in the background,
// launches the asynchronous Boot recovery when configured, and — when
// SlotDuration is set — starts the slot ticker.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("serve: listen: %w", err)
	}
	s.mu.Lock()
	s.addr = ln.Addr().String()
	s.serveDone = make(chan struct{})
	s.mu.Unlock()
	go func() {
		defer close(s.serveDone)
		_ = s.srv.Serve(ln)
	}()
	if s.boot != nil {
		bctx, bcancel := context.WithCancel(context.Background())
		bootDone := make(chan struct{})
		s.mu.Lock()
		s.bootCancel = bcancel
		s.bootDone = bootDone
		s.mu.Unlock()
		go func() {
			defer close(bootDone)
			ctrl, err := s.boot(bctx)
			s.mu.Lock()
			if err != nil {
				s.bootErr = err
			} else {
				s.ctrl = ctrl
			}
			s.mu.Unlock()
		}()
	}
	if s.slotDur > 0 {
		ctx, cancel := context.WithCancel(context.Background())
		// Register the ticker before returning so a test clock advanced
		// right after Start delivers its first tick.
		ticker := s.clock.Ticker(s.slotDur)
		s.mu.Lock()
		s.tickStop = cancel
		s.tickDone = make(chan struct{})
		s.mu.Unlock()
		go s.tickLoop(ctx, ticker)
	}
	return nil
}

// Addr returns the bound address after Start.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.addr
}

// tickLoop closes slots per the catch-up policy until the horizon
// completes, the context is cancelled, or a tick fails terminally. Due
// accounting runs off each tick's own timestamp against the first tick
// as anchor: a late-delivered or coalesced tick computes how many slot
// periods it owes; CatchUpSkip closes one and logs the rest missed,
// CatchUpFastForward closes up to the bound.
func (s *Server) tickLoop(ctx context.Context, ticker Ticker) {
	defer close(s.tickDone)
	defer ticker.Stop()
	period := s.slotDur
	var anchor time.Time
	anchored := false
	handled := 0
	for {
		var at time.Time
		select {
		case <-ctx.Done():
			return
		case at = <-ticker.C():
		}
		ctrl := s.controller()
		if ctrl == nil {
			// Boot recovery still in flight: the slot clock starts once the
			// controller lands, so recovery time never counts as missed.
			continue
		}
		if !anchored {
			anchor = at.Add(-period)
			anchored = true
		}
		// Half-period rounding absorbs delivery jitter of the real clock.
		due := int((at.Sub(anchor)+period/2)/period) - handled
		if due <= 0 {
			continue // stale duplicate of an already-handled period
		}
		n := 1
		if s.catchUp == CatchUpFastForward {
			n = due
			if n > s.catchN {
				n = s.catchN
			}
		}
		handled += due
		if missed := due - n; missed > 0 {
			mTicksMissed.Add(int64(missed))
		}
		for i := 0; i < n; i++ {
			if ctrl.Done() {
				return
			}
			if _, err := ctrl.Tick(ctx); err != nil {
				if ctx.Err() != nil {
					return
				}
				// A failed tick leaves the slot to the next period's retry
				// (transient snapshot I/O) rather than killing the service.
				break
			}
		}
		if ctrl.Done() {
			return
		}
	}
}

// Shutdown stops the boot recovery and the ticker, shuts the HTTP server
// down gracefully within ctx, and closes a boot-owned controller.
// Idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.closeOne.Do(func() {
		s.mu.Lock()
		bootCancel, bootDone := s.bootCancel, s.bootDone
		tickStop, tickDone, serveDone := s.tickStop, s.tickDone, s.serveDone
		s.mu.Unlock()
		if bootCancel != nil {
			bootCancel()
			<-bootDone
		}
		if tickStop != nil {
			tickStop()
			<-tickDone
		}
		if serveDone == nil {
			return // never started; nothing to drain
		}
		err := s.srv.Shutdown(ctx)
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			err = s.srv.Close()
		}
		<-serveDone
		if s.ownsCtrl {
			if ctrl := s.controller(); ctrl != nil {
				if cerr := ctrl.Close(); cerr != nil && err == nil {
					err = cerr
				}
			}
		}
		s.closeErr = err
	})
	return s.closeErr
}

// IngestRequest is the POST /v1/requests body.
type IngestRequest struct {
	Requests []Request `json:"requests"`
}

// IngestResponse acknowledges an ingested batch. In StateDir mode the
// acknowledgement implies durability: the batch is in the fsynced WAL
// (per the fsync policy) before this body is written.
type IngestResponse struct {
	// Slot is the open slot the batch was booked under.
	Slot int `json:"slot"`
	// Accepted is the number of reports booked.
	Accepted int `json:"accepted"`
}

// ErrorBody is the structured error payload of every non-2xx response.
type ErrorBody struct {
	Error string `json:"error"`
	// Index, Field and Reason locate a rejected report inside the batch
	// (400 responses to /v1/requests only).
	Index  int    `json:"index,omitempty"`
	Field  string `json:"field,omitempty"`
	Reason string `json:"reason,omitempty"`
}

// retryAfter writes a Retry-After of roughly one slot (at least 1s).
func (s *Server) retryAfter(w http.ResponseWriter) {
	secs := int(s.slotDur / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
}

// unavailable replies 503 while the controller is recovering or its WAL
// went unhealthy.
func (s *Server) unavailable(w http.ResponseWriter, format string, args ...any) {
	s.retryAfter(w)
	httpError(w, http.StatusServiceUnavailable, format, args...)
}

func (s *Server) handleRequests(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	ctrl := s.controller()
	if ctrl == nil {
		s.unavailable(w, "controller recovering")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	var body IngestRequest
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", tooBig.Limit)
			return
		}
		httpError(w, http.StatusBadRequest, "decode body: %v", err)
		return
	}
	slot, err := ctrl.Ingest(body.Requests)
	if err != nil {
		var rerr *RequestError
		switch {
		case errors.As(err, &rerr):
			writeJSONStatus(w, http.StatusBadRequest, ErrorBody{
				Error: rerr.Error(), Index: rerr.Index, Field: rerr.Field, Reason: rerr.Reason,
			})
		case errors.Is(err, ErrBackpressure):
			s.retryAfter(w)
			httpError(w, http.StatusTooManyRequests, "%v", err)
		case errors.Is(err, ErrClosed), ctrl.Healthy() != nil:
			s.unavailable(w, "%v", err)
		case ctrl.Done():
			httpError(w, http.StatusConflict, "%v", err)
		default:
			httpError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	writeJSON(w, IngestResponse{Slot: slot, Accepted: len(body.Requests)})
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	ctrl := s.controller()
	if ctrl == nil {
		s.unavailable(w, "controller recovering")
		return
	}
	writeJSON(w, ctrl.Plan())
}

func (s *Server) handleTick(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	ctrl := s.controller()
	if ctrl == nil {
		s.unavailable(w, "controller recovering")
		return
	}
	res, err := ctrl.Tick(r.Context())
	if err != nil {
		switch {
		case errors.Is(err, ErrClosed), ctrl.Healthy() != nil:
			s.unavailable(w, "%v", err)
		case ctrl.Done():
			httpError(w, http.StatusConflict, "%v", err)
		default:
			httpError(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	writeJSON(w, res)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	ctrl := s.controller()
	if ctrl == nil {
		s.unavailable(w, "controller recovering")
		return
	}
	writeJSON(w, ctrl.Stats())
}

func (s *Server) handleTrajectory(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	ctrl := s.controller()
	if ctrl == nil {
		s.unavailable(w, "controller recovering")
		return
	}
	writeJSON(w, ctrl.Trajectory())
}

// Health is the GET /v1/healthz body. The endpoint is liveness: it
// replies 200 whenever the process can serve HTTP; OK turns false while
// the service is degraded (recovering, or the WAL unhealthy).
type Health struct {
	OK   bool `json:"ok"`
	Slot int  `json:"slot"`
	Done bool `json:"done"`
	// Recovering is true while the asynchronous Boot has not delivered a
	// controller yet.
	Recovering bool `json:"recovering,omitempty"`
	// WALError surfaces the sticky durability failure poisoning the
	// controller, if any.
	WALError string `json:"walError,omitempty"`
}

func (s *Server) health() Health {
	ctrl := s.controller()
	if ctrl == nil {
		h := Health{Recovering: true}
		if err := s.BootErr(); err != nil {
			h.WALError = err.Error()
			h.Recovering = false
		}
		return h
	}
	h := Health{OK: true}
	st := ctrl.Stats()
	h.Slot, h.Done = st.Slot, st.Done
	if err := ctrl.Healthy(); err != nil {
		h.OK = false
		h.WALError = err.Error()
	}
	return h
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, s.health())
}

// handleReadyz gates readiness on recovery completion and WAL write
// health: 200 once the controller is live and durable, 503 otherwise —
// a load balancer keeps traffic away until replay has finished and
// stops sending it once the disk went bad.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	h := s.health()
	if !h.OK {
		s.retryAfter(w)
		writeJSONStatus(w, http.StatusServiceUnavailable, h)
		return
	}
	writeJSON(w, h)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeJSONStatus(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSONStatus(w, status, ErrorBody{Error: fmt.Sprintf(format, args...)})
}
