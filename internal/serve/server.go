package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"
)

// ServerConfig assembles a Server.
type ServerConfig struct {
	// Controller is the controller to serve. Required.
	Controller *Controller
	// Clock drives the slot ticker (nil selects the wall clock). Tests
	// and the smoke harness inject a MockClock.
	Clock Clock
	// SlotDuration is the wall-clock length of one slot. Zero disables
	// the ticker; slots then advance only through POST /v1/tick.
	SlotDuration time.Duration
}

// Server exposes a Controller over HTTP/JSON:
//
//	POST /v1/requests    ingest a batch of demand reports
//	GET  /v1/plan        the published decision for the open slot
//	POST /v1/tick        close the open slot explicitly
//	GET  /v1/stats       live controller counters
//	GET  /v1/trajectory  committed decisions so far
//	GET  /v1/healthz     liveness, slot and completion state
//
// With a SlotDuration the server also runs a ticker goroutine closing
// one slot per period until the horizon completes. Shutdown stops the
// ticker first, then drains in-flight requests gracefully.
type Server struct {
	ctrl    *Controller
	clock   Clock
	slotDur time.Duration

	mux *http.ServeMux
	srv *http.Server

	mu        sync.Mutex
	addr      string
	serveDone chan struct{}
	tickStop  context.CancelFunc
	tickDone  chan struct{}
	closeOne  sync.Once
	closeErr  error
}

// NewServer builds a server around cfg. Start brings it up.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Controller == nil {
		return nil, fmt.Errorf("serve: ServerConfig.Controller is required")
	}
	clock := cfg.Clock
	if clock == nil {
		clock = RealClock()
	}
	s := &Server{
		ctrl:    cfg.Controller,
		clock:   clock,
		slotDur: cfg.SlotDuration,
		mux:     http.NewServeMux(),
	}
	s.mux.HandleFunc("/v1/requests", s.handleRequests)
	s.mux.HandleFunc("/v1/plan", s.handlePlan)
	s.mux.HandleFunc("/v1/tick", s.handleTick)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/v1/trajectory", s.handleTrajectory)
	s.mux.HandleFunc("/v1/healthz", s.handleHealthz)
	s.srv = &http.Server{Handler: s.mux}
	return s, nil
}

// Handler returns the service mux — usable without Start (httptest, or
// embedding into a larger server).
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr (e.g. "localhost:0"), serves in the background
// and — when SlotDuration is set — starts the slot ticker.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("serve: listen: %w", err)
	}
	s.mu.Lock()
	s.addr = ln.Addr().String()
	s.serveDone = make(chan struct{})
	s.mu.Unlock()
	go func() {
		defer close(s.serveDone)
		_ = s.srv.Serve(ln)
	}()
	if s.slotDur > 0 {
		ctx, cancel := context.WithCancel(context.Background())
		// Register the ticker before returning so a test clock advanced
		// right after Start delivers its first tick.
		ticker := s.clock.Ticker(s.slotDur)
		s.mu.Lock()
		s.tickStop = cancel
		s.tickDone = make(chan struct{})
		s.mu.Unlock()
		go s.tickLoop(ctx, ticker)
	}
	return nil
}

// Addr returns the bound address after Start.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.addr
}

// tickLoop closes one slot per period until the horizon completes, the
// context is cancelled, or a tick fails terminally.
func (s *Server) tickLoop(ctx context.Context, ticker Ticker) {
	defer close(s.tickDone)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C():
		}
		if s.ctrl.Done() {
			return
		}
		if _, err := s.ctrl.Tick(ctx); err != nil {
			if ctx.Err() != nil {
				return
			}
			// A failed tick leaves the slot open; the next period retries
			// (transient snapshot I/O) rather than killing the service.
			continue
		}
		if s.ctrl.Done() {
			return
		}
	}
}

// Shutdown stops the ticker, then shuts the HTTP server down gracefully
// within ctx. Idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.closeOne.Do(func() {
		s.mu.Lock()
		tickStop, tickDone, serveDone := s.tickStop, s.tickDone, s.serveDone
		s.mu.Unlock()
		if tickStop != nil {
			tickStop()
			<-tickDone
		}
		if serveDone == nil {
			return // never started; nothing to drain
		}
		err := s.srv.Shutdown(ctx)
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			err = s.srv.Close()
		}
		<-serveDone
		s.closeErr = err
	})
	return s.closeErr
}

// IngestRequest is the POST /v1/requests body.
type IngestRequest struct {
	Requests []Request `json:"requests"`
}

// IngestResponse acknowledges an ingested batch.
type IngestResponse struct {
	// Slot is the open slot the batch was booked under.
	Slot int `json:"slot"`
	// Accepted is the number of reports booked.
	Accepted int `json:"accepted"`
}

func (s *Server) handleRequests(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var body IngestRequest
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		httpError(w, http.StatusBadRequest, "decode body: %v", err)
		return
	}
	slot, err := s.ctrl.Ingest(body.Requests)
	if err != nil {
		if s.ctrl.Done() {
			httpError(w, http.StatusConflict, "%v", err)
		} else {
			httpError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	writeJSON(w, IngestResponse{Slot: slot, Accepted: len(body.Requests)})
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, s.ctrl.Plan())
}

func (s *Server) handleTick(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	res, err := s.ctrl.Tick(r.Context())
	if err != nil {
		if s.ctrl.Done() {
			httpError(w, http.StatusConflict, "%v", err)
		} else {
			httpError(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	writeJSON(w, res)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, s.ctrl.Stats())
}

func (s *Server) handleTrajectory(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, s.ctrl.Trajectory())
}

// Health is the GET /v1/healthz body.
type Health struct {
	OK   bool `json:"ok"`
	Slot int  `json:"slot"`
	Done bool `json:"done"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	st := s.ctrl.Stats()
	writeJSON(w, Health{OK: true, Slot: st.Slot, Done: st.Done})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
