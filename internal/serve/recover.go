package serve

import (
	"fmt"
)

// recoveredState is the disk-side recovery plan for a state directory:
// which snapshot generation to restore (nil env = start fresh), which
// WAL records to replay past its watermark, and where appending resumes.
type recoveredState struct {
	env *Envelope // newest verifiable generation; nil → fresh start
	gen int       // its generation number; -1 when env is nil

	records []walRecord // replayable records, Seq > watermark, continuity-checked
	lastSeq uint64      // last sequence on disk (or the watermark if higher)

	appendSeg int   // segment to reopen for appending
	appendLen int64 // good-prefix length to truncate that segment to

	fallbacks int  // generations skipped as corrupt/unreadable
	genesis   bool // the directory held no state at all
}

// recoverState scans a state directory and plans recovery
// (DESIGN.md §14): newest verifiable generation first, then an
// idempotent, order-checked walk over every WAL segment.
//
// Damage tolerance is asymmetric by design. A torn tail on the final
// segment is the expected signature of a crash mid-append — it is
// counted, truncated away, and replay proceeds. A torn tail or a
// sequence gap anywhere else means records that were once durable are
// gone (the rotation protocol never leaves a non-final segment without
// its closing marker), so recovery refuses with "continuity broken"
// rather than silently dropping acknowledged reports. Duplicated or
// reordered sequence numbers are rejected the same way.
func recoverState(dir string) (*recoveredState, error) {
	gens, segs, err := listStateDir(dir)
	if err != nil {
		return nil, err
	}
	rs := &recoveredState{gen: -1, genesis: len(gens) == 0 && len(segs) == 0}
	if rs.genesis {
		return rs, nil
	}

	// Newest verifiable generation wins; every corrupt one is counted and
	// skipped. Falling past all generations is only safe when segment 0
	// still exists — replay can then rebuild from genesis.
	for i := len(gens) - 1; i >= 0; i-- {
		env, err := loadGeneration(dir, gens[i])
		if err != nil {
			mSnapCorrupt.Inc()
			rs.fallbacks++
			continue
		}
		rs.env, rs.gen = env, gens[i]
		break
	}
	if rs.fallbacks > 0 {
		mSnapFallbacks.Inc()
	}
	var watermark uint64
	if rs.env != nil {
		watermark = rs.env.WalSeq
	} else if len(segs) == 0 || segs[0] != 0 {
		return nil, fmt.Errorf("serve: no verifiable snapshot generation in %s and the wal does not reach genesis", dir)
	}

	// Walk every segment ascending: global sequence continuity across
	// rotations, replay past the watermark.
	var prev uint64
	first := true
	for i, s := range segs {
		recs, goodLen, torn, err := readWALSegment(segPath(dir, s))
		if err != nil {
			return nil, err
		}
		final := i == len(segs)-1
		if torn {
			if !final {
				return nil, fmt.Errorf("serve: wal segment %06d has a torn tail but is not the final segment: continuity broken", s)
			}
			mWALTornTail.Inc()
		}
		for _, r := range recs {
			switch {
			case first:
				prev, first = r.Seq, false
			case r.Seq != prev+1:
				return nil, fmt.Errorf("serve: wal segment %06d: sequence %d after %d (duplicate, gap or reordering): continuity broken", s, r.Seq, prev)
			default:
				prev = r.Seq
			}
			if r.Seq > watermark {
				rs.records = append(rs.records, r)
			}
		}
		if final {
			rs.appendSeg, rs.appendLen = s, goodLen
		}
	}
	if len(segs) == 0 {
		// A generation exists but its post-save segment was never created
		// (crash between publish and rotation): appending starts a fresh
		// segment named after the generation.
		rs.appendSeg, rs.appendLen = rs.gen, 0
	}
	if len(rs.records) > 0 && rs.records[0].Seq != watermark+1 {
		return nil, fmt.Errorf("serve: wal starts at sequence %d but the snapshot watermark is %d: records past the snapshot were pruned", rs.records[0].Seq, watermark)
	}
	rs.lastSeq = watermark
	if !first && prev > rs.lastSeq {
		rs.lastSeq = prev
	}
	return rs, nil
}
