package serve

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"reflect"
	"testing"

	"edgecache/internal/fault"
	"edgecache/internal/online"
	"edgecache/internal/trace"
)

// traceBatches groups a trace into the per-slot, per-SBS ingest batches
// the tests drive with; empty batches are dropped.
func traceBatches(tr *trace.Trace, T int) [][][]Request {
	out := make([][][]Request, T)
	for slot := 0; slot < T; slot++ {
		for n := 0; n < tr.N(); n++ {
			reqs := tr.Slot(slot, n)
			if len(reqs) == 0 {
				continue
			}
			batch := make([]Request, len(reqs))
			for i, r := range reqs {
				batch[i] = Request{SBS: r.SBS, Class: r.Class, Content: r.Content}
			}
			out[slot] = append(out[slot], batch)
		}
	}
	return out
}

// goldenResult runs the same controller uninterrupted and without
// persistence — the reference trajectory every durability test compares
// against.
func goldenResult(t *testing.T, cfg Config, tr *trace.Trace) *online.Result {
	t.Helper()
	base := testInstance(t)
	golden, err := New(context.Background(), base, Config{Online: cfg.Online, EstimatorFloor: cfg.EstimatorFloor})
	if err != nil {
		t.Fatal(err)
	}
	driveToCompletion(t, golden, tr)
	res, err := golden.Result()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestDurableKillLoop is the in-process half of the chaos acceptance
// criterion: a controller killed at seeded-random points — between
// operations, mid-WAL-append (torn frame), mid-snapshot-publish (torn
// file) and via silent bit flips — for at least 20 cycles must commit a
// trajectory DeepEqual to the uninterrupted run, with every acknowledged
// report surviving every kill and no duplicate ever ingested.
func TestDurableKillLoop(t *testing.T) {
	ctx := context.Background()
	base := testInstance(t)
	tr := trace.Generate(base.Demand, 13)
	cfg := Config{Online: online.CHC(4, 2), EstimatorFloor: -1}
	want := goldenResult(t, cfg, tr)
	batches := traceBatches(tr, base.T)

	dir := t.TempDir()
	rng := rand.New(rand.NewSource(41))
	kills := 0
	acked := int64(0)
	slot, batchIdx := 0, 0
	var res *online.Result

	for cycle := 0; ; cycle++ {
		if cycle > 500 {
			t.Fatalf("kill loop did not converge after %d cycles (%d kills, slot %d)", cycle, kills, slot)
		}
		// Arm this incarnation's disk faults from the seeded stream: most
		// cycles crash mid-write somewhere in the first few durability ops.
		df := &fault.DiskFaults{Seed: uint64(cycle)*2654435761 + 1}
		switch rng.Intn(4) {
		case 1:
			df.TearWALAppend = int64(rng.Intn(3) + 1)
		case 2:
			df.TearSnapshot = int64(rng.Intn(2) + 1)
		case 3:
			df.FlipSnapshot = int64(rng.Intn(2) + 1)
		}
		dcfg := Config{
			Online:         cfg.Online,
			EstimatorFloor: cfg.EstimatorFloor,
			StateDir:       dir,
			SnapKeep:       2,
			DiskFaults:     df,
		}
		c, err := Open(ctx, base, dcfg)
		if err != nil {
			if errors.Is(err, fault.ErrCrash) {
				kills++ // crashed during recovery's own repair save
				continue
			}
			t.Fatalf("cycle %d: open: %v", cycle, err)
		}

		// Recovery contract: exactly the acknowledged state, nothing more,
		// nothing less. A durable-but-unacknowledged close is the one
		// at-least-once case — the driver resyncs its cursor like a real
		// idempotent client.
		st := c.Stats()
		if st.Ingested != acked {
			t.Fatalf("cycle %d: recovered %d ingested reports, %d were acknowledged", cycle, st.Ingested, acked)
		}
		if st.Slot > slot {
			if st.Slot != slot+1 || batchIdx != len(batches[slot]) {
				t.Fatalf("cycle %d: recovered slot %d, driver at slot %d batch %d", cycle, st.Slot, slot, batchIdx)
			}
			slot, batchIdx = st.Slot, 0
		} else if st.Slot != slot {
			t.Fatalf("cycle %d: recovered slot %d, driver at slot %d", cycle, st.Slot, slot)
		}

		// One operation per incarnation: every cycle boundary is a kill
		// point, so the loop restarts after every single Ingest and Tick.
		const opLimit = 1
		crashed := false
		for op := 0; op < opLimit && !c.Done(); op++ {
			if batchIdx < len(batches[slot]) {
				b := batches[slot][batchIdx]
				if _, err := c.Ingest(b); err != nil {
					if errors.Is(err, fault.ErrCrash) {
						crashed = true
						break
					}
					t.Fatalf("cycle %d: ingest slot %d batch %d: %v", cycle, slot, batchIdx, err)
				}
				acked += int64(len(b))
				batchIdx++
			} else {
				if _, err := c.Tick(ctx); err != nil {
					if errors.Is(err, fault.ErrCrash) {
						crashed = true
						break
					}
					t.Fatalf("cycle %d: tick slot %d: %v", cycle, slot, err)
				}
				slot, batchIdx = slot+1, 0
			}
		}
		if c.Done() && !crashed {
			res, err = c.Result()
			if err != nil {
				t.Fatal(err)
			}
			c.Close()
			break
		}
		c.Close() // abandon the incarnation: everything in memory dies here
		kills++
	}

	if kills < 20 {
		t.Fatalf("only %d kills exercised; the loop must survive at least 20", kills)
	}
	if acked != int64(tr.Len()) {
		t.Fatalf("acknowledged %d reports, trace has %d", acked, tr.Len())
	}
	if !reflect.DeepEqual(want.Trajectory, res.Trajectory) {
		t.Fatal("kill-loop trajectory diverges from the uninterrupted run")
	}
	if !reflect.DeepEqual(want, res) {
		t.Fatalf("kill-loop result diverges: %+v vs %+v", res, want)
	}
	t.Logf("kill loop: %d kills, %d reports, trajectory identical", kills, acked)
}

// driveDurableSlots opens a durable controller and closes slots [from,
// to), feeding the trace; it returns the controller still open.
func driveDurableSlots(t *testing.T, cfg Config, tr *trace.Trace, to int) *Controller {
	t.Helper()
	ctx := context.Background()
	base := testInstance(t)
	c, err := Open(ctx, base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for c.Stats().Slot < to && !c.Done() {
		slot := c.Stats().Slot
		ingestSlot(t, c, tr, slot)
		if _, err := c.Tick(ctx); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// TestCorruptLatestGenerationFallback pins the fallback path: when the
// newest snapshot generation is bit-flipped on disk, Open falls back to
// the previous generation, replays the WAL across the gap, repairs the
// damaged generation, and the run still finishes identical to an
// uninterrupted one.
func TestCorruptLatestGenerationFallback(t *testing.T) {
	ctx := context.Background()
	base := testInstance(t)
	tr := trace.Generate(base.Demand, 17)
	dir := t.TempDir()
	cfg := Config{Online: online.RHC(4), EstimatorFloor: -1, StateDir: dir, SnapKeep: 3}
	want := goldenResult(t, cfg, tr)

	c := driveDurableSlots(t, cfg, tr, 5)
	ingested := c.Stats().Ingested
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	gens, _, err := listStateDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) == 0 || gens[len(gens)-1] != 5 {
		t.Fatalf("generations on disk: %v, want newest 5", gens)
	}
	// Flip one bit in the middle of the newest generation.
	path := genPath(dir, 5)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x04
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	corrupt0, fallback0 := mSnapCorrupt.Value(), mSnapFallbacks.Value()
	restored, err := Open(ctx, base, cfg)
	if err != nil {
		t.Fatalf("open with corrupt newest generation: %v", err)
	}
	defer restored.Close()
	if got := restored.Stats().Slot; got != 5 {
		t.Fatalf("restored slot %d, want 5", got)
	}
	if got := restored.Stats().Ingested; got != ingested {
		t.Fatalf("restored %d ingested, want %d", got, ingested)
	}
	if mSnapCorrupt.Value() == corrupt0 || mSnapFallbacks.Value() == fallback0 {
		t.Error("corruption fallback did not bump serve.snapshot_{corrupt,fallbacks}")
	}
	// The damaged generation was repaired in place: it must verify now.
	if _, err := loadGeneration(dir, 5); err != nil {
		t.Fatalf("generation 5 not repaired: %v", err)
	}

	driveToCompletion(t, restored, tr)
	got, err := restored.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("result after corruption fallback diverges from the uninterrupted run")
	}
}

// TestTruncatedLatestGenerationFallback is the torn-rename flavour: the
// newest generation is a byte prefix of itself.
func TestTruncatedLatestGenerationFallback(t *testing.T) {
	ctx := context.Background()
	base := testInstance(t)
	tr := trace.Generate(base.Demand, 19)
	dir := t.TempDir()
	cfg := Config{Online: online.RHC(4), EstimatorFloor: -1, StateDir: dir, SnapKeep: 2}

	c := driveDurableSlots(t, cfg, tr, 3)
	ingested := c.Stats().Ingested
	c.Close()

	path := genPath(dir, 3)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	restored, err := Open(ctx, base, cfg)
	if err != nil {
		t.Fatalf("open with truncated newest generation: %v", err)
	}
	defer restored.Close()
	if st := restored.Stats(); st.Slot != 3 || st.Ingested != ingested {
		t.Fatalf("restored slot %d ingested %d, want 3 and %d", st.Slot, st.Ingested, ingested)
	}
}

// TestWALGarbageTailTolerated appends garbage to the live segment (the
// crash-mid-append signature) and checks that recovery truncates it,
// keeps every good record, and later appends stay reachable across one
// more restart.
func TestWALGarbageTailTolerated(t *testing.T) {
	ctx := context.Background()
	base := testInstance(t)
	tr := trace.Generate(base.Demand, 23)
	dir := t.TempDir()
	cfg := Config{Online: online.RHC(4), EstimatorFloor: -1, StateDir: dir}

	c, err := Open(ctx, base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	booked := ingestSlot(t, c, tr, 0)
	c.Close()

	// Garbage tail on the live segment: a half-written frame.
	frame, err := encodeWALFrame(walRecord{Seq: 999, Kind: walKindClose, Slot: 0})
	if err != nil {
		t.Fatal(err)
	}
	seg := segPath(dir, 0)
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(frame[:len(frame)-5])
	f.Close()

	torn0 := mWALTornTail.Value()
	c, err = Open(ctx, base, cfg)
	if err != nil {
		t.Fatalf("open with garbage wal tail: %v", err)
	}
	if got := c.Stats().Ingested; got != int64(booked) {
		t.Fatalf("recovered %d reports, booked %d", got, booked)
	}
	if mWALTornTail.Value() == torn0 {
		t.Error("torn tail not counted in serve.wal_torn_tail")
	}
	// Appending after the truncated tail must stay reachable.
	if _, err := c.Ingest([]Request{{SBS: 0, Class: 0, Content: 0, Count: 3}}); err != nil {
		t.Fatal(err)
	}
	c.Close()
	c, err = Open(ctx, base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := c.Stats().Ingested; got != int64(booked)+1 {
		t.Fatalf("after tail truncation and append: %d reports, want %d", got, booked+1)
	}
}

// TestWALContinuityGuards pins the refusal cases: damage that would
// silently drop acknowledged records is a hard startup error, not a
// fallback.
func TestWALContinuityGuards(t *testing.T) {
	ctx := context.Background()
	base := testInstance(t)
	tr := trace.Generate(base.Demand, 29)
	dir := t.TempDir()
	cfg := Config{Online: online.RHC(4), EstimatorFloor: -1, StateDir: dir}

	c := driveDurableSlots(t, cfg, tr, 2)
	ingestSlot(t, c, tr, 2)
	c.Close()

	// A torn tail on a NON-final segment breaks continuity.
	segs := func() []int {
		_, segs, err := listStateDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		return segs
	}()
	if len(segs) < 2 {
		t.Fatalf("segments on disk: %v, want at least 2", segs)
	}
	victim := segPath(dir, segs[0])
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(victim, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(ctx, base, cfg); err == nil {
		t.Fatal("open accepted a torn non-final segment")
	}
	if err := os.WriteFile(victim, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// A record deleted from the middle (sequence gap) is rejected too:
	// rewrite the final segment without its first record.
	final := segPath(dir, segs[len(segs)-1])
	data, err = os.ReadFile(final)
	if err != nil {
		t.Fatal(err)
	}
	recs, _ := decodeWALBuffer(data)
	if len(recs) < 2 {
		t.Skipf("final segment has %d records; need 2 for a gap", len(recs))
	}
	var rebuilt []byte
	for _, r := range recs[1:] {
		frame, err := encodeWALFrame(r)
		if err != nil {
			t.Fatal(err)
		}
		rebuilt = append(rebuilt, frame...)
	}
	if err := os.WriteFile(final, rebuilt, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(ctx, base, cfg); err == nil {
		t.Fatal("open accepted a wal with a sequence gap")
	}
}

// TestGenerationPruning checks keep-N retention and that pruning never
// deletes a WAL segment a surviving generation still needs.
func TestGenerationPruning(t *testing.T) {
	base := testInstance(t)
	tr := trace.Generate(base.Demand, 31)
	dir := t.TempDir()
	cfg := Config{Online: online.RHC(4), EstimatorFloor: -1, StateDir: dir, SnapKeep: 2}

	c := driveDurableSlots(t, cfg, tr, 6)
	defer c.Close()
	gens, segs, err := listStateDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gens, []int{5, 6}) {
		t.Fatalf("generations %v, want [5 6]", gens)
	}
	// Oldest kept generation is 5: segment 5 (its replay source) and the
	// live segment 6 must survive; everything older must be gone.
	if !reflect.DeepEqual(segs, []int{5, 6}) {
		t.Fatalf("segments %v, want [5 6]", segs)
	}
}

// TestFaultedScheduleDurableRestart combines the PR 5 fault schedules
// with the durability layer: solver faults before and after a mid-write
// kill, recovery through the WAL, DeepEqual result.
func TestFaultedScheduleDurableRestart(t *testing.T) {
	sched := &fault.Schedule{Injectors: []fault.Injector{
		fault.SolverFault{Slot: 2, Attempts: 3},
		fault.SolverFault{Slot: 8, Attempts: 1},
	}}
	ctx := context.Background()
	base := testInstance(t)
	tr := trace.Generate(base.Demand, 37)
	ocfg := online.CHC(4, 2)
	ocfg.Faults = sched

	golden, err := New(ctx, base, Config{Online: ocfg, EstimatorFloor: -1, Faults: sched})
	if err != nil {
		t.Fatal(err)
	}
	driveToCompletion(t, golden, tr)
	want, err := golden.Result()
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	cfg := Config{
		Online: ocfg, EstimatorFloor: -1, Faults: sched,
		StateDir: dir, SnapKeep: 2,
		DiskFaults: &fault.DiskFaults{Seed: 99, TearWALAppend: 13},
	}
	c, err := Open(ctx, base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	acked := int64(0)
	batches := traceBatches(tr, base.T)
	slot, batchIdx := 0, 0
	crashed := false
	for !c.Done() && !crashed {
		if batchIdx < len(batches[slot]) {
			if _, err := c.Ingest(batches[slot][batchIdx]); err != nil {
				if errors.Is(err, fault.ErrCrash) {
					crashed = true
					break
				}
				t.Fatal(err)
			}
			acked += int64(len(batches[slot][batchIdx]))
			batchIdx++
		} else {
			if _, err := c.Tick(ctx); err != nil {
				if errors.Is(err, fault.ErrCrash) {
					crashed = true // torn close marker: the slot never closed
					break
				}
				t.Fatal(err)
			}
			slot, batchIdx = slot+1, 0
		}
	}
	if !crashed {
		t.Fatal("armed tear never fired; raise TearWALAppend coverage")
	}
	c.Close()

	cfg.DiskFaults = nil
	c, err = Open(ctx, base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := c.Stats().Ingested; got != acked {
		t.Fatalf("recovered %d reports, %d acknowledged", got, acked)
	}
	// Resume: the torn batch was never acknowledged — send it again.
	if got := c.Stats().Slot; got != slot {
		t.Fatalf("recovered slot %d, driver at %d", got, slot)
	}
	for !c.Done() {
		if batchIdx < len(batches[slot]) {
			if _, err := c.Ingest(batches[slot][batchIdx]); err != nil {
				t.Fatal(err)
			}
			batchIdx++
		} else {
			if _, err := c.Tick(ctx); err != nil {
				t.Fatal(err)
			}
			slot, batchIdx = slot+1, 0
		}
	}
	got, err := c.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("faulted durable restart diverges from the uninterrupted faulted run")
	}
}
