package lp

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"
)

// FuzzSolve drives the simplex with random boxed LPs and checks the
// trichotomy: either a feasible optimal point consistent with its
// objective value, or a correct infeasibility/unboundedness verdict. Run
// with `go test -fuzz FuzzSolve ./internal/lp`.
func FuzzSolve(f *testing.F) {
	f.Add(uint64(1), uint64(1))
	f.Add(uint64(17), uint64(3))
	f.Fuzz(func(t *testing.T, s1, s2 uint64) {
		rng := rand.New(rand.NewPCG(s1, s2))
		n := 1 + rng.IntN(5)
		m := 1 + rng.IntN(5)
		p := NewProblem(n)
		for j := range p.C {
			p.C[j] = rng.NormFloat64()
		}
		for i := 0; i < m; i++ {
			row := make([]float64, n)
			for j := range row {
				row[j] = rng.NormFloat64()
			}
			kind := []ConstraintKind{LE, EQ, GE}[rng.IntN(3)]
			p.AddConstraint(row, kind, rng.NormFloat64()*3)
		}
		// A box row guarantees that any feasible problem is bounded.
		box := make([]float64, n)
		for j := range box {
			box[j] = 1
		}
		p.AddConstraint(box, LE, 20)

		sol, err := p.Solve(Options{})
		switch {
		case err == nil:
			var obj float64
			for j := 0; j < n; j++ {
				if sol.X[j] < -1e-7 || math.IsNaN(sol.X[j]) {
					t.Fatalf("invalid coordinate %g", sol.X[j])
				}
				obj += p.C[j] * sol.X[j]
			}
			if math.Abs(obj-sol.Objective) > 1e-6*(1+math.Abs(obj)) {
				t.Fatalf("objective mismatch: %g vs %g", obj, sol.Objective)
			}
			for i, c := range p.Cons {
				var dot float64
				for j := 0; j < n; j++ {
					dot += c.Coeffs[j] * sol.X[j]
				}
				tol := 1e-6 * (1 + math.Abs(c.RHS))
				switch c.Kind {
				case LE:
					if dot > c.RHS+tol {
						t.Fatalf("row %d violated: %g ≰ %g", i, dot, c.RHS)
					}
				case GE:
					if dot < c.RHS-tol {
						t.Fatalf("row %d violated: %g ≱ %g", i, dot, c.RHS)
					}
				case EQ:
					if math.Abs(dot-c.RHS) > tol {
						t.Fatalf("row %d violated: %g ≠ %g", i, dot, c.RHS)
					}
				}
			}
		case errors.Is(err, ErrInfeasible), errors.Is(err, ErrUnbounded), errors.Is(err, ErrIterationLimit):
			// Legal verdicts. (Unbounded is impossible with the box row on
			// feasible problems, but phase one may report it on some
			// degenerate constructions before the box binds — the contract
			// we fuzz is "no panic, no wrong optimum".)
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	})
}
