// Package lp implements a dense two-phase primal simplex solver for linear
// programs in the form
//
//	minimize    c·x
//	subject to  a_i·x (≤ | = | ≥) b_i   for every constraint i
//	            x ≥ 0.
//
// The paper solves the caching subproblem P1 with "standard linear
// programming methods, simplex method is applied" (§III-B); this package is
// that solver. It is exact up to floating-point tolerance and is
// cross-validated in tests against brute-force vertex enumeration and, in
// package caching, against the min-cost-flow formulation of P1.
//
// The implementation is a classic full-tableau simplex: Dantzig pricing
// with an automatic switch to Bland's anti-cycling rule after a pivot
// budget, and artificial variables in phase one. It is intended for the
// moderate problem sizes that arise in this repository (up to a few
// thousand variables), not as a general-purpose sparse LP code.
package lp

import (
	"errors"
	"fmt"
	"math"

	"edgecache/internal/mat"
)

// ConstraintKind is the relation of one linear constraint.
type ConstraintKind int

// Constraint relations.
const (
	LE ConstraintKind = iota + 1 // a·x ≤ b
	EQ                           // a·x = b
	GE                           // a·x ≥ b
)

// String returns the relation symbol.
func (k ConstraintKind) String() string {
	switch k {
	case LE:
		return "≤"
	case EQ:
		return "="
	case GE:
		return "≥"
	default:
		return fmt.Sprintf("ConstraintKind(%d)", int(k))
	}
}

// Constraint is one row a·x (≤|=|≥) b. Coeffs must have the problem's
// variable count; missing trailing zeros are not inferred.
type Constraint struct {
	Coeffs []float64
	Kind   ConstraintKind
	RHS    float64
}

// Problem is a linear program over len(C) non-negative variables.
type Problem struct {
	// C is the objective gradient: minimize C·x.
	C []float64
	// Cons are the constraints.
	Cons []Constraint
}

// NewProblem returns an empty problem with n variables.
func NewProblem(n int) *Problem {
	return &Problem{C: make([]float64, n)}
}

// AddConstraint appends a constraint row, copying coeffs.
func (p *Problem) AddConstraint(coeffs []float64, kind ConstraintKind, rhs float64) {
	p.Cons = append(p.Cons, Constraint{
		Coeffs: append([]float64(nil), coeffs...),
		Kind:   kind,
		RHS:    rhs,
	})
}

// Solution is an optimal basic feasible solution.
type Solution struct {
	// X is the optimal point over the problem's original variables.
	X []float64
	// Objective is C·X.
	Objective float64
	// Duals are the constraint shadow prices ∂Objective/∂RHS_i, one per
	// constraint in input order. For a minimisation, relaxing a ≤ row
	// (raising its RHS) cannot increase the optimum, so its dual is ≤ 0;
	// a ≥ row's dual is ≥ 0; equality rows are unrestricted.
	Duals []float64
	// Iterations counts simplex pivots across both phases.
	Iterations int
}

// Solver failure modes.
var (
	// ErrInfeasible reports an empty feasible region.
	ErrInfeasible = errors.New("lp: infeasible")
	// ErrUnbounded reports an objective unbounded below.
	ErrUnbounded = errors.New("lp: unbounded")
	// ErrIterationLimit reports pivot-budget exhaustion.
	ErrIterationLimit = errors.New("lp: iteration limit exceeded")
)

// Options tune the solver. The zero value selects defaults.
type Options struct {
	// Tol is the pivoting / feasibility tolerance. Default 1e-9.
	Tol float64
	// MaxIter is the total pivot budget. Default 50·(m+n)+1000.
	MaxIter int
}

func (o Options) withDefaults(m, n int) Options {
	if o.Tol <= 0 {
		o.Tol = 1e-9
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 50*(m+n) + 1000
	}
	return o
}

// Solve runs the two-phase simplex method and returns an optimal solution,
// or one of ErrInfeasible, ErrUnbounded and ErrIterationLimit.
func (p *Problem) Solve(opts Options) (*Solution, error) {
	n := len(p.C)
	m := len(p.Cons)
	for i, c := range p.Cons {
		if len(c.Coeffs) != n {
			return nil, fmt.Errorf("lp: constraint %d has %d coefficients, want %d", i, len(c.Coeffs), n)
		}
		switch c.Kind {
		case LE, EQ, GE:
		default:
			return nil, fmt.Errorf("lp: constraint %d has invalid kind %d", i, int(c.Kind))
		}
	}
	opts = opts.withDefaults(m, n)
	if m == 0 {
		// Only x ≥ 0 constrains the problem: bounded iff C ≥ 0.
		for j, cj := range p.C {
			if cj < -opts.Tol {
				return nil, fmt.Errorf("%w: variable %d has negative cost and no constraints", ErrUnbounded, j)
			}
		}
		return &Solution{X: make([]float64, n)}, nil
	}

	t := newTableau(p, opts)
	sol, err := t.solve()
	if err != nil {
		return nil, err
	}
	return sol, nil
}

// tableau is the working state of one solve.
type tableau struct {
	opts  Options
	n     int // original variables
	cols  int // original + slack/surplus + artificial
	art0  int // first artificial column index
	a     *mat.Dense
	b     []float64
	basis []int
	c     []float64 // original objective, padded to cols
	iters int
	// Per-row bookkeeping for dual extraction: the column holding this
	// row's unit vector in the normalised system (artificial if present,
	// else slack), its coefficient there (±1), and the sign the row was
	// multiplied by during RHS normalisation.
	unitCol  []int
	unitCoef []float64
	rowSign  []float64
}

// newTableau builds the phase-one tableau: every row is normalised to a
// non-negative RHS, LE rows get slacks (which seed the basis when possible),
// GE rows get surplus variables, and rows without a unit column get
// artificials.
func newTableau(p *Problem, opts Options) *tableau {
	n := len(p.C)
	m := len(p.Cons)

	// Count slack/surplus columns and which rows need artificials.
	slackOf := make([]int, m) // column index of this row's slack, -1 if none
	cols := n
	for i, c := range p.Cons {
		if c.Kind == LE || c.Kind == GE {
			slackOf[i] = cols
			cols++
		} else {
			slackOf[i] = -1
		}
	}
	art0 := cols
	needArt := make([]bool, m)
	for i, c := range p.Cons {
		// After RHS normalisation, the slack column has coefficient +1 and
		// can seed the basis exactly when (LE, b ≥ 0) or (GE, b < 0).
		bNeg := c.RHS < 0
		switch {
		case c.Kind == LE && !bNeg, c.Kind == GE && bNeg:
			needArt[i] = false
		default:
			needArt[i] = true
			cols++
		}
	}

	t := &tableau{
		opts:     opts,
		n:        n,
		cols:     cols,
		art0:     art0,
		a:        mat.NewDense(m, cols),
		b:        make([]float64, m),
		basis:    make([]int, m),
		c:        make([]float64, cols),
		unitCol:  make([]int, m),
		unitCoef: make([]float64, m),
		rowSign:  make([]float64, m),
	}
	copy(t.c, p.C)

	art := art0
	for i, c := range p.Cons {
		sign := 1.0
		if c.RHS < 0 {
			sign = -1
		}
		t.rowSign[i] = sign
		row := t.a.Row(i)
		for j, v := range c.Coeffs {
			row[j] = sign * v
		}
		t.b[i] = sign * c.RHS
		if s := slackOf[i]; s >= 0 {
			if c.Kind == LE {
				row[s] = sign
			} else {
				row[s] = -sign
			}
			t.unitCol[i] = s
			t.unitCoef[i] = row[s]
		}
		if needArt[i] {
			row[art] = 1
			t.basis[i] = art
			// Artificials override slacks for dual extraction: their
			// coefficient is exactly +1 in the normalised system.
			t.unitCol[i] = art
			t.unitCoef[i] = 1
			art++
		} else {
			t.basis[i] = slackOf[i]
		}
	}
	return t
}

// solve runs both phases and extracts the solution.
func (t *tableau) solve() (*Solution, error) {
	// Phase one: minimise the sum of artificials.
	if t.art0 < t.cols {
		phase1 := make([]float64, t.cols)
		for j := t.art0; j < t.cols; j++ {
			phase1[j] = 1
		}
		obj, _, err := t.optimize(phase1, t.cols)
		if err != nil {
			if errors.Is(err, ErrUnbounded) {
				// Phase one is bounded below by 0; unboundedness here is a bug.
				return nil, fmt.Errorf("lp: internal error: phase one reported unbounded")
			}
			return nil, err
		}
		if obj > 1e-7 {
			return nil, fmt.Errorf("%w: phase-one optimum %g > 0", ErrInfeasible, obj)
		}
		if err := t.evictArtificials(); err != nil {
			return nil, err
		}
	}

	// Phase two: minimise the original objective over non-artificial columns.
	obj, reduced, err := t.optimize(t.c, t.art0)
	if err != nil {
		return nil, err
	}

	x := make([]float64, t.n)
	for i, bj := range t.basis {
		if bj < t.n {
			x[bj] = t.b[i]
		}
	}
	// Dual extraction: for a zero-cost column holding ±e_i in the
	// normalised system, r_j = ∓y_i, so y_i = −r_j/coef; undo the RHS sign
	// normalisation to express the dual against the original row.
	duals := make([]float64, t.a.Rows)
	for i := range duals {
		duals[i] = t.rowSign[i] * -reduced[t.unitCol[i]] / t.unitCoef[i]
	}
	return &Solution{X: x, Objective: obj, Duals: duals, Iterations: t.iters}, nil
}

// optimize runs simplex pivots for the given cost vector, allowing entering
// columns j < allowedCols only. It returns the optimal objective value and
// the final reduced-cost row.
func (t *tableau) optimize(cost []float64, allowedCols int) (float64, []float64, error) {
	m := t.a.Rows
	tol := t.opts.Tol

	// Canonical reduced-cost row r_j = c_j − c_B·B⁻¹A_j and objective
	// offset for the current basis.
	r := append([]float64(nil), cost...)
	var obj float64
	for i := 0; i < m; i++ {
		if cb := cost[t.basis[i]]; cb != 0 {
			mat.Axpy(-cb, t.a.Row(i), r)
			obj += cb * t.b[i]
		}
	}

	blandAfter := t.opts.MaxIter / 2
	for {
		if t.iters >= t.opts.MaxIter {
			return 0, nil, ErrIterationLimit
		}
		bland := t.iters >= blandAfter

		// Pricing: choose the entering column.
		enter := -1
		best := -tol
		for j := 0; j < allowedCols; j++ {
			if r[j] < best {
				enter = j
				if bland {
					break // Bland: first eligible index.
				}
				best = r[j]
			}
		}
		if enter == -1 {
			return obj, r, nil // optimal
		}

		// Ratio test: choose the leaving row.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			aij := t.a.At(i, enter)
			if aij <= tol {
				continue
			}
			ratio := t.b[i] / aij
			if ratio < bestRatio-tol ||
				(ratio < bestRatio+tol && leave >= 0 && t.basis[i] < t.basis[leave]) {
				bestRatio = ratio
				leave = i
			}
		}
		if leave == -1 {
			return 0, nil, fmt.Errorf("%w: column %d", ErrUnbounded, enter)
		}

		t.pivot(leave, enter, r, &obj)
		t.iters++
	}
}

// pivot performs a Gauss–Jordan pivot on (row, col), updating the reduced
// cost row and objective offset.
func (t *tableau) pivot(row, col int, r []float64, obj *float64) {
	pr := t.a.Row(row)
	piv := pr[col]
	inv := 1 / piv
	mat.Scale(inv, pr)
	t.b[row] *= inv

	for i := 0; i < t.a.Rows; i++ {
		if i == row {
			continue
		}
		ri := t.a.Row(i)
		if f := ri[col]; f != 0 {
			mat.Axpy(-f, pr, ri)
			ri[col] = 0 // exact zero to stop drift
			t.b[i] -= f * t.b[row]
		}
	}
	if f := r[col]; f != 0 {
		mat.Axpy(-f, pr, r)
		r[col] = 0
		// Entering with reduced cost f and step θ = b[row] (already scaled)
		// moves the objective by f·θ.
		*obj += f * t.b[row]
	}
	t.basis[row] = col

	// Clamp tiny negative RHS entries introduced by rounding.
	if t.b[row] < 0 && t.b[row] > -t.opts.Tol {
		t.b[row] = 0
	}
}

// evictArtificials pivots any artificial variable that remains basic at
// level ~0 out of the basis, or zeroes its (redundant) row when no
// non-artificial pivot exists.
func (t *tableau) evictArtificials() error {
	for i := 0; i < t.a.Rows; i++ {
		if t.basis[i] < t.art0 {
			continue
		}
		if t.b[i] > 1e-7 {
			return fmt.Errorf("%w: artificial basic at level %g", ErrInfeasible, t.b[i])
		}
		// Find any non-artificial column with a usable pivot in this row.
		pivCol := -1
		row := t.a.Row(i)
		for j := 0; j < t.art0; j++ {
			if math.Abs(row[j]) > 1e-7 {
				pivCol = j
				break
			}
		}
		if pivCol == -1 {
			// Redundant row: neutralise it so it can never pivot again.
			for j := range row {
				row[j] = 0
			}
			t.b[i] = 0
			continue
		}
		dummy := make([]float64, t.cols)
		var dummyObj float64
		t.pivot(i, pivCol, dummy, &dummyObj)
	}
	return nil
}
